package mdmatch

import "testing"

// TestFacadeEngine drives the serving layer through the public API
// alone: generate a corpus, derive RCKs, compile a plan, index the left
// side, and serve a batch.
func TestFacadeEngine(t *testing.T) {
	ds, err := GenerateDataset(DefaultGenConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	target := CreditBillingTarget(ds.Ctx)
	sigma := CreditBillingMDs(ds.Ctx)
	keys, err := FindRCKs(ds.Ctx, sigma, target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := []KeySpec{
		NewKeySpec(P("tel", "phn")),
		NewKeySpec(P("ln", "ln"), P("zip", "zip")),
	}
	plan, err := CompilePlan(ds.Ctx, keys, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Fields()); got == 0 {
		t.Fatal("plan has no comparison fields")
	}
	eng, err := NewEngine(plan, EngineWorkers(4), EngineShards(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(ds.Credit); err != nil {
		t.Fatal(err)
	}
	batch := make([][]string, len(ds.Billing.Tuples))
	for i, tu := range ds.Billing.Tuples {
		batch[i] = tu.Values
	}
	results, err := eng.MatchBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, r := range results {
		matched += len(r.Matches)
	}
	if matched == 0 {
		t.Fatal("engine found no matches on the generated corpus")
	}
	st := eng.Stats()
	if st.Queries != uint64(len(batch)) {
		t.Fatalf("Queries = %d, want %d", st.Queries, len(batch))
	}
	if rr := st.ReductionRatio(); rr <= 0 || rr > 1 {
		t.Fatalf("ReductionRatio = %v", rr)
	}
}
