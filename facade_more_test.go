package mdmatch

import (
	"strings"
	"testing"
)

func TestFacadeSchemaBuilders(t *testing.T) {
	r, err := NewRelation("r", Attribute{Name: "a"}, Attribute{Name: "n", Domain: Domain("int")})
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 2 {
		t.Fatal("NewRelation broken")
	}
	r2, err := StringsRelation("s", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPair(r2, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SelfMatch() {
		t.Fatal("self-match pair broken")
	}
	if Left.Other() != Right {
		t.Fatal("side constants broken")
	}
}

func TestFacadeReasoning(t *testing.T) {
	doc, err := ParseRules(paperRules)
	if err != nil {
		t.Fatal(err)
	}
	// MDClosure through the facade.
	cl, err := MDClosure(doc.Ctx, doc.MDs, []Conjunct{EqC("email", "email"), EqC("tel", "phn")})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cl.Identified("addr", "post")
	if err != nil || !ok {
		t.Fatalf("closure through facade: %v %v", ok, err)
	}
	// Deduce + Explain.
	phi, err := NewMD(doc.Ctx,
		[]Conjunct{EqC("email", "email"), EqC("tel", "phn")},
		[]AttrPair{P("fn", "fn")})
	if err != nil {
		t.Fatal(err)
	}
	yes, err := Deduce(doc.MDs, phi)
	if err != nil || !yes {
		t.Fatalf("Deduce through facade: %v %v", yes, err)
	}
	exp, err := Explain(doc.MDs, phi)
	if err != nil || !exp.Deduced {
		t.Fatalf("Explain through facade: %v %v", exp, err)
	}
	if !strings.Contains(exp.Render(doc.MDs), "hypothesis") {
		t.Error("explanation rendering broken")
	}
	// AllRCKs + cost model + target/key construction.
	cm := DefaultCostModel()
	keys, err := AllRCKs(doc.Ctx, doc.MDs, doc.Targets[0], cm)
	if err != nil || len(keys) != 5 {
		t.Fatalf("AllRCKs through facade: %d keys, %v", len(keys), err)
	}
	tg, err := NewTarget(doc.Ctx, AttrList{"fn"}, AttrList{"fn"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKey(doc.Ctx, tg, []Conjunct{C("fn", DL(0.8), "fn")}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParseWith(t *testing.T) {
	reg := DefaultRegistry()
	doc, err := ParseRulesWith("schema a(x)\nschema b(y)\npair a b\nmd a[x] ~jw(0.9) b[y] -> a[x] <=> b[y]\n", reg)
	if err != nil {
		t.Fatal(err)
	}
	if doc.MDs[0].LHS[0].OpName() != "jw(0.90)" {
		t.Fatalf("op = %s", doc.MDs[0].LHS[0].OpName())
	}
}

func TestFacadeDiscoverPipeline(t *testing.T) {
	ds, err := GenerateDataset(DefaultGenConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	target := CreditBillingTarget(ds.Ctx)
	d := ds.Pair()
	truth := ds.Truth()
	sample := DiscoverSample{D: d, Pairs: truth.Pairs(), Truth: truth}
	// Add non-matching pairs.
	for i, ct := range ds.Credit.Tuples {
		bt := ds.Billing.Tuples[(i*11+5)%ds.Billing.Len()]
		p := PairRef{Left: ct.ID, Right: bt.ID}
		if !truth.Has(p) {
			sample.Pairs = append(sample.Pairs, p)
		}
	}
	dl := DL(0.8)
	cands, err := MineMDs(sample, DiscoverConfig{
		Fields: []Field{
			{Pair: P("email", "email"), Op: dl},
			{Pair: P("tel", "phn"), Op: dl},
			{Pair: P("ln", "ln"), Op: dl},
			{Pair: P("dob", "dob"), Op: dl},
		},
		MinSupport: 5, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("nothing mined through facade")
	}
	mds, err := DiscoveredToMDs(ds.Ctx, target, cands)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := FindRCKs(ds.Ctx, mds, target, 3, nil)
	if err != nil || len(keys) == 0 {
		t.Fatalf("discover->deduce pipeline: %d keys, %v", len(keys), err)
	}
}

func TestFacadeBlockingHelpers(t *testing.T) {
	ds, err := GenerateDataset(DefaultGenConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	keys, err := FindRCKs(ds.Ctx, CreditBillingMDs(ds.Ctx), CreditBillingTarget(ds.Ctx), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ks := KeySpecFromRCKs(keys, 3, "fn", "ln")
	cands, err := Block(d, ks)
	if err != nil {
		t.Fatal(err)
	}
	bq := EvaluateBlocking(cands, ds.Truth(), ds.TotalPairs())
	if bq.RR() <= 0 {
		t.Error("blocking through facade did not reduce")
	}
	oriented := OrientSelfMatch(NewPairSet(PairRef{Left: 2, Right: 1}, PairRef{Left: 1, Right: 1}))
	if oriented.Len() != 1 || !oriented.Has(PairRef{Left: 1, Right: 2}) {
		t.Error("OrientSelfMatch through facade broken")
	}
}

func TestFacadeNegativeAndSubsumption(t *testing.T) {
	doc, err := ParseRules(paperRules + "\nmd credit[gender] = billing[gender] -> credit[fn] <!> billing[fn]\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Negatives) != 1 {
		t.Fatalf("negatives = %d", len(doc.Negatives))
	}
	conflict, err := doc.Negatives[0].ConflictsWith(doc.MDs)
	if err != nil {
		t.Fatal(err)
	}
	if conflict {
		t.Error("gender veto must not conflict with Σc")
	}
	keys, err := FindRCKs(doc.Ctx, doc.MDs, doc.Targets[0], 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := PruneSubsumed(keys); len(got) > len(keys) {
		t.Error("PruneSubsumed grew the key set")
	}
}
