module mdmatch

go 1.22
