package mdmatch

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/gen"
	"mdmatch/internal/semantics"
)

// execParallelPoint / execParallelSection mirror internal/engine's
// bench-parallel report shapes (the JSON schema is shared across the
// BENCH_*.json files; each report test stays self-contained).
type execParallelPoint struct {
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	Value     float64 `json:"value"`
	SpeedupV1 float64 `json:"speedup_vs_1"`
}

type execParallelSection struct {
	GeneratedAt string              `json:"generated_at"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Measure     string              `json:"measure"`
	Unit        string              `json:"unit"`
	Curve       []execParallelPoint `json:"curve"`
}

// TestWriteParallelExecReport measures the batch enforcement chase
// (semantics.EnforceWorkers, production speculation thresholds) across
// the worker curve and merges the result into BENCH_exec.json's
// "parallel" section (wired up as `make bench-parallel`). Every run
// cross-checks that the parallel result matches the serial chase before
// its timing is recorded. Skipped unless BENCH_PARALLEL_EXEC_OUT is
// set.
func TestWriteParallelExecReport(t *testing.T) {
	out := os.Getenv("BENCH_PARALLEL_EXEC_OUT")
	if out == "" {
		t.Skip("set BENCH_PARALLEL_EXEC_OUT=<path> to record the scaling curve")
	}
	k := 1000
	if v := os.Getenv("BENCH_EXEC_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_EXEC_K %q: %v", v, err)
		}
		k = n
	}
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()

	serial, err := semantics.Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}

	section := execParallelSection{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Measure:     "semantics.EnforceWorkers (worklist chase, full corpus)",
		Unit:        "seconds_per_chase",
	}
	var oneWorker float64
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		var res semantics.EnforceResult
		start := time.Now()
		if res, err = semantics.EnforceWorkers(d, sigma, workers); err != nil {
			t.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		if res.Applications != serial.Applications || res.Passes != serial.Passes {
			t.Fatalf("workers=%d diverged from serial: %d/%d applications, %d/%d passes",
				workers, res.Applications, serial.Applications, res.Passes, serial.Passes)
		}
		p := execParallelPoint{Workers: workers, Seconds: secs, Value: secs}
		if workers == 1 {
			oneWorker = secs
		}
		if oneWorker > 0 {
			p.SpeedupV1 = oneWorker / secs
		}
		section.Curve = append(section.Curve, p)
	}

	doc := map[string]any{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", out, err)
		}
	}
	doc["parallel"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged parallel section into %s", out)
}
