package values

import (
	"math/rand"
	"testing"

	"mdmatch/internal/similarity"
)

// The (minID, maxID) cache key of this package is sound only because
// every operator of Θ satisfies the paper's generic axioms
// (Section 2.1):
//
//   - reflexivity   makes a == b answerable as true with no cache slot;
//   - symmetry      makes the canonical (min, max) key lose no
//     information;
//   - equality subsumption makes the equality operator a plain ID
//     comparison over a shared dictionary.
//
// This test drives every built-in operator constructor across generated
// value sets and checks all three axioms pairwise, so a future operator
// that silently breaks one cannot corrupt the cache.

func builtinOperators() []similarity.Operator {
	return []similarity.Operator{
		similarity.Eq(),
		similarity.DL(0.8),
		similarity.DL(0.5),
		similarity.Lev(0.8),
		similarity.JaroOp(0.85),
		similarity.JaroWinklerOp(0.90),
		similarity.JaccardOp(2, 0.70),
		similarity.DiceOp(2, 0.70),
		similarity.CosineOp(2, 0.70),
		similarity.TokenOp(0.60),
		similarity.SoundexEq(),
		similarity.PrefixOp(3),
		similarity.SynonymOp(similarity.Eq(), map[string]string{"usa": "united states"}),
	}
}

func generatedValues(rng *rand.Rand, n int) []string {
	alphabet := []rune("abcdeE expr 018é")
	out := make([]string, 0, n)
	out = append(out, "", "usa", "united states", "USA") // synonym / fold edges
	for len(out) < n {
		buf := make([]rune, rng.Intn(14))
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		out = append(out, string(buf))
	}
	return out
}

func TestOperatorAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := generatedValues(rng, 28)
	for _, op := range builtinOperators() {
		op := op
		t.Run(op.Name(), func(t *testing.T) {
			for i, a := range vals {
				if !op.Similar(a, a) {
					t.Fatalf("reflexivity: %s.Similar(%q, %q) = false", op.Name(), a, a)
				}
				for _, b := range vals[i+1:] {
					ab, ba := op.Similar(a, b), op.Similar(b, a)
					if ab != ba {
						t.Fatalf("symmetry: %s.Similar(%q, %q) = %v but reversed = %v", op.Name(), a, b, ab, ba)
					}
					if a == b && !ab {
						t.Fatalf("equality subsumption: %s.Similar(%q, %q) = false", op.Name(), a, b)
					}
				}
			}
			// RuneSimilar implementations must agree with the string path
			// on every pair — the cache evaluates through them.
			if rop, ok := op.(similarity.RuneSimilar); ok {
				for _, a := range vals {
					for _, b := range vals {
						if got, want := rop.SimilarRunes([]rune(a), []rune(b)), op.Similar(a, b); got != want {
							t.Fatalf("%s.SimilarRunes(%q, %q) = %v, Similar = %v", op.Name(), a, b, got, want)
						}
					}
				}
			}
		})
	}
}

// TestCacheMatchesOperator checks both cache backends against direct
// operator evaluation on every ID pair of shared and split
// dictionaries: memoization plus key canonicalization must be
// invisible.
func TestCacheMatchesOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := generatedValues(rng, 24)
	for _, op := range builtinOperators() {
		shared := NewDict()
		for _, v := range vals {
			shared.Intern(v)
		}
		for _, c := range []*Cache{
			NewFixedCache(op, shared, shared, 0),
			NewCache(op, shared, shared),
		} {
			if c == nil {
				t.Fatalf("%s: fixed cache unexpectedly over cap", op.Name())
			}
			for pass := 0; pass < 2; pass++ { // second pass: all hits
				for i := range vals {
					for j := range vals {
						got := c.Similar(ID(i), ID(j))
						want := op.Similar(vals[i], vals[j])
						if got != want {
							t.Fatalf("%s cache(%q, %q) = %v, operator says %v", op.Name(), vals[i], vals[j], got, want)
						}
					}
				}
			}
			// Canonicalization: at most one eval per unordered pair with
			// distinct IDs (reflexive pairs are eval-free).
			n := int64(len(vals))
			if max := n * (n - 1) / 2; c.Evaluations() > max {
				t.Fatalf("%s: %d evaluations for %d unordered pairs", op.Name(), c.Evaluations(), max)
			}
		}
	}
}

// TestCacheSplitDicts covers the rectangular (two-dictionary) layout,
// where equal strings carry different IDs and reflexivity must come
// from the operator, not the ID comparison.
func TestCacheSplitDicts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vals := generatedValues(rng, 20)
	op := similarity.DL(0.8)
	left, right := NewDict(), NewDict()
	for i, v := range vals {
		left.Intern(v)
		right.Intern(vals[len(vals)-1-i]) // different insertion order
	}
	for _, c := range []*Cache{NewFixedCache(op, left, right, 0), NewCache(op, left, right)} {
		for i := range vals {
			for j := range vals {
				a, _ := left.Lookup(vals[i])
				b, _ := right.Lookup(vals[j])
				if got, want := c.Similar(a, b), op.Similar(vals[i], vals[j]); got != want {
					t.Fatalf("split cache(%q, %q) = %v, operator says %v", vals[i], vals[j], got, want)
				}
			}
		}
	}
}
