package values

import (
	"mdmatch/internal/similarity"
)

// DefaultMaxCombos caps a fixed verdict matrix's size (2 bits per
// combo: 1<<26 combos = 16 MiB). Conjuncts whose value universes
// multiply out beyond the cap evaluate uncached (NewFixedCache returns
// nil).
const DefaultMaxCombos = int64(1) << 26

// MapMaxEntries caps the growable map backend. Live dictionaries (a
// serving engine's query side) can pair |stored values| × |query
// values| distinct combinations over time; beyond the cap, new
// verdicts are recomputed instead of stored, bounding a long-lived
// cache to roughly tens of MB while keeping every already-cached pair
// fast.
const MapMaxEntries = 1 << 20

// Cache memoizes one similarity operator's verdicts over the value IDs
// of a dictionary pair. Verdicts are pure functions of the two values,
// so memoization can never change an outcome — only the number of
// operator evaluations.
//
// When both sides intern into one shared dictionary the key is the
// canonical (min, max) ID pair: sound because operators are symmetric,
// and reflexivity short-circuits equal IDs to true without touching the
// cache. With distinct dictionaries the key is the plain (left, right)
// pair.
//
// Two backends exist: a fixed 2-bit triangular/rectangular matrix for
// finalized dictionaries (the chase's fixed value universe — two array
// reads per hit), and a growable map for dictionaries that keep
// interning (the serving engine). A Cache is not safe for concurrent
// use; concurrent callers must hold their own lock.
type Cache struct {
	op          similarity.Operator
	rop         similarity.RuneSimilar // non-nil: evaluate on decoded runes
	left, right *Dict
	shared      bool

	// fixed matrix backend (2 bits per combo: known flag, verdict)
	bits   []uint64
	stride int64 // rectangular: right size; 0 selects the map backend
	tri    bool

	// growable map backend
	m map[uint64]bool
	// maxEntries caps m (MapMaxEntries unless NewCacheCapped chose
	// otherwise); beyond it verdicts are recomputed, not stored.
	maxEntries int

	lookups int64
	evals   int64
}

// NewCache builds a map-backed cache usable with dictionaries that keep
// growing.
func NewCache(op similarity.Operator, left, right *Dict) *Cache {
	return NewCacheCapped(op, left, right, MapMaxEntries)
}

// NewCacheCapped is NewCache with an explicit entry cap. Sharded users
// (stripes of one logical cache) divide MapMaxEntries across their
// stripes so the aggregate memory bound stays the same; maxEntries <= 0
// selects MapMaxEntries.
func NewCacheCapped(op similarity.Operator, left, right *Dict, maxEntries int) *Cache {
	c := newCache(op, left, right)
	c.m = make(map[uint64]bool)
	if maxEntries <= 0 {
		maxEntries = MapMaxEntries
	}
	c.maxEntries = maxEntries
	return c
}

// NewFixedCache builds a matrix-backed cache over the dictionaries'
// current contents, which must be final (IDs interned later index out
// of range). maxCombos <= 0 selects DefaultMaxCombos; when the universe
// product exceeds the cap, nil is returned and the caller should
// evaluate uncached.
func NewFixedCache(op similarity.Operator, left, right *Dict, maxCombos int64) *Cache {
	if maxCombos <= 0 {
		maxCombos = DefaultMaxCombos
	}
	c := newCache(op, left, right)
	var combos int64
	if c.shared {
		n := int64(left.Len())
		combos = n * (n + 1) / 2
		c.tri = true
	} else {
		combos = int64(left.Len()) * int64(right.Len())
		c.stride = int64(right.Len())
	}
	if combos == 0 || combos > maxCombos {
		return nil
	}
	c.bits = make([]uint64, (2*combos+63)/64)
	if !c.tri && c.stride == 0 {
		c.stride = 1 // unreachable (combos == 0 above), defensive
	}
	return c
}

func newCache(op similarity.Operator, left, right *Dict) *Cache {
	c := &Cache{op: op, left: left, right: right, shared: left == right}
	if r, ok := op.(similarity.RuneSimilar); ok {
		c.rop = r
	}
	return c
}

// offset maps a canonicalized ID pair to its bit offset in the matrix.
func (c *Cache) offset(a, b ID) int64 {
	if c.tri {
		return (int64(b)*(int64(b)+1)/2 + int64(a)) * 2
	}
	return (int64(a)*c.stride + int64(b)) * 2
}

// Similar returns the memoized verdict of the operator on the two
// values, evaluating it on the first encounter of the (canonicalized)
// pair.
func (c *Cache) Similar(a, b ID) bool {
	c.lookups++
	if c.shared {
		if a == b {
			return true // reflexivity: no cache slot needed
		}
		if a > b {
			a, b = b, a // symmetry: canonical (min, max) key
		}
	}
	if c.bits != nil {
		off := c.offset(a, b)
		w := c.bits[off>>6] >> uint(off&63)
		if w&1 != 0 {
			return w&2 != 0
		}
		verdict := c.eval(a, b)
		m := uint64(1) << uint(off&63)
		if verdict {
			m |= m << 1
		}
		c.bits[off>>6] |= m
		return verdict
	}
	key := uint64(a)<<32 | uint64(b)
	if verdict, ok := c.m[key]; ok {
		return verdict
	}
	verdict := c.eval(a, b)
	if len(c.m) < c.maxEntries {
		c.m[key] = verdict
	}
	return verdict
}

// Store records a verdict computed elsewhere (canonicalizing the key
// like Similar). Concurrent callers use it to evaluate the operator
// outside their write lock and only lock for the store; storing a
// reflexive pair or re-storing an existing key is a no-op.
func (c *Cache) Store(a, b ID, verdict bool) {
	if c.shared {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
	}
	if c.bits != nil {
		off := c.offset(a, b)
		m := uint64(1) << uint(off&63)
		if verdict {
			m |= m << 1
		}
		c.bits[off>>6] |= m
		return
	}
	if len(c.m) < c.maxEntries {
		c.m[uint64(a)<<32|uint64(b)] = verdict
	}
}

// Peek returns the cached verdict without evaluating on a miss. It
// performs no writes, so concurrent callers may Peek under a read lock
// and fall back to Similar under the write lock.
func (c *Cache) Peek(a, b ID) (verdict, known bool) {
	if c.shared {
		if a == b {
			return true, true
		}
		if a > b {
			a, b = b, a
		}
	}
	if c.bits != nil {
		off := c.offset(a, b)
		w := c.bits[off>>6] >> uint(off&63)
		return w&2 != 0, w&1 != 0
	}
	verdict, known = c.m[uint64(a)<<32|uint64(b)]
	return verdict, known
}

func (c *Cache) eval(a, b ID) bool {
	c.evals++
	if c.rop != nil {
		return c.rop.SimilarRunes(c.left.Runes(a), c.right.Runes(b))
	}
	return c.op.Similar(c.left.Value(a), c.right.Value(b))
}

// Evaluations returns the number of actual operator evaluations (cache
// misses) performed so far.
func (c *Cache) Evaluations() int64 { return c.evals }

// Lookups returns the number of Similar calls so far; together with
// Evaluations it is the verdict-cache hit ratio (hits = lookups -
// evaluations, counting the reflexive short-circuit as a hit).
func (c *Cache) Lookups() int64 { return c.lookups }

// Op returns the cached operator.
func (c *Cache) Op() similarity.Operator { return c.op }
