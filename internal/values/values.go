// Package values is the interned value store: the data representation
// every hot path of the library reads.
//
// The enforcement and matching algorithms of the paper evaluate
// similarity predicates v ≈ v′ over attribute *values*, yet a naive
// executor re-evaluates them over raw strings per tuple pair. Real
// corpora have far fewer distinct values than tuples — duplicates share
// values by construction — so the standard similarity-join trick
// applies: intern every string of a column to a dense uint32 ID once,
// precompute the derived forms a value needs (rune slice and length for
// edit distances, interned Soundex code for phonetic tests), and
// memoize each similarity operator as a verdict cache keyed by value-ID
// pairs instead of tuple pairs. The package also owns the blocking-key
// field escaping (keys.go) every key-rendering layer shares.
//
// The cache key is canonical: operators satisfy the paper's generic
// axioms (reflexivity, symmetry, equality subsumption — property-tested
// in axioms_test.go), so for IDs of one shared dictionary the verdict of
// (a, b) equals the verdict of (min(a,b), max(a,b)) and half the key
// space suffices. Reflexivity makes a == b a cache-free true; equality
// subsumption makes the equality operator a plain integer comparison.
//
// A Dict is NOT safe for concurrent use; concurrent layers (the serving
// engine) guard their dictionaries and caches with their own locks.
package values

import (
	"unsafe"

	"mdmatch/internal/similarity"
)

// ID is a dense dictionary-assigned value identifier. IDs are only
// comparable within one Dict: equal IDs mean equal strings, and the
// equality operator over a shared dictionary is ID equality.
type ID uint32

// None is the sentinel for "not interned" (Lookup misses).
const None ID = ^ID(0)

// MaxValues caps a dictionary's size so IDs stay clear of None.
const MaxValues = int(^uint32(0)) - 1

// Dict interns the distinct values of one column (or of one group of
// columns that exchange values) to dense IDs and owns their derived
// forms, each computed at most once per distinct value:
//
//   - the decoded rune slice and rune length (edit-distance operators);
//   - the Soundex code, itself interned so phonetic equivalence is an
//     integer comparison.
//
// Value bytes live in one append-only slab (blob + offsets) rather than
// one heap string per value: a million-value dictionary costs one large
// allocation plus 4 bytes of offset per value instead of a 16-byte
// string header each, interning detaches the dictionary from caller
// buffers (the input batch's strings are copied into the slab, not
// retained), and a point-in-time Table view of the slab is O(1) to
// capture — which is what lets a snapshot cut the dictionary under a
// lock without cloning it.
type Dict struct {
	ids  map[string]ID
	blob []byte   // concatenated value bytes, append-only
	off  []uint32 // value i is blob[off[i]:off[i+1]]; len(off) == Len()+1

	runes   [][]rune // lazily decoded; runeLen[i] < 0 means undecoded
	runeLen []int32
	sdx     []int32 // lazily computed Soundex code id; -1 means uncomputed
	codes   map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]ID), off: make([]uint32, 1, 16)}
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int { return len(d.off) - 1 }

// Intern returns the ID of v, assigning the next dense ID on first
// sight. It panics when the dictionary would exceed MaxValues.
func (d *Dict) Intern(v string) ID {
	if id, ok := d.ids[v]; ok {
		return id
	}
	if d.Len() >= MaxValues {
		panic("values: dictionary overflow")
	}
	if uint64(len(d.blob))+uint64(len(v)) > uint64(^uint32(0)) {
		panic("values: dictionary slab overflow")
	}
	id := ID(d.Len())
	d.blob = append(d.blob, v...)
	d.off = append(d.off, uint32(len(d.blob)))
	// Key the map by the slab-backed copy, not the caller's string, so
	// interning never pins caller-owned buffers.
	d.ids[d.Value(id)] = id
	d.runes = append(d.runes, nil)
	d.runeLen = append(d.runeLen, -1)
	d.sdx = append(d.sdx, -1)
	return id
}

// Lookup returns the ID of v, or (None, false) when v was never
// interned.
func (d *Dict) Lookup(v string) (ID, bool) {
	id, ok := d.ids[v]
	if !ok {
		return None, false
	}
	return id, true
}

// Value returns the string behind an ID. The string aliases the slab
// (zero-copy): the aliased bytes are written once by Intern and never
// rewritten, so the usual string immutability holds.
func (d *Dict) Value(id ID) string { return slabString(d.blob, d.off, int(id)) }

// slabString renders value i of a (blob, offsets) slab without copying.
// Safety: blob[off[i]:off[i+1]] is written exactly once, by the Intern
// that assigned ID i, before any reference to it escapes; appends only
// ever write past the last offset, and a growth reallocation copies to a
// fresh array leaving the old bytes (and any strings aliasing them)
// untouched.
func slabString(blob []byte, off []uint32, i int) string {
	start, end := off[i], off[i+1]
	if start == end {
		return ""
	}
	return unsafe.String(&blob[start], int(end-start))
}

// Runes returns the decoded rune slice of the value, computing it on
// first use. Callers must not mutate the result.
func (d *Dict) Runes(id ID) []rune {
	if d.runeLen[id] < 0 {
		d.runes[id] = []rune(d.Value(id))
		d.runeLen[id] = int32(len(d.runes[id]))
	}
	return d.runes[id]
}

// RuneLen returns the value's length in runes, computing the decoded
// form on first use.
func (d *Dict) RuneLen(id ID) int {
	if d.runeLen[id] < 0 {
		d.Runes(id)
	}
	return int(d.runeLen[id])
}

// WarmDerived precomputes the lazily derived forms — the decoded rune
// slice (runes) and/or the interned Soundex code (sdx) — for every ID
// in [from, Len()), and returns Len(). Runes and SoundexID mutate the
// dictionary on first use, so any layer that reads values from
// concurrent goroutines (the speculative chase workers) must warm the
// forms it needs while it still holds exclusive access; after warming,
// Runes, RuneLen and SoundexID on warmed IDs are pure reads. Callers
// keep the returned cursor and warm incrementally as the dictionary
// grows.
func (d *Dict) WarmDerived(from int, runes, sdx bool) int {
	n := d.Len()
	for i := from; i < n; i++ {
		if runes && d.runeLen[i] < 0 {
			d.Runes(ID(i))
		}
		if sdx && d.sdx[i] < 0 {
			d.SoundexID(ID(i))
		}
	}
	return n
}

// SoundexID returns the interned Soundex code of the value: two values
// of one dictionary have equal Soundex codes iff their SoundexIDs are
// equal. The code is computed once per distinct value.
func (d *Dict) SoundexID(id ID) int32 {
	if d.sdx[id] >= 0 {
		return d.sdx[id]
	}
	code := similarity.Soundex(d.Value(id))
	if d.codes == nil {
		d.codes = make(map[string]int32)
	}
	ci, ok := d.codes[code]
	if !ok {
		ci = int32(len(d.codes))
		d.codes[code] = ci
	}
	d.sdx[id] = ci
	return ci
}

// Table is an immutable point-in-time view of a dictionary's string
// table: the first Len() values as they stood when Snapshot was called.
// Capturing one is O(1) — two slice headers — and reading it is safe
// concurrently with further interning into the source dictionary,
// because the slab prefix a Table covers is append-only and never
// rewritten (appends land past the captured lengths; a reallocation
// copies to a fresh array and leaves the captured one untouched). This
// is the representation a consistent snapshot cut carries out of the
// insertion lock.
type Table struct {
	blob []byte
	off  []uint32
}

// Snapshot captures the dictionary's current string table. The caller
// must hold whatever lock guards Intern on this dictionary for the
// duration of the call (not afterwards).
func (d *Dict) Snapshot() Table {
	return Table{blob: d.blob[:len(d.blob):len(d.blob)], off: d.off[:len(d.off):len(d.off)]}
}

// Len returns the number of values the table holds.
func (t Table) Len() int { return len(t.off) - 1 }

// Value returns value i without copying (the string aliases the slab).
func (t Table) Value(i int) string { return slabString(t.blob, t.off, i) }

// Bytes returns the total size in bytes of the table's value payload.
func (t Table) Bytes() int { return len(t.blob) }
