// Package values is the interned value store: the data representation
// every hot path of the library reads.
//
// The enforcement and matching algorithms of the paper evaluate
// similarity predicates v ≈ v′ over attribute *values*, yet a naive
// executor re-evaluates them over raw strings per tuple pair. Real
// corpora have far fewer distinct values than tuples — duplicates share
// values by construction — so the standard similarity-join trick
// applies: intern every string of a column to a dense uint32 ID once,
// precompute the derived forms a value needs (rune slice and length for
// edit distances, interned Soundex code for phonetic tests), and
// memoize each similarity operator as a verdict cache keyed by value-ID
// pairs instead of tuple pairs. The package also owns the blocking-key
// field escaping (keys.go) every key-rendering layer shares.
//
// The cache key is canonical: operators satisfy the paper's generic
// axioms (reflexivity, symmetry, equality subsumption — property-tested
// in axioms_test.go), so for IDs of one shared dictionary the verdict of
// (a, b) equals the verdict of (min(a,b), max(a,b)) and half the key
// space suffices. Reflexivity makes a == b a cache-free true; equality
// subsumption makes the equality operator a plain integer comparison.
//
// A Dict is NOT safe for concurrent use; concurrent layers (the serving
// engine) guard their dictionaries and caches with their own locks.
package values

import (
	"mdmatch/internal/similarity"
)

// ID is a dense dictionary-assigned value identifier. IDs are only
// comparable within one Dict: equal IDs mean equal strings, and the
// equality operator over a shared dictionary is ID equality.
type ID uint32

// None is the sentinel for "not interned" (Lookup misses).
const None ID = ^ID(0)

// MaxValues caps a dictionary's size so IDs stay clear of None.
const MaxValues = int(^uint32(0)) - 1

// Dict interns the distinct values of one column (or of one group of
// columns that exchange values) to dense IDs and owns their derived
// forms, each computed at most once per distinct value:
//
//   - the decoded rune slice and rune length (edit-distance operators);
//   - the Soundex code, itself interned so phonetic equivalence is an
//     integer comparison.
type Dict struct {
	ids  map[string]ID
	strs []string

	runes   [][]rune // lazily decoded; runeLen[i] < 0 means undecoded
	runeLen []int32
	sdx     []int32 // lazily computed Soundex code id; -1 means uncomputed
	codes   map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]ID)}
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int { return len(d.strs) }

// Intern returns the ID of v, assigning the next dense ID on first
// sight. It panics when the dictionary would exceed MaxValues.
func (d *Dict) Intern(v string) ID {
	if id, ok := d.ids[v]; ok {
		return id
	}
	if len(d.strs) >= MaxValues {
		panic("values: dictionary overflow")
	}
	id := ID(len(d.strs))
	d.ids[v] = id
	d.strs = append(d.strs, v)
	d.runes = append(d.runes, nil)
	d.runeLen = append(d.runeLen, -1)
	d.sdx = append(d.sdx, -1)
	return id
}

// Lookup returns the ID of v, or (None, false) when v was never
// interned.
func (d *Dict) Lookup(v string) (ID, bool) {
	id, ok := d.ids[v]
	if !ok {
		return None, false
	}
	return id, true
}

// Value returns the string behind an ID.
func (d *Dict) Value(id ID) string { return d.strs[id] }

// Runes returns the decoded rune slice of the value, computing it on
// first use. Callers must not mutate the result.
func (d *Dict) Runes(id ID) []rune {
	if d.runeLen[id] < 0 {
		d.runes[id] = []rune(d.strs[id])
		d.runeLen[id] = int32(len(d.runes[id]))
	}
	return d.runes[id]
}

// RuneLen returns the value's length in runes, computing the decoded
// form on first use.
func (d *Dict) RuneLen(id ID) int {
	if d.runeLen[id] < 0 {
		d.Runes(id)
	}
	return int(d.runeLen[id])
}

// WarmDerived precomputes the lazily derived forms — the decoded rune
// slice (runes) and/or the interned Soundex code (sdx) — for every ID
// in [from, Len()), and returns Len(). Runes and SoundexID mutate the
// dictionary on first use, so any layer that reads values from
// concurrent goroutines (the speculative chase workers) must warm the
// forms it needs while it still holds exclusive access; after warming,
// Runes, RuneLen and SoundexID on warmed IDs are pure reads. Callers
// keep the returned cursor and warm incrementally as the dictionary
// grows.
func (d *Dict) WarmDerived(from int, runes, sdx bool) int {
	n := len(d.strs)
	for i := from; i < n; i++ {
		if runes && d.runeLen[i] < 0 {
			d.Runes(ID(i))
		}
		if sdx && d.sdx[i] < 0 {
			d.SoundexID(ID(i))
		}
	}
	return n
}

// SoundexID returns the interned Soundex code of the value: two values
// of one dictionary have equal Soundex codes iff their SoundexIDs are
// equal. The code is computed once per distinct value.
func (d *Dict) SoundexID(id ID) int32 {
	if d.sdx[id] >= 0 {
		return d.sdx[id]
	}
	code := similarity.Soundex(d.strs[id])
	if d.codes == nil {
		d.codes = make(map[string]int32)
	}
	ci, ok := d.codes[code]
	if !ok {
		ci = int32(len(d.codes))
		d.codes[code] = ci
	}
	d.sdx[id] = ci
	return ci
}
