package values

import "strings"

// Blocking keys join encoded field values with a separator byte.
// Encoded values may themselves contain the separator (nothing stops an
// encoder — or raw data — from emitting \x1f), which would alias
// distinct keys: ("a\x1fb", "c") and ("a", "b\x1fc") must not collide.
// Field values are therefore escaped, making the rendering injective.
// The escaping lives here, in the leaf package of the value layer, so
// both the string path (internal/blocking) and the interned path (Dict
// key fragments, internal/exec key encoders) share one definition.
const (
	// KeySep is the unit separator between encoded key fields.
	KeySep = '\x1f'
	// KeyEsc is the escape prefix for literal KeySep/KeyEsc bytes.
	KeyEsc = '\x1c'
)

// AppendKeyField writes one encoded field value into a key builder,
// escaping the separator and escape bytes so that distinct field tuples
// always render to distinct key strings.
func AppendKeyField(b *strings.Builder, s string) {
	if !strings.ContainsAny(s, "\x1c\x1f") {
		b.WriteString(s) // fast path: nothing to escape
		return
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == KeyEsc || c == KeySep {
			b.WriteByte(KeyEsc)
		}
		b.WriteByte(c)
	}
}

// EscapeKeyField returns the escaped form of one field value. When
// nothing needs escaping the input string is returned as-is (no copy).
func EscapeKeyField(s string) string {
	if !strings.ContainsAny(s, "\x1c\x1f") {
		return s
	}
	var b strings.Builder
	AppendKeyField(&b, s)
	return b.String()
}
