package values

import (
	"strings"
	"testing"

	"mdmatch/internal/similarity"
)

func TestDictInternDerivedForms(t *testing.T) {
	d := NewDict()
	a := d.Intern("Clifford")
	if got := d.Intern("Clifford"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}
	b := d.Intern("Cliffórd")
	if a == b {
		t.Fatal("distinct values share an ID")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Value(a) != "Clifford" || d.Value(b) != "Cliffórd" {
		t.Fatal("Value round-trip broken")
	}
	if got := d.RuneLen(b); got != 8 {
		t.Fatalf("RuneLen(%q) = %d, want 8", "Cliffórd", got)
	}
	if got := string(d.Runes(a)); got != "Clifford" {
		t.Fatalf("Runes = %q", got)
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Fatal("Lookup invented an ID")
	}
	if id, ok := d.Lookup("Clifford"); !ok || id != a {
		t.Fatal("Lookup missed an interned value")
	}
}

func TestDictSoundexID(t *testing.T) {
	d := NewDict()
	a, b, c := d.Intern("Robert"), d.Intern("Rupert"), d.Intern("Ashcraft")
	if d.SoundexID(a) != d.SoundexID(b) {
		t.Fatalf("Soundex(%q) and %q should agree (%q vs %q)", "Robert", "Rupert",
			similarity.Soundex("Robert"), similarity.Soundex("Rupert"))
	}
	if d.SoundexID(a) == d.SoundexID(c) {
		t.Fatal("distinct Soundex codes share an ID")
	}
	// ID equality must mirror code-string equality on every pair.
	for _, x := range []ID{a, b, c} {
		for _, y := range []ID{a, b, c} {
			want := similarity.Soundex(d.Value(x)) == similarity.Soundex(d.Value(y))
			if got := d.SoundexID(x) == d.SoundexID(y); got != want {
				t.Fatalf("SoundexID equality (%q, %q) = %v, want %v", d.Value(x), d.Value(y), got, want)
			}
		}
	}
}

func TestKeyFieldEscaping(t *testing.T) {
	if got := EscapeKeyField("plain value"); got != "plain value" {
		t.Fatalf("clean field = %q", got)
	}
	if got := EscapeKeyField("a\x1fb\x1cc"); got == "a\x1fb\x1cc" {
		t.Fatal("dirty field was not escaped")
	}
	// Injectivity across field joins: the classic aliasing pair.
	var b1, b2 strings.Builder
	AppendKeyField(&b1, "a\x1fb")
	b1.WriteByte(KeySep)
	AppendKeyField(&b1, "c")
	AppendKeyField(&b2, "a")
	b2.WriteByte(KeySep)
	AppendKeyField(&b2, "b\x1fc")
	if b1.String() == b2.String() {
		t.Fatal("escaping failed: distinct field tuples render identically")
	}
}

func TestColumns(t *testing.T) {
	name, city := NewDict(), NewDict()
	cols := NewColumns([]*Dict{name, city, name}) // columns 0 and 2 share a dict
	cols.AppendRow([]string{"Ann", "Berlin", "Bob"})
	cols.AppendRow([]string{"Bob", "Paris", "Ann"})
	if cols.Len() != 2 || cols.Arity() != 3 {
		t.Fatalf("Len/Arity = %d/%d", cols.Len(), cols.Arity())
	}
	if cols.ID(0, 1) != cols.ID(2, 0) {
		t.Fatal("shared dictionary: equal values must share IDs across columns")
	}
	if cols.ID(0, 0) == cols.ID(0, 1) {
		t.Fatal("distinct values share an ID")
	}
	cols.Set(1, 0, "Paris")
	if cols.ID(1, 0) != cols.ID(1, 1) {
		t.Fatal("Set did not re-intern the cell")
	}
	if cols.Dict(0) != name || cols.Dict(1) != city {
		t.Fatal("Dict accessor broken")
	}
	if got := len(cols.Column(0)); got != 2 {
		t.Fatalf("Column length = %d", got)
	}
}

func BenchmarkCacheSimilar(b *testing.B) {
	d := NewDict()
	vals := []string{"Clifford", "Cliford", "Murray Hill", "Murray", "10 Oak Street", "11 Oak St"}
	ids := make([]ID, len(vals))
	for i, v := range vals {
		ids[i] = d.Intern(v)
	}
	op := similarity.DL(0.8)
	b.Run("fixed_hit", func(b *testing.B) {
		c := NewFixedCache(op, d, d, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Similar(ids[i%len(ids)], ids[(i+1)%len(ids)])
		}
	})
	b.Run("map_hit", func(b *testing.B) {
		c := NewCache(op, d, d)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Similar(ids[i%len(ids)], ids[(i+1)%len(ids)])
		}
	})
	b.Run("uncached_op", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op.Similar(vals[i%len(vals)], vals[(i+1)%len(vals)])
		}
	})
}
