package values

import "fmt"

// Columns is the interned columnar view of a relation instance: one
// dictionary per column — possibly shared between columns whose values
// the chase or a rule set compares or exchanges — and one ID per cell,
// column-major so a scan over one column walks contiguous memory.
type Columns struct {
	dicts []*Dict
	ids   [][]ID
	rows  int
}

// NewColumns builds an empty columnar view over the given per-column
// dictionaries (entries may repeat to share a dictionary; none may be
// nil).
func NewColumns(dicts []*Dict) *Columns {
	for i, d := range dicts {
		if d == nil {
			panic(fmt.Sprintf("values: nil dictionary for column %d", i))
		}
	}
	c := &Columns{dicts: dicts, ids: make([][]ID, len(dicts))}
	return c
}

// Arity returns the number of columns.
func (c *Columns) Arity() int { return len(c.dicts) }

// Len returns the number of rows.
func (c *Columns) Len() int { return c.rows }

// Dict returns the dictionary of a column.
func (c *Columns) Dict(col int) *Dict { return c.dicts[col] }

// Column returns the ID slice of a column (one entry per row). Callers
// must not mutate it.
func (c *Columns) Column(col int) []ID { return c.ids[col] }

// AppendRow interns a positional value row.
func (c *Columns) AppendRow(vals []string) {
	if len(vals) != len(c.dicts) {
		panic(fmt.Sprintf("values: row has %d values, want %d", len(vals), len(c.dicts)))
	}
	for i, v := range vals {
		c.ids[i] = append(c.ids[i], c.dicts[i].Intern(v))
	}
	c.rows++
}

// Set re-interns one cell after its value changed, growing the
// dictionary when the value is new.
func (c *Columns) Set(col, row int, v string) {
	c.ids[col][row] = c.dicts[col].Intern(v)
}

// SetKnown rewrites one cell to an already-interned value. It panics
// when v was never interned into the column's dictionary: callers with
// a fixed value universe — the enforcement chase only ever moves
// existing values between cells — use it to keep fixed-size verdict
// caches sound, turning a silently corrupted cache into a loud failure.
func (c *Columns) SetKnown(col, row int, v string) {
	id, ok := c.dicts[col].Lookup(v)
	if !ok {
		panic(fmt.Sprintf("values: column %d cell rewritten to uninterned value %q", col, v))
	}
	c.ids[col][row] = id
}

// ID returns the interned ID of one cell.
func (c *Columns) ID(col, row int) ID { return c.ids[col][row] }
