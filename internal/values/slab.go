package values

// RowSlab hands out fixed-arity ID rows carved from large shared
// blocks, so capturing (or storing) n resolved rows costs n/rowsPerBlock
// allocations instead of n. It is grow-only: rows are never returned to
// the slab (a caller that drops a row simply stops referencing it, and
// the block is freed when every row in it is), which keeps the type
// trivially correct — there is no free list to corrupt. Not safe for
// concurrent use; callers serialize on their own locks.
type RowSlab struct {
	arity int
	block []ID // current block, carved front to back
}

// rowSlabBlock is how many rows one block holds.
const rowSlabBlock = 4096

// NewRowSlab returns a slab handing out rows of the given arity.
func NewRowSlab(arity int) *RowSlab {
	if arity <= 0 {
		panic("values: row slab arity must be positive")
	}
	return &RowSlab{arity: arity}
}

// Arity returns the row width.
func (s *RowSlab) Arity() int { return s.arity }

// Row returns a zero-length, arity-capacity ID slice carved from the
// current block (append fills it without reallocating). The returned
// slice's capacity is clipped, so appending past arity can never bleed
// into a neighboring row.
func (s *RowSlab) Row() []ID {
	if len(s.block) < s.arity {
		s.block = make([]ID, rowSlabBlock*s.arity)
	}
	row := s.block[:0:s.arity]
	s.block = s.block[s.arity:]
	return row
}
