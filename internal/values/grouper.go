package values

// Grouper carves a set of column nodes into dictionary groups: columns
// linked directly or transitively — because a conjunct compares them,
// or because enforcement can move values between them — end up sharing
// one Dict, which is what makes ID equality mean string equality across
// a conjunct and the (min, max) cache key sound. Both the chase
// (internal/semantics) and the program interner (internal/exec) build
// their column layouts through it.
type Grouper struct {
	parent []int
	dicts  map[int]*Dict
}

// NewGrouper builds a grouper over n column nodes, each initially its
// own group.
func NewGrouper(n int) *Grouper {
	g := &Grouper{parent: make([]int, n), dicts: make(map[int]*Dict)}
	for i := range g.parent {
		g.parent[i] = i
	}
	return g
}

func (g *Grouper) find(x int) int {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]] // path halving
		x = g.parent[x]
	}
	return x
}

// Link merges the groups of two column nodes. All Link calls must
// precede the first Dict call.
func (g *Grouper) Link(a, b int) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		g.parent[ra] = rb
	}
}

// Dict returns the shared dictionary of the node's group, creating it
// on first use. Nodes of one group always get the same *Dict.
func (g *Grouper) Dict(node int) *Dict {
	r := g.find(node)
	d, ok := g.dicts[r]
	if !ok {
		d = NewDict()
		g.dicts[r] = d
	}
	return d
}
