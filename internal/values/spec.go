package values

// Speculative-evaluation support for the deterministic parallel chase.
//
// The parallel chase evaluates LHS verdicts for a chunk of candidate
// pairs on worker goroutines BEFORE committing any firing of the chunk.
// Workers must not write to the shared verdict caches (a Cache is not
// concurrency-safe), so each worker answers misses with Compute — a
// pure evaluation that touches neither the cache nor its counters — and
// records the verdict in a private Fill buffer. After the workers join,
// the committing goroutine merges every buffer into the shared caches.
//
// Merging is ORDER-INDEPENDENT, which is what keeps the parallel chase
// bit-identical to the serial one regardless of how chunks were claimed:
// verdicts are pure functions of the value pair, so two workers that
// evaluated the same (cache, pair) key always store the same boolean,
// and Store is idempotent. The only order-sensitive quantity is the
// evaluation COUNT, which MergeFills makes deterministic by counting a
// key only when it is not yet cached (every duplicate — within a
// buffer, across buffers, or against a pair the serial commit loop
// resolved meanwhile — counts zero).

// Fill is one speculative verdict awaiting merge into its cache.
type Fill struct {
	Cache   *Cache
	A, B    ID
	Verdict bool
}

// Compute evaluates the operator on the two values without reading or
// writing the cache or its counters. It is safe for concurrent use
// PROVIDED the dictionaries' derived forms for both IDs are warmed
// (Dict.WarmDerived) — rune decoding is lazy and would otherwise race.
func (c *Cache) Compute(a, b ID) bool {
	if c.shared && a == b {
		return true
	}
	if c.rop != nil {
		return c.rop.SimilarRunes(c.left.Runes(a), c.right.Runes(b))
	}
	return c.op.Similar(c.left.Value(a), c.right.Value(b))
}

// RuneDicts returns the cache's two dictionaries when its operator
// evaluates on decoded runes (nil, nil otherwise). Callers use it to
// pre-warm the rune forms Compute will read (see Dict.WarmDerived);
// byte-evaluated operators derive nothing lazily, so there is nothing
// to warm.
func (c *Cache) RuneDicts() (left, right *Dict) {
	if c.rop == nil {
		return nil, nil
	}
	return c.left, c.right
}

// MergeFills stores every buffered speculative verdict into its cache
// and returns how many were NEW (not cached at merge time). The caller
// must hold whatever lock guards the caches; buffers are reset to
// length zero in place. The return value is the number of operator
// evaluations the serial chase would have performed for these keys, so
// callers fold it into their LHSEvaluations accounting.
func MergeFills(bufs [][]Fill) (newFills int64) {
	for w := range bufs {
		for _, f := range bufs[w] {
			if _, known := f.Cache.Peek(f.A, f.B); !known {
				f.Cache.Store(f.A, f.B, f.Verdict)
				newFills++
			}
		}
		bufs[w] = bufs[w][:0]
	}
	return newFills
}
