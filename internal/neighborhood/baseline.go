package neighborhood

import (
	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// BaselineRules returns a 25-rule hand-written equational theory over
// the extended credit/billing schemas, standing in for the 25 rules of
// [20] used by the paper's SN baseline (the original rules target [20]'s
// own schema and are not reproduced in the 2009 paper either; DESIGN.md
// §3). The set is written the way practitioner rule bases look: mostly
// conservative multi-attribute equality rules (which miss dirty
// duplicates), a few similarity-based ones, and a couple of over-eager
// rules on weakly-identifying attributes (which admit false positives).
// The comparison against the derived RCKs (Exp-3) measures exactly this
// gap: hand-picked rules vs. systematically deduced keys.
func BaselineRules(ctx schema.Pair, target core.Target) []core.Key {
	d := similarity.DL(0.8)
	sx := similarity.SoundexEq()
	k := func(cs ...core.Conjunct) core.Key {
		return core.Key{Ctx: ctx, Target: target, Conjuncts: cs}
	}
	eq := core.Eq
	sim := func(l, r string) core.Conjunct { return core.C(l, d, r) }
	return []core.Key{
		// 1-8: near-full identity on contact data (conservative rules:
		// high precision, poor recall on dirty duplicates).
		k(eq("fn", "fn"), eq("ln", "ln"), eq("street", "street"), eq("city", "city"), eq("zip", "zip")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("street", "street"), eq("city", "city")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("street", "street"), eq("zip", "zip")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("city", "city"), eq("county", "county"), eq("zip", "zip")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("tel", "phn"), eq("street", "street")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("email", "email"), eq("city", "city")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("dob", "dob"), eq("zip", "zip")),
		k(eq("fn", "fn"), eq("ln", "ln"), eq("cno", "cno")),
		// 9-14: similarity-tolerant names with stricter address parts
		// ([20]-style equational rules).
		k(sim("fn", "fn"), sim("ln", "ln"), eq("street", "street"), eq("city", "city")),
		k(sim("fn", "fn"), sim("ln", "ln"), eq("zip", "zip"), sim("street", "street")),
		k(eq("fn", "fn"), sim("ln", "ln"), sim("street", "street"), eq("city", "city")),
		k(sim("fn", "fn"), sim("ln", "ln"), sim("street", "street"), eq("zip", "zip"), eq("dob", "dob")),
		k(sim("street", "street"), eq("zip", "zip"), sim("ln", "ln"), sim("fn", "fn")),
		k(core.C("fn", sx, "fn"), core.C("ln", sx, "ln"), sim("street", "street"), eq("city", "city"), eq("dob", "dob")),
		// 15-19: contact-channel rules.
		k(sim("tel", "phn"), sim("ln", "ln"), sim("fn", "fn")),
		k(sim("email", "email"), sim("ln", "ln"), sim("fn", "fn")),
		k(sim("tel", "phn"), sim("email", "email"), eq("gender", "gender")),
		k(sim("cno", "cno"), sim("ln", "ln"), eq("gender", "gender")),
		k(sim("cno", "cno"), sim("dob", "dob"), sim("fn", "fn")),
		// 20-22: demographic rules.
		k(sim("dob", "dob"), sim("ln", "ln"), sim("fn", "fn"), eq("gender", "gender")),
		k(sim("dob", "dob"), sim("ln", "ln"), eq("zip", "zip"), eq("gender", "gender")),
		k(sim("dob", "dob"), sim("tel", "phn"), eq("gender", "gender")),
		// 23-25: the over-eager tail every hand-written rule base grows
		// (weakly identifying attributes: false-positive prone).
		k(core.C("ln", sx, "ln"), eq("zip", "zip"), eq("gender", "gender")),
		k(core.C("fn", sx, "fn"), core.C("ln", sx, "ln"), sim("city", "city")),
		k(sim("ln", "ln"), sim("city", "city"), eq("gender", "gender")),
	}
}
