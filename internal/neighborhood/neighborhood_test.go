package neighborhood

import (
	"testing"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
)

func TestBaselineRulesShape(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	target := gen.Target(ds.Ctx)
	rules := BaselineRules(ds.Ctx, target)
	if len(rules) != 25 {
		t.Fatalf("baseline has %d rules, want 25 (as in [20])", len(rules))
	}
	for i, r := range rules {
		if _, err := core.NewKey(r.Ctx, r.Target, r.Conjuncts); err != nil {
			t.Errorf("rule %d invalid: %v", i, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	target := gen.Target(ds.Ctx)
	rules := matching.NewRuleSet(BaselineRules(ds.Ctx, target)...)
	key := blocking.NewKeySpec(core.P("zip", "zip"))
	if _, err := Run(d, Config{Rules: rules}); err == nil {
		t.Error("no passes accepted")
	}
	if _, err := Run(d, Config{Passes: []Pass{{Key: key}}}); err == nil {
		t.Error("no rules accepted")
	}
	if _, err := Run(d, Config{Passes: []Pass{{Key: blocking.KeySpec{}}}, Rules: rules}); err == nil {
		t.Error("empty pass key accepted")
	}
}

func TestRunFindsDuplicates(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	target := gen.Target(ds.Ctx)
	truth := ds.Truth()

	// SNrck: top-5 derived RCKs as rules, two windowing passes.
	keys, err := core.FindRCKs(ds.Ctx, gen.HolderMDs(ds.Ctx), target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	passes := []Pass{
		{Key: blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode), Window: 10},
		{Key: blocking.NewKeySpec(core.P("tel", "phn")), Window: 10},
	}
	res, err := Run(d, Config{
		Passes: passes,
		Rules:  matching.NewRuleSet(keys...),
	})
	if err != nil {
		t.Fatal(err)
	}
	q := metrics.Evaluate(res.Matches, truth)
	if q.TruePositives == 0 {
		t.Fatal("SNrck found nothing")
	}
	if q.Precision() < 0.85 {
		t.Errorf("SNrck precision = %.3f, want > 0.85 (%s)", q.Precision(), q)
	}
	if res.Compared == 0 {
		t.Error("no candidates compared")
	}

	// Baseline SN with the hand-written theory still works end to end.
	resBase, err := Run(d, Config{
		Passes: passes,
		Rules:  matching.NewRuleSet(BaselineRules(ds.Ctx, target)...),
	})
	if err != nil {
		t.Fatal(err)
	}
	qBase := metrics.Evaluate(resBase.Matches, truth)
	if qBase.TruePositives == 0 {
		t.Error("baseline SN found nothing")
	}
}

func TestTransitiveClosureExpandsMatches(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	target := gen.Target(ds.Ctx)
	keys, err := core.FindRCKs(ds.Ctx, gen.HolderMDs(ds.Ctx), target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Passes: []Pass{{Key: blocking.NewKeySpec(core.P("tel", "phn")), Window: 10}},
		Rules:  matching.NewRuleSet(keys...),
	}
	plain, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TransitiveClosure = true
	closed, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Matches.Len() < plain.Matches.Len() {
		t.Error("transitive closure lost matches")
	}
	for _, p := range plain.Matches.Pairs() {
		if !closed.Matches.Has(p) {
			t.Error("transitive closure dropped a direct match")
		}
	}
}

func TestDefaultWindowSize(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	target := gen.Target(ds.Ctx)
	keys, err := core.FindRCKs(ds.Ctx, gen.HolderMDs(ds.Ctx), target, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0 defaults to the paper's 10.
	res, err := Run(d, Config{
		Passes: []Pass{{Key: blocking.NewKeySpec(core.P("zip", "zip"))}},
		Rules:  matching.NewRuleSet(keys...),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared == 0 {
		t.Error("default window produced no candidates")
	}
}
