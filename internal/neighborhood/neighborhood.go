// Package neighborhood implements the sorted-neighborhood (merge/purge)
// record matching method of Hernández and Stolfo [20], the rule-based
// method of Exp-3 in Section 6: records of both relations are merged,
// sorted by a key, and compared within a fixed-size sliding window using
// rules of an equational theory; multiple passes with different keys are
// unioned and optionally closed transitively.
package neighborhood

import (
	"fmt"

	"mdmatch/internal/blocking"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
)

// Pass is one sort-and-window sweep.
type Pass struct {
	Key    blocking.KeySpec
	Window int
}

// Config is a sorted-neighborhood run specification.
type Config struct {
	Passes []Pass
	// Rules decide whether a candidate pair matches.
	Rules *matching.RuleSet
	// TransitiveClosure merges matches through chains, the merge phase
	// of [20].
	TransitiveClosure bool
}

// Result reports the matches and work done.
type Result struct {
	Matches  *metrics.PairSet
	Compared int
}

// Run executes the configured passes over the instance pair. The rule
// base — including the 25-rule hand-written baseline of BaselineRules —
// compiles once into the exec kernel (via RuleSet.MatchCandidates) and
// every windowed candidate evaluates positionally with shared-conjunct
// memoization.
func Run(d *record.PairInstance, cfg Config) (*Result, error) {
	if len(cfg.Passes) == 0 {
		return nil, fmt.Errorf("neighborhood: no passes configured")
	}
	if cfg.Rules == nil || len(cfg.Rules.Keys) == 0 {
		return nil, fmt.Errorf("neighborhood: no rules configured")
	}
	candidates := metrics.NewPairSet()
	for i, pass := range cfg.Passes {
		w := pass.Window
		if w == 0 {
			w = 10 // the paper's fixed window size
		}
		cands, err := blocking.Window(d, pass.Key, w)
		if err != nil {
			return nil, fmt.Errorf("neighborhood: pass %d: %w", i, err)
		}
		for _, p := range cands.Pairs() {
			candidates.Add(p)
		}
	}
	matches, err := cfg.Rules.MatchCandidates(d, candidates)
	if err != nil {
		return nil, err
	}
	if cfg.TransitiveClosure {
		matches = matching.TransitiveClosure(matches)
	}
	return &Result{Matches: matches, Compared: candidates.Len()}, nil
}
