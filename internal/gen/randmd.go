package gen

import (
	"fmt"
	"math/rand"

	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// MDGenConfig configures the random-MD generator used by the scalability
// experiments of Section 6.1 ("the MDs used in these experiments were
// produced by a generator. Given schemas (R1, R2) and a number l, the
// generator randomly produces a set Σ of l MDs over the schemas").
type MDGenConfig struct {
	Seed int64
	// Count is the number of MDs to generate (card(Σ)).
	Count int
	// MaxLHS bounds the LHS length (1..MaxLHS conjuncts). Default 3.
	MaxLHS int
	// MaxRHS bounds the RHS length (1..MaxRHS pairs). Default 2.
	MaxRHS int
	// Ops is the similarity-operator pool for LHS conjuncts; equality is
	// always included. Default: dl(0.80) and jaro(0.85).
	Ops []similarity.Operator
	// TargetBias is the probability that an RHS pair is drawn from the
	// target (keeping Σ relevant to RCK derivation). Default 0.6; the
	// exhaustive-enumeration experiment (Figure 8(c)) uses a lower bias
	// so the total RCK count stays in the paper's 5-50 range.
	TargetBias float64
}

// ScalabilitySchemas builds the synthetic schema pair used for Figure 8:
// two relations whose first yLen attributes form the comparable target
// (Y1, Y2), plus `extra` additional attributes each for MDs to roam over.
func ScalabilitySchemas(yLen, extra int) (schema.Pair, core.Target) {
	mk := func(name, prefix string) *schema.Relation {
		attrs := make([]string, yLen+extra)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("%s%02d", prefix, i)
		}
		return schema.MustStrings(name, attrs...)
	}
	left := mk("R1", "a")
	right := mk("R2", "b")
	ctx := schema.MustPair(left, right)
	y1 := make(schema.AttrList, yLen)
	y2 := make(schema.AttrList, yLen)
	for i := 0; i < yLen; i++ {
		y1[i] = left.Attr(i).Name
		y2[i] = right.Attr(i).Name
	}
	target, err := core.NewTarget(ctx, y1, y2)
	if err != nil {
		panic(err)
	}
	return ctx, target
}

// RandomMDs generates cfg.Count random MDs over the context. The shape
// follows the paper's generator: short similarity LHSs over random
// attribute pairs, small RHSs. A bias towards target attributes on the
// RHS keeps the generated Σ relevant to RCK derivation (an unbiased
// generator produces rule sets whose closures never touch the target,
// trivializing findRCKs).
func RandomMDs(ctx schema.Pair, target core.Target, cfg MDGenConfig) []core.MD {
	if cfg.MaxLHS <= 0 {
		cfg.MaxLHS = 3
	}
	if cfg.MaxRHS <= 0 {
		cfg.MaxRHS = 2
	}
	ops := cfg.Ops
	if len(ops) == 0 {
		ops = []similarity.Operator{similarity.DL(0.8), similarity.JaroOp(0.85)}
	}
	if cfg.TargetBias == 0 {
		cfg.TargetBias = 0.6
	}
	ops = append([]similarity.Operator{similarity.Eq()}, ops...)
	rnd := rand.New(rand.NewSource(cfg.Seed))
	nl, nr := ctx.Left.Arity(), ctx.Right.Arity()

	randPair := func() core.AttrPair {
		return core.P(ctx.Left.Attr(rnd.Intn(nl)).Name, ctx.Right.Attr(rnd.Intn(nr)).Name)
	}
	targetPairs := target.Pairs()

	out := make([]core.MD, 0, cfg.Count)
	for len(out) < cfg.Count {
		lhsLen := 1 + rnd.Intn(cfg.MaxLHS)
		lhs := make([]core.Conjunct, lhsLen)
		for i := range lhs {
			lhs[i] = core.Conjunct{Pair: randPair(), Op: ops[rnd.Intn(len(ops))]}
		}
		rhsLen := 1 + rnd.Intn(cfg.MaxRHS)
		rhs := make([]core.AttrPair, rhsLen)
		for i := range rhs {
			if rnd.Float64() < cfg.TargetBias && len(targetPairs) > 0 {
				rhs[i] = targetPairs[rnd.Intn(len(targetPairs))]
			} else {
				rhs[i] = randPair()
			}
		}
		md, err := core.NewMD(ctx, lhs, rhs)
		if err != nil {
			continue // e.g. duplicate-free constraints; retry
		}
		out = append(out, md)
	}
	return out
}
