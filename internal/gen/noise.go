package gen

import (
	"math/rand"
	"strings"
)

// Noiser injects the paper's error spectrum into attribute values:
// "ranging from small typographical changes to complete change of the
// attribute" (Section 6.2).
type Noiser struct {
	rnd *rand.Rand
	// Replacements provides domain-appropriate complete replacements per
	// attribute; when an attribute has no entry, a generic scramble is
	// used for the "complete change" error class.
	Replacements map[string]func(*rand.Rand) string
}

// NewNoiser builds a Noiser over the given source of randomness.
func NewNoiser(rnd *rand.Rand) *Noiser {
	return &Noiser{rnd: rnd, Replacements: map[string]func(*rand.Rand) string{}}
}

const typoAlphabet = "abcdefghijklmnopqrstuvwxyz"

// Typo applies one random single-character edit: insertion, deletion,
// substitution or adjacent transposition (the Damerau–Levenshtein edit
// classes).
func (n *Noiser) Typo(s string) string {
	rs := []rune(s)
	if len(rs) == 0 {
		return string(typoAlphabet[n.rnd.Intn(len(typoAlphabet))])
	}
	switch n.rnd.Intn(4) {
	case 0: // insert
		pos := n.rnd.Intn(len(rs) + 1)
		c := rune(typoAlphabet[n.rnd.Intn(len(typoAlphabet))])
		rs = append(rs[:pos], append([]rune{c}, rs[pos:]...)...)
	case 1: // delete
		pos := n.rnd.Intn(len(rs))
		rs = append(rs[:pos], rs[pos+1:]...)
	case 2: // substitute
		pos := n.rnd.Intn(len(rs))
		rs[pos] = rune(typoAlphabet[n.rnd.Intn(len(typoAlphabet))])
	default: // transpose
		if len(rs) < 2 {
			rs = append(rs, rune(typoAlphabet[n.rnd.Intn(len(typoAlphabet))]))
		} else {
			pos := n.rnd.Intn(len(rs) - 1)
			rs[pos], rs[pos+1] = rs[pos+1], rs[pos]
		}
	}
	return string(rs)
}

// Typos applies k independent typos.
func (n *Noiser) Typos(s string, k int) string {
	for i := 0; i < k; i++ {
		s = n.Typo(s)
	}
	return s
}

// Initial abbreviates a name to its initial ("Mark" -> "M.").
func (n *Noiser) Initial(s string) string {
	rs := []rune(strings.TrimSpace(s))
	if len(rs) == 0 {
		return s
	}
	return string(rs[0]) + "."
}

// AbbrevStreet shortens street suffixes ("Street" -> "St").
func (n *Noiser) AbbrevStreet(s string) string {
	repl := strings.NewReplacer(
		"Street", "St", "Avenue", "Ave", "Road", "Rd", "Lane", "Ln",
		"Drive", "Dr", "Court", "Ct", "Boulevard", "Blvd", "Place", "Pl",
	)
	return repl.Replace(s)
}

// Truncate keeps a random-length prefix (at least one rune).
func (n *Noiser) Truncate(s string) string {
	rs := []rune(s)
	if len(rs) <= 1 {
		return s
	}
	keep := 1 + n.rnd.Intn(len(rs)-1)
	return string(rs[:keep])
}

// CaseFlip changes the case of the whole value.
func (n *Noiser) CaseFlip(s string) string {
	if n.rnd.Intn(2) == 0 {
		return strings.ToUpper(s)
	}
	return strings.ToLower(s)
}

// Null blanks the value the way the paper's Figure 1 billing tuples have
// "null" genders.
func (n *Noiser) Null(string) string { return "null" }

// Scramble is the generic "complete change of the attribute": a fresh
// random string with the same approximate length.
func (n *Noiser) Scramble(s string) string {
	ln := len([]rune(s))
	if ln == 0 {
		ln = 6
	}
	var b strings.Builder
	for i := 0; i < ln; i++ {
		b.WriteByte(typoAlphabet[n.rnd.Intn(len(typoAlphabet))])
	}
	return b.String()
}

// Replace applies the domain-appropriate complete replacement for the
// attribute, or Scramble when none is registered.
func (n *Noiser) Replace(attr, s string) string {
	if f, ok := n.Replacements[attr]; ok {
		return f(n.rnd)
	}
	return n.Scramble(s)
}

// Corrupt applies one error drawn from the paper's spectrum to the value
// of the given attribute. The distribution leans towards small changes
// (the realistic case) but includes nulling and complete replacement:
//
//	40%  one typo
//	15%  two typos
//	10%  truncation / initial (names) / suffix abbreviation (streets)
//	10%  case change
//	10%  null
//	15%  complete change
func (n *Noiser) Corrupt(attr, s string) string {
	r := n.rnd.Float64()
	switch {
	case r < 0.40:
		return n.Typo(s)
	case r < 0.55:
		return n.Typos(s, 2)
	case r < 0.65:
		switch attr {
		case "fn", "ln":
			return n.Initial(s)
		case "street":
			return n.AbbrevStreet(s)
		default:
			return n.Truncate(s)
		}
	case r < 0.75:
		return n.CaseFlip(s)
	case r < 0.85:
		return n.Null(s)
	default:
		return n.Replace(attr, s)
	}
}
