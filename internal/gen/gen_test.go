package gen

import (
	"math/rand"
	"strings"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/metrics"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func TestSchemaShapes(t *testing.T) {
	c, b := CreditSchema(), BillingSchema()
	if c.Arity() != 13 {
		t.Errorf("credit arity = %d, want 13 (Section 6.2)", c.Arity())
	}
	if b.Arity() != 21 {
		t.Errorf("billing arity = %d, want 21 (Section 6.2)", b.Arity())
	}
	ctx := schema.MustPair(c, b)
	tg := Target(ctx)
	if len(tg.Y1) != 11 || len(tg.Y2) != 11 {
		t.Errorf("target lengths = %d/%d, want 11 (Section 6.2)", len(tg.Y1), len(tg.Y2))
	}
}

func TestHolderMDs(t *testing.T) {
	ds, err := Generate(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	sigma := HolderMDs(ds.Ctx)
	if len(sigma) != 7 {
		t.Fatalf("HolderMDs = %d rules, want 7 (Section 6.2)", len(sigma))
	}
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			t.Errorf("MD %d invalid: %v", i, err)
		}
	}
	// The rule set supports a healthy set of RCKs for the target.
	keys, err := core.FindRCKs(ds.Ctx, sigma, Target(ds.Ctx), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 5 {
		for _, k := range keys {
			t.Logf("  %s", k)
		}
		t.Fatalf("only %d RCKs derivable from the holder MDs, want >= 5 for top-5 experiments", len(keys))
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{NumCredit: 0, BillingMin: 1, BillingMax: 1},
		{NumCredit: 5, BillingMin: 0, BillingMax: 1},
		{NumCredit: 5, BillingMin: 2, BillingMax: 1},
		{NumCredit: 5, BillingMin: 1, BillingMax: 1, DupRate: 1.5},
		{NumCredit: 5, BillingMin: 1, BillingMax: 1, ErrProb: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	k := 200
	cfg := DefaultConfig(k)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Credit: K clean + ~80% duplicates.
	if ds.Credit.Len() < k || ds.Credit.Len() > 2*k {
		t.Fatalf("credit size = %d for K=%d", ds.Credit.Len(), k)
	}
	dupFrac := float64(ds.Credit.Len()-k) / float64(k)
	if dupFrac < 0.7 || dupFrac > 0.9 {
		t.Errorf("credit duplicate fraction = %.2f, want ≈0.8", dupFrac)
	}
	// Billing: between K*min and K*max clean plus duplicates.
	if ds.Billing.Len() < k || ds.Billing.Len() > 2*2*k {
		t.Fatalf("billing size = %d for K=%d", ds.Billing.Len(), k)
	}
	// Every tuple has a holder.
	if len(ds.CreditHolder) != ds.Credit.Len() {
		t.Errorf("credit holder map size %d vs %d tuples", len(ds.CreditHolder), ds.Credit.Len())
	}
	if len(ds.BillingHolder) != ds.Billing.Len() {
		t.Errorf("billing holder map size %d vs %d tuples", len(ds.BillingHolder), ds.Billing.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if a.Credit.Len() != b.Credit.Len() || a.Billing.Len() != b.Billing.Len() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Credit.Tuples {
		if strings.Join(a.Credit.Tuples[i].Values, "|") != strings.Join(b.Credit.Tuples[i].Values, "|") {
			t.Fatal("same seed produced different credit tuples")
		}
	}
	c, err := Generate(Config{Seed: 99, NumCredit: 50, BillingMin: 1, BillingMax: 2, DupRate: 0.8, ErrProb: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Credit.Tuples {
		if i >= len(c.Credit.Tuples) || strings.Join(a.Credit.Tuples[i].Values, "|") != strings.Join(c.Credit.Tuples[i].Values, "|") {
			same = false
			break
		}
	}
	if same && a.Credit.Len() == c.Credit.Len() {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestTruth(t *testing.T) {
	ds, err := Generate(DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.Truth()
	if truth.Len() == 0 {
		t.Fatal("empty truth")
	}
	// Every truth pair shares a holder; every cross-holder pair is absent.
	for _, p := range truth.Pairs() {
		if ds.CreditHolder[p.Left] != ds.BillingHolder[p.Right] {
			t.Fatalf("truth pair %v crosses holders", p)
		}
	}
	// Spot-check completeness: pick holder 0's tuples.
	var c0, b0 []int
	for id, h := range ds.CreditHolder {
		if h == 0 {
			c0 = append(c0, id)
		}
	}
	for id, h := range ds.BillingHolder {
		if h == 0 {
			b0 = append(b0, id)
		}
	}
	for _, cid := range c0 {
		for _, bid := range b0 {
			if !truth.Has(metrics.Pair{Left: cid, Right: bid}) {
				t.Fatalf("truth missing same-holder pair (%d, %d)", cid, bid)
			}
		}
	}
	if ds.TotalPairs() != ds.Credit.Len()*ds.Billing.Len() {
		t.Error("TotalPairs wrong")
	}
}

func TestDuplicatesKeepSomeSignal(t *testing.T) {
	// With ErrProb 0.8 most duplicate attributes are corrupted but each
	// duplicate should usually retain at least one clean target
	// attribute (the basis for matching at all).
	ds, err := Generate(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	tg := Target(ds.Ctx)
	// Count agreement between originals and duplicates per holder.
	type agg struct{ agree, total int }
	var a agg
	byHolder := map[int][]int{}
	for id, h := range ds.CreditHolder {
		byHolder[h] = append(byHolder[h], id)
	}
	for _, ids := range byHolder {
		if len(ids) < 2 {
			continue
		}
		t0, _ := ds.Credit.ByID(ids[0])
		t1, _ := ds.Credit.ByID(ids[1])
		for _, attr := range tg.Y1 {
			if ds.Credit.MustGet(t0, attr) == ds.Credit.MustGet(t1, attr) {
				a.agree++
			}
			a.total++
		}
	}
	if a.total == 0 {
		t.Fatal("no duplicates generated")
	}
	frac := float64(a.agree) / float64(a.total)
	// ~20% attributes untouched plus occasional identity-preserving noise.
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("duplicate agreement fraction = %.2f, want ≈0.2-0.35", frac)
	}
}

func TestLtStats(t *testing.T) {
	ds, err := Generate(DefaultConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	lt := ds.LtStats()
	street := lt(core.P("street", "street"))
	gender := lt(core.P("gender", "gender"))
	if street <= gender {
		t.Errorf("lt(street)=%.1f should exceed lt(gender)=%.1f", street, gender)
	}
	if lt(core.P("nosuch", "nosuch")) != 0 {
		t.Error("unknown attribute must have lt 0")
	}
	// Cached value stable.
	if lt(core.P("street", "street")) != street {
		t.Error("lt cache broken")
	}
}

func TestNoiser(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	n := NewNoiser(rnd)
	// Typo changes the string by exactly one DL edit (usually).
	for i := 0; i < 200; i++ {
		s := "Clifford"
		got := n.Typo(s)
		if d := similarity.DamerauLevenshtein(s, got); d > 1 {
			t.Fatalf("Typo(%q) = %q, DL distance %d > 1", s, got, d)
		}
	}
	if n.Typo("") == "" {
		t.Error("Typo on empty must produce a character")
	}
	if got := n.Initial("Mark"); got != "M." {
		t.Errorf("Initial = %q", got)
	}
	if got := n.Initial(""); got != "" {
		t.Errorf("Initial(empty) = %q", got)
	}
	if got := n.AbbrevStreet("10 Oak Street"); got != "10 Oak St" {
		t.Errorf("AbbrevStreet = %q", got)
	}
	if got := n.Null("x"); got != "null" {
		t.Errorf("Null = %q", got)
	}
	for i := 0; i < 50; i++ {
		tr := n.Truncate("abcdef")
		if len(tr) < 1 || len(tr) >= 6 {
			t.Fatalf("Truncate length out of range: %q", tr)
		}
		if !strings.HasPrefix("abcdef", tr) {
			t.Fatalf("Truncate not a prefix: %q", tr)
		}
	}
	if got := n.Truncate("a"); got != "a" {
		t.Errorf("Truncate single rune = %q", got)
	}
	// Scramble keeps approximate length.
	if got := n.Scramble("abcdef"); len(got) != 6 {
		t.Errorf("Scramble length = %d", len(got))
	}
	if got := n.Scramble(""); len(got) == 0 {
		t.Error("Scramble of empty must be non-empty")
	}
	// Corrupt never panics and is registered-replacement aware.
	n.Replacements["fn"] = func(r *rand.Rand) string { return "REPL" }
	for i := 0; i < 500; i++ {
		_ = n.Corrupt("fn", "Mark")
		_ = n.Corrupt("street", "10 Oak Street")
		_ = n.Corrupt("zip", "07974")
	}
}

func TestScalabilitySchemas(t *testing.T) {
	ctx, target := ScalabilitySchemas(8, 6)
	if ctx.Left.Arity() != 14 || ctx.Right.Arity() != 14 {
		t.Fatalf("arities = %d/%d", ctx.Left.Arity(), ctx.Right.Arity())
	}
	if len(target.Y1) != 8 {
		t.Fatalf("target length = %d", len(target.Y1))
	}
	if err := ctx.Comparable(target.Y1, target.Y2); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMDs(t *testing.T) {
	ctx, target := ScalabilitySchemas(6, 6)
	mds := RandomMDs(ctx, target, MDGenConfig{Seed: 5, Count: 300})
	if len(mds) != 300 {
		t.Fatalf("generated %d MDs, want 300", len(mds))
	}
	for i, md := range mds {
		if err := md.Validate(); err != nil {
			t.Fatalf("MD %d invalid: %v", i, err)
		}
		if len(md.LHS) > 3 || len(md.RHS) > 2 {
			t.Fatalf("MD %d out of shape: %s", i, md)
		}
	}
	// Determinism.
	mds2 := RandomMDs(ctx, target, MDGenConfig{Seed: 5, Count: 300})
	for i := range mds {
		if mds[i].String() != mds2[i].String() {
			t.Fatal("RandomMDs not deterministic")
		}
	}
	// findRCKs over generated MDs returns multiple keys (the sets are
	// biased to be target-relevant).
	keys, err := core.FindRCKs(ctx, mds, target, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 3 {
		t.Errorf("only %d RCKs from 300 random MDs; generator bias too weak", len(keys))
	}
}
