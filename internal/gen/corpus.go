// Package gen generates the synthetic datasets and rule sets of the
// experimental study (Section 6).
//
// The paper populates its schemas with "real-life data scraped from the
// Web" (US addresses, online-store items) and then dirties it with a
// precisely specified protocol: 80% duplicates, and errors injected into
// each duplicate attribute with probability 80%, "ranging from small
// typographical changes to complete change of the attribute". The
// experiments depend on that protocol — and on the generator holding the
// ground truth — rather than on the particular clean strings, so this
// package substitutes embedded corpora for the scraped data (DESIGN.md
// §3) and implements the dirtying protocol faithfully.
package gen

// firstNames is the clean first-name corpus.
var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda",
	"David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
	"Thomas", "Sarah", "Christopher", "Karen", "Charles", "Lisa", "Daniel", "Nancy",
	"Matthew", "Betty", "Anthony", "Sandra", "Mark", "Margaret", "Donald", "Ashley",
	"Steven", "Kimberly", "Andrew", "Emily", "Paul", "Donna", "Joshua", "Michelle",
	"Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Melissa", "George", "Deborah",
	"Timothy", "Stephanie", "Ronald", "Rebecca", "Jason", "Sharon", "Edward", "Laura",
	"Jeffrey", "Cynthia", "Ryan", "Dorothy", "Jacob", "Amy", "Gary", "Kathleen",
	"Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Brenda", "Stephen", "Emma",
	"Larry", "Anna", "Justin", "Pamela", "Scott", "Nicole", "Brandon", "Samantha",
	"Benjamin", "Katherine", "Samuel", "Christine", "Gregory", "Helen", "Alexander", "Debra",
	"Patrick", "Rachel", "Frank", "Carolyn", "Raymond", "Janet", "Jack", "Maria",
	"Dennis", "Catherine", "Jerry", "Heather", "Tyler", "Diane", "Aaron", "Olivia",
	"Jose", "Julie", "Adam", "Joyce", "Nathan", "Victoria", "Henry", "Ruth",
	"Zachary", "Virginia", "Douglas", "Lauren", "Peter", "Kelly", "Kyle", "Christina",
}

// lastNames is the clean surname corpus.
var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
	"Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas",
	"Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
	"Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young",
	"Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
	"Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
	"Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales", "Murphy",
	"Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson", "Bailey",
	"Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson",
	"Watson", "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza",
	"Ruiz", "Hughes", "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers",
	"Long", "Ross", "Foster", "Jimenez", "Clifford", "Stolfo", "Winkler", "Fellegi",
}

// streetNames combine with numbers and suffixes into street addresses.
var streetNames = []string{
	"Oak", "Elm", "Maple", "Cedar", "Pine", "Walnut", "Chestnut", "Spruce",
	"Main", "Church", "High", "Park", "Washington", "Lake", "Hill", "River",
	"Mill", "Spring", "Ridge", "Valley", "Forest", "Meadow", "Sunset", "Highland",
	"Jackson", "Lincoln", "Jefferson", "Franklin", "Madison", "Monroe", "Adams", "Center",
	"Prospect", "Pleasant", "Broad", "Market", "Union", "Water", "Bridge", "Grove",
	"Willow", "Cherry", "Dogwood", "Magnolia", "Sycamore", "Locust", "Hickory", "Poplar",
}

var streetSuffixes = []string{"Street", "Avenue", "Road", "Lane", "Drive", "Court", "Boulevard", "Place"}

// city holds a city with its county, state and ZIP prefix.
type city struct {
	Name   string
	County string
	State  string
	Zip3   string // first three digits of the ZIP code
}

var cities = []city{
	{"Murray Hill", "Union", "NJ", "079"},
	{"Newark", "Essex", "NJ", "071"},
	{"Jersey City", "Hudson", "NJ", "073"},
	{"Trenton", "Mercer", "NJ", "086"},
	{"Princeton", "Mercer", "NJ", "085"},
	{"New York", "New York", "NY", "100"},
	{"Brooklyn", "Kings", "NY", "112"},
	{"Buffalo", "Erie", "NY", "142"},
	{"Albany", "Albany", "NY", "122"},
	{"Yonkers", "Westchester", "NY", "107"},
	{"Philadelphia", "Philadelphia", "PA", "191"},
	{"Pittsburgh", "Allegheny", "PA", "152"},
	{"Allentown", "Lehigh", "PA", "181"},
	{"Boston", "Suffolk", "MA", "021"},
	{"Worcester", "Worcester", "MA", "016"},
	{"Springfield", "Hampden", "MA", "011"},
	{"Hartford", "Hartford", "CT", "061"},
	{"New Haven", "New Haven", "CT", "065"},
	{"Stamford", "Fairfield", "CT", "069"},
	{"Baltimore", "Baltimore", "MD", "212"},
	{"Annapolis", "Anne Arundel", "MD", "214"},
	{"Richmond", "Richmond", "VA", "232"},
	{"Norfolk", "Norfolk", "VA", "235"},
	{"Arlington", "Arlington", "VA", "222"},
	{"Chicago", "Cook", "IL", "606"},
	{"Springfield", "Sangamon", "IL", "627"},
	{"Peoria", "Peoria", "IL", "616"},
	{"Columbus", "Franklin", "OH", "432"},
	{"Cleveland", "Cuyahoga", "OH", "441"},
	{"Cincinnati", "Hamilton", "OH", "452"},
	{"Detroit", "Wayne", "MI", "482"},
	{"Grand Rapids", "Kent", "MI", "495"},
	{"Atlanta", "Fulton", "GA", "303"},
	{"Savannah", "Chatham", "GA", "314"},
	{"Miami", "Miami-Dade", "FL", "331"},
	{"Orlando", "Orange", "FL", "328"},
	{"Tampa", "Hillsborough", "FL", "336"},
	{"Houston", "Harris", "TX", "770"},
	{"Dallas", "Dallas", "TX", "752"},
	{"Austin", "Travis", "TX", "787"},
	{"San Antonio", "Bexar", "TX", "782"},
	{"Phoenix", "Maricopa", "AZ", "850"},
	{"Tucson", "Pima", "AZ", "857"},
	{"Denver", "Denver", "CO", "802"},
	{"Boulder", "Boulder", "CO", "803"},
	{"Seattle", "King", "WA", "981"},
	{"Spokane", "Spokane", "WA", "992"},
	{"Portland", "Multnomah", "OR", "972"},
	{"San Francisco", "San Francisco", "CA", "941"},
	{"Los Angeles", "Los Angeles", "CA", "900"},
	{"San Diego", "San Diego", "CA", "921"},
	{"Sacramento", "Sacramento", "CA", "958"},
	{"San Jose", "Santa Clara", "CA", "951"},
	{"Las Vegas", "Clark", "NV", "891"},
	{"Salt Lake City", "Salt Lake", "UT", "841"},
	{"Minneapolis", "Hennepin", "MN", "554"},
	{"St. Paul", "Ramsey", "MN", "551"},
	{"Milwaukee", "Milwaukee", "WI", "532"},
	{"Madison", "Dane", "WI", "537"},
	{"Edinburgh", "Midlothian", "UK", "EH8"},
}

var emailDomains = []string{
	"gm.com", "hm.com", "yh.com", "aol.com", "mail.com", "inbox.com",
	"post.net", "web.org", "fastmail.net", "proton.me", "univ.edu", "corp.biz",
}

var items = []string{
	"iPod", "PSP", "CD", "book", "DVD", "laptop", "camera", "headphones",
	"keyboard", "monitor", "printer", "router", "tablet", "phone", "charger",
	"speaker", "microphone", "webcam", "mouse", "desk", "chair", "lamp",
	"backpack", "watch", "sunglasses", "jacket", "sneakers", "umbrella",
	"blender", "toaster", "kettle", "vacuum", "heater", "fan", "drill",
	"hammer", "ladder", "tent", "bicycle", "scooter",
}

var cardTypes = []string{"visa", "master", "amex", "discover"}

var shipMethods = []string{"ground", "air", "express", "pickup"}

var statuses = []string{"shipped", "pending", "delivered", "returned"}
