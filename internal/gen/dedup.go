package gen

import (
	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// DedupCtx returns the self-match context (credit, credit): the shape
// of a deduplication workload over the generated card-holder corpus,
// and the context the streaming enforcement layer (internal/stream)
// serves.
func DedupCtx() schema.Pair {
	rel := CreditSchema()
	return schema.MustPair(rel, rel)
}

// DedupMDs returns matching rules for deduplicating the credit relation
// against itself (ctx must be a self-match pair over CreditSchema, such
// as DedupCtx()).
//
// The set is layered the way the corpus demands. The generator's
// dirtying protocol includes "complete change of the attribute" errors
// — including the literal "null" of the paper's Figure 1 — and "null" =
// "null" under every similarity operator, so any single-attribute rule
// mass-links unrelated records through degenerate values. Two design
// rules follow:
//
//   - no rule ever WRITES an identity attribute (cno, ssn, fn, ln, dob,
//     gender): repairs are confined to contact/address attributes, so a
//     bad match can never poison the evidence later matches read;
//   - record-identity keys (DedupClusterRules) conjoin at least two
//     identity attributes, so a degenerate value alone never links.
//
// The set deliberately mixes rule shapes so every enforcement path is
// exercised: equality and Soundex conjuncts give the chase
// hash-encodable join keys (blocked scans), the card-number and
// birth-date rules have only similarity conjuncts (dense scans).
func DedupMDs(ctx schema.Pair) []core.MD {
	d := similarity.DL(0.8)
	sdx := similarity.SoundexEq()
	contact := []core.AttrPair{
		core.P("tel", "tel"), core.P("email", "email"),
		core.P("street", "street"), core.P("city", "city"),
		core.P("county", "county"), core.P("zip", "zip"),
	}
	addr := []core.AttrPair{
		core.P("street", "street"), core.P("city", "city"),
		core.P("county", "county"), core.P("zip", "zip"),
	}
	return []core.MD{
		// κ1: card number + surname identify the holder.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("cno", d, "cno"), core.C("ln", d, "ln")},
			contact),
		// κ2: birth date + full name identify the holder.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("dob", d, "dob"), core.C("ln", d, "ln"), core.C("fn", d, "fn")},
			contact),
		// κ3: phone + surname identify the holder.
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("tel", "tel"), core.C("ln", d, "ln")},
			addr),
		// κ4: street + full name identify the holder.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("street", d, "street"), core.C("ln", d, "ln"), core.C("fn", d, "fn")},
			addr),
		// κ5: phonetic surname + first name + birth date.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("ln", sdx, "ln"), core.C("fn", d, "fn"), core.C("dob", d, "dob")},
			addr),
		// ρ1: same phone: same address (repair only — a shared phone
		// means a shared household, not a shared identity).
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("tel", "tel")},
			addr),
		// ρ2: same zip and similar street: same city and county (repair
		// only — matches neighbors).
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("zip", "zip"), core.C("street", d, "street")},
			[]core.AttrPair{core.P("city", "city"), core.P("county", "county")}),
	}
}

// DedupClusterRules returns the indices into DedupMDs of the
// record-identity keys — the rules whose match means "same holder",
// for stream.ClusterRules. ρ1 and ρ2 repair address attributes:
// matching them means "same household" or "same block", so linking on
// them over-merges.
func DedupClusterRules() []int { return []int{0, 1, 2, 3, 4} }
