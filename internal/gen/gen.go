package gen

import (
	"fmt"
	"math/rand"

	"mdmatch/internal/core"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// CreditSchema returns the extended credit schema of Section 6.2
// (13 attributes).
func CreditSchema() *schema.Relation {
	return schema.MustStrings("credit",
		"cno", "ssn", "fn", "ln", "street", "city", "county", "zip",
		"tel", "email", "gender", "dob", "type")
}

// BillingSchema returns the extended billing schema of Section 6.2
// (21 attributes).
func BillingSchema() *schema.Relation {
	return schema.MustStrings("billing",
		"cno", "fn", "ln", "street", "city", "county", "zip", "phn",
		"email", "gender", "dob", "item", "brand", "category", "price",
		"qty", "orderdate", "ship", "status", "coupon", "total")
}

// Target returns the 11-attribute card-holder identification target
// (Y1, Y2) of Section 6.2 ("name, phone, street, city, county, zip,
// etc.").
func Target(ctx schema.Pair) core.Target {
	t, err := core.NewTarget(ctx,
		schema.AttrList{"fn", "ln", "street", "city", "county", "zip", "tel", "email", "gender", "dob", "cno"},
		schema.AttrList{"fn", "ln", "street", "city", "county", "zip", "phn", "email", "gender", "dob", "cno"})
	if err != nil {
		panic(err)
	}
	return t
}

// HolderMDs returns the "7 simple MDs over credit and billing, which
// specify matching rules for card holders" of Section 6.2. Following the
// paper's setup, similarity tests use the DL metric with θ=0.8; equality
// is reserved for short fields where a single edit already destroys
// identity (zip, gender) — on those dl(0.8) degenerates to equality
// anyway.
func HolderMDs(ctx schema.Pair) []core.MD {
	d := similarity.DL(0.8)
	target := Target(ctx)
	return []core.MD{
		// ϕ1: similar surname, street and city, similar first name: the
		// extended analog of the paper's given key.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("ln", d, "ln"), core.C("street", d, "street"),
				core.C("city", d, "city"), core.C("fn", d, "fn")},
			target.Pairs()),
		// ϕ2: matching phone identifies the postal address block.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("tel", d, "phn")},
			[]core.AttrPair{core.P("street", "street"), core.P("city", "city"),
				core.P("county", "county"), core.P("zip", "zip")}),
		// ϕ3: matching email identifies the name.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("email", d, "email")},
			[]core.AttrPair{core.P("fn", "fn"), core.P("ln", "ln")}),
		// ϕ4: matching card number and similar surname identify the
		// person.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("cno", d, "cno"), core.C("ln", d, "ln")},
			[]core.AttrPair{core.P("fn", "fn"), core.P("ln", "ln"),
				core.P("gender", "gender"), core.P("dob", "dob")}),
		// ϕ5: same zip and similar street identify city and county.
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("zip", "zip"), core.C("street", d, "street")},
			[]core.AttrPair{core.P("city", "city"), core.P("county", "county")}),
		// ϕ6: matching birth date and name identify phone and email.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("dob", d, "dob"), core.C("ln", d, "ln"), core.C("fn", d, "fn")},
			[]core.AttrPair{core.P("tel", "phn"), core.P("email", "email")}),
		// ϕ7: surname, similar first name, zip and birth date make a key.
		core.MustMD(ctx,
			[]core.Conjunct{core.C("ln", d, "ln"), core.C("fn", d, "fn"),
				core.Eq("zip", "zip"), core.C("dob", d, "dob")},
			target.Pairs()),
	}
}

// Config controls dataset generation.
type Config struct {
	Seed int64
	// NumCredit is K: the number of distinct card holders (each with one
	// clean credit tuple).
	NumCredit int
	// BillingMin/Max bound the purchases per card holder.
	BillingMin, BillingMax int
	// DupRate is the fraction of tuples that receive a dirty duplicate
	// (the paper's 80%).
	DupRate float64
	// ErrProb is the per-attribute error probability within a duplicate
	// (the paper's 80%).
	ErrProb float64
}

// DefaultConfig returns the paper's protocol for K holders.
func DefaultConfig(k int) Config {
	return Config{Seed: 1, NumCredit: k, BillingMin: 1, BillingMax: 2, DupRate: 0.8, ErrProb: 0.8}
}

// Dataset is a generated instance pair plus the generator-held truth.
type Dataset struct {
	Ctx     schema.Pair
	Credit  *record.Instance
	Billing *record.Instance
	// CreditHolder / BillingHolder map tuple ids to holder entity ids.
	CreditHolder  map[int]int
	BillingHolder map[int]int
}

// holder is one clean card-holder entity.
type holder struct {
	cno, ssn, fn, ln, street, cty, county, zip, tel, email, gender, dob, typ string
	city                                                                     city
}

// Generate builds a credit/billing dataset following the protocol of
// Section 6.2: clean tuples from the corpora, DupRate duplicates, and
// per-attribute errors with probability ErrProb inside duplicates.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumCredit <= 0 {
		return nil, fmt.Errorf("gen: NumCredit must be positive")
	}
	if cfg.BillingMin <= 0 || cfg.BillingMax < cfg.BillingMin {
		return nil, fmt.Errorf("gen: bad billing bounds [%d, %d]", cfg.BillingMin, cfg.BillingMax)
	}
	if cfg.DupRate < 0 || cfg.DupRate > 1 || cfg.ErrProb < 0 || cfg.ErrProb > 1 {
		return nil, fmt.Errorf("gen: rates must be in [0, 1]")
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	credit := CreditSchema()
	billing := BillingSchema()
	ctx := schema.MustPair(credit, billing)
	ds := &Dataset{
		Ctx:           ctx,
		Credit:        record.NewInstance(credit),
		Billing:       record.NewInstance(billing),
		CreditHolder:  map[int]int{},
		BillingHolder: map[int]int{},
	}
	noiser := newDomainNoiser(rnd)

	// Clean population.
	holders := make([]holder, cfg.NumCredit)
	for h := range holders {
		holders[h] = makeHolder(rnd, h)
		ho := holders[h]
		t := ds.Credit.MustAppend(ho.creditRow()...)
		ds.CreditHolder[t.ID] = h
		nb := cfg.BillingMin + rnd.Intn(cfg.BillingMax-cfg.BillingMin+1)
		for b := 0; b < nb; b++ {
			bt := ds.Billing.MustAppend(ho.billingRow(rnd)...)
			ds.BillingHolder[bt.ID] = h
		}
	}

	// Duplicates: copy, change non-target attributes, then corrupt each
	// target attribute with probability ErrProb.
	targetLeft := map[string]bool{}
	targetRight := map[string]bool{}
	tg := Target(ctx)
	for i := range tg.Y1 {
		targetLeft[tg.Y1[i]] = true
		targetRight[tg.Y2[i]] = true
	}
	dupCredit := []*record.Tuple{}
	for _, t := range ds.Credit.Tuples {
		if rnd.Float64() < cfg.DupRate {
			dupCredit = append(dupCredit, t)
		}
	}
	for _, orig := range dupCredit {
		vals := append([]string(nil), orig.Values...)
		for i, a := range credit.AttrNames() {
			switch {
			case !targetLeft[a]:
				// Non-target attributes change freely in copies.
				vals[i] = noiser.Replace(a, vals[i])
			case rnd.Float64() < cfg.ErrProb:
				vals[i] = noiser.Corrupt(a, vals[i])
			}
		}
		t := ds.Credit.MustAppend(vals...)
		ds.CreditHolder[t.ID] = ds.CreditHolder[orig.ID]
	}
	dupBilling := []*record.Tuple{}
	for _, t := range ds.Billing.Tuples {
		if rnd.Float64() < cfg.DupRate {
			dupBilling = append(dupBilling, t)
		}
	}
	for _, orig := range dupBilling {
		vals := append([]string(nil), orig.Values...)
		for i, a := range billing.AttrNames() {
			switch {
			case !targetRight[a]:
				vals[i] = noiser.Replace(a, vals[i])
			case rnd.Float64() < cfg.ErrProb:
				vals[i] = noiser.Corrupt(a, vals[i])
			}
		}
		t := ds.Billing.MustAppend(vals...)
		ds.BillingHolder[t.ID] = ds.BillingHolder[orig.ID]
	}
	return ds, nil
}

// Truth returns the set of true matches: all (credit, billing) tuple id
// pairs referring to the same card holder.
func (ds *Dataset) Truth() *metrics.PairSet {
	byHolder := map[int][]int{}
	for id, h := range ds.BillingHolder {
		byHolder[h] = append(byHolder[h], id)
	}
	truth := metrics.NewPairSet()
	for cid, h := range ds.CreditHolder {
		for _, bid := range byHolder[h] {
			truth.Add(metrics.Pair{Left: cid, Right: bid})
		}
	}
	return truth
}

// TotalPairs returns the size of the unrestricted comparison space.
func (ds *Dataset) TotalPairs() int { return ds.Credit.Len() * ds.Billing.Len() }

// Pair returns the dataset as a record.PairInstance.
func (ds *Dataset) Pair() *record.PairInstance {
	d, err := record.NewPairInstance(ds.Ctx, ds.Credit, ds.Billing)
	if err != nil {
		panic(err) // construction invariant
	}
	return d
}

// LtStats computes the average value length of each attribute pair from
// the data, for use as the lt statistic of the cost model (Section 5).
func (ds *Dataset) LtStats() func(core.AttrPair) float64 {
	avg := func(in *record.Instance, attr string) float64 {
		i, ok := in.Rel.Index(attr)
		if !ok || in.Len() == 0 {
			return 0
		}
		total := 0
		for _, t := range in.Tuples {
			total += len(t.At(i))
		}
		return float64(total) / float64(in.Len())
	}
	cache := map[core.AttrPair]float64{}
	return func(p core.AttrPair) float64 {
		if v, ok := cache[p]; ok {
			return v
		}
		v := (avg(ds.Credit, p.Left) + avg(ds.Billing, p.Right)) / 2
		cache[p] = v
		return v
	}
}

func makeHolder(rnd *rand.Rand, id int) holder {
	ct := cities[rnd.Intn(len(cities))]
	fn := firstNames[rnd.Intn(len(firstNames))]
	ln := lastNames[rnd.Intn(len(lastNames))]
	gender := "M"
	if rnd.Intn(2) == 0 {
		gender = "F"
	}
	return holder{
		cno:    fmt.Sprintf("%012d", rnd.Int63n(1e12)),
		ssn:    fmt.Sprintf("%09d", rnd.Int63n(1e9)),
		fn:     fn,
		ln:     ln,
		street: randStreet(rnd),
		city:   ct,
		cty:    ct.Name,
		county: ct.County,
		zip:    ct.Zip3 + fmt.Sprintf("%02d", rnd.Intn(100)),
		tel:    randPhone(rnd),
		email:  randEmail(rnd, fn, ln, id),
		gender: gender,
		dob:    randDOB(rnd),
		typ:    cardTypes[rnd.Intn(len(cardTypes))],
	}
}

func (h holder) creditRow() []string {
	return []string{h.cno, h.ssn, h.fn, h.ln, h.street, h.cty, h.county, h.zip,
		h.tel, h.email, h.gender, h.dob, h.typ}
}

func (h holder) billingRow(rnd *rand.Rand) []string {
	price := fmt.Sprintf("%d.%02d", 5+rnd.Intn(500), rnd.Intn(100))
	qty := fmt.Sprint(1 + rnd.Intn(4))
	return []string{h.cno, h.fn, h.ln, h.street, h.cty, h.county, h.zip, h.tel,
		h.email, h.gender, h.dob,
		items[rnd.Intn(len(items))],
		brands[rnd.Intn(len(brands))],
		categories[rnd.Intn(len(categories))],
		price, qty,
		randDate(rnd, 2005, 2008),
		shipMethods[rnd.Intn(len(shipMethods))],
		statuses[rnd.Intn(len(statuses))],
		fmt.Sprintf("C%04d", rnd.Intn(10000)),
		price,
	}
}

var brands = []string{"Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Wonka", "Tyrell"}

var categories = []string{"electronics", "media", "home", "outdoors", "office", "apparel"}

func randStreet(rnd *rand.Rand) string {
	return fmt.Sprintf("%d %s %s", 1+rnd.Intn(999),
		streetNames[rnd.Intn(len(streetNames))],
		streetSuffixes[rnd.Intn(len(streetSuffixes))])
}

func randPhone(rnd *rand.Rand) string {
	return fmt.Sprintf("%03d-%07d", 200+rnd.Intn(800), rnd.Intn(1e7))
}

func randEmail(rnd *rand.Rand, fn, ln string, id int) string {
	return fmt.Sprintf("%s.%s%d@%s",
		lower(fn), lower(ln), id%97, emailDomains[rnd.Intn(len(emailDomains))])
}

func randDOB(rnd *rand.Rand) string { return randDate(rnd, 1940, 1995) }

func randDate(rnd *rand.Rand, fromYear, toYear int) string {
	return fmt.Sprintf("%04d-%02d-%02d",
		fromYear+rnd.Intn(toYear-fromYear+1), 1+rnd.Intn(12), 1+rnd.Intn(28))
}

func lower(s string) string {
	out := []rune(s)
	for i, r := range out {
		if r >= 'A' && r <= 'Z' {
			out[i] = r + ('a' - 'A')
		}
	}
	return string(out)
}

// newDomainNoiser wires the domain-appropriate complete-replacement
// functions for each attribute of the credit/billing schemas.
func newDomainNoiser(rnd *rand.Rand) *Noiser {
	n := NewNoiser(rnd)
	n.Replacements = map[string]func(*rand.Rand) string{
		"fn":     func(r *rand.Rand) string { return firstNames[r.Intn(len(firstNames))] },
		"ln":     func(r *rand.Rand) string { return lastNames[r.Intn(len(lastNames))] },
		"street": randStreet,
		"city":   func(r *rand.Rand) string { return cities[r.Intn(len(cities))].Name },
		"county": func(r *rand.Rand) string { return cities[r.Intn(len(cities))].County },
		"zip":    func(r *rand.Rand) string { return fmt.Sprintf("%05d", r.Intn(1e5)) },
		"tel":    randPhone,
		"phn":    randPhone,
		"email": func(r *rand.Rand) string {
			return randEmail(r, firstNames[r.Intn(len(firstNames))], lastNames[r.Intn(len(lastNames))], r.Intn(97))
		},
		"gender":    func(r *rand.Rand) string { return []string{"M", "F", "null"}[r.Intn(3)] },
		"dob":       randDOB,
		"cno":       func(r *rand.Rand) string { return fmt.Sprintf("%012d", r.Int63n(1e12)) },
		"ssn":       func(r *rand.Rand) string { return fmt.Sprintf("%09d", r.Int63n(1e9)) },
		"type":      func(r *rand.Rand) string { return cardTypes[r.Intn(len(cardTypes))] },
		"item":      func(r *rand.Rand) string { return items[r.Intn(len(items))] },
		"brand":     func(r *rand.Rand) string { return brands[r.Intn(len(brands))] },
		"category":  func(r *rand.Rand) string { return categories[r.Intn(len(categories))] },
		"price":     func(r *rand.Rand) string { return fmt.Sprintf("%d.%02d", 5+r.Intn(500), r.Intn(100)) },
		"qty":       func(r *rand.Rand) string { return fmt.Sprint(1 + r.Intn(4)) },
		"orderdate": func(r *rand.Rand) string { return randDate(r, 2005, 2008) },
		"ship":      func(r *rand.Rand) string { return shipMethods[r.Intn(len(shipMethods))] },
		"status":    func(r *rand.Rand) string { return statuses[r.Intn(len(statuses))] },
		"coupon":    func(r *rand.Rand) string { return fmt.Sprintf("C%04d", r.Intn(10000)) },
		"total":     func(r *rand.Rand) string { return fmt.Sprintf("%d.%02d", 5+r.Intn(500), r.Intn(100)) },
	}
	return n
}
