package trace

// W3C Trace Context (traceparent) extraction and injection. Only the
// version-00 format is spoken:
//
//	traceparent: 00-<32 lowercase hex>-<16 lowercase hex>-<2 hex flags>
//
// Unknown versions and malformed values are ignored (the middleware
// starts a fresh trace), never an error: a bad upstream header must
// not fail a request.

// Traceparent is the header name.
const Traceparent = "traceparent"

// ParseTraceparent extracts the trace id and parent span id from a
// traceparent header value. ok is false for anything malformed: wrong
// length or separators, non-hex digits, an unknown version, or the
// all-zero trace/span ids the spec declares invalid.
func ParseTraceparent(h string) (traceID, parentSpanID string, ok bool) {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if h[0] != '0' || h[1] != '0' {
		return "", "", false // only version 00
	}
	tid, sid, flags := h[3:35], h[36:52], h[53:55]
	if !isLowerHex(tid) || !isLowerHex(sid) || !isLowerHex(flags) {
		return "", "", false
	}
	if allZero(tid) || allZero(sid) {
		return "", "", false
	}
	return tid, sid, true
}

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set (a trace the server started is one it records).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
