package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// endAfter ends the root span with a synthetic duration by backdating
// its start: retention decisions read time.Since(start).
func endAfter(s *Span, d time.Duration) {
	s.start = time.Now().Add(-d)
	s.End()
}

func TestSpanTreeFreezesOnRootEnd(t *testing.T) {
	tr := New(Options{Slow: time.Nanosecond, Capacity: 8, Stripes: 1})
	ctx, root := tr.StartRoot(context.Background(), "http POST /records", "", "", "req-1")
	if root == nil {
		t.Fatal("nil root from a live tracer")
	}
	root.Attr("route", "POST /records")
	cctx, child := StartSpan(ctx, "engine.insert")
	child.AttrInt("id", 42)
	_, grand := StartSpan(cctx, "wal.append")
	grand.End()
	child.End()
	endAfter(root, time.Millisecond)

	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	tc := got[0]
	if tc.RequestID != "req-1" || !tc.Slow || tc.Sampled {
		t.Fatalf("trace header = %+v", tc)
	}
	if len(tc.TraceID) != 32 {
		t.Fatalf("trace id %q", tc.TraceID)
	}
	r := tc.Root
	if r.Name != "http POST /records" || len(r.Children) != 1 {
		t.Fatalf("root = %+v", r)
	}
	if r.Children[0].Name != "engine.insert" || len(r.Children[0].Children) != 1 {
		t.Fatalf("child = %+v", r.Children[0])
	}
	if r.Children[0].Children[0].Name != "wal.append" {
		t.Fatalf("grandchild = %+v", r.Children[0].Children[0])
	}
	if r.Children[0].Attrs[0] != (Attr{Key: "id", Value: "42"}) {
		t.Fatalf("attrs = %+v", r.Children[0].Attrs)
	}
	if got2, ok := tr.Get(tc.TraceID); !ok || got2 != tc {
		t.Fatal("Get did not return the retained trace")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "x", "", "", "")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	ctx2, sp2 := StartSpan(ctx, "child")
	if sp2 != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a span in ctx must be a no-op")
	}
	// Every method tolerates nil.
	sp2.Attr("k", "v")
	sp2.AttrInt("k", 1)
	sp2.End()
	if sp2.TraceID() != "" || sp2.SpanID() != "" {
		t.Fatal("nil span ids")
	}
	if tr.Traces() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer holds traces")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("nil tracer Get")
	}
}

func TestDeterministicSampling(t *testing.T) {
	tr := New(Options{Slow: time.Hour, SampleN: 10, Capacity: 100, Stripes: 1})
	for i := 0; i < 40; i++ {
		_, root := tr.StartRoot(context.Background(), "op", "", "", "")
		endAfter(root, time.Microsecond) // fast: only the sample keeps it
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("sampled %d of 40 at 1-in-10, want 4", len(got))
	}
	for i, tc := range got {
		if !tc.Sampled || tc.Slow {
			t.Fatalf("trace %d = %+v", i, tc)
		}
		if want := uint64(1 + 10*i); tc.Seq != want {
			t.Fatalf("sample grid: trace %d has seq %d, want %d", i, tc.Seq, want)
		}
	}
}

// TestTailRetentionProperty is the retention property test: a trace at
// or above the slow threshold is NEVER evicted while the stripe still
// holds a fast (sampled) trace — only slow traces displace slow
// traces. Randomized mixes of slow and fast completions, seeded.
func TestTailRetentionProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cap := 4 + rng.Intn(8)
		tr := New(Options{Slow: time.Second, SampleN: 1, Capacity: cap, Stripes: 1})
		var slowIDs []string
		for i := 0; i < 10*cap; i++ {
			_, root := tr.StartRoot(context.Background(), "op", "", "", "")
			if rng.Intn(3) == 0 { // slow
				slowIDs = append(slowIDs, root.TraceID())
				endAfter(root, 2*time.Second)
			} else {
				endAfter(root, time.Millisecond)
			}

			kept := tr.Traces()
			if len(kept) > cap {
				t.Fatalf("seed %d: %d traces retained over capacity %d", seed, len(kept), cap)
			}
			keptSlow := map[string]bool{}
			fast := 0
			for _, tc := range kept {
				if tc.Slow {
					keptSlow[tc.TraceID] = true
				} else {
					fast++
				}
			}
			// The invariant: of the most recent cap slow traces, every one
			// must still be present unless the ring is slow-saturated.
			recent := slowIDs
			if len(recent) > cap {
				recent = recent[len(recent)-cap:]
			}
			for _, id := range recent {
				if !keptSlow[id] && fast > 0 {
					t.Fatalf("seed %d step %d: slow trace %s evicted while %d fast traces remain", seed, i, id, fast)
				}
			}
		}
	}
}

// TestRingHammer is the contention test: concurrent root finishes,
// /debug/traces-style reads, and retention evictions (implicit in
// finish at capacity), under -race.
func TestRingHammer(t *testing.T) {
	tr := New(Options{Slow: time.Nanosecond, SampleN: 2, Capacity: 32, Stripes: 4})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				ctx, root := tr.StartRoot(context.Background(), fmt.Sprintf("op-%d", w), "", "", "")
				_, c := StartSpan(ctx, "inner")
				c.AttrInt("i", int64(i))
				c.End()
				root.End()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tc := range tr.Traces() {
					if tc.Root.Name == "" {
						t.Error("frozen trace with empty root")
						return
					}
					tr.Get(tc.TraceID)
				}
			}
		}()
	}
	// A writer ending children concurrently with freezes: root ends
	// while a child is still running (Unfinished path).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 200; i++ {
			ctx, root := tr.StartRoot(context.Background(), "late-child", "", "", "")
			_, c := StartSpan(ctx, "slowpoke")
			done := make(chan struct{})
			go func() { time.Sleep(time.Microsecond); c.End(); close(done) }()
			root.End()
			<-done
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if tr.Len() == 0 || tr.Len() > 32 {
		t.Fatalf("retained %d traces, want 1..32", tr.Len())
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("RequestID = %q", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty ctx RequestID = %q", got)
	}
}
