package trace

import "context"

// Context keys. Unexported types so no other package can collide.
type spanKeyType struct{}
type ridKeyType struct{}

var (
	spanKey spanKeyType
	ridKey  ridKeyType
)

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the current span, or nil. All Span methods
// accept nil, so callers never need the second return of a comma-ok.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a child span under the context's current span and
// returns ctx with the child installed. With no span in ctx (tracing
// off, or an untraced caller) it returns ctx unchanged and a nil span
// — the instrumented code path is identical either way, which is what
// keeps the disabled cost at one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.child(name)
	return ContextWithSpan(ctx, c), c
}

// WithRequestID returns ctx carrying the request id the HTTP
// middleware assigned (or honored) for this request.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey, id)
}

// RequestID returns the request id in ctx, or "". Lower layers put it
// on their log lines so one id threads matchd → engine → stream →
// store.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}
