package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func ctxBG() context.Context { return context.Background() }

func TestParseTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	sid := "00f067aa0ba902b7"
	good := "00-" + tid + "-" + sid + "-01"

	gotT, gotS, ok := ParseTraceparent(good)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", good, gotT, gotS, ok)
	}

	bad := map[string]string{
		"empty":            "",
		"short":            "00-" + tid,
		"long":             good + "-extra",
		"version 01":       "01-" + tid + "-" + sid + "-01",
		"version ff":       "ff-" + tid + "-" + sid + "-01",
		"uppercase hex":    "00-" + strings.ToUpper(tid) + "-" + sid + "-01",
		"non-hex trace id": "00-" + strings.Repeat("g", 32) + "-" + sid + "-01",
		"zero trace id":    "00-" + strings.Repeat("0", 32) + "-" + sid + "-01",
		"zero span id":     "00-" + tid + "-" + strings.Repeat("0", 16) + "-01",
		"bad separator":    "00_" + tid + "-" + sid + "-01",
	}
	for name, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, h)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	tr := New(Options{Slow: time.Nanosecond, Capacity: 4, Stripes: 1})
	_, root := tr.StartRoot(ctxBG(), "op", "", "", "")
	h := FormatTraceparent(root.TraceID(), root.SpanID())
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != root.TraceID() || gotS != root.SpanID() {
		t.Fatalf("round trip %q → %q, %q, %v", h, gotT, gotS, ok)
	}
	root.End()

	// An incoming traceparent is honored: the trace keeps the caller's
	// trace id and records the caller's span as parent. (A fresh tracer:
	// the id deliberately collides with the trace retained above.)
	tr2 := New(Options{Slow: time.Nanosecond, Capacity: 4, Stripes: 1})
	_, root2 := tr2.StartRoot(ctxBG(), "op", gotT, gotS, "")
	if root2.TraceID() != gotT {
		t.Fatalf("trace id not honored: %q", root2.TraceID())
	}
	endAfter(root2, time.Millisecond)
	tc, ok := tr2.Get(gotT)
	if !ok || tc.ParentSpanID != gotS {
		t.Fatalf("parent span id = %+v", tc)
	}
}
