// Package trace is the request-tracing half of the observability
// stack: zero-dependency spans in the style of internal/obs, carried
// through the serving layers by context.Context.
//
// A Tracer owns a lock-striped in-memory ring of COMPLETED traces.
// The HTTP middleware starts one root span per request (honoring an
// incoming W3C traceparent header, w3c.go); the layers below open
// child spans with StartSpan, which is nil-safe end to end — with no
// tracer installed the only cost on a hot path is one context lookup,
// and every Span method accepts a nil receiver. Layers therefore never
// branch on "is tracing on".
//
// Retention is TAIL-BASED: when the root span ends, the trace is kept
// if it ran at least as long as the slow threshold, or if it falls on
// the deterministic 1-in-N sample grid (a counter, not a coin flip, so
// replaying the same traffic keeps the same traces). Within a full
// stripe the oldest FAST trace is evicted first; a slow trace is only
// displaced by slow traces, never by the sample stream.
//
// The package sits below every other internal package (stdlib-only
// imports), so engine, stream and store can use it without creating an
// import cycle with internal/obs.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Tracer.
type Options struct {
	// Slow is the tail-retention threshold: every trace at least this
	// slow is kept (capacity permitting; slow traces only displace slow
	// traces). <= 0 disables slow-keeping.
	Slow time.Duration
	// SampleN keeps a deterministic 1-in-N sample of the remaining
	// (fast) traces: the k-th completed root is kept when k ≡ 1 (mod
	// N). 0 disables sampling.
	SampleN int
	// Capacity bounds retained traces across all stripes (default 256).
	Capacity int
	// Stripes sets the lock striping of the ring (default 8). Tests pin
	// it to 1 to make eviction order fully observable.
	Stripes int
}

// Tracer collects completed traces into a lock-striped ring buffer.
type Tracer struct {
	slow    time.Duration
	sampleN uint64
	seq     atomic.Uint64 // completed roots, for deterministic sampling
	stripes []stripe
	perCap  int
}

type stripe struct {
	mu   sync.Mutex
	ents []*Trace
}

// New builds a Tracer. The zero Options value retains nothing (no slow
// threshold, no sample); callers always set at least one of them.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.Stripes <= 0 {
		o.Stripes = 8
	}
	if o.Stripes > o.Capacity {
		o.Stripes = o.Capacity
	}
	per := (o.Capacity + o.Stripes - 1) / o.Stripes
	t := &Tracer{slow: o.Slow, stripes: make([]stripe, o.Stripes), perCap: per}
	if o.SampleN > 0 {
		t.sampleN = uint64(o.SampleN)
	}
	return t
}

// Trace is one completed request trace: the frozen span tree plus the
// retention verdict. Frozen traces are immutable — /debug/traces reads
// them with only the stripe lock held.
type Trace struct {
	TraceID         string    `json:"trace_id"`
	ParentSpanID    string    `json:"parent_span_id,omitempty"`
	RequestID       string    `json:"request_id,omitempty"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Slow            bool      `json:"slow"`
	Sampled         bool      `json:"sampled"`
	Seq             uint64    `json:"seq"`
	Root            SpanData  `json:"root"`
}

// SpanData is one frozen span: offsets are relative to the trace
// start, so a rendered trace is self-contained.
type SpanData struct {
	Name               string     `json:"name"`
	SpanID             string     `json:"span_id"`
	StartOffsetSeconds float64    `json:"start_offset_seconds"`
	DurationSeconds    float64    `json:"duration_seconds"`
	Unfinished         bool       `json:"unfinished,omitempty"`
	Attrs              []Attr     `json:"attrs,omitempty"`
	Children           []SpanData `json:"children,omitempty"`
}

// Attr is one span attribute. Values are strings: the set of things a
// span records (routes, counts, ids) all render cheaply, and a single
// type keeps the JSON stable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one live span. All methods are safe on a nil receiver, so
// instrumented code never branches on whether tracing is enabled.
type Span struct {
	name   string
	spanID string
	start  time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span

	root *rootState
}

// rootState is the per-trace state shared by every span in the tree.
type rootState struct {
	tracer       *Tracer
	traceID      string
	parentSpanID string
	requestID    string
	span         *Span
}

// StartRoot begins a new trace rooted at name and returns ctx with the
// root span installed. traceID and parentSpanID come from an incoming
// traceparent header ("" generates a fresh trace id); requestID links
// the trace to the request log line. A nil Tracer returns ctx
// unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name, traceID, parentSpanID, requestID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = randHex(16)
	}
	s := &Span{name: name, spanID: randHex(8), start: time.Now()}
	s.root = &rootState{tracer: t, traceID: traceID, parentSpanID: parentSpanID, requestID: requestID, span: s}
	return ContextWithSpan(ctx, s), s
}

// TraceID returns the trace id this span belongs to ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.root.traceID
}

// SpanID returns this span's id ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// Attr records a string attribute. No-op on nil.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AttrInt records an integer attribute. No-op on nil.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attr(key, itoa(v))
}

// child starts a sub-span under s. Returns nil when s is nil.
func (s *Span) child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, spanID: randHex(8), start: time.Now(), root: s.root}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End finishes the span. Ending the ROOT span completes the trace:
// the tree is frozen into immutable SpanData and offered to the
// tracer's retention ring. Double End and nil End are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	s.mu.Unlock()
	if s.root.span == s {
		s.root.tracer.finish(s, dur)
	}
}

// finish applies tail-based retention to a completed root span.
func (t *Tracer) finish(root *Span, dur time.Duration) {
	seq := t.seq.Add(1)
	slow := t.slow > 0 && dur >= t.slow
	sampled := false
	if !slow {
		if t.sampleN == 0 || (seq-1)%t.sampleN != 0 {
			return
		}
		sampled = true
	}
	tr := &Trace{
		TraceID:         root.root.traceID,
		ParentSpanID:    root.root.parentSpanID,
		RequestID:       root.root.requestID,
		Start:           root.start,
		DurationSeconds: dur.Seconds(),
		Slow:            slow,
		Sampled:         sampled,
		Seq:             seq,
		Root:            root.freeze(root.start),
	}
	st := &t.stripes[seq%uint64(len(t.stripes))]
	st.mu.Lock()
	if len(st.ents) >= t.perCap {
		// Evict the oldest FAST trace. When the stripe holds only slow
		// traces, a slow arrival displaces the oldest slow one, but a
		// fast sample is DROPPED: the sample stream never costs a trace
		// the tail policy promised to keep.
		victim := -1
		for i, e := range st.ents {
			if !e.Slow {
				victim = i
				break
			}
		}
		if victim < 0 {
			if !slow {
				st.mu.Unlock()
				return
			}
			victim = 0
		}
		st.ents = append(st.ents[:victim], st.ents[victim+1:]...)
	}
	st.ents = append(st.ents, tr)
	st.mu.Unlock()
}

// freeze renders the span tree into immutable SpanData. Spans still
// running (a child outliving its parent) are flagged Unfinished with
// the duration they had reached.
func (s *Span) freeze(origin time.Time) SpanData {
	s.mu.Lock()
	d := SpanData{
		Name:               s.name,
		SpanID:             s.spanID,
		StartOffsetSeconds: s.start.Sub(origin).Seconds(),
		DurationSeconds:    s.dur.Seconds(),
		Unfinished:         !s.ended,
	}
	if !s.ended {
		d.DurationSeconds = time.Since(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		d.Children = append(d.Children, c.freeze(origin))
	}
	return d
}

// Traces returns every retained trace, oldest first by completion
// sequence. The result shares the immutable *Trace values.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	var out []*Trace
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		out = append(out, st.ents...)
		st.mu.Unlock()
	}
	sortTraces(out)
	return out
}

// Get returns the retained trace with the given id.
func (t *Tracer) Get(traceID string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for _, e := range st.ents {
			if e.TraceID == traceID {
				st.mu.Unlock()
				return e, true
			}
		}
		st.mu.Unlock()
	}
	return nil, false
}

// Len reports the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		n += len(st.ents)
		st.mu.Unlock()
	}
	return n
}

// sortTraces orders by completion sequence (insertion sort: the ring
// is small and stripes are already ordered runs).
func sortTraces(ts []*Trace) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1].Seq > ts[j].Seq; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

// randHex returns n random bytes hex-encoded (2n characters).
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform entropy source is
		// broken; ids only need uniqueness, so fall back to a counter.
		c := fallback.Add(1)
		for i := 0; i < n && i < 8; i++ {
			b[n-1-i] = byte(c >> (8 * i))
		}
	}
	return hex.EncodeToString(b)
}

var fallback atomic.Uint64

// itoa renders v without importing strconv into the hot path's
// dependency closure — a micro-nicety; spans are off the fast path.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
