package exec

import (
	"testing"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// The kernel benchmarks run in CI with -benchtime=1x to catch compile
// regressions (a Compile error or a panic on the hot path fails the
// step even without timing anything).

func benchProgram(b *testing.B) (*Program, []string, []string) {
	b.Helper()
	left := schema.MustStrings("credit", "fn", "ln", "street", "city", "zip", "tel")
	right := schema.MustStrings("billing", "fn", "ln", "street", "city", "zip", "phn")
	ctx := schema.MustPair(left, right)
	d := similarity.DL(0.8)
	rules := [][]core.Conjunct{
		{core.C("ln", d, "ln"), core.C("street", d, "street"), core.C("fn", d, "fn")},
		{core.C("tel", d, "phn"), core.C("ln", d, "ln")},
		{core.Eq("zip", "zip"), core.C("street", d, "street"), core.C("fn", d, "fn")},
		{core.C("ln", d, "ln"), core.C("fn", d, "fn"), core.Eq("zip", "zip")},
	}
	p, err := Compile(ctx, rules, nil)
	if err != nil {
		b.Fatal(err)
	}
	l := []string{"Mark", "Clifford", "10 Oak Street", "Murray Hill", "07974", "908-1111111"}
	r := []string{"Marx", "Clifford", "10 Oak Street", "Murray Hill", "07974", "908-1111111"}
	return p, l, r
}

func BenchmarkExecCompile(b *testing.B) {
	left := schema.MustStrings("credit", "fn", "ln", "street", "city", "zip", "tel")
	right := schema.MustStrings("billing", "fn", "ln", "street", "city", "zip", "phn")
	ctx := schema.MustPair(left, right)
	d := similarity.DL(0.8)
	rules := [][]core.Conjunct{
		{core.C("ln", d, "ln"), core.C("street", d, "street"), core.C("fn", d, "fn")},
		{core.Eq("zip", "zip"), core.C("street", d, "street")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(ctx, rules, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecEvalPair(b *testing.B) {
	p, l, r := benchProgram(b)
	b.Run("no_memo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.EvalPair(l, r, nil)
		}
	})
	b.Run("memo", func(b *testing.B) {
		m := p.NewMemo()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.EvalPair(l, r, m)
		}
	})
}

func BenchmarkExecKeyRender(b *testing.B) {
	left := schema.MustStrings("l", "ln", "zip")
	right := schema.MustStrings("r", "ln", "zip")
	ctx := schema.MustPair(left, right)
	ks := blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
		WithEncoder(0, blocking.SoundexEncode)
	ke, err := CompileKeySpec(ctx, ks)
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"Clifford", "07974"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ke.RenderLeft(0, vals)
	}
}
