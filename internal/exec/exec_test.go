package exec

import (
	"strings"
	"testing"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func testCtx(t testing.TB) schema.Pair {
	t.Helper()
	left := schema.MustStrings("credit", "fn", "ln", "zip", "tel")
	right := schema.MustStrings("billing", "fn", "ln", "zip", "phn")
	return schema.MustPair(left, right)
}

func TestCompileConjunctsResolvesColumns(t *testing.T) {
	ctx := testCtx(t)
	cs, err := CompileConjuncts(ctx, []core.Conjunct{
		core.Eq("zip", "zip"),
		core.C("tel", similarity.DL(0.8), "phn"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Left != 2 || cs[0].Right != 2 {
		t.Errorf("zip conjunct columns = (%d, %d), want (2, 2)", cs[0].Left, cs[0].Right)
	}
	if cs[1].Left != 3 || cs[1].Right != 3 {
		t.Errorf("tel|phn conjunct columns = (%d, %d), want (3, 3)", cs[1].Left, cs[1].Right)
	}
}

func TestCompileConjunctsErrors(t *testing.T) {
	ctx := testCtx(t)
	if _, err := CompileConjuncts(ctx, []core.Conjunct{core.Eq("nope", "zip")}); err == nil {
		t.Error("unknown left attribute accepted")
	}
	if _, err := CompileConjuncts(ctx, []core.Conjunct{core.Eq("zip", "nope")}); err == nil {
		t.Error("unknown right attribute accepted")
	}
	if _, err := CompileConjuncts(ctx, []core.Conjunct{{Pair: core.P("zip", "zip")}}); err == nil {
		t.Error("nil operator accepted")
	}
}

func TestProgramDeduplicatesConjuncts(t *testing.T) {
	ctx := testCtx(t)
	d := similarity.DL(0.8)
	rules := [][]core.Conjunct{
		{core.C("ln", d, "ln"), core.Eq("zip", "zip")},
		{core.C("ln", d, "ln"), core.C("fn", d, "fn")},
		{core.Eq("zip", "zip"), core.C("fn", d, "fn")},
	}
	p, err := Compile(ctx, rules, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumConjuncts(); got != 3 {
		t.Errorf("NumConjuncts = %d, want 3 (ln~ln, zip=zip, fn~fn deduplicated)", got)
	}
	if p.NumRules() != 3 || p.NumNegative() != 0 {
		t.Errorf("rules = %d/%d, want 3/0", p.NumRules(), p.NumNegative())
	}
	// Same pair, same operator name, but distinct operators must NOT
	// collapse (dl(0.8) vs dl(0.9) differ in name).
	p2, err := Compile(ctx, [][]core.Conjunct{
		{core.C("ln", similarity.DL(0.8), "ln")},
		{core.C("ln", similarity.DL(0.9), "ln")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.NumConjuncts(); got != 2 {
		t.Errorf("NumConjuncts = %d, want 2 (different thresholds)", got)
	}
}

func TestEvalPairPositiveAndNegative(t *testing.T) {
	ctx := testCtx(t)
	d := similarity.DL(0.8)
	p, err := Compile(ctx,
		[][]core.Conjunct{{core.C("ln", d, "ln"), core.Eq("zip", "zip")}},
		[][]core.Conjunct{{core.Eq("fn", "fn")}}, // veto: identical first names
	)
	if err != nil {
		t.Fatal(err)
	}
	left := []string{"Mark", "Clifford", "07974", "908"}
	for _, tc := range []struct {
		right []string
		want  bool
	}{
		{[]string{"Marx", "Cliford", "07974", "908"}, true},  // rule holds, no veto
		{[]string{"Mark", "Cliford", "07974", "908"}, false}, // veto fires
		{[]string{"Marx", "Smith", "07974", "908"}, false},   // rule fails
		{[]string{"Marx", "Cliford", "07976", "908"}, false}, // zip differs
	} {
		memo := p.NewMemo()
		if got := p.EvalPair(left, tc.right, nil); got != tc.want {
			t.Errorf("EvalPair(%v) = %v, want %v", tc.right, got, tc.want)
		}
		if got := p.EvalPair(left, tc.right, memo); got != tc.want {
			t.Errorf("EvalPair(%v) with memo = %v, want %v", tc.right, got, tc.want)
		}
	}
}

// countingOp counts evaluations, to prove memoization.
type countingOp struct {
	name  string
	calls *int
}

func (c countingOp) Name() string { return c.name }
func (c countingOp) Similar(a, b string) bool {
	*c.calls++
	return a == b
}

func TestMemoEvaluatesSharedConjunctOnce(t *testing.T) {
	ctx := testCtx(t)
	calls := 0
	op := countingOp{name: "count", calls: &calls}
	shared := core.Conjunct{Pair: core.P("ln", "ln"), Op: op}
	// Three rules sharing the ln conjunct; first conjunct fails on fn so
	// every rule reaches the shared one.
	p, err := Compile(ctx, [][]core.Conjunct{
		{shared, core.Eq("fn", "fn")},
		{shared, core.Eq("zip", "zip")},
		{shared, core.Eq("tel", "phn")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	left := []string{"a", "x", "1", "t1"}
	right := []string{"b", "x", "2", "t2"}
	m := p.NewMemo()
	if p.EvalPair(left, right, m) {
		t.Fatal("no rule should hold")
	}
	if calls != 1 {
		t.Errorf("shared conjunct evaluated %d times with memo, want 1", calls)
	}
	calls = 0
	if p.EvalPair(left, right, nil) {
		t.Fatal("no rule should hold")
	}
	if calls != 3 {
		t.Errorf("shared conjunct evaluated %d times without memo, want 3", calls)
	}
	// A fresh pair through the same memo re-evaluates.
	calls = 0
	p.EvalPair(left, []string{"b", "y", "2", "t2"}, m)
	if calls != 1 {
		t.Errorf("next pair evaluated shared conjunct %d times, want 1", calls)
	}
}

func TestEmptyRuleMatchesEverything(t *testing.T) {
	ctx := testCtx(t)
	p, err := Compile(ctx, [][]core.Conjunct{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.EvalPair([]string{"a", "b", "c", "d"}, []string{"w", "x", "y", "z"}, nil) {
		t.Error("empty LHS must match every pair (vacuous conjunction)")
	}
	// And a program with no rules matches nothing.
	p0, err := Compile(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p0.EvalPair([]string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"}, nil) {
		t.Error("program without rules must match nothing")
	}
}

func TestVectorEval(t *testing.T) {
	ctx := testCtx(t)
	v, err := CompileVector(ctx, []core.Conjunct{
		core.Eq("fn", "fn"),
		core.Eq("ln", "ln"),
		core.Eq("zip", "zip"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := v.Eval([]string{"a", "b", "c", "d"}, []string{"a", "x", "c", "d"}, nil)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vector = %v, want %v", got, want)
		}
	}
	// dst reuse keeps the backing array.
	buf := make([]bool, 0, 3)
	got2 := v.Eval([]string{"a", "b", "c", "d"}, []string{"a", "x", "c", "d"}, buf)
	if &got2[0] != &buf[:1][0] {
		t.Error("Eval must reuse the provided buffer")
	}
}

// TestKeyEncoderSeparatorCollision is the regression test for the
// blocking-key aliasing bug: field values containing the \x1f separator
// used to concatenate into identical keys for distinct field tuples.
func TestKeyEncoderSeparatorCollision(t *testing.T) {
	left := schema.MustStrings("l", "a", "b")
	right := schema.MustStrings("r", "a", "b")
	ctx := schema.MustPair(left, right)
	ks := blocking.NewKeySpec(core.P("a", "a"), core.P("b", "b"))
	ke, err := CompileKeySpec(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	k1 := ke.RenderLeft(0, []string{"a\x1fb", "c"})
	k2 := ke.RenderLeft(0, []string{"a", "b\x1fc"})
	if k1 == k2 {
		t.Fatalf("distinct field tuples alias to key %q", k1)
	}
	// Escape byte itself must round-trip distinctly too.
	k3 := ke.RenderLeft(0, []string{"a\x1c", "b"})
	k4 := ke.RenderLeft(0, []string{"a", "\x1cb"})
	if k3 == k4 {
		t.Fatalf("escape-byte field tuples alias to key %q", k3)
	}
	// Equal field tuples still produce equal keys across sides.
	if ke.RenderLeft(7, []string{"x", "y"}) != ke.RenderRight(7, []string{"x", "y"}) {
		t.Error("same values must render the same key on both sides")
	}
	// Different tags partition the key space.
	if ke.RenderLeft(0, []string{"x", "y"}) == ke.RenderLeft(1, []string{"x", "y"}) {
		t.Error("tag byte must distinguish specs")
	}
}

func TestKeyEncoderEncodersAndErrors(t *testing.T) {
	left := schema.MustStrings("l", "name", "zip")
	right := schema.MustStrings("r", "name", "zip")
	ctx := schema.MustPair(left, right)
	ks := blocking.NewKeySpec(core.P("name", "name"), core.P("zip", "zip")).
		WithEncoder(0, blocking.SoundexEncode)
	ke, err := CompileKeySpec(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	k := ke.RenderLeft(0, []string{"Clifford", "07974"})
	if !strings.Contains(k, similarity.Soundex("Clifford")) {
		t.Errorf("key %q does not contain the Soundex code", k)
	}
	if _, err := CompileKeySpec(ctx, blocking.KeySpec{}); err == nil {
		t.Error("empty key spec accepted")
	}
	if _, err := CompileKeySpec(ctx, blocking.NewKeySpec(core.P("nope", "zip"))); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestCompileRuleErrorsAreIndexed(t *testing.T) {
	ctx := testCtx(t)
	_, err := Compile(ctx, [][]core.Conjunct{
		{core.Eq("fn", "fn")},
		{core.Eq("bad", "fn")},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "rule 1") {
		t.Errorf("error %v must name the offending rule", err)
	}
	_, err = Compile(ctx, nil, [][]core.Conjunct{{core.Eq("bad", "fn")}})
	if err == nil || !strings.Contains(err.Error(), "negative rule 0") {
		t.Errorf("error %v must name the offending negative rule", err)
	}
}

// TestSynonymOpsDoNotAliasInDedup pins the conjunct-dedup contract:
// operators are deduplicated by canonical name, so SynonymOps with
// different tables (whose names now embed the table) must keep separate
// slots and separate verdicts.
func TestSynonymOpsDoNotAliasInDedup(t *testing.T) {
	left := schema.MustStrings("l", "country")
	right := schema.MustStrings("r", "country")
	ctx := schema.MustPair(left, right)
	usa := similarity.SynonymOp(similarity.Eq(), map[string]string{"usa": "united states"})
	uk := similarity.SynonymOp(similarity.Eq(), map[string]string{"uk": "united kingdom"})
	if usa.Name() == uk.Name() {
		t.Fatalf("SynonymOps with different tables share name %q", usa.Name())
	}
	p, err := Compile(ctx, [][]core.Conjunct{
		{core.C("country", usa, "country")},
		{core.C("country", uk, "country")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumConjuncts() != 2 {
		t.Fatalf("NumConjuncts = %d, want 2 (different synonym tables)", p.NumConjuncts())
	}
	if !p.EvalPair([]string{"UK"}, []string{"United Kingdom"}, nil) {
		t.Error("second rule's synonym table must be honored")
	}
}

// TestEvalRuleWithFreshMemo pins a fixed bug: a fresh memo's zero
// epochs must read as unknown, not as cached-true verdicts.
func TestEvalRuleWithFreshMemo(t *testing.T) {
	ctx := testCtx(t)
	p, err := Compile(ctx, [][]core.Conjunct{{core.Eq("fn", "fn")}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMemo()
	if p.EvalRule(0, []string{"a", "", "", ""}, []string{"b", "", "", ""}, m) {
		t.Error("fresh memo treated unevaluated conjunct as cached-true")
	}
	p.BeginPair(m)
	if !p.EvalRule(0, []string{"a", "", "", ""}, []string{"a", "", "", ""}, m) {
		t.Error("EvalRule must hold on equal values")
	}
}
