package exec

import (
	"mdmatch/internal/core"
	"mdmatch/internal/schema"
)

// Vector is a compiled comparison vector: an ordered field list with
// columns resolved, evaluating a tuple pair to the binary vector γ of
// Section 2.2. Unlike Program rules, every entry is always evaluated
// (no short-circuit): the output has one bit per field. A Vector is
// immutable and safe for concurrent use.
type Vector struct {
	conjs []Conjunct
}

// CompileVector resolves the field list against the context schemas.
func CompileVector(ctx schema.Pair, fields []core.Conjunct) (*Vector, error) {
	cs, err := CompileConjuncts(ctx, fields)
	if err != nil {
		return nil, err
	}
	return &Vector{conjs: cs}, nil
}

// Len returns the number of fields.
func (v *Vector) Len() int { return len(v.conjs) }

// Eval computes the comparison vector of a positional value pair into
// dst (reused when cap allows, appended from dst[:0]); pass nil to
// allocate.
func (v *Vector) Eval(left, right []string, dst []bool) []bool {
	dst = dst[:0]
	for _, c := range v.conjs {
		dst = append(dst, c.Eval(left, right))
	}
	return dst
}
