package exec

import (
	"fmt"
	"strings"

	"mdmatch/internal/blocking"
	"mdmatch/internal/schema"
)

// KeyEncoder is a blocking.KeySpec compiled for positional evaluation:
// columns resolved on both sides, encoders defaulted, field values
// escaped via blocking.AppendKeyField so encoded values containing the
// separator byte cannot alias distinct keys. Immutable after compile.
type KeyEncoder struct {
	spec        blocking.KeySpec
	left, right []int
	encode      []blocking.Encoder
}

// CompileKeySpec resolves a blocking key spec against the context.
func CompileKeySpec(ctx schema.Pair, ks blocking.KeySpec) (KeyEncoder, error) {
	if len(ks.Fields) == 0 {
		return KeyEncoder{}, fmt.Errorf("empty key spec")
	}
	ke := KeyEncoder{
		spec:   ks,
		left:   make([]int, len(ks.Fields)),
		right:  make([]int, len(ks.Fields)),
		encode: make([]blocking.Encoder, len(ks.Fields)),
	}
	for i, f := range ks.Fields {
		li, ok := ctx.Left.Index(f.Pair.Left)
		if !ok {
			return KeyEncoder{}, fmt.Errorf("%s has no attribute %q", ctx.Left.Name(), f.Pair.Left)
		}
		ri, ok := ctx.Right.Index(f.Pair.Right)
		if !ok {
			return KeyEncoder{}, fmt.Errorf("%s has no attribute %q", ctx.Right.Name(), f.Pair.Right)
		}
		ke.left[i], ke.right[i] = li, ri
		ke.encode[i] = f.Encode
		if ke.encode[i] == nil {
			ke.encode[i] = blocking.Identity
		}
	}
	return ke, nil
}

// Spec returns the source key spec.
func (ke *KeyEncoder) Spec() blocking.KeySpec { return ke.spec }

// render builds the key string of one side. The layout matches
// blocking.KeySpec keys (escaped fields joined by the separator) with a
// leading tag byte so keys of different specs never collide in a shared
// index.
func (ke *KeyEncoder) render(tag byte, vals []string, cols []int) string {
	var b strings.Builder
	b.WriteByte(tag)
	for i, col := range cols {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		blocking.AppendKeyField(&b, ke.encode[i](vals[col]))
	}
	return b.String()
}

// RenderLeft builds the tagged key of a left-side value slice.
func (ke *KeyEncoder) RenderLeft(tag byte, vals []string) string {
	return ke.render(tag, vals, ke.left)
}

// RenderRight builds the tagged key of a right-side value slice.
func (ke *KeyEncoder) RenderRight(tag byte, vals []string) string {
	return ke.render(tag, vals, ke.right)
}
