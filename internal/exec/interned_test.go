package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// TestInternerMatchesProgram drives EvalPairIDs against EvalPair on
// randomized value rows: the interned path (ID comparisons + verdict
// caches) must agree with the string path on every pair, including
// repeated evaluations that hit the caches.
func TestInternerMatchesProgram(t *testing.T) {
	p, _, _ := testProgram(t)
	it := NewInterner(p)
	rng := rand.New(rand.NewSource(5))
	vocab := []string{"Mark", "Marx", "Clifford", "Cliford", "10 Oak Street", "11 Oak St",
		"Murray Hill", "07974", "07975", "908-1111111", "908-1111112", ""}
	row := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	a1, a2 := p.Ctx().Left.Arity(), p.Ctx().Right.Arity()
	for round := 0; round < 2; round++ { // round 2 re-evaluates cached pairs
		rng = rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			l, r := row(a1), row(a2)
			lids := it.InternLeft(l, nil)
			rids := it.InternRight(r, nil)
			if got, want := it.EvalPairIDs(lids, rids), p.EvalPair(l, r, nil); got != want {
				t.Fatalf("EvalPairIDs(%v, %v) = %v, EvalPair = %v", l, r, got, want)
			}
		}
	}
}

// TestInternerEqualityAcrossSides pins the shared-dictionary property:
// an equality conjunct must hold exactly when the two strings are
// equal, even though the IDs come from InternLeft and InternRight.
func TestInternerEqualityAcrossSides(t *testing.T) {
	left := schema.MustStrings("l", "zip")
	right := schema.MustStrings("r", "zip")
	ctx := schema.MustPair(left, right)
	p, err := Compile(ctx, [][]core.Conjunct{{core.Eq("zip", "zip")}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterner(p)
	rids := it.InternRight([]string{"07974"}, nil) // right first: IDs differ per side order
	lids := it.InternLeft([]string{"07974"}, nil)
	if !it.EvalPairIDs(lids, rids) {
		t.Fatal("equal zips did not match through interned equality")
	}
	lids2 := it.InternLeft([]string{"07975"}, nil)
	if it.EvalPairIDs(lids2, rids) {
		t.Fatal("unequal zips matched through interned equality")
	}
}

// TestInternerConcurrent hammers one interner from several goroutines
// (run under -race in CI): interning and cache fills must be safe and
// agree with the string path.
func TestInternerConcurrent(t *testing.T) {
	p, _, _ := testProgram(t)
	it := NewInterner(p)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			vocab := []string{"Mark", "Marx", "Clifford", "Murray Hill", "07974", "908-1111111", "x"}
			var lbuf, rbuf []values.ID
			for i := 0; i < 300; i++ {
				l := make([]string, p.Ctx().Left.Arity())
				r := make([]string, p.Ctx().Right.Arity())
				for j := range l {
					l[j] = vocab[rng.Intn(len(vocab))]
				}
				for j := range r {
					r[j] = vocab[rng.Intn(len(vocab))]
				}
				lbuf = it.InternLeft(l, lbuf)
				rbuf = it.InternRight(r, rbuf)
				if got, want := it.EvalPairIDs(lbuf, rbuf), p.EvalPair(l, r, nil); got != want {
					errs <- fmt.Errorf("goroutine %d: interned %v vs string %v for %v/%v", seed, got, want, l, r)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func testProgram(t *testing.T) (*Program, []string, []string) {
	t.Helper()
	left := schema.MustStrings("credit", "fn", "ln", "street", "city", "zip", "tel")
	right := schema.MustStrings("billing", "fn", "ln", "street", "city", "zip", "phn")
	ctx := schema.MustPair(left, right)
	d := similarity.DL(0.8)
	rules := [][]core.Conjunct{
		{core.C("ln", d, "ln"), core.C("street", d, "street"), core.C("fn", d, "fn")},
		{core.C("tel", d, "phn"), core.C("ln", d, "ln")},
		{core.Eq("zip", "zip"), core.C("street", d, "street"), core.C("fn", d, "fn")},
	}
	negs := [][]core.Conjunct{{core.C("city", similarity.SoundexEq(), "city")}}
	p, err := Compile(ctx, rules, negs)
	if err != nil {
		t.Fatal(err)
	}
	l := []string{"Mark", "Clifford", "10 Oak Street", "Murray Hill", "07974", "908-1111111"}
	r := []string{"Marx", "Clifford", "10 Oak Street", "Murray Hill", "07974", "908-1111111"}
	return p, l, r
}

func BenchmarkInternedEvalPair(b *testing.B) {
	p, l, r := benchProgram(b)
	it := NewInterner(p)
	lids := it.InternLeft(l, nil)
	rids := it.InternRight(r, nil)
	b.Run("ids", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it.EvalPairIDs(lids, rids)
		}
	})
	b.Run("strings_memo", func(b *testing.B) {
		m := p.NewMemo()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.EvalPair(l, r, m)
		}
	})
}
