// Package exec is the compiled rule-evaluation kernel shared by every
// execution path of the library. The paper's thesis is that reasoning
// happens at compile time so that run-time matching is cheap; exec is
// where that cheapness is implemented once: attribute references are
// resolved to positional column indices up front, the similarity tests
// of a rule set are deduplicated into a single conjunct table, and
// evaluation runs on positional []string value slices with zero map
// lookups, zero error plumbing and zero allocations on the hot path.
//
// Four layers execute through this kernel:
//
//   - internal/engine compiles its serving plans here (Plan.EvalPair and
//     the blocking-key encoders are thin wrappers over Program and
//     KeyEncoder);
//   - internal/semantics compiles MD left-hand sides here and drives the
//     enforcement chase on the compiled form;
//   - internal/matching compiles RuleSet keys and comparison vectors
//     here (which also covers internal/neighborhood's rule bases);
//   - internal/fellegi compiles its comparison vector here.
//
// A Program is immutable after Compile and safe for concurrent use. The
// optional Memo caches per-pair conjunct outcomes so rule sets that
// share conjuncts (deduced RCKs routinely do) evaluate each distinct
// similarity test at most once per pair.
package exec

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// Conjunct is one similarity test with its attribute references resolved
// to positional column indices into the left/right value slices.
type Conjunct struct {
	Left, Right int
	Op          similarity.Operator
}

// Eval evaluates the conjunct on a positional value pair.
func (c Conjunct) Eval(left, right []string) bool {
	return c.Op.Similar(left[c.Left], right[c.Right])
}

// CompileConjuncts resolves a conjunct list against the context schemas.
// It is the shared front end of every compiler in this package: the
// returned slice preserves order and is ready for positional evaluation.
func CompileConjuncts(ctx schema.Pair, cs []core.Conjunct) ([]Conjunct, error) {
	out := make([]Conjunct, len(cs))
	for i, c := range cs {
		li, ok := ctx.Left.Index(c.Pair.Left)
		if !ok {
			return nil, fmt.Errorf("%s has no attribute %q", ctx.Left.Name(), c.Pair.Left)
		}
		ri, ok := ctx.Right.Index(c.Pair.Right)
		if !ok {
			return nil, fmt.Errorf("%s has no attribute %q", ctx.Right.Name(), c.Pair.Right)
		}
		if c.Op == nil {
			return nil, fmt.Errorf("conjunct %s has no operator", c.Pair)
		}
		out[i] = Conjunct{Left: li, Right: ri, Op: c.Op}
	}
	return out, nil
}

// Program is a compiled rule program: the LHSs of a set of positive
// rules (a pair matches when at least one holds) and negative rules
// (vetoes), all sharing one deduplicated conjunct table. Compile once,
// evaluate many times; a Program is immutable and safe for concurrent
// use by any number of goroutines.
type Program struct {
	ctx       schema.Pair
	conjuncts []Conjunct
	rules     [][]uint16 // per positive rule: indices into conjuncts
	negRules  [][]uint16
}

// Compile builds a Program from positive and negative rule LHSs over the
// context. Conjuncts are deduplicated by (attribute pair, operator name)
// across all rules, so shared similarity tests occupy one table slot. An
// empty rule LHS matches every pair (callers that consider it an error,
// like internal/engine, must validate before compiling).
func Compile(ctx schema.Pair, rules [][]core.Conjunct, negative [][]core.Conjunct) (*Program, error) {
	p := &Program{ctx: ctx}
	// Deduplicate by resolved columns + operator name (structured key:
	// attribute names may contain any separator character).
	type conjID struct {
		left, right int
		op          string
	}
	seen := map[conjID]uint16{}
	intern := func(cs []core.Conjunct) ([]uint16, error) {
		compiled, err := CompileConjuncts(ctx, cs)
		if err != nil {
			return nil, err
		}
		out := make([]uint16, len(compiled))
		for i, c := range compiled {
			id := conjID{left: c.Left, right: c.Right, op: c.Op.Name()}
			slot, ok := seen[id]
			if !ok {
				if len(p.conjuncts) > int(^uint16(0)) {
					return nil, fmt.Errorf("too many distinct conjuncts (max %d)", int(^uint16(0))+1)
				}
				slot = uint16(len(p.conjuncts))
				seen[id] = slot
				p.conjuncts = append(p.conjuncts, c)
			}
			out[i] = slot
		}
		return out, nil
	}
	for i, cs := range rules {
		r, err := intern(cs)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		p.rules = append(p.rules, r)
	}
	for i, cs := range negative {
		r, err := intern(cs)
		if err != nil {
			return nil, fmt.Errorf("negative rule %d: %w", i, err)
		}
		p.negRules = append(p.negRules, r)
	}
	return p, nil
}

// Ctx returns the matching context the program was compiled for.
func (p *Program) Ctx() schema.Pair { return p.ctx }

// NumRules returns the number of positive rules.
func (p *Program) NumRules() int { return len(p.rules) }

// NumNegative returns the number of negative rules.
func (p *Program) NumNegative() int { return len(p.negRules) }

// NumConjuncts returns the size of the deduplicated conjunct table.
func (p *Program) NumConjuncts() int { return len(p.conjuncts) }

// Memo caches conjunct outcomes for the pair currently under
// evaluation, so rules sharing a similarity test pay for it once. A Memo
// belongs to one goroutine; epoch bumping makes reuse across pairs free
// (no clearing).
type Memo struct {
	state []uint8 // 1 = false, 2 = true (valid only when epoch matches)
	epoch []uint32
	cur   uint32
}

// NewMemo returns a memo sized for the program's conjunct table. The
// current epoch starts at 1 so the zero-valued epoch slots read as
// unknown, never as cached verdicts.
func (p *Program) NewMemo() *Memo {
	return &Memo{state: make([]uint8, len(p.conjuncts)), epoch: make([]uint32, len(p.conjuncts)), cur: 1}
}

func (m *Memo) begin() {
	m.cur++
	if m.cur == 0 { // epoch wrapped: invalidate everything explicitly
		for i := range m.epoch {
			m.epoch[i] = 0
		}
		m.cur = 1
	}
}

// evalConjuncts evaluates an indexed conjunct list with short-circuit,
// consulting and filling the memo when one is supplied.
func (p *Program) evalConjuncts(idx []uint16, left, right []string, m *Memo) bool {
	for _, ci := range idx {
		if m != nil && m.epoch[ci] == m.cur {
			if m.state[ci] == 1 {
				return false
			}
			continue
		}
		ok := p.conjuncts[ci].Eval(left, right)
		if m != nil {
			m.epoch[ci] = m.cur
			if ok {
				m.state[ci] = 2
			} else {
				m.state[ci] = 1
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// EvalRule evaluates positive rule i on a positional value pair. The
// memo may be nil; when supplied it must have been created by this
// program's NewMemo and must be scoped to one goroutine. EvalRule does
// not reset the memo — use EvalPair for whole-pair verdicts, or
// interleave EvalRule calls for one pair between BeginPair calls.
func (p *Program) EvalRule(i int, left, right []string, m *Memo) bool {
	return p.evalConjuncts(p.rules[i], left, right, m)
}

// BeginPair marks the start of a new value pair in the memo, discarding
// cached outcomes of the previous pair.
func (p *Program) BeginPair(m *Memo) { m.begin() }

// EvalPair decides the whole-program verdict for a positional value
// pair: at least one positive rule holds and no negative rule vetoes.
// With a nil memo it performs no allocation and is safe for concurrent
// use; with a memo, each distinct conjunct is evaluated at most once.
func (p *Program) EvalPair(left, right []string, m *Memo) bool {
	if m != nil {
		m.begin()
	}
	matched := false
	for _, r := range p.rules {
		if p.evalConjuncts(r, left, right, m) {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	for _, r := range p.negRules {
		if p.evalConjuncts(r, left, right, m) {
			return false
		}
	}
	return true
}
