package exec

import (
	"sync"
	"sync/atomic"

	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// Interner compiles a Program against the interned value store
// (internal/values): the two columns of every conjunct share one
// dictionary, equality conjuncts evaluate as integer ID comparisons,
// and every other similarity conjunct becomes a lookup in a growable
// verdict cache keyed by canonical (minID, maxID) value pairs — each
// distinct value pair pays for its operator evaluation once per
// process, not once per tuple pair.
//
// An Interner is mutable shared state (dictionaries grow, caches fill)
// and safe for concurrent use. Locking is SHARDED so that concurrent
// matchers do not contend on one mutex: each distinct dictionary has
// its own RWMutex (guarding growth and the slice headers reads go
// through), and each conjunct's verdict cache is split into
// cacheStripes stripes with per-stripe RWMutexes, selected by mixing
// the canonical ID pair — two goroutines evaluating different value
// pairs almost never touch the same lock. Equality conjuncts take no
// lock at all (interned IDs are immutable once returned). Cache misses
// still evaluate their operator outside any lock and only take the
// stripe's write lock to store the verdict, so cold paths never
// serialize matchers behind an edit-distance computation. The verdict
// caches are bounded by values.MapMaxEntries per conjunct in aggregate
// (MapMaxEntries/cacheStripes per stripe); beyond it, verdicts are
// recomputed, not stored.
type Interner struct {
	prog *Program
	// left/right map column index -> group dictionary (nil for columns
	// no conjunct touches; their cells intern to ID 0 and are never
	// read).
	left, right []*values.Dict
	// lmus/rmus are the columns' dictionary locks, aligned with
	// left/right; columns grouped into one dictionary share one lock.
	lmus, rmus []*sync.RWMutex
	dictMus    []sync.RWMutex // backing array, one per distinct dictionary
	// conjs is aligned with prog.conjuncts.
	conjs []internedConjunct

	// pairEvals counts EvalPairIDs calls; pairResolves the subset whose
	// decision needed a resolving pass (a decision-relevant verdict-cache
	// miss). Their ratio is the warm-path hit rate the serving layer
	// exposes.
	pairEvals    atomic.Uint64
	pairResolves atomic.Uint64
}

// cacheStripes is the number of verdict-cache stripes per conjunct.
// Power of two; 16 keeps the per-conjunct lock table tiny while making
// same-lock collisions between concurrent matchers rare.
const cacheStripes = 16

// cacheStripe is one lock-sharded slice of a conjunct's verdict cache.
// Padded so adjacent stripes' mutexes never share a cache line (the
// whole point of striping is to stop cores bouncing a line).
type cacheStripe struct {
	mu    sync.RWMutex
	cache *values.Cache
	_     [64 - 32]byte
}

type internedConjunct struct {
	eq           bool
	left, right  int
	ldict, rdict *values.Dict
	lmu, rmu     *sync.RWMutex
	op           similarity.Operator
	shared       bool
	stripes      []cacheStripe // nil for eq conjuncts
}

// stripeOf picks the stripe for a canonicalized ID pair, mixing both
// IDs so stripes fill evenly even when one side's universe is tiny.
func (c *internedConjunct) stripeOf(a, b values.ID) *cacheStripe {
	if c.shared && a > b {
		a, b = b, a
	}
	h := uint64(a)<<32 | uint64(b)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &c.stripes[h&(cacheStripes-1)]
}

// NewInterner builds the interned evaluation state for a program.
func NewInterner(p *Program) *Interner {
	it := &Interner{
		prog:  p,
		left:  make([]*values.Dict, p.ctx.Left.Arity()),
		right: make([]*values.Dict, p.ctx.Right.Arity()),
	}
	// Group column nodes so both columns of every conjunct (and columns
	// transitively linked through shared conjunct columns) intern into
	// one dictionary: ID equality then means string equality, and the
	// canonical cache key applies.
	a1 := p.ctx.Left.Arity()
	g := values.NewGrouper(a1 + p.ctx.Right.Arity())
	for _, c := range p.conjuncts {
		g.Link(c.Left, a1+c.Right)
	}
	for _, c := range p.conjuncts {
		it.left[c.Left] = g.Dict(c.Left)
		it.right[c.Right] = g.Dict(a1 + c.Right)
	}
	// One lock per distinct dictionary, shared by every column that
	// interns into it.
	lockIdx := make(map[*values.Dict]int)
	for _, d := range it.left {
		if d != nil {
			if _, ok := lockIdx[d]; !ok {
				lockIdx[d] = len(lockIdx)
			}
		}
	}
	for _, d := range it.right {
		if d != nil {
			if _, ok := lockIdx[d]; !ok {
				lockIdx[d] = len(lockIdx)
			}
		}
	}
	it.dictMus = make([]sync.RWMutex, len(lockIdx))
	it.lmus = make([]*sync.RWMutex, len(it.left))
	it.rmus = make([]*sync.RWMutex, len(it.right))
	for i, d := range it.left {
		if d != nil {
			it.lmus[i] = &it.dictMus[lockIdx[d]]
		}
	}
	for i, d := range it.right {
		if d != nil {
			it.rmus[i] = &it.dictMus[lockIdx[d]]
		}
	}
	it.conjs = make([]internedConjunct, len(p.conjuncts))
	for i, c := range p.conjuncts {
		ic := internedConjunct{
			left: c.Left, right: c.Right, op: c.Op,
			ldict: it.left[c.Left], rdict: it.right[c.Right],
			lmu: it.lmus[c.Left], rmu: it.rmus[c.Right],
		}
		ic.shared = ic.ldict == ic.rdict
		if similarity.IsEq(c.Op) {
			ic.eq = true
		} else {
			ic.stripes = make([]cacheStripe, cacheStripes)
			for s := range ic.stripes {
				ic.stripes[s].cache = values.NewCacheCapped(c.Op, ic.ldict, ic.rdict,
					values.MapMaxEntries/cacheStripes)
			}
		}
		it.conjs[i] = ic
	}
	return it
}

// Program returns the compiled program the interner evaluates.
func (it *Interner) Program() *Program { return it.prog }

// InternLeft interns a left-side positional value row into dst
// (appended from dst[:0]; pass nil to allocate). Columns no conjunct
// reads intern to ID 0.
func (it *Interner) InternLeft(vals []string, dst []values.ID) []values.ID {
	return it.internRow(it.left, it.lmus, vals, dst)
}

// InternRight interns a right-side positional value row.
func (it *Interner) InternRight(vals []string, dst []values.ID) []values.ID {
	return it.internRow(it.right, it.rmus, vals, dst)
}

// LeftStrings renders an interned left row back into strings (appended
// from dst[:0]; pass nil to allocate). Columns no conjunct reads have
// no dictionary — their original strings were never retained — and
// render as ""; every column the program evaluates round-trips exactly.
// Snapshot serialization (internal/store) uses this to persist stored
// rows without the engine retaining raw strings.
func (it *Interner) LeftStrings(ids []values.ID, dst []string) []string {
	dst = dst[:0]
	for i, d := range it.left {
		if d == nil {
			dst = append(dst, "")
			continue
		}
		mu := it.lmus[i]
		mu.RLock()
		dst = append(dst, d.Value(ids[i]))
		mu.RUnlock()
	}
	return dst
}

func (it *Interner) internRow(dicts []*values.Dict, mus []*sync.RWMutex, vals []string, dst []values.ID) []values.ID {
	dst = dst[:0]
	for i, d := range dicts {
		if d == nil {
			dst = append(dst, 0)
			continue
		}
		// Fast path: the value is already interned (read lock only).
		mu := mus[i]
		mu.RLock()
		id, ok := d.Lookup(vals[i])
		mu.RUnlock()
		if !ok {
			mu.Lock()
			id = d.Intern(vals[i])
			mu.Unlock()
		}
		dst = append(dst, id)
	}
	return dst
}

// evalConjunct decides one conjunct on interned rows. In resolve mode a
// cache miss is resolved through resolveConjunct; otherwise a miss
// reports unknown. No lock is held by the caller in either mode —
// equality conjuncts are lock-free, cache peeks take their stripe's
// read lock.
func (it *Interner) evalConjunct(ci uint16, lids, rids []values.ID, resolve bool) (verdict, known bool) {
	c := &it.conjs[ci]
	a, b := lids[c.left], rids[c.right]
	if c.eq {
		return a == b, true // shared dictionary: ID equality is value equality
	}
	if c.shared && a == b {
		return true, true // reflexivity: no cache traffic
	}
	if resolve {
		return it.resolveConjunct(c, a, b), true
	}
	s := c.stripeOf(a, b)
	s.mu.RLock()
	verdict, known = s.cache.Peek(a, b)
	s.mu.RUnlock()
	return verdict, known
}

// resolveConjunct answers one non-equality conjunct, evaluating the
// operator on a cache miss OUTSIDE any lock: the interned strings are
// immutable (only the slice headers need a dictionary read lock to
// snapshot), and operators are pure, so the quadratic edit-distance
// work never serializes concurrent matchers. Racing misses on the same
// pair evaluate at most once each and Store agreeing verdicts.
func (it *Interner) resolveConjunct(c *internedConjunct, a, b values.ID) bool {
	s := c.stripeOf(a, b)
	s.mu.RLock()
	verdict, known := s.cache.Peek(a, b)
	s.mu.RUnlock()
	if known {
		return verdict
	}
	var sa, sb string
	if c.lmu == c.rmu {
		c.lmu.RLock()
		sa, sb = c.ldict.Value(a), c.rdict.Value(b)
		c.lmu.RUnlock()
	} else {
		c.lmu.RLock()
		sa = c.ldict.Value(a)
		c.lmu.RUnlock()
		c.rmu.RLock()
		sb = c.rdict.Value(b)
		c.rmu.RUnlock()
	}
	verdict = c.op.Similar(sa, sb)
	s.mu.Lock()
	s.cache.Store(a, b, verdict)
	s.mu.Unlock()
	return verdict
}

// evalPair runs the whole-program decision — at least one positive rule
// holds and no negative rule vetoes — in one of two modes: a peek-only
// pass answering from cached verdicts alone (reports known=false on the
// first decision-relevant cache miss), and a resolving pass that
// evaluates misses per conjunct via resolveConjunct.
func (it *Interner) evalPair(lids, rids []values.ID, resolve bool) (verdict, known bool) {
	evalRule := func(idx []uint16) (bool, bool) {
		for _, ci := range idx {
			ok, known := it.evalConjunct(ci, lids, rids, resolve)
			if !known {
				return false, false
			}
			if !ok {
				return false, true
			}
		}
		return true, true
	}
	matched := false
	for _, r := range it.prog.rules {
		ok, known := evalRule(r)
		if !known {
			return false, false
		}
		if ok {
			matched = true
			break
		}
	}
	if !matched {
		return false, true
	}
	for _, r := range it.prog.negRules {
		ok, known := evalRule(r)
		if !known {
			return false, false
		}
		if ok {
			return false, true
		}
	}
	return true, true
}

// EvalPairIDs decides the whole-program verdict for an interned row
// pair: at least one positive rule holds and no negative rule vetoes.
// The warm path costs one stripe read lock per non-equality conjunct
// touched (none globally); a decision-relevant cache miss re-runs the
// decision in resolve mode, where operators evaluate outside any lock
// and only the verdict stores take a stripe write lock. It agrees with
// Program.EvalPair on the underlying values (verdicts are pure
// functions of the value pair; property-checked in interned_test.go and
// the bench report's equivalence cross-checks).
func (it *Interner) EvalPairIDs(lids, rids []values.ID) bool {
	it.pairEvals.Add(1)
	verdict, known := it.evalPair(lids, rids, false)
	if known {
		return verdict
	}
	it.pairResolves.Add(1)
	verdict, _ = it.evalPair(lids, rids, true)
	return verdict
}

// EvalRuleIDs decides positive rule i alone on an interned row pair,
// resolving verdict-cache misses as needed. It is the explain layer's
// per-rule probe: EvalPairIDs short-circuits on the first holding rule,
// while an explanation needs every rule's individual verdict. Verdicts
// are pure functions of the value pair, so the outcomes agree with
// EvalPairIDs' decision exactly.
func (it *Interner) EvalRuleIDs(i int, lids, rids []values.ID) bool {
	return it.evalRuleResolved(it.prog.rules[i], lids, rids)
}

// EvalNegativeIDs decides negative rule i alone on an interned row
// pair, resolving misses as needed (see EvalRuleIDs).
func (it *Interner) EvalNegativeIDs(i int, lids, rids []values.ID) bool {
	return it.evalRuleResolved(it.prog.negRules[i], lids, rids)
}

func (it *Interner) evalRuleResolved(idx []uint16, lids, rids []values.ID) bool {
	for _, ci := range idx {
		ok, _ := it.evalConjunct(ci, lids, rids, true)
		if !ok {
			return false
		}
	}
	return true
}

// PairEvals returns the cumulative EvalPairIDs call count and the
// subset that fell off the warm (fully cached) path into a resolving
// pass. total - resolved is the number of pair decisions answered
// entirely from verdict caches.
func (it *Interner) PairEvals() (total, resolved uint64) {
	return it.pairEvals.Load(), it.pairResolves.Load()
}
