package exec

import (
	"sync"
	"sync/atomic"

	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// Interner compiles a Program against the interned value store
// (internal/values): the two columns of every conjunct share one
// dictionary, equality conjuncts evaluate as integer ID comparisons,
// and every other similarity conjunct becomes a lookup in a growable
// verdict cache keyed by canonical (minID, maxID) value pairs — each
// distinct value pair pays for its operator evaluation once per
// process, not once per tuple pair.
//
// An Interner is mutable shared state (dictionaries grow, caches fill)
// and safe for concurrent use: warm reads cost one read lock per pair,
// cache misses evaluate their operator outside any lock and only take
// the write lock to store the verdict, so cold paths never serialize
// concurrent matchers behind an edit-distance computation. Right-side
// dictionaries grow with the distinct values ever queried, and the
// verdict caches are bounded by values.MapMaxEntries (beyond it,
// verdicts are recomputed, not stored) — a long-lived server trades
// bounded memory for rarely evaluating an operator twice on the same
// value pair.
type Interner struct {
	prog *Program
	mu   sync.RWMutex
	// left/right map column index -> group dictionary (nil for columns
	// no conjunct touches; their cells intern to ID 0 and are never
	// read).
	left, right []*values.Dict
	// conjs is aligned with prog.conjuncts.
	conjs []internedConjunct

	// pairEvals counts EvalPairIDs calls; pairResolves the subset whose
	// decision needed a resolving pass (a decision-relevant verdict-cache
	// miss). Their ratio is the warm-path hit rate the serving layer
	// exposes.
	pairEvals    atomic.Uint64
	pairResolves atomic.Uint64
}

type internedConjunct struct {
	eq           bool
	left, right  int
	cache        *values.Cache
	ldict, rdict *values.Dict
	op           similarity.Operator
}

// NewInterner builds the interned evaluation state for a program.
func NewInterner(p *Program) *Interner {
	it := &Interner{
		prog:  p,
		left:  make([]*values.Dict, p.ctx.Left.Arity()),
		right: make([]*values.Dict, p.ctx.Right.Arity()),
	}
	// Group column nodes so both columns of every conjunct (and columns
	// transitively linked through shared conjunct columns) intern into
	// one dictionary: ID equality then means string equality, and the
	// canonical cache key applies.
	a1 := p.ctx.Left.Arity()
	g := values.NewGrouper(a1 + p.ctx.Right.Arity())
	for _, c := range p.conjuncts {
		g.Link(c.Left, a1+c.Right)
	}
	for _, c := range p.conjuncts {
		it.left[c.Left] = g.Dict(c.Left)
		it.right[c.Right] = g.Dict(a1 + c.Right)
	}
	it.conjs = make([]internedConjunct, len(p.conjuncts))
	for i, c := range p.conjuncts {
		ic := internedConjunct{
			left: c.Left, right: c.Right, op: c.Op,
			ldict: it.left[c.Left], rdict: it.right[c.Right],
		}
		if similarity.IsEq(c.Op) {
			ic.eq = true
		} else {
			ic.cache = values.NewCache(c.Op, ic.ldict, ic.rdict)
		}
		it.conjs[i] = ic
	}
	return it
}

// Program returns the compiled program the interner evaluates.
func (it *Interner) Program() *Program { return it.prog }

// InternLeft interns a left-side positional value row into dst
// (appended from dst[:0]; pass nil to allocate). Columns no conjunct
// reads intern to ID 0.
func (it *Interner) InternLeft(vals []string, dst []values.ID) []values.ID {
	return it.internRow(it.left, vals, dst)
}

// InternRight interns a right-side positional value row.
func (it *Interner) InternRight(vals []string, dst []values.ID) []values.ID {
	return it.internRow(it.right, vals, dst)
}

// LeftStrings renders an interned left row back into strings (appended
// from dst[:0]; pass nil to allocate). Columns no conjunct reads have
// no dictionary — their original strings were never retained — and
// render as ""; every column the program evaluates round-trips exactly.
// Snapshot serialization (internal/store) uses this to persist stored
// rows without the engine retaining raw strings.
func (it *Interner) LeftStrings(ids []values.ID, dst []string) []string {
	dst = dst[:0]
	it.mu.RLock()
	defer it.mu.RUnlock()
	for i, d := range it.left {
		if d == nil {
			dst = append(dst, "")
			continue
		}
		dst = append(dst, d.Value(ids[i]))
	}
	return dst
}

func (it *Interner) internRow(dicts []*values.Dict, vals []string, dst []values.ID) []values.ID {
	dst = dst[:0]
	// Fast path: every value already interned (read lock only).
	it.mu.RLock()
	hit := true
	for i, d := range dicts {
		if d == nil {
			dst = append(dst, 0)
			continue
		}
		id, ok := d.Lookup(vals[i])
		if !ok {
			hit = false
			break
		}
		dst = append(dst, id)
	}
	it.mu.RUnlock()
	if hit {
		return dst
	}
	dst = dst[:0]
	it.mu.Lock()
	defer it.mu.Unlock()
	for i, d := range dicts {
		if d == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, d.Intern(vals[i]))
	}
	return dst
}

// evalConjunct decides one conjunct on interned rows; the caller holds
// the read lock. In resolve mode a cache miss is resolved through
// resolveConjunct (which manages its own locking — the caller must NOT
// hold any lock then); otherwise a miss reports unknown.
func (it *Interner) evalConjunct(ci uint16, lids, rids []values.ID, resolve bool) (verdict, known bool) {
	c := &it.conjs[ci]
	a, b := lids[c.left], rids[c.right]
	if c.eq {
		return a == b, true // shared dictionary: ID equality is value equality
	}
	if resolve {
		return it.resolveConjunct(c, a, b), true
	}
	return c.cache.Peek(a, b)
}

// resolveConjunct answers one non-equality conjunct, evaluating the
// operator on a cache miss OUTSIDE any lock: the interned strings are
// immutable (only the slice headers need the read lock to snapshot),
// and operators are pure, so the quadratic edit-distance work never
// serializes concurrent matchers. Racing misses on the same pair
// evaluate at most once each and Store agreeing verdicts.
func (it *Interner) resolveConjunct(c *internedConjunct, a, b values.ID) bool {
	it.mu.RLock()
	verdict, known := c.cache.Peek(a, b)
	var sa, sb string
	if !known {
		sa, sb = c.ldict.Value(a), c.rdict.Value(b)
	}
	it.mu.RUnlock()
	if known {
		return verdict
	}
	verdict = c.op.Similar(sa, sb)
	it.mu.Lock()
	c.cache.Store(a, b, verdict)
	it.mu.Unlock()
	return verdict
}

// evalPair runs the whole-program decision — at least one positive rule
// holds and no negative rule vetoes — in one of two modes: a peek-only
// pass answering from cached verdicts alone (read lock held by the
// caller; reports known=false on the first decision-relevant cache
// miss), and a resolving pass (no lock held by the caller) that
// evaluates misses per conjunct via resolveConjunct.
func (it *Interner) evalPair(lids, rids []values.ID, resolve bool) (verdict, known bool) {
	evalRule := func(idx []uint16) (bool, bool) {
		for _, ci := range idx {
			ok, known := it.evalConjunct(ci, lids, rids, resolve)
			if !known {
				return false, false
			}
			if !ok {
				return false, true
			}
		}
		return true, true
	}
	matched := false
	for _, r := range it.prog.rules {
		ok, known := evalRule(r)
		if !known {
			return false, false
		}
		if ok {
			matched = true
			break
		}
	}
	if !matched {
		return false, true
	}
	for _, r := range it.prog.negRules {
		ok, known := evalRule(r)
		if !known {
			return false, false
		}
		if ok {
			return false, true
		}
	}
	return true, true
}

// EvalPairIDs decides the whole-program verdict for an interned row
// pair: at least one positive rule holds and no negative rule vetoes.
// The warm path costs one read lock for the whole pair; a
// decision-relevant cache miss re-runs the decision in resolve mode,
// where operators evaluate outside any lock and only the verdict
// stores take the write lock. It agrees with Program.EvalPair on the
// underlying values (verdicts are pure functions of the value pair;
// property-checked in interned_test.go and the bench report's
// equivalence cross-checks).
func (it *Interner) EvalPairIDs(lids, rids []values.ID) bool {
	it.pairEvals.Add(1)
	it.mu.RLock()
	verdict, known := it.evalPair(lids, rids, false)
	it.mu.RUnlock()
	if known {
		return verdict
	}
	it.pairResolves.Add(1)
	verdict, _ = it.evalPair(lids, rids, true)
	return verdict
}

// PairEvals returns the cumulative EvalPairIDs call count and the
// subset that fell off the warm (fully cached) path into a resolving
// pass. total - resolved is the number of pair decisions answered
// entirely from verdict caches.
func (it *Interner) PairEvals() (total, resolved uint64) {
	return it.pairEvals.Load(), it.pairResolves.Load()
}
