package core

import (
	"fmt"
	"strings"

	"mdmatch/internal/schema"
)

// NegativeMD is the "negation" extension sketched in Section 8: a rule
// specifying when records must NOT be matched. Syntactically like an MD,
// but its semantics is a veto:
//
//	⋀_j R1[X1[j]] ≈j R2[X2[j]]  →  R1[Z1] ⇎ R2[Z2]
//
// i.e. a tuple pair matching the LHS must not have its RHS attributes
// identified. Rule engines apply negative MDs as vetoes after the
// positive rules (matching.RuleSet), and the schema-level consistency
// check ConflictsWith detects rule sets that force a forbidden
// identification.
type NegativeMD struct {
	Ctx schema.Pair
	LHS []Conjunct
	RHS []AttrPair
}

// NewNegativeMD validates and builds a negative MD.
func NewNegativeMD(ctx schema.Pair, lhs []Conjunct, rhs []AttrPair) (NegativeMD, error) {
	n := NegativeMD{Ctx: ctx, LHS: lhs, RHS: rhs}
	if err := n.Validate(); err != nil {
		return NegativeMD{}, err
	}
	return n, nil
}

// Validate checks well-formedness (same conditions as a positive MD).
func (n NegativeMD) Validate() error {
	if _, err := NewMD(n.Ctx, n.LHS, n.RHS); err != nil {
		return fmt.Errorf("core: invalid negative MD: %w", err)
	}
	return nil
}

// ConflictsWith reports whether Σ deduces the identification the
// negative rule forbids: Σ ⊨m (LHS(n) → R1[Z1] ⇌ R2[Z2]). When true,
// any pair matching LHS(n) would be forced into the forbidden match by
// enforcing Σ — the rule set is inconsistent with the veto.
func (n NegativeMD) ConflictsWith(sigma []MD) (bool, error) {
	if err := n.Validate(); err != nil {
		return false, err
	}
	return Deduce(sigma, MD{Ctx: n.Ctx, LHS: n.LHS, RHS: n.RHS})
}

// String renders the negative MD with the must-not-identify arrow
// spelled "<!>" in rule-language style.
func (n NegativeMD) String() string {
	pos := MD{Ctx: n.Ctx, LHS: n.LHS, RHS: n.RHS}
	return strings.Replace(pos.String(), "<=>", "<!>", 1)
}
