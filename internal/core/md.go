// Package core implements the paper's primary contribution: matching
// dependencies (MDs, Section 2.1), relative candidate keys (RCKs,
// Section 2.2), the generic deduction mechanism and the MDClosure
// algorithm (Sections 3–4, Figures 5–6), and the findRCKs algorithm with
// its quality model (Section 5, Figure 7).
package core

import (
	"fmt"
	"strings"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// AttrPair is a pair of comparable attributes (R1[A], R2[B]): A is an
// attribute of the left relation, B of the right relation of the context.
type AttrPair struct {
	Left  string
	Right string
}

// P is shorthand for constructing an AttrPair.
func P(left, right string) AttrPair { return AttrPair{Left: left, Right: right} }

// String renders the pair as "A|B".
func (p AttrPair) String() string { return p.Left + "|" + p.Right }

// Conjunct is one similarity test R1[A] ≈ R2[B] in the LHS of an MD.
type Conjunct struct {
	Pair AttrPair
	Op   similarity.Operator
}

// C is shorthand for constructing a Conjunct.
func C(left string, op similarity.Operator, right string) Conjunct {
	return Conjunct{Pair: P(left, right), Op: op}
}

// Eq is shorthand for an equality conjunct R1[A] = R2[B].
func Eq(left, right string) Conjunct {
	return Conjunct{Pair: P(left, right), Op: similarity.Eq()}
}

// OpName returns the canonical operator name of the conjunct.
func (c Conjunct) OpName() string { return c.Op.Name() }

// Same reports whether two conjuncts test the same attribute pair with
// the same operator.
func (c Conjunct) Same(d Conjunct) bool {
	return c.Pair == d.Pair && c.OpName() == d.OpName()
}

// MD is a matching dependency over a context (R1, R2):
//
//	⋀_j R1[X1[j]] ≈j R2[X2[j]]  →  R1[Z1] ⇌ R2[Z2]
//
// LHS is the list of similarity conjuncts; RHS is the list of attribute
// pairs to be identified (the ⇌ "matching" operator).
type MD struct {
	Ctx schema.Pair
	LHS []Conjunct
	RHS []AttrPair
}

// NewMD validates and builds an MD over the context: the LHS and RHS must
// be non-empty, every referenced attribute must exist on its side, every
// conjunct must have a non-nil operator, and each pair must be comparable
// (same domain on both sides).
func NewMD(ctx schema.Pair, lhs []Conjunct, rhs []AttrPair) (MD, error) {
	md := MD{Ctx: ctx, LHS: lhs, RHS: rhs}
	if err := md.Validate(); err != nil {
		return MD{}, err
	}
	return md, nil
}

// MustMD is NewMD that panics on error; for tests and examples.
func MustMD(ctx schema.Pair, lhs []Conjunct, rhs []AttrPair) MD {
	md, err := NewMD(ctx, lhs, rhs)
	if err != nil {
		panic(err)
	}
	return md
}

// Validate checks the well-formedness conditions of Section 2.1.
func (m MD) Validate() error {
	if m.Ctx.Left == nil || m.Ctx.Right == nil {
		return fmt.Errorf("core: MD has no schema context")
	}
	if len(m.LHS) == 0 {
		return fmt.Errorf("core: MD must have a non-empty LHS")
	}
	if len(m.RHS) == 0 {
		return fmt.Errorf("core: MD must have a non-empty RHS")
	}
	for i, c := range m.LHS {
		if c.Op == nil {
			return fmt.Errorf("core: LHS conjunct %d has nil operator", i)
		}
		if err := m.checkPair(c.Pair); err != nil {
			return fmt.Errorf("core: LHS conjunct %d: %w", i, err)
		}
	}
	for i, p := range m.RHS {
		if err := m.checkPair(p); err != nil {
			return fmt.Errorf("core: RHS pair %d: %w", i, err)
		}
	}
	return nil
}

func (m MD) checkPair(p AttrPair) error {
	d1, err := m.Ctx.Left.DomainOf(p.Left)
	if err != nil {
		return err
	}
	d2, err := m.Ctx.Right.DomainOf(p.Right)
	if err != nil {
		return err
	}
	if d1 != d2 {
		return fmt.Errorf("pair (%s, %s) not comparable: domains %s vs %s", p.Left, p.Right, d1, d2)
	}
	return nil
}

// Normalize returns the equivalent set of normal-form MDs, one per RHS
// pair (Section 4: "an MD ψ of the general form ... is equivalent to a set
// of MDs in the normal form, one for each pair of attributes in (Z1,Z2),
// by Lemmas 3.1 and 3.3").
func (m MD) Normalize() []MD {
	out := make([]MD, 0, len(m.RHS))
	for _, p := range m.RHS {
		out = append(out, MD{Ctx: m.Ctx, LHS: m.LHS, RHS: []AttrPair{p}})
	}
	return out
}

// LHSPairs returns the attribute pairs of the LHS (without operators).
func (m MD) LHSPairs() []AttrPair {
	out := make([]AttrPair, len(m.LHS))
	for i, c := range m.LHS {
		out[i] = c.Pair
	}
	return out
}

// String renders the MD in the rule-language syntax.
func (m MD) String() string {
	var b strings.Builder
	l, r := m.Ctx.Left.Name(), m.Ctx.Right.Name()
	for i, c := range m.LHS {
		if i > 0 {
			b.WriteString(" && ")
		}
		op := c.OpName()
		if op == similarity.EqName {
			fmt.Fprintf(&b, "%s[%s] = %s[%s]", l, c.Pair.Left, r, c.Pair.Right)
		} else {
			fmt.Fprintf(&b, "%s[%s] ~%s %s[%s]", l, c.Pair.Left, op, r, c.Pair.Right)
		}
	}
	b.WriteString(" -> ")
	lefts := make([]string, len(m.RHS))
	rights := make([]string, len(m.RHS))
	for i, p := range m.RHS {
		lefts[i], rights[i] = p.Left, p.Right
	}
	fmt.Fprintf(&b, "%s[%s] <=> %s[%s]", l, strings.Join(lefts, ", "), r, strings.Join(rights, ", "))
	return b.String()
}

// Target is the pair of comparable attribute lists (Y1, Y2) that record
// matching aims to identify (the RHS fixed by a relative key).
type Target struct {
	Y1 schema.AttrList
	Y2 schema.AttrList
}

// NewTarget validates a target over a context.
func NewTarget(ctx schema.Pair, y1, y2 schema.AttrList) (Target, error) {
	if err := ctx.Comparable(y1, y2); err != nil {
		return Target{}, fmt.Errorf("core: invalid target: %w", err)
	}
	return Target{Y1: y1, Y2: y2}, nil
}

// Pairs returns the target as a list of attribute pairs.
func (t Target) Pairs() []AttrPair {
	out := make([]AttrPair, len(t.Y1))
	for j := range t.Y1 {
		out[j] = P(t.Y1[j], t.Y2[j])
	}
	return out
}

// Key is a key relative to a target (Y1, Y2) (Section 2.2): an MD whose
// RHS is fixed to (Y1, Y2), written (X1, X2 ‖ C). Its Conjuncts are the
// (X1[i], X2[i], ≈i) triples.
type Key struct {
	Ctx       schema.Pair
	Target    Target
	Conjuncts []Conjunct
}

// NewKey validates and builds a relative key.
func NewKey(ctx schema.Pair, target Target, conjuncts []Conjunct) (Key, error) {
	k := Key{Ctx: ctx, Target: target, Conjuncts: conjuncts}
	if _, err := NewMD(ctx, conjuncts, target.Pairs()); err != nil {
		return Key{}, fmt.Errorf("core: invalid relative key: %w", err)
	}
	return k, nil
}

// AsMD views the key as the MD it abbreviates.
func (k Key) AsMD() MD {
	return MD{Ctx: k.Ctx, LHS: k.Conjuncts, RHS: k.Target.Pairs()}
}

// Length returns the number of conjuncts (the key length k of §2.2).
func (k Key) Length() int { return len(k.Conjuncts) }

// ComparisonVector returns the operator list C of the key.
func (k Key) ComparisonVector() []similarity.Operator {
	out := make([]similarity.Operator, len(k.Conjuncts))
	for i, c := range k.Conjuncts {
		out[i] = c.Op
	}
	return out
}

// HasConjunct reports whether the key contains the given conjunct
// (same pair and operator).
func (k Key) HasConjunct(c Conjunct) bool {
	for _, d := range k.Conjuncts {
		if d.Same(c) {
			return true
		}
	}
	return false
}

// Covers implements the (non-strict) domination order on relative keys:
// k covers other if every conjunct of k appears in other and k is no
// longer than other. This is the paper's ψ′ ⪯ ψ relation (conditions (1)
// and (2) of Section 2.2) relaxed from strictly-shorter to
// no-longer-than, so that syntactically identical keys cover each other.
func (k Key) Covers(other Key) bool {
	if len(k.Conjuncts) > len(other.Conjuncts) {
		return false
	}
	for _, c := range k.Conjuncts {
		if !other.HasConjunct(c) {
			return false
		}
	}
	return true
}

// StrictlyShorterThan implements the paper's literal ψ′ ≺ ψ: k's
// conjuncts all occur in other and k is strictly shorter.
func (k Key) StrictlyShorterThan(other Key) bool {
	return len(k.Conjuncts) < len(other.Conjuncts) && k.Covers(other)
}

// String renders the key in the (X1, X2 ‖ C) notation of the paper.
func (k Key) String() string {
	lefts := make([]string, len(k.Conjuncts))
	rights := make([]string, len(k.Conjuncts))
	ops := make([]string, len(k.Conjuncts))
	for i, c := range k.Conjuncts {
		lefts[i], rights[i], ops[i] = c.Pair.Left, c.Pair.Right, c.OpName()
	}
	return fmt.Sprintf("([%s], [%s] ‖ [%s])",
		strings.Join(lefts, ", "), strings.Join(rights, ", "), strings.Join(ops, ", "))
}

// IdentityKey returns the trivial key (Y1, Y2 ‖ [=,...,=]) that compares
// the entire target with equality (line 3 of findRCKs, Figure 7).
func IdentityKey(ctx schema.Pair, target Target) Key {
	cs := make([]Conjunct, len(target.Y1))
	for j := range target.Y1 {
		cs[j] = Eq(target.Y1[j], target.Y2[j])
	}
	return Key{Ctx: ctx, Target: target, Conjuncts: cs}
}
