package core

import (
	"testing"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// --- The running example of the paper: credit / billing (Example 1.1) ---

// creditBilling returns the schemas of Example 1.1 and the MD set
// Σc = {ϕ1, ϕ2, ϕ3} of Example 2.1, plus the target (Yc, Yb).
func creditBilling(t testing.TB) (schema.Pair, []MD, Target, similarity.Operator) {
	t.Helper()
	credit := schema.MustStrings("credit",
		"cno", "ssn", "fn", "ln", "addr", "tel", "email", "gender", "type")
	billing := schema.MustStrings("billing",
		"cno", "fn", "ln", "post", "phn", "email", "gender", "item", "price")
	ctx := schema.MustPair(credit, billing)
	yc := schema.AttrList{"fn", "ln", "addr", "tel", "gender"}
	yb := schema.AttrList{"fn", "ln", "post", "phn", "gender"}
	target, err := NewTarget(ctx, yc, yb)
	if err != nil {
		t.Fatal(err)
	}
	d := similarity.DL(0.75) // the paper's ≈d edit-distance operator

	phi1 := MustMD(ctx,
		[]Conjunct{Eq("ln", "ln"), Eq("addr", "post"), C("fn", d, "fn")},
		target.Pairs())
	phi2 := MustMD(ctx,
		[]Conjunct{Eq("tel", "phn")},
		[]AttrPair{P("addr", "post")})
	phi3 := MustMD(ctx,
		[]Conjunct{Eq("email", "email")},
		[]AttrPair{P("fn", "fn"), P("ln", "ln")})
	return ctx, []MD{phi1, phi2, phi3}, target, d
}

// rck1..rck4 of Example 2.4 as relative keys.
func paperRCKs(ctx schema.Pair, target Target, d similarity.Operator) []Key {
	return []Key{
		{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("ln", "ln"), Eq("addr", "post"), C("fn", d, "fn")}},
		{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("ln", "ln"), Eq("tel", "phn"), C("fn", d, "fn")}},
		{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("email", "email"), Eq("addr", "post")}},
		{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("email", "email"), Eq("tel", "phn")}},
	}
}

// TestExample35DeduceRCKs is Example 3.5 / Example 4.1: Σc ⊨m rck1..rck4.
func TestExample35DeduceRCKs(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	for i, rck := range paperRCKs(ctx, target, d) {
		ok, err := DeduceKey(sigma, rck)
		if err != nil {
			t.Fatalf("rck%d: %v", i+1, err)
		}
		if !ok {
			t.Errorf("Σc must deduce rck%d = %s", i+1, rck)
		}
	}
}

// TestExample41ClosureTrace follows the M-array trace of Example 4.1:
// deducing rck4 sets, in order, the email/tel seed entries, then
// addr⇌post (ϕ2), fn⇌fn and ln⇌ln (ϕ3), and finally all of (Yc, Yb) (ϕ1).
func TestExample41ClosureTrace(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	cl, err := MDClosure(ctx, sigma, []Conjunct{Eq("email", "email"), Eq("tel", "phn")})
	if err != nil {
		t.Fatal(err)
	}
	mustIdentified := func(a, b string) {
		t.Helper()
		ok, err := cl.Identified(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("closure must identify credit[%s] with billing[%s]", a, b)
		}
	}
	mustIdentified("email", "email") // step 4 seeds
	mustIdentified("tel", "phn")
	mustIdentified("addr", "post") // via ϕ2
	mustIdentified("fn", "fn")     // via ϕ3
	mustIdentified("ln", "ln")
	for j := range target.Y1 { // via ϕ1: all of (Yc, Yb)
		mustIdentified(target.Y1[j], target.Y2[j])
	}
	// Negative control: ssn and item appear in no MD; they must not be
	// identified with anything.
	if ok, _ := cl.Identified("ssn", "item"); ok {
		t.Error("closure identified unrelated attributes")
	}
}

// TestNotDeducible checks a negative case: email alone does not make a
// key for (Yc, Yb) — ϕ1's address requirement cannot be discharged.
func TestNotDeducible(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	key := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("email", "email")}}
	ok, err := DeduceKey(sigma, key)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("email alone must not be a key relative to (Yc, Yb)")
	}
}

// --- Example 2.3 / 3.1: self-matching R(A,B,C), transitivity ---

func selfMatchABC(t testing.TB) (schema.Pair, []MD, MD) {
	t.Helper()
	r := schema.MustStrings("R", "A", "B", "C")
	ctx := schema.MustPair(r, r)
	psi1 := MustMD(ctx, []Conjunct{Eq("A", "A")}, []AttrPair{P("B", "B")})
	psi2 := MustMD(ctx, []Conjunct{Eq("B", "B")}, []AttrPair{P("C", "C")})
	psi3 := MustMD(ctx, []Conjunct{Eq("A", "A")}, []AttrPair{P("C", "C")})
	return ctx, []MD{psi1, psi2}, psi3
}

// TestExample31Transitivity: Σ0 = {ψ1, ψ2} ⊨m ψ3 (Lemma 3.3), even though
// Σ0 does not *imply* ψ3 under the traditional static notion.
func TestExample31Transitivity(t *testing.T) {
	_, sigma0, psi3 := selfMatchABC(t)
	ok, err := Deduce(sigma0, psi3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Σ0 must deduce ψ3 (dynamic-semantics transitivity)")
	}
}

// TestLemma31Augmentation: from ϕ one can deduce
// (LHS(ϕ) ∧ R1[A] ≈ R2[B]) → RHS(ϕ), and with equality also
// (LHS(ϕ) ∧ R1[A] = R2[B]) → (RHS(ϕ) ∧ R1[A] ⇌ R2[B]).
func TestLemma31Augmentation(t *testing.T) {
	ctx, sigma, _, d := creditBilling(t)
	phi2 := sigma[1] // tel=phn -> addr⇌post

	aug := MustMD(ctx,
		append([]Conjunct{C("fn", d, "fn")}, phi2.LHS...),
		phi2.RHS)
	if ok, err := Deduce([]MD{phi2}, aug); err != nil || !ok {
		t.Errorf("similarity augmentation failed: ok=%v err=%v", ok, err)
	}

	augEq := MustMD(ctx,
		append([]Conjunct{Eq("gender", "gender")}, phi2.LHS...),
		append([]AttrPair{P("gender", "gender")}, phi2.RHS...))
	if ok, err := Deduce([]MD{phi2}, augEq); err != nil || !ok {
		t.Errorf("equality augmentation (RHS expansion) failed: ok=%v err=%v", ok, err)
	}
}

// TestLemma32EqualitySubsumption: from (L ∧ A ≈ B) → Z1 ⇌ Z2 deduce
// (L ∧ A = B) → Z1 ⇌ Z2.
func TestLemma32EqualitySubsumption(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	phi1 := sigma[0] // ln=, addr=, fn ≈d -> (Yc ⇌ Yb)
	stronger := MustMD(ctx,
		[]Conjunct{Eq("ln", "ln"), Eq("addr", "post"), Eq("fn", "fn")},
		target.Pairs())
	if ok, err := Deduce([]MD{phi1}, stronger); err != nil || !ok {
		t.Errorf("equality must subsume ≈d in LHS matching: ok=%v err=%v", ok, err)
	}
}

// TestLemma34Interactions exercises the interaction of the matching
// operator with equality and with similarity (Figure 4).
func TestLemma34Interactions(t *testing.T) {
	r1 := schema.MustStrings("S", "X", "A1", "A2")
	r2 := schema.MustStrings("T", "Xr", "B", "Cc")
	ctx := schema.MustPair(r1, r2)
	d := similarity.DL(0.8)

	// (1) ϕ = L → R1[A1,A2] ⇌ R2[B,B]: enforcing makes t[A1] = t[A2]
	// (an intra-left equality); adding ϕ' = L → R1[A1] ⇌ R2[C] further
	// gives t[A2] = t'[C].
	phi := MustMD(ctx, []Conjunct{Eq("X", "Xr")}, []AttrPair{P("A1", "B"), P("A2", "B")})
	phiP := MustMD(ctx, []Conjunct{Eq("X", "Xr")}, []AttrPair{P("A1", "Cc")})
	cl, err := MDClosure(ctx, []MD{phi, phiP}, []Conjunct{Eq("X", "Xr")})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := cl.Similar(schema.Left, "A1", schema.Left, "A2", "="); !ok {
		t.Error("Lemma 3.4(1): t[A1] = t[A2] must hold in the closure")
	}
	if ok, _ := cl.Identified("A2", "Cc"); !ok {
		t.Error("Lemma 3.4(1): t[A2] = t'[C] must hold in the closure")
	}

	// (2) ϕ = (L ∧ R1[A1] ≈ R2[B]) → R1[A2] ⇌ R2[B]: then t[A2] ≈ t[A1].
	phi2 := MustMD(ctx, []Conjunct{Eq("X", "Xr"), C("A1", d, "B")}, []AttrPair{P("A2", "B")})
	cl2, err := MDClosure(ctx, []MD{phi2}, []Conjunct{Eq("X", "Xr"), C("A1", d, "B")})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := cl2.Similar(schema.Left, "A2", schema.Left, "A1", d.Name()); !ok {
		t.Error("Lemma 3.4(2): t[A2] ≈ t[A1] must hold in the closure")
	}
}

// TestExample51FindRCKs runs findRCKs on Σc with the Example 5.1 cost
// configuration (w1=1, w2=w3=0). With per-pair granularity (our normal
// form; the paper's trace treats (Yc,Yb) as one atomic element, see
// DESIGN.md) the algorithm derives exactly the four RCKs rck1..rck4 of
// Example 2.4 plus the minimized identity key.
func TestExample51FindRCKs(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	cm := &CostModel{W1: 1, W2: 0, W3: 0}
	keys, err := FindRCKs(ctx, sigma, target, 10, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		for _, k := range keys {
			t.Logf("  %s", k)
		}
		t.Fatalf("got %d keys, want 5 (minimized identity key + rck1..rck4)", len(keys))
	}
	// Every paper RCK must appear (as an exact conjunct set).
	for i, want := range paperRCKs(ctx, target, d) {
		found := false
		for _, got := range keys {
			if got.Covers(want) && want.Covers(got) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rck%d = %s not derived", i+1, want)
		}
	}
	// All returned keys are deducible, minimal, and pairwise non-covered.
	for i, k := range keys {
		ok, err := DeduceKey(sigma, k)
		if err != nil || !ok {
			t.Errorf("key %d (%s) not deducible: ok=%v err=%v", i, k, ok, err)
		}
		for j := range k.Conjuncts {
			rest := make([]Conjunct, 0, len(k.Conjuncts)-1)
			rest = append(rest, k.Conjuncts[:j]...)
			rest = append(rest, k.Conjuncts[j+1:]...)
			if len(rest) == 0 {
				continue
			}
			sub := Key{Ctx: ctx, Target: target, Conjuncts: rest}
			if ok, _ := DeduceKey(sigma, sub); ok {
				t.Errorf("key %d (%s) is not minimal: conjunct %d removable", i, k, j)
			}
		}
		for j, other := range keys {
			if i != j && k.Covers(other) {
				t.Errorf("key %d covers key %d: %s vs %s", i, j, k, other)
			}
		}
	}
}

// TestFindRCKsRespectsM checks the m bound.
func TestFindRCKsRespectsM(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	for m := 1; m <= 5; m++ {
		keys, err := FindRCKs(ctx, sigma, target, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) > m {
			t.Errorf("m=%d: got %d keys", m, len(keys))
		}
	}
}

// TestAddedValueOfDeducedMDs mirrors Example 3.4: the tuples (t1, t6) of
// Figure 1 cannot be matched by any MD of Σc directly applied as a rule,
// but they satisfy the LHS of the *deduced* rck4. (The instance-level
// verification lives in the semantics package; here we check the
// schema-level part: rck4's LHS is not subsumed by any single given MD.)
func TestAddedValueOfDeducedMDs(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck4 := paperRCKs(ctx, target, d)[3]
	// rck4 deduced from Σc as a whole...
	if ok, _ := DeduceKey(sigma, rck4); !ok {
		t.Fatal("Σc must deduce rck4")
	}
	// ...but from no single MD of Σc.
	for i, md := range sigma {
		if ok, _ := DeduceKey([]MD{md}, rck4); ok {
			t.Errorf("rck4 must not follow from ϕ%d alone", i+1)
		}
	}
}
