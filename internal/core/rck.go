package core

import (
	"fmt"
	"sort"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// CostModel is the quality model of Section 5. The cost of including an
// attribute pair (R1[A], R2[B]) in an RCK is
//
//	cost(A,B) = W1·ct(A,B) + W2·lt(A,B) + W3/ac(A,B)
//
// where ct counts how many selected RCKs already use the pair (diversity),
// lt is the average value length of the pair (longer values attract more
// errors), and ac is the user's confidence in the pair's accuracy.
// findRCKs prefers low-cost pairs. The paper's experiments use
// W1=W2=W3=1 and ac≡1.
type CostModel struct {
	W1, W2, W3 float64
	// Lt returns the average length statistic for a pair; nil means 0.
	Lt func(AttrPair) float64
	// Ac returns the accuracy/confidence for a pair; nil means 1.
	Ac func(AttrPair) float64

	ct map[AttrPair]int
}

// DefaultCostModel returns the paper's experimental configuration:
// weights (1, 1, 1), lt ≡ 0, ac ≡ 1.
func DefaultCostModel() *CostModel {
	return &CostModel{W1: 1, W2: 1, W3: 1}
}

// Cost returns the current cost of an attribute pair.
func (c *CostModel) Cost(p AttrPair) float64 {
	lt := 0.0
	if c.Lt != nil {
		lt = c.Lt(p)
	}
	ac := 1.0
	if c.Ac != nil {
		ac = c.Ac(p)
		if ac <= 0 {
			ac = 1e-9 // guard: zero confidence means effectively infinite cost
		}
	}
	return c.W1*float64(c.ct[p]) + c.W2*lt + c.W3/ac
}

// KeyCost returns the summed pair cost of a key's conjuncts.
func (c *CostModel) KeyCost(k Key) float64 {
	total := 0.0
	for _, cj := range k.Conjuncts {
		total += c.Cost(cj.Pair)
	}
	return total
}

// lhsCost returns the summed pair cost of an MD's LHS (procedure sortMD).
func (c *CostModel) lhsCost(md MD) float64 {
	total := 0.0
	for _, cj := range md.LHS {
		total += c.Cost(cj.Pair)
	}
	return total
}

// resetCt clears the diversity counters (line 2 of findRCKs).
func (c *CostModel) resetCt() { c.ct = make(map[AttrPair]int) }

// bump is procedure incrementCt: increment ct for each pair used by the
// key that also occurs in the pairing set S.
func (c *CostModel) bump(s map[AttrPair]struct{}, k Key) {
	for _, cj := range k.Conjuncts {
		if _, ok := s[cj.Pair]; ok {
			c.ct[cj.Pair]++
		}
	}
}

// Ct exposes the current diversity counter of a pair (for tests and
// diagnostics).
func (c *CostModel) Ct(p AttrPair) int { return c.ct[p] }

// Pairing collects the set S of attribute pairs that occur in (Y1, Y2) or
// in any MD of Σ (procedure pairing(Σ, Y1, Y2), line 1 of findRCKs).
func Pairing(sigma []MD, target Target) map[AttrPair]struct{} {
	s := make(map[AttrPair]struct{})
	for _, p := range target.Pairs() {
		s[p] = struct{}{}
	}
	for _, md := range sigma {
		for _, c := range md.LHS {
			s[c.Pair] = struct{}{}
		}
		for _, p := range md.RHS {
			s[p] = struct{}{}
		}
	}
	return s
}

// Apply implements apply(γ, φ) of Section 5: remove from γ's conjuncts
// every pair occurring in RHS(φ), then union in the conjuncts of LHS(φ).
// Operator subsumption is respected when unioning: an equality conjunct
// on a pair absorbs any similarity conjunct on the same pair.
func Apply(k Key, md MD) Key {
	rhs := make(map[AttrPair]struct{}, len(md.RHS))
	for _, p := range md.RHS {
		rhs[p] = struct{}{}
	}
	out := make([]Conjunct, 0, len(k.Conjuncts)+len(md.LHS))
	for _, c := range k.Conjuncts {
		if _, drop := rhs[c.Pair]; !drop {
			out = append(out, c)
		}
	}
	for _, c := range md.LHS {
		out = unionConjunct(out, c)
	}
	return Key{Ctx: k.Ctx, Target: k.Target, Conjuncts: out}
}

// unionConjunct adds c to cs respecting operator subsumption: if cs has
// the pair with equality, c is redundant; if c is an equality it replaces
// any similarity conjunct on the same pair; an exact duplicate is
// dropped. Two distinct similarity operators on the same pair both stay.
func unionConjunct(cs []Conjunct, c Conjunct) []Conjunct {
	cIsEq := c.OpName() == similarity.EqName
	for i, d := range cs {
		if d.Pair != c.Pair {
			continue
		}
		if d.OpName() == similarity.EqName {
			return cs // existing equality absorbs anything
		}
		if cIsEq {
			// Equality absorbs the similarity conjunct; also sweep any
			// further similarity conjuncts on the same pair.
			cs[i] = c
			out := cs[:i+1]
			for _, e := range cs[i+1:] {
				if e.Pair != c.Pair {
					out = append(out, e)
				}
			}
			return out
		}
		if d.OpName() == c.OpName() {
			return cs // exact duplicate
		}
	}
	return append(cs, c)
}

// Minimize implements procedure minimize (Figure 7): greedily drop the
// highest-cost conjuncts from the key while Σ still deduces it. Because
// LHS deducibility is monotone (augmentation, Lemma 3.1), a key from
// which no single conjunct can be dropped has no deducible proper
// sub-key at all — i.e. the result is a relative candidate key.
func Minimize(k Key, sigma []MD, cm *CostModel) (Key, error) {
	if cm == nil {
		cm = DefaultCostModel()
	}
	order := make([]int, len(k.Conjuncts))
	for i := range order {
		order[i] = i
	}
	// Descending cost; stable so ties keep declaration order.
	sort.SliceStable(order, func(a, b int) bool {
		return cm.Cost(k.Conjuncts[order[a]].Pair) > cm.Cost(k.Conjuncts[order[b]].Pair)
	})
	removed := make([]bool, len(k.Conjuncts))
	current := func(skip int) []Conjunct {
		out := make([]Conjunct, 0, len(k.Conjuncts))
		for i, c := range k.Conjuncts {
			if !removed[i] && i != skip {
				out = append(out, c)
			}
		}
		return out
	}
	for _, idx := range order {
		rest := current(idx)
		if len(rest) == 0 {
			continue
		}
		ok, err := Deduce(sigma, MD{Ctx: k.Ctx, LHS: rest, RHS: k.Target.Pairs()})
		if err != nil {
			return Key{}, err
		}
		if ok {
			removed[idx] = true
		}
	}
	return Key{Ctx: k.Ctx, Target: k.Target, Conjuncts: current(-1)}, nil
}

// FindRCKs implements algorithm findRCKs (Figure 7): given Σ, a target
// (Y1, Y2) and a bound m, it returns up to m quality RCKs relative to the
// target, deduced from Σ. If fewer than m RCKs exist, all of them are
// returned (completeness follows Proposition 5.1: the worklist stops when
// for every γ ∈ Γ and φ ∈ Σ some key in Γ covers apply(γ, φ)).
//
// cm may be nil, in which case the paper's default cost model is used.
// The diversity counters of cm are reset at the start of each call.
func FindRCKs(ctx schema.Pair, sigma []MD, target Target, m int, cm *CostModel) ([]Key, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: FindRCKs requires m > 0")
	}
	if err := ctx.Comparable(target.Y1, target.Y2); err != nil {
		return nil, fmt.Errorf("core: FindRCKs: %w", err)
	}
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			return nil, fmt.Errorf("core: FindRCKs: Σ[%d]: %w", i, err)
		}
	}
	if cm == nil {
		cm = DefaultCostModel()
	}
	cm.resetCt()
	s := Pairing(sigma, target) // line 1

	// Lines 3-4: minimize the identity key and seed Γ.
	gamma0, err := Minimize(IdentityKey(ctx, target), sigma, cm)
	if err != nil {
		return nil, err
	}
	result := []Key{gamma0}
	cm.bump(s, gamma0)
	if m == 1 {
		return result, nil
	}

	// Lines 5-15: worklist over Γ; for each key, apply each MD in
	// ascending LHS-cost order, minimize, and keep uncovered results.
	for i := 0; i < len(result); i++ {
		remaining := make([]MD, len(sigma))
		copy(remaining, sigma)
		for len(remaining) > 0 {
			// sortMD: pick the cheapest remaining MD (costs change as
			// counters are bumped, so selection is per-iteration).
			best := 0
			bestCost := cm.lhsCost(remaining[0])
			for j := 1; j < len(remaining); j++ {
				if c := cm.lhsCost(remaining[j]); c < bestCost {
					best, bestCost = j, c
				}
			}
			phi := remaining[best]
			remaining = append(remaining[:best], remaining[best+1:]...)

			cand := Apply(result[i], phi)
			if covered(result, cand) {
				continue
			}
			// Defensive re-check: apply of a deducible key by an MD of Σ
			// is always deducible (Lemmas 3.1-3.3); skip if not, rather
			// than emit a non-key.
			ok, err := DeduceKey(sigma, cand)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			minimized, err := Minimize(cand, sigma, cm)
			if err != nil {
				return nil, err
			}
			if covered(result, minimized) {
				continue
			}
			result = append(result, minimized)
			cm.bump(s, minimized)
			if len(result) == m {
				return result, nil
			}
		}
	}
	return result, nil
}

// covered reports whether some key in keys covers cand (the completeness
// test of lines 10-11, with the non-strict order of DESIGN.md §2.2).
func covered(keys []Key, cand Key) bool {
	for _, k := range keys {
		if k.Covers(cand) {
			return true
		}
	}
	return false
}

// AllRCKs returns every RCK deducible from Σ relative to the target, by
// running FindRCKs with an effectively unbounded m. Use only when Σ is
// small (the number of RCKs can be exponential in general, Section 5).
func AllRCKs(ctx schema.Pair, sigma []MD, target Target, cm *CostModel) ([]Key, error) {
	return FindRCKs(ctx, sigma, target, 1<<30, cm)
}

// Subsumes reports whether key k makes key other redundant as a
// matching rule: k is no longer than other and every conjunct of k has a
// counterpart in other on the same pair whose operator is at least as
// strong (identical, or equality — which entails every similarity
// operator). Any tuple pair matching other's LHS then matches k's LHS,
// so applying both rules finds exactly what applying k alone finds.
//
// This is strictly finer than the paper's ⪯ order (Section 2.2), which
// compares operators by identity: ([A],[B] ‖ [≈]) subsumes
// ([A],[B] ‖ [=]) here but the two are ⪯-incomparable there.
func (k Key) Subsumes(other Key) bool {
	if len(k.Conjuncts) > len(other.Conjuncts) {
		return false
	}
	for _, c := range k.Conjuncts {
		found := false
		for _, d := range other.Conjuncts {
			if d.Pair == c.Pair && (d.OpName() == c.OpName() || d.OpName() == similarity.EqName) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// PruneSubsumed removes keys made redundant by another key in the list
// under operator subsumption (see Key.Subsumes). Earlier keys win ties;
// the relative order of survivors is preserved. Matching with the pruned
// set finds exactly the pairs the full set finds, with fewer rule
// evaluations — the practical selection step used when picking the
// "top k" keys for a matcher (DESIGN.md §5).
func PruneSubsumed(keys []Key) []Key {
	removed := make([]bool, len(keys))
	for i := range keys {
		if removed[i] {
			continue
		}
		for j := range keys {
			if i == j || removed[j] || removed[i] {
				continue
			}
			if keys[i].Subsumes(keys[j]) && !(keys[j].Subsumes(keys[i]) && j < i) {
				removed[j] = true
			}
		}
	}
	out := make([]Key, 0, len(keys))
	for i, k := range keys {
		if !removed[i] {
			out = append(out, k)
		}
	}
	return out
}
