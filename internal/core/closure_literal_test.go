package core

import (
	"math/rand"
	"testing"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// TestLiteralClosurePaperExamples: the literal transliteration must
// reproduce the paper's own walkthroughs exactly as the production
// implementation does.
func TestLiteralClosurePaperExamples(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	for i, rck := range paperRCKs(ctx, target, d) {
		ok, err := DeduceLiteral(sigma, rck.AsMD())
		if err != nil {
			t.Fatalf("rck%d: %v", i+1, err)
		}
		if !ok {
			t.Errorf("literal closure must deduce rck%d", i+1)
		}
	}
	// Negative case agrees too.
	key := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("email", "email")}}
	ok, err := DeduceLiteral(sigma, key.AsMD())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("literal closure must not deduce the email-only key")
	}
	_, sigma0, psi3 := selfMatchABC(t)
	if ok, _ := DeduceLiteral(sigma0, psi3); !ok {
		t.Error("literal closure must deduce ψ3 (Example 3.1)")
	}
}

// randomReasoningInput builds a random Σ and hypothesis LHS for
// cross-validation.
func randomReasoningInput(rnd *rand.Rand, ctx schema.Pair) ([]MD, []Conjunct) {
	ops := []similarity.Operator{similarity.Eq(), similarity.DL(0.8), similarity.JaroOp(0.85)}
	nl, nr := ctx.Left.Arity(), ctx.Right.Arity()
	randConj := func() Conjunct {
		return Conjunct{
			Pair: P(ctx.Left.Attr(rnd.Intn(nl)).Name, ctx.Right.Attr(rnd.Intn(nr)).Name),
			Op:   ops[rnd.Intn(len(ops))],
		}
	}
	n := 2 + rnd.Intn(10)
	sigma := make([]MD, n)
	for i := range sigma {
		lhs := make([]Conjunct, 1+rnd.Intn(3))
		for j := range lhs {
			lhs[j] = randConj()
		}
		rhs := make([]AttrPair, 1+rnd.Intn(2))
		for j := range rhs {
			rhs[j] = P(ctx.Left.Attr(rnd.Intn(nl)).Name, ctx.Right.Attr(rnd.Intn(nr)).Name)
		}
		sigma[i] = MD{Ctx: ctx, LHS: lhs, RHS: rhs}
	}
	lhs := make([]Conjunct, 1+rnd.Intn(3))
	for j := range lhs {
		lhs[j] = randConj()
	}
	return sigma, lhs
}

// TestLiteralClosureSubset: on random inputs, the literal closure's fact
// set is a subset of the production closure's (the production Propagate
// closes under strictly more axiom instances), and they agree on every
// cross-relation identification — the quantity Deduce queries.
func TestLiteralClosureSubset(t *testing.T) {
	ctx := twoSchemas(t, 7)
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		sigma, lhs := randomReasoningInput(rnd, ctx)
		lit, err := MDClosureLiteral(ctx, sigma, lhs)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := MDClosure(ctx, sigma, lhs)
		if err != nil {
			t.Fatal(err)
		}
		if len(lit.m) != len(prod.m) {
			t.Fatal("closure dimensions differ")
		}
		p := len(lit.ops)
		for i := range lit.m {
			if lit.m[i] && !prod.m[i] {
				// The paper's Infer has no c != endpoint guard, so the
				// literal version records trivially-reflexive diagonal
				// facts (x ≈ x); the production version skips them as
				// redundant. Ignore the diagonal, flag anything else.
				rest := i / p
				if rest/lit.h == rest%lit.h {
					continue
				}
				t.Fatalf("trial %d: literal closure has a non-diagonal fact the production closure lacks", trial)
			}
		}
		// Cross-pair identifications agree.
		litPairs := map[AttrPair]bool{}
		for _, p := range lit.IdentifiedPairs() {
			litPairs[p] = true
		}
		for _, p := range prod.IdentifiedPairs() {
			if !litPairs[p] {
				t.Logf("trial %d: production closure identifies %v beyond the literal one (intra-relation chain)", trial, p)
			}
		}
	}
}

// TestLiteralVsProductionDeduction: deduction verdicts agree on random
// cross-relation hypotheses. (If the production version ever deduces
// strictly more it is still sound — see DESIGN.md §2.1 — but on the
// distributions tested here the verdicts coincide; a divergence would
// signal a behavioural change worth investigating.)
func TestLiteralVsProductionDeduction(t *testing.T) {
	ctx := twoSchemas(t, 6)
	rnd := rand.New(rand.NewSource(123))
	agree, total := 0, 0
	for trial := 0; trial < 300; trial++ {
		sigma, lhs := randomReasoningInput(rnd, ctx)
		rhs := []AttrPair{P(ctx.Left.Attr(rnd.Intn(6)).Name, ctx.Right.Attr(rnd.Intn(6)).Name)}
		phi := MD{Ctx: ctx, LHS: lhs, RHS: rhs}
		a, err := DeduceLiteral(sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Deduce(sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if a == b {
			agree++
		}
		if a && !b {
			t.Fatalf("trial %d: literal deduces but production does not — production closure lost a fact", trial)
		}
	}
	if agree != total {
		t.Logf("deduction agreement: %d/%d (divergences are production-only deductions)", agree, total)
	}
}
