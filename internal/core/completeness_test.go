package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdmatch/internal/similarity"
)

// bruteForceRCKs enumerates every minimal deducible key over the given
// conjunct universe by exhaustive subset search: a set S is an RCK iff
// Σ ⊨m (S → target) and no proper subset of S is deducible. This is the
// ground truth for Proposition 5.1 ("a nonempty set Γ consists of all
// RCKs deduced from Σ iff Γ is complete w.r.t. Σ"): findRCKs'
// worklist-with-completeness-test must return exactly these keys.
func bruteForceRCKs(t *testing.T, sigma []MD, target Target, universe []Conjunct) [][]Conjunct {
	t.Helper()
	if len(universe) > 16 {
		t.Fatalf("universe too large for brute force: %d", len(universe))
	}
	n := len(universe)
	deducible := make([]bool, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		var cs []Conjunct
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cs = append(cs, universe[i])
			}
		}
		ok, err := Deduce(sigma, MD{Ctx: sigma[0].Ctx, LHS: cs, RHS: target.Pairs()})
		if err != nil {
			t.Fatal(err)
		}
		deducible[mask] = ok
	}
	var out [][]Conjunct
	for mask := 1; mask < 1<<n; mask++ {
		if !deducible[mask] {
			continue
		}
		minimal := true
		for i := 0; i < n && minimal; i++ {
			if mask&(1<<i) != 0 && deducible[mask&^(1<<i)] {
				minimal = false
			}
		}
		if !minimal {
			continue
		}
		var cs []Conjunct
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cs = append(cs, universe[i])
			}
		}
		out = append(out, cs)
	}
	return out
}

// conjunctUniverse is the generative space of findRCKs: the equality
// conjunct of every pair in pairing(Σ, target), plus every LHS conjunct
// of Σ.
func conjunctUniverse(sigma []MD, target Target) []Conjunct {
	seen := map[string]bool{}
	var out []Conjunct
	add := func(c Conjunct) {
		k := c.Pair.String() + "\x00" + c.OpName()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	for p := range Pairing(sigma, target) {
		add(Conjunct{Pair: p, Op: similarity.Eq()})
	}
	for _, md := range sigma {
		for _, c := range md.LHS {
			add(c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Pair.String()+out[i].OpName() < out[j].Pair.String()+out[j].OpName()
	})
	return out
}

func conjunctSetSig(cs []Conjunct) string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = c.Pair.String() + "~" + c.OpName()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// checkAgainstBruteForce validates findRCKs against exhaustive search:
//
//   - soundness: every returned key is in the brute-force set of minimal
//     deducible keys (it really is an RCK);
//   - completeness up to operator subsumption: every brute-force RCK is
//     operator-subsumed by some returned key (the returned set matches
//     at least the same tuple pairs).
//
// The second clause is deliberately weaker than set equality, and that
// is a reproduction finding (DESIGN.md §2.2): the paper's ≺ order
// compares operators by identity, so e.g. on Σc the key
// (ln, addr, fn ‖ =, =, =) is definitionally an RCK — it has no
// *strictly shorter* sub-key — yet findRCKs' apply-driven worklist never
// generates it, because apply(identity, ϕ1) replaces fn's = with ϕ1's
// ≈d. The generated key (ln, addr, fn ‖ =, =, ≈d) subsumes it (matches
// strictly more pairs), so nothing is lost operationally, but
// "Γ consists of all RCKs" in Proposition 5.1 must be read as "all
// apply-reachable RCKs".
// checkAgainstBruteForce returns the number of brute-force RCKs not
// operator-subsumed by any findRCKs key (the reachability gap), after
// asserting soundness: every returned key must itself be a brute-force
// minimal key.
func checkAgainstBruteForce(t *testing.T, label string, sigma []MD, target Target, found []Key) int {
	t.Helper()
	universe := conjunctUniverse(sigma, target)
	if len(universe) > 14 {
		t.Fatalf("%s: universe too large (%d)", label, len(universe))
	}
	truth := bruteForceRCKs(t, sigma, target, universe)
	truthSigs := map[string]bool{}
	for _, cs := range truth {
		truthSigs[conjunctSetSig(cs)] = true
	}
	for _, k := range found {
		if !truthSigs[conjunctSetSig(k.Conjuncts)] {
			t.Errorf("%s: findRCKs produced non-minimal or non-deducible key %s", label, k)
		}
	}
	ctx := found[0].Ctx
	missed := 0
	for _, cs := range truth {
		b := Key{Ctx: ctx, Target: target, Conjuncts: cs}
		covered := false
		for _, k := range found {
			if k.Subsumes(b) {
				covered = true
				break
			}
		}
		if !covered {
			missed++
		}
	}
	return missed
}

// TestFindRCKsCompletePaperExample: on Σc, findRCKs is sound and
// subsumption-complete against brute force.
func TestFindRCKsCompletePaperExample(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	found, err := AllRCKs(ctx, sigma, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gap := checkAgainstBruteForce(t, "Σc", sigma, target, found); gap != 0 {
		t.Errorf("Σc: %d brute-force RCKs not subsumed by findRCKs output", gap)
	}
	// The known ⪯-incomparable extra key: definitionally an RCK, not
	// apply-reachable, and operator-subsumed by rck1.
	extra := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		Eq("ln", "ln"), Eq("addr", "post"), Eq("fn", "fn")}}
	if ok, _ := DeduceKey(sigma, extra); !ok {
		t.Fatal("the extra key must be deducible")
	}
	subsumed := false
	for _, k := range found {
		if k.Subsumes(extra) {
			subsumed = true
		}
	}
	if !subsumed {
		t.Error("the extra key must be subsumed by a found key (rck1)")
	}
}

// TestFindRCKsCompleteRandom cross-checks random rule sets. Soundness
// must hold exactly. Completeness is measured, not asserted: on random
// Σ, exhaustive search exhibits minimal keys that exploit
// equality-transitivity across attribute pairs sharing an endpoint —
// combinations apply() can never produce, since it only unions LHS
// conjuncts of Σ's rules onto residual target pairs. This is a genuine
// limitation of the published algorithm (reproduction finding,
// DESIGN.md §2.2): Proposition 5.1's "all RCKs deduced from Σ" is
// relative to the apply-reachable space. On rule sets shaped like real
// matching rules (the paper's Σc, the evaluation's 7 holder MDs) the
// gap is zero; the test bounds how pathological the random gap may get
// and logs it.
func TestFindRCKsCompleteRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	ops := []similarity.Operator{similarity.Eq(), similarity.DL(0.8)}
	trials, trialsWithGap, totalGap := 0, 0, 0
	for trial := 0; trial < 40; trial++ {
		ctx := twoSchemas(t, 4)
		target, err := NewTarget(ctx,
			[]string{ctx.Left.Attr(0).Name, ctx.Left.Attr(1).Name},
			[]string{ctx.Right.Attr(0).Name, ctx.Right.Attr(1).Name})
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rnd.Intn(3)
		sigma := make([]MD, n)
		for i := range sigma {
			lhs := make([]Conjunct, 1+rnd.Intn(2))
			for j := range lhs {
				lhs[j] = Conjunct{
					Pair: P(ctx.Left.Attr(rnd.Intn(4)).Name, ctx.Right.Attr(rnd.Intn(4)).Name),
					Op:   ops[rnd.Intn(len(ops))],
				}
			}
			rhs := []AttrPair{P(ctx.Left.Attr(rnd.Intn(4)).Name, ctx.Right.Attr(rnd.Intn(4)).Name)}
			sigma[i] = MD{Ctx: ctx, LHS: lhs, RHS: rhs}
		}
		if len(conjunctUniverse(sigma, target)) > 14 {
			continue // keep brute force cheap
		}
		found, err := AllRCKs(ctx, sigma, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		gap := checkAgainstBruteForce(t, fmt.Sprintf("trial %d", trial), sigma, target, found)
		if gap > 0 {
			trialsWithGap++
			totalGap += gap
		}
		trials++
	}
	if trials == 0 {
		t.Fatal("no trials executed")
	}
	t.Logf("reachability gap: %d/%d trials missed %d brute-force RCKs in total (apply-unreachable keys)",
		trialsWithGap, trials, totalGap)
	if trialsWithGap > trials/2 {
		t.Errorf("gap in %d/%d trials — far above the expected pathological rate", trialsWithGap, trials)
	}
}
