package core

import (
	"math/rand"
	"testing"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func twoSchemas(t testing.TB, n int) schema.Pair {
	t.Helper()
	names := func(prefix string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		return out
	}
	l := schema.MustStrings("L", names("l")...)
	r := schema.MustStrings("R", names("r")...)
	return schema.MustPair(l, r)
}

func TestMDValidation(t *testing.T) {
	ctx := twoSchemas(t, 3)
	la, ra := ctx.Left.Attr(0).Name, ctx.Right.Attr(0).Name
	good := MD{Ctx: ctx, LHS: []Conjunct{Eq(la, ra)}, RHS: []AttrPair{P(la, ra)}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid MD rejected: %v", err)
	}
	bad := []MD{
		{},
		{Ctx: ctx},
		{Ctx: ctx, LHS: []Conjunct{Eq(la, ra)}}, // empty RHS
		{Ctx: ctx, RHS: []AttrPair{P(la, ra)}},  // empty LHS
		{Ctx: ctx, LHS: []Conjunct{{Pair: P(la, ra)}}, RHS: []AttrPair{P(la, ra)}}, // nil op
		{Ctx: ctx, LHS: []Conjunct{Eq("missing", ra)}, RHS: []AttrPair{P(la, ra)}}, // bad attr
		{Ctx: ctx, LHS: []Conjunct{Eq(la, ra)}, RHS: []AttrPair{P(la, "missing")}}, // bad attr
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid MD %d accepted", i)
		}
	}
	// Domain mismatch.
	l := schema.MustRelation("L2", schema.Attribute{Name: "a", Domain: schema.Int})
	r := schema.MustRelation("R2", schema.Attribute{Name: "b", Domain: schema.String})
	ctx2 := schema.MustPair(l, r)
	dm := MD{Ctx: ctx2, LHS: []Conjunct{Eq("a", "b")}, RHS: []AttrPair{P("a", "b")}}
	if err := dm.Validate(); err == nil {
		t.Error("domain-mismatched MD accepted")
	}
}

func TestNormalize(t *testing.T) {
	ctx := twoSchemas(t, 4)
	names := ctx.Left.AttrNames()
	rnames := ctx.Right.AttrNames()
	md := MustMD(ctx,
		[]Conjunct{Eq(names[0], rnames[0])},
		[]AttrPair{P(names[1], rnames[1]), P(names[2], rnames[2]), P(names[3], rnames[3])})
	norm := md.Normalize()
	if len(norm) != 3 {
		t.Fatalf("Normalize produced %d MDs, want 3", len(norm))
	}
	for i, n := range norm {
		if len(n.RHS) != 1 {
			t.Errorf("normal form %d has %d RHS pairs", i, len(n.RHS))
		}
		if len(n.LHS) != len(md.LHS) {
			t.Errorf("normal form %d lost LHS conjuncts", i)
		}
	}
	// Deduction is invariant under normalization, in both directions.
	if ok, err := Deduce(norm, md); err != nil || !ok {
		t.Errorf("normal form must deduce the general form: ok=%v err=%v", ok, err)
	}
	for i, n := range norm {
		if ok, err := Deduce([]MD{md}, n); err != nil || !ok {
			t.Errorf("general form must deduce normal form %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestMDString(t *testing.T) {
	ctx, sigma, _, _ := creditBilling(t)
	s := sigma[0].String()
	want := "credit[ln] = billing[ln] && credit[addr] = billing[post] && credit[fn] ~dl(0.75) billing[fn] -> credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]"
	if s != want {
		t.Errorf("MD.String()\n got %q\nwant %q", s, want)
	}
	_ = ctx
}

func TestClosureReflexiveSeeds(t *testing.T) {
	// Deducing an MD that is literally in Σ always succeeds.
	_, sigma, _, _ := creditBilling(t)
	for i, md := range sigma {
		ok, err := Deduce(sigma, md)
		if err != nil || !ok {
			t.Errorf("Σ must deduce its own member ϕ%d: ok=%v err=%v", i+1, ok, err)
		}
	}
}

func TestClosureSymmetry(t *testing.T) {
	ctx, sigma, _, _ := creditBilling(t)
	cl, err := MDClosure(ctx, sigma, []Conjunct{Eq("email", "email"), Eq("tel", "phn")})
	if err != nil {
		t.Fatal(err)
	}
	// Every recorded fact must have its symmetric counterpart.
	h := ctx.TotalColumns()
	for a := 0; a < h; a++ {
		for b := 0; b < h; b++ {
			for op := range cl.Ops() {
				if cl.at(a, b, op) != cl.at(b, a, op) {
					t.Fatalf("asymmetric M entry at (%d,%d,op%d)", a, b, op)
				}
			}
		}
	}
}

func TestClosureEqSubsumesSimilarityQueries(t *testing.T) {
	ctx, sigma, _, d := creditBilling(t)
	cl, err := MDClosure(ctx, sigma, []Conjunct{Eq("email", "email"), Eq("tel", "phn")})
	if err != nil {
		t.Fatal(err)
	}
	// fn⇌fn is identified; querying it under ≈d must also return true.
	ok, err := cl.Similar(schema.Left, "fn", schema.Right, "fn", d.Name())
	if err != nil || !ok {
		t.Errorf("equality fact must satisfy similarity query: ok=%v err=%v", ok, err)
	}
	// Unknown operator names error out.
	if _, err := cl.Similar(schema.Left, "fn", schema.Right, "fn", "nosuch(0.5)"); err == nil {
		t.Error("unknown operator must be an error")
	}
	// Unknown attributes error out.
	if _, err := cl.Identified("nosuch", "fn"); err == nil {
		t.Error("unknown attribute must be an error")
	}
}

func TestIdentifiedPairs(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	cl, err := MDClosure(ctx, sigma, []Conjunct{Eq("email", "email"), Eq("tel", "phn")})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[AttrPair]bool)
	for _, p := range cl.IdentifiedPairs() {
		got[p] = true
	}
	for _, p := range target.Pairs() {
		if !got[p] {
			t.Errorf("IdentifiedPairs missing %v", p)
		}
	}
	if !got[P("email", "email")] || !got[P("tel", "phn")] {
		t.Error("IdentifiedPairs missing seed pairs")
	}
}

// TestDeductionMonotone: adding MDs to Σ never invalidates a deduction.
func TestDeductionMonotone(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck := paperRCKs(ctx, target, d)[3]
	extra := MustMD(ctx, []Conjunct{Eq("ssn", "item")}, []AttrPair{P("gender", "gender")})
	for i := range sigma {
		sub := sigma[:i+1]
		okSub, err := DeduceKey(sub, rck)
		if err != nil {
			t.Fatal(err)
		}
		okAll, err := DeduceKey(append(append([]MD{}, sigma...), extra), rck)
		if err != nil {
			t.Fatal(err)
		}
		if okSub && !okAll {
			t.Errorf("deduction lost after adding MDs (prefix %d)", i+1)
		}
	}
}

// TestDeductionLHSMonotone: strengthening the LHS preserves deduction
// (augmentation), randomized.
func TestDeductionLHSMonotone(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rnd := rand.New(rand.NewSource(7))
	base := paperRCKs(ctx, target, d)[2] // email & addr
	lAttrs := ctx.Left.AttrNames()
	rAttrs := ctx.Right.AttrNames()
	for trial := 0; trial < 50; trial++ {
		extra := Eq(lAttrs[rnd.Intn(len(lAttrs))], rAttrs[rnd.Intn(len(rAttrs))])
		aug := Key{Ctx: ctx, Target: target,
			Conjuncts: append(append([]Conjunct{}, base.Conjuncts...), extra)}
		ok, err := DeduceKey(sigma, aug)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("augmented key not deducible: %s", aug)
		}
	}
}

// TestClosureFactsMonotoneInSigma: the closure fact set grows (never
// shrinks) as MDs are added, randomized over generated rule sets.
func TestClosureFactsMonotoneInSigma(t *testing.T) {
	ctx := twoSchemas(t, 8)
	rnd := rand.New(rand.NewSource(42))
	ops := []similarity.Operator{similarity.Eq(), similarity.DL(0.8), similarity.JaroOp(0.85)}
	randMD := func() MD {
		lhs := make([]Conjunct, 1+rnd.Intn(3))
		for i := range lhs {
			lhs[i] = Conjunct{
				Pair: P(ctx.Left.Attr(rnd.Intn(8)).Name, ctx.Right.Attr(rnd.Intn(8)).Name),
				Op:   ops[rnd.Intn(len(ops))],
			}
		}
		rhs := []AttrPair{P(ctx.Left.Attr(rnd.Intn(8)).Name, ctx.Right.Attr(rnd.Intn(8)).Name)}
		return MD{Ctx: ctx, LHS: lhs, RHS: rhs}
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rnd.Intn(8)
		sigma := make([]MD, n)
		for i := range sigma {
			sigma[i] = randMD()
		}
		seed := []Conjunct{randMD().LHS[0]}
		prev := 0
		for i := 1; i <= n; i++ {
			cl, err := MDClosure(ctx, sigma[:i], seed)
			if err != nil {
				t.Fatal(err)
			}
			if cl.FactCount() < prev {
				t.Fatalf("fact count shrank: %d -> %d at prefix %d", prev, cl.FactCount(), i)
			}
			prev = cl.FactCount()
		}
	}
}

// TestClosureIdempotent: running the closure twice with the same inputs
// yields identical fact sets (determinism).
func TestClosureIdempotent(t *testing.T) {
	ctx, sigma, _, _ := creditBilling(t)
	seed := []Conjunct{Eq("email", "email"), Eq("tel", "phn")}
	a, err := MDClosure(ctx, sigma, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MDClosure(ctx, sigma, seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.FactCount() != b.FactCount() {
		t.Fatalf("non-deterministic closure: %d vs %d facts", a.FactCount(), b.FactCount())
	}
	for i := range a.m {
		if a.m[i] != b.m[i] {
			t.Fatal("non-deterministic closure entries")
		}
	}
}

// TestClosureOrderInvariant: the closure must not depend on the order of
// MDs in Σ.
func TestClosureOrderInvariant(t *testing.T) {
	ctx, sigma, _, _ := creditBilling(t)
	seed := []Conjunct{Eq("email", "email"), Eq("tel", "phn")}
	a, err := MDClosure(ctx, sigma, seed)
	if err != nil {
		t.Fatal(err)
	}
	rev := []MD{sigma[2], sigma[0], sigma[1]}
	b, err := MDClosure(ctx, rev, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.m {
		if a.m[i] != b.m[i] {
			t.Fatal("closure depends on Σ order")
		}
	}
}

// TestDeduceErrors checks error paths.
func TestDeduceErrors(t *testing.T) {
	ctx := twoSchemas(t, 2)
	la, ra := ctx.Left.Attr(0).Name, ctx.Right.Attr(0).Name
	invalid := MD{Ctx: ctx} // empty LHS/RHS
	if _, err := Deduce(nil, invalid); err == nil {
		t.Error("Deduce must reject an invalid ϕ")
	}
	valid := MustMD(ctx, []Conjunct{Eq(la, ra)}, []AttrPair{P(la, ra)})
	badSigma := []MD{{Ctx: ctx}}
	if _, err := Deduce(badSigma, valid); err == nil {
		t.Error("Deduce must reject an invalid Σ member")
	}
	// ϕ deducible from its own LHS (RHS pair seeded with equality).
	ok, err := Deduce(nil, valid)
	if err != nil || !ok {
		t.Errorf("trivial self-deduction failed: ok=%v err=%v", ok, err)
	}
	// But a similarity seed does not identify the pair.
	sim := MD{Ctx: ctx, LHS: []Conjunct{C(la, similarity.DL(0.8), ra)}, RHS: []AttrPair{P(la, ra)}}
	ok, err = Deduce(nil, sim)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("similarity on a pair must not identify the pair")
	}
}

// TestSelfMatchClosureSides verifies that the left and right copies of
// the same schema are kept apart: A=A on one pair does not leak to other
// attributes without an MD saying so.
func TestSelfMatchClosureSides(t *testing.T) {
	r := schema.MustStrings("R", "A", "B")
	ctx := schema.MustPair(r, r)
	cl, err := MDClosure(ctx, nil, []Conjunct{Eq("A", "A")})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := cl.Identified("B", "B"); ok {
		t.Error("B⇌B must not follow from A=A with empty Σ")
	}
	if ok, _ := cl.Identified("A", "A"); !ok {
		t.Error("seeded A=A missing")
	}
	if ok, _ := cl.Similar(schema.Left, "A", schema.Left, "B", "="); ok {
		t.Error("intra-relation A=B must not appear")
	}
}
