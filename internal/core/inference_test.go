package core

import (
	"math/rand"
	"testing"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// This file checks structural properties of the deduction relation that
// the paper's inference system I (Section 3.2, eleven axioms) implies.
// The axioms themselves are not printed in the paper; these tests pin
// the behaviours its lemmas guarantee plus the obvious meta-properties.

// TestDeductionInvariantUnderLHSReordering: conjunction is commutative.
func TestDeductionInvariantUnderLHSReordering(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck := paperRCKs(ctx, target, d)[0]
	md := rck.AsMD()
	perm := MD{Ctx: ctx, LHS: []Conjunct{md.LHS[2], md.LHS[0], md.LHS[1]}, RHS: md.RHS}
	a, err := Deduce(sigma, md)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deduce(sigma, perm)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("deduction must be invariant under LHS reordering")
	}
}

// TestDeductionInvariantUnderDuplicateConjuncts: idempotence of ∧.
func TestDeductionInvariantUnderDuplicateConjuncts(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck := paperRCKs(ctx, target, d)[3]
	md := rck.AsMD()
	dup := MD{Ctx: ctx, LHS: append(append([]Conjunct{}, md.LHS...), md.LHS...), RHS: md.RHS}
	a, _ := Deduce(sigma, md)
	b, err := Deduce(sigma, dup)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("duplicated conjuncts must not change deduction")
	}
}

// TestRHSSplitting: Σ ⊨m (L → Z1Z2) iff Σ ⊨m (L → Z1) and Σ ⊨m (L → Z2)
// (the normal-form equivalence used throughout Section 4).
func TestRHSSplitting(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck := paperRCKs(ctx, target, d)[1]
	md := rck.AsMD() // RHS is the 5 target pairs
	whole, err := Deduce(sigma, md)
	if err != nil {
		t.Fatal(err)
	}
	each := true
	for _, p := range md.RHS {
		ok, err := Deduce(sigma, MD{Ctx: ctx, LHS: md.LHS, RHS: []AttrPair{p}})
		if err != nil {
			t.Fatal(err)
		}
		each = each && ok
	}
	if whole != each {
		t.Errorf("RHS splitting mismatch: whole=%v each=%v", whole, each)
	}
	_ = target
}

// TestDeductionReflexivityOnLHSEqualities: L → A ⇌ B is deducible from
// the empty Σ whenever (A, B) appears in L with equality (a seed fact),
// and not when it appears with mere similarity.
func TestDeductionReflexivityOnLHSEqualities(t *testing.T) {
	ctx, _, _, d := creditBilling(t)
	lhs := []Conjunct{Eq("ln", "ln"), C("fn", d, "fn")}
	okEq, err := Deduce(nil, MD{Ctx: ctx, LHS: lhs, RHS: []AttrPair{P("ln", "ln")}})
	if err != nil {
		t.Fatal(err)
	}
	if !okEq {
		t.Error("equality conjunct must be deducible as RHS")
	}
	okSim, err := Deduce(nil, MD{Ctx: ctx, LHS: lhs, RHS: []AttrPair{P("fn", "fn")}})
	if err != nil {
		t.Fatal(err)
	}
	if okSim {
		t.Error("similarity conjunct must NOT identify the pair")
	}
}

// TestDeductionCut: if Σ ⊨m ϕ and Σ ∪ {ϕ} ⊨m ψ then Σ ⊨m ψ — deduced
// rules add no new consequences (the closure is a consequence operator).
func TestDeductionCut(t *testing.T) {
	ctx := twoSchemas(t, 6)
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		sigma, lhs := randomReasoningInput(rnd, ctx)
		phi := MD{Ctx: ctx, LHS: lhs,
			RHS: []AttrPair{P(ctx.Left.Attr(rnd.Intn(6)).Name, ctx.Right.Attr(rnd.Intn(6)).Name)}}
		okPhi, err := Deduce(sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		if !okPhi {
			continue
		}
		// ψ: random hypothesis.
		lhs2 := []Conjunct{{
			Pair: P(ctx.Left.Attr(rnd.Intn(6)).Name, ctx.Right.Attr(rnd.Intn(6)).Name),
			Op:   similarity.Eq(),
		}}
		psi := MD{Ctx: ctx, LHS: lhs2,
			RHS: []AttrPair{P(ctx.Left.Attr(rnd.Intn(6)).Name, ctx.Right.Attr(rnd.Intn(6)).Name)}}
		withPhi, err := Deduce(append(append([]MD{}, sigma...), phi), psi)
		if err != nil {
			t.Fatal(err)
		}
		without, err := Deduce(sigma, psi)
		if err != nil {
			t.Fatal(err)
		}
		if withPhi != without {
			t.Fatalf("trial %d: cut violated — adding a deduced MD changed consequences (with=%v without=%v)",
				trial, withPhi, without)
		}
	}
}

// TestOperatorIdentityMatters: two similarity operators with different
// names are distinct elements of Θ: a fact under one does not discharge
// a conjunct under the other (similarity is not transitive and operators
// are not comparable in general).
func TestOperatorIdentityMatters(t *testing.T) {
	ctx := twoSchemas(t, 3)
	la, ra := ctx.Left.Attr(0).Name, ctx.Right.Attr(0).Name
	lb, rb := ctx.Left.Attr(1).Name, ctx.Right.Attr(1).Name
	dl := similarity.DL(0.8)
	jaro := similarity.JaroOp(0.85)
	sigma := []MD{{Ctx: ctx,
		LHS: []Conjunct{C(la, dl, ra)},
		RHS: []AttrPair{P(lb, rb)}}}
	// Hypothesis supplies the pair under jaro, not dl: must not fire.
	ok, err := Deduce(sigma, MD{Ctx: ctx,
		LHS: []Conjunct{C(la, jaro, ra)},
		RHS: []AttrPair{P(lb, rb)}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("jaro fact must not discharge a dl conjunct")
	}
	// But equality discharges any operator.
	ok, err = Deduce(sigma, MD{Ctx: ctx,
		LHS: []Conjunct{Eq(la, ra)},
		RHS: []AttrPair{P(lb, rb)}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("equality must discharge the dl conjunct")
	}
	// Different thresholds of the same family are also distinct.
	dl9 := similarity.DL(0.9)
	ok, err = Deduce(sigma, MD{Ctx: ctx,
		LHS: []Conjunct{C(la, dl9, ra)},
		RHS: []AttrPair{P(lb, rb)}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dl(0.90) must not discharge a dl(0.80) conjunct (generic reasoning is threshold-agnostic)")
	}
}

// TestSelfMatchTransitiveChain: a chain A→B→C→D of self-match MDs closes
// end to end (iterated Lemma 3.3).
func TestSelfMatchTransitiveChain(t *testing.T) {
	r := schema.MustStrings("R", "A", "B", "Cc", "D", "E")
	ctx := schema.MustPair(r, r)
	mk := func(from, to string) MD {
		return MustMD(ctx, []Conjunct{Eq(from, from)}, []AttrPair{P(to, to)})
	}
	sigma := []MD{mk("A", "B"), mk("B", "Cc"), mk("Cc", "D")}
	ok, err := Deduce(sigma, mk("A", "D"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("three-step chain must close")
	}
	// E is not reachable.
	ok, err = Deduce(sigma, mk("A", "E"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("E must not be deducible")
	}
	// And the chain does not run backwards.
	ok, err = Deduce(sigma, mk("D", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("chains must not reverse")
	}
}

// TestClosureHypothesisMonotone: adding conjuncts to the hypothesis LHS
// only grows the fact set (augmentation at the closure level).
func TestClosureHypothesisMonotone(t *testing.T) {
	ctx, sigma, _, _ := creditBilling(t)
	small, err := MDClosure(ctx, sigma, []Conjunct{Eq("email", "email")})
	if err != nil {
		t.Fatal(err)
	}
	big, err := MDClosure(ctx, sigma, []Conjunct{Eq("email", "email"), Eq("tel", "phn")})
	if err != nil {
		t.Fatal(err)
	}
	if small.FactCount() > big.FactCount() {
		t.Fatal("larger hypothesis produced fewer facts")
	}
	for _, p := range small.IdentifiedPairs() {
		ok, err := big.Identified(p.Left, p.Right)
		if err != nil || !ok {
			t.Fatalf("fact %v lost under a larger hypothesis", p)
		}
	}
}
