package core

import (
	"math/rand"
	"strings"
	"testing"
)

// TestExplainRCK4 reproduces the derivation narrative of Example 3.5 /
// 4.1: hypothesis facts, ϕ2 and ϕ3 firing, then ϕ1.
func TestExplainRCK4(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck4 := paperRCKs(ctx, target, d)[3]
	exp, err := Explain(sigma, rck4.AsMD())
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Deduced {
		t.Fatal("Σc must deduce rck4")
	}
	// The derivation must contain: 2 hypothesis steps, and the firing of
	// all three MDs.
	hyp, applied := 0, map[int]bool{}
	for _, s := range exp.Steps {
		switch s.Kind {
		case StepHypothesis:
			hyp++
		case StepApplyMD:
			applied[s.MDIndex] = true
		}
	}
	if hyp != 2 {
		t.Errorf("hypothesis steps = %d, want 2 (email, tel)", hyp)
	}
	for i := 0; i < 3; i++ {
		if !applied[i] {
			t.Errorf("ϕ%d never fired in the derivation", i+1)
		}
	}
	// Render mentions the hypotheses and the conclusion.
	text := exp.Render(sigma)
	for _, want := range []string{"[hypothesis]", "[apply ϕ1", "[apply ϕ2", "[apply ϕ3", "∴ deduced"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered proof missing %q:\n%s", want, text)
		}
	}
	// String() (without Σ) also renders.
	if !strings.Contains(exp.String(), "∴ deduced") {
		t.Error("String() missing verdict")
	}
}

// TestExplainNegativeVerdict: a failed deduction renders the negative
// verdict and still lists the facts that were derivable.
func TestExplainNegativeVerdict(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	weak := MD{Ctx: ctx, LHS: []Conjunct{Eq("email", "email")}, RHS: target.Pairs()}
	exp, err := Explain(sigma, weak)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Deduced {
		t.Fatal("email alone must not deduce the full target")
	}
	if !strings.Contains(exp.Render(sigma), "∴ NOT deduced") {
		t.Error("negative verdict missing")
	}
	// ϕ3 still fires (email -> fn, ln), so the trace is non-trivial.
	fired := false
	for _, s := range exp.Steps {
		if s.Kind == StepApplyMD && s.MDIndex == 2 {
			fired = true
		}
	}
	if !fired {
		t.Error("ϕ3 should fire in the partial derivation")
	}
}

// TestExplainAgreesWithDeduce: the instrumented run must reach exactly
// the verdict of the production Deduce on random inputs.
func TestExplainAgreesWithDeduce(t *testing.T) {
	ctx := twoSchemas(t, 6)
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		sigma, lhs := randomReasoningInput(rnd, ctx)
		phi := MD{Ctx: ctx, LHS: lhs,
			RHS: []AttrPair{P(ctx.Left.Attr(rnd.Intn(6)).Name, ctx.Right.Attr(rnd.Intn(6)).Name)}}
		want, err := Deduce(sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := Explain(sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		if exp.Deduced != want {
			t.Fatalf("trial %d: Explain verdict %v, Deduce %v", trial, exp.Deduced, want)
		}
		// Every step kind must render.
		for _, s := range exp.Steps {
			if s.Kind.String() == "unknown" {
				t.Fatalf("trial %d: unknown step kind", trial)
			}
		}
	}
}

// TestExplainValidation: invalid inputs error out.
func TestExplainValidation(t *testing.T) {
	ctx, sigma, _, _ := creditBilling(t)
	if _, err := Explain(sigma, MD{Ctx: ctx}); err == nil {
		t.Error("invalid goal accepted")
	}
	valid := sigma[1]
	if _, err := Explain([]MD{{Ctx: ctx}}, valid); err == nil {
		t.Error("invalid Σ member accepted")
	}
}

// TestExplainFirstStepsAreHypotheses: the derivation starts from the
// hypothesis facts.
func TestExplainFirstStepsAreHypotheses(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	rck1 := paperRCKs(ctx, target, d)[0]
	exp, err := Explain(sigma, rck1.AsMD())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Steps) == 0 || exp.Steps[0].Kind != StepHypothesis {
		t.Fatal("derivation must start with a hypothesis step")
	}
	if exp.Steps[0].Op == "" {
		t.Fatal("steps must carry operator names")
	}
}
