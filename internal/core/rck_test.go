package core

import (
	"math"
	"testing"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	cm.resetCt()
	p := P("a", "b")
	// Default: ct=0, lt=0, ac=1 -> cost = w3/1 = 1.
	if got := cm.Cost(p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("default cost = %v, want 1", got)
	}
	cm.ct[p] = 3
	if got := cm.Cost(p); math.Abs(got-4) > 1e-12 {
		t.Fatalf("cost with ct=3 = %v, want 4", got)
	}
	cm.Lt = func(AttrPair) float64 { return 2.5 }
	cm.Ac = func(AttrPair) float64 { return 0.5 }
	// 1*3 + 1*2.5 + 1/0.5 = 7.5
	if got := cm.Cost(p); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("full cost = %v, want 7.5", got)
	}
	// Zero accuracy is guarded, not a division blow-up to Inf/NaN.
	cm.Ac = func(AttrPair) float64 { return 0 }
	if got := cm.Cost(p); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("zero-accuracy cost = %v, want finite", got)
	}
}

func TestPairing(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	s := Pairing(sigma, target)
	// Must include every target pair, every LHS pair and every RHS pair.
	for _, p := range target.Pairs() {
		if _, ok := s[p]; !ok {
			t.Errorf("pairing missing target pair %v", p)
		}
	}
	if _, ok := s[P("email", "email")]; !ok {
		t.Error("pairing missing LHS pair email|email")
	}
	if _, ok := s[P("addr", "post")]; !ok {
		t.Error("pairing missing pair addr|post")
	}
	// Exactly: 5 target pairs + {tel|phn overlaps? tel|phn IS a target
	// pair} + email|email. LHS pairs of ϕ1 are target pairs except none;
	// ln|ln, addr|post, fn|fn are all target pairs. So 5 + 1 = 6.
	if len(s) != 6 {
		t.Errorf("pairing size = %d, want 6 (%v)", len(s), s)
	}
	_ = ctx
}

func TestApply(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	phi1, phi2, phi3 := sigma[0], sigma[1], sigma[2]

	// apply(identity, ϕ1) = rck1 (remove all Y pairs, add LHS(ϕ1)).
	id := IdentityKey(ctx, target)
	got := Apply(id, phi1)
	want := paperRCKs(ctx, target, d)[0]
	if !got.Covers(want) || !want.Covers(got) {
		t.Errorf("apply(id, ϕ1) = %s, want %s", got, want)
	}

	// apply(rck1, ϕ2) = rck2.
	got = Apply(want, phi2)
	want2 := paperRCKs(ctx, target, d)[1]
	if !got.Covers(want2) || !want2.Covers(got) {
		t.Errorf("apply(rck1, ϕ2) = %s, want %s", got, want2)
	}

	// apply(rck1, ϕ3) = rck3.
	got = Apply(paperRCKs(ctx, target, d)[0], phi3)
	want3 := paperRCKs(ctx, target, d)[2]
	if !got.Covers(want3) || !want3.Covers(got) {
		t.Errorf("apply(rck1, ϕ3) = %s, want %s", got, want3)
	}

	// apply(rck3, ϕ2) = rck4.
	got = Apply(want3, phi2)
	want4 := paperRCKs(ctx, target, d)[3]
	if !got.Covers(want4) || !want4.Covers(got) {
		t.Errorf("apply(rck3, ϕ2) = %s, want %s", got, want4)
	}
}

func TestUnionConjunctSubsumption(t *testing.T) {
	d := similarity.DL(0.8)
	// Existing equality absorbs an incoming similarity conjunct.
	cs := []Conjunct{Eq("a", "b")}
	cs = unionConjunct(cs, C("a", d, "b"))
	if len(cs) != 1 || cs[0].OpName() != "=" {
		t.Fatalf("equality must absorb similarity: %v", cs)
	}
	// Incoming equality replaces an existing similarity conjunct.
	cs = []Conjunct{C("a", d, "b")}
	cs = unionConjunct(cs, Eq("a", "b"))
	if len(cs) != 1 || cs[0].OpName() != "=" {
		t.Fatalf("equality must replace similarity: %v", cs)
	}
	// Incoming equality sweeps multiple similarity conjuncts on the pair.
	j := similarity.JaroOp(0.9)
	cs = []Conjunct{C("a", d, "b"), C("x", d, "y"), C("a", j, "b")}
	cs = unionConjunct(cs, Eq("a", "b"))
	if len(cs) != 2 {
		t.Fatalf("sweep failed: %v", cs)
	}
	for _, c := range cs {
		if c.Pair == P("a", "b") && c.OpName() != "=" {
			t.Fatalf("leftover similarity conjunct: %v", cs)
		}
	}
	// Distinct similarity ops on the same pair both stay.
	cs = []Conjunct{C("a", d, "b")}
	cs = unionConjunct(cs, C("a", j, "b"))
	if len(cs) != 2 {
		t.Fatalf("distinct similarity ops must both stay: %v", cs)
	}
	// Exact duplicate dropped.
	cs = unionConjunct(cs, C("a", d, "b"))
	if len(cs) != 2 {
		t.Fatalf("duplicate not dropped: %v", cs)
	}
}

func TestMinimizeDropsRedundant(t *testing.T) {
	ctx, sigma, target, d := creditBilling(t)
	// rck1 plus junk conjuncts minimizes back to something no larger
	// than rck1 (cost model drives which redundancies go first).
	rck1 := paperRCKs(ctx, target, d)[0]
	fat := Key{Ctx: ctx, Target: target, Conjuncts: append(
		[]Conjunct{Eq("gender", "gender"), Eq("cno", "cno")}, rck1.Conjuncts...)}
	minimized, err := Minimize(fat, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if minimized.Length() > rck1.Length() {
		t.Errorf("Minimize(%s) = %s, longer than rck1", fat, minimized)
	}
	ok, err := DeduceKey(sigma, minimized)
	if err != nil || !ok {
		t.Errorf("minimized key not deducible: ok=%v err=%v", ok, err)
	}
	// Minimality: no single conjunct removable.
	for j := range minimized.Conjuncts {
		rest := append(append([]Conjunct{}, minimized.Conjuncts[:j]...), minimized.Conjuncts[j+1:]...)
		if len(rest) == 0 {
			continue
		}
		if ok, _ := DeduceKey(sigma, Key{Ctx: ctx, Target: target, Conjuncts: rest}); ok {
			t.Errorf("minimized key still reducible at conjunct %d: %s", j, minimized)
		}
	}
}

func TestMinimizeCostOrder(t *testing.T) {
	// When two conjuncts are individually redundant but not jointly, the
	// higher-cost one must be the one removed.
	ctx, sigma, target, _ := creditBilling(t)
	// addr and tel are interchangeable given ϕ2 (tel=phn -> addr⇌post):
	// {ln, fn=, addr, tel} can lose either addr or tel but not both.
	key := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		Eq("ln", "ln"), Eq("fn", "fn"), Eq("addr", "post"), Eq("tel", "phn"),
	}}
	mk := func(costlyPair AttrPair) Key {
		cm := DefaultCostModel()
		cm.resetCt()
		cm.Lt = func(p AttrPair) float64 {
			if p == costlyPair {
				return 10
			}
			return 0
		}
		got, err := Minimize(key, sigma, cm)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := mk(P("addr", "post")); got.HasConjunct(Eq("addr", "post")) || !got.HasConjunct(Eq("tel", "phn")) {
		t.Errorf("costly addr should be dropped first: %s", got)
	}
	if got := mk(P("tel", "phn")); got.HasConjunct(Eq("tel", "phn")) || !got.HasConjunct(Eq("addr", "post")) {
		t.Errorf("costly tel should be dropped first: %s", got)
	}
}

func TestCoversAndStrictOrder(t *testing.T) {
	ctx, _, target, d := creditBilling(t)
	rcks := paperRCKs(ctx, target, d)
	short := Key{Ctx: ctx, Target: target, Conjuncts: rcks[0].Conjuncts[:2]}
	if !short.Covers(rcks[0]) {
		t.Error("prefix key must cover the longer key")
	}
	if !short.StrictlyShorterThan(rcks[0]) {
		t.Error("strict order must hold for proper sub-key")
	}
	if rcks[0].Covers(short) {
		t.Error("longer key must not cover a proper sub-key")
	}
	if rcks[0].StrictlyShorterThan(rcks[0]) {
		t.Error("strict order must be irreflexive")
	}
	if !rcks[0].Covers(rcks[0]) {
		t.Error("Covers must be reflexive")
	}
	// Operator mismatch blocks coverage.
	eqVersion := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		Eq("ln", "ln"), Eq("addr", "post"), Eq("fn", "fn")}}
	if eqVersion.Covers(rcks[0]) || rcks[0].Covers(eqVersion) {
		t.Error("keys differing in operators must not cover each other")
	}
}

func TestFindRCKsValidation(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	if _, err := FindRCKs(ctx, sigma, target, 0, nil); err == nil {
		t.Error("m=0 must be rejected")
	}
	badTarget := Target{Y1: schema.AttrList{"fn"}, Y2: schema.AttrList{"fn", "ln"}}
	if _, err := FindRCKs(ctx, sigma, badTarget, 5, nil); err == nil {
		t.Error("mismatched target must be rejected")
	}
	badSigma := append(append([]MD{}, sigma...), MD{Ctx: ctx})
	if _, err := FindRCKs(ctx, badSigma, target, 5, nil); err == nil {
		t.Error("invalid Σ member must be rejected")
	}
}

func TestFindRCKsWithEmptySigma(t *testing.T) {
	ctx, _, target, _ := creditBilling(t)
	keys, err := FindRCKs(ctx, nil, target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the identity key exists (nothing to apply).
	if len(keys) != 1 {
		t.Fatalf("got %d keys, want 1", len(keys))
	}
	if keys[0].Length() != len(target.Y1) {
		t.Errorf("identity key wrong length: %s", keys[0])
	}
}

func TestFindRCKsDiversity(t *testing.T) {
	// With w1 > 0 the counters steer later keys away from reused pairs;
	// check the counters are maintained.
	ctx, sigma, target, _ := creditBilling(t)
	cm := DefaultCostModel()
	keys, err := FindRCKs(ctx, sigma, target, 10, cm)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, k := range keys {
		total += k.Length()
	}
	counted := 0
	for _, p := range []AttrPair{
		P("fn", "fn"), P("ln", "ln"), P("addr", "post"),
		P("tel", "phn"), P("gender", "gender"), P("email", "email"),
	} {
		counted += cm.Ct(p)
	}
	if counted != total {
		t.Errorf("diversity counters = %d, want total conjunct count %d", counted, total)
	}
}

func TestAllRCKs(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	keys, err := AllRCKs(ctx, sigma, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("AllRCKs found %d keys, want 5", len(keys))
	}
}

func TestIdentityKey(t *testing.T) {
	ctx, _, target, _ := creditBilling(t)
	id := IdentityKey(ctx, target)
	if id.Length() != 5 {
		t.Fatalf("identity key length = %d, want 5", id.Length())
	}
	for _, c := range id.Conjuncts {
		if c.OpName() != similarity.EqName {
			t.Errorf("identity key conjunct %v not equality", c)
		}
	}
	// The identity key is always deducible, even from empty Σ.
	ok, err := DeduceKey(nil, id)
	if err != nil || !ok {
		t.Errorf("identity key must be self-deducible: ok=%v err=%v", ok, err)
	}
}

func TestKeyString(t *testing.T) {
	ctx, _, target, d := creditBilling(t)
	k := paperRCKs(ctx, target, d)[3]
	want := "([email, tel], [email, phn] ‖ [=, =])"
	if got := k.String(); got != want {
		t.Errorf("Key.String() = %q, want %q", got, want)
	}
}
