package core

import (
	"fmt"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// Closure is the array M of algorithm MDClosure (Figure 5): an h×h×p
// boolean array where h is the total number of columns of the two
// relations and p the number of distinct similarity operators (equality
// first). M(a, b, op) = 1 means that Σ ⊨m LHS(ϕ) → R[A] ≈op R'[B]: the
// two columns are provably similar (for op "=", provably identified) in
// every stable instance reached by enforcing Σ from an instance whose
// tuples match LHS(ϕ).
//
// Columns are dense ids from schema.Pair.Col: left-relation attributes
// first, then right-relation attributes; a and b may belong to the same
// relation (intra-relation facts arise from the interaction of the
// matching operator with equality and similarity, Lemma 3.4).
type Closure struct {
	ctx     schema.Pair
	h       int
	ops     []similarity.Operator // ops[0] is equality
	opIndex map[string]int
	m       []bool // (a*h + b)*p + op
}

const eqIdx = 0

func (c *Closure) at(a, b, op int) bool { return c.m[(a*c.h+b)*len(c.ops)+op] }
func (c *Closure) set(a, b, op int)     { c.m[(a*c.h+b)*len(c.ops)+op] = true }

// Ops returns the operator universe of the closure (equality first).
func (c *Closure) Ops() []similarity.Operator { return c.ops }

// Ctx returns the schema context.
func (c *Closure) Ctx() schema.Pair { return c.ctx }

// Similar reports whether M records R[a] ≈op R'[b] (directly or via the
// subsuming equality entry). Side/attr pairs may be on any side.
func (c *Closure) Similar(sa schema.Side, a string, sb schema.Side, b string, opName string) (bool, error) {
	ca, err := c.ctx.Col(sa, a)
	if err != nil {
		return false, err
	}
	cb, err := c.ctx.Col(sb, b)
	if err != nil {
		return false, err
	}
	op, ok := c.opIndex[opName]
	if !ok {
		return false, fmt.Errorf("core: operator %q not in closure universe", opName)
	}
	if c.at(ca, cb, eqIdx) {
		return true, nil
	}
	if op == eqIdx {
		return false, nil
	}
	return c.at(ca, cb, op), nil
}

// Identified reports whether M records R1[a] ⇌ R2[b] (i.e. the equality
// entry for the cross pair is set).
func (c *Closure) Identified(a, b string) (bool, error) {
	return c.Similar(schema.Left, a, schema.Right, b, similarity.EqName)
}

// IdentifiedPairs enumerates all cross-relation attribute pairs recorded
// as identified.
func (c *Closure) IdentifiedPairs() []AttrPair {
	var out []AttrPair
	nl := c.ctx.Left.Arity()
	for i := 0; i < nl; i++ {
		for j := nl; j < c.h; j++ {
			if c.at(i, j, eqIdx) {
				_, la := c.ctx.ColRef(i)
				_, ra := c.ctx.ColRef(j)
				out = append(out, P(la, ra))
			}
		}
	}
	return out
}

// FactCount returns the number of true entries in M (counting each
// symmetric pair twice), used by tests and ablation benchmarks.
func (c *Closure) FactCount() int {
	n := 0
	for _, v := range c.m {
		if v {
			n++
		}
	}
	return n
}

// fact is a queued similarity fact for Propagate.
type fact struct{ a, b, op int }

// watcher records that conjunct conj of MD md waits on an attribute pair.
type watcher struct{ md, conj int }

// traceSource records why a fact was assigned, for Explain.
type traceSource struct {
	kind traceKind
	md   int // fired MD index, for traceMD
	via  int // pivot column, for tracePivot
}

type traceKind int

const (
	traceSeed traceKind = iota
	traceMD
	tracePivot
)

// closureRun carries the mutable state of one MDClosure execution.
type closureRun struct {
	*Closure
	sigma   []MD
	queue   []fact
	watch   map[[2]int][]watcher // keyed by (leftCol, rightCol) of LHS conjuncts
	conjOp  [][]int              // operator index per MD conjunct
	conjMet [][]bool
	unmet   []int
	applied []bool
	fires   []int // MDs whose LHS became fully matched

	// observe, when non-nil, receives every newly assigned fact together
	// with its justification (set by Explain; nil on the Deduce path).
	observe func(a, b, op int, src traceSource)
	source  traceSource
}

// MDClosure computes the closure of Σ and LHS(ϕ) (Figure 5). It returns
// the array M such that M(R[A], R'[B], ≈) = 1 iff Σ ⊨m LHS(ϕ) → R[A] ≈
// R'[B]. Σ ⊨m ϕ then holds iff M(C1, C2, =) = 1 for every RHS pair
// (C1, C2) of ϕ (checked by Deduce).
//
// The deliberate strengthening over the paper's Figure 6 (documented in
// DESIGN.md §2.1): Propagate scans equality partners of both endpoints in
// both relations, closing M under the full set of generic axioms. The
// complexity bound O(n² + h³) of Theorem 4.1 is preserved (p constant);
// the MD main loop is driven by a watch index so each MD is inspected
// O(|LHS|) times rather than O(n) times.
func MDClosure(ctx schema.Pair, sigma []MD, lhs []Conjunct) (*Closure, error) {
	// Collect the operator universe: equality plus every distinct
	// operator in Σ or LHS(ϕ).
	opIndex := map[string]int{similarity.EqName: eqIdx}
	ops := []similarity.Operator{similarity.Eq()}
	addOp := func(op similarity.Operator) {
		if op == nil {
			return
		}
		if _, ok := opIndex[op.Name()]; !ok {
			opIndex[op.Name()] = len(ops)
			ops = append(ops, op)
		}
	}
	for _, md := range sigma {
		for _, c := range md.LHS {
			addOp(c.Op)
		}
	}
	for _, c := range lhs {
		addOp(c.Op)
	}

	h := ctx.TotalColumns()
	cl := &Closure{
		ctx:     ctx,
		h:       h,
		ops:     ops,
		opIndex: opIndex,
		m:       make([]bool, h*h*len(ops)),
	}
	run := &closureRun{
		Closure: cl,
		sigma:   sigma,
		watch:   make(map[[2]int][]watcher),
		conjOp:  make([][]int, len(sigma)),
		conjMet: make([][]bool, len(sigma)),
		unmet:   make([]int, len(sigma)),
		applied: make([]bool, len(sigma)),
	}

	// Build the watch index over Σ's LHS conjuncts.
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			return nil, fmt.Errorf("core: Σ[%d]: %w", i, err)
		}
		run.conjOp[i] = make([]int, len(md.LHS))
		run.conjMet[i] = make([]bool, len(md.LHS))
		run.unmet[i] = len(md.LHS)
		for j, c := range md.LHS {
			ca, err := ctx.Col(schema.Left, c.Pair.Left)
			if err != nil {
				return nil, fmt.Errorf("core: Σ[%d]: %w", i, err)
			}
			cb, err := ctx.Col(schema.Right, c.Pair.Right)
			if err != nil {
				return nil, fmt.Errorf("core: Σ[%d]: %w", i, err)
			}
			run.conjOp[i][j] = opIndex[c.OpName()]
			run.watch[[2]int{ca, cb}] = append(run.watch[[2]int{ca, cb}], watcher{md: i, conj: j})
		}
	}

	// Lines 2-4 of Figure 5: seed M with the conjuncts of LHS(ϕ).
	for i, c := range lhs {
		if c.Op == nil {
			return nil, fmt.Errorf("core: ϕ LHS conjunct %d has nil operator", i)
		}
		ca, err := ctx.Col(schema.Left, c.Pair.Left)
		if err != nil {
			return nil, fmt.Errorf("core: ϕ LHS conjunct %d: %w", i, err)
		}
		cb, err := ctx.Col(schema.Right, c.Pair.Right)
		if err != nil {
			return nil, fmt.Errorf("core: ϕ LHS conjunct %d: %w", i, err)
		}
		if run.assign(ca, cb, opIndex[c.OpName()]) {
			run.propagate()
		}
		run.drainFires()
	}
	// Lines 5-11: apply MDs until no further change. The watch index
	// makes the repeat loop event-driven: drainFires applies every MD
	// whose LHS has become fully matched, which may enqueue more.
	run.drainFires()
	return cl, nil
}

// assign is procedure AssignVal (Figure 5): record R[A] ≈op R'[B] and its
// symmetric entry unless already subsumed; returns whether M changed.
// New facts are pushed on the propagation queue and LHS watchers are
// notified.
func (r *closureRun) assign(a, b, op int) bool {
	if r.at(a, b, eqIdx) || r.at(a, b, op) {
		return false
	}
	r.set(a, b, op)
	r.set(b, a, op)
	if r.observe != nil {
		r.observe(a, b, op, r.source)
	}
	r.queue = append(r.queue, fact{a, b, op})
	r.notify(a, b, op)
	if a != b {
		r.notify(b, a, op)
	}
	return true
}

// notify wakes LHS conjuncts waiting on the pair (a, b). A conjunct with
// operator ≈ is met by a fact with the same operator or by equality
// (which subsumes every similarity operator, line 7 of Figure 5).
func (r *closureRun) notify(a, b, op int) {
	for _, w := range r.watch[[2]int{a, b}] {
		if r.conjMet[w.md][w.conj] {
			continue
		}
		if op != eqIdx && r.conjOp[w.md][w.conj] != op {
			continue
		}
		r.conjMet[w.md][w.conj] = true
		r.unmet[w.md]--
		if r.unmet[w.md] == 0 {
			r.fires = append(r.fires, w.md)
		}
	}
}

// drainFires applies every MD whose LHS is fully matched (lines 9-11 of
// Figure 5): its RHS pairs are recorded as identified and propagated,
// which may fire further MDs.
func (r *closureRun) drainFires() {
	for len(r.fires) > 0 {
		md := r.fires[len(r.fires)-1]
		r.fires = r.fires[:len(r.fires)-1]
		if r.applied[md] {
			continue
		}
		r.applied[md] = true // line 9: Σ := Σ \ {φ}
		if r.observe != nil {
			r.source = traceSource{kind: traceMD, md: md}
		}
		for _, p := range r.sigma[md].RHS {
			ca, _ := r.ctx.Col(schema.Left, p.Left)
			cb, _ := r.ctx.Col(schema.Right, p.Right)
			if r.observe != nil {
				r.source = traceSource{kind: traceMD, md: md}
			}
			if r.assign(ca, cb, eqIdx) {
				r.propagate()
			}
		}
	}
}

// propagate is procedure Propagate (Figure 6), strengthened to scan both
// relations for both endpoints: for each popped fact x ≈ y it applies
// the generic axioms
//
//	x ≈ y ∧ x = c  ⇒  y ≈ c
//	x ≈ y ∧ y = c  ⇒  x ≈ c
//
// and, when the popped fact is an equality x = y, additionally inherits
// every similarity relation across it:
//
//	x = y ∧ x ≈d c  ⇒  y ≈d c
//	x = y ∧ y ≈d c  ⇒  x ≈d c
//
// (procedure Infer, Figure 6, both cases).
func (r *closureRun) propagate() {
	for len(r.queue) > 0 {
		f := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		p := len(r.ops)
		for c := 0; c < r.h; c++ {
			if c != f.b && r.at(f.a, c, eqIdx) {
				if r.observe != nil {
					r.source = traceSource{kind: tracePivot, via: f.a}
				}
				r.assign(f.b, c, f.op)
			}
			if c != f.a && r.at(f.b, c, eqIdx) {
				if r.observe != nil {
					r.source = traceSource{kind: tracePivot, via: f.b}
				}
				r.assign(f.a, c, f.op)
			}
			if f.op == eqIdx {
				for d := 1; d < p; d++ {
					if c != f.b && r.at(f.a, c, d) {
						if r.observe != nil {
							r.source = traceSource{kind: tracePivot, via: f.a}
						}
						r.assign(f.b, c, d)
					}
					if c != f.a && r.at(f.b, c, d) {
						if r.observe != nil {
							r.source = traceSource{kind: tracePivot, via: f.b}
						}
						r.assign(f.a, c, d)
					}
				}
			}
		}
	}
}

// Deduce decides the deduction problem (Section 3.1): whether Σ ⊨m ϕ,
// i.e. whether for every instance D and every stable instance D' for Σ,
// (D, D') ⊨ Σ implies (D, D') ⊨ ϕ. By Theorem 4.1 this holds iff every
// RHS pair of ϕ is identified in the closure of Σ and LHS(ϕ).
func Deduce(sigma []MD, phi MD) (bool, error) {
	if err := phi.Validate(); err != nil {
		return false, err
	}
	cl, err := MDClosure(phi.Ctx, sigma, phi.LHS)
	if err != nil {
		return false, err
	}
	for _, p := range phi.RHS {
		ok, err := cl.Identified(p.Left, p.Right)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// DeduceKey decides Σ ⊨m ψ for a relative key ψ.
func DeduceKey(sigma []MD, key Key) (bool, error) {
	return Deduce(sigma, key.AsMD())
}
