package core

import (
	"fmt"
	"strings"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// Explanation is a human-readable derivation of a deduction Σ ⊨m ϕ: the
// ordered list of proof steps the closure took from the hypothesis
// LHS(ϕ) to the identification of RHS(ϕ). It makes the paper's inference
// system I (Section 3.2) tangible: each step is an instance of one of
// the axiom groups — hypothesis introduction, MD application
// (transitivity, Lemma 3.3), equality propagation, or similarity
// inheritance through equality (Lemma 3.4 interactions).
type Explanation struct {
	// Steps in derivation order.
	Steps []ProofStep
	// Deduced reports whether every RHS pair of ϕ was identified.
	Deduced bool
	// Goal is the MD being derived.
	Goal MD
}

// StepKind classifies proof steps.
type StepKind int

// The step kinds, mirroring the axiom groups of the inference system.
const (
	// StepHypothesis introduces a conjunct of LHS(ϕ).
	StepHypothesis StepKind = iota
	// StepApplyMD fires an MD of Σ whose LHS is fully derived.
	StepApplyMD
	// StepPropagate applies a generic axiom: x ≈ y ∧ y = z ⟹ x ≈ z, or
	// similarity inheritance across a new equality.
	StepPropagate
)

func (k StepKind) String() string {
	switch k {
	case StepHypothesis:
		return "hypothesis"
	case StepApplyMD:
		return "apply-md"
	case StepPropagate:
		return "propagate"
	}
	return "unknown"
}

// ProofStep is one derived fact with its justification.
type ProofStep struct {
	Kind StepKind
	// Fact is the derived similarity fact.
	FactA, FactB FactRef
	Op           string
	// MD is the fired dependency for StepApplyMD steps (index into Σ).
	MDIndex int
	// Via is the pre-existing fact a propagation step pivoted on
	// (only for StepPropagate).
	Via FactRef
}

// FactRef names one column: side + attribute.
type FactRef struct {
	Side schema.Side
	Attr string
}

func (f FactRef) String() string { return fmt.Sprintf("%s[%s]", f.Side, f.Attr) }

// render formats a step against Σ.
func (s ProofStep) render(sigma []MD) string {
	fact := fmt.Sprintf("%s %s %s", s.FactA, opGlyph(s.Op), s.FactB)
	switch s.Kind {
	case StepHypothesis:
		return fmt.Sprintf("%-30s  [hypothesis]", fact)
	case StepApplyMD:
		md := "?"
		if s.MDIndex >= 0 && s.MDIndex < len(sigma) {
			md = sigma[s.MDIndex].String()
		}
		return fmt.Sprintf("%-30s  [apply ϕ%d: %s]", fact, s.MDIndex+1, md)
	case StepPropagate:
		return fmt.Sprintf("%-30s  [via %s]", fact, s.Via)
	}
	return fact
}

func opGlyph(op string) string {
	if op == similarity.EqName {
		return "⇌"
	}
	return "≈" + op
}

// String renders the whole derivation.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "goal: %s\n", e.Goal)
	for i, s := range e.Steps {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, s.render(nil))
		_ = i
	}
	if e.Deduced {
		b.WriteString("∴ deduced (Σ ⊨m ϕ)\n")
	} else {
		b.WriteString("∴ NOT deduced (Σ ⊭m ϕ)\n")
	}
	return b.String()
}

// Render renders the derivation with Σ available for MD step labels.
func (e *Explanation) Render(sigma []MD) string {
	var b strings.Builder
	fmt.Fprintf(&b, "goal: %s\n", e.Goal)
	for i, s := range e.Steps {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, s.render(sigma))
	}
	if e.Deduced {
		b.WriteString("∴ deduced (Σ ⊨m ϕ)\n")
	} else {
		b.WriteString("∴ NOT deduced (Σ ⊭m ϕ)\n")
	}
	return b.String()
}

// Explain runs the deduction of ϕ from Σ and records the derivation.
// The trace is produced by an instrumented re-run of the closure, so its
// verdict always agrees with Deduce.
func Explain(sigma []MD, phi MD) (*Explanation, error) {
	if err := phi.Validate(); err != nil {
		return nil, err
	}
	ctx := phi.Ctx
	// Instrumented closure: reuse the production algorithm but observe
	// fact assignments. We re-implement the thin driver here, delegating
	// to the same primitive operations via closureRun.
	opIndex := map[string]int{similarity.EqName: eqIdx}
	ops := []similarity.Operator{similarity.Eq()}
	addOp := func(op similarity.Operator) {
		if op == nil {
			return
		}
		if _, ok := opIndex[op.Name()]; !ok {
			opIndex[op.Name()] = len(ops)
			ops = append(ops, op)
		}
	}
	for _, md := range sigma {
		for _, c := range md.LHS {
			addOp(c.Op)
		}
	}
	for _, c := range phi.LHS {
		addOp(c.Op)
	}
	h := ctx.TotalColumns()
	cl := &Closure{ctx: ctx, h: h, ops: ops, opIndex: opIndex, m: make([]bool, h*h*len(ops))}
	run := &closureRun{
		Closure: cl,
		sigma:   sigma,
		watch:   make(map[[2]int][]watcher),
		conjOp:  make([][]int, len(sigma)),
		conjMet: make([][]bool, len(sigma)),
		unmet:   make([]int, len(sigma)),
		applied: make([]bool, len(sigma)),
	}
	exp := &Explanation{Goal: phi}
	ref := func(col int) FactRef {
		side, attr := ctx.ColRef(col)
		return FactRef{Side: side, Attr: attr}
	}
	run.observe = func(a, b, op int, source traceSource) {
		step := ProofStep{FactA: ref(a), FactB: ref(b), Op: ops[op].Name(), MDIndex: -1}
		switch source.kind {
		case traceSeed:
			step.Kind = StepHypothesis
		case traceMD:
			step.Kind = StepApplyMD
			step.MDIndex = source.md
		case tracePivot:
			step.Kind = StepPropagate
			step.Via = ref(source.via)
		}
		exp.Steps = append(exp.Steps, step)
	}
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			return nil, fmt.Errorf("core: Σ[%d]: %w", i, err)
		}
		run.conjOp[i] = make([]int, len(md.LHS))
		run.conjMet[i] = make([]bool, len(md.LHS))
		run.unmet[i] = len(md.LHS)
		for j, c := range md.LHS {
			ca, err := ctx.Col(schema.Left, c.Pair.Left)
			if err != nil {
				return nil, err
			}
			cb, err := ctx.Col(schema.Right, c.Pair.Right)
			if err != nil {
				return nil, err
			}
			run.conjOp[i][j] = opIndex[c.OpName()]
			run.watch[[2]int{ca, cb}] = append(run.watch[[2]int{ca, cb}], watcher{md: i, conj: j})
		}
	}
	for _, c := range phi.LHS {
		ca, err := ctx.Col(schema.Left, c.Pair.Left)
		if err != nil {
			return nil, err
		}
		cb, err := ctx.Col(schema.Right, c.Pair.Right)
		if err != nil {
			return nil, err
		}
		run.source = traceSource{kind: traceSeed}
		if run.assign(ca, cb, opIndex[c.OpName()]) {
			run.propagate()
		}
		run.drainFires()
	}
	run.drainFires()

	exp.Deduced = true
	for _, p := range phi.RHS {
		ok, err := cl.Identified(p.Left, p.Right)
		if err != nil {
			return nil, err
		}
		if !ok {
			exp.Deduced = false
		}
	}
	return exp, nil
}
