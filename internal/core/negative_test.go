package core

import (
	"strings"
	"testing"
)

func TestNegativeMDValidation(t *testing.T) {
	ctx, _, target, _ := creditBilling(t)
	good, err := NewNegativeMD(ctx,
		[]Conjunct{Eq("gender", "gender")}, target.Pairs())
	if err != nil {
		t.Fatalf("valid negative MD rejected: %v", err)
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNegativeMD(ctx, nil, target.Pairs()); err == nil {
		t.Error("empty LHS accepted")
	}
	if _, err := NewNegativeMD(ctx, []Conjunct{Eq("nosuch", "gender")}, target.Pairs()); err == nil {
		t.Error("bad attribute accepted")
	}
}

func TestNegativeMDConflict(t *testing.T) {
	ctx, sigma, target, _ := creditBilling(t)
	// Forbidding exactly what Σ deduces is a conflict: rck4's LHS forces
	// the identification of (Yc, Yb).
	conflicting, err := NewNegativeMD(ctx,
		[]Conjunct{Eq("email", "email"), Eq("tel", "phn")}, target.Pairs())
	if err != nil {
		t.Fatal(err)
	}
	yes, err := conflicting.ConflictsWith(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("Σc forces the identification this veto forbids; conflict expected")
	}
	// A veto on something Σ cannot force is consistent.
	consistent, err := NewNegativeMD(ctx,
		[]Conjunct{Eq("gender", "gender")}, target.Pairs())
	if err != nil {
		t.Fatal(err)
	}
	yes, err = consistent.ConflictsWith(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Error("gender alone cannot force a match; no conflict expected")
	}
	// Invalid negative MD errors out.
	bad := NegativeMD{Ctx: ctx}
	if _, err := bad.ConflictsWith(sigma); err == nil {
		t.Error("invalid negative MD accepted by ConflictsWith")
	}
}

func TestNegativeMDString(t *testing.T) {
	ctx, _, target, _ := creditBilling(t)
	n, err := NewNegativeMD(ctx, []Conjunct{Eq("gender", "gender")}, target.Pairs())
	if err != nil {
		t.Fatal(err)
	}
	s := n.String()
	if !strings.Contains(s, "<!>") || strings.Contains(s, "<=>") {
		t.Errorf("negative MD must render with <!>: %q", s)
	}
}

func TestSubsumes(t *testing.T) {
	ctx, _, target, d := creditBilling(t)
	eqKey := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		Eq("fn", "fn"), Eq("ln", "ln")}}
	simKey := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		C("fn", d, "fn"), C("ln", d, "ln")}}
	// The similarity key subsumes the equality key (equality entails
	// similarity), not vice versa.
	if !simKey.Subsumes(eqKey) {
		t.Error("similarity key must subsume the equality key")
	}
	if eqKey.Subsumes(simKey) {
		t.Error("equality key must not subsume the similarity key")
	}
	// Shorter more-general key subsumes a longer one.
	short := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{C("fn", d, "fn")}}
	if !short.Subsumes(eqKey) {
		t.Error("shorter, weaker key must subsume")
	}
	if eqKey.Subsumes(short) {
		t.Error("longer key must not subsume a shorter one")
	}
	// Disjoint attributes never subsume.
	other := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("tel", "phn")}}
	if other.Subsumes(eqKey) || eqKey.Subsumes(other) {
		t.Error("disjoint keys must not subsume each other")
	}
	// Self-subsumption holds (used for dedup).
	if !eqKey.Subsumes(eqKey) {
		t.Error("Subsumes must be reflexive")
	}
}

func TestPruneSubsumed(t *testing.T) {
	ctx, _, target, d := creditBilling(t)
	eqKey := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		Eq("fn", "fn"), Eq("ln", "ln")}}
	simKey := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{
		C("fn", d, "fn"), C("ln", d, "ln")}}
	other := Key{Ctx: ctx, Target: target, Conjuncts: []Conjunct{Eq("tel", "phn")}}

	pruned := PruneSubsumed([]Key{eqKey, simKey, other})
	if len(pruned) != 2 {
		t.Fatalf("pruned to %d keys, want 2: %v", len(pruned), pruned)
	}
	// The equality key must be the one removed; order preserved.
	if pruned[0].Conjuncts[0].OpName() != d.Name() {
		t.Errorf("survivor 0 = %s, want the similarity key", pruned[0])
	}
	if pruned[1].Length() != 1 {
		t.Errorf("survivor 1 = %s, want the tel key", pruned[1])
	}
	// Duplicate keys collapse to one (earlier wins).
	dups := PruneSubsumed([]Key{other, other, other})
	if len(dups) != 1 {
		t.Fatalf("duplicates pruned to %d, want 1", len(dups))
	}
	// Empty and singleton inputs pass through.
	if got := PruneSubsumed(nil); len(got) != 0 {
		t.Error("nil input must prune to empty")
	}
	if got := PruneSubsumed([]Key{eqKey}); len(got) != 1 {
		t.Error("singleton must survive")
	}
}
