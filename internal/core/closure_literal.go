package core

import (
	"fmt"

	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// MDClosureLiteral is a direct transliteration of Figures 5 and 6 of the
// paper, kept as the reference implementation for cross-validation tests
// and the ablation benchmarks (DESIGN.md §5):
//
//   - the main loop is the literal "repeat until no further changes; for
//     each MD φ in Σ" scan (lines 5-11), not the watch-indexed
//     event-driven loop of MDClosure;
//   - Propagate handles exactly the three relation-combination cases of
//     Figure 6, and Infer scans exactly the columns the paper's
//     pseudocode scans.
//
// MDClosure (the production implementation) strengthens Propagate to
// scan equality partners of both endpoints in both relations; its fact
// set is always a superset of this one (asserted by
// TestLiteralClosureSubset), and on every rule set arising from
// cross-relation matching the deduction verdicts coincide.
func MDClosureLiteral(ctx schema.Pair, sigma []MD, lhs []Conjunct) (*Closure, error) {
	opIndex := map[string]int{similarity.EqName: eqIdx}
	ops := []similarity.Operator{similarity.Eq()}
	addOp := func(op similarity.Operator) {
		if op == nil {
			return
		}
		if _, ok := opIndex[op.Name()]; !ok {
			opIndex[op.Name()] = len(ops)
			ops = append(ops, op)
		}
	}
	for _, md := range sigma {
		for _, c := range md.LHS {
			addOp(c.Op)
		}
	}
	for _, c := range lhs {
		addOp(c.Op)
	}
	h := ctx.TotalColumns()
	cl := &Closure{ctx: ctx, h: h, ops: ops, opIndex: opIndex, m: make([]bool, h*h*len(ops))}
	run := &literalRun{Closure: cl, nl: ctx.Left.Arity()}

	col := func(s schema.Side, attr string) (int, error) { return ctx.Col(s, attr) }

	// Lines 2-4: seed with LHS(ϕ).
	for i, c := range lhs {
		if c.Op == nil {
			return nil, fmt.Errorf("core: ϕ LHS conjunct %d has nil operator", i)
		}
		a, err := col(schema.Left, c.Pair.Left)
		if err != nil {
			return nil, err
		}
		b, err := col(schema.Right, c.Pair.Right)
		if err != nil {
			return nil, err
		}
		if run.assignVal(a, b, opIndex[c.OpName()]) {
			run.propagate(a, b, opIndex[c.OpName()])
		}
	}

	// Lines 5-11: repeat until no further changes.
	remaining := make([]MD, len(sigma))
	copy(remaining, sigma)
	for i, md := range remaining {
		if err := md.Validate(); err != nil {
			return nil, fmt.Errorf("core: Σ[%d]: %w", i, err)
		}
	}
	for {
		changed := false
		for i := 0; i < len(remaining); i++ {
			md := remaining[i]
			matched := true
			for _, c := range md.LHS {
				a, _ := col(schema.Left, c.Pair.Left)
				b, _ := col(schema.Right, c.Pair.Right)
				if !cl.at(a, b, eqIdx) && !cl.at(a, b, opIndex[c.OpName()]) {
					matched = false
					break
				}
			}
			if !matched {
				continue // line 8
			}
			// Line 9: Σ := Σ \ {φ}.
			remaining = append(remaining[:i], remaining[i+1:]...)
			i--
			for _, p := range md.RHS {
				a, _ := col(schema.Left, p.Left)
				b, _ := col(schema.Right, p.Right)
				if run.assignVal(a, b, eqIdx) {
					run.propagate(a, b, eqIdx)
				}
			}
			changed = true
		}
		if !changed {
			break
		}
	}
	return cl, nil
}

type literalRun struct {
	*Closure
	nl    int // left arity: columns < nl are R1's
	queue []fact
}

func (r *literalRun) isLeft(col int) bool { return col < r.nl }

// assignVal is procedure AssignVal, verbatim.
func (r *literalRun) assignVal(a, b, op int) bool {
	if r.at(a, b, eqIdx) || r.at(a, b, op) {
		return false
	}
	r.set(a, b, op)
	r.set(b, a, op)
	return true
}

// propagate is procedure Propagate with the three cases of Figure 6.
func (r *literalRun) propagate(a, b, op int) {
	r.queue = append(r.queue, fact{a, b, op})
	for len(r.queue) > 0 {
		f := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		switch {
		case r.isLeft(f.a) && !r.isLeft(f.b): // case (1): R = R1, R' = R2
			r.infer(f.b, f.a, schema.Left, f.op)
			r.infer(f.a, f.b, schema.Right, f.op)
		case !r.isLeft(f.a) && r.isLeft(f.b): // symmetric orientation
			r.infer(f.a, f.b, schema.Left, f.op)
			r.infer(f.b, f.a, schema.Right, f.op)
		case r.isLeft(f.a) && r.isLeft(f.b): // case (2): R = R' = R1
			r.infer(f.a, f.b, schema.Right, f.op)
			r.infer(f.b, f.a, schema.Right, f.op)
		default: // case (3): R = R' = R2
			r.infer(f.a, f.b, schema.Left, f.op)
			r.infer(f.b, f.a, schema.Left, f.op)
		}
	}
}

// infer is procedure Infer: for each attribute C of R”, if
// M(a, R”[C], =) then b ≈op R”[C]; and when op is equality, inherit
// every similarity relation of a onto b.
func (r *literalRun) infer(a, b int, side schema.Side, op int) {
	lo, hi := 0, r.nl
	if side == schema.Right {
		lo, hi = r.nl, r.h
	}
	for c := lo; c < hi; c++ {
		if r.at(a, c, eqIdx) {
			if r.assignVal(b, c, op) {
				r.queue = append(r.queue, fact{b, c, op})
			}
		}
		if op == eqIdx {
			for d := 1; d < len(r.ops); d++ {
				if r.at(a, c, d) && r.assignVal(b, c, d) {
					r.queue = append(r.queue, fact{b, c, d})
				}
			}
		}
	}
}

// DeduceLiteral is Deduce on top of MDClosureLiteral, for ablation.
func DeduceLiteral(sigma []MD, phi MD) (bool, error) {
	if err := phi.Validate(); err != nil {
		return false, err
	}
	cl, err := MDClosureLiteral(phi.Ctx, sigma, phi.LHS)
	if err != nil {
		return false, err
	}
	for _, p := range phi.RHS {
		ok, err := cl.Identified(p.Left, p.Right)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
