package similarity

import (
	"fmt"
	"math/rand"
	"testing"
)

// unfilteredDL is the pre-filter reference verdict: the full scorer
// with no length filter, band or early exit.
func unfilteredDL(theta float64, a, b string) bool {
	if a == b {
		return true
	}
	return NormalizedDL(a, b) >= theta
}

func unfilteredLev(theta float64, a, b string) bool {
	if a == b {
		return true
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1 >= theta
	}
	return 1-float64(Levenshtein(a, b))/float64(m) >= theta
}

// randomValue draws strings of wildly varying lengths over a small
// alphabet so that near-threshold distances, length-filter rejections
// and band-edge cases all occur.
func randomValue(rng *rand.Rand) string {
	n := rng.Intn(24)
	buf := make([]rune, n)
	alphabet := []rune("abcdeé 0123")
	for i := range buf {
		buf[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(buf)
}

// mutate returns a small edit of s, biasing the sample toward pairs
// near the decision boundary.
func mutate(rng *rand.Rand, s string) string {
	rs := []rune(s)
	edits := rng.Intn(4)
	for e := 0; e < edits; e++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(rs) > 0: // delete
			i := rng.Intn(len(rs))
			rs = append(rs[:i], rs[i+1:]...)
		case op == 1: // insert
			i := rng.Intn(len(rs) + 1)
			rs = append(rs[:i], append([]rune{'x'}, rs[i:]...)...)
		case op == 2 && len(rs) > 1: // transpose
			i := rng.Intn(len(rs) - 1)
			rs[i], rs[i+1] = rs[i+1], rs[i]
		}
	}
	return string(rs)
}

// TestEditOpMatchesUnfilteredScorer drives the filtered banded
// evaluator against the unfiltered scorer on random and
// boundary-biased string pairs across several thresholds: the length
// filter, the band and the early exit must never flip a verdict.
func TestEditOpMatchesUnfilteredScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	thetas := []float64{0, 0.3, 0.5, 0.8, 0.9, 1.0}
	for _, theta := range thetas {
		dl := DL(theta)
		lev := Lev(theta)
		for i := 0; i < 4000; i++ {
			a := randomValue(rng)
			var b string
			if i%2 == 0 {
				b = randomValue(rng)
			} else {
				b = mutate(rng, a)
			}
			if got, want := dl.Similar(a, b), unfilteredDL(theta, a, b); got != want {
				t.Fatalf("dl(%.2f).Similar(%q, %q) = %v, unfiltered scorer says %v", theta, a, b, want, got)
			}
			if got, want := lev.Similar(a, b), unfilteredLev(theta, a, b); got != want {
				t.Fatalf("lev(%.2f).Similar(%q, %q) = %v, unfiltered scorer says %v", theta, a, b, got, want)
			}
		}
	}
}

// TestEditOpLengthFilter pins the filter itself: a length gap beyond
// (1−θ)·max must reject, and SimilarRunes must agree with Similar.
func TestEditOpLengthFilter(t *testing.T) {
	dl := DL(0.8).(editOp)
	if dl.Similar("ab", "abcdefgh") {
		t.Fatal("dl(0.80) accepted a pair with length gap 6 of max 8")
	}
	if !dl.Similar("abcdefghij", "abcdefgh") {
		t.Fatal("dl(0.80) rejected a 2-deletion pair of max length 10")
	}
	pairs := [][2]string{{"", ""}, {"", "abc"}, {"kitten", "sitting"}, {"abcd", "abdc"}}
	for _, p := range pairs {
		if got, want := dl.SimilarRunes([]rune(p[0]), []rune(p[1])), dl.Similar(p[0], p[1]); got != want {
			t.Fatalf("SimilarRunes(%q, %q) = %v, Similar = %v", p[0], p[1], got, want)
		}
	}
}

// TestEditOpExtremeThetas covers thresholds outside (0, 1): θ > 1
// accepts only equal values, θ ≤ 0 accepts everything.
func TestEditOpExtremeThetas(t *testing.T) {
	hi := DL(1.5)
	if !hi.Similar("x", "x") {
		t.Fatal("dl(1.50) must stay reflexive")
	}
	if hi.Similar("x", "y") {
		t.Fatal("dl(1.50) accepted unequal values")
	}
	lo := DL(-1)
	if !lo.Similar("abc", "zzzzzzzz") {
		t.Fatal("dl(-1.00) rejected a pair")
	}
}

func BenchmarkEditOpSimilar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	as := make([]string, n)
	bs := make([]string, n)
	for i := range as {
		as[i] = randomValue(rng)
		bs[i] = mutate(rng, as[i])
	}
	for _, theta := range []float64{0.8} {
		dl := DL(theta)
		b.Run(fmt.Sprintf("dl_%.2f", theta), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dl.Similar(as[i%n], bs[i%n])
			}
		})
	}
}
