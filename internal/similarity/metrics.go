// Package similarity implements the domain-specific similarity metrics
// and the operator set Θ of Section 2.1.
//
// Every operator satisfies the paper's generic axioms:
//
//   - reflexive:          x ≈ x
//   - symmetric:          x ≈ y ⇒ y ≈ x
//   - subsumes equality:  x = y ⇒ x ≈ y
//
// and, except for equality itself, is NOT assumed transitive. The package
// provides both the raw metric functions (edit distances, Jaro family,
// q-gram coefficients, phonetic codes) and thresholded Operator values
// suitable for use in matching dependencies.
package similarity

import (
	"math"
	"strings"
	"unicode"
)

// Levenshtein returns the classic edit distance between a and b: the
// minimum number of single-rune insertions, deletions and substitutions
// needed to transform a into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// DamerauLevenshtein returns the Damerau–Levenshtein distance between a
// and b in its optimal-string-alignment form: Levenshtein extended with
// transposition of two adjacent runes, where no substring is edited more
// than once. This is the DL metric of Section 6.2 ("the minimum number of
// single-character insertions, deletions and substitutions required to
// transform v to v′", extended with adjacent transpositions as in the
// SimMetrics implementation the paper uses).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rows: i-2, i-1, i.
	d0 := make([]int, lb+1)
	d1 := make([]int, lb+1)
	d2 := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		d1[j] = j
	}
	for i := 1; i <= la; i++ {
		d2[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d2[j] = minInt(d1[j]+1, d2[j-1]+1, d1[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d0[j-2] + 1; t < d2[j] {
					d2[j] = t
				}
			}
		}
		d0, d1, d2 = d1, d2, d0
	}
	return d1[lb]
}

// NormalizedDL returns 1 - dl(a,b)/max(|a|,|b|), a similarity score in
// [0,1]; 1 means equal. Empty-vs-empty is defined as 1.
func NormalizedDL(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(DamerauLevenshtein(a, b))/float64(m)
}

// Jaro returns the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	amatch := make([]bool, la)
	bmatch := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !bmatch[j] && ra[i] == rb[j] {
				amatch[i] = true
				bmatch[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	k := 0
	for i := 0; i < la; i++ {
		if !amatch[i] {
			continue
		}
		for !bmatch[k] {
			k++
		}
		if ra[i] != rb[k] {
			transpositions++
		}
		k++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity with the standard
// prefix scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGrams returns the multiset of q-grams of s as a count map. For q > 1
// the string is padded with q-1 leading and trailing '#' marks so that
// boundary characters contribute. An empty string has no q-grams.
func QGrams(s string, q int) map[string]int {
	grams := make(map[string]int)
	if s == "" || q <= 0 {
		return grams
	}
	if q == 1 {
		for _, r := range s {
			grams[string(r)]++
		}
		return grams
	}
	pad := strings.Repeat("#", q-1)
	rs := []rune(pad + s + pad)
	for i := 0; i+q <= len(rs); i++ {
		grams[string(rs[i:i+q])]++
	}
	return grams
}

// JaccardQGram returns the Jaccard coefficient of the q-gram multisets of
// a and b: |A ∩ B| / |A ∪ B| with multiset semantics. Two empty strings
// score 1.
func JaccardQGram(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter, union := 0, 0
	for g, ca := range ga {
		cb := gb[g]
		inter += minInt2(ca, cb)
		union += maxInt(ca, cb)
	}
	for g, cb := range gb {
		if _, seen := ga[g]; !seen {
			union += cb
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// DiceQGram returns the Dice coefficient 2|A ∩ B| / (|A| + |B|) over
// q-gram multisets. Two empty strings score 1.
func DiceQGram(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	ta, tb := 0, 0
	for _, c := range ga {
		ta += c
	}
	for _, c := range gb {
		tb += c
	}
	if ta+tb == 0 {
		return 1
	}
	inter := 0
	for g, ca := range ga {
		inter += minInt2(ca, gb[g])
	}
	return 2 * float64(inter) / float64(ta+tb)
}

// CosineQGram returns the cosine similarity of the q-gram count vectors.
// Two empty strings score 1.
func CosineQGram(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	dot, na, nb := 0, 0, 0
	for g, ca := range ga {
		na += ca * ca
		dot += ca * gb[g]
	}
	for _, cb := range gb {
		nb += cb * cb
	}
	return float64(dot) / (sqrtFloat(float64(na)) * sqrtFloat(float64(nb)))
}

// TokenJaccard returns the Jaccard coefficient over whitespace-separated,
// case-folded tokens. Useful for multi-word fields such as addresses.
func TokenJaccard(a, b string) float64 {
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	for t := range ta {
		if _, ok := tb[t]; ok {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, f := range strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}) {
		out[f] = struct{}{}
	}
	return out
}

// Soundex returns the American Soundex code (letter + 3 digits) of s, the
// encoding used for blocking keys in Exp-4 of the paper ("encoded by
// Sounex before blocking"). Non-letters are skipped; an input with no
// letters encodes as "0000".
func Soundex(s string) string {
	code := func(r rune) byte {
		switch r {
		case 'b', 'f', 'p', 'v':
			return '1'
		case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
			return '2'
		case 'd', 't':
			return '3'
		case 'l':
			return '4'
		case 'm', 'n':
			return '5'
		case 'r':
			return '6'
		default: // vowels, h, w, y
			return 0
		}
	}
	var out []byte
	var prev byte
	first := rune(0)
	for _, r := range strings.ToLower(s) {
		if r < 'a' || r > 'z' {
			continue
		}
		c := code(r)
		if first == 0 {
			first = unicode.ToUpper(r)
			prev = c
			continue
		}
		// 'h' and 'w' are transparent: they do not reset the previous code.
		if r == 'h' || r == 'w' {
			continue
		}
		if c != 0 && c != prev {
			out = append(out, c)
			if len(out) == 3 {
				break
			}
		}
		prev = c
	}
	if first == 0 {
		return "0000"
	}
	for len(out) < 3 {
		out = append(out, '0')
	}
	return string(first) + string(out)
}

// NYSIIS returns the NYSIIS phonetic code of s (a more accurate phonetic
// encoder than Soundex, offered as an alternative blocking encoder).
func NYSIIS(s string) string {
	var letters []rune
	for _, r := range strings.ToUpper(s) {
		if r >= 'A' && r <= 'Z' {
			letters = append(letters, r)
		}
	}
	if len(letters) == 0 {
		return ""
	}
	w := string(letters)
	// Initial-prefix substitutions.
	for _, sub := range [][2]string{
		{"MAC", "MCC"}, {"KN", "NN"}, {"K", "C"}, {"PH", "FF"}, {"PF", "FF"}, {"SCH", "SSS"},
	} {
		if strings.HasPrefix(w, sub[0]) {
			w = sub[1] + w[len(sub[0]):]
			break
		}
	}
	// Terminal substitutions.
	for _, sub := range [][2]string{
		{"EE", "Y"}, {"IE", "Y"}, {"DT", "D"}, {"RT", "D"}, {"RD", "D"}, {"NT", "D"}, {"ND", "D"},
	} {
		if strings.HasSuffix(w, sub[0]) {
			w = w[:len(w)-len(sub[0])] + sub[1]
			break
		}
	}
	rs := []rune(w)
	key := []rune{rs[0]}
	isVowel := func(r rune) bool { return strings.ContainsRune("AEIOU", r) }
	for i := 1; i < len(rs); i++ {
		c := rs[i]
		switch {
		case isVowel(c):
			if c == 'E' && i+1 < len(rs) && rs[i+1] == 'V' {
				rs[i+1] = 'F'
			}
			c = 'A'
		case c == 'Q':
			c = 'G'
		case c == 'Z':
			c = 'S'
		case c == 'M':
			c = 'N'
		case c == 'K':
			if i+1 < len(rs) && rs[i+1] == 'N' {
				c = 'N'
			} else {
				c = 'C'
			}
		case c == 'S' && i+2 < len(rs) && rs[i+1] == 'C' && rs[i+2] == 'H':
			rs[i+1], rs[i+2] = 'S', 'S'
		case c == 'P' && i+1 < len(rs) && rs[i+1] == 'H':
			c = 'F'
			rs[i+1] = 'F'
		case c == 'H':
			if !isVowel(rs[i-1]) || (i+1 < len(rs) && !isVowel(rs[i+1])) {
				c = rs[i-1]
			}
		case c == 'W':
			if isVowel(rs[i-1]) {
				c = rs[i-1]
			}
		}
		rs[i] = c
		if key[len(key)-1] != c {
			key = append(key, c)
		}
	}
	// Trim terminal S, transform terminal AY to Y, trim terminal A.
	for len(key) > 1 && key[len(key)-1] == 'S' {
		key = key[:len(key)-1]
	}
	if len(key) >= 2 && key[len(key)-2] == 'A' && key[len(key)-1] == 'Y' {
		key = append(key[:len(key)-2], 'Y')
	}
	for len(key) > 1 && key[len(key)-1] == 'A' {
		key = key[:len(key)-1]
	}
	return string(key)
}

func minInt(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sqrtFloat(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
