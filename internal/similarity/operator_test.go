package similarity

import (
	"testing"
	"testing/quick"
)

// allOps returns one instance of every operator family for axiom checks.
func allOps() []Operator {
	return []Operator{
		Eq(),
		DL(0.8),
		Lev(0.8),
		JaroOp(0.85),
		JaroWinklerOp(0.9),
		JaccardOp(2, 0.7),
		DiceOp(2, 0.7),
		CosineOp(2, 0.7),
		TokenOp(0.6),
		SoundexEq(),
		PrefixOp(3),
		SynonymOp(Eq(), map[string]string{"usa": "united states"}),
	}
}

// TestGenericAxioms checks the three generic axioms of Section 2.1 for
// every operator: reflexivity, symmetry, and subsumption of equality.
func TestGenericAxioms(t *testing.T) {
	for _, op := range allOps() {
		op := op
		t.Run(op.Name(), func(t *testing.T) {
			reflexive := func(x string) bool { return op.Similar(x, x) }
			if err := quick.Check(reflexive, nil); err != nil {
				t.Errorf("not reflexive: %v", err)
			}
			symmetric := func(x, y string) bool { return op.Similar(x, y) == op.Similar(y, x) }
			if err := quick.Check(symmetric, nil); err != nil {
				t.Errorf("not symmetric: %v", err)
			}
			subsumes := func(x string) bool {
				y := x // x = y
				return op.Similar(x, y)
			}
			if err := quick.Check(subsumes, nil); err != nil {
				t.Errorf("does not subsume equality: %v", err)
			}
		})
	}
}

func TestEqTransitive(t *testing.T) {
	// Equality is the one transitive operator; sanity-check via strings.
	e := Eq()
	if !e.Similar("a", "a") || e.Similar("a", "b") {
		t.Fatal("equality operator broken")
	}
	if !IsEq(e) || IsEq(DL(0.8)) || IsEq(nil) {
		t.Fatal("IsEq broken")
	}
}

func TestDLOperatorPaperExamples(t *testing.T) {
	// Section 6.2: v ~θ v' iff dl distance <= (1-θ)% of max length, θ=0.8.
	d := DL(0.8)
	// "Mark" vs "Marx": distance 1, max len 4, 1 <= 0.2*4 = 0.8? No! 1 > 0.8.
	// The paper's Example 2.1 uses a *certain* edit metric ≈d under which
	// Mark ~ Marx; with θ=0.8 and 4-char strings one edit is just over.
	// Verify the arithmetic both ways to pin the thresholding rule.
	if d.Similar("Mark", "Marx") {
		t.Error("dl(0.8): 1 edit over 4 chars is 0.75 < 0.8, must NOT be similar")
	}
	d75 := DL(0.75)
	if !d75.Similar("Mark", "Marx") {
		t.Error("dl(0.75): Mark ~ Marx must hold")
	}
	if !d.Similar("Clifford", "Cliffort") {
		t.Error("dl(0.8): 1 edit over 8 chars is 0.875, must be similar")
	}
	if d.Similar("abc", "xyz") {
		t.Error("dl(0.8): disjoint strings must not be similar")
	}
}

func TestOperatorNamesCanonical(t *testing.T) {
	if DL(0.8).Name() != "dl(0.80)" {
		t.Errorf("DL name = %q", DL(0.8).Name())
	}
	if JaccardOp(3, 0.7).Name() != "jaccard3(0.70)" {
		t.Errorf("Jaccard name = %q", JaccardOp(3, 0.7).Name())
	}
	if Eq().Name() != "=" {
		t.Errorf("Eq name = %q", Eq().Name())
	}
}

func TestPrefixOp(t *testing.T) {
	p := PrefixOp(3)
	if !p.Similar("Jonathan", "Jonas") {
		t.Error("3-prefix shared must be similar")
	}
	if p.Similar("Jo", "Jon") {
		t.Error("2-rune common prefix must not satisfy prefix(3)")
	}
	if !p.Similar("ab", "ab") {
		t.Error("equal short strings must be similar (equality subsumption)")
	}
}

func TestSynonymOp(t *testing.T) {
	op := SynonymOp(Eq(), map[string]string{
		"USA":           "united states",
		"U.S.A.":        "united states",
		"United States": "united states",
	})
	if !op.Similar("USA", "United States") {
		t.Error("synonyms must match")
	}
	if !op.Similar("usa", "UNITED STATES") {
		t.Error("synonym matching must be case-insensitive")
	}
	if op.Similar("USA", "Canada") {
		t.Error("non-synonyms must not match")
	}
	// Chained table: a -> b -> c resolves to the same canonical form.
	chain := SynonymOp(Eq(), map[string]string{"a": "b", "b": "c"})
	if !chain.Similar("a", "c") {
		t.Error("chained synonyms must resolve")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(DL(0.8))
	if _, ok := r.Lookup("="); !ok {
		t.Fatal("equality must always be registered")
	}
	if _, ok := r.Lookup("dl(0.80)"); !ok {
		t.Fatal("registered operator not found")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "=" {
		t.Fatalf("Names = %v", names)
	}
	r.Register(JaroOp(0.85))
	if r.Len() != 3 {
		t.Fatalf("Len after register = %d, want 3", r.Len())
	}
}

func TestRegistryResolve(t *testing.T) {
	r := DefaultRegistry()
	// Exact canonical name.
	op, err := r.Resolve("dl(0.80)")
	if err != nil || op.Name() != "dl(0.80)" {
		t.Fatalf("Resolve(dl(0.80)) = %v, %v", op, err)
	}
	// Non-canonical spelling resolves to same canonical operator.
	op2, err := r.Resolve("dl(0.8)")
	if err != nil || op2.Name() != "dl(0.80)" {
		t.Fatalf("Resolve(dl(0.8)) = %v, %v", op2, err)
	}
	// Default threshold when omitted.
	op3, err := r.Resolve("jaro")
	if err != nil || op3.Name() != "jaro(0.85)" {
		t.Fatalf("Resolve(jaro) = %v, %v", op3, err)
	}
	// New operator families get constructed and registered.
	op4, err := r.Resolve("jaccard3(0.50)")
	if err != nil || op4.Name() != "jaccard3(0.50)" {
		t.Fatalf("Resolve(jaccard3(0.50)) = %v, %v", op4, err)
	}
	if _, ok := r.Lookup("jaccard3(0.50)"); !ok {
		t.Fatal("resolved operator was not registered")
	}
	// Equality resolves.
	if op, err := r.Resolve("="); err != nil || !IsEq(op) {
		t.Fatalf("Resolve(=) = %v, %v", op, err)
	}
	// Errors.
	for _, bad := range []string{"", "unknown", "dl(x)", "dl(0.8", "jaccard0(0.5)", "jaccardx(0.5)"} {
		if _, err := r.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) succeeded, want error", bad)
		}
	}
}

func TestResolveSharesIdentity(t *testing.T) {
	r := NewRegistry()
	a, err := r.Resolve("lev(0.9)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Resolve("lev(0.90)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != b.Name() {
		t.Fatalf("same operator resolved under different names: %q vs %q", a.Name(), b.Name())
	}
}
