package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"Mark", "Marx", 1},
		{"ca", "abc", 3}, // classic case where DL(OSA) differs from unrestricted DL
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"abc", "acb", 1}, // one transposition
		{"abcd", "acbd", 1},
		{"ab", "ba", 1},
		{"abc", "abc", 0},
		{"Mark", "Marx", 1},
		{"Clifford", "Clivord", 2}, // f->v substitution plus f deletion
		{"ca", "abc", 3},           // OSA: no substring edited twice
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDLNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceProperties(t *testing.T) {
	// Symmetry, identity, and the length lower/upper bounds.
	f := func(a, b string) bool {
		d := DamerauLevenshtein(a, b)
		if d != DamerauLevenshtein(b, a) {
			return false
		}
		la, lb := len([]rune(a)), len([]rune(b))
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		hi := la
		if lb > hi {
			hi = lb
		}
		return d >= lo && d <= hi && (a != b || d == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedDL(t *testing.T) {
	if got := NormalizedDL("", ""); got != 1 {
		t.Errorf("NormalizedDL empty = %v, want 1", got)
	}
	if got := NormalizedDL("abcd", "abcd"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := NormalizedDL("abcd", "wxyz"); got != 0 {
		t.Errorf("disjoint same-length = %v, want 0", got)
	}
	// paper example: Mark vs Marx, 1 edit over 4 chars -> 0.75
	if got := NormalizedDL("Mark", "Marx"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Mark/Marx = %v, want 0.75", got)
	}
}

func TestJaro(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Jaro(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961111},
		{"dixon", "dicksonx", 0.813333},
		{"abc", "abc", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("JaroWinkler(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroRange(t *testing.T) {
	f := func(a, b string) bool {
		j := Jaro(a, b)
		jw := JaroWinkler(a, b)
		return j >= 0 && j <= 1 && jw >= j-1e-12 && jw <= 1+1e-12 &&
			math.Abs(j-Jaro(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("abab", 2)
	// padded: #abab# -> #a ab ba ab b#
	want := map[string]int{"#a": 1, "ab": 2, "ba": 1, "b#": 1}
	if len(g) != len(want) {
		t.Fatalf("QGrams = %v, want %v", g, want)
	}
	for k, v := range want {
		if g[k] != v {
			t.Fatalf("QGrams[%q] = %d, want %d", k, g[k], v)
		}
	}
	if len(QGrams("", 2)) != 0 {
		t.Fatal("empty string must have no q-grams")
	}
	if len(QGrams("ab", 0)) != 0 {
		t.Fatal("q<=0 must yield no q-grams")
	}
	u := QGrams("aab", 1)
	if u["a"] != 2 || u["b"] != 1 {
		t.Fatalf("unigram counts wrong: %v", u)
	}
}

func TestSetCoefficients(t *testing.T) {
	for _, fn := range []struct {
		name string
		f    func(a, b string) float64
	}{
		{"jaccard", func(a, b string) float64 { return JaccardQGram(a, b, 2) }},
		{"dice", func(a, b string) float64 { return DiceQGram(a, b, 2) }},
		{"cosine", func(a, b string) float64 { return CosineQGram(a, b, 2) }},
		{"token", TokenJaccard},
	} {
		if got := fn.f("", ""); got != 1 {
			t.Errorf("%s(empty, empty) = %v, want 1", fn.name, got)
		}
		if got := fn.f("night", "night"); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s(x, x) = %v, want 1", fn.name, got)
		}
		if got := fn.f("abc", ""); got != 0 {
			t.Errorf("%s(abc, empty) = %v, want 0", fn.name, got)
		}
		a, b := fn.f("night day", "nacht day"), fn.f("nacht day", "night day")
		if a != b {
			t.Errorf("%s not symmetric: %v vs %v", fn.name, a, b)
		}
		if a <= 0 || a >= 1 {
			t.Errorf("%s(night day, nacht day) = %v, want in (0,1)", fn.name, a)
		}
	}
}

func TestTokenJaccard(t *testing.T) {
	got := TokenJaccard("10 Oak Street, MH, NJ 07974", "10 Oak Street MH NJ 07974")
	if got != 1 {
		t.Errorf("punctuation-insensitive token jaccard = %v, want 1", got)
	}
	got = TokenJaccard("10 Oak Street", "Oak Street")
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("token jaccard = %v, want 2/3", got)
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // h is transparent
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", "0000"},
		{"123", "0000"},
		{"Clifford", "C416"},
		{"Clivord", "C416"}, // paper: Clifford ~ Clivord should block together
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexCaseInsensitive(t *testing.T) {
	f := func(s string) bool { return Soundex(s) == Soundex("  "+s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Soundex("ROBERT") != Soundex("robert") {
		t.Error("Soundex must be case-insensitive")
	}
}

func TestNYSIIS(t *testing.T) {
	// NYSIIS has many published variants; we pin the behaviour of ours on
	// a few stable examples and structural properties.
	cases := []struct{ in, want string }{
		{"", ""},
		{"KNIGHT", "NAGT"},
		{"MACINTOSH", "MCANT"},
	}
	for _, c := range cases {
		if got := NYSIIS(c.in); got != c.want {
			t.Errorf("NYSIIS(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if NYSIIS("Smith") != NYSIIS("SMITH") {
		t.Error("NYSIIS must be case-insensitive")
	}
	if NYSIIS("Phillips") != NYSIIS("Filips") {
		t.Errorf("NYSIIS should conflate PH/F names: %q vs %q", NYSIIS("Phillips"), NYSIIS("Filips"))
	}
}
