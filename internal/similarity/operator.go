package similarity

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Operator is a similarity operator ≈ from the set Θ of Section 2.1.
// Operators are identified by Name(); the reasoning algorithms treat two
// operators with the same name as the same element of Θ.
//
// Implementations must satisfy the generic axioms: Similar(x, x) is true,
// Similar(x, y) == Similar(y, x), and x == y implies Similar(x, y).
type Operator interface {
	// Name is the canonical identifier, e.g. "=", "dl(0.80)", "jaro(0.85)".
	Name() string
	// Similar reports whether the two values are close enough.
	Similar(a, b string) bool
}

// EqName is the canonical name of the equality operator.
const EqName = "="

// eqOp is the equality relation =, the only transitive member of Θ.
type eqOp struct{}

func (eqOp) Name() string             { return EqName }
func (eqOp) Similar(a, b string) bool { return a == b }

// Eq returns the equality operator.
func Eq() Operator { return eqOp{} }

// IsEq reports whether op is the equality operator.
func IsEq(op Operator) bool { return op != nil && op.Name() == EqName }

// funcOp wraps a score function and threshold into an Operator.
type funcOp struct {
	name  string
	score func(a, b string) float64
	min   float64
}

func (o funcOp) Name() string { return o.name }
func (o funcOp) Similar(a, b string) bool {
	if a == b {
		return true // subsumption of equality, regardless of scorer quirks
	}
	return o.score(a, b) >= o.min
}

// DL returns the paper's thresholded Damerau–Levenshtein operator ≈θ:
// v ≈θ v′ iff dl(v, v′) ≤ (1−θ)·max(|v|, |v′|)  (Section 6.2, θ=0.8 in
// all paper experiments). Equivalently NormalizedDL(v,v′) ≥ θ. The
// operator decides the threshold through the filtered banded evaluator
// (see editOp): length filter, diagonal band, row-min early exit — all
// exact for the threshold decision — and implements RuneSimilar for the
// interned value store.
func DL(theta float64) Operator {
	return editOp{name: fmt.Sprintf("dl(%.2f)", theta), theta: theta, transpositions: true}
}

// Lev returns a thresholded normalized-Levenshtein operator with the
// same filtered banded evaluation as DL (minus transpositions).
func Lev(theta float64) Operator {
	return editOp{name: fmt.Sprintf("lev(%.2f)", theta), theta: theta}
}

// JaroOp returns a thresholded Jaro operator.
func JaroOp(theta float64) Operator {
	return funcOp{name: fmt.Sprintf("jaro(%.2f)", theta), score: Jaro, min: theta}
}

// JaroWinklerOp returns a thresholded Jaro–Winkler operator.
func JaroWinklerOp(theta float64) Operator {
	return funcOp{name: fmt.Sprintf("jw(%.2f)", theta), score: JaroWinkler, min: theta}
}

// JaccardOp returns a thresholded q-gram Jaccard operator.
func JaccardOp(q int, theta float64) Operator {
	return funcOp{
		name:  fmt.Sprintf("jaccard%d(%.2f)", q, theta),
		score: func(a, b string) float64 { return JaccardQGram(a, b, q) },
		min:   theta,
	}
}

// DiceOp returns a thresholded q-gram Dice operator.
func DiceOp(q int, theta float64) Operator {
	return funcOp{
		name:  fmt.Sprintf("dice%d(%.2f)", q, theta),
		score: func(a, b string) float64 { return DiceQGram(a, b, q) },
		min:   theta,
	}
}

// CosineOp returns a thresholded q-gram cosine operator.
func CosineOp(q int, theta float64) Operator {
	return funcOp{
		name:  fmt.Sprintf("cosine%d(%.2f)", q, theta),
		score: func(a, b string) float64 { return CosineQGram(a, b, q) },
		min:   theta,
	}
}

// TokenOp returns a thresholded token-Jaccard operator (case-folded
// word-set overlap), useful for address-like multi-token fields.
func TokenOp(theta float64) Operator {
	return funcOp{name: fmt.Sprintf("token(%.2f)", theta), score: TokenJaccard, min: theta}
}

// SoundexEq returns an operator that holds when the Soundex codes of the
// two values agree (after case folding). Symmetric and reflexive; not
// transitive across empty encodings only in the degenerate sense, and it
// subsumes equality.
func SoundexEq() Operator {
	return funcOp{
		name: "soundex",
		score: func(a, b string) float64 {
			if Soundex(a) == Soundex(b) {
				return 1
			}
			return 0
		},
		min: 1,
	}
}

// PrefixOp returns an operator that holds when the case-folded values
// share a common prefix of at least n runes (or are equal).
func PrefixOp(n int) Operator {
	return funcOp{
		name: fmt.Sprintf("prefix(%d)", n),
		score: func(a, b string) float64 {
			ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
			k := 0
			for k < len(ra) && k < len(rb) && ra[k] == rb[k] {
				k++
			}
			if k >= n {
				return 1
			}
			return 0
		},
		min: 1,
	}
}

// SynonymOp wraps an operator with a constant-equivalence table: two
// values are similar if the base operator says so after canonicalizing
// each value through the table. This implements the "augment similarity
// relations with constants, to capture domain-specific synonym rules"
// extension of Section 8 (e.g. "USA" ≡ "United States"). The table is
// applied case-insensitively and symmetrically. The resulting operator
// remains reflexive, symmetric and equality-subsuming.
//
// The canonical name includes the sorted table entries: two SynonymOps
// are the same element of Θ only if base and table agree. This is what
// the Operator contract requires ("two operators with the same name are
// the same element of Θ") and what the compiled kernel's conjunct
// deduplication (internal/exec, the chase memo) relies on.
func SynonymOp(base Operator, synonyms map[string]string) Operator {
	canon := make(map[string]string, len(synonyms)*2)
	for from, to := range synonyms {
		canon[strings.ToLower(from)] = strings.ToLower(to)
	}
	entries := make([]string, 0, len(canon))
	for from, to := range canon {
		entries = append(entries, from+"->"+to)
	}
	sort.Strings(entries)
	// Resolve chains (a→b, b→c): canonicalize to a fixpoint, with a
	// bound to guard against accidental cycles.
	resolve := func(s string) string {
		cur := strings.ToLower(s)
		for i := 0; i < len(canon)+1; i++ {
			next, ok := canon[cur]
			if !ok || next == cur {
				break
			}
			cur = next
		}
		return cur
	}
	return funcOp{
		name: fmt.Sprintf("syn[%s;%s]", base.Name(), strings.Join(entries, ",")),
		score: func(a, b string) float64 {
			if base.Similar(resolve(a), resolve(b)) {
				return 1
			}
			return 0
		},
		min: 1,
	}
}

// Registry is a named collection of operators: the fixed set Θ available
// to a reasoning session. Equality is always present. A Registry is safe
// for concurrent use.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]Operator
}

// NewRegistry builds a registry containing equality plus the given
// operators.
func NewRegistry(ops ...Operator) *Registry {
	r := &Registry{ops: make(map[string]Operator, len(ops)+1)}
	r.ops[EqName] = Eq()
	for _, op := range ops {
		r.ops[op.Name()] = op
	}
	return r
}

// DefaultRegistry returns a registry with the operators used throughout
// the paper's examples and experiments: equality, dl(0.8) (the paper's
// ≈d), jaro(0.85), jw(0.90), jaccard2(0.70), token(0.60) and soundex.
func DefaultRegistry() *Registry {
	return NewRegistry(
		DL(0.8),
		JaroOp(0.85),
		JaroWinklerOp(0.90),
		JaccardOp(2, 0.70),
		TokenOp(0.60),
		SoundexEq(),
	)
}

// Register adds (or replaces) an operator.
func (r *Registry) Register(op Operator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[op.Name()] = op
}

// Lookup returns the operator with the given canonical name.
func (r *Registry) Lookup(name string) (Operator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.ops[name]
	return op, ok
}

// Names returns the sorted canonical names of all registered operators.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ops))
	for n := range r.ops {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered operators (the quantity p in the
// complexity bound of Theorem 4.1).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ops)
}

// Resolve parses an operator spec of the forms used by the rule language:
// "=", "name", or "name(arg)", where arg is a float threshold (and for
// q-gram families the q is part of the name, e.g. "jaccard2(0.7)").
// Known constructors: dl, lev, jaro, jw, jaccardQ, diceQ, cosineQ, token,
// soundex, prefix. If the spec names an already-registered operator it is
// returned as-is; freshly constructed operators are registered so that
// repeated references share identity.
func (r *Registry) Resolve(spec string) (Operator, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("similarity: empty operator spec")
	}
	if op, ok := r.Lookup(spec); ok {
		return op, nil
	}
	name, arg, hasArg, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	var op Operator
	switch {
	case name == "dl":
		op = DL(argOr(arg, hasArg, 0.8))
	case name == "lev":
		op = Lev(argOr(arg, hasArg, 0.8))
	case name == "jaro":
		op = JaroOp(argOr(arg, hasArg, 0.85))
	case name == "jw":
		op = JaroWinklerOp(argOr(arg, hasArg, 0.9))
	case name == "token":
		op = TokenOp(argOr(arg, hasArg, 0.6))
	case name == "soundex":
		op = SoundexEq()
	case name == "prefix":
		op = PrefixOp(int(argOr(arg, hasArg, 3)))
	case strings.HasPrefix(name, "jaccard"):
		q, qerr := strconv.Atoi(strings.TrimPrefix(name, "jaccard"))
		if qerr != nil || q <= 0 {
			return nil, fmt.Errorf("similarity: bad q in %q", spec)
		}
		op = JaccardOp(q, argOr(arg, hasArg, 0.7))
	case strings.HasPrefix(name, "dice"):
		q, qerr := strconv.Atoi(strings.TrimPrefix(name, "dice"))
		if qerr != nil || q <= 0 {
			return nil, fmt.Errorf("similarity: bad q in %q", spec)
		}
		op = DiceOp(q, argOr(arg, hasArg, 0.7))
	case strings.HasPrefix(name, "cosine"):
		q, qerr := strconv.Atoi(strings.TrimPrefix(name, "cosine"))
		if qerr != nil || q <= 0 {
			return nil, fmt.Errorf("similarity: bad q in %q", spec)
		}
		op = CosineOp(q, argOr(arg, hasArg, 0.7))
	default:
		return nil, fmt.Errorf("similarity: unknown operator %q", spec)
	}
	// Re-check under the canonical name (e.g. "dl(0.8)" canonicalizes to
	// "dl(0.80)") so references share identity.
	if existing, ok := r.Lookup(op.Name()); ok {
		return existing, nil
	}
	r.Register(op)
	return op, nil
}

func splitSpec(spec string) (name string, arg float64, hasArg bool, err error) {
	open := strings.IndexByte(spec, '(')
	if open < 0 {
		return spec, 0, false, nil
	}
	if !strings.HasSuffix(spec, ")") {
		return "", 0, false, fmt.Errorf("similarity: malformed operator spec %q", spec)
	}
	name = spec[:open]
	inner := spec[open+1 : len(spec)-1]
	arg, err = strconv.ParseFloat(strings.TrimSpace(inner), 64)
	if err != nil {
		return "", 0, false, fmt.Errorf("similarity: bad threshold in %q: %v", spec, err)
	}
	return name, arg, true, nil
}

func argOr(arg float64, has bool, def float64) float64 {
	if has {
		return arg
	}
	return def
}
