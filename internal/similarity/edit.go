package similarity

// RuneSimilar is implemented by operators that can decide similarity on
// pre-decoded rune slices. The interned value store (internal/values)
// decodes each distinct value once and evaluates operators through this
// interface, skipping the per-call []rune conversions of the string
// path. Implementations must agree exactly with Similar on the decoded
// strings.
type RuneSimilar interface {
	SimilarRunes(a, b []rune) bool
}

// editOp is a thresholded edit-distance operator (dl(θ), lev(θ)):
// v ≈θ v′ iff 1 − d(v, v′)/max(|v|, |v′|) ≥ θ. Unlike the generic
// funcOp scorer it decides the threshold without always computing the
// full distance matrix:
//
//   - length filter: d ≥ ||v|−|v′||, so when the length gap alone pushes
//     the normalized score below θ — equivalently when
//     ||v|−|v′|| > (1−θ)·max(|v|,|v′|) — the verdict is false with no
//     matrix at all;
//   - banded evaluation: only cells within the maximal admissible
//     distance k of the diagonal can stay ≤ k, so the DP touches
//     O(k·min(|v|,|v′|)) cells instead of O(|v|·|v′|);
//   - row-min early exit: row minima of the (transposition-extended)
//     matrix never decrease across two consecutive rows, so once two
//     adjacent rows exceed k the verdict is false.
//
// All three are exact for the threshold decision: the verdict equals
// the unfiltered scorer's on every input (property-tested against
// NormalizedDL / Levenshtein in edit_test.go).
type editOp struct {
	name           string
	theta          float64
	transpositions bool // Damerau (OSA) vs plain Levenshtein
}

func (o editOp) Name() string { return o.name }

// Similar reports whether the values are within the threshold.
func (o editOp) Similar(a, b string) bool {
	if a == b {
		return true // subsumption of equality
	}
	return o.SimilarRunes([]rune(a), []rune(b))
}

// SimilarRunes is the rune-slice fast path (RuneSimilar).
func (o editOp) SimilarRunes(ra, rb []rune) bool {
	la, lb := len(ra), len(rb)
	m := la
	if lb > m {
		m = lb
	}
	if equalRunes(ra, rb) {
		return true // reflexivity / equality subsumption
	}
	// k is the maximal edit distance that still satisfies the threshold,
	// derived from the exact float predicate of the unfiltered scorer so
	// the two paths can never disagree on boundary distances.
	k := maxDistFor(o.theta, m)
	if k < 0 {
		return false
	}
	// Length filter: d >= |la-lb|.
	if la-lb > k || lb-la > k {
		return false
	}
	return editWithin(ra, rb, k, o.transpositions)
}

func equalRunes(a, b []rune) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maxDistFor returns the largest distance d in [0, m] with
// 1 − d/m ≥ θ, or −1 when none qualifies. The predicate is evaluated
// with the exact float expression of NormalizedDL, and is monotone in
// d, so a binary search finds the boundary.
func maxDistFor(theta float64, m int) int {
	ok := func(d int) bool { return 1-float64(d)/float64(m) >= theta }
	if !ok(0) {
		return -1
	}
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// editStackRow bounds the row length served from stack arrays; longer
// values (rare) fall back to heap rows.
const editStackRow = 64

// editWithin decides d(ra, rb) <= k for the optimal-string-alignment
// distance (with transpositions when osa is set, plain Levenshtein
// otherwise), touching only the diagonal band |i−j| <= k.
//
// Out-of-band cells are pinned to k+1: their true value is at least
// |i−j| > k, and since every in-band path through such a cell costs at
// least k+1 in the computed matrix too, the decision d <= k is exact.
// Each row keeps one sentinel cell on each side of its band so the
// rotated row buffers never expose stale values to the next rows.
func editWithin(ra, rb []rune, k int, osa bool) bool {
	la, lb := len(ra), len(rb)
	inf := int32(k + 1)

	var s0, s1, s2 [editStackRow]int32
	var d0, d1, d2 []int32
	if lb+1 <= editStackRow {
		d0, d1, d2 = s0[:lb+1], s1[:lb+1], s2[:lb+1]
	} else {
		d0, d1, d2 = make([]int32, lb+1), make([]int32, lb+1), make([]int32, lb+1)
	}

	// Row 0: d[0][j] = j inside the band, sentinel just past it.
	hi0 := k
	if hi0 > lb {
		hi0 = lb
	}
	for j := 0; j <= hi0; j++ {
		d1[j] = int32(j)
	}
	if hi0+1 <= lb {
		d1[hi0+1] = inf
	}

	prevMin := int32(0) // row 0 minimum
	for i := 1; i <= la; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > lb {
			hi = lb
		}
		rowMin := inf
		if i <= k {
			d2[0] = int32(i)
			rowMin = int32(i)
		} else {
			d2[0] = inf
		}
		if lo-1 >= 1 {
			d2[lo-1] = inf // left sentinel
		}
		ai := ra[i-1]
		for j := lo; j <= hi; j++ {
			cost := int32(1)
			if ai == rb[j-1] {
				cost = 0
			}
			v := d1[j] + 1 // deletion
			if t := d2[j-1] + 1; t < v {
				v = t // insertion
			}
			if t := d1[j-1] + cost; t < v {
				v = t // substitution / match
			}
			if osa && i > 1 && j > 1 && ai == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d0[j-2] + 1; t < v {
					v = t // adjacent transposition
				}
			}
			if v > inf {
				v = inf
			}
			d2[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi+1 <= lb {
			d2[hi+1] = inf // right sentinel
		}
		// Row minima of adjacent rows never decrease (each cell derives
		// from the two previous rows with non-negative increments), so
		// two consecutive rows beyond k end the game.
		if rowMin > int32(k) && prevMin > int32(k) {
			return false
		}
		prevMin = rowMin
		d0, d1, d2 = d1, d2, d0
	}
	return d1[lb] <= int32(k)
}
