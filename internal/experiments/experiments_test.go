package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig8aSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig8a(&buf, []int{100, 200}, []int{6}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Keys == 0 {
			t.Errorf("card=%d found no RCKs", r.Card)
		}
		if r.Seconds < 0 {
			t.Errorf("negative time")
		}
	}
	if !strings.Contains(buf.String(), "Fig 8(a)") {
		t.Error("missing table header")
	}
}

func TestFig8bSmoke(t *testing.T) {
	rows, err := Fig8b(nil, []int{5, 10}, []int{6}, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Keys < rows[0].Keys {
		t.Errorf("larger m found fewer keys: %d vs %d", rows[1].Keys, rows[0].Keys)
	}
}

func TestFig8cSmoke(t *testing.T) {
	rows, err := Fig8c(nil, []int{10, 20}, []int{6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Keys == 0 {
			t.Errorf("card=%d: no RCKs at all", r.Card)
		}
	}
}

// TestFig8cCalibration guards the generator tuning: exhaustive RCK
// counts from small Σ must stay in the general range the paper's
// Figure 8(c) reports (a handful to a few dozen), not explode into the
// thousands (see EXPERIMENTS.md calibration note).
func TestFig8cCalibration(t *testing.T) {
	rows, err := Fig8c(nil, []int{10, 40}, []int{6, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Keys < 1 || r.Keys > 200 {
			t.Errorf("card=%d |Y|=%d: %d RCKs, outside the calibrated range [1, 200]",
				r.Card, r.YLen, r.Keys)
		}
		if r.Seconds > 5 {
			t.Errorf("card=%d |Y|=%d: exhaustive enumeration took %.1fs", r.Card, r.YLen, r.Seconds)
		}
	}
}

// TestFig9Shape verifies the headline claims of Exp-2 at reduced scale:
// FSrck precision is at least as good as FS (the paper reports up to 20%
// better), recall comparable, runtime comparable.
func TestFig9Shape(t *testing.T) {
	rows, err := Fig9(nil, []int{400}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fs, fsrck := rows[0], rows[1]
	if fs.Method != "FS" || fsrck.Method != "FSrck" {
		t.Fatalf("unexpected order: %v", rows)
	}
	if fsrck.Precision < fs.Precision {
		t.Errorf("FSrck precision %.3f < FS %.3f — paper shape violated", fsrck.Precision, fs.Precision)
	}
	if fsrck.Recall < fs.Recall-0.10 {
		t.Errorf("FSrck recall %.3f far below FS %.3f — paper says comparable", fsrck.Recall, fs.Recall)
	}
	if fsrck.Recall < 0.3 {
		t.Errorf("FSrck recall %.3f unusably low", fsrck.Recall)
	}
	t.Logf("FS:    %+v", fs)
	t.Logf("FSrck: %+v", fsrck)
}

// TestFig10Shape verifies the headline claims of Exp-3 at reduced scale:
// SNrck beats SN on both precision and recall (paper: by around 20%).
func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(nil, []int{400}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sn, snrck := rows[0], rows[1]
	if snrck.Precision < sn.Precision {
		t.Errorf("SNrck precision %.3f < SN %.3f — paper shape violated", snrck.Precision, sn.Precision)
	}
	if snrck.Recall < sn.Recall {
		t.Errorf("SNrck recall %.3f < SN %.3f — paper shape violated", snrck.Recall, sn.Recall)
	}
	t.Logf("SN:    %+v", sn)
	t.Logf("SNrck: %+v", snrck)
}

// TestFig9dShape verifies Exp-4: the RCK-derived blocking key yields
// better pairs completeness than the manual key (paper: consistently
// above 10% better) at comparable reduction ratio.
func TestFig9dShape(t *testing.T) {
	rows, err := Fig9d(nil, []int{400}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	rck, manual := rows[0], rows[1]
	if rck.Key != "RCK" || manual.Key != "manual" {
		t.Fatalf("unexpected order: %v", rows)
	}
	if rck.PC <= manual.PC {
		t.Errorf("RCK blocking PC %.3f <= manual %.3f — paper shape violated", rck.PC, manual.PC)
	}
	if rck.RR < 0.9 {
		t.Errorf("RCK blocking RR %.3f, want > 0.9 (paper: 95%%+)", rck.RR)
	}
	t.Logf("RCK:    %+v", rck)
	t.Logf("manual: %+v", manual)
}

func TestWindowingSmoke(t *testing.T) {
	rows, err := Windowing(nil, []int{200}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Mode != "windowing" {
			t.Errorf("mode = %s", r.Mode)
		}
		if r.PC < 0 || r.PC > 1 || r.RR < 0 || r.RR > 1 {
			t.Errorf("out-of-range PC/RR: %+v", r)
		}
	}
}

func TestSetupSharedCandidates(t *testing.T) {
	s, err := NewSetup(150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RCKs) == 0 {
		t.Fatal("no RCKs derived")
	}
	if s.Candidates.Len() == 0 {
		t.Fatal("no shared candidates")
	}
	if len(s.FSrckFields()) == 0 || len(s.FSFields()) != 11 {
		t.Fatalf("field vectors wrong: rck=%d fs=%d", len(s.FSrckFields()), len(s.FSFields()))
	}
}
