// Package experiments regenerates every figure of the paper's
// experimental study (Section 6). Each driver returns structured rows
// and can print a paper-style table; cmd/matchbench wires them to the
// command line and bench_test.go wraps them in testing.B benchmarks.
//
// Figure index (see DESIGN.md §4):
//
//	Fig8a — findRCKs runtime vs card(Σ)
//	Fig8b — findRCKs runtime vs m (number of RCKs)
//	Fig8c — total number of RCKs from small Σ
//	Fig9  — Fellegi–Sunter accuracy/efficiency, FS vs FSrck
//	Fig10 — Sorted Neighborhood accuracy/efficiency, SN vs SNrck
//	Fig9d — blocking pairs completeness & reduction ratio (also 10d)
//	Windowing — windowing PC/RR (reported in text, no figure)
package experiments

import (
	"fmt"
	"io"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/fellegi"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/neighborhood"
	"mdmatch/internal/record"
	"mdmatch/internal/similarity"
)

// Fig8Row is one measurement of the scalability experiments.
type Fig8Row struct {
	Card    int // card(Σ)
	YLen    int // |Y1| = |Y2|
	M       int // requested number of RCKs
	Keys    int // RCKs actually found
	Seconds float64
}

// Fig8a measures findRCKs runtime while card(Σ) varies (Figure 8(a):
// card 200..2000 step 200, m=20, |Y| ∈ {6,8,10,12}).
func Fig8a(w io.Writer, cards []int, yLens []int, m int, seed int64) ([]Fig8Row, error) {
	var rows []Fig8Row
	if w != nil {
		fmt.Fprintf(w, "# Fig 8(a): findRCKs runtime vs card(Σ), m=%d\n", m)
		fmt.Fprintf(w, "%8s %6s %8s %12s\n", "card", "|Y|", "#RCKs", "seconds")
	}
	for _, yLen := range yLens {
		ctx, target := gen.ScalabilitySchemas(yLen, 6)
		for _, card := range cards {
			sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: seed, Count: card})
			start := time.Now()
			keys, err := core.FindRCKs(ctx, sigma, target, m, nil)
			if err != nil {
				return nil, err
			}
			row := Fig8Row{Card: card, YLen: yLen, M: m, Keys: len(keys), Seconds: time.Since(start).Seconds()}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%8d %6d %8d %12.4f\n", row.Card, row.YLen, row.Keys, row.Seconds)
			}
		}
	}
	return rows, nil
}

// Fig8b measures findRCKs runtime while m varies (Figure 8(b):
// card(Σ)=2000, m=5..50 step 5).
func Fig8b(w io.Writer, ms []int, yLens []int, card int, seed int64) ([]Fig8Row, error) {
	var rows []Fig8Row
	if w != nil {
		fmt.Fprintf(w, "# Fig 8(b): findRCKs runtime vs m, card(Σ)=%d\n", card)
		fmt.Fprintf(w, "%8s %6s %8s %12s\n", "m", "|Y|", "#RCKs", "seconds")
	}
	for _, yLen := range yLens {
		ctx, target := gen.ScalabilitySchemas(yLen, 6)
		sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: seed, Count: card})
		for _, m := range ms {
			start := time.Now()
			keys, err := core.FindRCKs(ctx, sigma, target, m, nil)
			if err != nil {
				return nil, err
			}
			row := Fig8Row{Card: card, YLen: yLen, M: m, Keys: len(keys), Seconds: time.Since(start).Seconds()}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%8d %6d %8d %12.4f\n", row.M, row.YLen, row.Keys, row.Seconds)
			}
		}
	}
	return rows, nil
}

// Fig8c counts all RCKs deducible from small rule sets (Figure 8(c):
// card(Σ) = 10..40).
func Fig8c(w io.Writer, cards []int, yLens []int, seed int64) ([]Fig8Row, error) {
	var rows []Fig8Row
	if w != nil {
		fmt.Fprintln(w, "# Fig 8(c): total number of RCKs vs card(Σ)")
		fmt.Fprintf(w, "%8s %6s %8s %12s\n", "card", "|Y|", "#RCKs", "seconds")
	}
	for _, yLen := range yLens {
		ctx, target := gen.ScalabilitySchemas(yLen, 6)
		for _, card := range cards {
			// A lower target bias keeps the exhaustive RCK count in the
			// paper's reported 5-50 range (Figure 8(c) y-axis); see the
			// calibration note in EXPERIMENTS.md.
			sigma := gen.RandomMDs(ctx, target, gen.MDGenConfig{Seed: seed, Count: card, TargetBias: 0.10, MaxLHS: 2})
			start := time.Now()
			keys, err := core.AllRCKs(ctx, sigma, target, nil)
			if err != nil {
				return nil, err
			}
			row := Fig8Row{Card: card, YLen: yLen, Keys: len(keys), Seconds: time.Since(start).Seconds()}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%8d %6d %8d %12.4f\n", row.Card, row.YLen, row.Keys, row.Seconds)
			}
		}
	}
	return rows, nil
}

// MatchRow is one accuracy/efficiency measurement of Exp-2/Exp-3.
type MatchRow struct {
	K         int    // number of card holders (dataset scale)
	Method    string // "FS", "FSrck", "SN", "SNrck"
	Precision float64
	Recall    float64
	F1        float64
	Seconds   float64
	Compared  int
}

// Setup bundles a generated dataset and everything the matching
// experiments derive from it.
type Setup struct {
	K       int
	Dataset *gen.Dataset
	D       *record.PairInstance
	Target  core.Target
	Sigma   []core.MD
	Truth   *metrics.PairSet
	// RCKs are the top-5 keys derived with the data-driven cost model.
	RCKs []core.Key
	// WindowKeys are the shared windowing keys of Exp-2/3 ("the same set
	// of windowing keys were used in these experiments to make the
	// evaluation fair").
	WindowKeys []blocking.KeySpec
	// Candidates is the shared windowed candidate set (window 10).
	Candidates *metrics.PairSet
}

// NewSetup generates a K-holder dataset, derives the top-5 RCKs, and
// computes the shared windowed candidate set.
func NewSetup(k int, seed int64) (*Setup, error) {
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	ds, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	target := gen.Target(ds.Ctx)
	sigma := gen.HolderMDs(ds.Ctx)
	cm := core.DefaultCostModel()
	cm.Lt = ds.LtStats()
	// Derive a few extra keys, drop operator-subsumed duplicates, keep
	// the top 5 (see core.PruneSubsumed; recorded in EXPERIMENTS.md).
	keys, err := core.FindRCKs(ds.Ctx, sigma, target, 9, cm)
	if err != nil {
		return nil, err
	}
	keys = core.PruneSubsumed(keys)
	if len(keys) > 5 {
		keys = keys[:5]
	}
	d := ds.Pair()
	windowKeys := []blocking.KeySpec{
		blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode),
		blocking.NewKeySpec(core.P("tel", "phn")),
		blocking.NewKeySpec(core.P("fn", "fn"), core.P("dob", "dob")).
			WithEncoder(0, blocking.SoundexEncode),
	}
	cands, err := blocking.MultiPass(d, windowKeys, 10)
	if err != nil {
		return nil, err
	}
	return &Setup{
		K: k, Dataset: ds, D: d, Target: target, Sigma: sigma,
		Truth: ds.Truth(), RCKs: keys, WindowKeys: windowKeys, Candidates: cands,
	}, nil
}

// FSFields returns the baseline FS comparison vector: every target
// attribute compared with the paper's global DL(0.8) similarity test
// (Section 6.2 fixes θ=0.8 "in all the experiments"), with EM choosing
// the weights — the "picked by an EM algorithm" configuration of Exp-2.
func (s *Setup) FSFields() []matching.Field {
	d := similarity.DL(0.8)
	fields := make([]matching.Field, 0, len(s.Target.Y1))
	for _, p := range s.Target.Pairs() {
		fields = append(fields, matching.Field{Pair: p, Op: d})
	}
	return fields
}

// FSrckFields returns the union of the top-5 RCKs as a comparison
// vector. Statistical comparison softens the keys' equality operators to
// the global DL(0.8) test (agreement on a statistical comparison vector
// is approximate by construction; rule-based matching in RunSN keeps the
// exact operators).
func (s *Setup) FSrckFields() []matching.Field {
	d := similarity.DL(0.8)
	fields := matching.FieldsFromKeys(s.RCKs)
	seen := map[string]bool{}
	out := make([]matching.Field, 0, len(fields))
	for _, f := range fields {
		if similarity.IsEq(f.Op) {
			f.Op = d
		}
		id := f.Pair.String() + "\x00" + f.Op.Name()
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, f)
	}
	return out
}

// RunFS runs the Fellegi–Sunter matcher with the given fields over the
// shared candidates and evaluates it against the truth.
func (s *Setup) RunFS(method string, fields []matching.Field) (MatchRow, error) {
	ma := &fellegi.Matcher{Fields: fields, SampleSize: 30000, Seed: 1}
	start := time.Now()
	res, err := ma.Run(s.D, s.Candidates)
	if err != nil {
		return MatchRow{}, err
	}
	secs := time.Since(start).Seconds()
	q := metrics.Evaluate(res.Matches, s.Truth)
	return MatchRow{
		K: s.K, Method: method,
		Precision: q.Precision(), Recall: q.Recall(), F1: q.F1(),
		Seconds: secs, Compared: res.Compared,
	}, nil
}

// RunSN runs the sorted-neighborhood matcher with the given rules over
// the shared windowing passes.
func (s *Setup) RunSN(method string, rules *matching.RuleSet) (MatchRow, error) {
	passes := make([]neighborhood.Pass, len(s.WindowKeys))
	for i, k := range s.WindowKeys {
		passes[i] = neighborhood.Pass{Key: k, Window: 10}
	}
	start := time.Now()
	res, err := neighborhood.Run(s.D, neighborhood.Config{
		Passes: passes, Rules: rules,
		TransitiveClosure: true, // the merge phase of [20]
	})
	if err != nil {
		return MatchRow{}, err
	}
	secs := time.Since(start).Seconds()
	q := metrics.Evaluate(res.Matches, s.Truth)
	return MatchRow{
		K: s.K, Method: method,
		Precision: q.Precision(), Recall: q.Recall(), F1: q.F1(),
		Seconds: secs, Compared: res.Compared,
	}, nil
}

// Fig9 runs Exp-2 (Figures 9(a)-(c)): FS vs FSrck across dataset scales.
func Fig9(w io.Writer, ks []int, seed int64) ([]MatchRow, error) {
	var rows []MatchRow
	if w != nil {
		fmt.Fprintln(w, "# Fig 9(a-c): Fellegi-Sunter, FS vs FSrck")
		printMatchHeader(w)
	}
	for _, k := range ks {
		s, err := NewSetup(k, seed)
		if err != nil {
			return nil, err
		}
		base, err := s.RunFS("FS", s.FSFields())
		if err != nil {
			return nil, err
		}
		rck, err := s.RunFS("FSrck", s.FSrckFields())
		if err != nil {
			return nil, err
		}
		rows = append(rows, base, rck)
		if w != nil {
			printMatchRow(w, base)
			printMatchRow(w, rck)
		}
	}
	return rows, nil
}

// Fig10 runs Exp-3 (Figures 10(a)-(c)): SN (25 hand-written rules) vs
// SNrck (top-5 RCKs) across dataset scales.
func Fig10(w io.Writer, ks []int, seed int64) ([]MatchRow, error) {
	var rows []MatchRow
	if w != nil {
		fmt.Fprintln(w, "# Fig 10(a-c): Sorted Neighborhood, SN vs SNrck")
		printMatchHeader(w)
	}
	for _, k := range ks {
		s, err := NewSetup(k, seed)
		if err != nil {
			return nil, err
		}
		base, err := s.RunSN("SN", matching.NewRuleSet(neighborhood.BaselineRules(s.Dataset.Ctx, s.Target)...))
		if err != nil {
			return nil, err
		}
		rck, err := s.RunSN("SNrck", matching.NewRuleSet(s.RCKs...))
		if err != nil {
			return nil, err
		}
		rows = append(rows, base, rck)
		if w != nil {
			printMatchRow(w, base)
			printMatchRow(w, rck)
		}
	}
	return rows, nil
}

func printMatchHeader(w io.Writer) {
	fmt.Fprintf(w, "%8s %8s %10s %10s %10s %10s %10s\n",
		"K", "method", "precision", "recall", "f1", "seconds", "compared")
}

func printMatchRow(w io.Writer, r MatchRow) {
	fmt.Fprintf(w, "%8d %8s %10.4f %10.4f %10.4f %10.4f %10d\n",
		r.K, r.Method, r.Precision, r.Recall, r.F1, r.Seconds, r.Compared)
}

// BlockRow is one blocking/windowing measurement of Exp-4.
type BlockRow struct {
	K     int
	Key   string // "RCK" or "manual"
	Mode  string // "blocking" or "windowing"
	PC    float64
	RR    float64
	Pairs int // candidate pairs produced
}

// RCKBlockingKey derives the Exp-4 blocking key from the top-2 RCKs:
// three attributes, names Soundex-encoded and the remaining fields
// prefix-encoded ("partially encoded attributes in RCKs").
func (s *Setup) RCKBlockingKey() blocking.KeySpec {
	ks := blocking.FromRCKs(s.RCKs[:min(2, len(s.RCKs))], 3, "fn", "ln")
	for i, f := range ks.Fields {
		if f.Pair.Left != "fn" && f.Pair.Left != "ln" {
			ks.Fields[i].Encode = blocking.PrefixEncoder(4)
		}
	}
	return ks
}

// ManualBlockingKey is the hand-chosen three-attribute comparison key of
// Exp-4 (name Soundex-encoded as in the paper, plus two plausible
// manually picked fields).
func ManualBlockingKey() blocking.KeySpec {
	ks := blocking.NewKeySpec(core.P("fn", "fn"), core.P("city", "city"), core.P("gender", "gender"))
	ks.Fields[0].Encode = blocking.SoundexEncode
	ks.Fields[1].Encode = blocking.PrefixEncoder(4)
	return ks
}

// Fig9d runs Exp-4's blocking comparison (Figures 9(d) and 10(d)): pairs
// completeness and reduction ratio of the RCK-derived key vs the manual
// key.
func Fig9d(w io.Writer, ks []int, seed int64) ([]BlockRow, error) {
	return blockingExperiment(w, ks, seed, "blocking")
}

// Windowing runs the windowing variant of Exp-4 (discussed in the text
// of Section 6.2, results "comparable" to the blocking figures).
func Windowing(w io.Writer, ks []int, seed int64) ([]BlockRow, error) {
	return blockingExperiment(w, ks, seed, "windowing")
}

func blockingExperiment(w io.Writer, ks []int, seed int64, mode string) ([]BlockRow, error) {
	var rows []BlockRow
	if w != nil {
		fmt.Fprintf(w, "# Fig 9(d)/10(d): %s with RCK vs manual keys\n", mode)
		fmt.Fprintf(w, "%8s %8s %10s %10s %10s\n", "K", "key", "PC", "RR", "pairs")
	}
	for _, k := range ks {
		s, err := NewSetup(k, seed)
		if err != nil {
			return nil, err
		}
		for _, spec := range []struct {
			name string
			key  blocking.KeySpec
		}{
			{"RCK", s.RCKBlockingKey()},
			{"manual", ManualBlockingKey()},
		} {
			var cands *metrics.PairSet
			if mode == "blocking" {
				cands, err = blocking.Block(s.D, spec.key)
			} else {
				cands, err = blocking.Window(s.D, spec.key, 10)
			}
			if err != nil {
				return nil, err
			}
			bq := metrics.EvaluateBlocking(cands, s.Truth, s.Dataset.TotalPairs())
			row := BlockRow{K: k, Key: spec.name, Mode: mode, PC: bq.PC(), RR: bq.RR(), Pairs: cands.Len()}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%8d %8s %10.4f %10.4f %10d\n", row.K, row.Key, row.PC, row.RR, row.Pairs)
			}
		}
	}
	return rows, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
