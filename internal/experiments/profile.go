package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/engine"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/schema"
	"mdmatch/internal/semantics"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// Profile drives one execution path of the shared exec kernel over a
// generated K-holder dataset and prints its throughput — the
// cmd/matchbench -path mode. Every path compiles its rules through
// internal/exec, so a regression in the kernel shows up in whichever
// path is profiled:
//
//	chase    — semantics.Enforce (worklist chase) over the 7 holder MDs
//	ruleset  — matching.RuleSet over the blocked candidate pairs
//	engine   — engine.MatchBatch serving the billing side as queries
//	snapshot — the durable path: WAL-journaled load, streamed snapshot
//	           write, and cold recovery, with heap watermarks
func Profile(w io.Writer, path string, k int, seed int64) error {
	switch path {
	case "chase":
		return profileChase(w, k, seed)
	case "ruleset":
		return profileRuleSet(w, k, seed)
	case "engine":
		return profileEngine(w, k, seed)
	case "snapshot":
		return profileSnapshot(w, k, seed)
	}
	return fmt.Errorf("unknown path %q (want chase, ruleset, engine or snapshot)", path)
}

func profileChase(w io.Writer, k int, seed int64) error {
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	ds, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()
	start := time.Now()
	res, err := semantics.Enforce(d, sigma)
	if err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	fmt.Fprintf(w, "# path=chase K=%d (%d × %d tuples, %d MDs)\n", k, ds.Credit.Len(), ds.Billing.Len(), len(sigma))
	fmt.Fprintf(w, "seconds=%.4f applications=%d passes=%d\n", secs, res.Applications, res.Passes)
	fmt.Fprintf(w, "%s\n", res.Stats)
	fmt.Fprintf(w, "pairs_examined_per_second=%.0f\n", float64(res.Stats.PairsExamined)/secs)
	return nil
}

func profileRuleSet(w io.Writer, k int, seed int64) error {
	s, err := NewSetup(k, seed)
	if err != nil {
		return err
	}
	cands, err := blocking.Block(s.D, s.RCKBlockingKey())
	if err != nil {
		return err
	}
	rules := matching.NewRuleSet(s.RCKs...)
	start := time.Now()
	matches, err := rules.MatchCandidates(s.D, cands)
	if err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	q := metrics.Evaluate(matches, s.Truth)
	fmt.Fprintf(w, "# path=ruleset K=%d (%d RCKs, %d blocked candidates)\n", k, len(s.RCKs), cands.Len())
	fmt.Fprintf(w, "seconds=%.4f pairs_per_second=%.0f matches=%d\n", secs, float64(cands.Len())/secs, matches.Len())
	fmt.Fprintf(w, "%s\n", q)
	return nil
}

func profileEngine(w io.Writer, k int, seed int64) error {
	s, err := NewSetup(k, seed)
	if err != nil {
		return err
	}
	plan, err := engine.Compile(s.Dataset.Ctx, s.RCKs, []blocking.KeySpec{s.RCKBlockingKey()})
	if err != nil {
		return err
	}
	eng, err := engine.New(plan)
	if err != nil {
		return err
	}
	if err := eng.Load(s.Dataset.Credit); err != nil {
		return err
	}
	batch := make([][]string, s.Dataset.Billing.Len())
	for i, t := range s.Dataset.Billing.Tuples {
		batch[i] = t.Values
	}
	// Warm-up, then the measured pass.
	if _, err := eng.MatchBatch(batch); err != nil {
		return err
	}
	eng.ResetStats()
	start := time.Now()
	if _, err := eng.MatchBatch(batch); err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	st := eng.Stats()
	fmt.Fprintf(w, "# path=engine K=%d (%d indexed, %d queries, %d workers)\n", k, eng.Len(), len(batch), eng.Workers())
	fmt.Fprintf(w, "seconds=%.4f queries_per_second=%.0f\n", secs, float64(len(batch))/secs)
	fmt.Fprintf(w, "compared=%d matched=%d reduction_ratio=%.4f\n", st.Compared, st.Matched, st.ReductionRatio())
	return nil
}

// profileSnapshot profiles the durable memory path (DESIGN.md §14): a
// streaming-enforcer engine with a WAL-backed store loads the credit
// side (journaled batch + chase), writes one streamed snapshot, and a
// fresh process recovers cold from it — the three phases a -memprofile
// of the storage layer wants under one knob. The store lives in a
// temporary directory and is removed on return.
func profileSnapshot(w io.Writer, k int, seed int64) error {
	s, err := NewSetup(k, seed)
	if err != nil {
		return err
	}
	plan, err := engine.Compile(s.Dataset.Ctx, s.RCKs, []blocking.KeySpec{s.RCKBlockingKey()})
	if err != nil {
		return err
	}
	dedupCtx, err := schema.NewPair(s.Dataset.Credit.Rel, s.Dataset.Credit.Rel)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "matchbench-snapshot-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	open := func() (*engine.Engine, *store.Store, error) {
		enf, err := stream.New(dedupCtx, gen.DedupMDs(dedupCtx),
			stream.ClusterRules(gen.DedupClusterRules()...))
		if err != nil {
			return nil, nil, err
		}
		st, err := store.Open(dir, engine.Fingerprint(plan, enf), store.WithNoSync())
		if err != nil {
			return nil, nil, err
		}
		eng, err := engine.New(plan, engine.WithStream(enf), engine.WithStore(st))
		if err != nil {
			st.Close()
			return nil, nil, err
		}
		return eng, st, nil
	}

	eng, st, err := open()
	if err != nil {
		return err
	}
	start := time.Now()
	if err := eng.Load(s.Dataset.Credit); err != nil {
		st.Close()
		return err
	}
	loadSecs := time.Since(start).Seconds()
	walBytes := st.BytesSinceSnapshot()

	start = time.Now()
	lsn, err := eng.Snapshot()
	if err != nil {
		st.Close()
		return err
	}
	writeSecs := time.Since(start).Seconds()
	_, snapBytes := st.LastSnapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if err := st.Close(); err != nil {
		return err
	}

	start = time.Now()
	eng2, st2, err := open() // engine.New with a non-empty store recovers
	if err != nil {
		return err
	}
	recoverSecs := time.Since(start).Seconds()
	defer st2.Close()
	if eng2.Len() != eng.Len() {
		return fmt.Errorf("recovered %d indexed records, want %d", eng2.Len(), eng.Len())
	}

	fmt.Fprintf(w, "# path=snapshot K=%d (%d records, %d MDs, snapshot lsn %d)\n",
		k, s.Dataset.Credit.Len(), len(gen.DedupMDs(dedupCtx)), lsn)
	fmt.Fprintf(w, "load_seconds=%.4f wal_bytes=%d\n", loadSecs, walBytes)
	fmt.Fprintf(w, "snapshot_seconds=%.4f snapshot_bytes=%d\n", writeSecs, snapBytes)
	fmt.Fprintf(w, "recover_seconds=%.4f indexed=%d\n", recoverSecs, eng2.Len())
	fmt.Fprintf(w, "heap_alloc_mib=%.1f heap_sys_mib=%.1f\n",
		float64(ms.HeapAlloc)/(1<<20), float64(ms.HeapSys)/(1<<20))
	return nil
}
