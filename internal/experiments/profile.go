package experiments

import (
	"fmt"
	"io"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/engine"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/semantics"
)

// Profile drives one execution path of the shared exec kernel over a
// generated K-holder dataset and prints its throughput — the
// cmd/matchbench -path mode. All three paths compile their rules
// through internal/exec, so a regression in the kernel shows up in
// whichever path is profiled:
//
//	chase   — semantics.Enforce (worklist chase) over the 7 holder MDs
//	ruleset — matching.RuleSet over the blocked candidate pairs
//	engine  — engine.MatchBatch serving the billing side as queries
func Profile(w io.Writer, path string, k int, seed int64) error {
	switch path {
	case "chase":
		return profileChase(w, k, seed)
	case "ruleset":
		return profileRuleSet(w, k, seed)
	case "engine":
		return profileEngine(w, k, seed)
	}
	return fmt.Errorf("unknown path %q (want chase, ruleset or engine)", path)
}

func profileChase(w io.Writer, k int, seed int64) error {
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	ds, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()
	start := time.Now()
	res, err := semantics.Enforce(d, sigma)
	if err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	fmt.Fprintf(w, "# path=chase K=%d (%d × %d tuples, %d MDs)\n", k, ds.Credit.Len(), ds.Billing.Len(), len(sigma))
	fmt.Fprintf(w, "seconds=%.4f applications=%d passes=%d\n", secs, res.Applications, res.Passes)
	fmt.Fprintf(w, "%s\n", res.Stats)
	fmt.Fprintf(w, "pairs_examined_per_second=%.0f\n", float64(res.Stats.PairsExamined)/secs)
	return nil
}

func profileRuleSet(w io.Writer, k int, seed int64) error {
	s, err := NewSetup(k, seed)
	if err != nil {
		return err
	}
	cands, err := blocking.Block(s.D, s.RCKBlockingKey())
	if err != nil {
		return err
	}
	rules := matching.NewRuleSet(s.RCKs...)
	start := time.Now()
	matches, err := rules.MatchCandidates(s.D, cands)
	if err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	q := metrics.Evaluate(matches, s.Truth)
	fmt.Fprintf(w, "# path=ruleset K=%d (%d RCKs, %d blocked candidates)\n", k, len(s.RCKs), cands.Len())
	fmt.Fprintf(w, "seconds=%.4f pairs_per_second=%.0f matches=%d\n", secs, float64(cands.Len())/secs, matches.Len())
	fmt.Fprintf(w, "%s\n", q)
	return nil
}

func profileEngine(w io.Writer, k int, seed int64) error {
	s, err := NewSetup(k, seed)
	if err != nil {
		return err
	}
	plan, err := engine.Compile(s.Dataset.Ctx, s.RCKs, []blocking.KeySpec{s.RCKBlockingKey()})
	if err != nil {
		return err
	}
	eng, err := engine.New(plan)
	if err != nil {
		return err
	}
	if err := eng.Load(s.Dataset.Credit); err != nil {
		return err
	}
	batch := make([][]string, s.Dataset.Billing.Len())
	for i, t := range s.Dataset.Billing.Tuples {
		batch[i] = t.Values
	}
	// Warm-up, then the measured pass.
	if _, err := eng.MatchBatch(batch); err != nil {
		return err
	}
	eng.ResetStats()
	start := time.Now()
	if _, err := eng.MatchBatch(batch); err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	st := eng.Stats()
	fmt.Fprintf(w, "# path=engine K=%d (%d indexed, %d queries, %d workers)\n", k, eng.Len(), len(batch), eng.Workers())
	fmt.Fprintf(w, "seconds=%.4f queries_per_second=%.0f\n", secs, float64(len(batch))/secs)
	fmt.Fprintf(w, "compared=%d matched=%d reduction_ratio=%.4f\n", st.Compared, st.Matched, st.ReductionRatio())
	return nil
}
