package stream

import (
	"context"
	"encoding/json"
	"reflect"
	"slices"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/similarity"
)

// explainRun inserts the tuples one at a time with an Explain sink
// attached to each insertion and returns the enforcer plus the
// per-insertion provenance, in insertion order.
func explainRun(t *testing.T, workers int, opts ...Option) (*Enforcer, []*Explain) {
	t.Helper()
	ctx, tuples := shuffledCredit(t, 18, 3)
	sigma := gen.DedupMDs(ctx)
	all := append([]Option{ClusterRules(gen.DedupClusterRules()...), WithWorkers(workers)}, opts...)
	e, err := New(ctx, sigma, all...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Explain, 0, len(tuples))
	for _, tup := range tuples {
		ex := NewExplain(len(sigma))
		c := WithTraceSink(context.Background(), ex)
		res, err := e.InsertCtx(c, tup.ID, tup.Values)
		if err != nil {
			t.Fatal(err)
		}
		// The firing sequence IS the applied-MD sequence: same events,
		// observed at the same commit points.
		rules := make([]int, 0, len(ex.Firings))
		for _, f := range ex.Firings {
			rules = append(rules, f.Rule)
		}
		if want := res.AppliedMDs; !slices.Equal(rules, want) && !(len(rules) == 0 && len(want) == 0) {
			t.Fatalf("insert %d: explain firing rules = %v, InsertResult.AppliedMDs = %v",
				tup.ID, rules, want)
		}
		out = append(out, ex)
	}
	return e, out
}

// TestStreamExplainDeterminism is the provenance property test: with
// speculation forced on, the full explain stream of every insertion —
// funnel counts, firing sequence with cell-level before/after values,
// link events — must be bit-identical at every worker count, because
// provenance is recorded only at serial commit points.
func TestStreamExplainDeterminism(t *testing.T) {
	forceSpeculation(t, 16, 1, 1<<20)
	_, ref := explainRun(t, 1)
	for _, workers := range []int{2, 4} {
		_, got := explainRun(t, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d explains, serial %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("workers=%d: insert %d explain diverges:\n got %+v\nwant %+v",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestStreamExplainDenseDeterminism repeats the determinism property on
// an all-similarity rule set with a tiny materialization cap, so the
// dense bit-filter sweep (which enumerates no candidate frontier and
// must report none at any worker count) executes speculatively.
func TestStreamExplainDenseDeterminism(t *testing.T) {
	forceSpeculation(t, 8, 1, 4)
	ctx, tuples := shuffledCredit(t, 15, 3)
	d := similarity.DL(0.8)
	sigma := []core.MD{
		core.MustMD(ctx,
			[]core.Conjunct{core.C("cno", d, "cno")},
			[]core.AttrPair{core.P("fn", "fn"), core.P("ln", "ln"), core.P("dob", "dob")}),
		core.MustMD(ctx,
			[]core.Conjunct{core.C("dob", d, "dob"), core.C("ln", d, "ln"), core.C("fn", d, "fn")},
			[]core.AttrPair{core.P("tel", "tel"), core.P("email", "email")}),
	}
	run := func(workers int) []*Explain {
		t.Helper()
		e, err := New(ctx, sigma, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]*Explain, 0, len(tuples))
		for _, tup := range tuples {
			ex := NewExplain(len(sigma))
			if _, err := e.InsertCtx(WithTraceSink(context.Background(), ex), tup.ID, tup.Values); err != nil {
				t.Fatal(err)
			}
			out = append(out, ex)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for i := range ref {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("workers=%d: insert %d explain diverges:\n got %+v\nwant %+v",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestStreamExplainFunnelShape pins the funnel's internal consistency
// on the serial chase: every rule examines at most its candidates (when
// any frontier was enumerated), matches at most what it examined, and
// fires at most what it matched; firing cells resolve to the longer of
// the two before values and never shrink either side.
func TestStreamExplainFunnelShape(t *testing.T) {
	_, explains := explainRun(t, 1)
	fired := 0
	for i, ex := range explains {
		for _, f := range ex.Funnel {
			if f.Matched > f.Examined {
				t.Fatalf("insert %d rule %d: matched %d > examined %d", i, f.Rule, f.Matched, f.Examined)
			}
			if f.Fired > f.Matched {
				t.Fatalf("insert %d rule %d: fired %d > matched %d", i, f.Rule, f.Fired, f.Matched)
			}
		}
		for _, fir := range ex.Firings {
			for _, c := range fir.Cells {
				if len(c.After) < len(c.LeftBefore) || len(c.After) < len(c.RightBefore) {
					t.Fatalf("insert %d firing %d: resolved %q shorter than before (%q, %q)",
						i, fir.Seq, c.After, c.LeftBefore, c.RightBefore)
				}
			}
			fired++
		}
		for _, l := range ex.Links {
			if l.Rule < 0 {
				t.Fatalf("insert %d: live link with restored-rule marker: %+v", i, l)
			}
		}
	}
	if fired == 0 {
		t.Fatal("dataset produced no firings; the property test is vacuous")
	}
}

// TestClusterTrail checks the link side log: every record's trail is
// exactly the committed link events of its cluster, the trail grows the
// cluster from singletons (members = trail links + 1 when the cluster
// was built purely by live links), and unknown ids report absence.
func TestClusterTrail(t *testing.T) {
	e, _ := explainRun(t, 1)
	if _, ok := e.ClusterTrail(1 << 30); ok {
		t.Fatal("trail reported for an unknown id")
	}
	trails := 0
	for _, tup := range e.Instance().Tuples {
		cl, ok := e.ClusterOf(tup.ID)
		if !ok {
			t.Fatalf("no cluster for %d", tup.ID)
		}
		trail, ok := e.ClusterTrail(tup.ID)
		if !ok {
			t.Fatalf("no trail for %d", tup.ID)
		}
		if want := len(cl.Members) - 1; len(trail) != want {
			t.Fatalf("record %d: %d trail links, cluster of %d members wants %d",
				tup.ID, len(trail), len(cl.Members), want)
		}
		member := make(map[int]bool, len(cl.Members))
		for _, id := range cl.Members {
			member[id] = true
		}
		for _, ev := range trail {
			if !member[ev.Left] || !member[ev.Right] {
				t.Fatalf("record %d: trail link %+v outside cluster %v", tup.ID, ev, cl.Members)
			}
			if ev.Rule < 0 {
				t.Fatalf("record %d: live trail carries restored marker: %+v", tup.ID, ev)
			}
		}
		if len(trail) > 0 {
			trails++
		}
	}
	if trails == 0 {
		t.Fatal("no record has a non-empty trail; the test is vacuous")
	}
}

// TestClusterTrailDeterminism: the trail, like the explain stream, is
// identical at every worker count.
func TestClusterTrailDeterminism(t *testing.T) {
	forceSpeculation(t, 16, 1, 1<<20)
	serial, _ := explainRun(t, 1)
	for _, workers := range []int{2, 4} {
		e, _ := explainRun(t, workers)
		for _, tup := range serial.Instance().Tuples {
			want, _ := serial.ClusterTrail(tup.ID)
			got, _ := e.ClusterTrail(tup.ID)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d record %d: trail %v, serial %v", workers, tup.ID, got, want)
			}
		}
	}
}

// TestExplainJSONStable pins the wire shape of the explain payload the
// daemon serves (?explain=1): field names are API.
func TestExplainJSONStable(t *testing.T) {
	ex := NewExplain(1)
	ex.Candidates(0, 3)
	ex.Examined(0)
	ex.Matched(0, 1, 2)
	ex.Linked(0, 1, 2)
	ex.Fired(0, 1, 2, []CellChange{{LeftCol: 4, RightCol: 4, LeftBefore: "a", RightBefore: "ab", After: "ab"}})
	b, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	want := `{"funnel":[{"rule":0,"candidates":3,"examined":1,"matched":1,"fired":1}],` +
		`"firings":[{"seq":1,"rule":0,"left":1,"right":2,"cells":[{"left_col":4,"right_col":4,` +
		`"left_before":"a","right_before":"ab","after":"ab"}]}],` +
		`"links":[{"rule":0,"left":1,"right":2}]}`
	if got != want {
		t.Fatalf("explain JSON drifted:\n got %s\nwant %s", got, want)
	}
}
