package stream

import "slices"

// clusterStore is the record-level union-find: whenever the chase
// observes a pair matching some rule's LHS — the paper's reading of MDs
// and RCKs as matching rules — the two records' clusters are
// identified. Matching, not firing, is the link criterion: an exact
// duplicate matches every rule trivially but fires none (its RHS values
// are already equal). Links accumulate monotonically: a cluster records
// that its members matched at SOME point of the enforcement history
// (value resolution can later destroy a similarity match, but matched
// records stay matched, exactly as in the batch reading where the
// transitive closure of matched pairs is taken after the run). The
// cluster id is the smallest member record id, stable under merges.
type clusterStore struct {
	parent []int32
	recID  []int     // per row: its record id
	minRow []int32   // per root: the member row with the smallest record id
	rows   [][]int32 // per root: member rows
	count  int       // current number of clusters
}

func newClusterStore() *clusterStore {
	return &clusterStore{}
}

// add registers the next row as a singleton cluster of one record.
func (cs *clusterStore) add(recID int) {
	row := int32(len(cs.parent))
	cs.parent = append(cs.parent, row)
	cs.recID = append(cs.recID, recID)
	cs.minRow = append(cs.minRow, row)
	cs.rows = append(cs.rows, []int32{row})
	cs.count++
}

func (cs *clusterStore) find(x int32) int32 {
	for cs.parent[x] != x {
		cs.parent[x] = cs.parent[cs.parent[x]]
		x = cs.parent[x]
	}
	return x
}

// union merges the clusters of two rows, reporting whether a merge
// actually happened (false: already one cluster).
func (cs *clusterStore) union(i1, i2 int) bool {
	ra, rb := cs.find(int32(i1)), cs.find(int32(i2))
	if ra == rb {
		return false
	}
	if len(cs.rows[ra]) < len(cs.rows[rb]) {
		ra, rb = rb, ra
	}
	cs.parent[rb] = ra
	cs.rows[ra] = append(cs.rows[ra], cs.rows[rb]...)
	cs.rows[rb] = nil
	if cs.recID[cs.minRow[rb]] < cs.recID[cs.minRow[ra]] {
		cs.minRow[ra] = cs.minRow[rb]
	}
	cs.count--
	return true
}

// clusterID returns the cluster id (smallest member record id) of a row.
func (cs *clusterStore) clusterID(row int) int {
	return cs.recID[cs.minRow[cs.find(int32(row))]]
}

// members returns the record ids of the row's cluster, ascending.
func (cs *clusterStore) members(row int) []int {
	rows := cs.rows[cs.find(int32(row))]
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = cs.recID[r]
	}
	slices.Sort(out)
	return out
}

// all returns every cluster, ordered by cluster id.
func (cs *clusterStore) all() []Cluster {
	var out []Cluster
	for r := range cs.parent {
		if cs.find(int32(r)) != int32(r) {
			continue
		}
		out = append(out, Cluster{ID: cs.clusterID(r), Members: cs.members(r)})
	}
	slices.SortFunc(out, func(a, b Cluster) int { return a.ID - b.ID })
	return out
}
