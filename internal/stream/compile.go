package stream

import (
	"fmt"

	"mdmatch/internal/exec"
	"mdmatch/internal/similarity"
	"mdmatch/internal/values"
)

// conjKind discriminates the compiled evaluation strategies of one LHS
// conjunct over the interned store.
type conjKind uint8

const (
	kindEq     conjKind = iota // equality: integer id comparison
	kindSdx                    // Soundex equivalence: interned code ids
	kindCached                 // memoized through a growable values.Cache
)

// conjExec is one LHS conjunct compiled against the interned store. The
// id slices alias the columnar view and are refreshed per enforcement
// (AppendRow reallocates them between insertions, never during a
// chase).
type conjExec struct {
	kind       conjKind
	lcol, rcol int
	lids, rids []values.ID
	dict       *values.Dict // kindSdx: the shared dictionary
	cache      *values.Cache
}

// rhsExec is a compiled RHS pair: the id slices of both columns,
// comparable directly because RHS-paired columns share a dictionary.
type rhsExec struct {
	lids, rids []values.ID
}

// seedExec is one compiled join-key field of a blockable rule.
type seedExec struct {
	lcol, rcol int
	lids, rids []values.ID
	dict       *values.Dict
	sdx        bool
}

// conjKey identifies a distinct conjunct across all rules of Σ, for
// verdict-cache sharing.
type conjKey struct {
	lcol, rcol int
	op         string
}

// ruleState is one rule's persistent worklist state.
type ruleState struct {
	idx     int  // index into Σ
	link    bool // a match of this rule identifies the records' clusters
	lhs     []conjExec
	rhs     []rhsExec
	rhsCols [][2]int
	// relL/relR flag the columns whose cells this rule reads (LHS) or
	// writes (RHS) per side: touches outside them cannot change any of
	// the rule's verdicts.
	relL, relR []bool
	// seeds are the hash-encodable LHS conjuncts (equality, Soundex)
	// usable as join keys; empty means the rule scans densely.
	seeds []seedExec
	// dirtyL/dirtyR is the frontier: rows touched on relevant columns
	// (or freshly inserted) since this rule last consumed them.
	dirtyL, dirtyR map[int]struct{}
	// idxL/idxR are the persistent join indexes (nil for dense rules).
	idxL, idxR *sideIndex
	// Cumulative per-rule telemetry (written under the enforcer's lock):
	// candidate pairs visited, LHS matches, and RHS-identifying firings.
	examined, matched, fired int64
}

func (r *ruleState) blockable() bool { return r.idxL != nil }

// key folds row ti's seed-field encodings on one side into a uint64
// join key (side 0 keys the row as the pair's left tuple, side 1 as its
// right).
func (r *ruleState) key(side, ti int) uint64 {
	var key uint64
	for si := range r.seeds {
		s := &r.seeds[si]
		var id values.ID
		if side == 0 {
			id = s.lids[ti]
		} else {
			id = s.rids[ti]
		}
		enc := uint64(id)
		if s.sdx {
			enc = uint64(uint32(s.dict.SoundexID(id)))
		}
		key = mix64(key ^ enc)
	}
	return key
}

// refresh re-aliases the rule's id slices against the columnar view
// (called once per insertion, after AppendRow may have reallocated the
// column slices).
func (r *ruleState) refresh(e *Enforcer) {
	for i := range r.lhs {
		c := &r.lhs[i]
		c.lids = e.cols.Column(c.lcol)
		c.rids = e.cols.Column(c.rcol)
	}
	for i := range r.rhs {
		r.rhs[i].lids = e.cols.Column(r.rhsCols[i][0])
		r.rhs[i].rids = e.cols.Column(r.rhsCols[i][1])
	}
	for i := range r.seeds {
		s := &r.seeds[i]
		s.lids = e.cols.Column(s.lcol)
		s.rids = e.cols.Column(s.rcol)
	}
}

// compile validates Σ and builds the persistent rule states, the shared
// column-group dictionaries and the growable verdict caches.
func (e *Enforcer) compile() error {
	arity := e.ctx.Left.Arity()

	type compiled struct {
		lhs  []exec.Conjunct
		rhs  [][2]int
		sdxs []bool // parallel to the encodable prefix of lhs
		nEnc int
	}
	mds := make([]compiled, len(e.sigma))
	for i, md := range e.sigma {
		if err := md.Validate(); err != nil {
			return fmt.Errorf("stream: Σ[%d]: %w", i, err)
		}
		lhs, err := exec.CompileConjuncts(e.ctx, md.LHS)
		if err != nil {
			return fmt.Errorf("stream: Σ[%d]: %w", i, err)
		}
		// Evaluation order: exact (encodable) tests first — cheap and
		// selective — then the similarity metrics, as in the batch chase.
		var cm compiled
		var rest []exec.Conjunct
		for _, c := range lhs {
			switch {
			case similarity.IsEq(c.Op):
				cm.lhs = append(cm.lhs, c)
				cm.sdxs = append(cm.sdxs, false)
			case c.Op.Name() == "soundex":
				cm.lhs = append(cm.lhs, c)
				cm.sdxs = append(cm.sdxs, true)
			default:
				rest = append(rest, c)
			}
		}
		cm.nEnc = len(cm.lhs)
		cm.lhs = append(cm.lhs, rest...)
		for _, p := range md.RHS {
			li, ok := e.ctx.Left.Index(p.Left)
			if !ok {
				return fmt.Errorf("stream: Σ[%d]: %s has no attribute %q", i, e.ctx.Left.Name(), p.Left)
			}
			ri, ok := e.ctx.Right.Index(p.Right)
			if !ok {
				return fmt.Errorf("stream: Σ[%d]: %s has no attribute %q", i, e.ctx.Right.Name(), p.Right)
			}
			cm.rhs = append(cm.rhs, [2]int{li, ri})
		}
		mds[i] = cm
	}

	// Column groups: Σ's RHS pairs connect columns whose cells
	// enforcement can identify; LHS conjunct pairs join the dictionaries
	// so both columns of every conjunct share one id space (making the
	// canonical cache key and id-equality sound). Self-match: left and
	// right column c are the same node.
	g := values.NewGrouper(arity)
	for i := range mds {
		for _, p := range mds[i].rhs {
			g.Link(p[0], p[1])
		}
		for _, c := range mds[i].lhs {
			g.Link(c.Left, c.Right)
		}
	}
	dicts := make([]*values.Dict, arity)
	for c := range dicts {
		dicts[c] = g.Dict(c)
	}
	e.cols = values.NewColumns(dicts)

	// Growable verdict caches for the distinct non-encodable conjuncts;
	// the value universe grows with every insertion, so the fixed 2-bit
	// matrices of the batch chase do not apply here.
	e.conjs = make(map[conjKey]*values.Cache)
	for i := range mds {
		for ci, c := range mds[i].lhs {
			if ci < mds[i].nEnc {
				continue
			}
			id := conjKey{lcol: c.Left, rcol: c.Right, op: c.Op.Name()}
			if _, ok := e.conjs[id]; !ok {
				e.conjs[id] = values.NewCache(c.Op, dicts[c.Left], dicts[c.Right])
			}
		}
	}

	for i := range mds {
		cm := &mds[i]
		r := &ruleState{
			idx:     i,
			link:    true,
			rhsCols: cm.rhs,
			relL:    make([]bool, arity),
			relR:    make([]bool, arity),
			dirtyL:  make(map[int]struct{}),
			dirtyR:  make(map[int]struct{}),
		}
		for ci, c := range cm.lhs {
			ce := conjExec{lcol: c.Left, rcol: c.Right}
			switch {
			case ci < cm.nEnc && !cm.sdxs[ci]:
				ce.kind = kindEq
			case ci < cm.nEnc:
				ce.kind = kindSdx
				ce.dict = dicts[c.Left]
			default:
				ce.kind = kindCached
				ce.cache = e.conjs[conjKey{lcol: c.Left, rcol: c.Right, op: c.Op.Name()}]
			}
			r.lhs = append(r.lhs, ce)
			r.relL[c.Left], r.relR[c.Right] = true, true
		}
		r.rhs = make([]rhsExec, len(cm.rhs))
		for _, p := range cm.rhs {
			r.relL[p[0]], r.relR[p[1]] = true, true
		}
		for ci := 0; ci < cm.nEnc; ci++ {
			r.seeds = append(r.seeds, seedExec{
				lcol: cm.lhs[ci].Left, rcol: cm.lhs[ci].Right,
				dict: dicts[cm.lhs[ci].Left], sdx: cm.sdxs[ci],
			})
		}
		if len(r.seeds) > 0 {
			r.idxL = newSideIndex()
			r.idxR = newSideIndex()
		}
		e.rules = append(e.rules, r)
	}
	return nil
}
