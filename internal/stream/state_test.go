package stream

import (
	"reflect"
	"testing"

	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
)

// TestSnapshotCutMatchesState pins the contract of the compact snapshot
// cut: rendered back to string level, a Cut captured at any point of an
// insertion history is identical — dictionaries, rows with resolved
// values, clusters, stats — to the deep-copying SnapshotState taken at
// the same point. The snapshot write path encodes the cut directly, so
// this equality is what makes the streamed snapshot bytes equal to the
// old in-memory capture's bytes.
func TestSnapshotCutMatchesState(t *testing.T) {
	cfg := gen.DefaultConfig(30)
	cfg.Seed = 7
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	e, err := New(ctx, gen.DedupMDs(ctx), ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		t.Fatal(err)
	}
	cursor := uint64(0)
	check := func(step int) {
		t.Helper()
		cut, cutLSN := e.SnapshotCut(func() uint64 { return cursor })
		st, stLSN := e.SnapshotState(func() uint64 { return cursor })
		if cutLSN != stLSN {
			t.Fatalf("step %d: cut cursor %d != state cursor %d", step, cutLSN, stLSN)
		}
		if got := cut.State(); !reflect.DeepEqual(got, st) {
			t.Fatalf("step %d: rendered cut differs from deep-copied state:\ncut:   %+v\nstate: %+v", step, got, st)
		}
	}
	check(-1)
	for i, tup := range ds.Credit.Tuples {
		if _, err := e.Insert(tup.ID, tup.Values); err != nil {
			t.Fatal(err)
		}
		cursor++
		if i%7 == 0 || i == len(ds.Credit.Tuples)-1 {
			check(i)
		}
	}
}
