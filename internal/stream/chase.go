package stream

import (
	"mdmatch/internal/record"
)

// chase is the cell union-find of one enforcement run. Its lifetime is
// one chase — reset is called at the start of every Insert/InsertBatch
// — because the fold semantics demands it: a from-scratch Enforce on
// (stable instance ∪ new records) starts with every cell in its own
// singleton class, so classes merged by PREVIOUS insertions must not
// propagate this run's value updates to their old members. (Their
// values are equal at the start of the run, but only cells identified
// during THIS run stay identified through it.) Keeping the classes
// alive across runs was measurably wrong: it fires strictly fewer
// rules than the reference chase, because stale co-members look
// RHS-equal after one of them grows.
//
// The representation is sparse: a cell absent from the maps is a
// singleton class whose value is its tuple's current cell value, so a
// run's cost is proportional to the cells its firings actually touch,
// not to the instance size.
//
// As in the batch chase, each class's resolved value (resolveValue:
// longest, ties lexicographically largest) is written back into the
// member tuples incrementally, reporting each changed cell through
// onTouch; since the resolved value is a max under a total order, this
// produces bit-identical instances to the seed chase's
// flush-per-firing.
type chase struct {
	arity   int
	tuples  []*record.Tuple // tuples[r] backs cells r*arity..r*arity+arity-1
	parent  map[int32]int32
	value   map[int32]string  // per materialized root: resolved class value
	members map[int32][]int32 // per materialized root: member cells
	onTouch func(ti, ai int, v string)
}

func newChase(arity int) *chase {
	return &chase{
		arity:   arity,
		parent:  make(map[int32]int32),
		value:   make(map[int32]string),
		members: make(map[int32][]int32),
	}
}

// reset begins a new run: every cell is a singleton again.
func (ch *chase) reset() {
	clear(ch.parent)
	clear(ch.value)
	clear(ch.members)
}

func (ch *chase) cellCount() int { return len(ch.tuples) * ch.arity }

// appendRow registers one freshly inserted tuple.
func (ch *chase) appendRow(t *record.Tuple) {
	ch.tuples = append(ch.tuples, t)
}

// cell returns the cell id of row ti, column ai.
func (ch *chase) cell(ti, ai int) int32 { return int32(ti*ch.arity + ai) }

// cellValue reads the current value of a cell from its tuple.
func (ch *chase) cellValue(c int32) string {
	return ch.tuples[int(c)/ch.arity].Values[int(c)%ch.arity]
}

func (ch *chase) find(x int32) int32 {
	for {
		p, ok := ch.parent[x]
		if !ok || p == x {
			return x
		}
		if gp, ok := ch.parent[p]; ok {
			ch.parent[x] = gp
		}
		x = p
	}
}

// materialize ensures a root has explicit class state.
func (ch *chase) materialize(r int32) {
	if _, ok := ch.parent[r]; !ok {
		ch.parent[r] = r
		ch.value[r] = ch.cellValue(r)
		ch.members[r] = []int32{r}
	}
}

// union identifies two cells' classes and writes the resolved value
// back into every member cell whose value changed.
func (ch *chase) union(a, b int32) {
	ra, rb := ch.find(a), ch.find(b)
	if ra == rb {
		return
	}
	ch.materialize(ra)
	ch.materialize(rb)
	// Attach the smaller class under the larger.
	if len(ch.members[ra]) < len(ch.members[rb]) {
		ra, rb = rb, ra
	}
	v := resolveValue(ch.value[ra], ch.value[rb])
	ch.parent[rb] = ra
	if v != ch.value[ra] {
		ch.writeBack(ch.members[ra], v)
	}
	if v != ch.value[rb] {
		ch.writeBack(ch.members[rb], v)
	}
	ch.value[ra] = v
	ch.members[ra] = append(ch.members[ra], ch.members[rb]...)
	delete(ch.members, rb)
	delete(ch.value, rb)
}

// writeBack stores the new class value into every member cell's tuple
// and reports the touched cells.
func (ch *chase) writeBack(cells []int32, v string) {
	for _, c := range cells {
		ti, ai := int(c)/ch.arity, int(c)%ch.arity
		t := ch.tuples[ti]
		if t.Values[ai] != v {
			t.Values[ai] = v
			if ch.onTouch != nil {
				ch.onTouch(ti, ai, v)
			}
		}
	}
}

// resolveValue is the chase's deterministic value-resolution policy
// (semantics.ResolveValue): the longest value wins, ties break
// lexicographically (largest).
func resolveValue(a, b string) string {
	if len(a) > len(b) {
		return a
	}
	if len(b) > len(a) {
		return b
	}
	if a >= b {
		return a
	}
	return b
}
