package stream

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
)

// parallelCurvePoint / parallelSection / mergeParallelSection mirror
// internal/engine's bench-parallel report shapes (each report test is
// self-contained in its package; the JSON schema is shared).
type parallelCurvePoint struct {
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	Value     float64 `json:"value"`
	SpeedupV1 float64 `json:"speedup_vs_1"`
}

type parallelSection struct {
	GeneratedAt string               `json:"generated_at"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Measure     string               `json:"measure"`
	Unit        string               `json:"unit"`
	Note        string               `json:"note,omitempty"`
	Curve       []parallelCurvePoint `json:"curve"`
}

func mergeParallelSection(t *testing.T, path string, section parallelSection) {
	t.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", path, err)
		}
	}
	doc["parallel"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged parallel section into %s", path)
}

// TestWriteParallelStreamReport measures the incremental chase — every
// corpus record streamed through Insert one at a time — across the
// worker curve and merges the result into BENCH_stream.json's
// "parallel" section (wired up as `make bench-parallel`). The
// speculation thresholds are lowered so the parallel path engages at
// bench corpus scale; the curve therefore measures the speculative
// machinery itself, including its overhead at workers=1-equivalent
// frontier sizes. Skipped unless BENCH_PARALLEL_STREAM_OUT is set.
func TestWriteParallelStreamReport(t *testing.T) {
	out := os.Getenv("BENCH_PARALLEL_STREAM_OUT")
	if out == "" {
		t.Skip("set BENCH_PARALLEL_STREAM_OUT=<path> to record the scaling curve")
	}
	k := 1000
	if v := os.Getenv("BENCH_STREAM_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_STREAM_K %q: %v", v, err)
		}
		k = n
	}
	restore := TuneSpeculation(4096, 256, 0)
	defer restore()

	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := gen.DedupMDs(ctx)

	section := parallelSection{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Measure:     "stream.Insert (full corpus, one record at a time)",
		Unit:        "inserts_per_second",
		Note:        "speculation thresholds lowered (chunk=4096, minPairs=256) so the parallel path engages at bench scale",
	}
	var oneWorker float64
	for _, workers := range []int{1, 2, 4} {
		e, err := New(ctx, sigma,
			ClusterRules(gen.DedupClusterRules()...), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for _, tup := range ds.Credit.Tuples {
			if _, err := e.Insert(tup.ID, tup.Values); err != nil {
				t.Fatal(err)
			}
		}
		secs := time.Since(start).Seconds()
		p := parallelCurvePoint{
			Workers: workers, Seconds: secs,
			Value: float64(ds.Credit.Len()) / secs,
		}
		if workers == 1 {
			oneWorker = secs
		}
		if oneWorker > 0 {
			p.SpeedupV1 = oneWorker / secs
		}
		section.Curve = append(section.Curve, p)
	}
	mergeParallelSection(t, out, section)
}

// BenchmarkStreamInsertParallel is BenchmarkStreamInsert with the
// deterministic parallel chase enabled (4 workers, thresholds lowered
// so speculation engages). CI runs it at -benchtime=1x as a smoke of
// the speculative path; compare against BenchmarkStreamInsert for the
// single-core overhead.
func BenchmarkStreamInsertParallel(b *testing.B) {
	b.ReportAllocs()
	restore := TuneSpeculation(4096, 256, 0)
	defer restore()
	ds, err := gen.Generate(gen.DefaultConfig(1000))
	if err != nil {
		b.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	e, err := New(ctx, gen.DedupMDs(ctx), WithWorkers(4))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.InsertBatch(ds.Credit); err != nil {
		b.Fatal(err)
	}
	next := 1 << 22
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := ds.Credit.Tuples[i%ds.Credit.Len()]
		if _, err := e.Insert(next+i, tup.Values); err != nil {
			b.Fatal(err)
		}
	}
}
