package stream

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/semantics"
	"mdmatch/internal/semantics/seedref"
	"mdmatch/internal/similarity"
)

// The equivalence property tests validate the incremental chase against
// seedref.Enforce — the frozen seed implementation — on the Enforcer's
// own dataset: after every insertion, the Enforcer's state must be
// bit-identical to a from-scratch chase on (previous stable instance ∪
// new record). Cluster links are validated against an instrumented copy
// of the reference loop (oracleEnforce), itself cross-checked against
// seedref on every run.

// oracleResult is the reference outcome of one from-scratch chase.
type oracleResult struct {
	apps, passes int
	inst         *record.Instance
	// matches holds the (left, right) record ids of every LHS match the
	// reference loop observed — the cluster links (a superset of the
	// pairs that fired).
	matches [][2]int
	applied []int // Σ indices fired, sorted, deduplicated
}

// oracleEnforce runs the instrumented reference loop — a verbatim
// seed-chase (full rescans, flush per firing) that additionally records
// which rule fired on which record pair, and the LHS matches of the
// cluster-linking rules (linkRules; nil links every rule) — and
// cross-checks its outcome against seedref.Enforce.
func oracleEnforce(t *testing.T, ctx schema.Pair, in *record.Instance, sigma []core.MD, linkRules []int) oracleResult {
	links := map[int]bool{}
	if linkRules == nil {
		for i := range sigma {
			links[i] = true
		}
	} else {
		for _, i := range linkRules {
			links[i] = true
		}
	}
	t.Helper()
	d, err := record.NewPairInstance(ctx, in, in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seedref.Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}

	out := d.Clone()
	ch := newOracleChase(out.Left)
	res := oracleResult{inst: out.Left}
	appliedSet := map[int]bool{}
	for {
		res.passes++
		if res.passes > len(ch.parent)+2 {
			t.Fatal("oracle chase did not terminate")
		}
		fired := false
		for mi, md := range sigma {
			for i1, t1 := range out.Left.Tuples {
				for i2, t2 := range out.Right.Tuples {
					ok := true
					for _, c := range md.LHS {
						if !c.Op.Similar(out.Left.MustGet(t1, c.Pair.Left), out.Right.MustGet(t2, c.Pair.Right)) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					if t1.ID != t2.ID && links[mi] {
						res.matches = append(res.matches, [2]int{t1.ID, t2.ID})
					}
					eq := true
					for _, p := range md.RHS {
						if out.Left.MustGet(t1, p.Left) != out.Right.MustGet(t2, p.Right) {
							eq = false
							break
						}
					}
					if eq {
						continue
					}
					for _, p := range md.RHS {
						li, _ := out.Left.Rel.Index(p.Left)
						ri, _ := out.Right.Rel.Index(p.Right)
						ch.union(i1*ch.arity+li, i2*ch.arity+ri)
					}
					ch.flush()
					fired = true
					res.apps++
					appliedSet[mi] = true
				}
			}
		}
		if !fired {
			break
		}
	}
	for mi := range appliedSet {
		res.applied = append(res.applied, mi)
	}
	slices.Sort(res.applied)

	// The instrumented loop must agree with the frozen oracle exactly.
	if res.apps != ref.Applications || res.passes != ref.Passes {
		t.Fatalf("oracle self-check: apps/passes = %d/%d, seedref = %d/%d",
			res.apps, res.passes, ref.Applications, ref.Passes)
	}
	sameInstance(t, "oracle self-check", res.inst, ref.Instance.Left)
	return res
}

// oracleChase is the seed union-find with flush-per-firing, over one
// self-match instance.
type oracleChase struct {
	in      *record.Instance
	arity   int
	parent  []int
	value   []string
	members [][]int
}

func newOracleChase(in *record.Instance) *oracleChase {
	ch := &oracleChase{in: in, arity: in.Rel.Arity()}
	for _, t := range in.Tuples {
		for _, v := range t.Values {
			id := len(ch.parent)
			ch.parent = append(ch.parent, id)
			ch.value = append(ch.value, v)
			ch.members = append(ch.members, []int{id})
		}
	}
	return ch
}

func (ch *oracleChase) find(x int) int {
	for ch.parent[x] != x {
		ch.parent[x] = ch.parent[ch.parent[x]]
		x = ch.parent[x]
	}
	return x
}

func (ch *oracleChase) union(a, b int) {
	ra, rb := ch.find(a), ch.find(b)
	if ra == rb {
		return
	}
	if len(ch.members[ra]) < len(ch.members[rb]) {
		ra, rb = rb, ra
	}
	ch.parent[rb] = ra
	ch.value[ra] = semantics.ResolveValue(ch.value[ra], ch.value[rb])
	ch.members[ra] = append(ch.members[ra], ch.members[rb]...)
	ch.members[rb] = nil
}

func (ch *oracleChase) flush() {
	for ti, t := range ch.in.Tuples {
		for ai := range t.Values {
			t.Values[ai] = ch.value[ch.find(ti*ch.arity+ai)]
		}
	}
}

func sameInstance(t *testing.T, label string, a, b *record.Instance) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: sizes differ: %d vs %d", label, a.Len(), b.Len())
	}
	for i, ta := range a.Tuples {
		tb := b.Tuples[i]
		if ta.ID != tb.ID {
			t.Fatalf("%s: tuple %d ids differ: %d vs %d", label, i, ta.ID, tb.ID)
		}
		for j := range ta.Values {
			if ta.Values[j] != tb.Values[j] {
				t.Errorf("%s: t%d[%d] = %q vs %q", label, ta.ID, j, ta.Values[j], tb.Values[j])
			}
		}
	}
}

// recUF accumulates the oracle's cluster links.
type recUF struct{ parent map[int]int }

func newRecUF() *recUF { return &recUF{parent: map[int]int{}} }

func (u *recUF) add(id int) {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
	}
}

func (u *recUF) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *recUF) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// clusters groups the known ids by root, as (min-id, sorted members),
// ordered by cluster id.
func (u *recUF) clusters() []Cluster {
	byRoot := map[int][]int{}
	for id := range u.parent {
		byRoot[u.find(id)] = append(byRoot[u.find(id)], id)
	}
	var out []Cluster
	for _, members := range byRoot {
		slices.Sort(members)
		out = append(out, Cluster{ID: members[0], Members: members})
	}
	slices.SortFunc(out, func(a, b Cluster) int { return a.ID - b.ID })
	return out
}

func sameClusters(t *testing.T, label string, got, want []Cluster) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d clusters, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || !slices.Equal(got[i].Members, want[i].Members) {
			t.Fatalf("%s: cluster %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// checkStreamed inserts the tuples one at a time and validates every
// step against a from-scratch reference chase on the Enforcer's own
// dataset at that step. linkRules selects the cluster-linking rules
// (nil = all); extra options (e.g. WithWorkers) pass through.
func checkStreamed(t *testing.T, label string, ctx schema.Pair, sigma []core.MD, tuples []*record.Tuple, linkRules []int, extra ...Option) {
	t.Helper()
	var opts []Option
	if linkRules != nil {
		opts = append(opts, ClusterRules(linkRules...))
	}
	opts = append(opts, extra...)
	e, err := New(ctx, sigma, opts...)
	if err != nil {
		t.Fatal(err)
	}
	uf := newRecUF()
	totalApps := 0
	for k, tup := range tuples {
		step := fmt.Sprintf("%s/step%d(id=%d)", label, k, tup.ID)
		// The reference input: the current stable instance plus the new
		// record with its original values.
		oin := e.Instance().Clone()
		if _, err := oin.AppendWithID(tup.ID, slices.Clone(tup.Values)); err != nil {
			t.Fatal(err)
		}
		want := oracleEnforce(t, ctx, oin, sigma, linkRules)

		res, err := e.Insert(tup.ID, tup.Values)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if res.Applications != want.apps || res.Passes != want.passes {
			t.Fatalf("%s: applications/passes = %d/%d, reference = %d/%d",
				step, res.Applications, res.Passes, want.apps, want.passes)
		}
		if !slices.Equal(res.AppliedMDs, want.applied) {
			t.Fatalf("%s: applied MDs = %v, reference = %v", step, res.AppliedMDs, want.applied)
		}
		sameInstance(t, step, e.Instance(), want.inst)

		uf.add(tup.ID)
		for _, f := range want.matches {
			uf.union(f[0], f[1])
		}
		sameClusters(t, step, e.Clusters(), uf.clusters())
		if wantCl := uf.clusters(); len(wantCl) > 0 {
			cl, ok := e.ClusterOf(tup.ID)
			if !ok {
				t.Fatalf("%s: ClusterOf(%d) missing", step, tup.ID)
			}
			if cl.ID != res.Cluster {
				t.Fatalf("%s: ClusterOf = %d, InsertResult.Cluster = %d", step, cl.ID, res.Cluster)
			}
		}
		totalApps += res.Applications
	}
	st := e.Stats()
	if st.Applications != totalApps {
		t.Errorf("%s: Stats.Applications = %d, sum of steps = %d", label, st.Applications, totalApps)
	}
	if st.Records != len(tuples) {
		t.Errorf("%s: Stats.Records = %d, want %d", label, st.Records, len(tuples))
	}
	// The final instance is stable for Σ.
	d, err := record.NewPairInstance(ctx, e.Instance(), e.Instance())
	if err != nil {
		t.Fatal(err)
	}
	stable, err := semantics.IsStable(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Errorf("%s: final streamed instance is not stable", label)
	}
}

// shuffled returns the credit tuples of a generated dataset in a
// deterministic shuffled order.
func shuffledCredit(t *testing.T, k int, seed int64) (schema.Pair, []*record.Tuple) {
	t.Helper()
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	tuples := slices.Clone(ds.Credit.Tuples)
	rng := rand.New(rand.NewSource(seed * 1031))
	rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
	return ctx, tuples
}

// TestStreamInsertEquivalenceGen is the property test of the
// incremental chase: across generated credit corpora inserted in
// shuffled order, every insertion must be bit-identical — instance,
// applications, passes, applied rules, clusters — to a from-scratch
// seed chase on the Enforcer's dataset at that step.
func TestStreamInsertEquivalenceGen(t *testing.T) {
	for _, k := range []int{12, 25} {
		for seed := int64(1); seed <= 2; seed++ {
			ctx, tuples := shuffledCredit(t, k, seed)
			checkStreamed(t, fmt.Sprintf("gen(K=%d,seed=%d)", k, seed), ctx, gen.DedupMDs(ctx), tuples, gen.DedupClusterRules())
		}
	}
}

// TestStreamInsertEquivalenceHolderStyle repeats the property test with
// a rule set containing only similarity conjuncts (every rule scans
// densely), exercising the dense frontier paths.
func TestStreamInsertEquivalenceDense(t *testing.T) {
	ctx, tuples := shuffledCredit(t, 15, 3)
	d := similarity.DL(0.8)
	sigma := []core.MD{
		core.MustMD(ctx,
			[]core.Conjunct{core.C("cno", d, "cno")},
			[]core.AttrPair{core.P("fn", "fn"), core.P("ln", "ln"), core.P("dob", "dob")}),
		core.MustMD(ctx,
			[]core.Conjunct{core.C("dob", d, "dob"), core.C("ln", d, "ln"), core.C("fn", d, "fn")},
			[]core.AttrPair{core.P("tel", "tel"), core.P("email", "email")}),
	}
	checkStreamed(t, "dense", ctx, sigma, tuples, nil)
}

// TestStreamBatchEquivalence checks InsertBatch: on an empty Enforcer
// it reproduces the batch chase on the whole dataset exactly, and on a
// warm Enforcer it is a from-scratch chase on (stable ∪ batch).
func TestStreamBatchEquivalence(t *testing.T) {
	cfg := gen.DefaultConfig(40)
	cfg.Seed = 5
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := gen.DedupMDs(ctx)

	t.Run("from-empty", func(t *testing.T) {
		want := oracleEnforce(t, ctx, ds.Credit.Clone(), sigma, nil)
		e, err := New(ctx, sigma)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.InsertBatch(ds.Credit)
		if err != nil {
			t.Fatal(err)
		}
		if res.Applications != want.apps || res.Passes != want.passes {
			t.Fatalf("batch applications/passes = %d/%d, reference = %d/%d",
				res.Applications, res.Passes, want.apps, want.passes)
		}
		if !slices.Equal(res.AppliedMDs, want.applied) {
			t.Fatalf("batch applied MDs = %v, reference = %v", res.AppliedMDs, want.applied)
		}
		sameInstance(t, "batch", e.Instance(), want.inst)
		uf := newRecUF()
		for _, tup := range ds.Credit.Tuples {
			uf.add(tup.ID)
		}
		for _, f := range want.matches {
			uf.union(f[0], f[1])
		}
		sameClusters(t, "batch", e.Clusters(), uf.clusters())
	})

	t.Run("warm", func(t *testing.T) {
		e, err := New(ctx, sigma)
		if err != nil {
			t.Fatal(err)
		}
		split := ds.Credit.Len() / 3
		for _, tup := range ds.Credit.Tuples[:split] {
			if _, err := e.InsertTuple(tup); err != nil {
				t.Fatal(err)
			}
		}
		oin := e.Instance().Clone()
		rest := record.NewInstance(ds.Credit.Rel)
		for _, tup := range ds.Credit.Tuples[split:] {
			if _, err := oin.AppendWithID(tup.ID, slices.Clone(tup.Values)); err != nil {
				t.Fatal(err)
			}
			if _, err := rest.AppendWithID(tup.ID, slices.Clone(tup.Values)); err != nil {
				t.Fatal(err)
			}
		}
		want := oracleEnforce(t, ctx, oin, sigma, nil)
		res, err := e.InsertBatch(rest)
		if err != nil {
			t.Fatal(err)
		}
		if res.Applications != want.apps || res.Passes != want.passes {
			t.Fatalf("warm batch applications/passes = %d/%d, reference = %d/%d",
				res.Applications, res.Passes, want.apps, want.passes)
		}
		sameInstance(t, "warm batch", e.Instance(), want.inst)
	})
}

// TestStreamNotConfluentWithBatch pins the reason the streaming
// contract is per-insertion rather than whole-history: online
// enforcement is order-sensitive. Enforcing as records arrive resolves
// values as it goes, and a grown value can fail a similarity threshold
// its original passed — so folding insertions is NOT the same function
// as batch-enforcing the final dataset, for any engine that does not
// re-run the batch chase per insert.
//
// Σ (order matters): δ1 = B≈B → C⇌C, δ2 = A=A → B⇌B.
//
//   - Batch over {a, c, b}: δ1 fires on (a, b) first ("smith" ≈
//     "smyth"), identifying C; then δ2 grows a.B to c's longer value.
//     All three records end in one cluster.
//   - Streamed a, then c, then b: inserting c fires δ2, growing a.B to
//     "smitherson-jones" — so when b arrives, δ1's threshold fails
//     against the grown value and b stays a singleton.
func TestStreamNotConfluentWithBatch(t *testing.T) {
	rel := schema.MustStrings("r", "a", "b", "c")
	ctx := schema.MustPair(rel, rel)
	d := similarity.DL(0.8)
	sigma := []core.MD{
		core.MustMD(ctx, []core.Conjunct{core.C("b", d, "b")}, []core.AttrPair{core.P("c", "c")}),
		core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b")}),
	}
	rows := [][]string{
		{"k1", "smith", "c-a"},
		{"k1", "smitherson-jones", "c-c"},
		{"k2", "smyth", "c-b"},
	}

	// The batch chase merges everything into one cluster.
	batchIn := record.NewInstance(rel)
	for i, r := range rows {
		if _, err := batchIn.AppendWithID(i, slices.Clone(r)); err != nil {
			t.Fatal(err)
		}
	}
	want := oracleEnforce(t, ctx, batchIn, sigma, nil)
	uf := newRecUF()
	for i := range rows {
		uf.add(i)
	}
	for _, f := range want.matches {
		uf.union(f[0], f[1])
	}
	if n := len(uf.clusters()); n != 1 {
		t.Fatalf("batch chase yields %d clusters, expected 1 (bad test fixture)", n)
	}

	// The streamed fold does not — and per-step it is still exactly the
	// reference chase on its own dataset (checkStreamed validates that).
	tuples := make([]*record.Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = &record.Tuple{ID: i, Values: slices.Clone(r)}
	}
	e, err := New(ctx, sigma)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		if _, err := e.InsertTuple(tup); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(e.Clusters()); n != 2 {
		t.Fatalf("streamed fold yields %d clusters, expected 2 (order sensitivity vanished?)", n)
	}
	checkStreamed(t, "non-confluence", ctx, sigma, tuples, nil)
}

// TestStreamSmallShuffles stress-tests the per-step contract on a small
// adversarial instance across many insertion orders: values chosen so
// firings grow values across thresholds and rules cascade.
func TestStreamSmallShuffles(t *testing.T) {
	rel := schema.MustStrings("r", "a", "b", "c")
	ctx := schema.MustPair(rel, rel)
	d := similarity.DL(0.8)
	sigma := []core.MD{
		core.MustMD(ctx, []core.Conjunct{core.C("b", d, "b")}, []core.AttrPair{core.P("c", "c")}),
		core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b"), core.P("c", "c")}),
		core.MustMD(ctx, []core.Conjunct{core.C("c", d, "c"), core.C("b", d, "b")}, []core.AttrPair{core.P("a", "a")}),
	}
	rows := [][]string{
		{"k1", "smith", "cc-1"},
		{"k1", "smitherson-jones", "cc-23"},
		{"k2", "smyth", "cc-2"},
		{"k3", "smythe", "cc-23"},
		{"k2", "jones", "cc-1"},
		{"k4", "smithers", "dd-9"},
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		order := rng.Perm(len(rows))
		tuples := make([]*record.Tuple, len(rows))
		for i, oi := range order {
			tuples[i] = &record.Tuple{ID: oi, Values: slices.Clone(rows[oi])}
		}
		checkStreamed(t, fmt.Sprintf("shuffle%d(%v)", trial, order), ctx, sigma, tuples, nil)
	}
}

// TestStreamErrors covers the construction and insertion error paths.
func TestStreamErrors(t *testing.T) {
	credit := gen.CreditSchema()
	billing := gen.BillingSchema()
	if _, err := New(schema.MustPair(credit, billing), nil); err == nil {
		t.Error("New accepted a non-self-match context")
	}
	ctx := schema.MustPair(credit, credit)
	if _, err := New(ctx, []core.MD{{}}); err == nil {
		t.Error("New accepted an invalid MD")
	}
	e, err := New(ctx, gen.DedupMDs(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(1, []string{"too", "short"}); err == nil {
		t.Error("Insert accepted a short row")
	}
	row := make([]string, credit.Arity())
	if _, err := e.Insert(1, row); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(1, row); err == nil {
		t.Error("Insert accepted a duplicate id")
	}
	other := record.NewInstance(billing)
	if _, err := e.InsertBatch(other); err == nil {
		t.Error("InsertBatch accepted a foreign relation")
	}
	// A rejected batch must mutate nothing: rows before the offending
	// one must not be appended, seeded, or clustered.
	bad := record.NewInstance(credit)
	if _, err := bad.AppendWithID(50, make([]string, credit.Arity())); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.AppendWithID(1, make([]string, credit.Arity())); err != nil { // id 1 exists
		t.Fatal(err)
	}
	before := e.Len()
	if _, err := e.InsertBatch(bad); err == nil {
		t.Error("InsertBatch accepted a batch with a duplicate id")
	}
	if e.Len() != before {
		t.Errorf("rejected batch changed Len: %d -> %d", before, e.Len())
	}
	if _, ok := e.ClusterOf(50); ok {
		t.Error("rejected batch left record 50 in the cluster store")
	}
	res, err := e.Insert(51, make([]string, credit.Arity()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Applications != 0 {
		t.Errorf("insert after rejected batch consumed leftover frontier: %+v", res)
	}
	if _, ok := e.ClusterOf(99); ok {
		t.Error("ClusterOf found an unknown record")
	}
	if _, ok := e.Record(99); ok {
		t.Error("Record found an unknown record")
	}
	if vals, ok := e.Record(1); !ok || len(vals) != credit.Arity() {
		t.Error("Record did not return the inserted row")
	}
}

// TestStreamConcurrentReads exercises the lock: concurrent ClusterOf /
// Stats / Record calls while insertions run (validated under -race).
func TestStreamConcurrentReads(t *testing.T) {
	ctx, tuples := shuffledCredit(t, 15, 7)
	e, err := New(ctx, gen.DedupMDs(ctx))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, tup := range tuples {
			if _, err := e.InsertTuple(tup); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		e.Stats()
		e.ClusterOf(tuples[i%len(tuples)].ID)
		e.Record(tuples[i%len(tuples)].ID)
		e.Len()
	}
	<-done
	if e.Len() != len(tuples) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(tuples))
	}
}
