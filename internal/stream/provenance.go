package stream

import "context"

// Chase provenance: the explain layer of the incremental chase.
//
// A TraceSink observes the chase's COMMITTED effects — candidates
// enumerated, pairs examined, LHS matches, cluster links, firings with
// their resolved cell values — through hooks placed at exactly the
// points where the serial chase and the speculate/commit parallel chase
// (parallel.go) apply those effects. The parallel chase records nothing
// during speculation: verdicts are provisional until commitPair replays
// them in serial order, so the provenance stream is bit-identical at
// any worker count by construction (property-tested in
// provenance_test.go). A nil sink (the default) costs one nil check per
// hook site.
//
// Sinks are delivered per insertion through the context
// (WithTraceSink) and observed under the enforcer's insertion lock, in
// serialization order; implementations must not call back into the
// Enforcer.
type TraceSink interface {
	// Candidates reports one rule's scan frontier size for one pass
	// (blockable and materialized-dense scans only; a dense bit-filter
	// sweep enumerates no frontier, and reports none at any worker
	// count).
	Candidates(rule, n int)
	// Examined reports one candidate pair visited for a rule.
	Examined(rule int)
	// Matched reports a pair whose LHS held, by record id.
	Matched(rule, leftID, rightID int)
	// Linked reports a cluster merge caused by a match of an
	// identity rule (ClusterRules); already-linked matches are silent.
	Linked(rule, leftID, rightID int)
	// Fired reports one chase application: the rule, the record pair,
	// and every RHS cell pair with its pre-firing values and the
	// resolved value written back.
	Fired(rule, leftID, rightID int, cells []CellChange)
}

// CellChange is one RHS cell pair of a firing: the column pair, both
// sides' values before the firing, and the resolved value both cells
// hold after it (longest wins, ties lexicographically largest).
type CellChange struct {
	LeftCol     int    `json:"left_col"`
	RightCol    int    `json:"right_col"`
	LeftBefore  string `json:"left_before"`
	RightBefore string `json:"right_before"`
	After       string `json:"after"`
}

// LinkEvent is one committed cluster merge: the Σ index of the identity
// rule whose match caused it and the record pair that matched. Rule is
// -1 for links synthesized by RestoreState, where the snapshot records
// cluster membership but not the rule history behind it.
type LinkEvent struct {
	Rule  int `json:"rule"`
	Left  int `json:"left"`
	Right int `json:"right"`
}

type sinkKeyType struct{}

// WithTraceSink returns a context that delivers sink to the enforcement
// triggered by the Insert/InsertBatch call carrying it. The sink
// observes that one insertion's chase; it is detached when the
// insertion completes.
func WithTraceSink(ctx context.Context, sink TraceSink) context.Context {
	return context.WithValue(ctx, sinkKeyType{}, sink)
}

func sinkFrom(ctx context.Context) TraceSink {
	s, _ := ctx.Value(sinkKeyType{}).(TraceSink)
	return s
}

// RuleFunnel is one rule's explain funnel for a single enforcement:
// how many candidate pairs the scan enumerated, how many it examined,
// how many matched the LHS, and how many fired.
type RuleFunnel struct {
	Rule       int   `json:"rule"`
	Candidates int64 `json:"candidates"`
	Examined   int64 `json:"examined"`
	Matched    int64 `json:"matched"`
	Fired      int64 `json:"fired"`
}

// Firing is one chase application in commit order.
type Firing struct {
	// Seq numbers the firing within its enforcement, from 1.
	Seq   int          `json:"seq"`
	Rule  int          `json:"rule"`
	Left  int          `json:"left"`
	Right int          `json:"right"`
	Cells []CellChange `json:"cells"`
}

// Explain is the standard TraceSink: it accumulates one enforcement's
// provenance as a per-rule funnel plus the firing and link sequences in
// commit order. Zero-valued fields marshal compactly; the whole struct
// is JSON-ready for a service's ?explain=1 surface.
type Explain struct {
	Funnel  []RuleFunnel `json:"funnel"`
	Firings []Firing     `json:"firings"`
	Links   []LinkEvent  `json:"links"`
}

// NewExplain builds an Explain sink for an enforcer over numRules rules.
func NewExplain(numRules int) *Explain {
	ex := &Explain{Funnel: make([]RuleFunnel, numRules)}
	for i := range ex.Funnel {
		ex.Funnel[i].Rule = i
	}
	return ex
}

func (ex *Explain) Candidates(rule, n int) { ex.Funnel[rule].Candidates += int64(n) }
func (ex *Explain) Examined(rule int)      { ex.Funnel[rule].Examined++ }
func (ex *Explain) Matched(rule, leftID, rightID int) {
	ex.Funnel[rule].Matched++
}
func (ex *Explain) Linked(rule, leftID, rightID int) {
	ex.Links = append(ex.Links, LinkEvent{Rule: rule, Left: leftID, Right: rightID})
}
func (ex *Explain) Fired(rule, leftID, rightID int, cells []CellChange) {
	ex.Funnel[rule].Fired++
	ex.Firings = append(ex.Firings, Firing{
		Seq: len(ex.Firings) + 1, Rule: rule, Left: leftID, Right: rightID, Cells: cells,
	})
}

// ClusterTrail returns the chain of committed link events that built
// the record's cluster, in commit order: the identity-rule matches that
// merged clusters (Rule -1 entries stand for links restored from a
// snapshot). A singleton record has an empty trail. The trail is a side
// log, deliberately OUTSIDE State: recovery bit-equivalence covers the
// enforcement state proper, and the trail is provenance about how it
// was reached.
func (e *Enforcer) ClusterTrail(id int) ([]LinkEvent, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	row, ok := e.rowByID[id]
	if !ok {
		return nil, false
	}
	root := e.clusters.find(int32(row))
	var out []LinkEvent
	for _, ev := range e.links {
		if e.clusters.find(int32(e.rowByID[ev.Left])) == root {
			out = append(out, ev)
		}
	}
	return out, true
}

// --- commit-point effect helpers ---
//
// visit (the serial chase) and commitPair (the parallel chase's commit
// step) share these helpers, so every provenance hook fires at a commit
// point and nowhere else: the two paths agree on the provenance stream
// because they run the same code.

// noteExamined applies the pair-examined effects of one visit.
func (e *Enforcer) noteExamined(r *ruleState) {
	e.stats.Chase.PairsExamined++
	r.examined++
	if e.sink != nil {
		e.sink.Examined(r.idx)
	}
}

// noteMatched applies the LHS-matched effects of one visit.
func (e *Enforcer) noteMatched(r *ruleState, i1, i2 int) {
	r.matched++
	if e.sink != nil {
		e.sink.Matched(r.idx, e.inst.Tuples[i1].ID, e.inst.Tuples[i2].ID)
	}
}

// linkPair identifies the records' clusters on an identity-rule match
// and records the link's provenance when the merge actually happened.
func (e *Enforcer) linkPair(r *ruleState, i1, i2 int) {
	if !r.link || i1 == i2 {
		return
	}
	if !e.clusters.union(i1, i2) {
		return
	}
	ev := LinkEvent{Rule: r.idx, Left: e.inst.Tuples[i1].ID, Right: e.inst.Tuples[i2].ID}
	e.links = append(e.links, ev)
	if e.sink != nil {
		e.sink.Linked(ev.Rule, ev.Left, ev.Right)
	}
}

// fire applies one firing: the RHS cell identifications, the chase
// counters, and — with a sink attached — the cell pairs' before values
// (read BEFORE any union, because the chase writes resolved values back
// into the tuples immediately) and the resolved after values.
func (e *Enforcer) fire(r *ruleState, i1, i2 int) {
	var cells []CellChange
	if e.sink != nil {
		cells = make([]CellChange, len(r.rhsCols))
		for k, p := range r.rhsCols {
			cells[k] = CellChange{
				LeftCol: p[0], RightCol: p[1],
				LeftBefore:  e.inst.Tuples[i1].Values[p[0]],
				RightBefore: e.inst.Tuples[i2].Values[p[1]],
			}
		}
	}
	for _, p := range r.rhsCols {
		e.ch.union(e.ch.cell(i1, p[0]), e.ch.cell(i2, p[1]))
	}
	e.applied = append(e.applied, r.idx)
	e.stats.Applications++
	e.stats.Chase.RuleFirings++
	r.fired++
	if e.sink != nil {
		for k, p := range r.rhsCols {
			cells[k].After = e.inst.Tuples[i1].Values[p[0]]
			_ = p
		}
		e.sink.Fired(r.idx, e.inst.Tuples[i1].ID, e.inst.Tuples[i2].ID, cells)
	}
}

// linkRestored synthesizes the Rule -1 trail entries for cluster links
// re-unioned from a snapshot (see LinkEvent).
func (e *Enforcer) linkRestored(leftID, rightID int) {
	e.links = append(e.links, LinkEvent{Rule: -1, Left: leftID, Right: rightID})
}
