package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/semantics"
	"mdmatch/internal/similarity"
)

// streamReport is the schema of BENCH_stream.json, the repo's running
// record of per-insert enforcement latency against the full-re-chase
// alternative (written by `make bench-stream`).
type streamReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	MaxProcs    int           `json:"gomaxprocs"`
	Sigma       string        `json:"sigma"`
	Sizes       []sizeMeasure `json:"sizes"`
	Equivalence equivFlags    `json:"equivalence"`
}

type sizeMeasure struct {
	Sigma        string  `json:"sigma"`
	HoldersK     int     `json:"holders_k"`
	Records      int     `json:"records"`
	BatchLoadSec float64 `json:"batch_load_seconds"`
	InsertsTimed int     `json:"inserts_timed"`
	// Per-insert latency of streaming the last InsertsTimed records one
	// at a time into the warm enforcer.
	PerInsertMeanUS float64 `json:"per_insert_us_mean"`
	PerInsertP50US  float64 `json:"per_insert_us_p50"`
	PerInsertMaxUS  float64 `json:"per_insert_us_max"`
	// FullRechaseSec is the alternative an incremental engine replaces:
	// one from-scratch Enforce (the worklist chase, the repo's fastest
	// batch path) over the final dataset — the cost EVERY arrival would
	// pay without maintained chase state.
	FullRechaseSec    float64 `json:"full_rechase_seconds"`
	SpeedupVsRechase  float64 `json:"speedup_vs_full_rechase"`
	TotalApplications int     `json:"total_applications"`
	Clusters          int     `json:"clusters"`
}

type equivFlags struct {
	// CheckedRecords is the dataset size of the bit-identity check.
	CheckedRecords int `json:"checked_records"`
	// BatchBitIdentical: InsertBatch from empty reproduced
	// semantics.Enforce exactly (applications, passes, instance).
	BatchBitIdentical bool `json:"batch_bit_identical"`
	// StreamedStable: after streaming the last records one at a time,
	// the maintained instance is stable for Σ.
	StreamedStable bool `json:"streamed_stable"`
}

// TestWriteStreamBenchReport measures streaming-insert latency against
// the full re-chase alternative across dataset sizes and writes the
// result as JSON. It is skipped unless BENCH_STREAM_OUT names the
// output file (wired up as `make bench-stream`), so regular test runs
// stay fast. BENCH_STREAM_K overrides the largest corpus scale.
func TestWriteStreamBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_STREAM_OUT")
	if out == "" {
		t.Skip("set BENCH_STREAM_OUT=<path> to write the latency report")
	}
	maxK := 2000
	if v := os.Getenv("BENCH_STREAM_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_STREAM_K %q: %v", v, err)
		}
		maxK = n
	}
	report := streamReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Sigma:       "gen.DedupMDs (5 rules: 2 blockable, 1 soundex-seeded, 2 dense)",
	}
	for _, k := range []int{maxK / 8, maxK / 4, maxK / 2, maxK} {
		if k < 50 {
			continue
		}
		// Full rule set: the two dense rules put an Θ(records) floor
		// under every insert (a new card number must be compared against
		// every distinct one); the blockable-only set shows the
		// frontier-seeded regime, where per-insert latency is governed by
		// block sizes, not dataset size.
		report.Sizes = append(report.Sizes, measureSize(t, k, "full", nil))
		report.Sizes = append(report.Sizes, measureSize(t, k, "blockable-only", blockableOnly))
	}

	// Equivalence: the smallest size's dataset, batch-loaded from empty,
	// must reproduce the batch chase bit-exactly.
	report.Equivalence = checkEquivFlags(t, maxK/8)

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// blockableOnly keeps the rules with at least one hash-encodable
// conjunct (equality or Soundex): the ones the frontier can seed from
// join indexes.
func blockableOnly(sigma []core.MD) []core.MD {
	var out []core.MD
	for _, md := range sigma {
		for _, c := range md.LHS {
			if similarity.IsEq(c.Op) || c.Op.Name() == "soundex" {
				out = append(out, md)
				break
			}
		}
	}
	return out
}

func measureSize(t *testing.T, k int, name string, filter func([]core.MD) []core.MD) sizeMeasure {
	t.Helper()
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := gen.DedupMDs(ctx)
	if filter != nil {
		sigma = filter(sigma)
	}
	n := ds.Credit.Len()
	timed := 100
	if timed > n/2 {
		timed = n / 2
	}

	// Warm load: everything but the tail, in one batch chase.
	head := record.NewInstance(ds.Credit.Rel)
	for _, tup := range ds.Credit.Tuples[:n-timed] {
		if _, err := head.AppendWithID(tup.ID, slices.Clone(tup.Values)); err != nil {
			t.Fatal(err)
		}
	}
	e, err := New(ctx, sigma)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := e.InsertBatch(head); err != nil {
		t.Fatal(err)
	}
	loadSec := time.Since(start).Seconds()

	// Stream the tail one record at a time, timing each insert.
	lat := make([]float64, 0, timed)
	for _, tup := range ds.Credit.Tuples[n-timed:] {
		t0 := time.Now()
		if _, err := e.InsertTuple(tup); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, float64(time.Since(t0).Microseconds()))
	}
	sort.Float64s(lat)
	var sum, max float64
	for _, v := range lat {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(lat))

	// The alternative: a full re-chase of the final dataset.
	d, err := record.NewPairInstance(ctx, ds.Credit, ds.Credit)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := semantics.Enforce(d, sigma); err != nil {
		t.Fatal(err)
	}
	rechaseSec := time.Since(start).Seconds()

	st := e.Stats()
	m := sizeMeasure{
		Sigma:    name,
		HoldersK: k, Records: n,
		BatchLoadSec: round3(loadSec), InsertsTimed: timed,
		PerInsertMeanUS: round3(mean), PerInsertP50US: round3(lat[len(lat)/2]), PerInsertMaxUS: round3(max),
		FullRechaseSec:    round3(rechaseSec),
		SpeedupVsRechase:  round3(rechaseSec * 1e6 / mean),
		TotalApplications: st.Applications,
		Clusters:          st.Clusters,
	}
	t.Logf("%s K=%d records=%d: load %.2fs, per-insert mean %.0fµs p50 %.0fµs max %.0fµs, re-chase %.2fs (%.0fx)",
		name, k, n, loadSec, mean, lat[len(lat)/2], max, rechaseSec, m.SpeedupVsRechase)
	return m
}

func checkEquivFlags(t *testing.T, k int) equivFlags {
	t.Helper()
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := gen.DedupMDs(ctx)
	flags := equivFlags{CheckedRecords: ds.Credit.Len()}

	d, err := record.NewPairInstance(ctx, ds.Credit, ds.Credit)
	if err != nil {
		t.Fatal(err)
	}
	want, err := semantics.Enforce(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ctx, sigma)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.InsertBatch(ds.Credit)
	if err != nil {
		t.Fatal(err)
	}
	flags.BatchBitIdentical = res.Applications == want.Applications && res.Passes == want.Passes
	for i, tup := range e.Instance().Tuples {
		if !slices.Equal(tup.Values, want.Instance.Left.Tuples[i].Values) {
			flags.BatchBitIdentical = false
			break
		}
	}
	if !flags.BatchBitIdentical {
		t.Errorf("InsertBatch diverged from semantics.Enforce at K=%d", k)
	}

	// Stream a fresh copy record-by-record; the result must be stable.
	e2, err := New(ctx, sigma)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range ds.Credit.Tuples {
		if _, err := e2.InsertTuple(tup); err != nil {
			t.Fatal(err)
		}
	}
	d2, err := record.NewPairInstance(ctx, e2.Instance(), e2.Instance())
	if err != nil {
		t.Fatal(err)
	}
	flags.StreamedStable, err = semantics.IsStable(d2, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !flags.StreamedStable {
		t.Error("streamed instance is not stable")
	}
	return flags
}

func round3(v float64) float64 {
	s, _ := strconv.ParseFloat(fmt.Sprintf("%.3f", v), 64)
	return s
}

// BenchmarkStreamInsert measures one streaming insertion into a warm
// enforcer holding ~1800 records (K=1000 corpus).
func BenchmarkStreamInsert(b *testing.B) {
	b.ReportAllocs()
	ds, err := gen.Generate(gen.DefaultConfig(1000))
	if err != nil {
		b.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	e, err := New(ctx, gen.DedupMDs(ctx))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.InsertBatch(ds.Credit); err != nil {
		b.Fatal(err)
	}
	// Fresh inserts: clean copies of existing holders with new ids.
	next := 1 << 22
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := ds.Credit.Tuples[i%ds.Credit.Len()]
		if _, err := e.Insert(next+i, tup.Values); err != nil {
			b.Fatal(err)
		}
	}
}
