package stream

// sideIndex is the growable variant of the worklist chase's join index:
// it maps one side's rows to their current candidate join key and
// buckets rows by key. Unlike the batch version it persists across
// insertions — add registers each new row, set moves a row between
// buckets when a touch changes its key.
type sideIndex struct {
	keys    []uint64
	buckets map[uint64][]int32
}

func newSideIndex() *sideIndex {
	return &sideIndex{buckets: make(map[uint64][]int32)}
}

// add registers row i (== len(keys)) under key.
func (ix *sideIndex) add(i int, key uint64) {
	ix.keys = append(ix.keys, key)
	ix.buckets[key] = append(ix.buckets[key], int32(i))
}

// set updates row i's key, moving it between buckets.
func (ix *sideIndex) set(i int, key uint64) {
	old := ix.keys[i]
	if old == key {
		return
	}
	ids := ix.buckets[old]
	for k, have := range ids {
		if have == int32(i) {
			ids[k] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, old)
	} else {
		ix.buckets[old] = ids
	}
	ix.keys[i] = key
	ix.buckets[key] = append(ix.buckets[key], int32(i))
}

// pairHeap is a min-heap of pair order codes (i1*n + i2), used only for
// the rare mid-scan re-enqueues; the bulk of a scan's candidates
// travels in a sorted slice.
type pairHeap []int64

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mix64 is the splitmix64 finalizer: a bijection on uint64 with full
// avalanche, used to fold multi-field join keys (single-field keys —
// the common case — therefore partition exactly; a fold collision
// between distinct multi-field encodings merely widens a block, which
// visit re-tests).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
