package stream

import (
	"context"
	"fmt"
	"slices"

	"mdmatch/internal/record"
	"mdmatch/internal/values"
)

// Journal records the Enforcer's successful mutations for durability
// (internal/store implements it with a write-ahead log). The enforcer
// calls the journal under its insertion lock, after validating a
// mutation and before any state changes, so the journal holds exactly
// the successful insertions in enforcement order — and enforcement
// order is the state: online enforcement is order-sensitive
// (TestStreamNotConfluentWithBatch), so faithful recovery must replay
// the journal verbatim. A journal error aborts the mutation.
type Journal interface {
	// LogInsert records one Insert (id + original values, pre-chase).
	LogInsert(id int, vals []string) error
	// LogBatch records one InsertBatch (all rows, in instance order).
	LogBatch(in *record.Instance) error
}

// CtxJournal is the optional context-aware extension of Journal. A
// journal implementing it receives the insertion's context, carrying
// the request's trace span and request id (internal/trace), so a WAL
// append can record itself as a child span and tag its log lines. The
// enforcer prefers these methods when present; the base Journal
// interface is unchanged, so existing implementations keep working.
type CtxJournal interface {
	Journal
	// LogInsertCtx is LogInsert with the insertion's context.
	LogInsertCtx(ctx context.Context, id int, vals []string) error
	// LogBatchCtx is LogBatch with the insertion's context.
	LogBatchCtx(ctx context.Context, in *record.Instance) error
}

// SetJournal attaches a mutation journal. Recovery wires it AFTER
// replaying history into the enforcer, so replayed insertions are not
// re-journaled; from then on every successful Insert/InsertBatch is
// logged before it mutates state.
func (e *Enforcer) SetJournal(j Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
}

// JournalError wraps a journal append failure: the mutation was valid
// but could not be made durable, so it was NOT applied. Services use
// errors.As to map it to a server-side failure (5xx) instead of a
// client error.
type JournalError struct{ Err error }

func (e *JournalError) Error() string { return "stream: journal: " + e.Err.Error() }
func (e *JournalError) Unwrap() error { return e.Err }

// ClusterRuleIndices returns the Σ indices whose LHS matches link
// record clusters, ascending (all of Σ unless ClusterRules narrowed
// the set).
func (e *Enforcer) ClusterRuleIndices() []int {
	out := make([]int, 0, len(e.rules))
	for _, r := range e.rules {
		if r.link {
			out = append(out, r.idx)
		}
	}
	return out
}

// State is the serializable persistent state of an Enforcer: everything
// that survives across insertions and cannot be recomputed from the
// rules alone. Verdict caches are deliberately absent — they are pure
// memos over immutable value pairs and rebuild on demand — and so are
// the per-rule join indexes, whose bucket keys embed lazily-assigned
// Soundex code IDs: they are a pure function of the dictionaries and
// rows below, and RestoreState rebuilds them through the same code path
// that built them originally.
type State struct {
	// Dicts holds each column-group dictionary's interned values in ID
	// order, keyed by the group's leader column (the smallest column
	// sharing the dictionary). Dictionaries keep every value ever
	// interned — including pre-resolution originals no current row
	// carries — so restoring them verbatim reproduces ID assignment
	// exactly.
	Dicts []DictState
	// Rows is the maintained instance in insertion (row) order, with
	// current (resolved) values.
	Rows []RowState
	// Clusters lists the non-singleton clusters as ascending member
	// record ids, ordered by cluster id; rows absent from every entry
	// are singletons.
	Clusters [][]int
	// Stats carries the cumulative counters (Records and Clusters are
	// recomputed from the restored state).
	Stats Stats
}

// DictState is one column group's dictionary contents.
type DictState struct {
	Col    int // the group's leader column
	Values []string
}

// RowState is one record of the maintained instance.
type RowState struct {
	ID     int
	Values []string
}

// State captures the enforcer's persistent state. The result is a deep
// copy in deterministic order: capturing the same enforcement history
// always yields byte-identical serializations.
func (e *Enforcer) State() *State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stateLocked()
}

// SnapshotState captures the persistent state together with a
// caller-supplied cursor (typically the journal's last sequence
// number), both read under the insertion lock — no insertion can fall
// between the state and the cursor, so "state@cursor + journal suffix
// after cursor" is exact. The capture is a full string-level deep copy;
// the snapshot write path uses SnapshotCut instead, which captures the
// same cut in O(columns) memcpys and renders strings outside the lock.
func (e *Enforcer) SnapshotState(cursor func() uint64) (*State, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stateLocked(), cursor()
}

// Cut is a consistent point-in-time capture of the enforcer's
// persistent state in its compact columnar form: immutable dictionary
// table views, one ID-array copy per column, row ids, cluster
// memberships and counters, all read at one instant under the insertion
// lock. Capturing a Cut costs memcpys of 4-byte IDs (plus O(1) table
// views — see values.Table), not string clones, so the insertion lock
// is held for milliseconds even at millions of rows; rendering the
// strings (Cut encoding, or State()) happens outside every lock.
//
// Why the capture is sound against concurrent insertions after the
// lock is released:
//
//   - dictionary tables are append-only prefixes (values.Table);
//   - the per-column ID arrays and row ids are copies (cells ARE
//     rewritten in place by later chases, so they cannot be shared);
//   - cluster member slices are copies (unions append in place);
//   - every captured cell ID is below its column's captured table
//     length, because both were read at the same instant.
type Cut struct {
	// Dicts holds each column group's dictionary table view, keyed by
	// the group's leader column, ascending (same order as State.Dicts).
	Dicts []DictCut
	// ColTabs[c] is column c's dictionary table view (columns sharing a
	// dictionary share the identical view).
	ColTabs []values.Table
	// RowIDs holds the record ids in insertion (row) order.
	RowIDs []int
	// Cols[c][r] is the interned ID of row r's resolved value in column
	// c (render via ColTabs[c].Value).
	Cols [][]values.ID
	// Clusters lists the non-singleton clusters exactly as State does.
	Clusters [][]int
	// Stats carries the cumulative counters.
	Stats Stats
}

// SnapshotCut captures the compact consistent cut together with a
// caller-supplied cursor read under the same insertion lock, so "cut @
// cursor + journal suffix after cursor" is exact. This is the snapshot
// write path: unlike SnapshotState it does not clone a single string
// while holding the lock.
func (e *Enforcer) SnapshotCut(cursor func() uint64) (*Cut, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &Cut{Stats: e.stats}
	c.Stats.Records = e.inst.Len()
	c.Stats.Clusters = e.clusters.count
	for _, col := range e.leaderCols() {
		c.Dicts = append(c.Dicts, DictCut{Col: col, Values: e.cols.Dict(col).Snapshot()})
	}
	arity := e.cols.Arity()
	c.ColTabs = make([]values.Table, arity)
	for col := 0; col < arity; col++ {
		c.ColTabs[col] = e.cols.Dict(col).Snapshot()
	}
	rows := e.inst.Len()
	c.RowIDs = make([]int, rows)
	for r, t := range e.inst.Tuples {
		c.RowIDs[r] = t.ID
	}
	// One slab for all columns: arity memcpys, one allocation.
	slab := make([]values.ID, arity*rows)
	c.Cols = make([][]values.ID, arity)
	for col := 0; col < arity; col++ {
		c.Cols[col] = slab[col*rows : (col+1)*rows : (col+1)*rows]
		copy(c.Cols[col], e.cols.Column(col))
	}
	for _, cl := range e.clusters.all() {
		if len(cl.Members) > 1 {
			c.Clusters = append(c.Clusters, slices.Clone(cl.Members))
		}
	}
	return c, cursor()
}

// DictCut is one column group's dictionary table view.
type DictCut struct {
	Col    int // the group's leader column
	Values values.Table
}

// State renders the cut into the string-level State form (used by
// equivalence tests; the snapshot encoder consumes the cut directly).
func (c *Cut) State() *State {
	st := &State{Clusters: c.Clusters, Stats: c.Stats}
	for _, d := range c.Dicts {
		vals := make([]string, d.Values.Len())
		for i := range vals {
			vals[i] = d.Values.Value(i)
		}
		st.Dicts = append(st.Dicts, DictState{Col: d.Col, Values: vals})
	}
	st.Rows = make([]RowState, len(c.RowIDs))
	for r := range c.RowIDs {
		vals := make([]string, len(c.Cols))
		for col := range c.Cols {
			vals[col] = c.ColTabs[col].Value(int(c.Cols[col][r]))
		}
		st.Rows[r] = RowState{ID: c.RowIDs[r], Values: vals}
	}
	return st
}

func (e *Enforcer) stateLocked() *State {
	st := &State{Stats: e.stats}
	st.Stats.Records = e.inst.Len()
	st.Stats.Clusters = e.clusters.count
	for _, col := range e.leaderCols() {
		d := e.cols.Dict(col)
		vals := make([]string, d.Len())
		for i := range vals {
			vals[i] = d.Value(values.ID(i))
		}
		st.Dicts = append(st.Dicts, DictState{Col: col, Values: vals})
	}
	st.Rows = make([]RowState, 0, e.inst.Len())
	for _, t := range e.inst.Tuples {
		st.Rows = append(st.Rows, RowState{ID: t.ID, Values: slices.Clone(t.Values)})
	}
	for _, cl := range e.clusters.all() {
		if len(cl.Members) > 1 {
			st.Clusters = append(st.Clusters, cl.Members)
		}
	}
	return st
}

// leaderCols returns each dictionary group's leader column, ascending.
// The grouping is a pure function of (ctx, Σ), so capture and restore
// agree on it by running the same compilation.
func (e *Enforcer) leaderCols() []int {
	var out []int
	seen := make(map[*values.Dict]bool)
	for c := 0; c < e.cols.Arity(); c++ {
		if d := e.cols.Dict(c); !seen[d] {
			seen[d] = true
			out = append(out, c)
		}
	}
	return out
}

// RestoreState rebuilds a freshly constructed (empty) Enforcer from a
// captured State: dictionaries are re-interned in ID order, rows are
// appended through the normal growth path (which rebuilds the per-rule
// join indexes and the cell registry), cluster links are re-unioned,
// and the counters are restored. The enforcer must have been built with
// the same context and Σ that produced the state — the caller
// (internal/store) guards this with a plan fingerprint.
//
// Everything observable — instance, clusters, dictionaries, future
// enforcement behavior — is identical to the enforcer that captured the
// state; the one caveat is Stats.Chase.LHSEvaluations going forward,
// which counts verdict-cache misses, and the caches restart cold (the
// verdicts themselves are pure and unaffected).
func (e *Enforcer) RestoreState(st *State) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inst.Len() != 0 || e.stats.Inserts != 0 || e.stats.Batches != 0 {
		return fmt.Errorf("stream: restore into a non-empty enforcer")
	}
	leaders := e.leaderCols()
	if len(st.Dicts) != len(leaders) {
		return fmt.Errorf("stream: state has %d dictionaries, rules compile to %d column groups", len(st.Dicts), len(leaders))
	}
	for i, ds := range st.Dicts {
		if ds.Col != leaders[i] {
			return fmt.Errorf("stream: state dictionary %d is for column %d, rules compile group leader %d — state written under different rules?", i, ds.Col, leaders[i])
		}
		d := e.cols.Dict(ds.Col)
		for j, v := range ds.Values {
			if got := d.Intern(v); got != values.ID(j) {
				return fmt.Errorf("stream: column %d dictionary has duplicate value %q at ID %d", ds.Col, v, j)
			}
		}
	}
	for i := range st.Rows {
		if _, err := e.append(st.Rows[i].ID, st.Rows[i].Values); err != nil {
			return fmt.Errorf("stream: restoring row %d: %w", i, err)
		}
	}
	for _, members := range st.Clusters {
		if len(members) < 2 {
			continue
		}
		first, ok := e.rowByID[members[0]]
		if !ok {
			return fmt.Errorf("stream: cluster member %d is not a restored record", members[0])
		}
		for _, id := range members[1:] {
			row, ok := e.rowByID[id]
			if !ok {
				return fmt.Errorf("stream: cluster member %d is not a restored record", id)
			}
			if e.clusters.union(first, row) {
				// The snapshot records membership, not rule history: the
				// trail marks restored links with rule -1 (see LinkEvent).
				e.linkRestored(members[0], id)
			}
		}
	}
	e.stats = st.Stats
	// The verdict caches restart cold: their evaluation counters are 0.
	e.prevEvals = 0
	return nil
}
