// Package stream is the incremental enforcement subsystem: the chase of
// Section 3.1 turned from a batch computation over a static instance
// into an online process over a growing one.
//
// A batch chase (internal/semantics.Enforce) rebuilds its entire world
// per call — dictionaries, verdict caches, blocking joins, the cell
// union-find — and rescans every candidate pair. Under write traffic
// that is wasted work: inserting one record into a stable instance can
// only enable rules on pairs that involve the new record, or pairs its
// firings transitively touch. The Enforcer therefore keeps the chase
// state alive across insertions:
//
//   - the interned value store persists: per-column-group values.Dict
//     dictionaries keep growing, conjunct verdicts accumulate in
//     growable values.Cache memos (map backend — the value universe is
//     no longer fixed, so the batch chase's 2-bit matrices do not
//     apply), and the instance stays dictionary-encoded in a
//     values.Columns view;
//   - each rule's blocking-style join indexes over its hash-encodable
//     conjuncts persist, maintained under the chase's touch callback;
//   - the cell union-find persists and grows by one row of cells per
//     insert;
//   - a record-level union-find (the cluster store) accumulates which
//     records have matched some rule's LHS — the paper's reading of MDs
//     as matching rules — so "which cluster is this record in" is a
//     constant-time query.
//
// Insert seeds the worklist frontier with only the pairs the new
// record's join keys touch (full row/column for rules without
// encodable conjuncts) and then runs the exact worklist chase of
// internal/semantics/worklist.go to a new fixpoint.
//
// # Equivalence contract
//
// Online enforcement is ORDER-SENSITIVE: enforcing as records arrive is
// not the same function as batch-enforcing the final dataset, because
// the chase matches rules against current (already resolved) values,
// and value resolution is not monotone under the similarity operators
// (a grown value can fail a threshold its original passed, and vice
// versa). TestStreamNotConfluentWithBatch pins a concrete instance of
// this divergence. The precise guarantees, both property-tested against
// the frozen seed chase (internal/semantics/seedref):
//
//   - Per insertion: if S is the Enforcer's stable instance and r the
//     new record, the state after Insert(r) — instance, per-insert
//     Applications and Passes, cluster links — is bit-identical to a
//     from-scratch Enforce on the dataset S ∪ {r}. Inductively, after
//     any insertion sequence the Enforcer's state is exactly the
//     left-fold of from-scratch chases over that sequence.
//   - Per batch: InsertBatch(rows) with the instance in state S is
//     bit-identical to a from-scratch Enforce on S ∪ rows. In
//     particular, InsertBatch on an EMPTY Enforcer reproduces the batch
//     chase on the whole dataset exactly — applications, passes, final
//     instance and clusters.
//
// The argument is the worklist argument: S is stable, so no pair of old
// records can fire until a firing touches one of its tuples on a column
// the rule reads or writes; every such touch re-enters the frontier.
// Both loops therefore visit a superset of the pairs that can fire, in
// the same order, and decide each visit from current state alone.
//
// The package supports self-match (deduplication) contexts only: one
// relation matched against itself, which is the shape of a streaming
// ingest workload. Two-table streaming would need a second frontier per
// side but no new ideas.
package stream

import (
	"container/heap"
	"context"
	"fmt"
	"log/slog"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mdmatch/internal/core"
	"mdmatch/internal/metrics"
	"mdmatch/internal/par"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/trace"
	"mdmatch/internal/values"
)

// InsertResult reports what one insertion did.
type InsertResult struct {
	// ID is the record's tuple id in the maintained instance.
	ID int
	// Cluster is the record's cluster id after enforcement: the smallest
	// record id in its cluster (a singleton record is its own cluster).
	Cluster int
	// AppliedMDs lists the indices into Σ of the rules that fired during
	// this insertion, ascending, deduplicated.
	AppliedMDs []int
	// Applications and Passes are the chase counters of this insertion:
	// rule firings, and rule rounds including the fixpoint-confirming
	// round. They equal what a from-scratch Enforce on (stable instance
	// ∪ new record) reports.
	Applications int
	Passes       int
}

// BatchResult reports what one InsertBatch did. The chase counters are
// batch-level: the rows are enforced together, in one chase.
type BatchResult struct {
	// IDs are the tuple ids assigned to the batch rows, in input order.
	IDs []int
	// AppliedMDs, Applications, Passes: as in InsertResult, for the
	// whole batch chase.
	AppliedMDs   []int
	Applications int
	Passes       int
}

// Cluster describes one record cluster.
type Cluster struct {
	// ID is the cluster id: the smallest record id of the cluster.
	ID int
	// Members are the record ids of the cluster, ascending.
	Members []int
}

// Stats is a snapshot of the Enforcer's cumulative counters.
type Stats struct {
	// Records is the number of records in the maintained instance.
	Records int `json:"records"`
	// Clusters is the number of clusters (including singletons).
	Clusters int `json:"clusters"`
	// Inserts counts Insert calls; Batches counts InsertBatch calls.
	Inserts int `json:"inserts"`
	Batches int `json:"batches"`
	// Applications and Passes are summed over all insertions.
	Applications int `json:"applications"`
	Passes       int `json:"passes"`
	// Chase counts the work done across all insertions: candidate pairs
	// examined, actual similarity-operator evaluations (verdict-cache
	// misses), rule firings.
	Chase metrics.ChaseStats `json:"chase"`
}

// RuleStat is one rule's cumulative enforcement telemetry.
type RuleStat struct {
	// Examined counts candidate pairs visited for this rule.
	Examined int64 `json:"examined"`
	// Matched counts visits where the rule's LHS held (the paper's
	// "the records match by this rule").
	Matched int64 `json:"matched"`
	// Fired counts LHS matches that identified unequal RHS cells (chase
	// applications attributed to this rule).
	Fired int64 `json:"fired"`
}

// Observer receives per-insertion measurements. A nil observer (the
// default) costs nothing. Calls are made under the enforcer's insertion
// lock, in serialization order; implementations must be fast and must
// not call back into the Enforcer. An observer that additionally
// implements AttachStream(*Enforcer) is handed the enforcer at
// construction for scrape-time views over Stats/RuleStats/CacheStats.
type Observer interface {
	// InsertObserved reports one Insert: wall latency, the chase rounds
	// and firings it took, and the candidate pairs its frontier visited.
	InsertObserved(seconds float64, passes, applications int, pairsExamined int64)
	// BatchObserved reports one InsertBatch (one chase over rows records).
	BatchObserved(seconds float64, rows, passes, applications int)
}

// WithObserver attaches an instrumentation observer; nil disables.
func WithObserver(o Observer) Option {
	return func(e *Enforcer) error {
		e.obs = o
		return nil
	}
}

// WithLogger attaches a structured logger; nil (the default) disables.
// The enforcer emits one debug-level line per insertion carrying the
// request id threaded through the context (trace.WithRequestID), so an
// id can be followed from the HTTP layer through enforcement into the
// journal. At levels above debug the cost is one Enabled check.
func WithLogger(l *slog.Logger) Option {
	return func(e *Enforcer) error {
		e.logger = l
		return nil
	}
}

// Enforcer is the incremental enforcement engine. All methods are safe
// for concurrent use; insertions serialize on an internal lock, and the
// enforcement outcome is the left-fold of per-insert chases in that
// serialization order (see the package comment for why order matters).
type Enforcer struct {
	mu    sync.Mutex
	ctx   schema.Pair
	sigma []core.MD

	inst *record.Instance
	d    *record.PairInstance

	cols  *values.Columns
	conjs map[conjKey]*values.Cache

	ch       *chase
	clusters *clusterStore
	rules    []*ruleState
	rowByID  map[int]int
	journal  Journal      // nil when the enforcer is not durable
	obs      Observer     // nil when not instrumented
	logger   *slog.Logger // nil when not logging
	sink     TraceSink    // the current insertion's provenance sink (usually nil)
	links    []LinkEvent  // committed cluster-merge provenance, in commit order

	// scan-local state of the rule currently being scanned (the
	// sorted-base + overflow-heap frontier of the worklist chase).
	scanning     *ruleState
	base         []int64
	baseIdx      int
	over         *pairHeap
	overSet      map[int64]struct{}
	curOrd       int64
	ordScratch   []int64
	bitsL, bitsR []bool // dense sweep mode: side membership filters

	applied []int // rule indices fired during the current insertion

	// Parallel chase state (see parallel.go): worker count, speculator,
	// incremental dictionary warm-up cursors, and the operator
	// evaluations performed by speculation workers (merged fills), which
	// the caches' own counters never saw.
	workers   int
	spec      *speculator
	warm      []warmEntry
	specEvals int64

	// pending counts insert operations in flight (queued on the
	// insertion lock or chasing); a service's admission control reads it
	// as the write-side queue depth.
	pending atomic.Int64

	stats     Stats
	prevEvals int64 // operator evaluations already attributed to stats
}

// QueueDepth returns the number of insert operations currently in
// flight: waiting on the insertion lock or running their chase. It is
// the write-side backlog an admission controller sheds load against.
func (e *Enforcer) QueueDepth() int {
	return int(e.pending.Load())
}

// Option configures an Enforcer.
type Option func(*Enforcer) error

// ClusterRules restricts cluster linking to the given Σ indices: only a
// match of one of these rules identifies two records' clusters. Every
// rule still enforces its RHS — the distinction is the paper's own
// two-level structure: MDs identify ATTRIBUTE values, while record
// identity is decided by designated key rules relative to a target.
// Without this option every rule links, which over-merges when Σ
// contains attribute-repair rules (e.g. "same zip and similar street
// identify city and county" matches neighbors, not duplicates).
func ClusterRules(indices ...int) Option {
	return func(e *Enforcer) error {
		for _, r := range e.rules {
			r.link = false
		}
		for _, i := range indices {
			if i < 0 || i >= len(e.rules) {
				return fmt.Errorf("stream: cluster rule index %d out of range (Σ has %d rules)", i, len(e.rules))
			}
			e.rules[i].link = true
		}
		return nil
	}
}

// New builds an Enforcer for a self-match context: ctx.Left and
// ctx.Right must be the same relation. The rules are validated and
// compiled once; the instance starts empty.
func New(ctx schema.Pair, sigma []core.MD, opts ...Option) (*Enforcer, error) {
	if ctx.Left != ctx.Right {
		return nil, fmt.Errorf("stream: enforcer requires a self-match context, got (%s, %s)",
			ctx.Left.Name(), ctx.Right.Name())
	}
	e := &Enforcer{ctx: ctx, sigma: slices.Clone(sigma), workers: 1}
	e.inst = record.NewInstance(ctx.Left)
	var err error
	e.d, err = record.NewPairInstance(ctx, e.inst, e.inst)
	if err != nil {
		return nil, err
	}
	if err := e.compile(); err != nil {
		return nil, err
	}
	e.ch = newChase(ctx.Left.Arity())
	e.ch.onTouch = e.touched
	e.clusters = newClusterStore()
	e.rowByID = make(map[int]int)
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if e.workers > 1 {
		e.initParallel()
	}
	if a, ok := e.obs.(interface{ AttachStream(*Enforcer) }); ok {
		a.AttachStream(e)
	}
	return e, nil
}

// Relation returns the relation the Enforcer deduplicates.
func (e *Enforcer) Relation() *schema.Relation { return e.ctx.Left }

// Sigma returns the enforced rules (callers must not mutate).
func (e *Enforcer) Sigma() []core.MD { return e.sigma }

// Len returns the number of records in the maintained instance.
func (e *Enforcer) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inst.Len()
}

// Insert appends one record with the given tuple id and positional
// values and enforces Σ to a new fixpoint. The values slice is not
// retained. Inserting an existing id is an error (enforcement cannot be
// undone, so records cannot be replaced).
func (e *Enforcer) Insert(id int, vals []string) (InsertResult, error) {
	return e.InsertCtx(context.Background(), id, vals)
}

// InsertCtx is Insert with cancellation. Cancellation is honored only
// BEFORE the record is journaled and the chase starts — at entry and
// after the insertion lock is acquired (where a request can have sat
// queued for a while). Once the chase runs the insert always completes:
// aborting a chase mid-fixpoint would leave enforcement state that no
// WAL replay reproduces, so "cancel" past that point would be unsound,
// and the chase itself is short (it is one insert's worth of work).
func (e *Enforcer) InsertCtx(ctx context.Context, id int, vals []string) (InsertResult, error) {
	var start time.Time
	if e.obs != nil {
		start = time.Now() // before the lock: queueing is part of latency
	}
	ctx, sp := trace.StartSpan(ctx, "stream.insert")
	defer sp.End()
	cancellable := ctx.Done() != nil
	if cancellable {
		if err := ctx.Err(); err != nil {
			return InsertResult{}, err
		}
	}
	e.pending.Add(1)
	defer e.pending.Add(-1)
	e.mu.Lock()
	defer e.mu.Unlock()
	// The abandoned-request check: the lock wait is where a doomed
	// insert burns time, and nothing has been journaled or mutated yet.
	if cancellable {
		if err := ctx.Err(); err != nil {
			return InsertResult{}, err
		}
	}
	// Validate before journaling: the WAL must hold exactly the
	// insertions that succeed, in enforcement order.
	if got, want := len(vals), e.ctx.Left.Arity(); got != want {
		return InsertResult{}, fmt.Errorf("stream: %s expects %d values, got %d for id %d",
			e.ctx.Left.Name(), want, got, id)
	}
	if _, dup := e.rowByID[id]; dup {
		return InsertResult{}, fmt.Errorf("stream: duplicate record id %d", id)
	}
	if e.journal != nil {
		if err := e.logInsert(ctx, id, vals); err != nil {
			return InsertResult{}, &JournalError{Err: fmt.Errorf("insert %d: %w", id, err)}
		}
	}
	row, err := e.append(id, vals)
	if err != nil {
		return InsertResult{}, err // unreachable: validated above
	}
	e.sink = sinkFrom(ctx)
	defer func() { e.sink = nil }()
	e.seedRow(row)
	e.ch.reset()
	pairsBefore := e.stats.Chase.PairsExamined
	apps, passes, err := e.run()
	if err != nil {
		return InsertResult{}, err
	}
	e.stats.Inserts++
	if e.obs != nil {
		e.obs.InsertObserved(time.Since(start).Seconds(), passes, apps,
			e.stats.Chase.PairsExamined-pairsBefore)
	}
	sp.AttrInt("passes", int64(passes))
	sp.AttrInt("applications", int64(apps))
	if e.logger != nil && e.logger.Enabled(ctx, slog.LevelDebug) {
		e.logger.LogAttrs(ctx, slog.LevelDebug, "stream insert",
			slog.String("request_id", trace.RequestID(ctx)),
			slog.Int("id", id),
			slog.Int("applications", apps),
			slog.Int("passes", passes),
		)
	}
	return InsertResult{
		ID:           id,
		Cluster:      e.clusters.clusterID(row),
		AppliedMDs:   e.takeApplied(),
		Applications: apps,
		Passes:       passes,
	}, nil
}

// logInsert journals one insert, preferring the context-aware journal
// (store.CtxJournal) so the WAL append inherits the request's trace
// span and request id.
func (e *Enforcer) logInsert(ctx context.Context, id int, vals []string) error {
	if cj, ok := e.journal.(CtxJournal); ok {
		return cj.LogInsertCtx(ctx, id, vals)
	}
	return e.journal.LogInsert(id, vals)
}

// logBatch is logInsert for batches.
func (e *Enforcer) logBatch(ctx context.Context, in *record.Instance) error {
	if cj, ok := e.journal.(CtxJournal); ok {
		return cj.LogBatchCtx(ctx, in)
	}
	return e.journal.LogBatch(in)
}

// InsertTuple is Insert for a record.Tuple.
func (e *Enforcer) InsertTuple(t *record.Tuple) (InsertResult, error) {
	return e.Insert(t.ID, t.Values)
}

// InsertBatch appends every tuple of in (which must be over the
// Enforcer's relation, with ids disjoint from the instance) and
// enforces Σ once over the whole batch: one chase, bit-identical to a
// from-scratch Enforce on (current instance ∪ batch). On an empty
// Enforcer this reproduces the batch chase on in exactly. The rows are
// interned straight into the columnar store before the chase runs.
func (e *Enforcer) InsertBatch(in *record.Instance) (BatchResult, error) {
	return e.InsertBatchCtx(context.Background(), in)
}

// InsertBatchCtx is InsertBatch with cancellation, honored at the same
// two points as InsertCtx: entry and lock acquisition, never once the
// batch is journaled.
func (e *Enforcer) InsertBatchCtx(ctx context.Context, in *record.Instance) (BatchResult, error) {
	if in.Rel != e.ctx.Left {
		return BatchResult{}, fmt.Errorf("stream: instance is over %s, enforcer expects %s",
			in.Rel.Name(), e.ctx.Left.Name())
	}
	var start time.Time
	if e.obs != nil {
		start = time.Now()
	}
	ctx, sp := trace.StartSpan(ctx, "stream.insert_batch")
	defer sp.End()
	cancellable := ctx.Done() != nil
	if cancellable {
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
	}
	e.pending.Add(1)
	defer e.pending.Add(-1)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cancellable {
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
	}
	// Validate the whole batch before mutating anything: a mid-batch
	// failure must not leave rows appended and seeded but never chased
	// (that would silently break the per-insertion equivalence contract
	// for the NEXT insert, which would consume their leftover frontier).
	arity := e.ctx.Left.Arity()
	batchIDs := make(map[int]struct{}, in.Len())
	for _, t := range in.Tuples {
		if len(t.Values) != arity {
			return BatchResult{}, fmt.Errorf("stream: %s expects %d values, got %d for id %d",
				e.ctx.Left.Name(), arity, len(t.Values), t.ID)
		}
		if _, dup := e.rowByID[t.ID]; dup {
			return BatchResult{}, fmt.Errorf("stream: duplicate record id %d", t.ID)
		}
		if _, dup := batchIDs[t.ID]; dup {
			return BatchResult{}, fmt.Errorf("stream: duplicate record id %d within batch", t.ID)
		}
		batchIDs[t.ID] = struct{}{}
	}
	if e.journal != nil {
		if err := e.logBatch(ctx, in); err != nil {
			return BatchResult{}, &JournalError{Err: fmt.Errorf("batch of %d: %w", in.Len(), err)}
		}
	}
	e.sink = sinkFrom(ctx)
	defer func() { e.sink = nil }()
	res := BatchResult{IDs: make([]int, 0, in.Len())}
	firstRow := e.inst.Len()
	for _, t := range in.Tuples {
		row, err := e.appendRowCore(t.ID, t.Values)
		if err != nil {
			return BatchResult{}, err // unreachable: the batch was validated
		}
		e.seedRow(row)
		res.IDs = append(res.IDs, t.ID)
	}
	e.seedIndexes(firstRow)
	e.ch.reset()
	apps, passes, err := e.run()
	if err != nil {
		return BatchResult{}, err
	}
	e.stats.Batches++
	res.AppliedMDs = e.takeApplied()
	res.Applications = apps
	res.Passes = passes
	if e.obs != nil {
		e.obs.BatchObserved(time.Since(start).Seconds(), in.Len(), passes, apps)
	}
	sp.AttrInt("rows", int64(in.Len()))
	sp.AttrInt("passes", int64(passes))
	sp.AttrInt("applications", int64(apps))
	if e.logger != nil && e.logger.Enabled(ctx, slog.LevelDebug) {
		e.logger.LogAttrs(ctx, slog.LevelDebug, "stream insert batch",
			slog.String("request_id", trace.RequestID(ctx)),
			slog.Int("rows", in.Len()),
			slog.Int("applications", apps),
			slog.Int("passes", passes),
		)
	}
	return res, nil
}

// Record returns the current (resolved) values of a record.
func (e *Enforcer) Record(id int) ([]string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.inst.ByID(id)
	if !ok {
		return nil, false
	}
	return slices.Clone(t.Values), true
}

// ClusterOf returns the cluster of a record.
func (e *Enforcer) ClusterOf(id int) (Cluster, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	row, ok := e.rowByID[id]
	if !ok {
		return Cluster{}, false
	}
	return Cluster{ID: e.clusters.clusterID(row), Members: e.clusters.members(row)}, true
}

// Clusters returns every cluster, ordered by cluster id. Singleton
// records are singleton clusters.
func (e *Enforcer) Clusters() []Cluster {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clusters.all()
}

// Instance returns the maintained stable instance. It is live: callers
// must treat it as read-only and must not hold it across insertions.
func (e *Enforcer) Instance() *record.Instance { return e.inst }

// Stats returns a snapshot of the cumulative counters.
func (e *Enforcer) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Records = e.inst.Len()
	st.Clusters = e.clusters.count
	return st
}

// RuleStats returns per-rule cumulative telemetry, indexed like Σ. The
// counters are kept out of Stats so recovery-equivalence checks on the
// aggregate snapshot stay byte-comparable.
func (e *Enforcer) RuleStats() []RuleStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStat, len(e.rules))
	for i, r := range e.rules {
		out[i] = RuleStat{Examined: r.examined, Matched: r.matched, Fired: r.fired}
	}
	return out
}

// CacheStats returns the cumulative verdict-cache traffic across every
// similarity conjunct: lookups, and the misses that evaluated their
// operator. Under a serial chase misses equal
// Stats().Chase.LHSEvaluations (a parallel chase counts its merged
// speculative evaluations there too); like it, they are excluded from
// recovery equivalence (caches rebuild cold).
func (e *Enforcer) CacheStats() (lookups, misses int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.conjs {
		lookups += c.Lookups()
		misses += c.Evaluations()
	}
	return lookups, misses
}

// append adds one record everywhere growth happens: the instance, the
// columnar interned view, the cell union-find, the cluster store, every
// rule's join indexes and dirty frontier. Batch callers append all row
// cores first and seed the indexes once (see InsertBatch).
func (e *Enforcer) append(id int, vals []string) (int, error) {
	row, err := e.appendRowCore(id, vals)
	if err != nil {
		return 0, err
	}
	e.seedIndexes(row)
	return row, nil
}

// appendRowCore grows the shared per-row state: instance, columnar
// view, cell union-find, cluster store.
func (e *Enforcer) appendRowCore(id int, vals []string) (int, error) {
	t, err := e.inst.AppendWithID(id, vals)
	if err != nil {
		return 0, err
	}
	row := e.inst.Len() - 1
	e.rowByID[id] = row
	e.cols.AppendRow(t.Values)
	e.ch.appendRow(t)
	e.clusters.add(id)
	return row, nil
}

// seedIndexes re-aliases every rule's id slices (AppendRow may have
// reallocated the column slices) and adds rows firstRow.. to the
// blockable rules' join indexes. Rules are mutually independent, so a
// multi-row batch fans out across rules when workers are configured —
// each worker touches only its rules' indexes, and per-rule adds stay
// in row order, so the resulting indexes are identical at any worker
// count. Soundex seed keys are warmed first so workers never race on a
// dictionary's first-use code assignment.
func (e *Enforcer) seedIndexes(firstRow int) {
	n := e.inst.Len()
	workers := 1
	if e.workers > 1 && n-firstRow > 1 {
		e.warmNew()
		workers = e.workers
	}
	par.For(len(e.rules), workers, func(k int) {
		r := e.rules[k]
		r.refresh(e)
		if !r.blockable() {
			return
		}
		for row := firstRow; row < n; row++ {
			r.idxL.add(row, r.key(0, row))
			r.idxR.add(row, r.key(1, row))
		}
	})
}

// seedRow marks a new row dirty on both sides for every rule: the
// worklist frontier starts at exactly the pairs involving the new
// record (its blocking-key joins for blockable rules, its row and
// column for dense rules).
func (e *Enforcer) seedRow(row int) {
	for _, r := range e.rules {
		r.dirtyL[row] = struct{}{}
		r.dirtyR[row] = struct{}{}
	}
}

// takeApplied returns the rule indices fired since the last call,
// sorted and deduplicated.
func (e *Enforcer) takeApplied() []int {
	if len(e.applied) == 0 {
		return nil
	}
	slices.Sort(e.applied)
	out := slices.Clone(slices.Compact(e.applied))
	e.applied = e.applied[:0]
	return out
}

// run is the worklist pass loop: rules in Σ order within
// pass-structured rounds, until a full round fires nothing. It returns
// the applications and passes of this enforcement.
func (e *Enforcer) run() (apps, passes int, err error) {
	if sp := e.spec; sp != nil {
		// Workers must never trigger first-use memoization or index a
		// stamp out of range; the chase itself adds no rows and invents
		// no values, so warming and sizing once per enforcement suffices.
		e.warmNew()
		sp.growStamps(e.inst.Len())
	}
	maxPasses := e.ch.cellCount() + 2
	startApps := e.stats.Applications
	for {
		passes++
		if passes > maxPasses {
			return 0, 0, fmt.Errorf("stream: chase exceeded %d passes (non-terminating value resolution?)", maxPasses)
		}
		fired := false
		for _, r := range e.rules {
			if e.scanRule(r) {
				fired = true
			}
		}
		if !fired {
			break
		}
	}
	e.stats.Passes += passes
	evals := e.operatorEvaluations()
	e.stats.Chase.LHSEvaluations += evals - e.prevEvals
	e.prevEvals = evals
	return e.stats.Applications - startApps, passes, nil
}

func (e *Enforcer) operatorEvaluations() int64 {
	// specEvals are the evaluations speculation workers performed and
	// MergeFills accepted; the caches' own counters never saw them.
	total := e.specEvals
	for _, c := range e.conjs {
		total += c.Evaluations()
	}
	return total
}

// touched is the chase's write-back callback: refresh the interned cell
// id, widen every rule's dirty frontier on relevant columns, and
// re-enqueue pairs ahead of the current scan position.
func (e *Enforcer) touched(ti, ai int, v string) {
	// The chase only moves values between cells of one column group, so
	// the value is already interned in the shared dictionary.
	e.cols.SetKnown(ai, ti, v)
	for _, r := range e.rules {
		if r.relL[ai] {
			r.dirtyL[ti] = struct{}{}
		}
		if r.relR[ai] {
			r.dirtyR[ti] = struct{}{}
		}
	}
	s := e.scanning
	if s == nil {
		return
	}
	left, right := s.relL[ai], s.relR[ai]
	if !left && !right {
		return // the scanning rule's verdicts cannot have changed
	}
	if sp := e.spec; sp != nil {
		// Invalidate this chunk's speculations involving the row: its
		// verdicts for the scanning rule may have changed.
		if left {
			sp.stampL[ti] = sp.clock
		}
		if right {
			sp.stampR[ti] = sp.clock
		}
	}
	if e.bitsL != nil { // dense sweep: widen the filters
		if left {
			e.bitsL[ti] = true
		}
		if right {
			e.bitsR[ti] = true
		}
		return
	}
	n := int64(e.inst.Len())
	if s.blockable() {
		// The touched tuple's join keys may have changed — refresh them,
		// then enqueue the pairs it now joins with.
		if left {
			s.idxL.set(ti, s.key(0, ti))
			for _, j := range s.idxR.buckets[s.idxL.keys[ti]] {
				e.push(int64(ti)*n + int64(j))
			}
		}
		if right {
			s.idxR.set(ti, s.key(1, ti))
			for _, i := range s.idxL.buckets[s.idxR.keys[ti]] {
				e.push(int64(i)*n + int64(ti))
			}
		}
		return
	}
	// Dense rule: the touched tuple's whole row/column re-qualifies.
	if left {
		o := int64(ti) * n
		for j := int64(0); j < n; j++ {
			e.push(o + j)
		}
	}
	if right {
		for i := int64(0); i < n; i++ {
			e.push(i*n + int64(ti))
		}
	}
}

// push enqueues a candidate pair into the current scan if it lies ahead
// of the scan position and is not already pending; pairs behind the
// position stay in the dirty frontier for the next pass.
func (e *Enforcer) push(ord int64) {
	if ord <= e.curOrd {
		return
	}
	if _, ok := slices.BinarySearch(e.base[e.baseIdx:], ord); ok {
		return
	}
	if _, ok := e.overSet[ord]; ok {
		return
	}
	e.overSet[ord] = struct{}{}
	heap.Push(e.over, ord)
}

// scanRule visits this round's candidates of one rule in ascending
// (left, right) order: the dirty frontier enumerated into a sorted
// slice, merged with a small overflow heap that only ever holds pairs
// mid-scan firings enqueued ahead of the position.
func (e *Enforcer) scanRule(r *ruleState) bool {
	n := int64(e.inst.Len())
	base := e.ordScratch[:0]
	if r.blockable() {
		// Keys of tuples touched since this rule's last scan are stale.
		for i := range r.dirtyL {
			r.idxL.set(i, r.key(0, i))
		}
		for j := range r.dirtyR {
			r.idxR.set(j, r.key(1, j))
		}
		for i := range r.dirtyL {
			o := int64(i) * n
			for _, j := range r.idxR.buckets[r.idxL.keys[i]] {
				base = append(base, o+int64(j))
			}
		}
		for j := range r.dirtyR {
			for _, i := range r.idxL.buckets[r.idxR.keys[j]] {
				base = append(base, int64(i)*n+int64(j))
			}
		}
	} else {
		// A dense rule's frontier is the dirty rows × everything plus
		// everything × dirty columns. Materializing the ord codes is
		// ideal for the per-insert case (a handful of dirty rows); when
		// the frontier is large — a batch load marks every row dirty —
		// fall back to the worklist's bit-filter sweep, which enumerates
		// the same pairs in the same order at O(rows) memory.
		if int64(len(r.dirtyL)+len(r.dirtyR))*n > denseMaterializeCap {
			e.ordScratch = base
			return e.scanDenseSweep(r, int(n))
		}
		for i := range r.dirtyL {
			o := int64(i) * n
			for j := int64(0); j < n; j++ {
				base = append(base, o+j)
			}
		}
		for j := range r.dirtyR {
			for i := int64(0); i < n; i++ {
				base = append(base, i*n+int64(j))
			}
		}
	}
	clear(r.dirtyL)
	clear(r.dirtyR)
	if len(base) == 0 {
		e.ordScratch = base
		return false
	}
	slices.Sort(base)
	base = slices.Compact(base) // left and right probes can overlap
	if e.sink != nil {
		e.sink.Candidates(r.idx, len(base))
	}
	var over pairHeap
	e.scanning = r
	e.base, e.baseIdx = base, 0
	e.over, e.overSet = &over, make(map[int64]struct{})
	e.curOrd = -1
	if e.spec != nil && len(base) >= specMinPairs {
		fired := e.commitBlockedSpec(r)
		e.ordScratch = base[:0]
		e.scanning = nil
		e.base, e.baseIdx = nil, 0
		e.over, e.overSet = nil, nil
		return fired
	}
	fired := false
	for {
		var ord int64
		switch {
		case e.baseIdx < len(e.base) && (over.Len() == 0 || e.base[e.baseIdx] < over[0]):
			ord = e.base[e.baseIdx]
			e.baseIdx++
		case over.Len() > 0:
			ord = heap.Pop(&over).(int64)
			delete(e.overSet, ord)
		default:
			e.ordScratch = base[:0]
			e.scanning = nil
			e.base, e.baseIdx = nil, 0
			e.over, e.overSet = nil, nil
			return fired
		}
		e.curOrd = ord
		if e.visit(r, int(ord/n), int(ord%n)) {
			fired = true
		}
	}
}

// denseMaterializeCap bounds the ord codes a dense scan materializes
// (8 MiB of int64) before switching to the bit-filter sweep. A var so
// the parallel property tests can shrink it to exercise the sweep.
var denseMaterializeCap = int64(1) << 20

// scanDenseSweep visits a dense rule's candidates by sweeping the full
// grid with side membership filters, exactly like the batch worklist's
// filtered scan: the boolean check is orders of magnitude cheaper than
// a verdict lookup, and both filters are re-read per cell so mid-row
// touches widen the scan for the current row too.
func (e *Enforcer) scanDenseSweep(r *ruleState, n int) bool {
	e.scanning = r
	e.bitsL = make([]bool, n)
	e.bitsR = make([]bool, n)
	for i := range r.dirtyL {
		e.bitsL[i] = true
	}
	for j := range r.dirtyR {
		e.bitsR[j] = true
	}
	clear(r.dirtyL)
	clear(r.dirtyR)
	if e.spec != nil && int64(n)*int64(n) >= int64(specMinPairs) {
		fired := e.scanDenseSpec(r, n)
		e.scanning = nil
		e.bitsL, e.bitsR = nil, nil
		return fired
	}
	fired := false
	for i1 := 0; i1 < n; i1++ {
		if !e.bitsL[i1] {
			for i2 := 0; i2 < n; i2++ {
				if !e.bitsR[i2] && !e.bitsL[i1] {
					continue
				}
				if e.visit(r, i1, i2) {
					fired = true
				}
			}
			continue
		}
		for i2 := 0; i2 < n; i2++ {
			if e.visit(r, i1, i2) {
				fired = true
			}
		}
	}
	e.scanning = nil
	e.bitsL, e.bitsR = nil, nil
	return fired
}

// visit evaluates one candidate (rule, pair) and fires on a violation.
// The whole decision runs on interned ids; strings are only read on a
// verdict-cache miss. The effects — counters, cluster links, RHS
// identifications, provenance — are applied through the commit-point
// helpers in provenance.go, shared with the parallel chase's
// commitPair so both paths observe identical sequences.
func (e *Enforcer) visit(r *ruleState, i1, i2 int) bool {
	e.noteExamined(r)
	for ci := range r.lhs {
		c := &r.lhs[ci]
		switch c.kind {
		case kindEq:
			if c.lids[i1] != c.rids[i2] {
				return false
			}
		case kindSdx:
			if c.dict.SoundexID(c.lids[i1]) != c.dict.SoundexID(c.rids[i2]) {
				return false
			}
		default: // kindCached
			if !c.cache.Similar(c.lids[i1], c.rids[i2]) {
				return false
			}
		}
	}
	// The pair matches the rule's LHS: if the rule decides record
	// identity, the records are rule-matched (clusters link on matches,
	// not only on value-changing firings — an exact duplicate matches
	// every rule trivially yet fires none).
	e.noteMatched(r, i1, i2)
	e.linkPair(r, i1, i2)
	rhsEqual := true
	for ri := range r.rhs {
		if r.rhs[ri].lids[i1] != r.rhs[ri].rids[i2] {
			rhsEqual = false
			break
		}
	}
	if rhsEqual {
		return false
	}
	e.fire(r, i1, i2)
	return true
}
