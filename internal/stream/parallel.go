package stream

import (
	"container/heap"
	"runtime"

	"mdmatch/internal/par"
	"mdmatch/internal/values"
)

// The deterministic parallel layer of the incremental chase: the same
// speculate/commit protocol as the batch worklist's parallel layer
// (internal/semantics/parallel.go, which documents the protocol and the
// determinism argument in full), adapted to the Enforcer's persistent
// state. In short:
//
//  1. Chunk the current scan's candidate frontier.
//  2. Workers evaluate each candidate's full verdict — LHS conjuncts
//     and the RHS-differs check — on pure reads (interned id slices,
//     pre-warmed derived forms, verdict-cache Peeks); cache misses are
//     computed with values.Cache.Compute and buffered per worker.
//  3. Barrier; merge the buffered fills into the shared caches
//     (values.MergeFills, order-independent).
//  4. Commit the chunk serially in exactly the serial scan's order. A
//     candidate whose tuples a preceding commit touched on a relevant
//     column re-evaluates serially (per-tuple stamps vs the chunk
//     epoch); a valid speculation commits from its verdict.
//
// The stream chase has effects the batch chase lacks, all applied at
// commit and therefore in serial order: cluster linking on any LHS
// match (not just value-changing firings), per-rule telemetry, and the
// provenance hooks of provenance.go (TraceSink, the cluster link
// trail). Speculation records NO provenance — a speculative verdict is
// provisional until its commit — so the provenance stream is
// bit-identical at any worker count.
// The firing sequence — and with it the instance, clusters, applied
// rules, Applications, Passes, PairsExamined, RuleFirings and the
// per-rule counters — is bit-identical to the serial Enforcer at any
// worker count (property-tested in parallel_test.go). LHSEvaluations
// may exceed the serial count by speculations a same-chunk commit made
// unreachable.
//
// One observable difference from workers == 1 exists outside the
// contract: derived Soundex code ids are assigned in dictionary order
// by pre-warming rather than in first-use order, so blockable rules'
// uint64 join keys differ numerically. Bucket membership is unchanged
// (rows share a bucket iff their seed encodings are pairwise equal),
// which is all the scan order depends on.

// specChunk and specMinPairs mirror the batch chase's thresholds:
// candidates speculated per phase, and the frontier size below which a
// scan stays serial. denseMaterializeCap lives in stream.go; all three
// are vars so the property tests can shrink them to force the parallel
// paths on small datasets.
var (
	specChunk    = 1 << 15
	specMinPairs = 2048
)

// TuneSpeculation overrides the thresholds gating the parallel chase
// (chunk size, minimum frontier, dense materialization cap) and returns
// a func restoring the previous values. It exists so tests OUTSIDE this
// package (engine recovery equivalence, bench harnesses) can force the
// speculative paths on datasets far below the production thresholds;
// serving code must not call it. Arguments <= 0 leave the
// corresponding threshold unchanged.
func TuneSpeculation(chunk, minPairs int, denseCap int64) (restore func()) {
	pc, pm, pd := specChunk, specMinPairs, denseMaterializeCap
	if chunk > 0 {
		specChunk = chunk
	}
	if minPairs > 0 {
		specMinPairs = minPairs
	}
	if denseCap > 0 {
		denseMaterializeCap = denseCap
	}
	return func() { specChunk, specMinPairs, denseMaterializeCap = pc, pm, pd }
}

// Speculative verdicts. specNone marks a candidate the parallel phase
// did not evaluate (outside the dense filters at speculation time); it
// never validates, so the commit falls back to a serial visit.
const (
	specNoMatch uint8 = iota // LHS fails: pair only counts as examined
	specMatch                // LHS holds, RHS already equal: links, no firing
	specFire                 // LHS holds, RHS differs: links and fires
	specNone                 // not evaluated speculatively
)

// WithWorkers sets the chase worker count. workers > 1 evaluates each
// scan chunk's LHS verdicts speculatively on worker goroutines and
// commits serially in reference order, keeping every outcome of the
// equivalence contract bit-identical to the serial enforcer (see
// parallel.go); n <= 0 selects GOMAXPROCS. The default is 1: exactly
// the serial chase, no goroutines.
func WithWorkers(n int) Option {
	return func(e *Enforcer) error {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		e.workers = n
		return nil
	}
}

// Workers reports the configured chase worker count.
func (e *Enforcer) Workers() int { return e.workers }

// speculator is the Enforcer's persistent parallel state.
type speculator struct {
	workers int
	// clock advances once per speculation phase; stampL/stampR record
	// the clock value at which a firing last touched the row on a column
	// relevant to the scanning rule. Sized to the instance, grown per
	// enforcement.
	clock          int64
	stampL, stampR []int64
	// verdicts is the reusable per-chunk verdict buffer; fills the
	// per-worker cache-fill buffers (merged at each barrier).
	verdicts []uint8
	fills    [][]values.Fill
}

// warmEntry tracks incremental pre-warming of one dictionary's lazily
// derived forms: everything below cursor is warmed, and the value
// universe only grows, so each enforcement warms just the new tail.
type warmEntry struct {
	dict       *values.Dict
	runes, sdx bool
	cursor     int
}

// initParallel builds the speculator and the warm list once the worker
// count is known (after options).
func (e *Enforcer) initParallel() {
	e.spec = &speculator{
		workers: e.workers,
		fills:   make([][]values.Fill, e.workers),
	}
	byDict := make(map[*values.Dict]int)
	add := func(d *values.Dict, runes, sdx bool) {
		if d == nil {
			return
		}
		i, ok := byDict[d]
		if !ok {
			i = len(e.warm)
			byDict[d] = i
			e.warm = append(e.warm, warmEntry{dict: d})
		}
		e.warm[i].runes = e.warm[i].runes || runes
		e.warm[i].sdx = e.warm[i].sdx || sdx
	}
	for _, r := range e.rules {
		for i := range r.lhs {
			c := &r.lhs[i]
			switch c.kind {
			case kindSdx:
				add(c.dict, false, true)
			case kindCached:
				l, rt := c.cache.RuneDicts()
				add(l, true, false)
				add(rt, true, false)
			}
		}
		// Soundex seed keys read the same code ids as the rule's kindSdx
		// conjunct, whose dictionary the loop above already registered.
	}
}

// warmNew warms every lazily derived form added since the last call, so
// the parallel phases (and the parallel index seeding) perform pure
// reads only. No-op when the worker count is 1.
func (e *Enforcer) warmNew() {
	for i := range e.warm {
		w := &e.warm[i]
		w.cursor = w.dict.WarmDerived(w.cursor, w.runes, w.sdx)
	}
}

// growStamps sizes the speculator's stamps to the instance ahead of an
// enforcement; new rows carry stamp 0, older than every epoch.
func (sp *speculator) growStamps(n int) {
	if len(sp.stampL) < n {
		sp.stampL = append(sp.stampL, make([]int64, n-len(sp.stampL))...)
		sp.stampR = append(sp.stampR, make([]int64, n-len(sp.stampR))...)
	}
}

// specEval computes one candidate's full verdict on pure reads; cache
// misses are evaluated with Compute and buffered for the post-barrier
// merge. The stream compiler has no direct-evaluation conjunct kind, so
// every rule is speculable.
func (e *Enforcer) specEval(r *ruleState, i1, i2 int, buf *[]values.Fill) uint8 {
	for ci := range r.lhs {
		c := &r.lhs[ci]
		switch c.kind {
		case kindEq:
			if c.lids[i1] != c.rids[i2] {
				return specNoMatch
			}
		case kindSdx:
			if c.dict.SoundexID(c.lids[i1]) != c.dict.SoundexID(c.rids[i2]) {
				return specNoMatch
			}
		default: // kindCached
			a, b := c.lids[i1], c.rids[i2]
			v, known := c.cache.Peek(a, b)
			if !known {
				v = c.cache.Compute(a, b)
				*buf = append(*buf, values.Fill{Cache: c.cache, A: a, B: b, Verdict: v})
			}
			if !v {
				return specNoMatch
			}
		}
	}
	for ri := range r.rhs {
		if r.rhs[ri].lids[i1] != r.rhs[ri].rids[i2] {
			return specFire
		}
	}
	return specMatch
}

// commitPair commits one base candidate: from its speculative verdict
// when that is still valid (computed this chunk, and neither row
// touched on a relevant column since the chunk's epoch began), by a
// full serial visit otherwise. The committed effects are exactly
// visit's, including cluster linking and per-rule telemetry.
func (e *Enforcer) commitPair(r *ruleState, i1, i2 int, v uint8, epoch int64) bool {
	sp := e.spec
	if v == specNone || sp.stampL[i1] >= epoch || sp.stampR[i2] >= epoch {
		return e.visit(r, i1, i2)
	}
	e.noteExamined(r)
	if v == specNoMatch {
		return false
	}
	e.noteMatched(r, i1, i2)
	e.linkPair(r, i1, i2)
	if v != specFire {
		return false
	}
	e.fire(r, i1, i2)
	return true
}

// speculate runs one parallel phase over a slice of base ords and
// merges the workers' cache fills, returning the chunk's epoch and the
// verdict slice (valid until the next phase).
func (e *Enforcer) speculate(r *ruleState, ords []int64) (int64, []uint8) {
	sp := e.spec
	sp.clock++
	epoch := sp.clock
	if cap(sp.verdicts) < len(ords) {
		sp.verdicts = make([]uint8, len(ords))
	}
	verdicts := sp.verdicts[:len(ords)]
	n := int64(e.inst.Len())
	par.ForWorker(len(ords), sp.workers, func(wk, k int) {
		ord := ords[k]
		verdicts[k] = e.specEval(r, int(ord/n), int(ord%n), &sp.fills[wk])
	})
	e.specEvals += values.MergeFills(sp.fills)
	return epoch, verdicts
}

// commitBlockedSpec is scanRule's merge loop with chunk-wise
// speculation: speculate the next base chunk, then commit base entries
// and overflow-heap pops in exactly the serial interleaving. Heap
// entries (mid-scan re-enqueues, rare) always take the serial visit
// path — they were never speculated.
func (e *Enforcer) commitBlockedSpec(r *ruleState) bool {
	n := int64(e.inst.Len())
	over := e.over
	fired := false
	for e.baseIdx < len(e.base) || over.Len() > 0 {
		start := e.baseIdx
		end := min(start+specChunk, len(e.base))
		epoch, verdicts := e.speculate(r, e.base[start:end])
		for {
			if e.baseIdx < end && (over.Len() == 0 || e.base[e.baseIdx] < (*over)[0]) {
				ord := e.base[e.baseIdx]
				slot := e.baseIdx - start
				e.baseIdx++
				e.curOrd = ord
				if e.commitPair(r, int(ord/n), int(ord%n), verdicts[slot], epoch) {
					fired = true
				}
				continue
			}
			if over.Len() == 0 {
				break
			}
			if e.baseIdx < len(e.base) && e.base[e.baseIdx] < (*over)[0] {
				break // due after this chunk's base entries: next chunk
			}
			ord := heap.Pop(over).(int64)
			delete(e.overSet, ord)
			e.curOrd = ord
			if e.visit(r, int(ord/n), int(ord%n)) {
				fired = true
			}
		}
	}
	return fired
}

// scanDenseSpec is scanDenseSweep with row-block speculation: evaluate
// a block of grid rows in parallel (cells outside the current side
// filters carry specNone), then commit the block with the serial
// sweep's exact filter logic. A filter widened by a mid-block commit is
// caught twice over: the widening touch stamps the row (invalidating
// its speculations), and the commit re-reads the filters at the same
// program points as the serial loop.
func (e *Enforcer) scanDenseSpec(r *ruleState, n int) bool {
	sp := e.spec
	rows := specChunk / n
	if rows < 1 {
		rows = 1
	}
	fired := false
	for r0 := 0; r0 < n; r0 += rows {
		r1 := min(r0+rows, n)
		sp.clock++
		epoch := sp.clock
		nCells := (r1 - r0) * n
		if cap(sp.verdicts) < nCells {
			sp.verdicts = make([]uint8, nCells)
		}
		verdicts := sp.verdicts[:nCells]
		par.ForWorker(nCells, sp.workers, func(wk, k int) {
			i1 := r0 + k/n
			i2 := k % n
			if !e.bitsL[i1] && !e.bitsR[i2] {
				verdicts[k] = specNone
				return
			}
			verdicts[k] = e.specEval(r, i1, i2, &sp.fills[wk])
		})
		e.specEvals += values.MergeFills(sp.fills)
		for i1 := r0; i1 < r1; i1++ {
			row := (i1 - r0) * n
			if !e.bitsL[i1] {
				for i2 := 0; i2 < n; i2++ {
					if !e.bitsR[i2] && !e.bitsL[i1] {
						continue
					}
					if e.commitPair(r, i1, i2, verdicts[row+i2], epoch) {
						fired = true
					}
				}
				continue
			}
			for i2 := 0; i2 < n; i2++ {
				if e.commitPair(r, i1, i2, verdicts[row+i2], epoch) {
					fired = true
				}
			}
		}
	}
	return fired
}
