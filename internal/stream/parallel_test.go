package stream

import (
	"fmt"
	"slices"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// forceSpeculation shrinks the parallel-chase thresholds so speculation
// engages — with many chunks, commit barriers and invalidation windows
// — on the small property-test datasets, and caps dense
// materialization so the bit-filter sweep (and its parallel path) runs
// too. Defaults are restored when the test ends.
func forceSpeculation(t *testing.T, chunk, minPairs int, denseCap int64) {
	t.Helper()
	oldChunk, oldMin, oldCap := specChunk, specMinPairs, denseMaterializeCap
	specChunk, specMinPairs, denseMaterializeCap = chunk, minPairs, denseCap
	t.Cleanup(func() { specChunk, specMinPairs, denseMaterializeCap = oldChunk, oldMin, oldCap })
}

// TestStreamParallelInsertEquivalence is the per-insertion property
// test of the parallel incremental chase: with speculation forced on
// and workers ∈ {2, 4, 8}, every insertion must remain bit-identical —
// instance, applications, passes, applied rules, clusters — to the
// from-scratch seed chase, exactly as the serial enforcer is. Runs
// under -race in CI at GOMAXPROCS 1 and 4.
func TestStreamParallelInsertEquivalence(t *testing.T) {
	forceSpeculation(t, 16, 1, 1<<20)
	ctx, tuples := shuffledCredit(t, 18, 3)
	for _, workers := range []int{2, 4, 8} {
		checkStreamed(t, fmt.Sprintf("parallel(workers=%d)", workers),
			ctx, gen.DedupMDs(ctx), tuples, gen.DedupClusterRules(), WithWorkers(workers))
	}
}

// TestStreamParallelDenseEquivalence repeats the per-insertion test
// with an all-similarity rule set (every rule scans densely) and a tiny
// materialization cap, so both dense paths — materialized ord codes
// through the chunked commit, and the bit-filter sweep through
// scanDenseSpec — execute speculatively.
func TestStreamParallelDenseEquivalence(t *testing.T) {
	forceSpeculation(t, 8, 1, 4)
	ctx, tuples := shuffledCredit(t, 15, 3)
	d := similarity.DL(0.8)
	sigma := []core.MD{
		core.MustMD(ctx,
			[]core.Conjunct{core.C("cno", d, "cno")},
			[]core.AttrPair{core.P("fn", "fn"), core.P("ln", "ln"), core.P("dob", "dob")}),
		core.MustMD(ctx,
			[]core.Conjunct{core.C("dob", d, "dob"), core.C("ln", d, "ln"), core.C("fn", d, "fn")},
			[]core.AttrPair{core.P("tel", "tel"), core.P("email", "email")}),
	}
	checkStreamed(t, "parallel-dense", ctx, sigma, tuples, nil, WithWorkers(4))
}

// TestStreamParallelBatchEquivalence checks InsertBatch under the
// parallel chase (including the parallel index seeding): on an empty
// enforcer it must still reproduce the batch chase on the whole dataset
// exactly.
func TestStreamParallelBatchEquivalence(t *testing.T) {
	forceSpeculation(t, 32, 1, 1<<20)
	cfg := gen.DefaultConfig(40)
	cfg.Seed = 5
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := gen.DedupMDs(ctx)
	want := oracleEnforce(t, ctx, ds.Credit.Clone(), sigma, nil)
	for _, workers := range []int{2, 8} {
		e, err := New(ctx, sigma, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.InsertBatch(ds.Credit)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("batch(workers=%d)", workers)
		if res.Applications != want.apps || res.Passes != want.passes {
			t.Fatalf("%s: applications/passes = %d/%d, reference = %d/%d",
				label, res.Applications, res.Passes, want.apps, want.passes)
		}
		if !slices.Equal(res.AppliedMDs, want.applied) {
			t.Fatalf("%s: applied MDs = %v, reference = %v", label, res.AppliedMDs, want.applied)
		}
		sameInstance(t, label, e.Instance(), want.inst)
	}
}

// TestStreamParallelCounters pins the deterministic chase counters:
// at every worker count the parallel enforcer must report exactly the
// serial enforcer's PairsExamined, RuleFirings and per-rule telemetry
// (examined/matched/fired are all counted at serial commit), while
// LHSEvaluations may only exceed the serial count (invalidated
// speculations), never undercut it.
func TestStreamParallelCounters(t *testing.T) {
	forceSpeculation(t, 16, 1, 1<<20)
	ctx, tuples := shuffledCredit(t, 20, 5)
	sigma := gen.DedupMDs(ctx)
	run := func(workers int) *Enforcer {
		t.Helper()
		e, err := New(ctx, sigma, ClusterRules(gen.DedupClusterRules()...), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range tuples {
			if _, err := e.InsertTuple(tup); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	serial := run(1)
	ss := serial.Stats()
	for _, workers := range []int{2, 4, 8} {
		e := run(workers)
		st := e.Stats()
		label := fmt.Sprintf("workers=%d", workers)
		if st.Chase.PairsExamined != ss.Chase.PairsExamined {
			t.Errorf("%s: PairsExamined = %d, serial = %d", label, st.Chase.PairsExamined, ss.Chase.PairsExamined)
		}
		if st.Chase.RuleFirings != ss.Chase.RuleFirings {
			t.Errorf("%s: RuleFirings = %d, serial = %d", label, st.Chase.RuleFirings, ss.Chase.RuleFirings)
		}
		if st.Applications != ss.Applications || st.Passes != ss.Passes {
			t.Errorf("%s: Applications/Passes = %d/%d, serial = %d/%d",
				label, st.Applications, st.Passes, ss.Applications, ss.Passes)
		}
		if st.Chase.LHSEvaluations < ss.Chase.LHSEvaluations {
			t.Errorf("%s: LHSEvaluations = %d, below serial %d", label, st.Chase.LHSEvaluations, ss.Chase.LHSEvaluations)
		}
		if !slices.Equal(e.RuleStats(), serial.RuleStats()) {
			t.Errorf("%s: RuleStats = %v, serial = %v", label, e.RuleStats(), serial.RuleStats())
		}
	}
}
