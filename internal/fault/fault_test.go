package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mdmatch/internal/store"
)

// TestPlanCountsAndExactIndex pins the core contract: operations are
// counted per kind, and an injection fires on exactly its 0-based index
// of its own kind, leaving every other operation untouched.
func TestPlanCountsAndExactIndex(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan()
	plan.Inject(Injection{Op: OpWrite, Index: 1, Err: ErrDiskFull})
	fs := Wrap(store.OSFS{}, plan)

	path := filepath.Join(dir, "f")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aa")); err != nil { // write #0: fine
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("bb")); !errors.Is(err, ErrDiskFull) { // write #1: injected
		t.Fatalf("write #1 = %v, want ErrDiskFull", err)
	}
	if !errors.Is(ErrDiskFull, syscall.ENOSPC) {
		t.Fatal("ErrDiskFull does not match syscall.ENOSPC")
	}
	if _, err := f.Write([]byte("cc")); err != nil { // write #2: fine again
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "aacc" {
		t.Fatalf("file = %q, want the non-injected writes only", b)
	}
	c := plan.Counts()
	if c[OpCreate] != 1 || c[OpWrite] != 3 {
		t.Fatalf("counts = %v", c)
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", plan.Injected())
	}
}

// TestPlanSticky pins that a sticky injection fires on every operation
// at or after its index.
func TestPlanSticky(t *testing.T) {
	plan := NewPlan()
	plan.Inject(Injection{Op: OpSync, Index: 1, Sticky: true, Err: ErrIO})
	fs := Wrap(store.OSFS{}, plan)
	dir := t.TempDir()
	if err := fs.SyncDir(dir); err != nil { // sync #0
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := fs.SyncDir(dir); !errors.Is(err, ErrIO) {
			t.Fatalf("sync #%d = %v, want ErrIO", i, err)
		}
	}
	if plan.Injected() != 3 {
		t.Fatalf("Injected = %d, want 3", plan.Injected())
	}
}

// TestCrashHaltsEverything pins crash semantics: the crashed operation
// applies its effect, returns ErrCrashed, and every later operation of
// any kind also fails with ErrCrashed.
func TestCrashHaltsEverything(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan()
	plan.Inject(Injection{Op: OpRename, Index: 0, Crash: true})
	fs := Wrap(store.OSFS{}, plan)

	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(src, dst); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename = %v, want ErrCrashed", err)
	}
	// Crash-AFTER-rename: the rename reached the disk.
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("rename did not apply before the crash: %v", err)
	}
	if !plan.Crashed() {
		t.Fatal("plan not crashed")
	}
	if _, err := fs.ReadFile(dst); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "new")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create after crash = %v, want ErrCrashed", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash = %v, want ErrCrashed", err)
	}
}

// TestTornWrite pins the torn-write model: exactly Bytes leading bytes
// reach the disk before the crash.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan()
	plan.Inject(Injection{Op: OpWrite, Index: 0, Crash: true, Bytes: 3})
	fs := Wrap(store.OSFS{}, plan)

	path := filepath.Join(dir, "f")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrCrashed) || n != 3 {
		t.Fatalf("torn write = (%d, %v), want (3, ErrCrashed)", n, err)
	}
	if err := f.Close(); err != nil { // Close still releases the fd
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abc" {
		t.Fatalf("file = %q, want the 3-byte torn prefix", b)
	}
}

// TestDelayInjection pins that a pure-latency injection stalls the
// operation and then lets it succeed.
func TestDelayInjection(t *testing.T) {
	plan := NewPlan()
	plan.Inject(Injection{Op: OpRead, Index: 0, Delay: 30 * time.Millisecond})
	fs := Wrap(store.OSFS{}, plan)
	dir := t.TempDir()
	start := time.Now()
	if _, err := fs.ReadDir(dir); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("read returned after %v, want the injected delay", d)
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", plan.Injected())
	}
}

// TestOnFault pins the fault callback used for service metrics.
func TestOnFault(t *testing.T) {
	plan := NewPlan()
	var fired []Op
	plan.OnFault(func(op Op) { fired = append(fired, op) })
	plan.Inject(Injection{Op: OpRemove, Index: 0, Err: ErrIO})
	fs := Wrap(store.OSFS{}, plan)
	if err := fs.Remove(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrIO) {
		t.Fatalf("remove = %v, want ErrIO", err)
	}
	if len(fired) != 1 || fired[0] != OpRemove {
		t.Fatalf("OnFault fired = %v", fired)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Injection
	}{
		{"sync@2:eio", Injection{Op: OpSync, Index: 2, Err: ErrIO}},
		{"sync@2", Injection{Op: OpSync, Index: 2, Err: ErrIO}},
		{"write@5+:enospc", Injection{Op: OpWrite, Index: 5, Sticky: true, Err: ErrDiskFull}},
		{"rename@0:crash", Injection{Op: OpRename, Index: 0, Crash: true}},
		{"write@3:torn:17", Injection{Op: OpWrite, Index: 3, Crash: true, Bytes: 17}},
		{"write@3:torn", Injection{Op: OpWrite, Index: 3, Crash: true, Bytes: 4}},
		{"read@0:delay:50ms", Injection{Op: OpRead, Index: 0, Delay: 50 * time.Millisecond}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"", "write", "write@x", "bogus@1", "write@1:what", "read@0:delay", "write@1:torn:-2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestDeterminism pins the no-global-randomness property: the same
// plan against the same workload fails at the same operation every run.
func TestDeterminism(t *testing.T) {
	run := func() (counts map[Op]uint64, failAt int) {
		dir := t.TempDir()
		plan := NewPlan()
		plan.Inject(Injection{Op: OpWrite, Index: 4, Err: ErrDiskFull})
		fs := Wrap(store.OSFS{}, plan)
		f, err := fs.Create(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		failAt = -1
		for i := 0; i < 8; i++ {
			if _, err := f.Write([]byte{byte(i)}); err != nil && failAt < 0 {
				failAt = i
			}
		}
		return plan.Counts(), failAt
	}
	c1, f1 := run()
	c2, f2 := run()
	if f1 != f2 || f1 != 4 {
		t.Fatalf("failure index differs across runs: %d vs %d", f1, f2)
	}
	for _, op := range Ops {
		if c1[op] != c2[op] {
			t.Fatalf("count[%s] differs: %d vs %d", op, c1[op], c2[op])
		}
	}
}
