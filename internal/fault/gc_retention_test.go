package fault

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

func gcSnap(lsn uint64) *store.Snapshot {
	return &store.Snapshot{
		LSN: lsn,
		Stream: &stream.State{
			Dicts: []stream.DictState{{Col: 0, Values: []string{"v"}}},
			Rows:  []stream.RowState{{ID: 1, Values: []string{"v", "v"}}},
		},
	}
}

func countFiles(t *testing.T, dir string) (segs, snaps int) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".log"):
			segs++
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		}
	}
	return segs, snaps
}

// TestRemoveFaultCannotWedgeRetention pins that a failing unlink
// (remove@N:eio) does not wedge garbage collection: the snapshot that
// hit the fault is still installed (the error is reported, not rolled
// back), the next snapshot's GC retries the removal, and the directory
// converges back to the retention bound instead of leaking files
// forever.
func TestRemoveFaultCannotWedgeRetention(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan()
	fp := store.FingerprintOf("gc", "eio")
	// Segment bytes 1: every append rotates, so each snapshot's GC has
	// real segment removals to perform.
	s, err := store.Open(dir, fp, store.WithNoSync(), store.WithFS(Wrap(store.OSFS{}, plan)),
		store.WithSegmentBytes(1), store.WithKeepSnapshots(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lsn := uint64(0)
	appendN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			lsn++
			if err := s.LogInsert(int(lsn), []string{"a", "b"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Two clean cycles so GC is actively removing snapshots and
	// segments.
	for i := 0; i < 3; i++ {
		appendN(10)
		if err := s.WriteSnapshot(gcSnap(lsn)); err != nil {
			t.Fatal(err)
		}
	}

	// Arm: the NEXT unlink fails with EIO (armed through the spec
	// grammar, relative to the removals GC already did).
	inj, err := ParseSpec(fmt.Sprintf("remove@%d:eio", plan.Count(OpRemove)))
	if err != nil {
		t.Fatal(err)
	}
	plan.Inject(inj)
	appendN(10)
	if err := s.WriteSnapshot(gcSnap(lsn)); !errors.Is(err, ErrIO) {
		t.Fatalf("snapshot over failing unlink = %v, want ErrIO surfaced", err)
	}
	if got := s.SnapshotLSNs(); len(got) == 0 || got[len(got)-1] != lsn {
		t.Fatalf("snapshot at %d was not installed despite the GC error (retained: %v)", lsn, got)
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected = %d, want exactly the armed fault", plan.Injected())
	}

	// Recovery: the next cycles must retry the leaked removal and pull
	// the directory back under the retention bound.
	for i := 0; i < 2; i++ {
		appendN(10)
		if err := s.WriteSnapshot(gcSnap(lsn)); err != nil {
			t.Fatalf("cycle %d after fault: %v", i, err)
		}
	}
	segs, snaps := countFiles(t, dir)
	if snaps > 2 {
		t.Fatalf("%d snapshots on disk after recovery, retention keeps 2", snaps)
	}
	if segs > 25 {
		t.Fatalf("%d segment files on disk after recovery, GC is wedged", segs)
	}
	// And the directory still opens and replays cleanly.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir, fp, store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LSN() != lsn {
		t.Fatalf("reopened LSN = %d, want %d", s2.LSN(), lsn)
	}
}
