// Package fault is a deterministic fault-injection layer over the
// store's filesystem abstraction (store.FS). A Plan holds a schedule of
// injections keyed by PER-KIND OPERATION INDEX — "the 3rd fsync fails
// with EIO", "the 5th write returns ENOSPC after 17 bytes", "the
// process crashes right after the 0th rename" — with no global
// randomness anywhere: the same plan against the same workload fails at
// exactly the same byte every run, which is what lets the recovery
// crash-point matrix iterate every cut point exhaustively under -race.
//
// Crash semantics model process death, not an error return the program
// gets to handle: the faulted operation APPLIES its on-disk effect
// first (all of it, or the configured torn prefix for writes), then the
// whole filesystem halts — the crashed call and every call after it
// return ErrCrashed, so the caller can never act on state the "dead"
// process wouldn't have reached. Re-opening the directory with a fresh
// FS is the model of a restart.
package fault

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mdmatch/internal/store"
)

// Injected error classes. ErrDiskFull and ErrIO wrap the corresponding
// errnos so code matching on syscall.ENOSPC / syscall.EIO behaves as it
// would on a real disk.
var (
	// ErrDiskFull is the injected out-of-space failure.
	ErrDiskFull = fmt.Errorf("fault: injected disk full: %w", syscall.ENOSPC)
	// ErrIO is the injected generic I/O failure (a dying disk).
	ErrIO = fmt.Errorf("fault: injected i/o error: %w", syscall.EIO)
	// ErrCrashed marks every operation at and after a crash injection:
	// the modeled process is dead and observes nothing further.
	ErrCrashed = errors.New("fault: filesystem crashed")
)

// Op names one class of filesystem operation for counting and
// injection. Each class has its own independent 0-based index.
type Op string

// The operation classes a Plan counts. MkdirAll is deliberately
// uncounted (it happens once, before any interesting state exists).
const (
	OpCreate   Op = "create"   // Create + OpenAppend
	OpWrite    Op = "write"    // File.Write + WriteFile
	OpSync     Op = "sync"     // File.Sync + SyncDir
	OpRename   Op = "rename"   // Rename
	OpRemove   Op = "remove"   // Remove
	OpRead     Op = "read"     // ReadFile + ReadDir + Stat
	OpTruncate Op = "truncate" // Truncate
)

// Ops lists every counted operation class.
var Ops = []Op{OpCreate, OpWrite, OpSync, OpRename, OpRemove, OpRead, OpTruncate}

// Injection is one scheduled fault: the Index-th operation of kind Op
// misbehaves.
type Injection struct {
	Op    Op
	Index uint64 // 0-based per-kind operation index
	// Sticky fires on EVERY operation at or after Index (a disk that
	// stays full), instead of exactly once.
	Sticky bool
	// Err is the error to return (ErrDiskFull, ErrIO, ...). Ignored
	// when Crash is set (a crash returns ErrCrashed).
	Err error
	// Bytes, for write operations with Crash set, is how many leading
	// bytes reach the disk before the crash — the torn-write model.
	// Ignored without Crash; a crashing non-write op applies fully.
	Bytes int
	// Crash halts the filesystem after applying this operation's
	// on-disk effect (see the package comment).
	Crash bool
	// Delay sleeps before the operation proceeds (which it then does
	// normally unless Err or Crash is also set) — injected latency.
	Delay time.Duration
}

// Plan is a thread-safe schedule of injections plus per-kind operation
// counters. The zero value is unusable; use NewPlan. A Plan is mutable
// while in use so a live-server test can arm an injection after startup
// I/O (whose op counts it need not predict) has already happened.
type Plan struct {
	mu         sync.Mutex
	counts     map[Op]uint64
	injections []Injection
	injected   uint64
	crashed    bool
	onFault    func(Op)
}

// NewPlan returns an empty plan: all operations pass through untouched
// until Inject arms a fault.
func NewPlan() *Plan {
	return &Plan{counts: make(map[Op]uint64)}
}

// Inject arms one scheduled fault. Indices compare against the per-kind
// counters as they stand, so injections armed mid-run are relative to
// the process lifetime, not the call to Inject.
func (p *Plan) Inject(inj Injection) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.injections = append(p.injections, inj)
}

// OnFault registers a callback invoked (without the plan lock) each
// time an injection fires, with the faulted operation kind — the hook a
// service uses to count injected faults in its metrics.
func (p *Plan) OnFault(fn func(Op)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onFault = fn
}

// Counts returns a copy of the per-kind operation counters. A counting
// pass with an empty plan measures how many operations of each kind a
// workload performs — the iteration bounds of a crash-point matrix.
func (p *Plan) Counts() map[Op]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Op]uint64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// Count returns one kind's operation counter.
func (p *Plan) Count(op Op) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[op]
}

// Injected returns how many injections have fired.
func (p *Plan) Injected() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Crashed reports whether a crash injection has halted the filesystem.
func (p *Plan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// step counts one operation of kind op and returns the injection that
// fires on it, if any. It applies Delay itself (outside the lock) and
// latches the crash state; the caller applies Err/Bytes/Crash semantics
// because only it knows the operation's on-disk effect.
func (p *Plan) step(op Op) (Injection, bool, error) {
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return Injection{}, false, ErrCrashed
	}
	idx := p.counts[op]
	p.counts[op] = idx + 1
	var (
		hit    Injection
		ok     bool
		notify func(Op)
	)
	for i := range p.injections {
		inj := p.injections[i]
		if inj.Op != op {
			continue
		}
		if inj.Index == idx || (inj.Sticky && idx >= inj.Index) {
			hit, ok = inj, true
			p.injected++
			notify = p.onFault
			if inj.Crash {
				p.crashed = true
			}
			break
		}
	}
	p.mu.Unlock()
	if ok {
		if notify != nil {
			notify(op)
		}
		if hit.Delay > 0 {
			time.Sleep(hit.Delay)
		}
	}
	return hit, ok, nil
}

// fail maps a fired injection to the error its operation returns.
func (inj Injection) fail() error {
	if inj.Crash {
		return ErrCrashed
	}
	if inj.Err != nil {
		return inj.Err
	}
	if inj.Delay > 0 {
		return nil // pure latency: the operation proceeds
	}
	return ErrIO
}

// FS wraps a store.FS with a fault plan. It satisfies store.FS.
type FS struct {
	inner store.FS
	plan  *Plan
}

var _ store.FS = (*FS)(nil)

// Wrap returns an FS that routes every operation through plan before
// delegating to inner (usually store.OSFS{}).
func Wrap(inner store.FS, plan *Plan) *FS {
	return &FS{inner: inner, plan: plan}
}

// Plan returns the wrapped plan.
func (f *FS) Plan() *Plan { return f.plan }

// run handles the common non-write shape: count, maybe fail, apply,
// maybe crash after applying.
func (f *FS) run(op Op, apply func() error) error {
	inj, ok, err := f.plan.step(op)
	if err != nil {
		return err
	}
	if !ok {
		return apply()
	}
	if inj.Crash {
		// Crash-after-op: the effect reaches disk, the process dies.
		if err := apply(); err != nil {
			return err
		}
		return ErrCrashed
	}
	if ferr := inj.fail(); ferr != nil {
		return ferr
	}
	return apply()
}

// MkdirAll implements store.FS (uncounted; see Ops).
func (f *FS) MkdirAll(dir string) error {
	if f.plan.Crashed() {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

// Create implements store.FS.
func (f *FS) Create(name string) (store.File, error) {
	inj, ok, err := f.plan.step(OpCreate)
	if err != nil {
		return nil, err
	}
	if ok {
		if ferr := inj.fail(); ferr != nil {
			return nil, ferr
		}
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, plan: f.plan}, nil
}

// OpenAppend implements store.FS.
func (f *FS) OpenAppend(name string) (store.File, error) {
	inj, ok, err := f.plan.step(OpCreate)
	if err != nil {
		return nil, err
	}
	if ok {
		if ferr := inj.fail(); ferr != nil {
			return nil, ferr
		}
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, plan: f.plan}, nil
}

// ReadFile implements store.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	var b []byte
	err := f.run(OpRead, func() (e error) { b, e = f.inner.ReadFile(name); return })
	return b, err
}

// Open implements store.FS. The open itself counts as one read
// operation; the streamed Read calls that follow are not individually
// counted (a snapshot's read count would otherwise depend on its size),
// but they observe a crash — a dead filesystem serves no bytes.
func (f *FS) Open(name string) (store.ReaderFile, error) {
	var r store.ReaderFile
	err := f.run(OpRead, func() (e error) { r, e = f.inner.Open(name); return })
	if err != nil {
		return nil, err
	}
	return &faultReader{inner: r, plan: f.plan}, nil
}

// faultReader wraps one open read stream; reads pass through unless the
// filesystem has crashed, Close always passes through (no descriptor
// leaks from a dead test FS).
type faultReader struct {
	inner store.ReaderFile
	plan  *Plan
}

// Read implements store.ReaderFile.
func (f *faultReader) Read(p []byte) (int, error) {
	if f.plan.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Read(p)
}

// Close implements store.ReaderFile.
func (f *faultReader) Close() error { return f.inner.Close() }

// WriteFile implements store.FS.
func (f *FS) WriteFile(name string, data []byte) error {
	inj, ok, err := f.plan.step(OpWrite)
	if err != nil {
		return err
	}
	if ok {
		if inj.Crash {
			n := inj.Bytes
			if n > len(data) {
				n = len(data)
			}
			// Torn replacement: only the prefix reaches disk.
			_ = f.inner.WriteFile(name, data[:n])
			return ErrCrashed
		}
		if ferr := inj.fail(); ferr != nil {
			return ferr
		}
	}
	return f.inner.WriteFile(name, data)
}

// Rename implements store.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	return f.run(OpRename, func() error { return f.inner.Rename(oldpath, newpath) })
}

// Remove implements store.FS.
func (f *FS) Remove(name string) error {
	return f.run(OpRemove, func() error { return f.inner.Remove(name) })
}

// Truncate implements store.FS.
func (f *FS) Truncate(name string, size int64) error {
	return f.run(OpTruncate, func() error { return f.inner.Truncate(name, size) })
}

// Stat implements store.FS.
func (f *FS) Stat(name string) (iofs.FileInfo, error) {
	var fi iofs.FileInfo
	err := f.run(OpRead, func() (e error) { fi, e = f.inner.Stat(name); return })
	return fi, err
}

// ReadDir implements store.FS.
func (f *FS) ReadDir(dir string) ([]iofs.DirEntry, error) {
	var ents []iofs.DirEntry
	err := f.run(OpRead, func() (e error) { ents, e = f.inner.ReadDir(dir); return })
	return ents, err
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(dir string) error {
	return f.run(OpSync, func() error { return f.inner.SyncDir(dir) })
}

// faultFile wraps one open file; Write and Sync are counted, Close
// passes through (a dead filesystem still releases descriptors — a
// crashed test FS must not leak them).
type faultFile struct {
	inner store.File
	plan  *Plan
}

// Write implements store.File.
func (f *faultFile) Write(p []byte) (int, error) {
	inj, ok, err := f.plan.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if ok {
		if inj.Crash {
			n := inj.Bytes
			if n > len(p) {
				n = len(p)
			}
			// Torn write: the leading n bytes reach the disk, then the
			// process dies mid-call.
			if n > 0 {
				if wn, werr := f.inner.Write(p[:n]); werr != nil {
					return wn, werr
				}
			}
			return n, ErrCrashed
		}
		if ferr := inj.fail(); ferr != nil {
			return 0, ferr
		}
	}
	return f.inner.Write(p)
}

// Sync implements store.File.
func (f *faultFile) Sync() error {
	inj, ok, err := f.plan.step(OpSync)
	if err != nil {
		return err
	}
	if ok {
		if inj.Crash {
			// Crash at fsync: the data may or may not be durable; this
			// model keeps what Write already put in the file (the
			// no-flush kernel-page case is the torn-write injection).
			_ = f.inner.Sync()
			return ErrCrashed
		}
		if ferr := inj.fail(); ferr != nil {
			return ferr
		}
	}
	return f.inner.Sync()
}

// Close implements store.File (uncounted, never injected).
func (f *faultFile) Close() error { return f.inner.Close() }

// ParseSpec parses a command-line fault spec into an injection. The
// grammar is op@index[+][:kind[:arg]]:
//
//	sync@2:eio        the 3rd fsync fails with EIO
//	write@5+:enospc   every write from the 6th on fails with ENOSPC
//	rename@0:crash    the process dies right after the 1st rename
//	write@3:torn:17   the 4th write puts 17 bytes on disk, then dies
//	read@0:delay:50ms the 1st read stalls 50ms, then succeeds
//
// The default kind is eio.
func ParseSpec(spec string) (Injection, error) {
	opIdx, rest, _ := strings.Cut(spec, ":")
	opStr, idxStr, found := strings.Cut(opIdx, "@")
	if !found {
		return Injection{}, fmt.Errorf("fault: spec %q: want op@index[:kind[:arg]]", spec)
	}
	op := Op(opStr)
	valid := false
	for _, o := range Ops {
		if op == o {
			valid = true
			break
		}
	}
	if !valid {
		return Injection{}, fmt.Errorf("fault: spec %q: unknown op %q", spec, opStr)
	}
	inj := Injection{Op: op}
	if strings.HasSuffix(idxStr, "+") {
		inj.Sticky = true
		idxStr = idxStr[:len(idxStr)-1]
	}
	idx, err := strconv.ParseUint(idxStr, 10, 64)
	if err != nil {
		return Injection{}, fmt.Errorf("fault: spec %q: bad index: %v", spec, err)
	}
	inj.Index = idx
	kind, arg, _ := strings.Cut(rest, ":")
	switch kind {
	case "", "eio":
		inj.Err = ErrIO
	case "enospc":
		inj.Err = ErrDiskFull
	case "crash":
		inj.Crash = true
	case "torn":
		inj.Crash = true
		n := 4 // default: tear inside the record header
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 0 {
				return Injection{}, fmt.Errorf("fault: spec %q: bad torn byte count %q", spec, arg)
			}
			n = v
		}
		inj.Bytes = n
	case "delay":
		if arg == "" {
			return Injection{}, fmt.Errorf("fault: spec %q: delay needs a duration", spec)
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Injection{}, fmt.Errorf("fault: spec %q: bad duration: %v", spec, err)
		}
		inj.Delay = d
	default:
		return Injection{}, fmt.Errorf("fault: spec %q: unknown kind %q", spec, kind)
	}
	return inj, nil
}
