package engine

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"mdmatch/internal/gen"
	"mdmatch/internal/stream"
)

// ctxTestEngine builds a small memory-only engine with the self-match
// corpus loaded, for the context-propagation tests.
func ctxTestEngine(t *testing.T) (*Engine, []recOp) {
	t.Helper()
	ctx, sigma, ops := recHistory(t, 8, 5)
	plan := selfMatchPlan(t, ctx)
	enf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, WithWorkers(2), WithStream(enf))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		op.apply(t, eng, ctx.Left)
	}
	return eng, ops
}

// TestMatchBatchCtxCancelled pins the cancellation contract on the
// batch read path: an already-cancelled context returns its error
// without matching, and a context cancelled mid-batch stops the worker
// pool promptly instead of matching the remainder for nobody.
func TestMatchBatchCtxCancelled(t *testing.T) {
	eng, _ := ctxTestEngine(t)
	queries := make([][]string, 2048)
	probe := eng.dumpRecs()[0].Values
	for i := range queries {
		queries[i] = probe
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MatchBatchCtx(cancelled, queries); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchBatchCtx with a dead context = %v, want context.Canceled", err)
	}

	// Mid-flight: cancel shortly after the pool starts. The call must
	// return the cancellation well before it could have matched the
	// whole batch serially.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err := eng.MatchBatchCtx(ctx2, queries)
	elapsed := time.Since(start)
	// err may be nil if the batch finished before the cancel landed —
	// both are correct; the regression is hanging or running long after
	// the cancel.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchBatchCtx cancelled mid-flight = %v, want context.Canceled or nil", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("MatchBatchCtx took %v after cancellation", elapsed)
	}

	// A background context still matches everything.
	res, err := eng.MatchBatchCtx(context.Background(), queries[:4])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("MatchBatchCtx returned %d results, want 4", len(res))
	}
}

// TestMatchOneCtxCancelled pins the single-query read path.
func TestMatchOneCtxCancelled(t *testing.T) {
	eng, _ := ctxTestEngine(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MatchOneCtx(cancelled, eng.dumpRecs()[0].Values); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchOneCtx with a dead context = %v, want context.Canceled", err)
	}
}

// TestAddClusteredCtxCancelled pins the write-path contract: a
// cancelled context refuses the insert BEFORE anything is journaled or
// applied — the engine's state is untouched, and the same insert
// succeeds afterwards. Cancellation is only honored before the journal
// write; once journaled, the mutation always completes (aborting a
// half-applied chase would desynchronize the WAL from memory).
func TestAddClusteredCtxCancelled(t *testing.T) {
	eng, ops := ctxTestEngine(t)
	before := eng.Stream().Len()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	fresh := 1 << 28
	vals := slices.Clone(ops[1].vals)
	if _, err := eng.AddClusteredCtx(cancelled, fresh, vals); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddClusteredCtx with a dead context = %v, want context.Canceled", err)
	}
	if got := eng.Stream().Len(); got != before {
		t.Fatalf("cancelled insert still applied: %d -> %d records", before, got)
	}
	if _, err := eng.AddClusteredCtx(context.Background(), fresh, vals); err != nil {
		t.Fatalf("same insert with a live context: %v", err)
	}
	if got := eng.Stream().Len(); got != before+1 {
		t.Fatalf("live insert applied %d records, want %d", got-before, 1)
	}
}
