// Benchmarks of the serving engine against the seed's single-threaded
// drivers: the same RCK rules and blocking keys, executed (a) by the
// interpreted blocking.Block + matching.RuleSet pipeline the experiments
// package uses, and (b) by the compiled engine with 1, 4, and
// GOMAXPROCS workers. Run with:
//
//	go test -bench=EngineVsBaseline -benchmem ./internal/engine/
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

var (
	benchMu    sync.Mutex
	benchCache = map[int]*testSetup{}
)

// benchSetup caches the generated corpus per scale: K=4000 holders yield
// a ≥10k-record query stream (billing side) against a ~7k-record indexed
// store (credit side).
func benchSetup(tb testing.TB, k int) *testSetup {
	tb.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchCache[k]; ok {
		return s
	}
	s := newTestSetup(tb, k)
	benchCache[k] = s
	return s
}

func batchOf(s *testSetup) [][]string {
	batch := make([][]string, len(s.ds.Billing.Tuples))
	for i, t := range s.ds.Billing.Tuples {
		batch[i] = t.Values
	}
	return batch
}

// BenchmarkEngineVsBaseline_Baseline is the seed's driver shape: rebuild
// block partitions, union candidates, interpret the rule set over the
// PairInstance — all single-threaded.
func BenchmarkEngineVsBaseline_Baseline(b *testing.B) {
	s := benchSetup(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := s.baselinePairs(b)
		if matched.Len() == 0 {
			b.Fatal("baseline found no matches")
		}
	}
	b.ReportMetric(float64(len(s.ds.Billing.Tuples)), "records/op")
}

// BenchmarkEngineVsBaseline_Engine serves the identical workload from a
// pre-built engine index with increasing worker counts. The index build
// is excluded (it is paid once per serving process, not per batch).
func BenchmarkEngineVsBaseline_Engine(b *testing.B) {
	s := benchSetup(b, 4000)
	batch := batchOf(s)
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			eng, err := New(s.plan, WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Load(s.ds.Credit); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := eng.MatchBatch(batch)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(batch) {
					b.Fatal("short batch")
				}
			}
			b.StopTimer()
			qps := float64(len(batch)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
		})
	}
}

// BenchmarkEngineLoad measures concurrent index construction.
func BenchmarkEngineLoad(b *testing.B) {
	s := benchSetup(b, 4000)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := New(s.plan, WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Load(s.ds.Credit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatchOne measures single-query latency on the warm index.
func BenchmarkMatchOne(b *testing.B) {
	s := benchSetup(b, 4000)
	eng, err := New(s.plan)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(s.ds.Credit); err != nil {
		b.Fatal(err)
	}
	batch := batchOf(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.MatchOne(batch[i%len(batch)]); err != nil {
			b.Fatal(err)
		}
	}
}
