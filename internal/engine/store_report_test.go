package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// storeReport is the schema of BENCH_store.json, the repo's running
// record of durability costs (written by `make bench-store`): WAL
// append throughput, snapshot size and write time, and what durability
// buys — cold-start recovery from a snapshot against the full re-chase
// a restart would otherwise pay.
type storeReport struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	MaxProcs    int                `json:"gomaxprocs"`
	WAL         walMeasure         `json:"wal"`
	Sizes       []storeSizeMeasure `json:"sizes"`
}

type walMeasure struct {
	// Appends of a 13-column credit row, single-threaded.
	Records             int     `json:"records"`
	BytesPerRecord      float64 `json:"bytes_per_record"`
	AppendsPerSecFsync  float64 `json:"appends_per_sec_fsync"`
	AppendsPerSecNoSync float64 `json:"appends_per_sec_nosync"`
}

type storeSizeMeasure struct {
	HoldersK int `json:"holders_k"`
	Records  int `json:"records"`
	// Snapshot cost: serialize + fsync + rename of the full state.
	SnapshotBytes int64   `json:"snapshot_bytes"`
	SnapshotSec   float64 `json:"snapshot_seconds"`
	// RecoverySec is the cold start: store.Open + engine.New over the
	// snapshotted directory (snapshot restore, empty WAL suffix).
	RecoverySec float64 `json:"recovery_seconds"`
	// RechaseSec is the alternative a restart without durability pays:
	// a fresh engine re-ingesting the corpus through the full batch
	// chase (stream enforcement + indexing).
	RechaseSec       float64 `json:"full_rechase_seconds"`
	SpeedupVsRechase float64 `json:"speedup_vs_full_rechase"`
	// RecoveredEqual: the recovered state is bit-identical to the
	// re-chased state (instance, clusters, dictionaries, counters
	// modulo the cache-miss counter — see internal/store).
	RecoveredEqual bool `json:"recovered_equal"`
	Clusters       int  `json:"clusters"`
}

// TestWriteStoreBenchReport measures durability costs and writes the
// result as JSON. It is skipped unless BENCH_STORE_OUT names the output
// file (wired up as `make bench-store`). BENCH_STORE_K overrides the
// largest corpus scale (default 4000 holders, ~7k records).
func TestWriteStoreBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_STORE_OUT")
	if out == "" {
		t.Skip("set BENCH_STORE_OUT=<path> to write the durability report")
	}
	maxK := 4000
	if v := os.Getenv("BENCH_STORE_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_STORE_K %q: %v", v, err)
		}
		maxK = n
	}
	report := storeReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		WAL:         measureWAL(t),
	}
	for _, k := range []int{maxK / 4, maxK} {
		report.Sizes = append(report.Sizes, measureStoreSize(t, k))
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func measureWAL(t *testing.T) walMeasure {
	t.Helper()
	row := []string{
		"4000123412341234", "123-45-6789", "Augusta", "Byron", "12 St James Square",
		"London", "Westminster", "SW1Y", "555-0100", "ada@example.org", "F",
		"1815-12-10", "visa",
	}
	fp := store.FingerprintOf("bench")
	run := func(n int, opts ...store.Option) (perSec float64, bytes int64) {
		dir := t.TempDir()
		s, err := store.Open(dir, fp, opts...)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := s.LogInsert(i, row); err != nil {
				t.Fatal(err)
			}
		}
		el := time.Since(start).Seconds()
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		for _, p := range segs {
			if fi, err := os.Stat(p); err == nil {
				bytes += fi.Size()
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return float64(n) / el, bytes
	}
	m := walMeasure{Records: 2000}
	var fsBytes int64
	m.AppendsPerSecFsync, fsBytes = run(500)
	m.AppendsPerSecNoSync, _ = run(m.Records, store.WithNoSync())
	m.BytesPerRecord = round3b(float64(fsBytes) / 500)
	m.AppendsPerSecFsync = round3b(m.AppendsPerSecFsync)
	m.AppendsPerSecNoSync = round3b(m.AppendsPerSecNoSync)
	t.Logf("WAL: %.0f appends/s fsync, %.0f appends/s nosync, %.0f B/record",
		m.AppendsPerSecFsync, m.AppendsPerSecNoSync, m.BytesPerRecord)
	return m
}

func measureStoreSize(t *testing.T, k int) storeSizeMeasure {
	t.Helper()
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := gen.DedupMDs(ctx)
	link := gen.DedupClusterRules()
	plan := selfMatchPlan(t, ctx)
	dir := t.TempDir()

	boot := func() (*Engine, *store.Store) {
		enf, err := stream.New(ctx, sigma, stream.ClusterRules(link...))
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(dir, Fingerprint(plan, enf), store.WithNoSync())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(plan, WithStream(enf), WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		return eng, st
	}

	// Ingest the corpus as one journaled batch, snapshot, close.
	eng, st := boot()
	if err := eng.Load(ds.Credit); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapSec := time.Since(start).Seconds()
	var snapBytes int64
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, p := range snaps {
		if fi, err := os.Stat(p); err == nil {
			snapBytes += fi.Size()
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold start: recovery from the snapshot.
	start = time.Now()
	rec, st2 := boot()
	recSec := time.Since(start).Seconds()
	defer st2.Close()

	// The alternative: a fresh (non-durable) engine re-ingesting the
	// corpus — the full batch chase plus indexing a restart would redo.
	enf, err := stream.New(ctx, sigma, stream.ClusterRules(link...))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(plan, WithStream(enf))
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if err := fresh.Load(ds.Credit); err != nil {
		t.Fatal(err)
	}
	rechaseSec := time.Since(start).Seconds()

	equal := func() bool {
		gs, ws := rec.Stream().State(), fresh.Stream().State()
		gs.Stats.Chase.LHSEvaluations = 0
		ws.Stats.Chase.LHSEvaluations = 0
		return deepEqualJSON(gs, ws) && deepEqualJSON(rec.dumpRecs(), fresh.dumpRecs())
	}()
	if !equal {
		t.Errorf("K=%d: recovered state diverged from the re-chased state", k)
	}

	m := storeSizeMeasure{
		HoldersK: k, Records: ds.Credit.Len(),
		SnapshotBytes: snapBytes, SnapshotSec: round3b(snapSec),
		RecoverySec: round3b(recSec), RechaseSec: round3b(rechaseSec),
		SpeedupVsRechase: round3b(rechaseSec / recSec),
		RecoveredEqual:   equal,
		Clusters:         rec.Stream().Stats().Clusters,
	}
	t.Logf("K=%d records=%d: snapshot %.0f KB in %.3fs, recovery %.3fs vs re-chase %.3fs (%.1fx)",
		k, m.Records, float64(snapBytes)/1024, snapSec, recSec, rechaseSec, m.SpeedupVsRechase)
	return m
}

// deepEqualJSON compares two values by their canonical JSON rendering
// (cheap structural equality for report flags).
func deepEqualJSON(a, b any) bool {
	ja, err1 := json.Marshal(a)
	jb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ja) == string(jb)
}

func round3b(v float64) float64 {
	s, _ := strconv.ParseFloat(fmt.Sprintf("%.3f", v), 64)
	return s
}
