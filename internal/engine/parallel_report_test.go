package engine

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// parallelCurvePoint is one workers entry of a scaling curve recorded
// by `make bench-parallel`: the measured value at that worker count and
// its speedup over the workers=1 run of the same measure.
type parallelCurvePoint struct {
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	Value     float64 `json:"value"`
	SpeedupV1 float64 `json:"speedup_vs_1"`
}

// parallelSection is the "parallel" object merged into an existing
// BENCH_*.json by the bench-parallel report tests. GoMaxProcs records
// how many cores the curve actually had — on a 1-core box every
// speedup_vs_1 hovers near 1.0 by construction (goroutines time-slice
// one CPU), which is the non-regression signal, not the scaling signal.
type parallelSection struct {
	GeneratedAt string               `json:"generated_at"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Measure     string               `json:"measure"`
	Unit        string               `json:"unit"`
	Curve       []parallelCurvePoint `json:"curve"`
}

// mergeParallelSection read-modify-writes path, setting only the
// "parallel" key so the report's other sections (written by the main
// bench target, possibly on another run) survive. A missing or
// unreadable file starts fresh.
func mergeParallelSection(t *testing.T, path string, section parallelSection) {
	t.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", path, err)
		}
	}
	doc["parallel"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged parallel section into %s", path)
}

// parallelWorkerCounts is the bench-parallel curve: 1, 2, 4 and
// GOMAXPROCS when that adds a new point.
func parallelWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestWriteParallelBenchReport measures MatchBatch throughput across
// the worker curve and merges the result into BENCH_engine.json's
// "parallel" section (wired up as `make bench-parallel`). Skipped
// unless BENCH_PARALLEL_ENGINE_OUT names the report file.
func TestWriteParallelBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_PARALLEL_ENGINE_OUT")
	if out == "" {
		t.Skip("set BENCH_PARALLEL_ENGINE_OUT=<path> to record the scaling curve")
	}
	k := 4000
	if v := os.Getenv("BENCH_ENGINE_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_ENGINE_K %q: %v", v, err)
		}
		k = n
	}
	s := benchSetup(t, k)
	batch := batchOf(s)

	section := parallelSection{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Measure:     "engine.MatchBatch",
		Unit:        "queries_per_second",
	}
	var oneWorker float64
	for _, workers := range parallelWorkerCounts() {
		eng, err := New(s.plan, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(s.ds.Credit); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.MatchBatch(batch); err != nil { // warm-up
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := eng.MatchBatch(batch); err != nil {
			t.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		p := parallelCurvePoint{
			Workers: workers, Seconds: secs,
			Value: float64(len(batch)) / secs,
		}
		if workers == 1 {
			oneWorker = secs
		}
		if oneWorker > 0 {
			p.SpeedupV1 = oneWorker / secs
		}
		section.Curve = append(section.Curve, p)
	}
	mergeParallelSection(t, out, section)
}
