package engine

import (
	"sync"
	"sync/atomic"
)

// Index is a sharded, mutex-striped in-memory map from blocking-key
// strings to record ids. Shards are selected by key hash, so writers
// touching different keys rarely contend; each shard has its own
// RWMutex, letting concurrent lookups proceed in parallel with each
// other and with writes to other shards. It supports incremental Add
// and Remove so an engine can absorb a stream of new records without a
// full rebuild.
type Index struct {
	shards []indexShard
	mask   uint64
	// entries counts (key, id) postings across all shards.
	entries atomic.Int64
}

type indexShard struct {
	mu      sync.RWMutex
	buckets map[string][]int
}

// shardCount rounds a requested stripe count up to a power of two;
// count <= 0 selects the default of 64.
func shardCount(count int) int {
	if count <= 0 {
		count = 64
	}
	n := 1
	for n < count {
		n <<= 1
	}
	return n
}

// NewIndex builds an index with the given shard count, rounded up to a
// power of two; count <= 0 selects the default of 64 shards.
func NewIndex(count int) *Index {
	n := shardCount(count)
	ix := &Index{shards: make([]indexShard, n), mask: uint64(n - 1)}
	for i := range ix.shards {
		ix.shards[i].buckets = make(map[string][]int)
	}
	return ix
}

// fnv1a hashes the key to pick a shard (FNV-1a, inlined to keep the hot
// path allocation-free).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (ix *Index) shard(key string) *indexShard {
	return &ix.shards[fnv1a(key)&ix.mask]
}

// Add inserts a posting (key -> id). The caller must not insert the
// same posting twice without removing it in between (the engine
// guarantees this by serializing mutations per id); the bucket is not
// scanned for duplicates, keeping inserts O(1) even in hot blocks.
func (ix *Index) Add(key string, id int) {
	s := ix.shard(key)
	s.mu.Lock()
	s.buckets[key] = append(s.buckets[key], id)
	s.mu.Unlock()
	ix.entries.Add(1)
}

// Remove deletes the posting (key -> id) and reports whether it existed.
func (ix *Index) Remove(key string, id int) bool {
	s := ix.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.buckets[key]
	for i, have := range ids {
		if have != id {
			continue
		}
		ids[i] = ids[len(ids)-1]
		ids = ids[:len(ids)-1]
		if len(ids) == 0 {
			delete(s.buckets, key)
		} else {
			s.buckets[key] = ids
		}
		ix.entries.Add(-1)
		return true
	}
	return false
}

// AppendTo appends the ids posted under key to dst and returns the
// extended slice. The copy happens under the shard read lock, so the
// result is a consistent snapshot of the bucket.
func (ix *Index) AppendTo(key string, dst []int) []int {
	s := ix.shard(key)
	s.mu.RLock()
	dst = append(dst, s.buckets[key]...)
	s.mu.RUnlock()
	return dst
}

// Entries returns the number of (key, id) postings.
func (ix *Index) Entries() int { return int(ix.entries.Load()) }

// Keys returns the number of distinct keys.
func (ix *Index) Keys() int {
	total := 0
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.RLock()
		total += len(s.buckets)
		s.mu.RUnlock()
	}
	return total
}

// Shards returns the shard count.
func (ix *Index) Shards() int { return len(ix.shards) }
