package engine

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"mdmatch/internal/record"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
	"mdmatch/internal/trace"
	"mdmatch/internal/values"
)

// Fingerprint renders the full rule configuration of an engine — the
// matching context, the plan's keys, negative rules and blocking key
// specs, and (when a stream enforcer is attached) Σ and the
// cluster-linking rule indices — into the plan fingerprint every WAL
// segment and snapshot header carries. store.Open refuses a data
// directory whose fingerprint differs: the WAL's ordered replay is only
// meaningful against the rules that wrote it.
func Fingerprint(plan *Plan, enf *stream.Enforcer) store.Fingerprint {
	parts := []string{
		"ctx " + plan.ctx.String(),
		"left " + strings.Join(plan.ctx.Left.AttrNames(), ","),
		"right " + strings.Join(plan.ctx.Right.AttrNames(), ","),
	}
	for _, k := range plan.keys {
		parts = append(parts, "key "+k.String())
	}
	for _, n := range plan.negative {
		parts = append(parts, "neg "+n.String())
	}
	for i := range plan.blockers {
		parts = append(parts, "block "+plan.blockers[i].Spec().String())
	}
	if enf != nil {
		for _, md := range enf.Sigma() {
			parts = append(parts, "md "+md.String())
		}
		link := make([]string, 0, 4)
		for _, i := range enf.ClusterRuleIndices() {
			link = append(link, fmt.Sprint(i))
		}
		parts = append(parts, "cluster "+strings.Join(link, ","))
	}
	return store.FingerprintOf(parts...)
}

// Store returns the attached durability store (nil when none).
func (e *Engine) Store() *store.Store { return e.durable }

// Snapshot captures the engine's current state — the enforcer's
// persistent state and the indexed records — and writes it durably to
// the attached store, returning the WAL position it captured. The
// write lock is held only for the capture itself: a columnar cut of
// the enforcer (stream.SnapshotCut, O(columns) memcpys) plus shared
// slice references into the record store, so durable writes
// (AddClustered, Load) stall for microseconds, not for the encode of a
// multi-gigabyte state. Serialization then streams to disk while
// traffic continues (store.WriteSnapshot holds no append lock during
// the write). Queries and removals never block (a removal racing the
// capture is journaled past the snapshot LSN and re-applied on
// recovery, where it is idempotent). Superseded snapshots and WAL
// segments are garbage collected.
func (e *Engine) Snapshot() (uint64, error) {
	return e.SnapshotCtx(context.Background())
}

// SnapshotCtx is Snapshot with the caller's context: the capture and
// write record themselves as an "engine.snapshot" trace span (with the
// store's "store.snapshot" child) under the context's active trace.
func (e *Engine) SnapshotCtx(ctx context.Context) (uint64, error) {
	if e.durable == nil {
		return 0, fmt.Errorf("engine: no store attached")
	}
	ctx, sp := trace.StartSpan(ctx, "engine.snapshot")
	defer sp.End()
	e.writeMu.Lock()
	// Cut and LSN are read under the enforcer's insertion lock, so the
	// pair is exact even against inserts that bypass this engine; the
	// record capture is consistent with the cut because writeMu blocks
	// every durable insert between the two.
	cut, lsn := e.stream.SnapshotCut(e.durable.LSN)
	recs := e.captureRecs()
	e.writeMu.Unlock()
	snap := &store.Snapshot{LSN: lsn, Cut: cut, EngineSrc: recs}
	if err := e.durable.WriteSnapshotCtx(ctx, snap); err != nil {
		return 0, err
	}
	sp.AttrInt("lsn", int64(lsn))
	return lsn, nil
}

// capRec is one captured record: shared references to the storedRec's
// interned row and rendered keys. Both slices are written once at Add
// time and never mutated in place (replacement installs a fresh
// storedRec, removal only drops the map entry), so sharing them after
// the shard locks are released is sound.
type capRec struct {
	id   int
	ids  []values.ID
	keys []string
}

// recSource adapts a captured record set to store.EngineSource,
// rendering values lazily at encode time: LeftStrings takes only
// per-dictionary read locks, and the interner's dictionaries are
// append-only, so IDs captured earlier render to identical strings no
// matter how much the dictionaries have grown since.
type recSource struct {
	e    *Engine
	recs []capRec
}

func (s *recSource) Len() int { return len(s.recs) }

func (s *recSource) Rec(i int, out *store.EngineRec) {
	r := s.recs[i]
	out.ID = r.id
	out.Values = s.e.interner.LeftStrings(r.ids, out.Values[:0])
	out.Keys = r.keys
}

// captureRecs collects the record store's contents in deterministic
// (id) order as shared slice references — O(records) pointer copies,
// no string rendering — for encoding outside the write lock. The
// resulting engine section is byte-identical to dumpRecs' eager copy
// (TestSnapshotEncodeFromCutIdentical).
func (e *Engine) captureRecs() *recSource {
	src := &recSource{e: e, recs: make([]capRec, 0, e.store.len())}
	e.store.each(func(id int, rec storedRec) {
		src.recs = append(src.recs, capRec{id: id, ids: rec.ids, keys: rec.keys})
	})
	slices.SortFunc(src.recs, func(a, b capRec) int { return a.id - b.id })
	return src
}

// dumpRecs serializes the record store in deterministic (id) order. The
// engine retains no raw rows — only interned IDs and rendered blocking
// keys — so values are read back through the interner's dictionaries;
// columns no conjunct reads were never interned and serialize as ""
// (matching never reads them, so recovery is observation-identical).
func (e *Engine) dumpRecs() []store.EngineRec {
	out := make([]store.EngineRec, 0, e.store.len())
	e.store.each(func(id int, rec storedRec) {
		out = append(out, store.EngineRec{
			ID:     id,
			Values: e.interner.LeftStrings(rec.ids, nil),
			Keys:   rec.keys,
		})
	})
	slices.SortFunc(out, func(a, b store.EngineRec) int { return a.ID - b.ID })
	return out
}

// installRec restores one snapshotted record into the store and index:
// the values are re-interned (dictionary IDs are process-local) and the
// blocking keys are installed verbatim as rendered by the writer.
func (e *Engine) installRec(rec store.EngineRec) error {
	if got, want := len(rec.Values), e.plan.ctx.Left.Arity(); got != want {
		return fmt.Errorf("engine: snapshot record %d has %d values, %s expects %d",
			rec.ID, got, e.plan.ctx.Left.Name(), want)
	}
	sr := storedRec{ids: e.interner.InternLeft(rec.Values, nil), keys: rec.Keys}
	e.store.put(rec.ID, sr, func(old storedRec, existed bool) {
		if existed {
			for _, k := range old.keys {
				e.index.Remove(k, rec.ID)
			}
		}
		for _, k := range sr.keys {
			e.index.Add(k, rec.ID)
		}
	})
	return nil
}

// recover rebuilds the engine and its enforcer from the attached store:
// load the newest valid snapshot (older retained ones are fallbacks),
// then replay the WAL suffix in original order through the same code
// paths that produced it — stream.Enforcer.Insert/InsertBatch for
// inserts, the plain index removal for removes. Replay happens before
// the journal is attached, so history is not re-logged.
func (e *Engine) recover() error {
	snap, err := e.durable.LoadSnapshot()
	if err != nil {
		return err
	}
	return e.replayFrom(snap)
}

// replayFrom restores one snapshot (nil: start empty at LSN 0) and
// replays the attached store's WAL suffix. Split from recover so the
// torture tests can rebuild from EVERY retained snapshot, not just the
// newest readable one.
func (e *Engine) replayFrom(snap *store.Snapshot) error {
	from := uint64(1)
	if snap != nil {
		if err := e.stream.RestoreState(snap.Stream); err != nil {
			return err
		}
		for _, rec := range snap.Engine {
			if err := e.installRec(rec); err != nil {
				return err
			}
		}
		from = snap.LSN + 1
	}
	return e.durable.Replay(from, func(r store.Record) error {
		switch r.Op {
		case store.OpInsert:
			if _, err := e.stream.Insert(r.Row.ID, r.Row.Values); err != nil {
				return fmt.Errorf("replaying LSN %d: %w", r.LSN, err)
			}
			return e.addIndexed(r.Row.ID, r.Row.Values)
		case store.OpBatch:
			in := record.NewInstance(e.plan.ctx.Left)
			for _, row := range r.Rows {
				if _, err := in.AppendWithID(row.ID, row.Values); err != nil {
					return fmt.Errorf("replaying LSN %d: %w", r.LSN, err)
				}
			}
			if _, err := e.stream.InsertBatch(in); err != nil {
				return fmt.Errorf("replaying LSN %d: %w", r.LSN, err)
			}
			for _, row := range r.Rows {
				if err := e.addIndexed(row.ID, row.Values); err != nil {
					return err
				}
			}
			return nil
		case store.OpRemove:
			_, err := e.store.delete(r.Row.ID, nil, func(rec storedRec) {
				for _, k := range rec.keys {
					e.index.Remove(k, r.Row.ID)
				}
			})
			return err
		default:
			return fmt.Errorf("replaying LSN %d: unknown op %d", r.LSN, r.Op)
		}
	})
}
