package engine

import (
	"fmt"
	"testing"

	"mdmatch/internal/fault"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
	"slices"
)

// applyOpTolerant is recOp.apply without the t.Fatal: under fault
// injection a journal append MAY fail, and the contract under test is
// exactly that a failed op was never applied. It reports whether the op
// took effect.
func applyOpTolerant(t testing.TB, eng *Engine, rel *schema.Relation, o recOp) error {
	t.Helper()
	switch o.kind {
	case "insert":
		_, err := eng.AddClustered(o.id, o.vals)
		return err
	case "batch":
		in := record.NewInstance(rel)
		for _, tup := range o.rows {
			if _, err := in.AppendWithID(tup.ID, slices.Clone(tup.Values)); err != nil {
				t.Fatal(err) // test bug, not an injected fault
			}
		}
		return eng.Load(in)
	case "remove":
		_, err := eng.RemoveLogged(o.id)
		return err
	}
	t.Fatalf("unknown op kind %q", o.kind)
	return nil
}

// faultClass is one row of the crash-point matrix: the op kind whose
// every index gets an injection, and the injection to arm there.
type faultClass struct {
	name string
	op   fault.Op
	arm  func(idx uint64) fault.Injection
}

// snapEvery is the snapshot cadence of the fault-matrix history. It
// must be identical in the counting pass and every matrix cell so a
// given operation index always lands on the same filesystem call.
const snapEvery = 5

// runFaultHistory drives the shared history against eng: every op is
// applied tolerantly, a snapshot is attempted every snapEvery ops
// (tolerantly — under injection the snapshot path may fail), and the
// store is closed tolerantly. It returns the ops that actually took
// effect, which is the exact state a recovery must reproduce.
func runFaultHistory(t testing.TB, eng *Engine, st *store.Store, ctx schema.Pair, ops []recOp) []recOp {
	t.Helper()
	var applied []recOp
	for i, op := range ops {
		if err := applyOpTolerant(t, eng, ctx.Left, op); err == nil {
			applied = append(applied, op)
		}
		if (i+1)%snapEvery == 0 {
			_, _ = eng.Snapshot() // may fail under injection; retried next cadence
		}
	}
	_ = st.Close() // after a crash injection even Close fails; recovery must cope
	return applied
}

// TestRecoveryEquivalenceUnderFaults is the crash-point matrix: for
// every fault class (disk full, sticky fsync error, torn write + crash,
// crash after rename) and for EVERY index of that class's filesystem
// operation in the history, inject the fault there, run the history
// tolerantly, then recover the directory with a clean filesystem and
// require the recovered engine to be bit-identical to a reference
// engine fed exactly the ops that succeeded. Runs under -race in CI.
//
// The torn-write and crash classes model process death: the faulted
// call applies a prefix (or nothing) on disk and every later filesystem
// call fails, so the directory is left exactly as a kill -9 would leave
// it — including a half-written record or a renamed-but-unsynced
// snapshot — and recovery must repair the tail and land on the
// journaled prefix.
func TestRecoveryEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point matrix is not a -short test")
	}
	ctx, sigma, ops := recHistory(t, 8, 3)
	plan := selfMatchPlan(t, ctx)

	newFaultDurable := func(t *testing.T, dir string, fs store.FS) (*Engine, *store.Store, error) {
		t.Helper()
		enf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
		if err != nil {
			t.Fatal(err)
		}
		// Fsync stays ON (unlike the fast-path recovery tests): the sync
		// class needs real sync calls to inject on, and op indexes must
		// be identical across classes.
		st, err := store.Open(dir, Fingerprint(plan, enf), store.WithFS(fs))
		if err != nil {
			return nil, nil, err
		}
		eng, err := New(plan, WithWorkers(2), WithStream(enf), WithStore(st))
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		return eng, st, nil
	}

	// Counting pass: the same history against an injection-free fault
	// plan, to learn how many filesystem ops of each kind it performs.
	// Injection indexes beyond these counts would never fire.
	countPlan := fault.NewPlan()
	{
		dir := t.TempDir()
		eng, st, err := newFaultDurable(t, dir, fault.Wrap(store.OSFS{}, countPlan))
		if err != nil {
			t.Fatalf("counting pass: %v", err)
		}
		applied := runFaultHistory(t, eng, st, ctx, ops)
		if len(applied) != len(ops) {
			t.Fatalf("counting pass dropped ops: %d/%d applied", len(applied), len(ops))
		}
	}
	counts := countPlan.Counts()

	classes := []faultClass{
		{name: "enospc-write", op: fault.OpWrite, arm: func(idx uint64) fault.Injection {
			return fault.Injection{Op: fault.OpWrite, Index: idx, Err: fault.ErrDiskFull}
		}},
		{name: "fsync-eio-sticky", op: fault.OpSync, arm: func(idx uint64) fault.Injection {
			return fault.Injection{Op: fault.OpSync, Index: idx, Sticky: true, Err: fault.ErrIO}
		}},
		{name: "torn-write-crash", op: fault.OpWrite, arm: func(idx uint64) fault.Injection {
			return fault.Injection{Op: fault.OpWrite, Index: idx, Bytes: 7, Crash: true}
		}},
		{name: "crash-after-rename", op: fault.OpRename, arm: func(idx uint64) fault.Injection {
			return fault.Injection{Op: fault.OpRename, Index: idx, Crash: true}
		}},
	}

	for _, class := range classes {
		class := class
		total := counts[class.op]
		if total == 0 {
			t.Fatalf("%s: history performs no %q ops — the class would never fire", class.name, class.op)
		}
		t.Run(class.name, func(t *testing.T) {
			for idx := uint64(0); idx < total; idx++ {
				label := fmt.Sprintf("%s@%d/%d", class.op, idx, total)
				dir := t.TempDir()

				plan2 := fault.NewPlan()
				plan2.Inject(class.arm(idx))
				var applied []recOp
				eng, st, err := newFaultDurable(t, dir, fault.Wrap(store.OSFS{}, plan2))
				if err == nil {
					applied = runFaultHistory(t, eng, st, ctx, ops)
				}
				// err != nil: the injection fired inside Open itself
				// (e.g. the very first segment-header write). Nothing was
				// applied; recovery must still open the wreckage.
				if plan2.Injected() == 0 {
					t.Fatalf("%s: injection never fired", label)
				}

				// The reference: a memory-only engine fed exactly the ops
				// that succeeded.
				refEnf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
				if err != nil {
					t.Fatal(err)
				}
				ref, err := New(plan, WithWorkers(2), WithStream(refEnf))
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range applied {
					op.apply(t, ref, ctx.Left)
				}

				// Recovery with a clean filesystem, as a restart would.
				rec, st2 := newDurable(t, dir, ctx, sigma, plan)
				sameEngineState(t, label, rec, ref)

				// A recovered directory must be writable again: the next
				// append proves the torn tail really was repaired.
				if _, err := rec.AddClustered(1<<29, slices.Clone(ops[1].vals)); err != nil {
					t.Fatalf("%s: append after recovery: %v", label, err)
				}
				if err := st2.Close(); err != nil {
					t.Fatalf("%s: closing recovered store: %v", label, err)
				}
			}
		})
	}
}
