package engine

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// benchReport is the schema of BENCH_engine.json, the repo's running
// record of engine-vs-baseline throughput (written by `make bench`).
type benchReport struct {
	GeneratedAt string    `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	MaxProcs    int       `json:"gomaxprocs"`
	CorpusK     int       `json:"corpus_k"`
	LeftRecords int       `json:"left_records"`
	Queries     int       `json:"queries"`
	Baseline    measure   `json:"baseline_single_threaded"`
	Engine      []measure `json:"engine"`
}

type measure struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers,omitempty"`
	Seconds   float64 `json:"seconds"`
	QueriesPS float64 `json:"queries_per_second"`
	SpeedupV1 float64 `json:"speedup_vs_1_worker,omitempty"`
}

// TestWriteBenchReport measures engine throughput at 1, 4 and
// GOMAXPROCS workers against the single-threaded baseline driver and
// writes the result as JSON. It is skipped unless BENCH_ENGINE_OUT
// names the output file (wired up as `make bench`), so regular test
// runs stay fast.
func TestWriteBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_ENGINE_OUT")
	if out == "" {
		t.Skip("set BENCH_ENGINE_OUT=<path> to write the throughput report")
	}
	k := 4000
	if v := os.Getenv("BENCH_ENGINE_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_ENGINE_K %q: %v", v, err)
		}
		k = n
	}
	s := benchSetup(t, k)
	batch := batchOf(s)
	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		CorpusK:     k,
		LeftRecords: s.ds.Credit.Len(),
		Queries:     len(batch),
	}

	start := time.Now()
	matched := s.baselinePairs(t)
	base := time.Since(start).Seconds()
	report.Baseline = measure{
		Name: "block+ruleset", Seconds: base,
		QueriesPS: float64(len(batch)) / base,
	}
	if matched.Len() == 0 {
		t.Fatal("baseline found no matches")
	}

	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	var oneWorker float64
	for _, workers := range workerCounts {
		eng, err := New(s.plan, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(s.ds.Credit); err != nil {
			t.Fatal(err)
		}
		// Warm-up pass, then the measured pass.
		if _, err := eng.MatchBatch(batch); err != nil {
			t.Fatal(err)
		}
		start = time.Now()
		if _, err := eng.MatchBatch(batch); err != nil {
			t.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		m := measure{
			Name: "engine", Workers: workers, Seconds: secs,
			QueriesPS: float64(len(batch)) / secs,
		}
		if workers == 1 {
			oneWorker = secs
		} else if oneWorker > 0 {
			m.SpeedupV1 = oneWorker / secs
		}
		report.Engine = append(report.Engine, m)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
