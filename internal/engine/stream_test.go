package engine

import (
	"slices"
	"testing"

	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
	"mdmatch/internal/stream"
)

// newStreamSetup builds an engine with a dedup stream enforcer attached
// to the credit side.
func newStreamSetup(t testing.TB, k int) (*testSetup, *Engine) {
	t.Helper()
	s := newTestSetup(t, k)
	ctx := schema.MustPair(s.ds.Credit.Rel, s.ds.Credit.Rel)
	enf, err := stream.New(ctx, gen.DedupMDs(ctx))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(s.plan, WithWorkers(2), WithStream(enf))
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

// TestEngineStreamWiring checks the composite write path: Load enforces
// the instance as one deterministic batch, Add routes through the
// enforcer, cluster queries answer, and the stream's outcome equals a
// standalone enforcer fed the same sequence.
func TestEngineStreamWiring(t *testing.T) {
	s, eng := newStreamSetup(t, 40)
	if err := eng.Load(s.ds.Credit); err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Stream().Len(), s.ds.Credit.Len(); got != want {
		t.Fatalf("stream holds %d records, want %d", got, want)
	}

	// A standalone enforcer fed the same batch must agree exactly.
	ctx := schema.MustPair(s.ds.Credit.Rel, s.ds.Credit.Rel)
	ref, err := stream.New(ctx, gen.DedupMDs(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InsertBatch(s.ds.Credit); err != nil {
		t.Fatal(err)
	}
	wantCl := ref.Clusters()
	gotCl := eng.Stream().Clusters()
	if len(gotCl) != len(wantCl) {
		t.Fatalf("engine stream has %d clusters, standalone %d", len(gotCl), len(wantCl))
	}
	for i := range gotCl {
		if gotCl[i].ID != wantCl[i].ID || !slices.Equal(gotCl[i].Members, wantCl[i].Members) {
			t.Fatalf("cluster %d: %v vs %v", i, gotCl[i], wantCl[i])
		}
	}

	// Incremental add: a near-duplicate of an indexed record must land
	// in that record's cluster.
	base := s.ds.Credit.Tuples[0]
	dup := slices.Clone(base.Values)
	newID := 1 << 20
	res, err := eng.AddClustered(newID, dup)
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := eng.Stream().ClusterOf(newID)
	if !ok {
		t.Fatal("ClusterOf missing for added record")
	}
	if res.Cluster != cl.ID {
		t.Fatalf("InsertResult.Cluster = %d, ClusterOf = %d", res.Cluster, cl.ID)
	}
	if !slices.Contains(cl.Members, base.ID) {
		t.Errorf("exact duplicate of record %d not clustered with it: %v", base.ID, cl.Members)
	}

	// Insert-once semantics: re-adding the same id is rejected.
	if err := eng.Add(newID, dup); err == nil {
		t.Error("Add accepted a duplicate id with a stream attached")
	}
	// Remove un-indexes but keeps enforcement history.
	if !eng.Remove(newID) {
		t.Error("Remove did not find the added record")
	}
	if _, ok := eng.Stream().ClusterOf(newID); !ok {
		t.Error("cluster history vanished on Remove")
	}
}

// TestEngineStreamValidation checks option validation and the
// no-stream error paths.
func TestEngineStreamValidation(t *testing.T) {
	s := newTestSetup(t, 10)
	// Wrong relation: a billing-side enforcer cannot serve a credit plan.
	ctx := schema.MustPair(s.ds.Billing.Rel, s.ds.Billing.Rel)
	enf, err := stream.New(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s.plan, WithStream(enf)); err == nil {
		t.Error("New accepted a stream enforcer over the wrong relation")
	}
	eng, err := New(s.plan)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stream() != nil {
		t.Error("Stream() non-nil without WithStream")
	}
	if _, err := eng.AddClustered(1, make([]string, s.plan.ctx.Left.Arity())); err == nil {
		t.Error("AddClustered succeeded without a stream enforcer")
	}
}

// TestEngineLoadRejectionConsistent checks that a Load rejected by the
// stream enforcer (duplicate id) leaves the match index untouched: the
// enforcer validates before mutating, and Load enforces before
// indexing, so the two stores cannot diverge.
func TestEngineLoadRejectionConsistent(t *testing.T) {
	s, eng := newStreamSetup(t, 10)
	first := s.ds.Credit.Tuples[0]
	if _, err := eng.AddClustered(first.ID, first.Values); err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(s.ds.Credit); err == nil {
		t.Fatal("Load accepted an instance containing an already-enforced id")
	}
	if got := eng.Len(); got != 1 {
		t.Errorf("rejected Load left %d records in the match index, want 1", got)
	}
	if got := eng.Stream().Len(); got != 1 {
		t.Errorf("rejected Load left %d records in the enforcer, want 1", got)
	}
}
