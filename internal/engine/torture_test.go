package engine

import (
	"fmt"
	"reflect"
	"testing"

	"mdmatch/internal/gen"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// TestSnapshotTortureEveryRetainedCut is the concurrent-snapshot
// torture: a snapshotter hammers Snapshot() while a writer applies the
// op history, with retention disabled so EVERY capture survives. Each
// retained snapshot must then independently recover — restore + WAL
// suffix replay — to exactly the state a serial replay of the full log
// produces. That is the consistent-cut argument made executable: no
// matter where the capture landed relative to in-flight inserts,
// removals and queries, "cut@LSN + suffix after LSN" converges to the
// same final state, bit for bit (LHSEvaluations normalized, as
// everywhere: verdict caches restart cold).
func TestSnapshotTortureEveryRetainedCut(t *testing.T) {
	ctx, sigma, ops := recHistory(t, 250, 11)
	plan := selfMatchPlan(t, ctx)
	dir := t.TempDir()
	enf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, Fingerprint(plan, enf), store.WithNoSync(),
		store.WithKeepSnapshots(1<<20)) // retain everything: the test recovers from every cut
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, WithWorkers(2), WithStream(enf), WithStore(st))
	if err != nil {
		st.Close()
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, op := range ops {
			op.apply(t, eng, ctx.Left)
		}
	}()
	// Snapshot as fast as captures land until the writer drains; each
	// call that finds a new LSN writes one retained snapshot file.
	for {
		select {
		case <-done:
			goto drained
		default:
		}
		if _, err := eng.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
drained:
	if _, err := eng.Snapshot(); err != nil { // final cut at the head
		t.Fatal(err)
	}
	lsns := st.SnapshotLSNs()
	if len(lsns) < 2 {
		t.Fatalf("torture produced %d snapshots; the race never overlapped", len(lsns))
	}
	head := st.LSN()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("torture: %d retained snapshots over %d WAL records", len(lsns), head)

	// Reopen read-only-ish: recovery below replays manually from each
	// retained cut, so the engine is built WITHOUT WithStore (which
	// would auto-recover from the newest snapshot only).
	st2, err := store.Open(dir, Fingerprint(plan, enf), store.WithNoSync(),
		store.WithKeepSnapshots(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	// The serial-replay reference: the same op history applied to a
	// fresh in-memory engine, one op at a time, no store at all. (The
	// WAL prefix is NOT a usable reference — segments behind the oldest
	// retained snapshot are garbage collected, which is exactly why
	// every snapshot must stand on its own.)
	refEnf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(plan, WithWorkers(2), WithStream(refEnf))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		op.apply(t, ref, ctx.Left)
	}

	for _, lsn := range lsns {
		snap, err := st2.LoadSnapshotAt(lsn)
		if err != nil {
			t.Fatalf("snapshot@%d unreadable: %v", lsn, err)
		}
		if snap.LSN != lsn {
			t.Fatalf("snapshot@%d decodes with LSN %d", lsn, snap.LSN)
		}
		enf2, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
		if err != nil {
			t.Fatal(err)
		}
		got, err := New(plan, WithWorkers(2), WithStream(enf2))
		if err != nil {
			t.Fatal(err)
		}
		got.durable = st2 // replay source only; no journal is attached
		if err := got.replayFrom(snap); err != nil {
			t.Fatalf("recover from cut@%d: %v", lsn, err)
		}
		sameEngineState(t, fmt.Sprintf("cut@%d + suffix", lsn), got, ref)
	}
}

// TestCaptureRecsMatchesDump pins the lazy snapshot capture to the
// eager one: captureRecs + Rec rendering must reproduce dumpRecs'
// records exactly (same order, values, keys) — they feed the same
// encoder, so this is what makes the non-stalling capture
// byte-compatible.
func TestCaptureRecsMatchesDump(t *testing.T) {
	ctx, sigma, ops := recHistory(t, 20, 3)
	plan := selfMatchPlan(t, ctx)
	eng, st := newDurable(t, t.TempDir(), ctx, sigma, plan)
	defer st.Close()
	for _, op := range ops {
		op.apply(t, eng, ctx.Left)
	}
	want := eng.dumpRecs()
	src := eng.captureRecs()
	if src.Len() != len(want) {
		t.Fatalf("captureRecs has %d records, dumpRecs %d", src.Len(), len(want))
	}
	var out store.EngineRec
	for i := range want {
		src.Rec(i, &out)
		if out.ID != want[i].ID || !reflect.DeepEqual(out.Values, want[i].Values) ||
			!reflect.DeepEqual(out.Keys, want[i].Keys) {
			t.Fatalf("record %d: capture %+v, dump %+v", i, out, want[i])
		}
	}
}
