package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
)

// testSetup bundles a generated corpus with a compiled plan and the
// pieces the sequential baseline needs.
type testSetup struct {
	ds    *gen.Dataset
	d     *record.PairInstance
	keys  []core.Key
	specs []blocking.KeySpec
	plan  *Plan
	rules *matching.RuleSet
}

func newTestSetup(t testing.TB, k int) *testSetup {
	t.Helper()
	cfg := gen.DefaultConfig(k)
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := gen.Target(ds.Ctx)
	sigma := gen.HolderMDs(ds.Ctx)
	keys, err := core.FindRCKs(ds.Ctx, sigma, target, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys = core.PruneSubsumed(keys)
	if len(keys) > 5 {
		keys = keys[:5]
	}
	specs := []blocking.KeySpec{
		blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode),
		blocking.NewKeySpec(core.P("tel", "phn")),
		blocking.NewKeySpec(core.P("fn", "fn"), core.P("dob", "dob")).
			WithEncoder(0, blocking.SoundexEncode),
	}
	plan, err := Compile(ds.Ctx, keys, specs)
	if err != nil {
		t.Fatal(err)
	}
	return &testSetup{
		ds: ds, d: ds.Pair(), keys: keys, specs: specs,
		plan: plan, rules: matching.NewRuleSet(keys...),
	}
}

// baselinePairs computes the reference result with the seed's
// single-threaded machinery: per-spec blocking.Block candidates, unioned,
// then matching.RuleSet over the candidates.
func (s *testSetup) baselinePairs(t testing.TB) *metrics.PairSet {
	t.Helper()
	union := metrics.NewPairSet()
	for _, ks := range s.specs {
		cands, err := blocking.Block(s.d, ks)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cands.Pairs() {
			union.Add(p)
		}
	}
	matched, err := s.rules.MatchCandidates(s.d, union)
	if err != nil {
		t.Fatal(err)
	}
	return matched
}

func pairsEqual(a, b *metrics.PairSet) bool {
	return a.Len() == b.Len() && a.IntersectCount(b) == a.Len()
}

func TestCompileErrors(t *testing.T) {
	credit := schema.MustStrings("credit", "fn", "ln")
	billing := schema.MustStrings("billing", "fn", "ln")
	ctx := schema.MustPair(credit, billing)
	key := core.Key{Conjuncts: []core.Conjunct{core.Eq("fn", "fn")}}
	spec := blocking.NewKeySpec(core.P("ln", "ln"))

	if _, err := Compile(ctx, nil, []blocking.KeySpec{spec}); err == nil {
		t.Error("want error for empty key set")
	}
	if _, err := Compile(ctx, []core.Key{key}, nil); err == nil {
		t.Error("want error for empty blocking keys")
	}
	bad := core.Key{Conjuncts: []core.Conjunct{core.Eq("nope", "fn")}}
	if _, err := Compile(ctx, []core.Key{bad}, []blocking.KeySpec{spec}); err == nil {
		t.Error("want error for unknown rule attribute")
	}
	badSpec := blocking.NewKeySpec(core.P("fn", "nope"))
	if _, err := Compile(ctx, []core.Key{key}, []blocking.KeySpec{badSpec}); err == nil {
		t.Error("want error for unknown blocking attribute")
	}
}

func TestPlanEvalMatchesRuleSet(t *testing.T) {
	s := newTestSetup(t, 120)
	// Every (left, right) pair of the blocked candidate space must get
	// the same verdict from Plan.EvalPair as from the interpreted
	// RuleSet.Match.
	union := metrics.NewPairSet()
	for _, ks := range s.specs {
		cands, err := blocking.Block(s.d, ks)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cands.Pairs() {
			union.Add(p)
		}
	}
	checked := 0
	for _, p := range union.Pairs() {
		t1, _ := s.d.Left.ByID(p.Left)
		t2, _ := s.d.Right.ByID(p.Right)
		want, err := s.rules.Match(s.d, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.plan.EvalPair(t1.Values, t2.Values); got != want {
			t.Fatalf("EvalPair(%d, %d) = %v, RuleSet.Match = %v", p.Left, p.Right, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no candidate pairs to check")
	}
}

func TestEngineMatchesSequentialBaseline(t *testing.T) {
	s := newTestSetup(t, 250)
	eng, err := New(s.plan, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(s.ds.Credit); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != s.ds.Credit.Len() {
		t.Fatalf("Len = %d, want %d", eng.Len(), s.ds.Credit.Len())
	}
	_, got, err := eng.MatchInstance(s.ds.Billing)
	if err != nil {
		t.Fatal(err)
	}
	want := s.baselinePairs(t)
	if !pairsEqual(got, want) {
		t.Fatalf("engine matched %d pairs, baseline %d (intersection %d)",
			got.Len(), want.Len(), got.IntersectCount(want))
	}
	if want.Len() == 0 {
		t.Fatal("baseline found no matches; test corpus is degenerate")
	}
}

func TestMatchBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	s := newTestSetup(t, 150)
	batch := make([][]string, len(s.ds.Billing.Tuples))
	for i, tu := range s.ds.Billing.Tuples {
		batch[i] = tu.Values
	}
	var reference []Result
	for _, workers := range []int{1, 2, 4, 8} {
		eng, err := New(s.plan, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(s.ds.Credit); err != nil {
			t.Fatal(err)
		}
		results, err := eng.MatchBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = results
			continue
		}
		if !reflect.DeepEqual(results, reference) {
			t.Fatalf("workers=%d: batch results differ from workers=1", workers)
		}
	}
}

// TestConcurrentAddMatchBatch streams half the corpus into the engine
// from several writer goroutines while reader goroutines hammer
// MatchBatch — run under -race this exercises every lock stripe — and
// then asserts the quiesced engine agrees exactly with the sequential
// baseline matcher.
func TestConcurrentAddMatchBatch(t *testing.T) {
	s := newTestSetup(t, 200)
	eng, err := New(s.plan, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	half := len(s.ds.Credit.Tuples) / 2
	for _, tu := range s.ds.Credit.Tuples[:half] {
		if err := eng.AddTuple(tu); err != nil {
			t.Fatal(err)
		}
	}
	rest := s.ds.Credit.Tuples[half:]
	batch := make([][]string, 0, 64)
	for i, tu := range s.ds.Billing.Tuples {
		if i == 64 {
			break
		}
		batch = append(batch, tu.Values)
	}

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(rest); i += writers {
				if err := eng.AddTuple(rest[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := eng.MatchBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if eng.Len() != s.ds.Credit.Len() {
		t.Fatalf("after stream: Len = %d, want %d", eng.Len(), s.ds.Credit.Len())
	}
	_, got, err := eng.MatchInstance(s.ds.Billing)
	if err != nil {
		t.Fatal(err)
	}
	want := s.baselinePairs(t)
	if !pairsEqual(got, want) {
		t.Fatalf("after concurrent stream: engine matched %d pairs, baseline %d (intersection %d)",
			got.Len(), want.Len(), got.IntersectCount(want))
	}
}

func TestAddRemoveUpsert(t *testing.T) {
	credit := schema.MustStrings("credit", "fn", "ln", "zip")
	billing := schema.MustStrings("billing", "fn", "ln", "zip")
	ctx := schema.MustPair(credit, billing)
	key, err := core.NewKey(ctx,
		core.Target{Y1: schema.AttrList{"fn"}, Y2: schema.AttrList{"fn"}},
		[]core.Conjunct{core.Eq("ln", "ln"), core.Eq("zip", "zip")})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(ctx, []core.Key{key}, []blocking.KeySpec{blocking.NewKeySpec(core.P("zip", "zip"))})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, WithWorkers(1), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(1, []string{"Ada", "Lovelace", "07974"}); err != nil {
		t.Fatal(err)
	}
	query := []string{"Ada", "Lovelace", "07974"}
	res, err := eng.MatchOne(query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches, []int{1}) {
		t.Fatalf("Matches = %v, want [1]", res.Matches)
	}

	// Upsert moves the record to a new blocking key.
	if err := eng.Add(1, []string{"Ada", "Lovelace", "10001"}); err != nil {
		t.Fatal(err)
	}
	if res, _ = eng.MatchOne(query); len(res.Matches) != 0 {
		t.Fatalf("after upsert: Matches = %v, want none under old key", res.Matches)
	}
	if res, _ = eng.MatchOne([]string{"Ada", "Lovelace", "10001"}); !reflect.DeepEqual(res.Matches, []int{1}) {
		t.Fatalf("after upsert: Matches = %v, want [1] under new key", res.Matches)
	}
	if eng.Len() != 1 {
		t.Fatalf("after upsert: Len = %d, want 1", eng.Len())
	}

	if !eng.Remove(1) {
		t.Fatal("Remove(1) = false, want true")
	}
	if eng.Remove(1) {
		t.Fatal("second Remove(1) = true, want false")
	}
	if res, _ = eng.MatchOne([]string{"Ada", "Lovelace", "10001"}); len(res.Matches) != 0 {
		t.Fatalf("after remove: Matches = %v, want none", res.Matches)
	}
	st := eng.Stats()
	if st.IndexedRecords != 0 || st.IndexEntries != 0 {
		t.Fatalf("after remove: IndexedRecords=%d IndexEntries=%d, want 0/0", st.IndexedRecords, st.IndexEntries)
	}
}

// TestConcurrentSameIDUpsert hammers one id with concurrent upserts,
// removals and queries; per-id serialization must leave exactly the
// postings of the final version — no stale index entries.
func TestConcurrentSameIDUpsert(t *testing.T) {
	credit := schema.MustStrings("credit", "fn", "ln", "zip")
	billing := schema.MustStrings("billing", "fn", "ln", "zip")
	ctx := schema.MustPair(credit, billing)
	key, err := core.NewKey(ctx,
		core.Target{Y1: schema.AttrList{"fn"}, Y2: schema.AttrList{"fn"}},
		[]core.Conjunct{core.Eq("ln", "ln")})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(ctx, []core.Key{key},
		[]blocking.KeySpec{blocking.NewKeySpec(core.P("zip", "zip"))})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	zips := []string{"07974", "10001", "02139", "94105"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := eng.Add(1, []string{"Ada", "Lovelace", zips[(w+i)%len(zips)]}); err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					eng.Remove(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := eng.MatchOne([]string{"A", "Lovelace", zips[i%len(zips)]}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if err := eng.Add(1, []string{"Ada", "Lovelace", zips[0]}); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 1 {
		t.Fatalf("Len = %d, want 1", eng.Len())
	}
	st := eng.Stats()
	if st.IndexEntries != 1 || st.IndexKeys != 1 {
		t.Fatalf("stale postings leaked: IndexEntries=%d IndexKeys=%d, want 1/1", st.IndexEntries, st.IndexKeys)
	}
	res, err := eng.MatchOne([]string{"A", "Lovelace", zips[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches, []int{1}) || res.Candidates != 1 {
		t.Fatalf("after quiesce: %+v, want one candidate matching [1]", res)
	}
	for _, z := range zips[1:] {
		if res, _ := eng.MatchOne([]string{"A", "Lovelace", z}); res.Candidates != 0 {
			t.Fatalf("stale posting under zip %s: %+v", z, res)
		}
	}
}

func TestNegativeRuleVetoes(t *testing.T) {
	credit := schema.MustStrings("credit", "fn", "ln", "status")
	billing := schema.MustStrings("billing", "fn", "ln", "status")
	ctx := schema.MustPair(credit, billing)
	key, err := core.NewKey(ctx,
		core.Target{Y1: schema.AttrList{"fn"}, Y2: schema.AttrList{"fn"}},
		[]core.Conjunct{core.Eq("ln", "ln")})
	if err != nil {
		t.Fatal(err)
	}
	neg := core.NegativeMD{Ctx: ctx, LHS: []core.Conjunct{core.Eq("status", "status")}}
	plan, err := Compile(ctx, []core.Key{key},
		[]blocking.KeySpec{blocking.NewKeySpec(core.P("ln", "ln"))}, neg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(0, []string{"Grace", "Hopper", "blocked"}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.MatchOne([]string{"G", "Hopper", "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("positive rule should match: %+v", res)
	}
	// Same status triggers the veto.
	if res, _ = eng.MatchOne([]string{"G", "Hopper", "blocked"}); len(res.Matches) != 0 {
		t.Fatalf("negative rule should veto: %+v", res)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newTestSetup(t, 100)
	eng, err := New(s.plan, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(s.ds.Credit); err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.MatchInstance(s.ds.Billing)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Queries != uint64(s.ds.Billing.Len()) {
		t.Fatalf("Queries = %d, want %d", st.Queries, s.ds.Billing.Len())
	}
	wantSpace := uint64(s.ds.Billing.Len() * s.ds.Credit.Len())
	if st.SearchSpace != wantSpace {
		t.Fatalf("SearchSpace = %d, want %d", st.SearchSpace, wantSpace)
	}
	if st.Compared > st.SearchSpace {
		t.Fatalf("Compared %d exceeds SearchSpace %d", st.Compared, st.SearchSpace)
	}
	if st.Matched > st.Compared {
		t.Fatalf("Matched %d exceeds Compared %d", st.Matched, st.Compared)
	}
	if st.Pruned() != st.SearchSpace-st.Compared {
		t.Fatalf("Pruned = %d, want %d", st.Pruned(), st.SearchSpace-st.Compared)
	}
	rr := st.ReductionRatio()
	if rr <= 0 || rr > 1 {
		t.Fatalf("ReductionRatio = %v, want in (0, 1]", rr)
	}
	eng.ResetStats()
	if st = eng.Stats(); st.Queries != 0 || st.Compared != 0 {
		t.Fatalf("after ResetStats: %+v", st)
	}
	if st.IndexedRecords != s.ds.Credit.Len() {
		t.Fatal("ResetStats must keep the store")
	}
}

func TestArityValidation(t *testing.T) {
	s := newTestSetup(t, 50)
	eng, err := New(s.plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(0, []string{"too", "short"}); err == nil {
		t.Error("Add with wrong arity should fail")
	}
	if _, err := eng.MatchOne([]string{"too", "short"}); err == nil {
		t.Error("MatchOne with wrong arity should fail")
	}
	if _, err := eng.MatchBatch([][]string{{"too", "short"}}); err == nil {
		t.Error("MatchBatch with wrong arity should fail")
	}
	if err := eng.Load(s.ds.Billing); err == nil {
		t.Error("Load with the right-side instance should fail")
	}
	if _, _, err := eng.MatchInstance(s.ds.Credit); err == nil {
		t.Error("MatchInstance with the left-side instance should fail")
	}
}

func TestIndexShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 64}, {1, 1}, {3, 4}, {64, 64}, {65, 128}} {
		if got := NewIndex(tc.in).Shards(); got != tc.want {
			t.Errorf("NewIndex(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func ExamplePlan_String() {
	credit := schema.MustStrings("credit", "fn", "ln")
	billing := schema.MustStrings("billing", "fn", "ln")
	ctx := schema.MustPair(credit, billing)
	key, _ := core.NewKey(ctx,
		core.Target{Y1: schema.AttrList{"fn"}, Y2: schema.AttrList{"fn"}},
		[]core.Conjunct{core.Eq("ln", "ln")})
	plan, _ := Compile(ctx, []core.Key{key}, []blocking.KeySpec{blocking.NewKeySpec(core.P("ln", "ln"))})
	fmt.Println(plan)
	// Output: plan: 1 rules, 0 negative, 1 fields, 1 blocking keys [ln|ln]
}
