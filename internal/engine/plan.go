// Package engine is the serving layer of the library: it turns the
// compile-time artifacts of the paper — RCKs derived once by findRCKs
// (Section 5) and blocking keys built from them (Section 6.2) — into a
// long-lived, concurrent match service. The paper's thesis is that
// reasoning happens at compile time so that run-time matching is cheap;
// this package is the run time: a Plan compiles a rule set into an
// executable internal/exec program (resolved column indices,
// deduplicated similarity tests, precomputed key encoders), a sharded
// in-memory Index maps blocking keys to record ids and absorbs
// incremental updates, and an Engine answers MatchOne/MatchBatch
// queries over a worker pool.
//
// Plan holds no evaluator of its own: EvalPair and the key renderers
// delegate to internal/exec, the same kernel that executes the chase
// (internal/semantics), batch rule matching (internal/matching) and the
// statistical matcher's comparison vectors (internal/fellegi) — the
// serving path and the batch paths provably run identical code.
package engine

import (
	"fmt"
	"strings"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/exec"
	"mdmatch/internal/matching"
	"mdmatch/internal/schema"
)

// Plan is a compiled match plan: the executable form of a rule set of
// RCKs plus the blocking keys that prune its candidate space. Compile it
// once, serve it many times — a Plan is immutable and safe for
// concurrent use by any number of engines and goroutines.
type Plan struct {
	ctx      schema.Pair
	keys     []core.Key
	negative []core.NegativeMD
	fields   []matching.Field
	prog     *exec.Program
	blockers []exec.KeyEncoder
}

// Compile builds a Plan for the matching context from keys (applied as
// matching rules, Section 2.2) and blocking key specs (candidate
// retrieval). Optional negative rules veto matches (the Section 8
// "negation" extension). Attribute references are resolved against the
// context schemas up front so serving never fails on schema errors.
func Compile(ctx schema.Pair, keys []core.Key, blockKeys []blocking.KeySpec, negative ...core.NegativeMD) (*Plan, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("engine: plan needs at least one key")
	}
	if len(blockKeys) == 0 {
		return nil, fmt.Errorf("engine: plan needs at least one blocking key")
	}
	if len(blockKeys) > 255 {
		return nil, fmt.Errorf("engine: at most 255 blocking keys, got %d", len(blockKeys))
	}
	p := &Plan{
		ctx:      ctx,
		keys:     append([]core.Key(nil), keys...),
		negative: append([]core.NegativeMD(nil), negative...),
		fields:   matching.FieldsFromKeys(keys),
	}
	rules := make([][]core.Conjunct, len(keys))
	for i, k := range keys {
		if len(k.Conjuncts) == 0 {
			return nil, fmt.Errorf("engine: key %d: empty LHS", i)
		}
		rules[i] = k.Conjuncts
	}
	negs := make([][]core.Conjunct, len(negative))
	for i, n := range negative {
		if len(n.LHS) == 0 {
			return nil, fmt.Errorf("engine: negative rule %d: empty LHS", i)
		}
		negs[i] = n.LHS
	}
	prog, err := exec.Compile(ctx, rules, negs)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	p.prog = prog
	for i, ks := range blockKeys {
		ke, err := exec.CompileKeySpec(ctx, ks)
		if err != nil {
			return nil, fmt.Errorf("engine: blocking key %d: %w", i, err)
		}
		p.blockers = append(p.blockers, ke)
	}
	return p, nil
}

// Ctx returns the matching context the plan was compiled for.
func (p *Plan) Ctx() schema.Pair { return p.ctx }

// Keys returns a copy of the plan's rule keys.
func (p *Plan) Keys() []core.Key { return append([]core.Key(nil), p.keys...) }

// Fields returns a copy of the deduplicated comparison fields (the union
// comparison vector of matching.FieldsFromKeys).
func (p *Plan) Fields() []matching.Field { return append([]matching.Field(nil), p.fields...) }

// BlockingKeys returns a copy of the plan's blocking key specs.
func (p *Plan) BlockingKeys() []blocking.KeySpec {
	out := make([]blocking.KeySpec, len(p.blockers))
	for i := range p.blockers {
		out[i] = p.blockers[i].Spec()
	}
	return out
}

// Program returns the compiled exec program the plan evaluates through.
func (p *Plan) Program() *exec.Program { return p.prog }

// EvalPair decides whether a (left, right) value pair matches under the
// plan's rules: at least one key LHS holds and no negative rule vetoes.
// The slices are positional, parallel to the context relations. EvalPair
// performs no allocation and is safe for concurrent use; it delegates to
// the exec kernel. Callers with a per-goroutine exec.Memo (the engine's
// match scratch) should call Program().EvalPair directly to share
// conjunct outcomes across the plan's rules.
func (p *Plan) EvalPair(left, right []string) bool {
	return p.prog.EvalPair(left, right, nil)
}

// leftKeys appends the blocking keys of a left-side value slice to dst.
func (p *Plan) leftKeys(vals []string, dst []string) []string {
	for i := range p.blockers {
		dst = append(dst, p.blockers[i].RenderLeft(byte(i), vals))
	}
	return dst
}

// rightKeys appends the blocking keys of a right-side value slice to dst.
func (p *Plan) rightKeys(vals []string, dst []string) []string {
	for i := range p.blockers {
		dst = append(dst, p.blockers[i].RenderRight(byte(i), vals))
	}
	return dst
}

// String summarizes the plan for logs and reports.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d rules, %d negative, %d fields, %d blocking keys",
		p.prog.NumRules(), p.prog.NumNegative(), len(p.fields), len(p.blockers))
	for i := range p.blockers {
		fmt.Fprintf(&b, " [%s]", p.blockers[i].Spec().String())
	}
	return b.String()
}
