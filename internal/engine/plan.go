// Package engine is the serving layer of the library: it turns the
// compile-time artifacts of the paper — RCKs derived once by findRCKs
// (Section 5) and blocking keys built from them (Section 6.2) — into a
// long-lived, concurrent match service. The paper's thesis is that
// reasoning happens at compile time so that run-time matching is cheap;
// this package is the run time: a Plan compiles a rule set into an
// executable form (resolved column indices, deduplicated comparison
// fields, precomputed key encoders), a sharded in-memory Index maps
// blocking keys to record ids and absorbs incremental updates, and an
// Engine answers MatchOne/MatchBatch queries over a worker pool.
package engine

import (
	"fmt"
	"strings"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/matching"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// compiledConjunct is one similarity test with its attribute lookups
// resolved to positional column indices, so evaluation needs no map
// lookups or schema access.
type compiledConjunct struct {
	left, right int // column indices into the left/right value slices
	op          similarity.Operator
}

// compiledRule is the LHS of one key (or negative rule) in executable
// form: a pair matches the rule when every conjunct holds.
type compiledRule struct {
	conjuncts []compiledConjunct
}

func (r compiledRule) eval(left, right []string) bool {
	for _, c := range r.conjuncts {
		if !c.op.Similar(left[c.left], right[c.right]) {
			return false
		}
	}
	return true
}

// keyEncoder is a blocking.KeySpec with columns resolved and encoders
// defaulted, ready to turn a value slice into a blocking-key string.
type keyEncoder struct {
	spec        blocking.KeySpec
	left, right []int
	encode      []blocking.Encoder
}

// render builds the key string of one side. The layout matches
// blocking.KeySpec keys (fields joined by \x1f) with a leading spec tag
// so keys of different specs never collide in the shared index.
func (ke *keyEncoder) render(tag byte, vals []string, cols []int) string {
	var b strings.Builder
	b.WriteByte(tag)
	for i, col := range cols {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(ke.encode[i](vals[col]))
	}
	return b.String()
}

// Plan is a compiled match plan: the executable form of a rule set of
// RCKs plus the blocking keys that prune its candidate space. Compile it
// once, serve it many times — a Plan is immutable and safe for
// concurrent use by any number of engines and goroutines.
type Plan struct {
	ctx      schema.Pair
	keys     []core.Key
	negative []core.NegativeMD
	fields   []matching.Field
	rules    []compiledRule
	negRules []compiledRule
	blockers []keyEncoder
}

// Compile builds a Plan for the matching context from keys (applied as
// matching rules, Section 2.2) and blocking key specs (candidate
// retrieval). Optional negative rules veto matches (the Section 8
// "negation" extension). Attribute references are resolved against the
// context schemas up front so serving never fails on schema errors.
func Compile(ctx schema.Pair, keys []core.Key, blockKeys []blocking.KeySpec, negative ...core.NegativeMD) (*Plan, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("engine: plan needs at least one key")
	}
	if len(blockKeys) == 0 {
		return nil, fmt.Errorf("engine: plan needs at least one blocking key")
	}
	if len(blockKeys) > 255 {
		return nil, fmt.Errorf("engine: at most 255 blocking keys, got %d", len(blockKeys))
	}
	p := &Plan{
		ctx:      ctx,
		keys:     append([]core.Key(nil), keys...),
		negative: append([]core.NegativeMD(nil), negative...),
		fields:   matching.FieldsFromKeys(keys),
	}
	for i, k := range keys {
		r, err := compileConjuncts(ctx, k.Conjuncts)
		if err != nil {
			return nil, fmt.Errorf("engine: key %d: %w", i, err)
		}
		p.rules = append(p.rules, r)
	}
	for i, n := range negative {
		r, err := compileConjuncts(ctx, n.LHS)
		if err != nil {
			return nil, fmt.Errorf("engine: negative rule %d: %w", i, err)
		}
		p.negRules = append(p.negRules, r)
	}
	for i, ks := range blockKeys {
		ke, err := compileKeySpec(ctx, ks)
		if err != nil {
			return nil, fmt.Errorf("engine: blocking key %d: %w", i, err)
		}
		p.blockers = append(p.blockers, ke)
	}
	return p, nil
}

func compileConjuncts(ctx schema.Pair, cs []core.Conjunct) (compiledRule, error) {
	if len(cs) == 0 {
		return compiledRule{}, fmt.Errorf("empty LHS")
	}
	out := compiledRule{conjuncts: make([]compiledConjunct, len(cs))}
	for i, c := range cs {
		li, ok := ctx.Left.Index(c.Pair.Left)
		if !ok {
			return compiledRule{}, fmt.Errorf("%s has no attribute %q", ctx.Left.Name(), c.Pair.Left)
		}
		ri, ok := ctx.Right.Index(c.Pair.Right)
		if !ok {
			return compiledRule{}, fmt.Errorf("%s has no attribute %q", ctx.Right.Name(), c.Pair.Right)
		}
		if c.Op == nil {
			return compiledRule{}, fmt.Errorf("conjunct %s has no operator", c.Pair)
		}
		out.conjuncts[i] = compiledConjunct{left: li, right: ri, op: c.Op}
	}
	return out, nil
}

func compileKeySpec(ctx schema.Pair, ks blocking.KeySpec) (keyEncoder, error) {
	if len(ks.Fields) == 0 {
		return keyEncoder{}, fmt.Errorf("empty key spec")
	}
	ke := keyEncoder{
		spec:   ks,
		left:   make([]int, len(ks.Fields)),
		right:  make([]int, len(ks.Fields)),
		encode: make([]blocking.Encoder, len(ks.Fields)),
	}
	for i, f := range ks.Fields {
		li, ok := ctx.Left.Index(f.Pair.Left)
		if !ok {
			return keyEncoder{}, fmt.Errorf("%s has no attribute %q", ctx.Left.Name(), f.Pair.Left)
		}
		ri, ok := ctx.Right.Index(f.Pair.Right)
		if !ok {
			return keyEncoder{}, fmt.Errorf("%s has no attribute %q", ctx.Right.Name(), f.Pair.Right)
		}
		ke.left[i], ke.right[i] = li, ri
		ke.encode[i] = f.Encode
		if ke.encode[i] == nil {
			ke.encode[i] = blocking.Identity
		}
	}
	return ke, nil
}

// Ctx returns the matching context the plan was compiled for.
func (p *Plan) Ctx() schema.Pair { return p.ctx }

// Keys returns a copy of the plan's rule keys.
func (p *Plan) Keys() []core.Key { return append([]core.Key(nil), p.keys...) }

// Fields returns a copy of the deduplicated comparison fields (the union
// comparison vector of matching.FieldsFromKeys).
func (p *Plan) Fields() []matching.Field { return append([]matching.Field(nil), p.fields...) }

// BlockingKeys returns a copy of the plan's blocking key specs.
func (p *Plan) BlockingKeys() []blocking.KeySpec {
	out := make([]blocking.KeySpec, len(p.blockers))
	for i, b := range p.blockers {
		out[i] = b.spec
	}
	return out
}

// EvalPair decides whether a (left, right) value pair matches under the
// plan's rules: at least one key LHS holds and no negative rule vetoes.
// The slices are positional, parallel to the context relations. EvalPair
// performs no allocation and is safe for concurrent use.
func (p *Plan) EvalPair(left, right []string) bool {
	matched := false
	for i := range p.rules {
		if p.rules[i].eval(left, right) {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	for i := range p.negRules {
		if p.negRules[i].eval(left, right) {
			return false
		}
	}
	return true
}

// leftKeys appends the blocking keys of a left-side value slice to dst.
func (p *Plan) leftKeys(vals []string, dst []string) []string {
	for i := range p.blockers {
		dst = append(dst, p.blockers[i].render(byte(i), vals, p.blockers[i].left))
	}
	return dst
}

// rightKeys appends the blocking keys of a right-side value slice to dst.
func (p *Plan) rightKeys(vals []string, dst []string) []string {
	for i := range p.blockers {
		dst = append(dst, p.blockers[i].render(byte(i), vals, p.blockers[i].right))
	}
	return dst
}

// String summarizes the plan for logs and reports.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d rules, %d negative, %d fields, %d blocking keys",
		len(p.rules), len(p.negRules), len(p.fields), len(p.blockers))
	for _, ke := range p.blockers {
		fmt.Fprintf(&b, " [%s]", ke.spec.String())
	}
	return b.String()
}
