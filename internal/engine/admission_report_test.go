package engine

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"testing"
)

// admissionSection is the "admission" object merged into
// BENCH_engine.json by `make bench-fault`: what routing every request
// context into the MatchBatch worker pool costs on the hot path. The
// baseline is a background context (no cancellation channel — the
// per-query check compiles to one nil comparison); the measured run
// uses a live cancellable context, the shape every HTTP request has.
type admissionSection struct {
	GeneratedAt     string  `json:"generated_at"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Measure         string  `json:"measure"`
	Batch           int     `json:"batch"`
	Rounds          int     `json:"rounds"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	CtxSeconds      float64 `json:"ctx_seconds"`
	OverheadPct     float64 `json:"overhead_pct"`
	MaxOverheadPct  float64 `json:"max_overhead_pct"`
}

// mergeAdmissionSection read-modify-writes path, setting only the
// "admission" key so the report's other sections survive.
func mergeAdmissionSection(t *testing.T, path string, section admissionSection) {
	t.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", path, err)
		}
	}
	doc["admission"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged admission section into %s", path)
}

// TestWriteAdmissionBenchReport measures the cancellation hook's cost
// on the serving hot path and gates it below 1%: MatchBatchCtx over the
// same batch with a background context versus a live cancellable one,
// best-of-N rounds interleaved so machine noise hits both sides. Wired
// up as `make bench-fault`; skipped unless BENCH_ADMISSION_OUT names
// the report file. BENCH_ADMISSION_MAX_OVERHEAD overrides the gate,
// BENCH_ENGINE_K the corpus scale.
func TestWriteAdmissionBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_ADMISSION_OUT")
	if out == "" {
		t.Skip("set BENCH_ADMISSION_OUT=<path> to record the admission-overhead gate")
	}
	maxOverhead := 1.0
	if v := os.Getenv("BENCH_ADMISSION_MAX_OVERHEAD"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad BENCH_ADMISSION_MAX_OVERHEAD %q: %v", v, err)
		}
		maxOverhead = f
	}
	k := 4000
	if v := os.Getenv("BENCH_ENGINE_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_ENGINE_K %q: %v", v, err)
		}
		k = n
	}
	s := benchSetup(t, k)
	batch := batchOf(s)
	eng, err := New(s.plan, WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(s.ds.Credit); err != nil {
		t.Fatal(err)
	}

	liveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run := func(ctx context.Context) float64 {
		start := time.Now()
		if _, err := eng.MatchBatchCtx(ctx, batch); err != nil {
			t.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	run(context.Background()) // warm-up: caches, pools, page-in
	run(liveCtx)

	// The match path allocates, and a GC cycle landing inside one side
	// of a pair is the dominant noise source for a 1% gate: collect now,
	// then hold GC off for the measured window (a few seconds, bounded
	// growth) and restore afterwards.
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Paired sampling, gated on the MEDIAN ratio: each round times the
	// two variants back to back, so slow drift (CPU frequency, a noisy
	// neighbor) hits both sides of a pair equally and cancels in the
	// ratio, while one-off spikes (GC, scheduler) land in a single pair
	// and die at the median. The min seconds are recorded alongside as
	// the representative cost of each variant.
	const rounds = 30
	ratios := make([]float64, 0, rounds)
	baseline, withCtx := run(context.Background()), run(liveCtx)
	ratios = append(ratios, withCtx/baseline)
	for i := 1; i < rounds; i++ {
		bg, live := run(context.Background()), run(liveCtx)
		ratios = append(ratios, live/bg)
		if bg < baseline {
			baseline = bg
		}
		if live < withCtx {
			withCtx = live
		}
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]

	overhead := (median - 1) * 100
	section := admissionSection{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Measure:         "engine.MatchBatchCtx cancellable vs background context",
		Batch:           len(batch),
		Rounds:          rounds,
		BaselineSeconds: baseline,
		CtxSeconds:      withCtx,
		OverheadPct:     overhead,
		MaxOverheadPct:  maxOverhead,
	}
	mergeAdmissionSection(t, out, section)
	if overhead > maxOverhead {
		t.Fatalf("cancellable-context overhead %.2f%% exceeds the %.2f%% gate (baseline %.4fs, ctx %.4fs)",
			overhead, maxOverhead, baseline, withCtx)
	}
	t.Logf("admission overhead %.2f%% (gate %.2f%%)", overhead, maxOverhead)
}
