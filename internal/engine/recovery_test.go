package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// recOp is one mutation of a durable engine's history: an insert, a
// batch load, or a removal — the three ops the WAL records.
type recOp struct {
	kind string // "insert", "batch", "remove"
	id   int
	vals []string
	rows []*record.Tuple
}

func (o recOp) apply(t testing.TB, eng *Engine, rel *schema.Relation) {
	t.Helper()
	switch o.kind {
	case "insert":
		if _, err := eng.AddClustered(o.id, o.vals); err != nil {
			t.Fatal(err)
		}
	case "batch":
		in := record.NewInstance(rel)
		for _, tup := range o.rows {
			if _, err := in.AppendWithID(tup.ID, slices.Clone(tup.Values)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Load(in); err != nil {
			t.Fatal(err)
		}
	case "remove":
		if _, err := eng.RemoveLogged(o.id); err != nil {
			t.Fatal(err)
		}
	}
}

// recHistory builds a mixed op history over a shuffled generated
// corpus: one initial batch, then single inserts with removals
// sprinkled in (both of present and absent ids).
func recHistory(t testing.TB, k int, seed int64) (schema.Pair, []core.MD, []recOp) {
	t.Helper()
	cfg := gen.DefaultConfig(k)
	cfg.Seed = seed
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	tuples := slices.Clone(ds.Credit.Tuples)
	rng := rand.New(rand.NewSource(seed * 7919))
	rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })

	split := len(tuples) / 3
	ops := []recOp{{kind: "batch", rows: tuples[:split]}}
	for i, tup := range tuples[split:] {
		ops = append(ops, recOp{kind: "insert", id: tup.ID, vals: slices.Clone(tup.Values)})
		if i%5 == 2 {
			// Remove a record that exists (journaled) and one that does
			// not (a no-op that must not be journaled).
			ops = append(ops,
				recOp{kind: "remove", id: tuples[i%split].ID},
				recOp{kind: "remove", id: 1 << 30})
		}
	}
	return ctx, gen.DedupMDs(ctx), ops
}

// selfMatchPlan compiles a small serving plan over the self-match
// credit context: one equality key, one similarity key, two blocking
// keys (one Soundex-encoded) — enough to exercise interned rows,
// rendered keys and verdict caches through recovery.
func selfMatchPlan(t testing.TB, ctx schema.Pair) *Plan {
	t.Helper()
	target, err := core.NewTarget(ctx, ctx.Left.AttrNames(), ctx.Right.AttrNames())
	if err != nil {
		t.Fatal(err)
	}
	k1, err := core.NewKey(ctx, target, []core.Conjunct{core.Eq("cno", "cno")})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := core.NewKey(ctx, target, []core.Conjunct{
		core.C("ln", similarity.DL(0.8), "ln"), core.Eq("zip", "zip")})
	if err != nil {
		t.Fatal(err)
	}
	specs := []blocking.KeySpec{
		blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode),
		blocking.NewKeySpec(core.P("cno", "cno")),
	}
	plan, err := Compile(ctx, []core.Key{k1, k2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// newDurable builds a fresh enforcer + durable engine over dir. extra
// options are appended to the enforcer's (e.g. stream.WithWorkers for
// the parallel-chase recovery variant).
func newDurable(t testing.TB, dir string, ctx schema.Pair, sigma []core.MD, plan *Plan, extra ...stream.Option) (*Engine, *store.Store) {
	t.Helper()
	opts := append([]stream.Option{stream.ClusterRules(gen.DedupClusterRules()...)}, extra...)
	enf, err := stream.New(ctx, sigma, opts...)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, Fingerprint(plan, enf), store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(plan, WithWorkers(2), WithStream(enf), WithStore(st))
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return eng, st
}

// sameEngineState asserts the full observable state of two engines is
// identical: the enforcer's persistent state (instance rows, cluster
// memberships, dictionary contents in ID order, counters) and the match
// index (stored records, rendered blocking keys, match results). The
// one normalized counter is Chase.LHSEvaluations: it counts
// verdict-cache misses, and a recovered process rebuilds its caches
// cold, so its replay misses legitimately differ from the warm
// history's (the verdicts themselves are pure and identical).
func sameEngineState(t testing.TB, label string, got, want *Engine) {
	t.Helper()
	gs, ws := got.Stream().State(), want.Stream().State()
	gs.Stats.Chase.LHSEvaluations = 0
	ws.Stats.Chase.LHSEvaluations = 0
	if !reflect.DeepEqual(gs.Dicts, ws.Dicts) {
		t.Fatalf("%s: dictionaries diverged", label)
	}
	if !reflect.DeepEqual(gs.Rows, ws.Rows) {
		t.Fatalf("%s: instance rows diverged: %d vs %d rows", label, len(gs.Rows), len(ws.Rows))
	}
	if !reflect.DeepEqual(gs.Clusters, ws.Clusters) {
		t.Fatalf("%s: clusters diverged: %v vs %v", label, gs.Clusters, ws.Clusters)
	}
	if !reflect.DeepEqual(gs.Stats, ws.Stats) {
		t.Fatalf("%s: stats diverged: %+v vs %+v", label, gs.Stats, ws.Stats)
	}
	grecs, wrecs := got.dumpRecs(), want.dumpRecs()
	if !reflect.DeepEqual(grecs, wrecs) {
		t.Fatalf("%s: match-index records diverged (%d vs %d)", label, len(grecs), len(wrecs))
	}
	// Spot-check serving behavior on a few stored rows (self-match:
	// left rows are valid right-side queries).
	for i, rec := range wrecs {
		if i >= 5 {
			break
		}
		gr, err := got.MatchOne(rec.Values)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := want.MatchOne(rec.Values)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(gr.Matches, wr.Matches) {
			t.Fatalf("%s: MatchOne = %v, want %v", label, gr.Matches, wr.Matches)
		}
	}
}

// TestRecoveryEquivalence is the load-bearing property of the store
// subsystem: for EVERY snapshot point i in an n-op history — including
// i=0 (replay-only) and i=n (snapshot-only) — recovering from
// snapshot@i plus the WAL suffix replayed in order is bit-identical to
// a fresh engine fed the same ops in the same order. Runs under -race
// in CI.
func TestRecoveryEquivalence(t *testing.T) {
	ctx, sigma, ops := recHistory(t, 12, 1)
	plan := selfMatchPlan(t, ctx)

	// The reference: the same history with no store attached.
	refEnf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(plan, WithWorkers(2), WithStream(refEnf))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		op.apply(t, ref, ctx.Left)
	}

	for i := 0; i <= len(ops); i++ {
		dir := t.TempDir()
		eng, st := newDurable(t, dir, ctx, sigma, plan)
		for _, op := range ops[:i] {
			op.apply(t, eng, ctx.Left)
		}
		if i > 0 {
			if _, err := eng.Snapshot(); err != nil {
				t.Fatalf("i=%d: snapshot: %v", i, err)
			}
		}
		for _, op := range ops[i:] {
			op.apply(t, eng, ctx.Left)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		label := fmt.Sprintf("i=%d/%d", i, len(ops))
		rec, st2 := newDurable(t, dir, ctx, sigma, plan)
		sameEngineState(t, label, rec, ref)
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryEquivalenceParallelChase re-runs recovery equivalence
// with the parallel chase enabled end to end: the reference enforcer,
// the journaled engine AND the recovering engine (whose WAL replay
// re-enforces every insert) all run stream.WithWorkers(4), with the
// speculation thresholds shrunk so the small history actually exercises
// the speculative paths. A subset of cut points suffices — the full
// sweep is TestRecoveryEquivalence's job; this pins that durability is
// worker-count-independent.
func TestRecoveryEquivalenceParallelChase(t *testing.T) {
	restore := stream.TuneSpeculation(16, 1, 1<<20)
	defer restore()
	ctx, sigma, ops := recHistory(t, 12, 1)
	plan := selfMatchPlan(t, ctx)

	refEnf, err := stream.New(ctx, sigma,
		stream.ClusterRules(gen.DedupClusterRules()...), stream.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(plan, WithWorkers(2), WithStream(refEnf))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		op.apply(t, ref, ctx.Left)
	}

	for _, i := range []int{0, len(ops) / 2, len(ops)} {
		dir := t.TempDir()
		eng, st := newDurable(t, dir, ctx, sigma, plan, stream.WithWorkers(4))
		for _, op := range ops[:i] {
			op.apply(t, eng, ctx.Left)
		}
		if i > 0 {
			if _, err := eng.Snapshot(); err != nil {
				t.Fatalf("i=%d: snapshot: %v", i, err)
			}
		}
		for _, op := range ops[i:] {
			op.apply(t, eng, ctx.Left)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		label := fmt.Sprintf("parallel i=%d/%d", i, len(ops))
		rec, st2 := newDurable(t, dir, ctx, sigma, plan, stream.WithWorkers(4))
		sameEngineState(t, label, rec, ref)
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryAcrossMultipleSnapshots layers several snapshots into one
// history (exercising snapshot retention + segment GC on a live
// directory) and checks the final recovery, twice (recovering from a
// recovered directory must also be exact).
func TestRecoveryAcrossMultipleSnapshots(t *testing.T) {
	ctx, sigma, ops := recHistory(t, 15, 2)
	plan := selfMatchPlan(t, ctx)

	refEnf, err := stream.New(ctx, sigma, stream.ClusterRules(gen.DedupClusterRules()...))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(plan, WithStream(refEnf))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	eng, st := newDurable(t, dir, ctx, sigma, plan)
	for i, op := range ops {
		op.apply(t, ref, ctx.Left)
		op.apply(t, eng, ctx.Left)
		if i%7 == 6 {
			if _, err := eng.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		rec, st2 := newDurable(t, dir, ctx, sigma, plan)
		sameEngineState(t, fmt.Sprintf("multi-snapshot round %d", round), rec, ref)
		if round == 1 {
			// Snapshot the recovered state so round 2 recovers from a
			// recovery's own snapshot.
			if _, err := rec.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryRefusesForeignRules pins the fingerprint guard end to
// end: a data directory written under one rule configuration refuses to
// open under another (replaying inserts under different rules would
// silently produce a different chase).
func TestRecoveryRefusesForeignRules(t *testing.T) {
	ctx, sigma, ops := recHistory(t, 10, 3)
	plan := selfMatchPlan(t, ctx)
	dir := t.TempDir()
	eng, st := newDurable(t, dir, ctx, sigma, plan)
	ops[0].apply(t, eng, ctx.Left)
	if _, err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	enf, err := stream.New(ctx, sigma[:len(sigma)-1]) // one rule fewer
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir, Fingerprint(plan, enf)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("Open under different Σ = %v, want fingerprint refusal", err)
	}
}

// TestWithStoreValidation pins the construction contract: WithStore
// needs a stream enforcer, and the enforcer must not have pre-store
// history (those inserts were never journaled).
func TestWithStoreValidation(t *testing.T) {
	ctx, sigma, _ := recHistory(t, 10, 4)
	plan := selfMatchPlan(t, ctx)
	st, err := store.Open(t.TempDir(), Fingerprint(plan, nil), store.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := New(plan, WithStore(st)); err == nil {
		t.Error("New accepted WithStore without WithStream")
	}
	enf, err := stream.New(ctx, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enf.Insert(1, make([]string, ctx.Left.Arity())); err != nil {
		t.Fatal(err)
	}
	if _, err := New(plan, WithStream(enf), WithStore(st)); err == nil {
		t.Error("New accepted an enforcer with unjournaled history")
	}
}

// TestSnapshotDuringConcurrentTraffic hammers a durable engine with
// concurrent MatchBatch queries, inserts, removals and snapshots (the
// shutdown-during-batch shape, exercised under -race), then verifies a
// recovery of the resulting directory reproduces the live engine's
// final state exactly.
func TestSnapshotDuringConcurrentTraffic(t *testing.T) {
	ctx, sigma, ops := recHistory(t, 15, 5)
	plan := selfMatchPlan(t, ctx)
	dir := t.TempDir()
	eng, st := newDurable(t, dir, ctx, sigma, plan)
	ops[0].apply(t, eng, ctx.Left) // warm batch

	batch := make([][]string, 0, 16)
	for _, tup := range ops[0].rows {
		batch = append(batch, tup.Values)
		if len(batch) == 16 {
			break
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, op := range ops[1:] {
			op.apply(t, eng, ctx.Left)
		}
	}()
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := eng.MatchBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := eng.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	<-queryDone
	// Final snapshot with everything drained, then recover and compare
	// against the live engine itself.
	if _, err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, st2 := newDurable(t, dir, ctx, sigma, plan)
	defer st2.Close()
	sameEngineState(t, "concurrent traffic", rec, eng)
}
