//go:build scale

package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/debug"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdmatch/internal/core"
	"mdmatch/internal/fault"
	"mdmatch/internal/gen"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// This file is the scale tier (`make soak`, `-tags scale`): it drives
// SOAK_RECORDS synthesized credit records (default 50k, 1M for the
// full soak) through the durable engine — InsertBatch bulk with timed
// single inserts interleaved — while a background snapshotter streams
// captures concurrently and two mid-soak kills (sticky crash faults)
// force full recoveries. It asserts the bounded-memory contract:
//
//   - single-insert p99 stays under soakStallBudget even while a
//     snapshot is streaming (the consistent cut means encode never
//     holds the write lock);
//   - the Go heap high-water mark stays under soakHeapCeiling, and the
//     runtime soft memory limit is pinned there so total managed
//     memory (heap + runtime overhead) keeps process RSS under 4 GB
//     rather than relying on sampling luck;
//   - recovery after each kill is bit-identical to the acked state the
//     live engine held, and recovering the same directory twice is
//     deterministic;
//   - with SOAK_STORE_OUT / SOAK_STREAM_OUT set, a "scale" section is
//     merged into BENCH_store.json / BENCH_stream.json; with SOAK_GATE
//     naming a recorded BENCH_store.json, the run fails if stall p99
//     or the heap watermark regresses >10% against the recorded entry
//     at the same record count.
const (
	soakStallBudget = 50 * time.Millisecond
	// 3.25 GiB, not 4: the acceptance ceiling is 4 GB of process RSS,
	// and RSS tracks the runtime's total managed memory (the soft
	// limit) plus what the limit does not govern — goroutine stacks,
	// GC metadata, page tables, not-yet-reclaimed spans (measured
	// ~450 MiB on the 1M run). Capping managed memory at 3.25 GiB
	// keeps peak resident memory under 4 GiB with real margin.
	soakHeapCeiling = uint64(3)<<30 + uint64(256)<<20
)

// soakSigma is the scale-tier rule set: the hash-encodable shapes of
// gen.DedupMDs (an equality conjunct gives the chase a blocked scan),
// without its similarity-only rules, whose dense scans are O(rows) per
// insert — correct, covered by the correctness tier, and unusable at
// 1M records. With tel and zip near-unique the blocks stay O(1), so
// soak cost measures the durability and memory layers, not rule
// density.
func soakSigma(ctx schema.Pair) []core.MD {
	d := similarity.DL(0.8)
	return []core.MD{
		// Same phone + similar surname identify the holder (κ3 shape);
		// the cluster-linking rule of the soak.
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("tel", "tel"), core.C("ln", d, "ln")},
			[]core.AttrPair{core.P("street", "street"), core.P("city", "city"),
				core.P("county", "county"), core.P("zip", "zip")}),
		// Same zip + similar street: same city and county (ρ2 shape,
		// repair only).
		core.MustMD(ctx,
			[]core.Conjunct{core.Eq("zip", "zip"), core.C("street", d, "street")},
			[]core.AttrPair{core.P("city", "city"), core.P("county", "county")}),
	}
}

// soakRow synthesizes credit record i in the generator's column order
// (cno ssn fn ln street city county zip tel email gender dob type).
// Identity columns are unique per record; name/city columns draw from
// small pools so dictionaries see realistic repetition. Every 50th
// record duplicates its predecessor's identity block (tel, ln) with a
// perturbed address, so κ3 fires, clusters link, and ρ2 repairs run at
// a steady rate throughout the soak.
func soakRow(i int) []string {
	j := i
	if i%50 == 49 {
		j = i - 1
	}
	fn := soakFirst[j%len(soakFirst)]
	ln := soakLast[(j/3)%len(soakLast)]
	city := soakCities[(j/7)%len(soakCities)]
	street := fmt.Sprintf("%d %s", j%8999+1, soakStreets[(j/11)%len(soakStreets)])
	if j != i {
		street = fmt.Sprintf("%d %s Apt 2", j%8999+1, soakStreets[(j/11)%len(soakStreets)])
	}
	return []string{
		fmt.Sprintf("%012d", 700000000000+int64(i)),
		fmt.Sprintf("%09d", i),
		fn,
		ln,
		street,
		city.name,
		city.county,
		fmt.Sprintf("%05d", j%89989),
		fmt.Sprintf("555-%07d", j%9999991),
		fmt.Sprintf("%s.%s%d@example.org", fn, ln, j),
		"MF"[i%2 : i%2+1],
		fmt.Sprintf("19%02d-%02d-%02d", 20+j%79, j%12+1, j%28+1),
		soakCards[i%len(soakCards)],
	}
}

var (
	soakFirst = []string{"Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald",
		"Leslie", "John", "Margaret", "Tony", "Frances", "Edgar", "Niklaus"}
	soakLast = []string{"Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov",
		"Knuth", "Lamport", "Backus", "Hamilton", "Hoare", "Allen", "Codd", "Wirth"}
	soakStreets = []string{"Market Street", "Maple Avenue", "Franklin Lane",
		"Bridge Drive", "Dogwood Avenue", "Mill Boulevard", "Jackson Court"}
	soakCities = []struct{ name, county, zip3 string }{
		{"Madison", "Dane", "537"}, {"Trenton", "Mercer", "086"},
		{"Richmond", "Henrico", "232"}, {"Albany", "Albany", "122"},
		{"San Jose", "Santa Clara", "951"}, {"Milwaukee", "Milwaukee", "532"},
	}
	soakCards = []string{"visa", "mastercard", "amex", "discover"}
)

// soakUnit is one ingest step: a half-open row range submitted either
// as one InsertBatch (batch=true) or as timed single inserts. Units
// are the resume granularity after a kill — a failed unit was never
// applied (the fault-matrix contract), so recovery resubmits it whole.
type soakUnit struct {
	from, to int
	batch    bool
}

// soakUnits carves n rows into groups of 1000: 900 as one batch, 100
// as singles (the latency probes).
func soakUnits(n int) []soakUnit {
	var units []soakUnit
	for at := 0; at < n; {
		bulk := min(900, n-at)
		units = append(units, soakUnit{from: at, to: at + bulk, batch: true})
		at += bulk
		if single := min(100, n-at); single > 0 {
			units = append(units, soakUnit{from: at, to: at + single})
			at += single
		}
	}
	return units
}

const soakIDBase = 1 << 30 // synthesized ids, clear of the corpus

type soakStats struct {
	mu          sync.Mutex
	singleMS    []float64 // every single-insert latency
	inflightMS  []float64 // ...restricted to a snapshot streaming concurrently
	batchSec    float64
	batchRows   int
	snapshots   int64 // atomic
	peakHeap    uint64
	peakSys     uint64
	recoverySec float64
	kills       int
}

// sampleMem is called from both the ingest loop and the snapshotter.
func (st *soakStats) sampleMem() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.mu.Lock()
	defer st.mu.Unlock()
	if ms.HeapAlloc > st.peakHeap {
		st.peakHeap = ms.HeapAlloc
	}
	if ms.Sys > st.peakSys {
		st.peakSys = ms.Sys
	}
}

func p99(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	return s[(99*len(s)+99)/100-1] // index ceil(0.99n)-1
}

func TestSoakScale(t *testing.T) {
	n := 50000
	if v := os.Getenv("SOAK_RECORDS"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1000 {
			t.Fatalf("bad SOAK_RECORDS %q", v)
		}
		n = parsed
	}
	// The ceiling is enforced, not just observed: with a soft memory
	// limit the runtime GCs harder as the soak approaches it, so a
	// layout that genuinely does not fit shows up as thrash/timeout
	// rather than a lucky watermark sample between collections.
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(int64(soakHeapCeiling)))
	ds, err := gen.Generate(gen.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	ctx := schema.MustPair(ds.Credit.Rel, ds.Credit.Rel)
	sigma := soakSigma(ctx)
	plan := selfMatchPlan(t, ctx)
	dir := t.TempDir()

	open := func(fs store.FS) (*Engine, *store.Store) {
		t.Helper()
		enf, err := stream.New(ctx, sigma, stream.ClusterRules(0))
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(dir, Fingerprint(plan, enf), store.WithNoSync(), store.WithFS(fs))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(plan, WithWorkers(2), WithStream(enf), WithStore(st))
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		return eng, st
	}

	fplan := fault.NewPlan()
	eng, st := open(fault.Wrap(store.OSFS{}, fplan))
	if err := eng.Load(ds.Credit); err != nil {
		t.Fatal(err)
	}

	stats := &soakStats{}
	var inflight atomic.Bool

	// Snapshot trigger: 1 MiB of WAL debt at full scale, proportional
	// (32 bytes/record, ~a sixth of the history) at the small tiers, so
	// even a 10k run overlaps several captures with live traffic.
	snapEvery := int64(1) << 20
	if v := int64(n) * 32; v < snapEvery {
		snapEvery = v
	}

	// runPhase ingests units[from:] until done or the first failed unit
	// (a kill landed), with the snapshotter streaming captures whenever
	// enough WAL has accumulated. Returns the first unapplied unit.
	runPhase := func(units []soakUnit, from int) int {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(20 * time.Millisecond):
				}
				if st.BytesSinceSnapshot() < snapEvery {
					continue
				}
				inflight.Store(true)
				if _, err := eng.Snapshot(); err == nil {
					atomic.AddInt64(&stats.snapshots, 1)
				} // errors: a kill mid-snapshot; recovery falls back
				inflight.Store(false)
				stats.sampleMem()
			}
		}()
		defer func() { close(stop); wg.Wait() }()

		for u := from; u < len(units); u++ {
			unit := units[u]
			if unit.batch {
				in := record.NewInstance(ctx.Left)
				for i := unit.from; i < unit.to; i++ {
					if _, err := in.AppendWithID(soakIDBase+i, soakRow(i)); err != nil {
						t.Fatal(err)
					}
				}
				start := time.Now()
				if err := eng.Load(in); err != nil {
					return u
				}
				stats.batchSec += time.Since(start).Seconds()
				stats.batchRows += unit.to - unit.from
			} else {
				for i := unit.from; i < unit.to; i++ {
					start := time.Now()
					_, err := eng.AddClustered(soakIDBase+i, soakRow(i))
					if err != nil {
						return u
					}
					ms := float64(time.Since(start).Microseconds()) / 1000
					stats.singleMS = append(stats.singleMS, ms)
					if inflight.Load() {
						stats.inflightMS = append(stats.inflightMS, ms)
					}
				}
			}
			if u%8 == 0 {
				stats.sampleMem()
			}
		}
		return len(units)
	}

	// sameSoakState is sameEngineState with the soak's memory budget:
	// the correctness-tier helper materializes two full string states
	// plus two eager record dumps on top of the two live engines —
	// roughly four copies of the corpus, which IS the RSS peak at 1M
	// records. Here both sides are read through columnar cuts
	// (dictionary table views + 4-byte ID arrays) and a streamed
	// record source, so the comparison is just as exact — identical
	// dictionaries value-by-value INCLUDING order, identical interned
	// cell IDs (equivalent to identical resolved strings given equal
	// dictionaries, and stricter), clusters, stats, match-index records
	// one at a time — with O(records) small-int overhead, not O(bytes).
	sameSoakState := func(label string, got, want *Engine) {
		t.Helper()
		zero := func() uint64 { return 0 }
		gc, _ := got.Stream().SnapshotCut(zero)
		wc, _ := want.Stream().SnapshotCut(zero)
		gc.Stats.Chase.LHSEvaluations = 0
		wc.Stats.Chase.LHSEvaluations = 0
		if !reflect.DeepEqual(gc.Stats, wc.Stats) {
			t.Fatalf("%s: stats diverged: %+v vs %+v", label, gc.Stats, wc.Stats)
		}
		if len(gc.Dicts) != len(wc.Dicts) {
			t.Fatalf("%s: dictionary groups diverged", label)
		}
		for i := range gc.Dicts {
			g, w := gc.Dicts[i], wc.Dicts[i]
			if g.Col != w.Col || g.Values.Len() != w.Values.Len() {
				t.Fatalf("%s: dict group %d shape diverged", label, i)
			}
			for v := 0; v < g.Values.Len(); v++ {
				if g.Values.Value(v) != w.Values.Value(v) {
					t.Fatalf("%s: dict col %d value %d diverged", label, g.Col, v)
				}
			}
		}
		if !slices.Equal(gc.RowIDs, wc.RowIDs) {
			t.Fatalf("%s: row ids diverged (%d vs %d rows)", label, len(gc.RowIDs), len(wc.RowIDs))
		}
		for c := range gc.Cols {
			if !slices.Equal(gc.Cols[c], wc.Cols[c]) {
				t.Fatalf("%s: column %d cells diverged", label, c)
			}
		}
		if !reflect.DeepEqual(gc.Clusters, wc.Clusters) {
			t.Fatalf("%s: clusters diverged", label)
		}
		gr, wr := got.captureRecs(), want.captureRecs()
		if gr.Len() != wr.Len() {
			t.Fatalf("%s: match-index records diverged (%d vs %d)", label, gr.Len(), wr.Len())
		}
		var grec, wrec store.EngineRec
		for i := 0; i < gr.Len(); i++ {
			gr.Rec(i, &grec)
			wr.Rec(i, &wrec)
			if grec.ID != wrec.ID || !slices.Equal(grec.Values, wrec.Values) || !slices.Equal(grec.Keys, wrec.Keys) {
				t.Fatalf("%s: match-index record %d diverged", label, i)
			}
			if i < 5 { // spot-check serving behavior on a few stored rows
				gm, err := got.MatchOne(grec.Values)
				if err != nil {
					t.Fatal(err)
				}
				wm, err := want.MatchOne(wrec.Values)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(gm.Matches, wm.Matches) {
					t.Fatalf("%s: MatchOne = %v, want %v", label, gm.Matches, wm.Matches)
				}
			}
		}
	}

	// kill crashes the filesystem under the live engine, recovers the
	// directory twice — once to serve, once as a determinism check —
	// and verifies the recovered state is bit-identical to the acked
	// state the dying engine held.
	kill := func(label string) {
		fplan.Inject(fault.Injection{Op: fault.OpWrite, Index: fplan.Count(fault.OpWrite),
			Sticky: true, Crash: true})
		// Burn the armed fault: the engine must observe the crash before
		// recovery, or the "acked state" below could still advance.
		if _, err := eng.AddClustered(soakIDBase+n+stats.kills, soakRow(n+stats.kills)); err == nil {
			t.Fatalf("%s: insert succeeded over a crashed filesystem", label)
		}
		stats.kills++
		dead := eng
		_ = st.Close()

		fplan = fault.NewPlan()
		start := time.Now()
		eng, st = open(fault.Wrap(store.OSFS{}, fplan))
		stats.recoverySec = time.Since(start).Seconds()
		sameSoakState(label+": recovered vs acked", eng, dead)
		dead = nil // at 1M a whole engine state; release before the next rebuild
		// FreeOSMemory, not just GC: the scavenger returns freed spans
		// to the OS lazily, and two engine states just coexisted — the
		// process RSS high-water mark is part of the contract, so force
		// the return rather than letting the peak linger.
		debug.FreeOSMemory()

		// Determinism: an independent replay from the newest snapshot
		// over the same store must land on identical state.
		enf2, err := stream.New(ctx, sigma, stream.ClusterRules(0))
		if err != nil {
			t.Fatal(err)
		}
		again, err := New(plan, WithWorkers(2), WithStream(enf2))
		if err != nil {
			t.Fatal(err)
		}
		again.durable = st
		snap, err := st.LoadSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := again.replayFrom(snap); err != nil {
			t.Fatal(err)
		}
		sameSoakState(label+": recovery determinism", again, eng)
		debug.FreeOSMemory() // drop the replay engine before the next phase's samples
	}

	units := soakUnits(n)
	kill1, kill2 := len(units)*2/5, len(units)*7/10
	ingestStart := time.Now()

	at := runPhase(units[:kill1], 0)
	if at != kill1 {
		t.Fatalf("phase 1 stopped early at unit %d: unexpected insert failure", at)
	}
	kill("kill@40%")
	at = runPhase(units[:kill2], kill1)
	if at != kill2 {
		t.Fatalf("phase 2 stopped early at unit %d: unexpected insert failure", at)
	}
	kill("kill@70%")
	if at = runPhase(units, kill2); at != len(units) {
		t.Fatalf("phase 3 stopped early at unit %d: unexpected insert failure", at)
	}
	ingestSec := time.Since(ingestStart).Seconds()
	stats.sampleMem()

	// Convergence: a final explicit snapshot must succeed, and the
	// store must hold every record.
	if _, err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got, want := eng.store.len(), ds.Credit.Len()+n; got != want {
		t.Fatalf("engine holds %d records, want %d", got, want)
	}

	overall, stalled := p99(stats.singleMS), p99(stats.inflightMS)
	t.Logf("soak: %d records in %.1fs (%.0f rec/s), %d snapshots, %d kills, "+
		"single p99 %.2fms (inflight-overlap p99 %.2fms over %d probes), "+
		"heap peak %.1f MB, sys peak %.1f MB, last recovery %.2fs",
		n, ingestSec, float64(n)/ingestSec, atomic.LoadInt64(&stats.snapshots), stats.kills,
		overall, stalled, len(stats.inflightMS),
		float64(stats.peakHeap)/(1<<20), float64(stats.peakSys)/(1<<20), stats.recoverySec)

	if atomic.LoadInt64(&stats.snapshots) < 2 {
		t.Errorf("only %d concurrent snapshots completed; the soak never overlapped", stats.snapshots)
	}
	budget := float64(soakStallBudget.Milliseconds())
	if overall > budget {
		t.Errorf("single-insert p99 = %.2fms, budget %.0fms", overall, budget)
	}
	if stalled > budget {
		t.Errorf("snapshot-overlapped insert p99 = %.2fms, budget %.0fms", stalled, budget)
	}
	if stats.peakHeap > soakHeapCeiling {
		t.Errorf("heap high-water mark %d bytes breaches the %d ceiling", stats.peakHeap, soakHeapCeiling)
	}

	writeSoakReports(t, n, ingestSec, overall, stalled, stats, eng)
	gateSoak(t, n, overall, stalled, stats)
}

// --- scale sections + regression gate ---

type soakStoreEntry struct {
	GeneratedAt   string  `json:"generated_at"`
	Records       int     `json:"records"`
	Snapshots     int64   `json:"snapshots"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	InsertP99MS   float64 `json:"insert_p99_ms"`
	StallP99MS    float64 `json:"snapshot_stall_p99_ms"`
	RecoverySec   float64 `json:"recovery_seconds"`
	HeapPeakBytes uint64  `json:"heap_peak_bytes"`
	SysPeakBytes  uint64  `json:"sys_peak_bytes"`
	Kills         int     `json:"kills"`
}

type soakStreamEntry struct {
	GeneratedAt   string  `json:"generated_at"`
	Records       int     `json:"records"`
	IngestSec     float64 `json:"ingest_seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Clusters      int     `json:"clusters"`
}

// mergeScaleEntry upserts entry (matched by "records") into the
// "scale" list of the JSON document at path, preserving every other
// key — the scale section rides inside the layer's existing report.
func mergeScaleEntry(t *testing.T, path string, entry any, records int) {
	t.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", path, err)
		}
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}
	var asMap map[string]any
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	list, _ := doc["scale"].([]any)
	replaced := false
	for i, e := range list {
		if m, ok := e.(map[string]any); ok && m["records"] == float64(records) {
			list[i] = asMap
			replaced = true
		}
	}
	if !replaced {
		list = append(list, asMap)
	}
	doc["scale"] = list
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged scale entry (records=%d) into %s", records, path)
}

func writeSoakReports(t *testing.T, n int, ingestSec, overall, stalled float64, stats *soakStats, eng *Engine) {
	t.Helper()
	now := time.Now().UTC().Format(time.RFC3339)
	if out := os.Getenv("SOAK_STORE_OUT"); out != "" {
		_, size := eng.Store().LastSnapshot()
		mergeScaleEntry(t, out, soakStoreEntry{
			GeneratedAt: now, Records: n,
			Snapshots:     atomic.LoadInt64(&stats.snapshots),
			SnapshotBytes: size,
			InsertP99MS:   round3b(overall), StallP99MS: round3b(stalled),
			RecoverySec:   round3b(stats.recoverySec),
			HeapPeakBytes: stats.peakHeap, SysPeakBytes: stats.peakSys,
			Kills: stats.kills,
		}, n)
	}
	if out := os.Getenv("SOAK_STREAM_OUT"); out != "" {
		mergeScaleEntry(t, out, soakStreamEntry{
			GeneratedAt: now, Records: n,
			IngestSec:     round3b(ingestSec),
			RecordsPerSec: round3b(float64(n) / ingestSec),
			Clusters:      eng.Stream().Stats().Clusters,
		}, n)
	}
}

// gateSoak compares this run against the recorded scale entry at the
// same record count in the BENCH_store.json named by SOAK_GATE; a >10%
// regression of stall p99 or the heap watermark fails the run.
func gateSoak(t *testing.T, n int, overall, stalled float64, stats *soakStats) {
	t.Helper()
	path := os.Getenv("SOAK_GATE")
	if path == "" {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("SOAK_GATE: %v", err)
	}
	var doc struct {
		Scale []soakStoreEntry `json:"scale"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SOAK_GATE %s: %v", path, err)
	}
	for _, rec := range doc.Scale {
		if rec.Records != n {
			continue
		}
		// Floors keep the gate meaningful on sub-millisecond baselines:
		// scheduler noise on a loaded CI box is not a regression.
		p99Now, p99Rec := max(stalled, overall), max(rec.StallP99MS, rec.InsertP99MS)
		if floor := 2.0; p99Rec < floor {
			p99Rec = floor
		}
		if p99Now > 1.1*p99Rec {
			t.Errorf("gate: stall p99 %.2fms is >10%% over the recorded %.2fms", p99Now, p99Rec)
		}
		if heapRec := rec.HeapPeakBytes; heapRec > 0 && float64(stats.peakHeap) > 1.1*float64(heapRec) {
			t.Errorf("gate: heap peak %d is >10%% over the recorded %d", stats.peakHeap, heapRec)
		}
		t.Logf("gate: checked against recorded entry (records=%d)", n)
		return
	}
	t.Logf("gate: no recorded scale entry at records=%d in %s; skipped", n, path)
}
