package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mdmatch/internal/exec"
	"mdmatch/internal/metrics"
	"mdmatch/internal/par"
	"mdmatch/internal/record"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
	"mdmatch/internal/trace"
	"mdmatch/internal/values"
)

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the worker-pool size of MatchBatch and Load; n <= 0
// selects GOMAXPROCS.
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithShards sets the shard count of the blocking index and the record
// store (rounded up to a power of two); n <= 0 selects the default.
func WithShards(n int) Option { return func(e *Engine) { e.shardHint = n } }

// Observer receives per-operation measurements from the engine's hot
// paths. A nil observer is the default and costs nothing; a non-nil one
// adds one clock read pair per query. Implementations must be safe for
// concurrent use (queries run on many goroutines) and must not call
// back into the engine. An observer that additionally implements
// AttachEngine(*Engine) is handed the engine at construction, so it can
// register scrape-time views over Stats() and friends.
type Observer interface {
	// MatchObserved reports one MatchOne/worker query: its latency and
	// the candidate funnel (index postings retrieved, distinct candidates
	// evaluated, matches).
	MatchObserved(seconds float64, candidates, compared, matched int)
	// BatchObserved reports one MatchBatch call: wall latency (workers
	// joined) and batch size.
	BatchObserved(seconds float64, size int)
}

// WithObserver attaches an instrumentation observer to the engine's
// query paths. Passing nil (the default) keeps every hook a nil check.
func WithObserver(o Observer) Option { return func(e *Engine) { e.obs = o } }

// WithStream attaches an incremental enforcement engine to the serving
// engine: every record added to the match index is also inserted into
// the stream enforcer (Load in one deterministic batch, Add/AddClustered
// one at a time in arrival order), so the engine can answer cluster
// queries about its indexed records. The enforcer's relation must be
// the plan's left relation.
//
// With a stream attached, record ids become insert-once: enforcement
// cannot be undone, so Add rejects ids the enforcer has already seen,
// and Remove un-indexes a record from the match index but leaves its
// enforcement history — merged values, cluster membership — in place.
func WithStream(enf *stream.Enforcer) Option { return func(e *Engine) { e.stream = enf } }

// WithStore attaches a durability store (internal/store): at
// construction the engine recovers the store's persisted state — newest
// valid snapshot, then the WAL suffix replayed in original order
// through the stream enforcer — and from then on journals every
// mutation, so a restart resumes exactly where the last process left
// off. Requires WithStream (recovery replays inserts through the
// enforcer, and the enforcer's insertion lock is what gives the WAL its
// replayable order) with an enforcer that has not yet seen any inserts.
func WithStore(st *store.Store) Option { return func(e *Engine) { e.durable = st } }

// Result is the verdict of one MatchOne query.
type Result struct {
	// Matches holds the ids of indexed left records matching the queried
	// right record, ascending.
	Matches []int
	// Candidates counts index postings retrieved (before deduplication
	// across blocking keys).
	Candidates int
	// Compared counts distinct candidate records evaluated against the
	// rule plan.
	Compared int
}

// Stats is a snapshot of cumulative engine counters. The JSON tags give
// services exposing it (cmd/matchd) a uniform snake_case wire format.
type Stats struct {
	// IndexedRecords is the current number of records in the store.
	IndexedRecords int `json:"indexed_records"`
	// IndexKeys / IndexEntries describe the blocking index.
	IndexKeys    int `json:"index_keys"`
	IndexEntries int `json:"index_entries"`
	// Queries counts MatchOne calls (including those issued by
	// MatchBatch workers).
	Queries uint64 `json:"queries"`
	// Candidates counts index postings retrieved across all queries.
	Candidates uint64 `json:"candidates"`
	// Compared counts candidate pairs evaluated against the rules.
	Compared uint64 `json:"compared"`
	// Matched counts pairs the rules accepted.
	Matched uint64 `json:"matched"`
	// SearchSpace accumulates the unrestricted comparison space: the
	// store size at the time of each query. Compared/SearchSpace is the
	// fraction of the full cross product the index could not prune.
	SearchSpace uint64 `json:"search_space"`
}

// Pruned returns the number of pairs the blocking index skipped relative
// to the unrestricted comparison space.
func (s Stats) Pruned() uint64 {
	if s.Compared >= s.SearchSpace {
		return 0
	}
	return s.SearchSpace - s.Compared
}

// Blocking casts the counters as the paper's PC/RR inputs (Section 6.2),
// treating the engine's own matches as the reference match set. Like
// Pruned, it clamps the search space to the compared count: concurrent
// removals can shrink the store between a query's candidate evaluation
// and its SearchSpace sample, leaving Compared > SearchSpace.
func (s Stats) Blocking() metrics.BlockingQuality {
	space := s.SearchSpace
	if s.Compared > space {
		space = s.Compared
	}
	return metrics.BlockingQuality{
		SM: int(s.Matched),
		SU: int(s.Compared - s.Matched),
		NM: int(s.Matched),
		NU: int(space - s.Matched),
	}
}

// ReductionRatio returns RR = 1 - compared/searchspace, the fraction of
// the comparison space pruned by the blocking index.
func (s Stats) ReductionRatio() float64 { return s.Blocking().RR() }

// Engine serves matching queries against an indexed left-side instance:
// candidate retrieval through the sharded blocking index, then rule
// evaluation under the compiled plan — over interned value IDs: records
// are dictionary-encoded as they are added, queries as they arrive, so
// equality conjuncts compare integers and similarity conjuncts hit the
// interner's verdict caches (each distinct value pair pays for its
// operator evaluation once per engine, not once per candidate pair).
// All methods are safe for concurrent use; Add/Remove may interleave
// with MatchOne/MatchBatch.
type Engine struct {
	plan        *Plan
	index       *Index
	store       *recStore
	interner    *exec.Interner
	stream      *stream.Enforcer
	durable     *store.Store
	obs         Observer
	workers     int
	shardHint   int
	scratchPool sync.Pool

	// inflight counts MatchBatch calls currently executing (worker pools
	// live); always maintained — two atomic ops per batch.
	inflight atomic.Int64

	// writeMu serializes durable mutations (AddClustered, Load) against
	// snapshot capture: a snapshot taken mid-insert would hold the
	// stream's view of a record without the index's. Queries never take
	// it, and non-durable engines never touch it.
	writeMu sync.Mutex

	queries     atomic.Uint64
	candidates  atomic.Uint64
	compared    atomic.Uint64
	matched     atomic.Uint64
	searchSpace atomic.Uint64
}

// New builds an engine serving the given plan. The engine starts empty;
// populate it with Load, AddTuple or Add.
func New(plan *Plan, opts ...Option) (*Engine, error) {
	if plan == nil {
		return nil, fmt.Errorf("engine: nil plan")
	}
	e := &Engine{plan: plan}
	for _, o := range opts {
		o(e)
	}
	if e.stream != nil && e.stream.Relation() != plan.ctx.Left {
		return nil, fmt.Errorf("engine: stream enforcer is over %s, plan expects %s",
			e.stream.Relation().Name(), plan.ctx.Left.Name())
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.index = NewIndex(e.shardHint)
	e.store = newRecStore(e.shardHint)
	e.interner = exec.NewInterner(plan.prog)
	e.scratchPool.New = func() any { return &matchScratch{} }
	if e.durable != nil {
		if e.stream == nil {
			return nil, fmt.Errorf("engine: WithStore requires a stream enforcer (recovery replays the WAL through it)")
		}
		if e.stream.Len() != 0 {
			return nil, fmt.Errorf("engine: WithStore requires an unused enforcer: its %d existing records were never journaled", e.stream.Len())
		}
		if err := e.recover(); err != nil {
			return nil, fmt.Errorf("engine: recovering %s: %w", e.durable.Dir(), err)
		}
		// Journal from here on: recovery itself must not re-log history.
		e.stream.SetJournal(e.durable)
	}
	if a, ok := e.obs.(interface{ AttachEngine(*Engine) }); ok {
		a.AttachEngine(e)
	}
	return e, nil
}

// Plan returns the engine's compiled plan.
func (e *Engine) Plan() *Plan { return e.plan }

// Workers returns the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Len returns the number of indexed records.
func (e *Engine) Len() int { return e.store.len() }

// Add indexes a left-side record under the given id. The values are
// positional, parallel to the left relation's attributes; the slice is
// not retained (the record is stored in interned form).
// Without a stream enforcer attached, adding an existing id replaces
// the previous version (its old blocking keys are removed first); with
// one attached, ids are insert-once and duplicates are rejected.
// Mutations of one id are serialized on its store shard, so concurrent
// Add/Remove calls on the same id cannot leak stale index postings.
func (e *Engine) Add(id int, values []string) error {
	if e.stream == nil {
		return e.addIndexed(id, values)
	}
	_, err := e.AddClustered(id, values)
	return err
}

// AddClustered is Add for engines with a stream enforcer attached: the
// record is enforced against the maintained instance first (returning
// its cluster id and the rules its arrival fired) and then indexed for
// matching. The original values are indexed, not the enforcer's
// resolved ones: matching stays byte-faithful to what the caller
// supplied, enforcement owns the merged view.
func (e *Engine) AddClustered(id int, values []string) (stream.InsertResult, error) {
	return e.AddClusteredCtx(context.Background(), id, values)
}

// AddClusteredCtx is AddClustered with cancellation. Cancellation is
// honored only before the insert is journaled (at entry, before the
// write lock, and inside the enforcer before its insertion lock
// releases to the chase) — once enforcement runs the insert completes,
// because a half-applied chase is state no replay reproduces.
func (e *Engine) AddClusteredCtx(ctx context.Context, id int, values []string) (stream.InsertResult, error) {
	if e.stream == nil {
		return stream.InsertResult{}, fmt.Errorf("engine: no stream enforcer attached")
	}
	if got, want := len(values), e.plan.ctx.Left.Arity(); got != want {
		return stream.InsertResult{}, fmt.Errorf("engine: %s expects %d values, got %d",
			e.plan.ctx.Left.Name(), want, got)
	}
	ctx, sp := trace.StartSpan(ctx, "engine.insert")
	defer sp.End()
	if e.durable != nil {
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
	}
	res, err := e.stream.InsertCtx(ctx, id, values)
	if err != nil {
		return stream.InsertResult{}, err
	}
	return res, e.addIndexed(id, values)
}

// Stream returns the attached stream enforcer (nil when none).
func (e *Engine) Stream() *stream.Enforcer { return e.stream }

// addIndexed adds the record to the blocking index and store only.
func (e *Engine) addIndexed(id int, values []string) error {
	if got, want := len(values), e.plan.ctx.Left.Arity(); got != want {
		return fmt.Errorf("engine: %s expects %d values, got %d", e.plan.ctx.Left.Name(), want, got)
	}
	rec := storedRec{
		ids:  e.interner.InternLeft(values, nil),
		keys: e.plan.leftKeys(values, nil),
	}
	e.store.put(id, rec, func(old storedRec, existed bool) {
		if existed {
			for _, k := range old.keys {
				e.index.Remove(k, id)
			}
		}
		for _, k := range rec.keys {
			e.index.Add(k, id)
		}
	})
	return nil
}

// AddTuple indexes a left-side tuple.
func (e *Engine) AddTuple(t *record.Tuple) error { return e.Add(t.ID, t.Values) }

// Remove un-indexes the record with the given id and reports whether it
// was present. With a stream enforcer attached the record's enforcement
// history stays: rule firings identified cell values and cluster
// membership, and the chase has no inverse — the record merely stops
// being matchable. With a store attached the removal is journaled; a
// journal failure leaves the record indexed (RemoveLogged surfaces it).
func (e *Engine) Remove(id int) bool {
	ok, _ := e.RemoveLogged(id)
	return ok
}

// RemoveLogged is Remove with the journal error surfaced. With a store
// attached, the removal is appended to the WAL before it applies — both
// under the record's shard lock, so for any one id the WAL orders its
// insert before its remove exactly as the index observed them — and a
// journal failure vetoes the removal.
func (e *Engine) RemoveLogged(id int) (bool, error) {
	var pre func() error
	if e.durable != nil {
		pre = func() error { return e.durable.LogRemove(id) }
	}
	return e.store.delete(id, pre, func(rec storedRec) {
		for _, k := range rec.keys {
			e.index.Remove(k, id)
		}
	})
}

// Load bulk-indexes a left-side instance, fanning the work out over the
// engine's worker pool. The instance must be over the plan's left
// relation. With a stream enforcer attached, the instance is first
// enforced as ONE batch in instance order — one chase, deterministic
// regardless of the index workers' scheduling. Enforcement runs before
// indexing (like AddClustered): the enforcer validates the whole batch
// up front and mutates nothing on rejection, so a Load that fails on a
// duplicate id cannot leave the match index and the cluster store
// divergent.
func (e *Engine) Load(in *record.Instance) error {
	if in.Rel != e.plan.ctx.Left {
		return fmt.Errorf("engine: instance is over %s, plan expects %s", in.Rel.Name(), e.plan.ctx.Left.Name())
	}
	if e.durable != nil {
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
	}
	if e.stream != nil {
		if _, err := e.stream.InsertBatch(in); err != nil {
			return err
		}
	}
	return parallelFor(len(in.Tuples), e.workers, func(i int) error {
		return e.addIndexed(in.Tuples[i].ID, in.Tuples[i].Values)
	})
}

// parallelFor runs fn(0..n-1) over a pool of workers claiming CHUNKED
// index ranges (internal/par). The previous per-item atomic dispatch
// bounced the counter's cache line between cores once per query, which
// capped MatchBatch at ~1.04x on 4 workers; chunked claiming amortizes
// the contended Add over ~n/(workers*4) items.
func parallelFor(n, workers int, fn func(i int) error) error {
	return par.ForErr(n, workers, fn)
}

// MatchOne matches one right-side record (positional values) against the
// indexed store: blocking-key lookup for candidates, deduplication, then
// rule evaluation. Matches are returned in ascending id order.
func (e *Engine) MatchOne(values []string) (Result, error) {
	return e.MatchOneCtx(context.Background(), values)
}

// MatchOneCtx is MatchOne with cancellation: an abandoned request is
// rejected before its query runs. Matching is pure reads, so unlike
// inserts there is no journal point past which cancellation would be
// unsound — a single query is simply short enough that one up-front
// check suffices.
func (e *Engine) MatchOneCtx(ctx context.Context, values []string) (Result, error) {
	if got, want := len(values), e.plan.ctx.Right.Arity(); got != want {
		return Result{}, fmt.Errorf("engine: %s expects %d values, got %d", e.plan.ctx.Right.Name(), want, got)
	}
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	_, sp := trace.StartSpan(ctx, "engine.match")
	sc := e.scratchPool.Get().(*matchScratch)
	res := e.matchValues(values, sc)
	e.scratchPool.Put(sc)
	if sp != nil {
		sp.AttrInt("candidates", int64(res.Candidates))
		sp.AttrInt("compared", int64(res.Compared))
		sp.AttrInt("matches", int64(len(res.Matches)))
		sp.End()
	}
	return res, nil
}

// matchScratch holds reusable per-query buffers (pooled) so matching
// does not allocate key, candidate or interned-row slices per query.
type matchScratch struct {
	keys []string
	ids  []int
	qids []values.ID
}

func (e *Engine) matchValues(vals []string, scratch *matchScratch) Result {
	var start time.Time
	if e.obs != nil {
		start = time.Now()
	}
	scratch.keys = e.plan.rightKeys(vals, scratch.keys[:0])
	scratch.ids = scratch.ids[:0]
	for _, k := range scratch.keys {
		scratch.ids = e.index.AppendTo(k, scratch.ids)
	}
	raw := len(scratch.ids)
	sort.Ints(scratch.ids)
	// The query row is interned at most once, lazily — blocking prunes
	// most queries to zero candidates, and those skip the dictionary
	// entirely. Every candidate comparison then runs on IDs (conjuncts
	// shared across rules are answered by the interner's verdict caches,
	// the cross-query generalization of the old per-pair memo).
	var res Result
	res.Candidates = raw
	interned := false
	prev := -1
	for _, id := range scratch.ids {
		if id == prev {
			continue
		}
		prev = id
		left, ok := e.store.get(id)
		if !ok {
			// Removed between index lookup and store fetch.
			continue
		}
		if !interned {
			scratch.qids = e.interner.InternRight(vals, scratch.qids)
			interned = true
		}
		res.Compared++
		if e.interner.EvalPairIDs(left.ids, scratch.qids) {
			res.Matches = append(res.Matches, id)
		}
	}
	e.queries.Add(1)
	e.candidates.Add(uint64(raw))
	e.compared.Add(uint64(res.Compared))
	e.matched.Add(uint64(len(res.Matches)))
	e.searchSpace.Add(uint64(e.store.len()))
	if e.obs != nil {
		e.obs.MatchObserved(time.Since(start).Seconds(), raw, res.Compared, len(res.Matches))
	}
	return res
}

// MatchBatch matches a batch of right-side records, fanning the queries
// out over the worker pool. results[i] is the verdict of batch[i]
// regardless of scheduling, so the output is deterministic for a fixed
// store.
func (e *Engine) MatchBatch(batch [][]string) ([]Result, error) {
	return e.MatchBatchCtx(context.Background(), batch)
}

// MatchBatchCtx is MatchBatch with cancellation, checked once per query
// before it runs: when the caller (an HTTP request whose client hung
// up) cancels mid-batch, the worker pool stops claiming queries and the
// call returns ctx.Err() promptly instead of matching the remainder for
// nobody. Matching is pure reads, so stopping anywhere is safe. The
// check is a non-blocking channel inspection, skipped entirely for
// non-cancellable contexts — MatchBatch stays on the old path at zero
// cost (the bench-fault gate pins this overhead under 1%).
func (e *Engine) MatchBatchCtx(ctx context.Context, batch [][]string) ([]Result, error) {
	want := e.plan.ctx.Right.Arity()
	for i, values := range batch {
		if len(values) != want {
			return nil, fmt.Errorf("engine: batch[%d]: %s expects %d values, got %d", i, e.plan.ctx.Right.Name(), want, len(values))
		}
	}
	_, sp := trace.StartSpan(ctx, "engine.match_batch")
	sp.AttrInt("size", int64(len(batch)))
	defer sp.End()
	var start time.Time
	if e.obs != nil {
		start = time.Now()
	}
	e.inflight.Add(1)
	results := make([]Result, len(batch))
	done := ctx.Done()
	err := parallelFor(len(batch), e.workers, func(i int) error {
		// Cancellation is polled every 32nd query, not every query: the
		// channel select is measurable on the hot path (the bench-fault
		// gate holds it under 1%), and a ≤32-query stop latency is
		// indistinguishable from instant for an HTTP client.
		if done != nil && i&31 == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		sc := e.scratchPool.Get().(*matchScratch)
		results[i] = e.matchValues(batch[i], sc)
		e.scratchPool.Put(sc)
		return nil
	})
	e.inflight.Add(-1)
	if err != nil {
		return nil, err
	}
	if e.obs != nil {
		e.obs.BatchObserved(time.Since(start).Seconds(), len(batch))
	}
	return results, nil
}

// MatchInstance matches every tuple of a right-side instance and returns
// the verdicts in tuple order, plus the matched pairs as a set.
func (e *Engine) MatchInstance(in *record.Instance) ([]Result, *metrics.PairSet, error) {
	if in.Rel != e.plan.ctx.Right {
		return nil, nil, fmt.Errorf("engine: instance is over %s, plan expects %s", in.Rel.Name(), e.plan.ctx.Right.Name())
	}
	batch := make([][]string, len(in.Tuples))
	for i, t := range in.Tuples {
		batch[i] = t.Values
	}
	results, err := e.MatchBatch(batch)
	if err != nil {
		return nil, nil, err
	}
	pairs := metrics.NewPairSet()
	for i, r := range results {
		rid := in.Tuples[i].ID
		for _, lid := range r.Matches {
			pairs.Add(metrics.Pair{Left: lid, Right: rid})
		}
	}
	return results, pairs, nil
}

// Stats returns a snapshot of the engine's cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		IndexedRecords: e.store.len(),
		IndexKeys:      e.index.Keys(),
		IndexEntries:   e.index.Entries(),
		Queries:        e.queries.Load(),
		Candidates:     e.candidates.Load(),
		Compared:       e.compared.Load(),
		Matched:        e.matched.Load(),
		SearchSpace:    e.searchSpace.Load(),
	}
}

// InFlightBatches returns the number of MatchBatch calls currently
// executing (their worker pools live) — the engine's utilization gauge.
func (e *Engine) InFlightBatches() int64 { return e.inflight.Load() }

// PairEvals returns the interner's cumulative pair-decision counters:
// total candidate pairs decided, and the subset that fell off the warm
// (fully verdict-cached) path into operator evaluation.
func (e *Engine) PairEvals() (total, resolved uint64) { return e.interner.PairEvals() }

// ResetStats zeroes the query counters (the store and index are kept).
func (e *Engine) ResetStats() {
	e.queries.Store(0)
	e.candidates.Store(0)
	e.compared.Store(0)
	e.matched.Store(0)
	e.searchSpace.Store(0)
}

// --- sharded record store ---

// storedRec is one indexed record: its interned row (IDs in the engine
// interner's dictionaries) and its rendered blocking keys, both encoded
// once at Add time — neither replacement nor removal ever re-renders a
// key, candidate evaluation never re-interns a stored record, and the
// raw string row is not retained at all (the dictionaries already hold
// every distinct value).
type storedRec struct {
	ids  []values.ID
	keys []string
}

// store is a sharded map from record id to its stored record. Like the
// index it stripes locks by hash so concurrent Add/Remove/get calls on
// different records proceed without contention. Mutations take a
// callback that runs while the shard lock is held: the engine updates
// the blocking index inside it, which serializes all index key changes
// of one id. (Safe against the index's own locks: index methods never
// take store locks, so the lock order store -> index is acyclic.)
type recStore struct {
	shards []storeShard
	mask   uint64
	size   atomic.Int64
}

type storeShard struct {
	mu sync.RWMutex
	m  map[int]storedRec
}

func newRecStore(count int) *recStore {
	n := shardCount(count)
	st := &recStore{shards: make([]storeShard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		st.shards[i].m = make(map[int]storedRec)
	}
	return st
}

// shard mixes the id (Fibonacci hashing) so sequential ids spread
// across shards instead of clustering.
func (st *recStore) shard(id int) *storeShard {
	return &st.shards[(uint64(id)*0x9E3779B97F4A7C15)>>32&st.mask]
}

// put stores a record under id; swap runs under the shard lock with the
// previous record (if any).
func (st *recStore) put(id int, rec storedRec, swap func(old storedRec, existed bool)) {
	s := st.shard(id)
	s.mu.Lock()
	old, existed := s.m[id]
	s.m[id] = rec
	swap(old, existed)
	s.mu.Unlock()
	if !existed {
		st.size.Add(1)
	}
}

func (st *recStore) get(id int) (storedRec, bool) {
	s := st.shard(id)
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

// delete removes id and reports whether it existed. pre (optional) runs
// under the shard lock before anything changes and can veto the removal
// by failing — the engine journals the removal there, so the log append
// and the index change are atomic with respect to the shard. drop runs
// under the shard lock with the removed record.
func (st *recStore) delete(id int, pre func() error, drop func(rec storedRec)) (bool, error) {
	s := st.shard(id)
	s.mu.Lock()
	v, ok := s.m[id]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	if pre != nil {
		if err := pre(); err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	delete(s.m, id)
	drop(v)
	s.mu.Unlock()
	st.size.Add(-1)
	return true, nil
}

// each calls fn for every stored record, one shard at a time under the
// shard read lock. Iteration order is unspecified; snapshot capture
// sorts what it collects.
func (st *recStore) each(fn func(id int, rec storedRec)) {
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.RLock()
		for id, rec := range s.m {
			fn(id, rec)
		}
		s.mu.RUnlock()
	}
}

func (st *recStore) len() int { return int(st.size.Load()) }
