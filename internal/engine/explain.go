package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mdmatch/internal/trace"
	"mdmatch/internal/values"
)

// MatchExplain is the provenance of one match query: the blocking keys
// the query rendered, the candidate funnel, and a per-candidate verdict
// breakdown — which rule LHSs held and which negative rules vetoed.
// It is the serving-side answer to "why did (or didn't) this record
// match": the fast path reports only ids, the explain path reports the
// evidence.
type MatchExplain struct {
	// Keys are the blocking keys rendered from the query values, in
	// blocker order — the index lookups that produced the candidates.
	Keys []string `json:"keys"`
	// Candidates is the raw posting count retrieved from the index
	// (before deduplication), Compared the distinct candidates evaluated.
	Candidates int `json:"candidates"`
	Compared   int `json:"compared"`
	// Results holds one entry per distinct candidate, in ascending id
	// order — including non-matches, which is the point of explain.
	Results []CandidateExplain `json:"results"`
}

// CandidateExplain is the verdict breakdown for one candidate record.
type CandidateExplain struct {
	ID int `json:"id"`
	// Values is the candidate's indexed row as the caller supplied it
	// (matching is byte-faithful to the original values, not the
	// enforcer's resolved view).
	Values []string `json:"values"`
	// Rules lists the indices of the plan's keys whose LHS held for
	// this pair — every one, not just the first: the fast path
	// short-circuits on the first satisfied rule, explain enumerates.
	Rules []int `json:"rules"`
	// Vetoes lists the negative rules whose LHS held, each of which
	// vetoes the match regardless of Rules.
	Vetoes []int `json:"vetoes,omitempty"`
	// Matched is the fast path's verdict: at least one rule held and
	// no negative rule vetoed. Explain and MatchOne agree by
	// construction — both evaluate the same compiled conjuncts
	// (TestMatchExplainAgrees pins it).
	Matched bool `json:"matched"`
}

// MatchExplainCtx matches one right-side record like MatchOneCtx but
// returns the full per-rule evidence instead of just the match set. It
// evaluates every rule and every negative rule for every candidate (no
// short-circuiting), so it is strictly slower than MatchOneCtx — it is
// a debugging endpoint, not a serving path — but its Matched verdicts
// are identical, and it updates the same engine counters and observer
// hooks so explained queries are not invisible to metrics.
func (e *Engine) MatchExplainCtx(ctx context.Context, vals []string) (*MatchExplain, error) {
	if got, want := len(vals), e.plan.ctx.Right.Arity(); got != want {
		return nil, fmt.Errorf("engine: %s expects %d values, got %d", e.plan.ctx.Right.Name(), want, got)
	}
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	_, sp := trace.StartSpan(ctx, "engine.match")
	defer sp.End()
	sp.AttrInt("explain", 1)
	var start time.Time
	if e.obs != nil {
		start = time.Now()
	}
	ex := &MatchExplain{Keys: e.plan.rightKeys(vals, nil)}
	var ids []int
	for _, k := range ex.Keys {
		ids = e.index.AppendTo(k, ids)
	}
	ex.Candidates = len(ids)
	sort.Ints(ids)
	numRules := e.plan.prog.NumRules()
	numNeg := e.plan.prog.NumNegative()
	var rids []values.ID
	interned := false
	matched := 0
	prev := -1
	for _, id := range ids {
		if id == prev {
			continue
		}
		prev = id
		left, ok := e.store.get(id)
		if !ok {
			continue // removed between index lookup and store fetch
		}
		if !interned {
			rids = e.interner.InternRight(vals, nil)
			interned = true
		}
		ex.Compared++
		ce := CandidateExplain{
			ID:     id,
			Values: e.interner.LeftStrings(left.ids, nil),
		}
		for r := 0; r < numRules; r++ {
			if e.interner.EvalRuleIDs(r, left.ids, rids) {
				ce.Rules = append(ce.Rules, r)
			}
		}
		for n := 0; n < numNeg; n++ {
			if e.interner.EvalNegativeIDs(n, left.ids, rids) {
				ce.Vetoes = append(ce.Vetoes, n)
			}
		}
		ce.Matched = len(ce.Rules) > 0 && len(ce.Vetoes) == 0
		if ce.Matched {
			matched++
		}
		ex.Results = append(ex.Results, ce)
	}
	e.queries.Add(1)
	e.candidates.Add(uint64(ex.Candidates))
	e.compared.Add(uint64(ex.Compared))
	e.matched.Add(uint64(matched))
	e.searchSpace.Add(uint64(e.store.len()))
	if e.obs != nil {
		e.obs.MatchObserved(time.Since(start).Seconds(), ex.Candidates, ex.Compared, matched)
	}
	sp.AttrInt("candidates", int64(ex.Candidates))
	sp.AttrInt("compared", int64(ex.Compared))
	sp.AttrInt("matches", int64(matched))
	return ex, nil
}
