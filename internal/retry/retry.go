// Package retry is capped exponential backoff with deterministic
// jitter, built for background loops that must never wedge: the matchd
// snapshotter retries a failed snapshot through a Backoff instead of
// hammering the disk every tick, and the coming WAL-shipping follower
// (ROADMAP item 2) needs exactly the same primitive for reconnects.
//
// Two properties the rest of the repo relies on:
//
//   - no global randomness: jitter comes from a PRNG seeded in the
//     Policy, so a test (and a bug report) replays the exact delay
//     sequence;
//   - an injectable Clock, so tests step through hour-long schedules in
//     microseconds and cancellation is honored mid-sleep.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Clock abstracts waiting so tests control time. Sleep returns early
// with ctx.Err() when the context is done.
type Clock interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production Clock: timer-based sleeping.
type realClock struct{}

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Policy describes one backoff schedule. The zero value is usable:
// 100ms initial delay doubling to a 30s cap, 20% jitter, unlimited
// attempts, real clock, seed 0.
type Policy struct {
	// Initial is the first delay (default 100ms).
	Initial time.Duration
	// Max caps every delay (default 30s).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter/2 of itself
	// (default 0.2). NoJitter disables jitter entirely (the zero value
	// means "default", so "none" needs an explicit marker).
	Jitter float64
	// MaxAttempts bounds Do (0 = retry until success, permanent error,
	// or cancellation). A Backoff itself is unbounded; the caller owns
	// the loop.
	MaxAttempts int
	// Seed seeds the jitter PRNG — same seed, same delay sequence.
	Seed int64
	// Clock substitutes the time source (nil = real time).
	Clock Clock
}

func (p Policy) withDefaults() Policy {
	if p.Initial <= 0 {
		p.Initial = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 30 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Clock == nil {
		p.Clock = realClock{}
	}
	return p
}

// NoJitter is the Jitter value that disables jitter (the field's zero
// value means "default 20%", so "none" needs an explicit marker).
const NoJitter = -1

// Backoff is one in-progress schedule: Next returns successive jittered
// delays, Reset starts over after a success. Not safe for concurrent
// use; each retrying loop owns one.
type Backoff struct {
	p       Policy
	rng     *rand.Rand
	base    time.Duration
	attempt int
}

// Backoff starts a schedule under the policy.
func (p Policy) Backoff() *Backoff {
	p = p.withDefaults()
	return &Backoff{p: p, rng: rand.New(rand.NewSource(p.Seed)), base: p.Initial}
}

// Next returns the delay to wait before the next attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.base
	if j := b.p.Jitter; j > 0 {
		// Spread uniformly over [d*(1-j/2), d*(1+j/2)] so synchronized
		// retriers de-correlate.
		d = time.Duration(float64(d) * (1 - j/2 + j*b.rng.Float64()))
	}
	b.attempt++
	next := time.Duration(float64(b.base) * b.p.Multiplier)
	if next > b.p.Max || next < b.base { // overflow-safe cap
		next = b.p.Max
	}
	b.base = next
	if d > b.p.Max {
		d = b.p.Max
	}
	return d
}

// Attempt returns how many delays Next has produced since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset restarts the schedule at the initial delay (call after a
// success so the next failure backs off from the bottom).
func (b *Backoff) Reset() {
	b.base = b.p.Initial
	b.attempt = 0
}

// Sleep waits out the next delay on the policy's clock. It returns
// ctx.Err() when cancelled mid-wait.
func (b *Backoff) Sleep(ctx context.Context) error {
	return b.p.Clock.Sleep(ctx, b.Next())
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error to tell Do to stop retrying and return it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do calls fn until it succeeds, returns a Permanent error, the context
// is cancelled, or MaxAttempts is exhausted. It returns nil on success;
// otherwise the last attempt's error (unwrapped from Permanent), with
// the context error joined in when cancellation cut the schedule short.
func (p Policy) Do(ctx context.Context, fn func() error) error {
	b := p.Backoff()
	for {
		err := fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if p.MaxAttempts > 0 && b.Attempt()+1 >= p.MaxAttempts {
			return err
		}
		if serr := b.Sleep(ctx); serr != nil {
			return errors.Join(err, serr)
		}
	}
}
