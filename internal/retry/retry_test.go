package retry

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// fakeClock records requested sleeps and never actually waits.
type fakeClock struct {
	slept []time.Duration
	err   error // returned from Sleep (simulates cancellation)
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.slept = append(c.slept, d)
	if c.err != nil {
		return c.err
	}
	return ctx.Err()
}

// TestBackoffGrowthAndCap pins the jitter-free schedule: exponential
// growth from Initial by Multiplier, capped at Max.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: NoJitter}.Backoff()
	var got []time.Duration
	for i := 0; i < 6; i++ {
		got = append(got, b.Next())
	}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delays = %v, want %v", got, want)
	}
	if b.Attempt() != 6 {
		t.Fatalf("Attempt = %d, want 6", b.Attempt())
	}
	b.Reset()
	if d := b.Next(); d != 10*time.Millisecond || b.Attempt() != 1 {
		t.Fatalf("after Reset: Next = %v, Attempt = %d", d, b.Attempt())
	}
}

// TestBackoffJitterDeterministic pins that jitter is seeded: same seed,
// same sequence; different seed, (almost surely) different sequence;
// every delay within the ±Jitter/2 envelope of its base.
func TestBackoffJitterDeterministic(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		b := Policy{Initial: time.Second, Max: time.Hour, Jitter: 0.5, Seed: seed}.Backoff()
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, b.Next())
		}
		return out
	}
	a, b2 := mk(7), mk(7)
	if !reflect.DeepEqual(a, b2) {
		t.Fatalf("same seed produced different delays: %v vs %v", a, b2)
	}
	if reflect.DeepEqual(a, mk(8)) {
		t.Fatal("different seeds produced identical delays")
	}
	base := time.Second
	for i, d := range a {
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		base *= 2
	}
}

// TestDoRetriesUntilSuccess pins the Do loop against a fake clock.
func TestDoRetriesUntilSuccess(t *testing.T) {
	clk := &fakeClock{}
	p := Policy{Initial: time.Millisecond, Jitter: NoJitter, Clock: clk}
	n := 0
	err := p.Do(context.Background(), func() error {
		n++
		if n < 4 {
			return errors.New("not yet")
		}
		return nil
	})
	if err != nil || n != 4 || len(clk.slept) != 3 {
		t.Fatalf("err=%v n=%d sleeps=%v", err, n, clk.slept)
	}
}

// TestDoPermanent pins that a Permanent error stops the loop at once
// and unwraps.
func TestDoPermanent(t *testing.T) {
	clk := &fakeClock{}
	base := errors.New("bad rules")
	n := 0
	err := Policy{Clock: clk}.Do(context.Background(), func() error {
		n++
		return Permanent(base)
	})
	if !errors.Is(err, base) || err.Error() != "bad rules" || n != 1 || len(clk.slept) != 0 {
		t.Fatalf("err=%v n=%d sleeps=%v", err, n, clk.slept)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

// TestDoMaxAttempts pins the attempt bound.
func TestDoMaxAttempts(t *testing.T) {
	clk := &fakeClock{}
	fail := errors.New("still failing")
	n := 0
	err := Policy{MaxAttempts: 3, Clock: clk}.Do(context.Background(), func() error { n++; return fail })
	if !errors.Is(err, fail) || n != 3 || len(clk.slept) != 2 {
		t.Fatalf("err=%v n=%d sleeps=%v", err, n, clk.slept)
	}
}

// TestDoCancellation pins that cancellation mid-sleep surfaces both the
// attempt error and the context error.
func TestDoCancellation(t *testing.T) {
	clk := &fakeClock{err: context.Canceled}
	fail := errors.New("transient")
	err := Policy{Clock: clk}.Do(context.Background(), func() error { return fail })
	if !errors.Is(err, fail) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want both the attempt and context errors", err)
	}
}

// TestRealClockCancels pins that the production clock honors a done
// context instead of sleeping out the delay.
func TestRealClockCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := (realClock{}).Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep waited despite cancellation")
	}
}
