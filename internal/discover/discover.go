// Package discover mines candidate matching dependencies from sample
// data — the extension sketched in Sections 7-8 of the paper ("one can
// first discover a small set of MDs via sampling and learning, and then
// leverage the reasoning techniques to deduce RCKs"; "an important topic
// is to develop algorithms for discovering MDs from sample data, along
// the same lines as discovery of FDs").
//
// The miner is levelwise, in the style of FD-discovery algorithms like
// TANE: it enumerates candidate LHSs over a field universe by growing
// conjunct sets, scores each against a labeled sample of tuple pairs,
// and keeps the minimal LHSs whose confidence and support clear the
// configured thresholds. A discovered LHS L yields the MD
// L → R1[Y1] ⇌ R2[Y2] for the supplied target.
package discover

import (
	"fmt"
	"sort"

	"mdmatch/internal/core"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
)

// Sample is a labeled set of tuple pairs: candidates plus the subset
// known to be true matches (from manual review or a generator's truth).
type Sample struct {
	D     *record.PairInstance
	Pairs []metrics.Pair
	Truth *metrics.PairSet
}

// Config controls mining.
type Config struct {
	// Fields is the universe of (attribute pair, operator) tests the
	// miner may combine into LHSs.
	Fields []matching.Field
	// MaxLHS bounds the conjunct count of a candidate LHS (default 3).
	MaxLHS int
	// MinSupport is the minimum number of *matching* sample pairs an LHS
	// must cover (default 5).
	MinSupport int
	// MinConfidence is the minimum fraction of LHS-covered pairs that
	// are true matches (default 0.95).
	MinConfidence float64
}

func (c *Config) defaults() {
	if c.MaxLHS <= 0 {
		c.MaxLHS = 3
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 5
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.95
	}
}

// Candidate is a mined LHS with its sample statistics.
type Candidate struct {
	Conjuncts  []core.Conjunct
	Support    int     // matching pairs covered
	Covered    int     // all pairs covered
	Confidence float64 // Support / Covered
}

// String renders the candidate with its statistics.
func (c Candidate) String() string {
	md := core.MD{LHS: c.Conjuncts}
	parts := make([]string, len(md.LHS))
	for i, cj := range md.LHS {
		parts[i] = fmt.Sprintf("%s %s %s", cj.Pair.Left, cj.OpName(), cj.Pair.Right)
	}
	return fmt.Sprintf("%v (support=%d, confidence=%.3f)", parts, c.Support, c.Confidence)
}

// Mine discovers minimal high-confidence LHSs from the sample. The
// result is sorted by descending support, then ascending length.
func Mine(sample Sample, cfg Config) ([]Candidate, error) {
	cfg.defaults()
	if sample.D == nil || len(sample.Pairs) == 0 || sample.Truth == nil {
		return nil, fmt.Errorf("discover: sample needs an instance pair, pairs and truth")
	}
	if len(cfg.Fields) == 0 {
		return nil, fmt.Errorf("discover: no fields to mine over")
	}

	// Precompute the agreement bitmap: for each field, which sample
	// pairs satisfy it. The fields compile once (exec kernel) and every
	// sample pair evaluates positionally.
	cv, err := matching.CompileFields(sample.D.Ctx, cfg.Fields)
	if err != nil {
		return nil, err
	}
	n := len(sample.Pairs)
	agree := make([][]bool, len(cfg.Fields))
	isMatch := make([]bool, n)
	var vec []bool
	for j, p := range sample.Pairs {
		t1, ok := sample.D.Left.ByID(p.Left)
		if !ok {
			return nil, fmt.Errorf("discover: sample pair references missing left tuple %d", p.Left)
		}
		t2, ok := sample.D.Right.ByID(p.Right)
		if !ok {
			return nil, fmt.Errorf("discover: sample pair references missing right tuple %d", p.Right)
		}
		vec = cv.Eval(t1.Values, t2.Values, vec)
		for i, a := range vec {
			if agree[i] == nil {
				agree[i] = make([]bool, n)
			}
			agree[i][j] = a
		}
		isMatch[j] = sample.Truth.Has(p)
	}

	// Levelwise search. A node is a sorted set of field indices; its
	// cover is the AND of the fields' agreement bitmaps. Nodes whose
	// cover already satisfies the thresholds are emitted and not grown
	// further (minimality); nodes whose support fell below MinSupport
	// are pruned (support is antitone in the conjunct set).
	type node struct {
		fields []int
		cover  []bool
	}
	var out []Candidate
	level := make([]node, 0, len(cfg.Fields))
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	emitted := map[string]bool{}
	grow := func(parent node, f int) (node, bool) {
		cover := make([]bool, n)
		support := 0
		covered := 0
		for j := range cover {
			cover[j] = parent.cover[j] && agree[f][j]
			if cover[j] {
				covered++
				if isMatch[j] {
					support++
				}
			}
		}
		if support < cfg.MinSupport {
			return node{}, false
		}
		child := node{fields: append(append([]int{}, parent.fields...), f), cover: cover}
		conf := float64(support) / float64(covered)
		if conf >= cfg.MinConfidence {
			key := fmt.Sprint(child.fields)
			if !emitted[key] {
				emitted[key] = true
				cs := make([]core.Conjunct, len(child.fields))
				for i, fi := range child.fields {
					cs[i] = core.Conjunct{Pair: cfg.Fields[fi].Pair, Op: cfg.Fields[fi].Op}
				}
				out = append(out, Candidate{
					Conjuncts: cs, Support: support, Covered: covered, Confidence: conf,
				})
			}
			return node{}, false // minimal: do not grow further
		}
		return child, true
	}
	root := node{cover: full}
	for f := range cfg.Fields {
		if child, ok := grow(root, f); ok {
			level = append(level, child)
		}
	}
	for depth := 1; depth < cfg.MaxLHS && len(level) > 0; depth++ {
		var next []node
		for _, nd := range level {
			last := nd.fields[len(nd.fields)-1]
			for f := last + 1; f < len(cfg.Fields); f++ {
				if child, ok := grow(nd, f); ok {
					next = append(next, child)
				}
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return len(out[i].Conjuncts) < len(out[j].Conjuncts)
	})
	return out, nil
}

// ToMDs converts mined candidates into MDs for the given target,
// validating each against the context.
func ToMDs(ctx schema.Pair, target core.Target, candidates []Candidate) ([]core.MD, error) {
	out := make([]core.MD, 0, len(candidates))
	for i, c := range candidates {
		md, err := core.NewMD(ctx, c.Conjuncts, target.Pairs())
		if err != nil {
			return nil, fmt.Errorf("discover: candidate %d: %w", i, err)
		}
		out = append(out, md)
	}
	return out, nil
}
