package discover

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/similarity"
)

// makeSample builds a labeled sample from a generated dataset: all
// same-holder pairs plus windows of random non-matching pairs.
func makeSample(t testing.TB, k int) (Sample, *gen.Dataset) {
	t.Helper()
	ds, err := gen.Generate(gen.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	truth := ds.Truth()
	var pairs []metrics.Pair
	// All true matches...
	pairs = append(pairs, truth.Pairs()...)
	// ...plus systematic non-matches (shifted holders).
	for i, ct := range ds.Credit.Tuples {
		bt := ds.Billing.Tuples[(i*7+3)%ds.Billing.Len()]
		p := metrics.Pair{Left: ct.ID, Right: bt.ID}
		if !truth.Has(p) {
			pairs = append(pairs, p)
		}
	}
	return Sample{D: d, Pairs: pairs, Truth: truth}, ds
}

func fieldUniverse() []matching.Field {
	d := similarity.DL(0.8)
	mk := func(l, r string) matching.Field {
		return matching.Field{Pair: core.P(l, r), Op: d}
	}
	return []matching.Field{
		mk("fn", "fn"), mk("ln", "ln"), mk("street", "street"),
		mk("city", "city"), mk("zip", "zip"), mk("tel", "phn"),
		mk("email", "email"), mk("dob", "dob"), mk("cno", "cno"),
		{Pair: core.P("gender", "gender"), Op: similarity.Eq()},
	}
}

func TestMineFindsUsefulRules(t *testing.T) {
	sample, ds := makeSample(t, 250)
	cands, err := Mine(sample, Config{Fields: fieldUniverse(), MaxLHS: 3, MinSupport: 10, MinConfidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("nothing mined")
	}
	// Every candidate meets the thresholds and is within the size bound.
	for _, c := range cands {
		if c.Confidence < 0.95 {
			t.Errorf("candidate %s below confidence threshold", c)
		}
		if c.Support < 10 {
			t.Errorf("candidate %s below support threshold", c)
		}
		if len(c.Conjuncts) > 3 {
			t.Errorf("candidate %s exceeds MaxLHS", c)
		}
	}
	// Sorted by support descending.
	for i := 1; i < len(cands); i++ {
		if cands[i].Support > cands[i-1].Support {
			t.Fatal("candidates not sorted by support")
		}
	}
	// The discover->deduce pipeline of Section 7: mined MDs feed
	// findRCKs.
	target := gen.Target(ds.Ctx)
	mds, err := ToMDs(ds.Ctx, target, cands)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := core.FindRCKs(ds.Ctx, mds, target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no RCKs from mined MDs")
	}
	t.Logf("mined %d candidate LHSs; top: %s", len(cands), cands[0])
}

func TestMineMinimality(t *testing.T) {
	sample, _ := makeSample(t, 200)
	cands, err := Mine(sample, Config{Fields: fieldUniverse(), MaxLHS: 3, MinSupport: 8, MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// No emitted candidate is a superset of another emitted candidate.
	sig := func(cs []core.Conjunct) map[string]bool {
		m := map[string]bool{}
		for _, c := range cs {
			m[c.Pair.String()+c.OpName()] = true
		}
		return m
	}
	for i, a := range cands {
		for j, b := range cands {
			if i == j || len(a.Conjuncts) >= len(b.Conjuncts) {
				continue
			}
			bs := sig(b.Conjuncts)
			subset := true
			for k := range sig(a.Conjuncts) {
				if !bs[k] {
					subset = false
					break
				}
			}
			if subset {
				t.Fatalf("candidate %v subsumes emitted superset %v", a, b)
			}
		}
	}
}

func TestMineValidation(t *testing.T) {
	sample, _ := makeSample(t, 20)
	if _, err := Mine(Sample{}, Config{Fields: fieldUniverse()}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Mine(sample, Config{}); err == nil {
		t.Error("no fields accepted")
	}
	bad := sample
	bad.Pairs = []metrics.Pair{{Left: -1, Right: -1}}
	if _, err := Mine(bad, Config{Fields: fieldUniverse()}); err == nil {
		t.Error("dangling pair accepted")
	}
}

func TestMineSupportPruning(t *testing.T) {
	sample, _ := makeSample(t, 100)
	// Absurd support threshold: nothing survives.
	cands, err := Mine(sample, Config{Fields: fieldUniverse(), MinSupport: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("expected nothing above support 2^30, got %d", len(cands))
	}
	// Trivial thresholds: single-field rules only (minimality stops
	// growth as soon as confidence is met).
	cands, err = Mine(sample, Config{Fields: fieldUniverse(), MinSupport: 1, MinConfidence: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if len(c.Conjuncts) != 1 {
			t.Fatalf("with ~0 confidence threshold all rules must be single conjunct: %v", c)
		}
	}
}

func TestToMDsValidation(t *testing.T) {
	_, ds := makeSample(t, 20)
	target := gen.Target(ds.Ctx)
	bad := []Candidate{{Conjuncts: []core.Conjunct{core.Eq("nosuch", "fn")}}}
	if _, err := ToMDs(ds.Ctx, target, bad); err == nil {
		t.Error("invalid candidate accepted")
	}
	if out, err := ToMDs(ds.Ctx, target, nil); err != nil || len(out) != 0 {
		t.Error("empty candidate list must convert to empty MD list")
	}
}
