// Package store is the durability subsystem: a write-ahead log plus
// snapshots that let the serving stack (internal/stream enforcer +
// internal/engine match index) survive restarts instead of re-chasing
// the world.
//
// Everything above this package is in-memory state grown incrementally
// — interned dictionaries, the streaming enforcer's join indexes,
// record clusters, the blocking index — and a restart used to throw all
// of it away. The design follows directly from PR 4's non-confluence
// result (stream.TestStreamNotConfluentWithBatch): online enforcement
// is ORDER-SENSITIVE, so the only faithful recovery is to replay the
// mutations in their original serialization order. That is exactly what
// a WAL records:
//
//   - the WAL (wal.go) is a sequence of segments of length-prefixed,
//     CRC-32C-checksummed records — Insert, InsertBatch, Remove — each
//     segment headed by the plan fingerprint and its first LSN. A torn
//     tail (crash mid-write) is detected and truncated on open; damage
//     anywhere else refuses to open, because a torn write can only be
//     at the end.
//   - snapshots (snapshot.go) serialize the enforcer's persistent state
//     in deterministic order — records with resolved values,
//     column-group dictionaries in ID order, cluster memberships,
//     cumulative stats — plus the engine's stored rows with their
//     pre-rendered blocking keys. Verdict caches are NOT persisted:
//     they are pure memos over immutable value pairs and rebuild on
//     demand. Join indexes are NOT serialized byte-wise either: their
//     bucket keys embed lazily-assigned Soundex code IDs, so they are
//     rebuilt from the restored dictionaries (a pure function of
//     snapshotted state; serializing the raw keys would be unsound).
//   - recovery (engine.Recover) loads the newest valid snapshot and
//     replays the WAL suffix, in order, through stream.Enforcer.Insert
//     — the same code path that produced the state.
//
// The load-bearing property (engine.TestRecoveryEquivalence): for every
// snapshot point i in an insertion history of length n, recovering from
// snapshot@i plus WAL[i+1..n] is bit-identical — resolved instance,
// clusters, dictionaries, stats — to a fresh enforcer fed the same n
// mutations in order. The one excluded counter is
// Stats.Chase.LHSEvaluations: it counts verdict-cache misses, and the
// caches are rebuilt cold, so replayed misses legitimately differ from
// the warm history (the verdicts themselves are pure and identical).
//
// A Store's logging methods serialize on an internal lock, but the
// ORDER of the log is owned by the callers: the stream enforcer
// journals under its own insertion lock, so WAL order provably equals
// enforcement order.
package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mdmatch/internal/record"
	"mdmatch/internal/trace"
)

// Observer receives per-operation measurements from the durability
// path. A nil observer is the default and costs nothing. Calls are made
// with the store lock held; implementations must be fast and must not
// call back into the Store. An observer that additionally implements
// AttachStore(*Store) is handed the store at Open, so it can register
// scrape-time views (LSN positions, segment count, snapshot age,
// recovery progress).
type Observer interface {
	// AppendObserved reports one durable WAL append: wall latency
	// (including the fsync when enabled) and record bytes written.
	AppendObserved(seconds float64, bytes int)
	// SnapshotObserved reports one completed snapshot write: wall
	// latency and the encoded snapshot size.
	SnapshotObserved(seconds float64, bytes int)
}

// WithObserver attaches an instrumentation observer; nil disables.
func WithObserver(o Observer) Option { return func(s *Store) { s.obs = o } }

// WithLogger attaches a structured logger; nil (the default) disables.
// The store logs every append failure at error level — tagged with the
// request id of the mutation that hit it (trace.RequestID) so the
// failing request can be found in the access log — and, when debug
// logging is enabled, one line per WAL append.
func WithLogger(l *slog.Logger) Option { return func(s *Store) { s.logger = l } }

// Option configures a Store.
type Option func(*Store)

// WithNoSync disables the per-append fsync. Throughput rises by orders
// of magnitude at the cost of losing the last few records on an OS
// crash (a process crash loses nothing: writes still reach the kernel
// in order). The benchmark report measures both modes.
func WithNoSync() Option { return func(s *Store) { s.fsync = false } }

// WithSegmentBytes sets the segment rotation threshold (default 64 MiB).
func WithSegmentBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.segBytes = n
		}
	}
}

// WithKeepSnapshots sets how many most-recent snapshots survive
// garbage collection (default 2: the newest plus one fallback should
// the newest turn out unreadable).
func WithKeepSnapshots(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.keepSnaps = n
		}
	}
}

// Store is the durability state of one data directory: an append
// position in the active WAL segment plus the snapshot chain. All
// methods are safe for concurrent use.
type Store struct {
	dir string
	fp  Fingerprint
	fs  FS

	fsync     bool
	segBytes  int64
	keepSnaps int
	// batchChunk is the fragmentation threshold of LogBatch (kept well
	// under maxRecordBytes; lowered only by tests).
	batchChunk int64

	// snapMu admits one WriteSnapshot at a time. It is ordered strictly
	// before mu (snapshot writers take snapMu, then mu in short
	// windows); nothing takes snapMu while holding mu.
	snapMu sync.Mutex

	mu        sync.Mutex
	f         File      // active segment, opened for append
	segs      []segment // all live segments, ascending; last is active
	lsn       uint64    // last assigned LSN (0 = empty log)
	snaps     []uint64  // retained snapshot LSNs, ascending
	snapLSN   uint64    // newest snapshot's LSN (0 = none)
	sinceSnap int64     // WAL bytes appended since the newest snapshot
	snapTime  time.Time // newest snapshot's write time (file mtime on Open)
	snapSize  int64     // newest snapshot's encoded size in bytes
	failed    error     // latched append failure: the log may have a torn tail
	closed    bool

	obs    Observer     // nil when not instrumented
	logger *slog.Logger // nil when not logging

	// Replay progress, maintained atomically so a /readyz handler can
	// report recovery progress while Replay is still running.
	replayed     atomic.Uint64 // LSN of the last record delivered
	replayTarget atomic.Uint64 // log head at replay start (0 = no replay)
}

// Open opens (or creates) a data directory. Every existing segment and
// snapshot header must carry the same plan fingerprint — state written
// under different rules refuses to open. The newest segment's torn tail
// (if any) is truncated; corruption anywhere else is an error.
func Open(dir string, fp Fingerprint, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, fp: fp, fs: OSFS{}, fsync: true, segBytes: 64 << 20, keepSnaps: 2, batchChunk: 64 << 20}
	for _, o := range opts {
		o(s)
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	segPaths, snaps, err := listDir(s.fs, dir)
	if err != nil {
		return nil, err
	}
	// Snapshots: refuse a foreign fingerprint, but VERIFY the body
	// checksum before trusting one — retention and segment GC floor on
	// the oldest retained snapshot, so a bit-rotted body must not count
	// as a fallback (it would let GC delete the WAL records the real
	// fallback needs). A corrupt-bodied snapshot is skipped, not fatal:
	// that is exactly what the older retained snapshot exists for.
	for _, lsn := range snaps {
		switch err := verifySnapshotFile(s.fs, filepath.Join(dir, snapshotName(lsn)), fp, lsn); {
		case err == nil:
			s.snaps = append(s.snaps, lsn)
			s.snapLSN = lsn
		case errors.Is(err, errSnapshotBody):
			// Unreadable body: ignore the file (a later snapshot at the
			// same LSN would atomically replace it).
		default:
			return nil, err
		}
	}
	for i, path := range segPaths {
		seg, err := scanSegment(s.fs, path, fp, i == len(segPaths)-1)
		if err != nil {
			return nil, err
		}
		if i > 0 && seg.first != s.segs[i-1].last+1 {
			return nil, fmt.Errorf("store: %s: segment gap (previous ends at LSN %d)", path, s.segs[i-1].last)
		}
		s.segs = append(s.segs, seg)
	}
	if len(s.segs) > 0 {
		// The head is the last segment's final LSN; an empty segment
		// (rotated right after a snapshot) carries it as first-1.
		s.lsn = s.segs[len(s.segs)-1].last
	}
	if len(s.segs) > 0 {
		// The replayable suffix must connect to a snapshot (or to LSN 1).
		if first := s.segs[0].first; first != 1 && first > s.snapLSN+1 {
			return nil, fmt.Errorf("store: oldest segment starts at LSN %d but the newest snapshot is at %d: records are missing", first, s.snapLSN)
		}
	} else if s.snapLSN > 0 {
		s.lsn = s.snapLSN
	}
	if s.lsn < s.snapLSN {
		// The WAL was truncated behind the snapshot (torn tail at the
		// very records the snapshot superseded is impossible because
		// snapshotting rotates first — treat as corruption).
		return nil, fmt.Errorf("store: WAL ends at LSN %d before the newest snapshot at %d", s.lsn, s.snapLSN)
	}
	if len(s.segs) == 0 {
		if err := s.startSegment(s.lsn + 1); err != nil {
			return nil, err
		}
	} else {
		active := &s.segs[len(s.segs)-1]
		f, err := s.fs.OpenAppend(active.path)
		if err != nil {
			return nil, err
		}
		s.f = f
	}
	s.sinceSnap = 0
	for _, seg := range s.segs {
		if seg.last > s.snapLSN {
			s.sinceSnap += seg.size - headerLen
		}
	}
	if s.snapLSN > 0 {
		// Age/size of the inherited snapshot: best-effort from the file.
		if fi, err := s.fs.Stat(filepath.Join(dir, snapshotName(s.snapLSN))); err == nil {
			s.snapTime = fi.ModTime()
			s.snapSize = fi.Size()
		}
	}
	if a, ok := s.obs.(interface{ AttachStore(*Store) }); ok {
		a.AttachStore(s)
	}
	return s, nil
}

// startSegment creates a fresh segment whose first record will be LSN
// first, and makes it the active one. Caller holds s.mu (or is Open).
func (s *Store) startSegment(first uint64) error {
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return err
		}
		s.f = nil
	}
	path := filepath.Join(s.dir, segmentName(first))
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(fileHeader(segMagic, s.fp, first)); err != nil {
		f.Close()
		return err
	}
	if s.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	s.f = f
	s.segs = append(s.segs, segment{path: path, first: first, last: first - 1, size: headerLen})
	return nil
}

// append assigns the next LSN and writes one record durably. The
// context carries the mutation's trace span (the write and fsync are
// recorded as "wal.append"/"wal.fsync" child spans) and request id; a
// bare context.Background() costs two nil span checks.
func (s *Store) append(ctx context.Context, op Op, row Row, rows []Row, off uint64) (err error) {
	ctx, sp := trace.StartSpan(ctx, "wal.append")
	defer func() {
		if err != nil {
			sp.Attr("error", err.Error())
			if s.logger != nil {
				s.logger.LogAttrs(ctx, slog.LevelError, "wal append failed",
					slog.String("request_id", trace.RequestID(ctx)),
					slog.String("op", op.String()),
					slog.String("error", err.Error()),
				)
			}
		}
		sp.End()
	}()
	e := &enc{}
	encodePayload(e, op, row, rows, off)
	if int64(len(e.b)) > maxRecordBytes {
		// Enforced on the write side because the read side must treat an
		// over-limit length word as a torn tail: acknowledging a record
		// Open would truncate silently discards durable data.
		return fmt.Errorf("store: %s record payload is %d bytes, above the %d-byte record limit (split the batch)",
			op, len(e.b), int64(maxRecordBytes))
	}
	rec := make([]byte, 0, recHeaderLen+len(e.b))
	h := &enc{b: rec}
	h.u32(uint32(len(e.b)))
	h.u32(crc32.Checksum(e.b, crcTable))
	h.b = append(h.b, e.b...)
	sp.AttrInt("bytes", int64(len(h.b)))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.failed != nil {
		return fmt.Errorf("store: log previously failed: %w", s.failed)
	}
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	active := &s.segs[len(s.segs)-1]
	if active.size > headerLen && active.size+int64(len(h.b)) > s.segBytes {
		if err := s.startSegment(s.lsn + 1); err != nil {
			s.failed = err
			return err
		}
		active = &s.segs[len(s.segs)-1]
	}
	if _, err := s.f.Write(h.b); err != nil {
		// The tail may be torn; the next Open truncates it. Latch so no
		// later record is appended after garbage.
		s.failed = err
		return err
	}
	if s.fsync {
		_, fsp := trace.StartSpan(ctx, "wal.fsync")
		err := s.f.Sync()
		fsp.End()
		if err != nil {
			// The record hit the OS cache but durability is unknown — and
			// the caller will be told the append FAILED, so it must not
			// resurrect on restart. Best-effort truncate the segment back
			// to its pre-append length; if even that fails the next Open's
			// CRC scan decides, which is the best anyone can do after a
			// failed fsync.
			_ = s.f.Close()
			_ = s.fs.Truncate(active.path, active.size)
			s.f = nil
			s.failed = err
			return err
		}
	}
	s.lsn++
	active.last = s.lsn
	active.size += int64(len(h.b))
	s.sinceSnap += int64(len(h.b))
	if s.obs != nil {
		s.obs.AppendObserved(time.Since(start).Seconds(), len(h.b))
	}
	if s.logger != nil && s.logger.Enabled(ctx, slog.LevelDebug) {
		s.logger.LogAttrs(ctx, slog.LevelDebug, "wal append",
			slog.String("request_id", trace.RequestID(ctx)),
			slog.String("op", op.String()),
			slog.Uint64("lsn", s.lsn),
			slog.Int("bytes", len(h.b)),
		)
	}
	return nil
}

// LogInsert journals one record insertion. Implements stream.Journal:
// the enforcer calls it under its insertion lock, after validation and
// before any state mutates, so the WAL holds exactly the successful
// insertions in enforcement order.
func (s *Store) LogInsert(id int, vals []string) error {
	return s.LogInsertCtx(context.Background(), id, vals)
}

// LogInsertCtx is LogInsert with the mutation's context (implements
// stream.CtxJournal): the WAL append records itself under the context's
// trace span and tags its log lines with the request id.
func (s *Store) LogInsertCtx(ctx context.Context, id int, vals []string) error {
	return s.append(ctx, OpInsert, Row{ID: id, Values: vals}, nil, 0)
}

// LogBatch journals one batch insertion (a single chase over all rows).
// A batch whose encoding would exceed the per-record limit is journaled
// as offset-chained fragments — (OpBatchPart)* OpBatch — that Replay
// reassembles into ONE record: the batch is one chase, and splitting
// the chase would change enforcement (ordered replay is semantic). A
// mid-batch failure leaves dangling fragments with no closing record;
// reassembly discards them, matching the un-applied mutation.
func (s *Store) LogBatch(in *record.Instance) error {
	return s.LogBatchCtx(context.Background(), in)
}

// LogBatchCtx is LogBatch with the mutation's context (implements
// stream.CtxJournal; see LogInsertCtx).
func (s *Store) LogBatchCtx(ctx context.Context, in *record.Instance) error {
	var (
		rows []Row
		size int64 // conservative encoded-size estimate of rows
		off  uint64
	)
	for _, t := range in.Tuples {
		rb := int64(2 * binary.MaxVarintLen64)
		for _, v := range t.Values {
			rb += int64(len(v)) + binary.MaxVarintLen64
		}
		if len(rows) > 0 && size+rb > s.batchChunk {
			if err := s.append(ctx, OpBatchPart, Row{}, rows, off); err != nil {
				return err
			}
			off += uint64(len(rows))
			rows, size = rows[:0], 0
		}
		rows = append(rows, Row{ID: t.ID, Values: t.Values})
		size += rb
	}
	return s.append(ctx, OpBatch, Row{}, rows, off)
}

// LogRemove journals the un-indexing of one record.
func (s *Store) LogRemove(id int) error {
	return s.append(context.Background(), OpRemove, Row{ID: id}, nil, 0)
}

// LSN returns the last assigned log sequence number (0 = empty log).
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// SnapshotLSN returns the newest snapshot's LSN (0 = none).
func (s *Store) SnapshotLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapLSN
}

// BytesSinceSnapshot returns the WAL bytes appended since the newest
// snapshot — the recovery debt a crash right now would replay. Services
// use it as their background snapshot trigger.
func (s *Store) BytesSinceSnapshot() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap
}

// Segments returns the number of live WAL segments (including the
// active one).
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// LastSnapshot returns the newest snapshot's write time and encoded
// size in bytes (zero values when no snapshot exists). For a snapshot
// inherited at Open the time is the file's mtime.
func (s *Store) LastSnapshot() (when time.Time, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapTime, s.snapSize
}

// ReplayProgress reports recovery replay progress: the LSN of the last
// record delivered and the log head at replay start. Both are 0 before
// Replay runs; applied == target once it finishes. Safe to call
// concurrently with Replay — this is what a readiness endpoint polls.
func (s *Store) ReplayProgress() (applied, target uint64) {
	return s.replayed.Load(), s.replayTarget.Load()
}

// Empty reports whether the directory holds no state at all (fresh
// data dir: no snapshot, nothing logged).
func (s *Store) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn == 0 && s.snapLSN == 0
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Replay streams every record with LSN >= from, in order, reassembling
// fragmented batches into single OpBatch records (dangling fragments
// of a batch that never reached its closing record — a crash or a
// failed append mid-LogBatch — belong to a mutation that was never
// applied, and are dropped). It is meant for recovery, before the store
// starts taking appends; replaying concurrently with snapshot garbage
// collection is not supported.
func (s *Store) Replay(from uint64, fn func(Record) error) error {
	s.mu.Lock()
	segs := make([]segment, len(s.segs))
	copy(segs, s.segs)
	head := s.lsn
	s.mu.Unlock()
	// Publish progress so /readyz can report how far recovery has come
	// while this loop is still running.
	s.replayTarget.Store(head)
	if from > 0 {
		s.replayed.Store(from - 1)
	}
	// parts buffers the fragments of the batch currently being
	// reassembled. A fragment whose offset does not extend the buffer
	// starts a NEW batch (the buffered one was aborted); interleaved
	// removes pass through — they are journaled under a different lock
	// and commute with an in-flight batch (its rows are not removable
	// before the batch is indexed, which is after its closing record).
	var parts []Row
	deliver := func(rec Record) error {
		switch rec.Op {
		case OpBatchPart, OpBatch:
			if rec.BatchOffset != uint64(len(parts)) {
				if rec.BatchOffset != 0 {
					return fmt.Errorf("store: batch record at LSN %d chains from row %d, but %d rows are buffered", rec.LSN, rec.BatchOffset, len(parts))
				}
				parts = parts[:0]
			}
			if rec.Op == OpBatchPart {
				parts = append(parts, rec.Rows...)
				return nil
			}
			if len(parts) > 0 {
				rec.Rows = append(parts[:len(parts):len(parts)], rec.Rows...)
				parts = nil
			}
			rec.BatchOffset = 0
			if err := fn(rec); err != nil {
				return err
			}
		case OpInsert:
			// Inserts journal under the same lock as batches, so one can
			// only follow buffered fragments if their batch was aborted.
			parts = parts[:0]
			if err := fn(rec); err != nil {
				return err
			}
		default:
			if err := fn(rec); err != nil {
				return err
			}
		}
		s.replayed.Store(rec.LSN)
		return nil
	}
	// Decode-ahead pipeline: a producer goroutine validates checksums and
	// decodes record payloads (the allocation-heavy half of replay) while
	// this goroutine applies records in order — on a multi-core recovery
	// the chase replay no longer waits on decoding. Order is preserved by
	// the FIFO channel; a decode error is delivered after every record
	// that precedes it, exactly like the serial loop; and a delivery
	// error stops the producer via the stop channel.
	type replayItem struct {
		rec Record
		err error
	}
	items := make(chan replayItem, replayAhead)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(items)
		for _, seg := range segs {
			if seg.last < from {
				continue
			}
			err := replaySegment(s.fs, seg, from, func(rec Record) error {
				select {
				case items <- replayItem{rec: rec}:
					return nil
				case <-stop:
					return errReplayStopped
				}
			})
			if err != nil {
				if errors.Is(err, errReplayStopped) {
					return
				}
				select {
				case items <- replayItem{err: err}:
				case <-stop:
				}
				return
			}
		}
	}()
	for it := range items {
		if it.err != nil {
			return it.err
		}
		if err := deliver(it.rec); err != nil {
			return err
		}
	}
	return nil
}

// replayAhead bounds how many decoded records the replay producer may
// run ahead of the applying goroutine.
const replayAhead = 256

// errReplayStopped is the producer-side signal that the consumer
// abandoned the replay; it never escapes Replay.
var errReplayStopped = errors.New("store: replay stopped")

// Close releases the active segment. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}

// Failed returns the latched append failure, if any. Once an append
// fails the log may carry a torn tail, so every later append is refused
// until a restart re-opens (and repairs) the directory — a service polls
// this to know it must flip to read-only serving.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}
