package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mdmatch/internal/stream"
	"mdmatch/internal/values"
)

// randSnapshot builds a randomized string-level snapshot: dictionaries
// with prefix-clustered values (the shape delta encoding targets), rows
// over them, clusters, counters and engine records. Sizes scale with n.
func randSnapshot(rng *rand.Rand, n int) *Snapshot {
	st := &stream.State{}
	prefixes := []string{"", "smith", "smithson", "908-555-", "EH4 ", "\x00\xff"}
	word := func() string {
		p := prefixes[rng.Intn(len(prefixes))]
		return fmt.Sprintf("%s%c%d", p, 'a'+rune(rng.Intn(26)), rng.Intn(n*4))
	}
	dictA := []string{}
	seen := map[string]bool{}
	for len(dictA) < n {
		if v := word(); !seen[v] {
			seen[v] = true
			dictA = append(dictA, v)
		}
	}
	dictB := []string{"", "x"}
	st.Dicts = []stream.DictState{{Col: 0, Values: dictA}, {Col: 2, Values: dictB}}
	for i := 0; i < n; i++ {
		st.Rows = append(st.Rows, stream.RowState{
			ID:     i*3 + 1,
			Values: []string{dictA[rng.Intn(len(dictA))], dictA[rng.Intn(len(dictA))], dictB[rng.Intn(2)]},
		})
	}
	for i := 0; i < n/5; i++ {
		cl := []int{}
		for j := 0; j <= rng.Intn(4); j++ {
			cl = append(cl, rng.Intn(3*n))
		}
		st.Clusters = append(st.Clusters, cl)
	}
	st.Stats.Inserts = n
	st.Stats.Chase.PairsExamined = int64(rng.Intn(1 << 20))
	st.Stats.Chase.LHSEvaluations = int64(rng.Intn(1 << 16))
	snap := &Snapshot{LSN: uint64(n), Stream: st}
	for i := 0; i < n; i++ {
		snap.Engine = append(snap.Engine, EngineRec{
			ID:     i*3 + 1,
			Values: []string{dictA[rng.Intn(len(dictA))], "", dictB[rng.Intn(2)]},
			Keys:   []string{word(), word()},
		})
	}
	return snap
}

// unframeChunks walks a chunk stream (everything after the file
// header), verifying the framing by hand — independently of
// chunkReader — and returns the concatenated payloads.
func unframeChunks(t *testing.T, b []byte) []byte {
	t.Helper()
	var body []byte
	sum := uint32(0)
	for {
		if len(b) < 8 {
			t.Fatalf("truncated chunk header (%d bytes left)", len(b))
		}
		plen := binary.LittleEndian.Uint32(b[:4])
		crc := binary.LittleEndian.Uint32(b[4:8])
		b = b[8:]
		if plen == 0 {
			if crc != sum {
				t.Fatalf("trailer body CRC %08x != running %08x", crc, sum)
			}
			if len(b) != 8 {
				t.Fatalf("trailer tail is %d bytes, want 8", len(b))
			}
			if got := binary.LittleEndian.Uint64(b); got != uint64(len(body)) {
				t.Fatalf("trailer says %d body bytes, framed %d", got, len(body))
			}
			return body
		}
		if uint64(len(b)) < uint64(plen) {
			t.Fatalf("chunk of %d bytes runs past the file", plen)
		}
		payload := b[:plen]
		if crc32.Checksum(payload, crcTable) != crc {
			t.Fatal("chunk CRC mismatch")
		}
		sum = crc32.Update(sum, crcTable, payload)
		body = append(body, payload...)
		b = b[plen:]
	}
}

// TestSnapshotStreamIdentical is the core streaming property: at any
// chunk size, the chunk payloads of a streamed snapshot file
// concatenate to exactly the bytes the in-memory encoder produces for
// the same snapshot, and the streaming reader decodes them back to the
// identical state. Chunk boundaries are pure transport.
func TestSnapshotStreamIdentical(t *testing.T) {
	defer func(old int) { snapChunkBytes = old }(snapChunkBytes)
	fp := FingerprintOf("stream identical")
	for seed := int64(1); seed <= 4; seed++ {
		snap := randSnapshot(rand.New(rand.NewSource(seed)), 60)
		serial := &enc{}
		encodeSnapshot(serial, snap)
		want, err := decodeSnapshot(serial.b)
		if err != nil {
			t.Fatalf("seed %d: canonical body does not decode: %v", seed, err)
		}
		want.LSN = snap.LSN // readSnapshot stamps the LSN; decodeSnapshot cannot
		for _, chunk := range []int{1, 7, 64, 1 << 10, 256 << 10} {
			snapChunkBytes = chunk
			path := filepath.Join(t.TempDir(), snapshotName(snap.LSN))
			size, err := streamSnapshotFile(OSFS{}, path, fp, snap)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(raw)) != size {
				t.Fatalf("seed %d chunk %d: reported size %d, file is %d", seed, chunk, size, len(raw))
			}
			if lsn, err := parseHeader(raw, snapMagic, fp, path); err != nil || lsn != snap.LSN {
				t.Fatalf("seed %d chunk %d: header: lsn=%d err=%v", seed, chunk, lsn, err)
			}
			if body := unframeChunks(t, raw[headerLen:]); !bytes.Equal(body, serial.b) {
				t.Fatalf("seed %d chunk %d: streamed body differs from in-memory encode (%d vs %d bytes)",
					seed, chunk, len(body), len(serial.b))
			}
			got, err := readSnapshot(OSFS{}, path, fp, snap.LSN)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d chunk %d: streamed decode differs from in-memory decode", seed, chunk)
			}
			if err := verifySnapshotFile(OSFS{}, path, fp, snap.LSN); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// sliceSrc adapts a materialized record slice to EngineSource, the way
// tests drive the lazy engine encoder.
type sliceSrc []EngineRec

func (s sliceSrc) Len() int { return len(s) }
func (s sliceSrc) Rec(i int, out *EngineRec) {
	out.ID = s[i].ID
	out.Values = append(out.Values[:0], s[i].Values...)
	out.Keys = s[i].Keys
}

// TestSnapshotEncodeFromCutIdentical pins the two snapshot
// representations to identical bytes: a compact Cut (dictionary table
// views + columnar IDs) and a lazy EngineSource must encode exactly as
// the string-level deep copy of the same state does, at every worker
// count — the recovery path decodes one format, whichever was written.
func TestSnapshotEncodeFromCutIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Two column groups: columns 0 and 1 share a dictionary (leader 0),
	// column 2 has its own.
	dA, dB := values.NewDict(), values.NewDict()
	for i := 0; i < 40; i++ {
		dA.Intern(fmt.Sprintf("smith-%02d", rng.Intn(80)))
		dB.Intern(fmt.Sprintf("zip-%d", rng.Intn(10)))
	}
	tabA, tabB := dA.Snapshot(), dB.Snapshot()
	cut := &stream.Cut{
		Dicts:   []stream.DictCut{{Col: 0, Values: tabA}, {Col: 2, Values: tabB}},
		ColTabs: []values.Table{tabA, tabA, tabB},
	}
	const rows = 25
	cut.Cols = make([][]values.ID, 3)
	for col := range cut.Cols {
		cut.Cols[col] = make([]values.ID, rows)
	}
	for r := 0; r < rows; r++ {
		cut.RowIDs = append(cut.RowIDs, r*7)
		cut.Cols[0][r] = values.ID(rng.Intn(tabA.Len()))
		cut.Cols[1][r] = values.ID(rng.Intn(tabA.Len()))
		cut.Cols[2][r] = values.ID(rng.Intn(tabB.Len()))
	}
	cut.Clusters = [][]int{{0, 7, 14}, {21, 28}}
	cut.Stats.Inserts = rows
	cut.Stats.Chase.RuleFirings = 123

	// The string-level rendering of the same state.
	st := cut.State()

	recs := make([]EngineRec, 0, rows)
	for r := 0; r < rows; r++ {
		recs = append(recs, EngineRec{
			ID:     r * 7,
			Values: []string{tabA.Value(int(cut.Cols[0][r])), "", tabB.Value(int(cut.Cols[2][r]))},
			Keys:   []string{fmt.Sprintf("k|%d", r%5)},
		})
	}

	deep := &Snapshot{LSN: rows, Stream: st, Engine: recs}
	compact := &Snapshot{LSN: rows, Cut: cut, EngineSrc: sliceSrc(recs)}
	want := encodeSnapshotBody(deep, 1)
	if len(want) == 0 {
		t.Fatal("empty encode")
	}
	for _, workers := range []int{1, 4} {
		if got := encodeSnapshotBody(compact, workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: cut encode differs from deep-copy encode (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}

	// And the streamed file of the compact form decodes to the deep form.
	defer func(old int) { snapChunkBytes = old }(snapChunkBytes)
	snapChunkBytes = 32
	fp := FingerprintOf("cut identical")
	path := filepath.Join(t.TempDir(), snapshotName(uint64(rows)))
	if _, err := streamSnapshotFile(OSFS{}, path, fp, compact); err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(OSFS{}, path, fp, uint64(rows))
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := decodeSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap.LSN = rows
	if !reflect.DeepEqual(got, wantSnap) {
		t.Fatal("streamed cut decode differs from deep-copy decode")
	}
}

// TestSnapshotFileCorruption proves every byte of a snapshot file is
// covered by some check: truncation at EVERY boundary between the
// header and the end, and a single-byte flip at every offset, must make
// the streaming reader fail (body damage with errSnapshotBody so Open
// falls back to an older snapshot; header damage as a hard error) —
// never panic, never return a wrong state.
func TestSnapshotFileCorruption(t *testing.T) {
	defer func(old int) { snapChunkBytes = old }(snapChunkBytes)
	snapChunkBytes = 48 // many small chunks: truncations land on and between frames
	fp := FingerprintOf("corruption")
	snap := randSnapshot(rand.New(rand.NewSource(5)), 25)
	dir := t.TempDir()
	path := filepath.Join(dir, snapshotName(snap.LSN))
	if _, err := streamSnapshotFile(OSFS{}, path, fp, snap); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(OSFS{}, path, fp, snap.LSN); err != nil {
		t.Fatalf("pristine file unreadable: %v", err)
	}

	damaged := filepath.Join(dir, snapshotName(snap.LSN+1))
	check := func(label string, b []byte, wantBody bool) {
		t.Helper()
		if err := os.WriteFile(damaged, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := readSnapshot(OSFS{}, damaged, fp, snap.LSN)
		if err == nil {
			t.Fatalf("%s: damaged snapshot read back successfully", label)
		}
		if wantBody && !errors.Is(err, errSnapshotBody) {
			t.Fatalf("%s: want errSnapshotBody (fallback to older snapshot), got %v", label, err)
		}
		if verr := verifySnapshotFile(OSFS{}, damaged, fp, snap.LSN); verr == nil {
			t.Fatalf("%s: verify accepted damage that read rejected (%v)", label, err)
		}
	}
	// The name encodes snap.LSN+1 while the header says snap.LSN, so
	// even an undamaged copy must be rejected — and that mismatch, not
	// the damage, must not mask body checks: use the right `want`.
	if err := os.WriteFile(damaged, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(OSFS{}, damaged, fp, snap.LSN+1); err == nil {
		t.Fatal("LSN/name mismatch accepted")
	}

	for cut := 0; cut < len(raw); cut += 1 + cut/20 {
		check(fmt.Sprintf("truncate@%d", cut), raw[:cut], cut >= headerLen)
	}
	for off := 0; off < len(raw); off++ {
		b := bytes.Clone(raw)
		b[off] ^= 0x40
		check(fmt.Sprintf("flip@%d", off), b, off >= headerLen)
	}
	// Trailing garbage after the trailer is damage too.
	check("trailing-garbage", append(bytes.Clone(raw), 0xAA), true)
}
