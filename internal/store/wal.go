package store

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk formats.
//
// A WAL segment is a 48-byte header followed by length-prefixed,
// checksummed records:
//
//	header:  magic (8) | plan fingerprint (32) | first LSN (8, LE)
//	record:  payload length (4, LE) | CRC-32C of payload (4, LE) | payload
//
// LSNs are implicit: the i-th record of a segment has LSN
// firstLSN + i. A snapshot file is the same header shape (its LSN
// field is the LSN the state was captured at) followed by a CHUNKED
// body stream (see snapio.go): the "02" snapshot magic marks the
// streaming format, which replaced the materialize-whole-body "01"
// layout — a directory holding "01" snapshots refuses to open with a
// bad-magic error, the same guard a foreign fingerprint trips. All
// multi-byte header fields are little-endian.
const (
	segMagic  = "mdmwal01"
	snapMagic = "mdmsnp02"

	headerLen    = 8 + fingerprintLen + 8
	recHeaderLen = 8
)

// maxRecordBytes bounds one record's payload, enforced on BOTH sides:
// append rejects an over-limit payload (acknowledging a record the
// reader would discard silently loses durable data — LogBatch
// fragments large batches instead), and a length word beyond it on
// read is treated as a torn or corrupt tail, not an allocation
// request. A variable only so tests can lower it.
var maxRecordBytes int64 = 1 << 28

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Op identifies one logged mutation. The WAL records mutations in their
// serialization order (the stream enforcer journals under its insertion
// lock), which recovery replays verbatim — PR 4's non-confluence result
// (TestStreamNotConfluentWithBatch) means replay order IS the state.
type Op uint8

// The mutation kinds a WAL records.
const (
	OpInsert Op = 1 // one record inserted (enforced, then indexed)
	OpBatch  Op = 2 // a batch inserted as one chase (engine.Load)
	OpRemove Op = 3 // a record un-indexed from the match side
	// OpBatchPart is a continuation fragment: one logical batch whose
	// encoding exceeds the record limit is journaled as
	// (OpBatchPart)* OpBatch, and Replay reassembles the fragments into
	// ONE OpBatch record — the batch is one chase, and splitting the
	// chase would change enforcement (ordered replay is semantic).
	// Fragments never surface to Replay callers.
	OpBatchPart Op = 4
)

func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpBatch:
		return "batch"
	case OpRemove:
		return "remove"
	case OpBatchPart:
		return "batch-part"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Row is one record row carried by a WAL entry.
type Row struct {
	ID     int
	Values []string
}

// Record is one decoded WAL entry.
type Record struct {
	LSN uint64
	Op  Op
	// Row carries the record of an OpInsert (ID + values) or OpRemove
	// (ID only).
	Row Row
	// Rows carries the batch of an OpBatch, in insertion order.
	Rows []Row
	// BatchOffset chains batch fragments: the number of rows of this
	// logical batch journaled by preceding OpBatchPart records (0 for
	// an unfragmented batch, and always 0 on the assembled records
	// Replay delivers). The chain is how reassembly tells a batch's own
	// fragments from the dangling fragments of one that crashed before
	// its closing record.
	BatchOffset uint64
}

// encodePayload renders a record body (everything the CRC covers).
func encodePayload(e *enc, op Op, row Row, rows []Row, off uint64) {
	e.u8(byte(op))
	switch op {
	case OpInsert:
		e.varint(int64(row.ID))
		e.strs(row.Values)
	case OpRemove:
		e.varint(int64(row.ID))
	case OpBatch, OpBatchPart:
		e.uvarint(off)
		e.uvarint(uint64(len(rows)))
		for _, r := range rows {
			e.varint(int64(r.ID))
			e.strs(r.Values)
		}
	default:
		panic(fmt.Sprintf("store: encoding unknown op %d", op))
	}
}

// decodePayload parses one record body. It never panics: malformed
// input (fuzzed, or corruption a CRC collision let through) returns
// errMalformed.
func decodePayload(b []byte) (Record, error) {
	d := &dec{b: b}
	rec := Record{Op: Op(d.u8())}
	switch rec.Op {
	case OpInsert:
		rec.Row.ID = int(d.varint())
		rec.Row.Values = d.strs()
	case OpRemove:
		rec.Row.ID = int(d.varint())
	case OpBatch, OpBatchPart:
		rec.BatchOffset = d.uvarint()
		n := d.count()
		if d.err == nil {
			rec.Rows = make([]Row, 0, preallocHint(n))
			for i := uint64(0); i < n; i++ {
				r := Row{ID: int(d.varint())}
				r.Values = d.strs()
				if d.err != nil {
					break
				}
				rec.Rows = append(rec.Rows, r)
			}
		}
	default:
		return Record{}, errMalformed
	}
	if err := d.done(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// header renders the shared 48-byte file header.
func fileHeader(magic string, fp Fingerprint, lsn uint64) []byte {
	e := &enc{b: make([]byte, 0, headerLen)}
	e.b = append(e.b, magic...)
	e.b = append(e.b, fp[:]...)
	e.u64(lsn)
	return e.b
}

// parseHeader validates a file header and returns its LSN field.
func parseHeader(b []byte, magic string, fp Fingerprint, path string) (uint64, error) {
	if len(b) < headerLen {
		return 0, fmt.Errorf("store: %s: short header (%d bytes)", path, len(b))
	}
	if string(b[:8]) != magic {
		return 0, fmt.Errorf("store: %s: bad magic %q", path, b[:8])
	}
	var got Fingerprint
	copy(got[:], b[8:8+fingerprintLen])
	if got != fp {
		return 0, fmt.Errorf("store: %s: plan fingerprint %s does not match the configured rules (%s): refusing to open state written under different rules",
			path, got, fp)
	}
	d := &dec{b: b[8+fingerprintLen : headerLen]}
	return d.u64(), nil
}

// segment is one WAL file's metadata. last is the LSN of its final
// record; an empty segment (header only) has last == first-1.
type segment struct {
	path  string
	first uint64
	last  uint64
	size  int64
}

func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }
func snapshotName(lsn uint64) string  { return fmt.Sprintf("snap-%016x.snap", lsn) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// scanSegment validates one segment file and returns its metadata. With
// repair set (only ever for the newest segment) a torn tail — short
// header, truncated record, bad CRC, absurd length — is truncated away
// in place and the valid prefix kept; without it any damage is an
// error, because a torn write can only be at the very end of the log.
func scanSegment(fs FS, path string, fp Fingerprint, repair bool) (segment, error) {
	b, err := fs.ReadFile(path)
	if err != nil {
		return segment{}, err
	}
	name := filepath.Base(path)
	first, ok := parseSeq(name, "wal-", ".log")
	if !ok {
		return segment{}, fmt.Errorf("store: %s: not a segment name", path)
	}
	if len(b) < headerLen {
		if !repair {
			return segment{}, fmt.Errorf("store: %s: torn header in a non-final segment", path)
		}
		// Crash during segment creation: rewrite the header whole.
		if err := fs.WriteFile(path, fileHeader(segMagic, fp, first)); err != nil {
			return segment{}, err
		}
		return segment{path: path, first: first, last: first - 1, size: headerLen}, nil
	}
	hdrLSN, err := parseHeader(b, segMagic, fp, path)
	if err != nil {
		return segment{}, err
	}
	if hdrLSN != first {
		return segment{}, fmt.Errorf("store: %s: header LSN %d does not match name", path, hdrLSN)
	}
	off := int64(headerLen)
	n := int64(0)
	for off < int64(len(b)) {
		plen, ok := validRecord(b[off:])
		if !ok {
			if !repair {
				return segment{}, fmt.Errorf("store: %s: corrupt record at offset %d in a non-final segment", path, off)
			}
			if err := fs.Truncate(path, off); err != nil {
				return segment{}, err
			}
			break
		}
		off += recHeaderLen + plen
		n++
	}
	return segment{path: path, first: first, last: first + uint64(n) - 1, size: off}, nil
}

// validRecord reports whether rest starts with one intact record
// (complete header, sane length, matching checksum) and its payload
// length.
func validRecord(rest []byte) (int64, bool) {
	if len(rest) < recHeaderLen {
		return 0, false
	}
	plen := int64(le32(rest))
	if plen > maxRecordBytes || int64(len(rest)) < recHeaderLen+plen {
		return 0, false
	}
	if crc32.Checksum(rest[recHeaderLen:recHeaderLen+plen], crcTable) != le32(rest[4:]) {
		return 0, false
	}
	return plen, true
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// replaySegment decodes every record of a validated segment in order,
// calling fn for records with LSN >= from.
func replaySegment(fs FS, seg segment, from uint64, fn func(Record) error) error {
	b, err := fs.ReadFile(seg.path)
	if err != nil {
		return err
	}
	if len(b) < headerLen {
		return fmt.Errorf("store: %s: segment shrank since open", seg.path)
	}
	off := int64(headerLen)
	lsn := seg.first
	for off < int64(len(b)) {
		rest := b[off:]
		if len(rest) < recHeaderLen {
			return fmt.Errorf("store: %s: truncated record at offset %d", seg.path, off)
		}
		plen := int64(le32(rest))
		crc := le32(rest[4:])
		if plen > maxRecordBytes || int64(len(rest)) < recHeaderLen+plen {
			return fmt.Errorf("store: %s: truncated record at offset %d", seg.path, off)
		}
		payload := rest[recHeaderLen : recHeaderLen+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return fmt.Errorf("store: %s: checksum mismatch at offset %d", seg.path, off)
		}
		if lsn >= from {
			rec, err := decodePayload(payload)
			if err != nil {
				return fmt.Errorf("store: %s: record %d: %w", seg.path, lsn, err)
			}
			rec.LSN = lsn
			if err := fn(rec); err != nil {
				return err
			}
		}
		off += recHeaderLen + plen
		lsn++
	}
	return nil
}

// listDir splits a data directory into its segment and snapshot files,
// each sorted ascending by sequence number.
func listDir(fs FS, dir string) (segs []string, snaps []uint64, err error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if _, ok := parseSeq(ent.Name(), "wal-", ".log"); ok {
			segs = append(segs, filepath.Join(dir, ent.Name()))
		}
		if lsn, ok := parseSeq(ent.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, lsn)
		}
	}
	sort.Strings(segs)
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}
