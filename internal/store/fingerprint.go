package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// fingerprintLen is the byte length of a plan fingerprint (SHA-256).
const fingerprintLen = 32

// Fingerprint identifies the rule configuration a data directory was
// written under: the matching context schema, Σ, the cluster-linking
// rule indices, the serving plan's keys and blocking key specs. Every
// WAL segment and snapshot header carries it, and Open refuses a
// directory whose fingerprint differs — replaying inserts under
// different rules would silently produce a different chase (the log's
// ordered replay is only meaningful against the rules that wrote it).
type Fingerprint [fingerprintLen]byte

// FingerprintOf hashes a rule configuration rendered as strings. Each
// part is length-prefixed, so part boundaries cannot be forged by
// concatenation.
func FingerprintOf(parts ...string) Fingerprint {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	var fp Fingerprint
	copy(fp[:], h.Sum(nil))
	return fp
}

// String renders a short prefix for logs and error messages.
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:8]) }
