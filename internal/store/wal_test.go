package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mdmatch/internal/record"
	"mdmatch/internal/schema"
	"mdmatch/internal/stream"
)

func testFP() Fingerprint { return FingerprintOf("test", "rules") }

func testRel(t testing.TB) *schema.Relation {
	t.Helper()
	rel, err := schema.Strings("r", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// logHistory appends a fixed mixed history and returns the expected
// replay.
func logHistory(t *testing.T, s *Store, rel *schema.Relation) []Record {
	t.Helper()
	if err := s.LogInsert(1, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	in := record.NewInstance(rel)
	for _, r := range []Row{{ID: 2, Values: []string{"m", "n"}}, {ID: 3, Values: []string{"", "ü"}}} {
		if _, err := in.AppendWithID(r.ID, r.Values); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.LogBatch(in); err != nil {
		t.Fatal(err)
	}
	if err := s.LogRemove(1); err != nil {
		t.Fatal(err)
	}
	return []Record{
		{LSN: 1, Op: OpInsert, Row: Row{ID: 1, Values: []string{"x", "y"}}},
		{LSN: 2, Op: OpBatch, Rows: []Row{{ID: 2, Values: []string{"m", "n"}}, {ID: 3, Values: []string{"", "ü"}}}},
		{LSN: 3, Op: OpRemove, Row: Row{ID: 1}},
	}
}

func replayAll(t *testing.T, s *Store, from uint64) []Record {
	t.Helper()
	var got []Record
	if err := s.Replay(from, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWALAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	rel := testRel(t)
	s, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	want := logHistory(t, s, rel)
	if got := replayAll(t, s, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %+v, want %+v", got, want)
	}
	if s.LSN() != 3 {
		t.Fatalf("LSN = %d, want 3", s.LSN())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.LogRemove(9); err == nil {
		t.Fatal("append after Close succeeded")
	}

	s2, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LSN() != 3 || s2.Empty() {
		t.Fatalf("reopened LSN = %d, Empty = %v", s2.LSN(), s2.Empty())
	}
	if got := replayAll(t, s2, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened replay = %+v, want %+v", got, want)
	}
	if got := replayAll(t, s2, 3); !reflect.DeepEqual(got, want[2:]) {
		t.Fatalf("suffix replay = %+v, want %+v", got, want[2:])
	}
	// The log keeps accepting appends where it left off.
	if err := s2.LogInsert(4, []string{"p", "q"}); err != nil {
		t.Fatal(err)
	}
	if s2.LSN() != 4 {
		t.Fatalf("LSN after reopen append = %d, want 4", s2.LSN())
	}
}

func TestWALFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	logHistory(t, s, testRel(t))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, FingerprintOf("other", "rules")); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("Open under different rules = %v, want fingerprint refusal", err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP(), WithNoSync(), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	for i := 1; i <= n; i++ {
		if err := s.LogInsert(i, []string{"some-value", "other-value"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	s2, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := replayAll(t, s2, 1)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) || r.Row.ID != i+1 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestWALTornTailEveryOffset is the crash-mid-write test: a prefix of
// the log truncated at EVERY byte offset must open cleanly, replay
// exactly the records whose bytes fully survived, and accept appends
// again.
func TestWALTornTailEveryOffset(t *testing.T) {
	base := t.TempDir()
	rel := testRel(t)
	s, err := Open(base, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	want := logHistory(t, s, rel)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(OSFS{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %v", segs)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	// recordEnd[i] = file offset at which record i is fully on disk.
	recordEnd := make([]int, 0, len(want))
	off := headerLen
	for off < len(full) {
		plen, ok := validRecord(full[off:])
		if !ok {
			t.Fatalf("unexpected invalid record at %d", off)
		}
		off += recHeaderLen + int(plen)
		recordEnd = append(recordEnd, off)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(t.TempDir(), "d")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, testFP(), WithNoSync())
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		survived := 0
		for _, end := range recordEnd {
			if cut >= end {
				survived++
			}
		}
		got := replayAll(t, s, 1)
		if len(got) != survived || (survived > 0 && !reflect.DeepEqual(got, want[:survived])) {
			t.Fatalf("cut=%d: replay = %+v, want %+v", cut, got, want[:survived])
		}
		// The truncated log must keep working: the next append lands at
		// the LSN after the surviving prefix and replays back.
		if err := s.LogInsert(99, []string{"after", "crash"}); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		got = replayAll(t, s, 1)
		if len(got) != survived+1 || got[survived].Row.ID != 99 || got[survived].LSN != uint64(survived+1) {
			t.Fatalf("cut=%d: replay after repair = %+v", cut, got)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCorruptionMidLogRefuses pins the flip side of tail repair:
// damage that is NOT a torn tail — a flipped byte inside an earlier,
// fsynced segment — refuses to open instead of silently dropping
// records.
func TestWALCorruptionMidLogRefuses(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP(), WithNoSync(), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := s.LogInsert(i, []string{"some-value", "other-value"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	first[headerLen+recHeaderLen] ^= 0xff // payload byte of the first record
	if err := os.WriteFile(segs[0], first, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testFP()); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open with mid-log corruption = %v, want refusal", err)
	}
}

func TestSnapshotRoundTripFallbackGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP(), WithNoSync(), WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := s.LoadSnapshot(); err != nil || snap != nil {
		t.Fatalf("LoadSnapshot on empty dir = %v, %v", snap, err)
	}
	mkSnap := func(lsn uint64, tag string) *Snapshot {
		return &Snapshot{
			LSN: lsn,
			Stream: &stream.State{
				Dicts:    []stream.DictState{{Col: 0, Values: []string{"a", tag}}},
				Rows:     []stream.RowState{{ID: 7, Values: []string{"a", tag}}},
				Clusters: [][]int{{3, 7}},
				Stats:    stream.Stats{Inserts: int(lsn)},
			},
			Engine: []EngineRec{{ID: 7, Values: []string{"a", ""}, Keys: []string{"k\x001"}}},
		}
	}
	// Writing at LSN 0 or ahead of the log must not produce files.
	if err := s.WriteSnapshot(mkSnap(0, "zero")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(mkSnap(5, "ahead")); err == nil {
		t.Fatal("snapshot ahead of the log was accepted")
	}

	var wrote []uint64
	for i := 1; i <= 30; i++ {
		if err := s.LogInsert(i, []string{"v", "w"}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			lsn := s.LSN()
			if err := s.WriteSnapshot(mkSnap(lsn, "snap")); err != nil {
				t.Fatal(err)
			}
			if s.SnapshotLSN() != lsn {
				t.Fatalf("SnapshotLSN = %d, want %d", s.SnapshotLSN(), lsn)
			}
			if s.BytesSinceSnapshot() != 0 {
				t.Fatalf("BytesSinceSnapshot after snapshot = %d", s.BytesSinceSnapshot())
			}
			wrote = append(wrote, lsn)
		}
	}
	// Retention: only the newest keepSnaps (default 2) survive.
	_, snaps, err := listDir(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snaps, wrote[len(wrote)-2:]) {
		t.Fatalf("retained snapshots = %v, want %v", snaps, wrote[len(wrote)-2:])
	}
	got, err := s.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, mkSnap(wrote[len(wrote)-1], "snap")) {
		t.Fatalf("LoadSnapshot = %+v", got)
	}
	// Replay must still cover everything after the OLDEST retained
	// snapshot (the fallback's suffix); segments before it are gone.
	oldest := wrote[len(wrote)-2]
	suffix := replayAll(t, s, oldest+1)
	if len(suffix) != 30-int(oldest) {
		t.Fatalf("suffix after oldest retained snapshot = %d records, want %d", len(suffix), 30-int(oldest))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot body: load falls back to the older
	// one; reopening still works.
	newest := filepath.Join(dir, snapshotName(wrote[len(wrote)-1]))
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != wrote[len(wrote)-2] {
		t.Fatalf("fallback snapshot LSN = %d, want %d", got.LSN, wrote[len(wrote)-2])
	}
}

// TestWALFragmentedBatch pins batch fragmentation: a batch over the
// chunk threshold is journaled as offset-chained fragments, Replay
// reassembles them into ONE record (one batch = one chase), dangling
// fragments of an unclosed batch are dropped, and a fresh batch after
// an aborted one does not absorb the orphan fragments.
func TestWALFragmentedBatch(t *testing.T) {
	dir := t.TempDir()
	rel := testRel(t)
	s, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	s.batchChunk = 64 // force fragmentation of any realistic batch

	in := record.NewInstance(rel)
	n := 12
	for i := 0; i < n; i++ {
		if _, err := in.AppendWithID(i, []string{"value-a", "value-b"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.LogBatch(in); err != nil {
		t.Fatal(err)
	}
	lsnAfter := s.LSN()
	if lsnAfter < 2 {
		t.Fatalf("LSN after fragmented batch = %d, want several records", lsnAfter)
	}
	got := replayAll(t, s, 1)
	if len(got) != 1 || got[0].Op != OpBatch || got[0].BatchOffset != 0 {
		t.Fatalf("reassembly delivered %+v, want one OpBatch", got)
	}
	if len(got[0].Rows) != n {
		t.Fatalf("reassembled batch has %d rows, want %d", len(got[0].Rows), n)
	}
	for i, r := range got[0].Rows {
		if r.ID != i {
			t.Fatalf("row %d has id %d", i, r.ID)
		}
	}
	if got[0].LSN != lsnAfter {
		t.Fatalf("assembled record carries LSN %d, want the closing record's %d", got[0].LSN, lsnAfter)
	}

	// Simulate a crash mid-batch: append fragments with no closing
	// record, plus an interleaved remove (journaled under a different
	// lock, so it may legally land between fragments).
	if err := s.append(context.Background(), OpBatchPart, Row{}, []Row{{ID: 100, Values: []string{"x", "y"}}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.LogRemove(3); err != nil {
		t.Fatal(err)
	}
	if err := s.append(context.Background(), OpBatchPart, Row{}, []Row{{ID: 101, Values: []string{"x", "y"}}}, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The next process appends a NEW batch; the orphan fragments must
	// not leak into it.
	s2, err := Open(dir, testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	in2 := record.NewInstance(rel)
	if _, err := in2.AppendWithID(200, []string{"p", "q"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.LogBatch(in2); err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, s2, 1)
	if len(got) != 3 {
		t.Fatalf("replay delivered %d records, want batch+remove+batch: %+v", len(got), got)
	}
	if got[0].Op != OpBatch || len(got[0].Rows) != n {
		t.Fatalf("first delivered record = %+v", got[0])
	}
	if got[1].Op != OpRemove || got[1].Row.ID != 3 {
		t.Fatalf("interleaved remove not delivered: %+v", got[1])
	}
	if got[2].Op != OpBatch || len(got[2].Rows) != 1 || got[2].Rows[0].ID != 200 {
		t.Fatalf("fresh batch after aborted fragments = %+v (orphans leaked?)", got[2])
	}
}

// TestWALAppendRejectsOversizedRecord pins the write-side size bound:
// a single record whose payload exceeds the limit is rejected up front,
// never acknowledged and then truncated as a "torn tail" on reopen.
func TestWALAppendRejectsOversizedRecord(t *testing.T) {
	s, err := Open(t.TempDir(), testFP(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Lower the limit so the guard triggers without a 256 MiB payload.
	old := maxRecordBytes
	maxRecordBytes = 1024
	defer func() { maxRecordBytes = old }()
	err = s.LogInsert(1, []string{strings.Repeat("x", 2048)})
	if err == nil || !strings.Contains(err.Error(), "record limit") {
		t.Fatalf("oversized append = %v, want record-limit rejection", err)
	}
	if s.LSN() != 0 {
		t.Fatalf("rejected append advanced the LSN to %d", s.LSN())
	}
	// The store is still usable (the size bound is a validation error,
	// not a latched log failure).
	if err := s.LogInsert(1, []string{"ok", "ok"}); err != nil {
		t.Fatal(err)
	}
}

// FuzzWALDecode fuzzes the record decoder: arbitrary bytes must never
// panic or over-allocate, and every accepted payload must round-trip
// semantically (encode(decode(b)) decodes to the same record).
func FuzzWALDecode(f *testing.F) {
	seed := func(op Op, row Row, rows []Row) {
		e := &enc{}
		encodePayload(e, op, row, rows, 0)
		f.Add(e.b)
	}
	seed(OpInsert, Row{ID: 1, Values: []string{"x", "y"}}, nil)
	seed(OpInsert, Row{ID: -3, Values: nil}, nil)
	seed(OpRemove, Row{ID: 42}, nil)
	seed(OpBatch, Row{}, []Row{{ID: 1, Values: []string{"a"}}, {ID: 2, Values: []string{"", "ü"}}})
	f.Add([]byte{})
	f.Add([]byte{byte(OpBatch), 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodePayload(b)
		if err != nil {
			return
		}
		e := &enc{}
		encodePayload(e, rec.Op, rec.Row, rec.Rows, rec.BatchOffset)
		rec2, err := decodePayload(e.b)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip changed the record: %+v -> %+v", rec, rec2)
		}
	})
}

// fuzzSnapshotCorpus builds realistic snapshot bodies for the fuzz
// seeds: a minimal state, and a larger prefix-clustered one whose
// shape matches what the production path writes (10k records when big
// is set — the soak scale, exercising the delta dictionary encoding
// and multi-chunk strings for real).
func fuzzSnapshotCorpus(big bool) []byte {
	st := &stream.State{
		Dicts:    []stream.DictState{{Col: 0, Values: []string{"a"}}},
		Rows:     []stream.RowState{{ID: 1, Values: []string{"a"}}},
		Clusters: [][]int{{1, 2}},
	}
	snap := &Snapshot{
		Stream: st,
		Engine: []EngineRec{{ID: 1, Values: []string{"a"}, Keys: []string{"k"}}},
	}
	if big {
		n := 10000
		st.Dicts[0].Values = st.Dicts[0].Values[:0]
		for i := 0; i < n; i++ {
			st.Dicts[0].Values = append(st.Dicts[0].Values, fmt.Sprintf("smith-%05d", i))
		}
		st.Rows = st.Rows[:0]
		snap.Engine = snap.Engine[:0]
		for i := 0; i < n; i++ {
			v := st.Dicts[0].Values[i]
			st.Rows = append(st.Rows, stream.RowState{ID: i, Values: []string{v}})
			snap.Engine = append(snap.Engine, EngineRec{ID: i, Values: []string{v}, Keys: []string{"S530|" + v}})
		}
		st.Clusters = [][]int{{0, 1, 2}, {9998, 9999}}
		st.Stats.Inserts = n
	}
	e := &enc{}
	encodeSnapshot(e, snap)
	return e.b
}

// FuzzSnapshotDecode fuzzes the snapshot-body decoder the same way.
// Seeds include a real 10k-record body, so the fuzzer mutates from the
// production shape, not just a toy.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(fuzzSnapshotCorpus(false))
	f.Add(fuzzSnapshotCorpus(true))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		e := &enc{}
		encodeSnapshot(e, snap)
		if _, err := decodeSnapshot(e.b); err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
	})
}

// frameFuzzChunks frames a body into the chunked stream format by hand
// (independent of chunkWriter, so a writer bug cannot hide in the
// seeds).
func frameFuzzChunks(body []byte, size int) []byte {
	var out []byte
	sum := uint32(0)
	for off := 0; off < len(body); off += size {
		end := off + size
		if end > len(body) {
			end = len(body)
		}
		p := body[off:end]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(p, crcTable))
		out = append(out, p...)
		sum = crc32.Update(sum, crcTable, p)
	}
	out = binary.LittleEndian.AppendUint32(out, 0)
	out = binary.LittleEndian.AppendUint32(out, sum)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	return out
}

// FuzzSnapshotChunkStream fuzzes the streaming layer itself: arbitrary
// bytes treated as a post-header chunk stream must never panic or
// over-allocate, and every accepted stream must decode to a state whose
// canonical re-encoding decodes back. Seeds cover chunk-boundary
// truncations and per-chunk CRC corruption of well-formed streams —
// the damage classes recovery falls back on.
func FuzzSnapshotChunkStream(f *testing.F) {
	body := fuzzSnapshotCorpus(false)
	for _, size := range []int{1, 5, 64} {
		framed := frameFuzzChunks(body, size)
		f.Add(framed)
		// Truncations at a chunk boundary, mid-chunk-header, and
		// mid-payload.
		f.Add(framed[:len(framed)-16]) // trailer gone
		f.Add(framed[:8+size])         // exactly one chunk
		f.Add(framed[:3])              // torn chunk header
		f.Add(framed[:8+size/2])       // torn payload
		corrupt := bytes.Clone(framed) // flip one payload byte:
		corrupt[8+size/2] ^= 0xff      // per-chunk CRC must catch it
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		d := &sdec{c: &chunkReader{r: bytes.NewReader(b), path: "fuzz"}}
		snap, err := decodeSnapshotStream(d)
		if err != nil {
			return
		}
		e := &enc{}
		encodeSnapshot(e, snap)
		if _, err := decodeSnapshot(e.b); err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
	})
}

// TestWALDecodeRejectsTrailingGarbage pins that structurally valid
// payloads with trailing bytes are rejected rather than silently
// truncated.
func TestWALDecodeRejectsTrailingGarbage(t *testing.T) {
	e := &enc{}
	encodePayload(e, OpRemove, Row{ID: 1}, nil, 0)
	if _, err := decodePayload(append(bytes.Clone(e.b), 0x00)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
