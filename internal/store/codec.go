package store

import (
	"encoding/binary"
	"errors"
)

// errMalformed reports a structurally invalid payload: a truncated
// varint, a length running past the buffer, or trailing garbage. WAL
// records carry a CRC, so reaching it means on-disk corruption that the
// checksum cannot catch (or a software bug), never a torn tail — torn
// tails fail the CRC first and are truncated, not decoded.
var errMalformed = errors.New("store: malformed payload")

// enc appends a payload body. File headers use fixed-width
// little-endian fields; payload bodies are varint-based. A sink, when
// set, receives the buffered bytes at mark() points (see snapio.go) so
// large bodies stream out in chunks instead of materializing; the sink
// must consume the slice before returning, because the buffer is
// reused.
type enc struct {
	b    []byte
	sink func([]byte)
}

func (e *enc) u8(v byte)        { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)     { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// dec decodes a payload without ever panicking on malformed input: the
// first failure latches err and every subsequent read returns a zero
// value. Length prefixes are validated against the remaining buffer
// before any allocation, so hostile inputs cannot force huge
// allocations (FuzzWALDecode exercises this).
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errMalformed
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads an element count and validates it against the remaining
// buffer (every element costs at least one byte, so a count beyond it
// is malformed before any allocation happens).
func (d *dec) count() uint64 {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)) {
		d.fail()
	}
	return n
}

// preallocCap bounds a slice pre-allocation hint: element headers are
// wider than the one-byte-per-element floor the count check enforces,
// so sizing make() by a hostile count would amplify input bytes into
// 8-32x the allocation. Beyond the cap, append grows the slice — paid
// only by inputs whose actual bytes justify it.
const preallocCap = 4096

func preallocHint(n uint64) int {
	if n > preallocCap {
		return preallocCap
	}
	return int(n)
}

func (d *dec) strs() []string {
	n := d.count()
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, preallocHint(n))
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// done reports latched errors and rejects trailing bytes.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return errMalformed
	}
	return nil
}
