package store

import (
	"bytes"
	"fmt"
	"testing"

	"mdmatch/internal/stream"
)

// TestSnapshotEncodeParallelIdentical pins the section-parallel
// snapshot encoder's contract: at any worker count the concatenated
// sections are byte-identical to the serial encode, so checksums,
// on-disk bytes and recovery are unaffected by how many cores rendered
// the snapshot.
func TestSnapshotEncodeParallelIdentical(t *testing.T) {
	st := &stream.State{
		Dicts: []stream.DictState{
			{Col: 0, Values: []string{"alice", "bob", "smith", "smyth"}},
			{Col: 3, Values: []string{"", "908-555-0101"}},
		},
		Clusters: [][]int{{1, 4, 9}, {2}, {3, 5}},
	}
	for i := 0; i < 200; i++ {
		st.Rows = append(st.Rows, stream.RowState{
			ID:     i,
			Values: []string{fmt.Sprintf("fn%d", i), fmt.Sprintf("ln%d", i%7), "", fmt.Sprintf("tel%d", i)},
		})
	}
	st.Stats.Inserts = 200
	st.Stats.Applications = 31
	st.Stats.Passes = 412
	st.Stats.Chase.PairsExamined = 123456
	st.Stats.Chase.LHSEvaluations = 9876
	st.Stats.Chase.RuleFirings = 31
	snap := &Snapshot{LSN: 200, Stream: st}
	for i := 0; i < 150; i++ {
		snap.Engine = append(snap.Engine, EngineRec{
			ID:     i,
			Values: []string{fmt.Sprintf("v%d", i), "", fmt.Sprintf("w%d", i)},
			Keys:   []string{fmt.Sprintf("k0|%d", i%11), fmt.Sprintf("k1|%d", i%3)},
		})
	}

	serial := &enc{}
	encodeSnapshot(serial, snap)
	if len(serial.b) == 0 {
		t.Fatal("serial encode produced no bytes")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := encodeSnapshotBody(snap, workers)
		if !bytes.Equal(got, serial.b) {
			t.Errorf("workers=%d: parallel body differs from serial (%d vs %d bytes)",
				workers, len(got), len(serial.b))
		}
	}
}
