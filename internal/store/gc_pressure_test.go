package store

import (
	"sync"
	"testing"

	"mdmatch/internal/stream"
)

// tinySnapshot builds a minimal valid capture at the given LSN (GC
// pressure is about file churn, not state size).
func tinySnapshot(lsn uint64) *Snapshot {
	return &Snapshot{
		LSN: lsn,
		Stream: &stream.State{
			Dicts: []stream.DictState{{Col: 0, Values: []string{"v"}}},
			Rows:  []stream.RowState{{ID: 1, Values: []string{"v", "v"}}},
		},
	}
}

// TestWALSegmentGCPressure rotates thousands of tiny segments under a
// snapshot-every-few-records regime and pins the retention invariants:
// the live segment count and the on-disk file count stay bounded by
// the retention window (keepSnaps snapshots plus the segments after
// the oldest kept one), no matter how many rotations have happened,
// and appends from a concurrent writer never race the collector.
func TestWALSegmentGCPressure(t *testing.T) {
	dir := t.TempDir()
	fp := FingerprintOf("gc pressure")
	// Segment bytes 1: EVERY append overflows the active segment and
	// rotates — the worst possible churn.
	s, err := Open(dir, fp, WithNoSync(), WithSegmentBytes(1), WithKeepSnapshots(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		total    = 3000
		snapEach = 50
	)
	var wg sync.WaitGroup
	// A small buffer keeps the writer genuinely concurrent with the
	// snapshot/GC cycles below while bounding how far it runs ahead
	// (the segment-count assertions depend on that bound).
	appends := make(chan struct{}, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= total; i++ {
			if err := s.LogInsert(i, []string{"a", "b"}); err != nil {
				t.Error(err)
				return
			}
			appends <- struct{}{}
		}
	}()
	done := 0
	for range appends {
		done++
		if done%snapEach == 0 {
			if err := s.WriteSnapshot(tinySnapshot(s.LSN())); err != nil {
				t.Fatal(err)
			}
			// The retention window spans at most the records after the
			// oldest of the 2 kept snapshots — snapshots trail the
			// writer by less than 2*snapEach records, one segment per
			// record, plus slack for the appends in flight.
			if segs := s.Segments(); segs > 3*snapEach {
				t.Fatalf("after %d appends: %d live segments, GC is not keeping up", done, segs)
			}
			segs, snaps, err := listDir(OSFS{}, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) > 2 {
				t.Fatalf("after %d appends: %d snapshots on disk, retention keeps 2", done, len(snaps))
			}
			if len(segs) > 3*snapEach {
				t.Fatalf("after %d appends: %d segment files on disk", done, len(segs))
			}
		}
		if done == total {
			break
		}
	}
	wg.Wait()

	// Final convergence: snapshot at the head, then everything behind
	// it is collectable down to the floor.
	if err := s.WriteSnapshot(tinySnapshot(s.LSN())); err != nil {
		t.Fatal(err)
	}
	segFiles, snapFiles, err := listDir(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snapFiles) > 2 || s.Segments() > 2*snapEach+2 || len(segFiles) != s.Segments() {
		t.Fatalf("converged state: %d snapshots, %d live segments, %d segment files",
			len(snapFiles), s.Segments(), len(segFiles))
	}
	// And the directory still recovers: reopen and replay the suffix.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, fp, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LSN() != total {
		t.Fatalf("reopened LSN = %d, want %d", s2.LSN(), total)
	}
}
