package store

import (
	"fmt"
	"testing"

	"mdmatch/internal/stream"
)

// benchRow is a typical credit-row payload shape.
var benchRow = []string{
	"4000123412341234", "123-45-6789", "Augusta", "Byron", "12 St James Square",
	"London", "Westminster", "SW1Y", "555-0100", "ada@example.org", "F",
	"1815-12-10", "visa",
}

// BenchmarkWALAppend measures one journaled insert without the
// per-append fsync (the kernel still sees every write in order).
func BenchmarkWALAppend(b *testing.B) {
	b.ReportAllocs()
	s, err := Open(b.TempDir(), testBenchFP(), WithNoSync())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.LogInsert(i, benchRow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsync measures the durable default: one fsync per
// append.
func BenchmarkWALAppendFsync(b *testing.B) {
	b.ReportAllocs()
	s, err := Open(b.TempDir(), testBenchFP())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.LogInsert(i, benchRow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures serializing a 1000-row state.
func BenchmarkSnapshotEncode(b *testing.B) {
	b.ReportAllocs()
	snap := benchSnapshot(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &enc{}
		encodeSnapshot(e, snap)
	}
}

// BenchmarkSnapshotDecode measures parsing it back.
func BenchmarkSnapshotDecode(b *testing.B) {
	b.ReportAllocs()
	e := &enc{}
	encodeSnapshot(e, benchSnapshot(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeSnapshot(e.b); err != nil {
			b.Fatal(err)
		}
	}
}

func testBenchFP() Fingerprint { return FingerprintOf("bench") }

func benchSnapshot(rows int) *Snapshot {
	st := &stream.State{
		Dicts: []stream.DictState{{Col: 0}},
	}
	for i := 0; i < rows; i++ {
		st.Dicts[0].Values = append(st.Dicts[0].Values, fmt.Sprintf("value-%d", i))
		st.Rows = append(st.Rows, stream.RowState{ID: i, Values: benchRow})
	}
	return &Snapshot{
		LSN:    uint64(rows),
		Stream: st,
		Engine: []EngineRec{{ID: 1, Values: benchRow, Keys: []string{"a", "b"}}},
	}
}
