package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Chunked snapshot bodies ("mdmsnp02").
//
// After the shared 48-byte file header a snapshot carries its body as a
// sequence of self-checking chunks, terminated by a trailer:
//
//	chunk:   payload length (4, LE, > 0) | CRC-32C of payload (4, LE) | payload
//	trailer: 0 (4, LE) | CRC-32C of the whole body (4, LE) | body length (8, LE)
//
// Chunk boundaries are pure transport: concatenating the payloads in
// order yields the logical body, byte-identical to what the in-memory
// encoder produces (TestSnapshotStreamIdentical pins this). The writer
// therefore never materializes the body — it flushes the encoder's
// buffer whenever a section encoder declares a cut point (enc.mark) —
// and the reader decodes one bounded chunk at a time. The trailer's
// whole-body CRC and length catch chunk reordering, duplication or
// omission that per-chunk CRCs alone would miss.

// snapChunkBytes is the encoder's flush threshold: at each mark() point
// a buffer at least this full becomes one chunk. A variable only so
// tests can force tiny chunks and exercise values straddling chunk
// boundaries.
var snapChunkBytes = 256 << 10

// maxChunkPayload bounds one chunk's payload on the read side, so a
// corrupt or hostile length word cannot demand an unbounded allocation
// (the analogue of maxRecordBytes for WAL records). The writer splits
// oversized flushes, so conforming files always comply.
const maxChunkPayload = 4 << 20

// chunkWriter frames payload bytes into the chunk stream. The first
// write error latches and every later call is a no-op, so encoders can
// run to completion and collect the error once from finish().
type chunkWriter struct {
	f     File
	sum   uint32 // running CRC-32C over every body byte framed so far
	body  uint64 // body bytes framed so far
	total int64  // file bytes written, excluding the file header
	err   error
}

// chunk frames p (splitting it when it exceeds maxChunkPayload). The
// caller may reuse p's backing array after return.
func (w *chunkWriter) chunk(p []byte) {
	for len(p) > 0 && w.err == nil {
		part := p
		if len(part) > maxChunkPayload {
			part = part[:maxChunkPayload]
		}
		p = p[len(part):]
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(part)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(part, crcTable))
		if w.write(hdr[:]) && w.write(part) {
			w.sum = crc32.Update(w.sum, crcTable, part)
			w.body += uint64(len(part))
		}
	}
}

func (w *chunkWriter) write(p []byte) bool {
	if w.err != nil {
		return false
	}
	if _, err := w.f.Write(p); err != nil {
		w.err = err
		return false
	}
	w.total += int64(len(p))
	return true
}

// finish writes the trailer and reports the first error of the whole
// stream.
func (w *chunkWriter) finish() error {
	var tr [16]byte
	binary.LittleEndian.PutUint32(tr[4:8], w.sum)
	binary.LittleEndian.PutUint64(tr[8:], w.body)
	w.write(tr[:])
	return w.err
}

// chunkReader verifies and unframes the chunk stream. cur holds the
// unread remainder of the current chunk; fin is set once the trailer
// has been read and verified. Body-level damage — truncation, checksum
// mismatch, an over-limit length — wraps errSnapshotBody so Open falls
// back to an older snapshot; a real I/O error surfaces raw.
type chunkReader struct {
	r    io.Reader
	path string
	cur  []byte
	buf  []byte // reusable chunk buffer
	sum  uint32
	body uint64
	fin  bool
}

// memBody adapts an already-materialized body (no chunk framing) to the
// reader interface: the whole body is the current chunk and the stream
// is already finished. The in-memory decode path (tests, fuzzing) and
// the streaming path share one decoder this way.
func memBody(b []byte) *chunkReader { return &chunkReader{cur: b, fin: true} }

func (c *chunkReader) readFull(b []byte, what string) error {
	if _, err := io.ReadFull(c.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("store: %s: truncated %s: %w", c.path, what, errSnapshotBody)
		}
		return err
	}
	return nil
}

// next loads and verifies the next chunk into cur, or verifies the
// trailer and sets fin.
func (c *chunkReader) next() error {
	var hdr [8]byte
	if err := c.readFull(hdr[:], "chunk header"); err != nil {
		return err
	}
	plen := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if plen == 0 {
		var tail [8]byte
		if err := c.readFull(tail[:], "trailer"); err != nil {
			return err
		}
		if crc != c.sum {
			return fmt.Errorf("store: %s: body checksum mismatch: %w", c.path, errSnapshotBody)
		}
		if got := binary.LittleEndian.Uint64(tail[:]); got != c.body {
			return fmt.Errorf("store: %s: trailer says %d body bytes, read %d: %w", c.path, got, c.body, errSnapshotBody)
		}
		var one [1]byte
		if n, err := io.ReadFull(c.r, one[:]); err == io.EOF {
			// clean end of file
		} else if err != nil && n == 0 {
			return err
		} else {
			return fmt.Errorf("store: %s: trailing bytes after trailer: %w", c.path, errSnapshotBody)
		}
		c.fin = true
		return nil
	}
	if plen > maxChunkPayload {
		return fmt.Errorf("store: %s: chunk of %d bytes exceeds the %d limit: %w", c.path, plen, maxChunkPayload, errSnapshotBody)
	}
	if cap(c.buf) < int(plen) {
		c.buf = make([]byte, plen)
	}
	buf := c.buf[:plen]
	if err := c.readFull(buf, "chunk"); err != nil {
		return err
	}
	if crc32.Checksum(buf, crcTable) != crc {
		return fmt.Errorf("store: %s: chunk checksum mismatch: %w", c.path, errSnapshotBody)
	}
	c.sum = crc32.Update(c.sum, crcTable, buf)
	c.body += uint64(plen)
	c.cur = buf
	return nil
}

// drain verifies the rest of the stream without decoding it
// (verifySnapshotFile: Open-time integrity checking).
func (c *chunkReader) drain() error {
	c.cur = nil
	for !c.fin {
		if err := c.next(); err != nil {
			return err
		}
	}
	return nil
}

// sdec decodes a body from a chunk stream with the same latching
// discipline as dec: the first failure latches err and every later read
// returns a zero value, so decoders never check errors mid-structure.
// Structural damage latches errMalformed; chunk-level damage latches
// the chunkReader's error (which already wraps errSnapshotBody).
type sdec struct {
	c   *chunkReader
	err error
}

func (d *sdec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// refill makes at least one byte available, crossing chunk boundaries.
// A body that ends mid-value is structurally malformed even though
// every checksum passed.
func (d *sdec) refill() bool {
	for len(d.c.cur) == 0 {
		if d.c.fin {
			d.fail(errMalformed)
			return false
		}
		if err := d.c.next(); err != nil {
			d.fail(err)
			return false
		}
	}
	return true
}

func (d *sdec) u8() byte {
	if d.err != nil || !d.refill() {
		return 0
	}
	v := d.c.cur[0]
	d.c.cur = d.c.cur[1:]
	return v
}

func (d *sdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b := d.u8()
		if d.err != nil {
			return 0
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				d.fail(errMalformed) // overflows uint64
				return 0
			}
			return x | uint64(b)<<s
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	d.fail(errMalformed)
	return 0
}

func (d *sdec) varint() int64 {
	ux := d.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x
}

func (d *sdec) str() string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return ""
	}
	if uint64(len(d.c.cur)) >= n {
		// Fast path: the string lies inside the current chunk.
		s := string(d.c.cur[:n])
		d.c.cur = d.c.cur[n:]
		return s
	}
	// The string straddles chunks. Pre-size by what one more chunk can
	// prove, not by the (possibly hostile) length word; append grows
	// the buffer only as real verified bytes arrive.
	b := make([]byte, 0, min(n, uint64(len(d.c.cur))+maxChunkPayload))
	for uint64(len(b)) < n {
		if !d.refill() {
			return ""
		}
		take := uint64(len(d.c.cur))
		if r := n - uint64(len(b)); take > r {
			take = r
		}
		b = append(b, d.c.cur[:take]...)
		d.c.cur = d.c.cur[take:]
	}
	return string(b)
}

// count reads an element count. Unlike dec.count it cannot pre-validate
// against remaining bytes (the stream length is unknown); allocation is
// bounded by preallocHint and a lying count fails at the first missing
// element instead.
func (d *sdec) count() uint64 { return d.uvarint() }

func (d *sdec) strs() []string {
	n := d.count()
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, preallocHint(n))
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// done requires exact consumption: no bytes left in the current chunk,
// and the next frame (when the trailer has not been read yet) must BE
// the trailer — a data chunk past the body's structural end is trailing
// garbage.
func (d *sdec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.c.cur) != 0 {
		return errMalformed
	}
	if !d.c.fin {
		if err := d.c.next(); err != nil {
			return err
		}
		if !d.c.fin {
			return errMalformed
		}
	}
	return nil
}

// mark declares a flush point: a position where the encoded stream may
// be cut into a transport chunk. With no sink attached (in-memory and
// parallel encoders) it is a no-op, which is why the chunk payloads
// concatenate to exactly the in-memory bytes.
func (e *enc) mark() {
	if e.sink != nil && len(e.b) >= snapChunkBytes {
		e.sink(e.b)
		e.b = e.b[:0]
	}
}

// flush hands any buffered tail to the sink (end of body).
func (e *enc) flush() {
	if e.sink != nil && len(e.b) > 0 {
		e.sink(e.b)
		e.b = e.b[:0]
	}
}
