package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"mdmatch/internal/par"
	"mdmatch/internal/stream"
)

// Snapshot is one serialized state capture: the stream enforcer's
// persistent state (dictionaries, resolved rows, clusters, counters)
// plus the engine's stored records with their pre-rendered blocking
// keys, all captured at LSN — the state is exactly the fold of WAL
// records 1..LSN, so recovery is "restore snapshot, replay the suffix".
//
// Deliberately absent, and why:
//
//   - verdict caches (stream and engine interner): pure memos over
//     immutable value pairs; they rebuild on demand with identical
//     verdicts. The only observable difference after recovery is the
//     Chase.LHSEvaluations counter going forward (it counts cache
//     misses, and the caches restart cold).
//   - per-rule join indexes: their bucket keys embed lazily-assigned
//     Soundex code IDs, so serialized keys from the writing process
//     would be meaningless to the reader; they are a pure function of
//     the dictionaries and rows and are rebuilt through the same code
//     path that built them originally.
//   - engine query counters: they describe served traffic, not
//     recoverable state (Engine.ResetStats exists for the same reason).
type Snapshot struct {
	// LSN is the WAL position the state was captured at (the snapshot
	// supersedes records 1..LSN).
	LSN    uint64
	Stream *stream.State
	Engine []EngineRec
}

// EngineRec is one indexed engine record. Values carries the columns
// the match plan's conjuncts read (the engine retains no other strings
// — untouched columns serialize as ""); Keys carries the pre-rendered
// blocking keys verbatim.
type EngineRec struct {
	ID     int
	Values []string
	Keys   []string
}

// The snapshot body is four independent sections in fixed order:
// dictionaries, rows, clusters+stats, engine records. Each section
// encoder writes one section into its own buffer, so a multi-core
// writer can render the sections concurrently and concatenate — the
// bytes are identical to a serial encode by construction (each section
// is a pure function of the snapshot, and the order of concatenation
// is the serial order).
var snapSections = [...]func(*enc, *Snapshot){
	encodeSnapDicts,
	encodeSnapRows,
	encodeSnapClusters,
	encodeSnapEngine,
}

func encodeSnapDicts(e *enc, s *Snapshot) {
	e.uvarint(uint64(len(s.Stream.Dicts)))
	for _, d := range s.Stream.Dicts {
		e.uvarint(uint64(d.Col))
		e.strs(d.Values)
	}
}

func encodeSnapRows(e *enc, s *Snapshot) {
	e.uvarint(uint64(len(s.Stream.Rows)))
	for _, r := range s.Stream.Rows {
		e.varint(int64(r.ID))
		e.strs(r.Values)
	}
}

func encodeSnapClusters(e *enc, s *Snapshot) {
	e.uvarint(uint64(len(s.Stream.Clusters)))
	for _, cl := range s.Stream.Clusters {
		e.uvarint(uint64(len(cl)))
		for _, id := range cl {
			e.varint(int64(id))
		}
	}
	st := s.Stream.Stats
	e.varint(int64(st.Inserts))
	e.varint(int64(st.Batches))
	e.varint(int64(st.Applications))
	e.varint(int64(st.Passes))
	e.varint(st.Chase.PairsExamined)
	e.varint(st.Chase.LHSEvaluations)
	e.varint(st.Chase.RuleFirings)
}

func encodeSnapEngine(e *enc, s *Snapshot) {
	e.uvarint(uint64(len(s.Engine)))
	for _, r := range s.Engine {
		e.varint(int64(r.ID))
		e.strs(r.Values)
		e.strs(r.Keys)
	}
}

// encodeSnapshot renders the snapshot body (everything the CRC covers).
// Field order is fixed and all collections are written in deterministic
// order, so equal states produce byte-identical snapshots.
func encodeSnapshot(e *enc, s *Snapshot) {
	for _, sec := range snapSections {
		sec(e, s)
	}
}

// encodeSnapshotBody renders the body with the sections encoded in
// parallel and concatenated in serial order. Byte-identical to
// encodeSnapshot at any worker count (pinned by
// TestSnapshotEncodeParallelIdentical); workers <= 1 runs inline.
func encodeSnapshotBody(s *Snapshot, workers int) []byte {
	var bufs [len(snapSections)]enc
	par.For(len(snapSections), workers, func(i int) {
		snapSections[i](&bufs[i], s)
	})
	out := bufs[0].b
	for i := 1; i < len(bufs); i++ {
		out = append(out, bufs[i].b...)
	}
	return out
}

// decodeSnapshot parses a snapshot body. Like decodePayload it never
// panics and validates every count against the remaining buffer before
// allocating from it.
func decodeSnapshot(b []byte) (*Snapshot, error) {
	d := &dec{b: b}
	s := &Snapshot{Stream: &stream.State{}}
	nd := d.count()
	for i := uint64(0); i < nd && d.err == nil; i++ {
		ds := stream.DictState{Col: int(d.uvarint())}
		ds.Values = d.strs()
		s.Stream.Dicts = append(s.Stream.Dicts, ds)
	}
	nr := d.count()
	for i := uint64(0); i < nr && d.err == nil; i++ {
		r := stream.RowState{ID: int(d.varint())}
		r.Values = d.strs()
		s.Stream.Rows = append(s.Stream.Rows, r)
	}
	nc := d.count()
	for i := uint64(0); i < nc && d.err == nil; i++ {
		m := d.count()
		if d.err != nil {
			break
		}
		cl := make([]int, 0, preallocHint(m))
		for j := uint64(0); j < m && d.err == nil; j++ {
			cl = append(cl, int(d.varint()))
		}
		s.Stream.Clusters = append(s.Stream.Clusters, cl)
	}
	s.Stream.Stats.Inserts = int(d.varint())
	s.Stream.Stats.Batches = int(d.varint())
	s.Stream.Stats.Applications = int(d.varint())
	s.Stream.Stats.Passes = int(d.varint())
	s.Stream.Stats.Chase.PairsExamined = d.varint()
	s.Stream.Stats.Chase.LHSEvaluations = d.varint()
	s.Stream.Stats.Chase.RuleFirings = d.varint()
	ne := d.count()
	for i := uint64(0); i < ne && d.err == nil; i++ {
		r := EngineRec{ID: int(d.varint())}
		r.Values = d.strs()
		r.Keys = d.strs()
		s.Engine = append(s.Engine, r)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteSnapshot persists one state capture durably: the body is written
// to a temporary file, fsynced, and renamed into place, so a crash
// mid-write can never damage an existing snapshot. On success the WAL
// rotates to a fresh segment and garbage collection drops snapshots
// beyond the retention count plus every segment fully behind the oldest
// kept snapshot. A capture at LSN 0 (empty history) is a no-op, and a
// capture at or behind the newest snapshot is skipped.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	if snap.LSN == 0 {
		return nil // nothing logged yet: recovery replays from LSN 1 anyway
	}
	// Encode before taking the store lock (and with the sections fanned
	// out over cores): a large state renders while appends continue.
	bodyBytes := encodeSnapshotBody(snap, runtime.GOMAXPROCS(0))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if snap.LSN > s.lsn {
		return fmt.Errorf("store: snapshot LSN %d is ahead of the log (at %d)", snap.LSN, s.lsn)
	}
	if snap.LSN <= s.snapLSN {
		return nil // an equal or newer snapshot already exists
	}
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}

	f := &enc{}
	f.b = append(f.b, fileHeader(snapMagic, s.fp, snap.LSN)...)
	f.u64(uint64(len(bodyBytes)))
	f.u32(crc32.Checksum(bodyBytes, crcTable))
	f.b = append(f.b, bodyBytes...)
	final := filepath.Join(s.dir, snapshotName(snap.LSN))
	tmp := final + ".tmp"
	if err := writeFileSync(s.fs, tmp, f.b); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	s.snapLSN = snap.LSN
	s.snaps = append(s.snaps, snap.LSN)
	s.snapTime = time.Now()
	s.snapSize = int64(len(f.b))
	if s.obs != nil {
		s.obs.SnapshotObserved(time.Since(start).Seconds(), len(f.b))
	}

	// Rotate so the segments holding only superseded records can age
	// out whole, then collect.
	active := &s.segs[len(s.segs)-1]
	if active.size > headerLen {
		if err := s.startSegment(s.lsn + 1); err != nil {
			s.failed = err
			return err
		}
	}
	// Recompute the snapshot debt BEFORE garbage collection: the
	// snapshot is installed either way, and a GC error must not leave
	// BytesSinceSnapshot stale (a background snapshotter keyed on it
	// would re-capture the full state every tick for nothing).
	s.sinceSnap = 0
	for _, seg := range s.segs {
		if seg.last > s.snapLSN {
			s.sinceSnap += seg.size - headerLen
		}
	}
	return s.gcLocked()
}

// gcLocked removes snapshots beyond the retention count and WAL
// segments no kept snapshot needs. Caller holds s.mu. A file already
// gone is success, not failure: a previous GC attempt may have removed
// it and then failed on a later file, and treating ENOENT as an error
// would wedge every retry (and every later snapshot) until restart.
func (s *Store) gcLocked() error {
	if len(s.snaps) > s.keepSnaps {
		for _, lsn := range s.snaps[:len(s.snaps)-s.keepSnaps] {
			if err := s.fs.Remove(filepath.Join(s.dir, snapshotName(lsn))); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
		s.snaps = slices.Clone(s.snaps[len(s.snaps)-s.keepSnaps:])
	}
	if len(s.snaps) == 0 {
		return nil
	}
	// Every record after the OLDEST kept snapshot must stay replayable
	// (the older snapshots exist exactly to fall back on), so only
	// segments that end at or before it can go. The active segment
	// always stays. (Removable segments are a contiguous prefix, so an
	// early return cannot have clobbered entries via the in-place
	// compaction: nothing is appended to kept before the first failure.)
	floor := s.snaps[0]
	kept := s.segs[:0]
	for i := range s.segs {
		seg := s.segs[i]
		if i < len(s.segs)-1 && seg.last <= floor {
			if err := s.fs.Remove(seg.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	s.segs = kept
	return nil
}

// LoadSnapshot decodes the newest readable snapshot, falling back to
// older retained ones when the newest is damaged (the WAL keeps every
// record after the oldest retained snapshot, so a fallback still
// recovers to the log head). It returns (nil, nil) when the directory
// has no snapshot at all, and an error when snapshots exist but none is
// readable.
func (s *Store) LoadSnapshot() (*Snapshot, error) {
	s.mu.Lock()
	snaps := slices.Clone(s.snaps)
	s.mu.Unlock()
	var firstErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, err := readSnapshot(s.fs, filepath.Join(s.dir, snapshotName(snaps[i])), s.fp, snaps[i])
		if err == nil {
			return snap, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("store: no readable snapshot: %w", firstErr)
	}
	return nil, nil
}

// errSnapshotBody marks body-level snapshot damage (truncation, bad
// checksum, undecodable payload) as opposed to a foreign fingerprint or
// I/O failure: Open skips such snapshots instead of refusing the
// directory, because the older retained snapshot is the designed
// fallback.
var errSnapshotBody = errors.New("store: unreadable snapshot body")

// checkSnapshotBytes validates a snapshot file's header and body and
// returns the checksummed payload.
func checkSnapshotBytes(b []byte, path string, fp Fingerprint, want uint64) ([]byte, error) {
	lsn, err := parseHeader(b, snapMagic, fp, path)
	if err != nil {
		return nil, err
	}
	if lsn != want {
		return nil, fmt.Errorf("store: %s: header LSN %d does not match name", path, lsn)
	}
	rest := b[headerLen:]
	if len(rest) < 12 {
		return nil, fmt.Errorf("store: %s: truncated: %w", path, errSnapshotBody)
	}
	d := &dec{b: rest}
	plen := d.u64()
	crc := le32(d.b)
	d.b = d.b[4:]
	if plen != uint64(len(d.b)) {
		return nil, fmt.Errorf("store: %s: body is %d bytes, header says %d: %w", path, len(d.b), plen, errSnapshotBody)
	}
	if crc32.Checksum(d.b, crcTable) != crc {
		return nil, fmt.Errorf("store: %s: checksum mismatch: %w", path, errSnapshotBody)
	}
	return d.b, nil
}

// verifySnapshotFile checks a snapshot's header and body checksum
// without decoding the state.
func verifySnapshotFile(fsys FS, path string, fp Fingerprint, want uint64) error {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	_, err = checkSnapshotBytes(b, path, fp, want)
	return err
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(fsys FS, path string, fp Fingerprint, want uint64) (*Snapshot, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body, err := checkSnapshotBytes(b, path, fp, want)
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshot(body)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w (%w)", path, errSnapshotBody, err)
	}
	snap.LSN = want
	return snap, nil
}

// writeFileSync writes b to path and fsyncs it before returning.
func writeFileSync(fsys FS, path string, b []byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
