package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"slices"
	"time"

	"mdmatch/internal/par"
	"mdmatch/internal/stream"
	"mdmatch/internal/trace"
)

// Snapshot is one serialized state capture: the stream enforcer's
// persistent state (dictionaries, resolved rows, clusters, counters)
// plus the engine's stored records with their pre-rendered blocking
// keys, all captured at LSN — the state is exactly the fold of WAL
// records 1..LSN, so recovery is "restore snapshot, replay the suffix".
//
// The capture comes in two interchangeable representations. The
// string-level deep copy (Stream + Engine) is what decoding always
// produces and what tests build by hand. The compact form (Cut +
// EngineSrc), when set, takes precedence on encode: it holds columnar
// IDs and immutable dictionary table views captured in O(memcpy) under
// the write lock, and the encoder renders the strings lazily — that is
// what lets engine.Snapshot release its write lock before serialization
// starts. Both representations encode to identical bytes
// (TestSnapshotEncodeFromCutIdentical pins this).
//
// Deliberately absent, and why:
//
//   - verdict caches (stream and engine interner): pure memos over
//     immutable value pairs; they rebuild on demand with identical
//     verdicts. The only observable difference after recovery is the
//     Chase.LHSEvaluations counter going forward (it counts cache
//     misses, and the caches restart cold).
//   - per-rule join indexes: their bucket keys embed lazily-assigned
//     Soundex code IDs, so serialized keys from the writing process
//     would be meaningless to the reader; they are a pure function of
//     the dictionaries and rows and are rebuilt through the same code
//     path that built them originally.
//   - engine query counters: they describe served traffic, not
//     recoverable state (Engine.ResetStats exists for the same reason).
type Snapshot struct {
	// LSN is the WAL position the state was captured at (the snapshot
	// supersedes records 1..LSN).
	LSN    uint64
	Stream *stream.State
	Engine []EngineRec
	// Cut, when non-nil, is the compact stream-state capture the
	// encoder reads instead of Stream.
	Cut *stream.Cut
	// EngineSrc, when non-nil, is the lazy engine-record source the
	// encoder reads instead of Engine.
	EngineSrc EngineSource
}

// EngineRec is one indexed engine record. Values carries the columns
// the match plan's conjuncts read (the engine retains no other strings
// — untouched columns serialize as ""); Keys carries the pre-rendered
// blocking keys verbatim.
type EngineRec struct {
	ID     int
	Values []string
	Keys   []string
}

// EngineSource yields engine records one at a time in their
// deterministic serialization order (ascending ID), so the encoder
// never needs them all materialized at once. Rec overwrites out,
// reusing its slices when capacities allow.
type EngineSource interface {
	Len() int
	Rec(i int, out *EngineRec)
}

// The snapshot body is four independent sections in fixed order:
// dictionaries, rows, clusters+stats, engine records. Each section
// encoder writes one section into its own buffer, so a multi-core
// writer can render the sections concurrently and concatenate — the
// bytes are identical to a serial encode by construction (each section
// is a pure function of the snapshot, and the order of concatenation
// is the serial order). The streaming writer runs the same encoders
// serially with a chunk sink attached; mark() calls between items are
// where the stream may flush.
var snapSections = [...]func(*enc, *Snapshot){
	encodeSnapDicts,
	encodeSnapRows,
	encodeSnapClusters,
	encodeSnapEngine,
}

// deltaStr writes v as (length of the byte prefix shared with prev,
// suffix). Dictionary tables are the bulk of a snapshot's string data
// and are heavily prefix-clustered after resolution, so the delta form
// shrinks them substantially; decode is a pure concatenation, so the
// encoding stays order-exact.
func (e *enc) deltaStr(prev, v string) {
	p := 0
	for p < len(prev) && p < len(v) && prev[p] == v[p] {
		p++
	}
	e.uvarint(uint64(p))
	e.str(v[p:])
}

func encodeSnapDicts(e *enc, s *Snapshot) {
	if c := s.Cut; c != nil {
		e.uvarint(uint64(len(c.Dicts)))
		for _, d := range c.Dicts {
			e.uvarint(uint64(d.Col))
			n := d.Values.Len()
			e.uvarint(uint64(n))
			prev := ""
			for i := 0; i < n; i++ {
				v := d.Values.Value(i)
				e.deltaStr(prev, v)
				prev = v
				e.mark()
			}
		}
		return
	}
	e.uvarint(uint64(len(s.Stream.Dicts)))
	for _, d := range s.Stream.Dicts {
		e.uvarint(uint64(d.Col))
		e.uvarint(uint64(len(d.Values)))
		prev := ""
		for _, v := range d.Values {
			e.deltaStr(prev, v)
			prev = v
			e.mark()
		}
	}
}

func encodeSnapRows(e *enc, s *Snapshot) {
	if c := s.Cut; c != nil {
		arity := len(c.Cols)
		e.uvarint(uint64(len(c.RowIDs)))
		for r, id := range c.RowIDs {
			e.varint(int64(id))
			e.uvarint(uint64(arity))
			for col := 0; col < arity; col++ {
				e.str(c.ColTabs[col].Value(int(c.Cols[col][r])))
			}
			e.mark()
		}
		return
	}
	e.uvarint(uint64(len(s.Stream.Rows)))
	for _, r := range s.Stream.Rows {
		e.varint(int64(r.ID))
		e.strs(r.Values)
		e.mark()
	}
}

func encodeSnapClusters(e *enc, s *Snapshot) {
	var clusters [][]int
	var st stream.Stats
	if c := s.Cut; c != nil {
		clusters, st = c.Clusters, c.Stats
	} else {
		clusters, st = s.Stream.Clusters, s.Stream.Stats
	}
	e.uvarint(uint64(len(clusters)))
	for _, cl := range clusters {
		e.uvarint(uint64(len(cl)))
		for _, id := range cl {
			e.varint(int64(id))
		}
		e.mark()
	}
	e.varint(int64(st.Inserts))
	e.varint(int64(st.Batches))
	e.varint(int64(st.Applications))
	e.varint(int64(st.Passes))
	e.varint(st.Chase.PairsExamined)
	e.varint(st.Chase.LHSEvaluations)
	e.varint(st.Chase.RuleFirings)
}

func encodeSnapEngine(e *enc, s *Snapshot) {
	if src := s.EngineSrc; src != nil {
		n := src.Len()
		e.uvarint(uint64(n))
		var rec EngineRec
		for i := 0; i < n; i++ {
			src.Rec(i, &rec)
			e.varint(int64(rec.ID))
			e.strs(rec.Values)
			e.strs(rec.Keys)
			e.mark()
		}
		return
	}
	e.uvarint(uint64(len(s.Engine)))
	for _, r := range s.Engine {
		e.varint(int64(r.ID))
		e.strs(r.Values)
		e.strs(r.Keys)
		e.mark()
	}
}

// encodeSnapshot renders the snapshot body (everything the CRC covers).
// Field order is fixed and all collections are written in deterministic
// order, so equal states produce byte-identical snapshots.
func encodeSnapshot(e *enc, s *Snapshot) {
	for _, sec := range snapSections {
		sec(e, s)
	}
}

// encodeSnapshotBody renders the body in memory with the sections
// encoded in parallel and concatenated in serial order. Byte-identical
// to encodeSnapshot at any worker count (pinned by
// TestSnapshotEncodeParallelIdentical); workers <= 1 runs inline. The
// durable write path streams instead (streamSnapshotFile); this is the
// reference encoder the equivalence tests compare against.
func encodeSnapshotBody(s *Snapshot, workers int) []byte {
	var bufs [len(snapSections)]enc
	par.For(len(snapSections), workers, func(i int) {
		snapSections[i](&bufs[i], s)
	})
	out := bufs[0].b
	for i := 1; i < len(bufs); i++ {
		out = append(out, bufs[i].b...)
	}
	return out
}

// decodeSnapshotStream parses a snapshot body from a chunk stream. Like
// decodePayload it never panics and never sizes an allocation by an
// unverified length. The result always uses the string-level
// representation (Stream + Engine).
func decodeSnapshotStream(d *sdec) (*Snapshot, error) {
	s := &Snapshot{Stream: &stream.State{}}
	nd := d.count()
	for i := uint64(0); i < nd && d.err == nil; i++ {
		ds := stream.DictState{Col: int(d.uvarint())}
		nv := d.count()
		if d.err != nil {
			break
		}
		ds.Values = make([]string, 0, preallocHint(nv))
		prev := ""
		for j := uint64(0); j < nv && d.err == nil; j++ {
			p := d.uvarint()
			suf := d.str()
			if d.err != nil {
				break
			}
			if p > uint64(len(prev)) {
				d.fail(errMalformed)
				break
			}
			v := prev[:p] + suf
			ds.Values = append(ds.Values, v)
			prev = v
		}
		s.Stream.Dicts = append(s.Stream.Dicts, ds)
	}
	nr := d.count()
	for i := uint64(0); i < nr && d.err == nil; i++ {
		r := stream.RowState{ID: int(d.varint())}
		r.Values = d.strs()
		s.Stream.Rows = append(s.Stream.Rows, r)
	}
	nc := d.count()
	for i := uint64(0); i < nc && d.err == nil; i++ {
		m := d.count()
		if d.err != nil {
			break
		}
		cl := make([]int, 0, preallocHint(m))
		for j := uint64(0); j < m && d.err == nil; j++ {
			cl = append(cl, int(d.varint()))
		}
		s.Stream.Clusters = append(s.Stream.Clusters, cl)
	}
	s.Stream.Stats.Inserts = int(d.varint())
	s.Stream.Stats.Batches = int(d.varint())
	s.Stream.Stats.Applications = int(d.varint())
	s.Stream.Stats.Passes = int(d.varint())
	s.Stream.Stats.Chase.PairsExamined = d.varint()
	s.Stream.Stats.Chase.LHSEvaluations = d.varint()
	s.Stream.Stats.Chase.RuleFirings = d.varint()
	ne := d.count()
	for i := uint64(0); i < ne && d.err == nil; i++ {
		r := EngineRec{ID: int(d.varint())}
		r.Values = d.strs()
		r.Keys = d.strs()
		s.Engine = append(s.Engine, r)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSnapshot parses an already-materialized snapshot body (tests,
// fuzzing, and the property suite; the recovery path streams).
func decodeSnapshot(b []byte) (*Snapshot, error) {
	return decodeSnapshotStream(&sdec{c: memBody(b)})
}

// snapshotTracker is an optional Observer extension: an observer that
// also implements it is told when a snapshot write begins (+1) and ends
// (-1), success or failure, so a gauge can expose in-flight snapshot
// writes overlapping live traffic (mdmatch_snapshot_inflight).
type snapshotTracker interface{ SnapshotInflight(delta int) }

// WriteSnapshot persists one state capture durably: the body streams
// chunk-by-chunk into a temporary file, is fsynced, and renamed into
// place, so a crash mid-write can never damage an existing snapshot.
// On success the WAL rotates to a fresh segment and garbage collection
// drops snapshots beyond the retention count plus every segment fully
// behind the oldest kept snapshot. A capture at LSN 0 (empty history)
// is a no-op, and a capture at or behind the newest snapshot is
// skipped.
//
// Concurrency: snapMu admits one snapshot writer at a time, but the
// store lock is held only for validation and publication — appends
// proceed while the body (potentially gigabytes) streams to disk. That
// is safe because the capture is a consistent cut at snap.LSN and the
// log it supersedes is immutable: records appended during the write
// land after snap.LSN and stay replayable (GC only drops segments
// behind the OLDEST kept snapshot, which is at most snap.LSN).
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	return s.WriteSnapshotCtx(context.Background(), snap)
}

// WriteSnapshotCtx is WriteSnapshot with the caller's context: the
// write records itself as a "store.snapshot" trace span (with the
// encoded size in bytes) under the context's active trace, if any.
func (s *Store) WriteSnapshotCtx(ctx context.Context, snap *Snapshot) error {
	if snap.LSN == 0 {
		return nil // nothing logged yet: recovery replays from LSN 1 anyway
	}
	_, sp := trace.StartSpan(ctx, "store.snapshot")
	defer sp.End()
	sp.AttrInt("lsn", int64(snap.LSN))
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	if snap.LSN > s.lsn {
		lsn := s.lsn
		s.mu.Unlock()
		return fmt.Errorf("store: snapshot LSN %d is ahead of the log (at %d)", snap.LSN, lsn)
	}
	if snap.LSN <= s.snapLSN {
		s.mu.Unlock()
		return nil // an equal or newer snapshot already exists
	}
	obs := s.obs
	s.mu.Unlock()

	var start time.Time
	if obs != nil {
		start = time.Now()
		if tr, ok := obs.(snapshotTracker); ok {
			tr.SnapshotInflight(1)
			defer tr.SnapshotInflight(-1)
		}
	}
	final := filepath.Join(s.dir, snapshotName(snap.LSN))
	tmp := final + ".tmp"
	size, err := streamSnapshotFile(s.fs, tmp, s.fp, snap)
	if err != nil {
		return err
	}
	sp.AttrInt("bytes", size)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	s.snapLSN = snap.LSN
	s.snaps = append(s.snaps, snap.LSN)
	s.snapTime = time.Now()
	s.snapSize = size
	if obs != nil {
		obs.SnapshotObserved(time.Since(start).Seconds(), int(size))
	}

	// Rotate so the segments holding only superseded records can age
	// out whole, then collect.
	active := &s.segs[len(s.segs)-1]
	if active.size > headerLen {
		if err := s.startSegment(s.lsn + 1); err != nil {
			s.failed = err
			return err
		}
	}
	// Recompute the snapshot debt BEFORE garbage collection: the
	// snapshot is installed either way, and a GC error must not leave
	// BytesSinceSnapshot stale (a background snapshotter keyed on it
	// would re-capture the full state every tick for nothing).
	s.sinceSnap = 0
	for _, seg := range s.segs {
		if seg.last > s.snapLSN {
			s.sinceSnap += seg.size - headerLen
		}
	}
	return s.gcLocked()
}

// streamSnapshotFile renders snap into path as header + chunked body,
// fsyncs, and returns the file size. The encoder's buffer flushes into
// the chunk writer at every mark() point, so peak memory is one chunk,
// not the body.
func streamSnapshotFile(fsys FS, path string, fp Fingerprint, snap *Snapshot) (int64, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return 0, err
	}
	hdr := fileHeader(snapMagic, fp, snap.LSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return 0, err
	}
	w := &chunkWriter{f: f}
	e := &enc{b: make([]byte, 0, snapChunkBytes+preallocCap), sink: w.chunk}
	encodeSnapshot(e, snap)
	e.flush()
	if err := w.finish(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return int64(len(hdr)) + w.total, nil
}

// gcLocked removes snapshots beyond the retention count and WAL
// segments no kept snapshot needs. Caller holds s.mu. A file already
// gone is success, not failure: a previous GC attempt may have removed
// it and then failed on a later file, and treating ENOENT as an error
// would wedge every retry (and every later snapshot) until restart.
func (s *Store) gcLocked() error {
	if len(s.snaps) > s.keepSnaps {
		for _, lsn := range s.snaps[:len(s.snaps)-s.keepSnaps] {
			if err := s.fs.Remove(filepath.Join(s.dir, snapshotName(lsn))); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
		s.snaps = slices.Clone(s.snaps[len(s.snaps)-s.keepSnaps:])
	}
	if len(s.snaps) == 0 {
		return nil
	}
	// Every record after the OLDEST kept snapshot must stay replayable
	// (the older snapshots exist exactly to fall back on), so only
	// segments that end at or before it can go. The active segment
	// always stays. (Removable segments are a contiguous prefix, so an
	// early return cannot have clobbered entries via the in-place
	// compaction: nothing is appended to kept before the first failure.)
	floor := s.snaps[0]
	kept := s.segs[:0]
	for i := range s.segs {
		seg := s.segs[i]
		if i < len(s.segs)-1 && seg.last <= floor {
			if err := s.fs.Remove(seg.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	s.segs = kept
	return nil
}

// LoadSnapshot decodes the newest readable snapshot, falling back to
// older retained ones when the newest is damaged (the WAL keeps every
// record after the oldest retained snapshot, so a fallback still
// recovers to the log head). It returns (nil, nil) when the directory
// has no snapshot at all, and an error when snapshots exist but none is
// readable.
func (s *Store) LoadSnapshot() (*Snapshot, error) {
	s.mu.Lock()
	snaps := slices.Clone(s.snaps)
	s.mu.Unlock()
	var firstErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, err := readSnapshot(s.fs, filepath.Join(s.dir, snapshotName(snaps[i])), s.fp, snaps[i])
		if err == nil {
			return snap, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("store: no readable snapshot: %w", firstErr)
	}
	return nil, nil
}

// SnapshotLSNs returns the LSNs of the currently retained snapshots,
// ascending (the torture tests recover from EVERY retained snapshot,
// not just the newest).
func (s *Store) SnapshotLSNs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.snaps)
}

// LoadSnapshotAt decodes the retained snapshot captured at exactly lsn,
// with no fallback.
func (s *Store) LoadSnapshotAt(lsn uint64) (*Snapshot, error) {
	return readSnapshot(s.fs, filepath.Join(s.dir, snapshotName(lsn)), s.fp, lsn)
}

// errSnapshotBody marks body-level snapshot damage (truncation, bad
// checksum, undecodable payload) as opposed to a foreign fingerprint or
// I/O failure: Open skips such snapshots instead of refusing the
// directory, because the older retained snapshot is the designed
// fallback.
var errSnapshotBody = errors.New("store: unreadable snapshot body")

// openSnapshotStream opens a snapshot file, validates the fixed header,
// and positions a chunk reader at the body. Header-level damage (short
// file, bad magic, foreign fingerprint, name/LSN mismatch) stays a hard
// error: rename-into-place means a published snapshot always has a
// complete header, so damage there is not the designed older-snapshot
// fallback.
func openSnapshotStream(fsys FS, path string, fp Fingerprint, want uint64) (ReaderFile, *chunkReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, err
	}
	hdr := make([]byte, headerLen)
	if n, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, nil, fmt.Errorf("store: %s: short header (%d bytes)", path, n)
		}
		return nil, nil, err
	}
	lsn, err := parseHeader(hdr, snapMagic, fp, path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if lsn != want {
		f.Close()
		return nil, nil, fmt.Errorf("store: %s: header LSN %d does not match name", path, lsn)
	}
	return f, &chunkReader{r: f, path: path}, nil
}

// verifySnapshotFile checks a snapshot's header and every body checksum
// without decoding (or materializing) the state.
func verifySnapshotFile(fsys FS, path string, fp Fingerprint, want uint64) error {
	f, cr, err := openSnapshotStream(fsys, path, fp, want)
	if err != nil {
		return err
	}
	defer f.Close()
	return cr.drain()
}

// readSnapshot loads and validates one snapshot file, decoding the body
// one chunk at a time.
func readSnapshot(fsys FS, path string, fp Fingerprint, want uint64) (*Snapshot, error) {
	f, cr, err := openSnapshotStream(fsys, path, fp, want)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := decodeSnapshotStream(&sdec{c: cr})
	if err != nil {
		if errors.Is(err, errSnapshotBody) {
			return nil, err // chunk-level damage, already carries the path
		}
		if errors.Is(err, errMalformed) {
			return nil, fmt.Errorf("store: %s: %w (%w)", path, errSnapshotBody, err)
		}
		return nil, err // I/O failure: hard error, no fallback
	}
	snap.LSN = want
	return snap, nil
}
