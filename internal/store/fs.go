package store

import (
	iofs "io/fs"
	"os"
)

// FS abstracts the filesystem operations the durability path performs —
// segment creation and appends, snapshot tmp+fsync+rename, garbage
// collection, and the read side of recovery. The production
// implementation is OSFS; tests substitute a fault-injecting wrapper
// (internal/fault) to prove recovery is exact under ENOSPC, fsync
// failure, torn writes and crashes at every operation index, and a
// degraded service keeps serving reads when the disk misbehaves.
//
// The interface is deliberately narrow: exactly the calls the store
// makes, nothing speculative. Every mutation of durable state flows
// through it, so an injected fault at operation index i is the complete
// failure model for "the i-th I/O this store ever did went wrong".
type FS interface {
	// MkdirAll creates the data directory (and parents) if absent.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	// ReadFile returns the whole contents of name.
	ReadFile(name string) ([]byte, error)
	// Open opens name for sequential reading (the streaming snapshot
	// decoder; segments still use ReadFile because records must fit in
	// maxRecordBytes anyway).
	Open(name string) (ReaderFile, error)
	// WriteFile replaces name with data (used only by torn-header
	// repair, where the file is already damaged).
	WriteFile(name string, data []byte) error
	// Rename atomically moves old to new (snapshot publication).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (garbage collection).
	Remove(name string) error
	// Truncate cuts name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// Stat returns file metadata (snapshot age/size at Open).
	Stat(name string) (iofs.FileInfo, error)
	// ReadDir lists the data directory.
	ReadDir(dir string) ([]iofs.DirEntry, error)
	// SyncDir flushes directory metadata so a freshly created or
	// renamed file survives a crash.
	SyncDir(dir string) error
}

// File is the writable-file surface the store needs: sequential writes,
// fsync, close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// ReaderFile is the readable-file surface the store needs: sequential
// reads, close.
type ReaderFile interface {
	Read(p []byte) (int, error)
	Close() error
}

// OSFS is the production FS: direct calls into package os.
type OSFS struct{}

var _ FS = OSFS{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Open implements FS.
func (OSFS) Open(name string) (ReaderFile, error) { return os.Open(name) }

// WriteFile implements FS.
func (OSFS) WriteFile(name string, data []byte) error { return os.WriteFile(name, data, 0o644) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Stat implements FS.
func (OSFS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]iofs.DirEntry, error) { return os.ReadDir(dir) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WithFS substitutes the filesystem implementation (default OSFS).
// Fault-injection tests wrap OSFS to fail exact operation indices;
// every durable byte flows through the configured FS.
func WithFS(fs FS) Option {
	return func(s *Store) {
		if fs != nil {
			s.fs = fs
		}
	}
}
