// Package fellegi implements the Fellegi–Sunter statistical record
// matcher [17] with expectation-maximization parameter estimation [21],
// the method of Exp-2 in Section 6: candidate pairs are reduced to
// binary comparison vectors over a field set, the conditional agreement
// probabilities m (among matches) and u (among non-matches) and the
// match prevalence p are estimated by EM under the conditional-
// independence model, and pairs are classified by their log-likelihood
// agreement weight.
package fellegi

import (
	"fmt"
	"math"
	"math/rand"

	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/record"
)

// Model holds the fitted Fellegi–Sunter parameters for a field set.
type Model struct {
	Fields []matching.Field
	// M[i] = P(agree on field i | pair is a match).
	M []float64
	// U[i] = P(agree on field i | pair is a non-match).
	U []float64
	// P = P(match) among candidate pairs.
	P float64
}

// EMConfig controls estimation.
type EMConfig struct {
	// MaxIter bounds EM iterations (default 100).
	MaxIter int
	// Tol is the convergence tolerance on parameter change (default 1e-6).
	Tol float64
	// InitM, InitU, InitP seed the parameters (defaults 0.9, 0.1, 0.1).
	InitM, InitU, InitP float64
}

func (c *EMConfig) defaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.InitM <= 0 || c.InitM >= 1 {
		c.InitM = 0.9
	}
	if c.InitU <= 0 || c.InitU >= 1 {
		c.InitU = 0.1
	}
	if c.InitP <= 0 || c.InitP >= 1 {
		c.InitP = 0.1
	}
}

const probFloor = 1e-5

func clamp(x float64) float64 {
	if x < probFloor {
		return probFloor
	}
	if x > 1-probFloor {
		return 1 - probFloor
	}
	return x
}

// EstimateEM fits m, u and p from unlabeled comparison vectors by EM
// under conditional independence (the classic record-linkage EM of
// Winkler/Jaro [21, 32]).
func EstimateEM(vectors [][]bool, nFields int, cfg EMConfig) (*Model, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("fellegi: no vectors to fit")
	}
	if nFields == 0 {
		return nil, fmt.Errorf("fellegi: no fields")
	}
	cfg.defaults()

	// Aggregate identical vectors into patterns for speed.
	type pattern struct {
		vec   []bool
		count float64
	}
	patIndex := map[string]int{}
	var patterns []pattern
	keyBuf := make([]byte, nFields)
	for _, v := range vectors {
		if len(v) != nFields {
			return nil, fmt.Errorf("fellegi: vector arity %d, want %d", len(v), nFields)
		}
		for i, b := range v {
			if b {
				keyBuf[i] = '1'
			} else {
				keyBuf[i] = '0'
			}
		}
		k := string(keyBuf)
		if i, ok := patIndex[k]; ok {
			patterns[i].count++
		} else {
			patIndex[k] = len(patterns)
			patterns = append(patterns, pattern{vec: append([]bool(nil), v...), count: 1})
		}
	}

	m := make([]float64, nFields)
	u := make([]float64, nFields)
	for i := range m {
		m[i], u[i] = cfg.InitM, cfg.InitU
	}
	p := cfg.InitP
	total := float64(len(vectors))

	g := make([]float64, len(patterns))
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// E-step: posterior match probability per pattern.
		for j, pat := range patterns {
			la, lb := math.Log(p), math.Log(1-p)
			for i, agree := range pat.vec {
				if agree {
					la += math.Log(m[i])
					lb += math.Log(u[i])
				} else {
					la += math.Log(1 - m[i])
					lb += math.Log(1 - u[i])
				}
			}
			// Stable posterior from log-likelihoods.
			g[j] = 1 / (1 + math.Exp(lb-la))
		}
		// M-step.
		var sumG float64
		newM := make([]float64, nFields)
		newU := make([]float64, nFields)
		for j, pat := range patterns {
			w := g[j] * pat.count
			sumG += w
			for i, agree := range pat.vec {
				if agree {
					newM[i] += w
					newU[i] += (1 - g[j]) * pat.count
				}
			}
		}
		sumNotG := total - sumG
		delta := 0.0
		for i := range newM {
			nm := clamp(newM[i] / math.Max(sumG, probFloor))
			nu := clamp(newU[i] / math.Max(sumNotG, probFloor))
			delta += math.Abs(nm-m[i]) + math.Abs(nu-u[i])
			m[i], u[i] = nm, nu
		}
		np := clamp(sumG / total)
		delta += math.Abs(np - p)
		p = np
		if delta < cfg.Tol {
			break
		}
	}
	return &Model{M: m, U: u, P: p}, nil
}

// Weight returns the log2 agreement weight of a comparison vector:
// Σ log2(m/u) over agreeing fields plus Σ log2((1-m)/(1-u)) over
// disagreeing fields.
func (mod *Model) Weight(vec []bool) float64 {
	w := 0.0
	for i, agree := range vec {
		if agree {
			w += math.Log2(mod.M[i] / mod.U[i])
		} else {
			w += math.Log2((1 - mod.M[i]) / (1 - mod.U[i]))
		}
	}
	return w
}

// MatchThreshold returns the weight above which the posterior match
// probability exceeds 1/2: log2((1-p)/p).
func (mod *Model) MatchThreshold() float64 {
	return math.Log2((1 - mod.P) / mod.P)
}

// FieldWeight returns the full agreement weight log2(m/u) of field i,
// the discriminating power EM assigns to it.
func (mod *Model) FieldWeight(i int) float64 {
	return math.Log2(mod.M[i] / mod.U[i])
}

// Matcher runs the full FS pipeline over candidate pairs.
type Matcher struct {
	// Fields is the comparison vector specification.
	Fields []matching.Field
	// SampleSize bounds the number of candidate pairs used to fit EM
	// (the paper samples at most 30k tuples); 0 means fit on all.
	SampleSize int
	// Seed drives sampling.
	Seed int64
	// EM holds estimation knobs.
	EM EMConfig
	// ThresholdOffset shifts the classification threshold away from the
	// posterior-1/2 point (positive = more conservative).
	ThresholdOffset float64
}

// Result is the outcome of a Matcher run.
type Result struct {
	Matches *metrics.PairSet
	Model   *Model
	// Compared is the number of candidate pairs scored.
	Compared int
}

// Run computes comparison vectors for every candidate pair, fits the
// model on a sample, and classifies all candidates.
func (ma *Matcher) Run(d *record.PairInstance, candidates *metrics.PairSet) (*Result, error) {
	if len(ma.Fields) == 0 {
		return nil, fmt.Errorf("fellegi: matcher has no fields")
	}
	pairs := candidates.Pairs()
	if len(pairs) == 0 {
		return &Result{Matches: metrics.NewPairSet(), Model: &Model{Fields: ma.Fields}}, nil
	}
	// Compile the comparison vector once (exec kernel: names resolved to
	// columns), then evaluate every candidate pair positionally.
	cv, err := matching.CompileFields(d.Ctx, ma.Fields)
	if err != nil {
		return nil, err
	}
	vectors := make([][]bool, len(pairs))
	for i, p := range pairs {
		t1, ok := d.Left.ByID(p.Left)
		if !ok {
			return nil, fmt.Errorf("fellegi: missing left tuple %d", p.Left)
		}
		t2, ok := d.Right.ByID(p.Right)
		if !ok {
			return nil, fmt.Errorf("fellegi: missing right tuple %d", p.Right)
		}
		vectors[i] = cv.Eval(t1.Values, t2.Values, nil)
	}

	fit := vectors
	if ma.SampleSize > 0 && len(vectors) > ma.SampleSize {
		rnd := rand.New(rand.NewSource(ma.Seed + 1))
		idx := rnd.Perm(len(vectors))[:ma.SampleSize]
		fit = make([][]bool, len(idx))
		for i, j := range idx {
			fit[i] = vectors[j]
		}
	}
	model, err := EstimateEM(fit, len(ma.Fields), ma.EM)
	if err != nil {
		return nil, err
	}
	model.Fields = ma.Fields

	thr := model.MatchThreshold() + ma.ThresholdOffset
	out := metrics.NewPairSet()
	for i, p := range pairs {
		if model.Weight(vectors[i]) > thr {
			out.Add(p)
		}
	}
	return &Result{Matches: out, Model: model, Compared: len(pairs)}, nil
}
