package fellegi

import (
	"math"
	"testing"
)

func TestEMAllAgree(t *testing.T) {
	// Degenerate input: every vector agrees on every field. EM must not
	// blow up (probabilities stay clamped inside (0,1)).
	vectors := make([][]bool, 100)
	for i := range vectors {
		vectors[i] = []bool{true, true, true}
	}
	model, err := EstimateEM(vectors, 3, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if model.M[i] <= 0 || model.M[i] >= 1 || model.U[i] <= 0 || model.U[i] >= 1 {
			t.Fatalf("unclamped parameters: m=%v u=%v", model.M, model.U)
		}
	}
	if model.P <= 0 || model.P >= 1 {
		t.Fatalf("unclamped prevalence: %v", model.P)
	}
	if math.IsNaN(model.Weight([]bool{true, false, true})) {
		t.Fatal("NaN weight")
	}
}

func TestEMAllDisagree(t *testing.T) {
	vectors := make([][]bool, 100)
	for i := range vectors {
		vectors[i] = []bool{false, false}
	}
	model, err := EstimateEM(vectors, 2, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.P) || math.IsInf(model.MatchThreshold(), 0) {
		t.Fatalf("degenerate model: p=%v thr=%v", model.P, model.MatchThreshold())
	}
}

func TestEMSingleVector(t *testing.T) {
	model, err := EstimateEM([][]bool{{true, false}}, 2, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.Weight([]bool{true, false})) {
		t.Fatal("NaN weight on single-vector fit")
	}
}

func TestEMConfigDefaults(t *testing.T) {
	var cfg EMConfig
	cfg.defaults()
	if cfg.MaxIter != 100 || cfg.Tol != 1e-6 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.InitM != 0.9 || cfg.InitU != 0.1 || cfg.InitP != 0.1 {
		t.Fatalf("init defaults wrong: %+v", cfg)
	}
	// Out-of-range inits are replaced.
	cfg = EMConfig{InitM: 2, InitU: -1, InitP: 1}
	cfg.defaults()
	if cfg.InitM != 0.9 || cfg.InitU != 0.1 || cfg.InitP != 0.1 {
		t.Fatalf("bad inits not replaced: %+v", cfg)
	}
}

func TestClamp(t *testing.T) {
	if clamp(0) != probFloor || clamp(1) != 1-probFloor {
		t.Fatal("clamp bounds wrong")
	}
	if clamp(0.5) != 0.5 {
		t.Fatal("clamp must pass interior values")
	}
}

func TestEMTwoCleanClusters(t *testing.T) {
	// Perfectly separated clusters: EM finds prevalence ≈ cluster ratio.
	var vectors [][]bool
	for i := 0; i < 300; i++ {
		vectors = append(vectors, []bool{true, true, true})
	}
	for i := 0; i < 700; i++ {
		vectors = append(vectors, []bool{false, false, false})
	}
	model, err := EstimateEM(vectors, 3, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.P-0.3) > 0.02 {
		t.Errorf("p = %v, want ≈0.3", model.P)
	}
	thr := model.MatchThreshold()
	if !(model.Weight([]bool{true, true, true}) > thr) {
		t.Error("all-agree must classify as match")
	}
	if model.Weight([]bool{false, false, false}) > thr {
		t.Error("all-disagree must classify as non-match")
	}
}
