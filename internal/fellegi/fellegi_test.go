package fellegi

import (
	"math"
	"math/rand"
	"testing"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/gen"
	"mdmatch/internal/matching"
	"mdmatch/internal/metrics"
	"mdmatch/internal/similarity"
)

// synthVectors builds a mixture of match-like and unmatch-like binary
// vectors with known parameters.
func synthVectors(rnd *rand.Rand, n int, p float64, m, u []float64) ([][]bool, []bool) {
	vectors := make([][]bool, n)
	labels := make([]bool, n)
	for i := range vectors {
		isMatch := rnd.Float64() < p
		labels[i] = isMatch
		vec := make([]bool, len(m))
		for f := range vec {
			prob := u[f]
			if isMatch {
				prob = m[f]
			}
			vec[f] = rnd.Float64() < prob
		}
		vectors[i] = vec
	}
	return vectors, labels
}

func TestEstimateEMRecoversParameters(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	trueM := []float64{0.95, 0.9, 0.85, 0.9}
	trueU := []float64{0.05, 0.1, 0.2, 0.02}
	trueP := 0.2
	vectors, _ := synthVectors(rnd, 20000, trueP, trueM, trueU)
	model, err := EstimateEM(vectors, 4, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.P-trueP) > 0.05 {
		t.Errorf("p = %.3f, want ≈%.2f", model.P, trueP)
	}
	for i := range trueM {
		if math.Abs(model.M[i]-trueM[i]) > 0.07 {
			t.Errorf("m[%d] = %.3f, want ≈%.2f", i, model.M[i], trueM[i])
		}
		if math.Abs(model.U[i]-trueU[i]) > 0.07 {
			t.Errorf("u[%d] = %.3f, want ≈%.2f", i, model.U[i], trueU[i])
		}
	}
}

func TestEMClassificationAccuracy(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	trueM := []float64{0.9, 0.92, 0.88}
	trueU := []float64{0.05, 0.08, 0.1}
	vectors, labels := synthVectors(rnd, 10000, 0.15, trueM, trueU)
	model, err := EstimateEM(vectors, 3, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	thr := model.MatchThreshold()
	correct := 0
	for i, v := range vectors {
		if (model.Weight(v) > thr) == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(vectors))
	if acc < 0.9 {
		t.Errorf("classification accuracy = %.3f, want > 0.9", acc)
	}
}

func TestEstimateEMErrors(t *testing.T) {
	if _, err := EstimateEM(nil, 3, EMConfig{}); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := EstimateEM([][]bool{{true}}, 0, EMConfig{}); err == nil {
		t.Error("zero fields accepted")
	}
	if _, err := EstimateEM([][]bool{{true, false}}, 3, EMConfig{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestWeightMonotone(t *testing.T) {
	model := &Model{M: []float64{0.9, 0.9}, U: []float64{0.1, 0.1}, P: 0.2}
	w00 := model.Weight([]bool{false, false})
	w10 := model.Weight([]bool{true, false})
	w11 := model.Weight([]bool{true, true})
	if !(w00 < w10 && w10 < w11) {
		t.Errorf("weights not monotone: %v %v %v", w00, w10, w11)
	}
	if model.FieldWeight(0) <= 0 {
		t.Error("discriminating field must have positive weight")
	}
	// Threshold is the posterior-1/2 point: at p=0.5 it is 0.
	half := &Model{M: model.M, U: model.U, P: 0.5}
	if math.Abs(half.MatchThreshold()) > 1e-12 {
		t.Errorf("threshold at p=0.5 = %v, want 0", half.MatchThreshold())
	}
}

func TestMatcherOnGeneratedData(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	target := gen.Target(ds.Ctx)
	// Derive RCKs and use their union as the comparison vector (FSrck).
	keys, err := core.FindRCKs(ds.Ctx, gen.HolderMDs(ds.Ctx), target, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	fields := matching.FieldsFromKeys(keys)
	if len(fields) == 0 {
		t.Fatal("no fields from RCKs")
	}
	// Windowed candidates as in Exp-2.
	ks := blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
		WithEncoder(0, blocking.SoundexEncode)
	cands, err := blocking.Window(d, ks, 10)
	if err != nil {
		t.Fatal(err)
	}
	ma := &Matcher{Fields: fields, SampleSize: 5000, Seed: 1}
	res, err := ma.Run(d, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared != cands.Len() {
		t.Errorf("compared %d of %d candidates", res.Compared, cands.Len())
	}
	q := metrics.Evaluate(res.Matches, ds.Truth())
	if q.Precision() < 0.8 {
		t.Errorf("FSrck precision = %.3f, want > 0.8 (%s)", q.Precision(), q)
	}
	if q.TruePositives == 0 {
		t.Error("FSrck found no true matches at all")
	}
}

func TestMatcherEdgeCases(t *testing.T) {
	ds, err := gen.Generate(gen.DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Pair()
	ma := &Matcher{}
	if _, err := ma.Run(d, metrics.NewPairSet()); err == nil {
		t.Error("matcher without fields accepted")
	}
	ma.Fields = []matching.Field{{Pair: core.P("email", "email"), Op: similarity.Eq()}}
	res, err := ma.Run(d, metrics.NewPairSet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches.Len() != 0 {
		t.Error("no candidates must produce no matches")
	}
	// Missing tuples in candidates error out.
	if _, err := ma.Run(d, metrics.NewPairSet(metrics.Pair{Left: -5, Right: 0})); err == nil {
		t.Error("bad candidate accepted")
	}
}
