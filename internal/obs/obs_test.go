package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// famMap indexes parsed families by name.
func famMap(t *testing.T, text string) map[string]Family {
	t.Helper()
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n--- exposition ---\n%s", err, text)
	}
	out := make(map[string]Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRenderRoundTrip feeds every primitive, renders the registry, and
// re-parses the exposition with the strict conformance parser: the
// registry's own output must be exactly what a scraper expects.
func TestRenderRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Requests.").Add(3)
	v := r.CounterVec("by_code_total", "By code.", "route", "code")
	v.With("/match", "2xx").Add(5)
	v.With("/match", "5xx").Inc()
	v.With(`we"ird\ro🦉te`, "4xx").Inc() // label escaping survives the round trip
	g := r.Gauge("inflight", "In flight.")
	g.Set(2.5)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(50) // above the last bound: only the +Inf bucket
	r.CollectGauge("collected", "From a callback.", []string{"shard"}, func(emit Emit) {
		emit(7, "1")
		emit(3, "0")
	})

	fams := famMap(t, render(t, r))

	if f := fams["requests_total"]; f.Type != "counter" || f.Samples[0].Value != 3 {
		t.Fatalf("requests_total = %+v", f)
	}
	byCode := fams["by_code_total"]
	if len(byCode.Samples) != 3 {
		t.Fatalf("by_code_total has %d samples", len(byCode.Samples))
	}
	found := false
	for _, s := range byCode.Samples {
		if s.Labels["route"] == `we"ird\ro🦉te` {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %+v", byCode.Samples)
	}
	if f := fams["inflight"]; f.Type != "gauge" || f.Samples[0].Value != 2.5 {
		t.Fatalf("inflight = %+v", f)
	}
	lat := fams["latency_seconds"]
	if lat.Type != "histogram" {
		t.Fatalf("latency_seconds type = %s", lat.Type)
	}
	// Cumulative buckets: 0.01→1, 0.1→2, 1→2, +Inf→3.
	wantBuckets := map[string]float64{"0.01": 1, "0.1": 2, "1": 2, "+Inf": 3}
	for _, s := range lat.Samples {
		switch s.Name {
		case "latency_seconds_bucket":
			if got := s.Value; got != wantBuckets[s.Labels["le"]] {
				t.Fatalf("bucket le=%s = %v, want %v", s.Labels["le"], got, wantBuckets[s.Labels["le"]])
			}
		case "latency_seconds_count":
			if s.Value != 3 {
				t.Fatalf("count = %v", s.Value)
			}
		case "latency_seconds_sum":
			if math.Abs(s.Value-50.055) > 1e-9 {
				t.Fatalf("sum = %v", s.Value)
			}
		}
	}
	// Collected samples render sorted by label values.
	col := fams["collected"]
	if len(col.Samples) != 2 || col.Samples[0].Labels["shard"] != "0" || col.Samples[0].Value != 3 {
		t.Fatalf("collected = %+v", col.Samples)
	}
}

func TestHistogramCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", DefBuckets())
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) * 0.001)
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("bad metric name", func() { r.Counter("bad-name", "x") })
	mustPanic("bad label name", func() { r.CounterVec("ok_total", "x", "bad-label") })
	mustPanic("unsorted buckets", func() { r.Histogram("h", "x", []float64{1, 1}) })

	r.Counter("dup_total", "same")
	r.Counter("dup_total", "same") // identical signature: idempotent
	mustPanic("conflicting help", func() { r.Counter("dup_total", "different") })
	mustPanic("conflicting kind", func() { r.Gauge("dup_total", "same") })
	mustPanic("wrong label count", func() {
		r.CounterVec("labeled_total", "x", "a", "b").With("only-one")
	})
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "g.")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("Value = %v", g.Value())
	}
}

// TestParseTextRejectsMalformed pins the conformance parser's teeth:
// each input violates the format in one way and must be rejected.
func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 1\n",
		"second TYPE":         "# TYPE a counter\n# TYPE a counter\na 1\n",
		"second HELP":         "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n",
		"TYPE after samples":  "# HELP a x\na 1\n# TYPE a counter\n",
		"unknown type":        "# TYPE a enum\na 1\n",
		"bad metric name":     "# TYPE a counter\na 1\nbad-name 2\n",
		"bad label name":      "# TYPE a counter\na{bad-l=\"x\"} 1\n",
		"unquoted label":      "# TYPE a counter\na{l=x} 1\n",
		"unterminated labels": "# TYPE a counter\na{l=\"x\" 1\n",
		"duplicate label":     "# TYPE a counter\na{l=\"x\",l=\"y\"} 1\n",
		"bad escape":          "# TYPE a counter\na{l=\"\\t\"} 1\n",
		"trailing fields":     "# TYPE a counter\na 1 1700000000\n",
		"bad value":           "# TYPE a counter\na one\n",
		"histogram without +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram unsorted le": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n",
		"histogram missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		// Exemplars are legal ONLY on histogram _bucket lines, and must
		// be a label block followed by exactly one value.
		"exemplar on counter": "# TYPE a counter\n" +
			"a 1 # {trace_id=\"abc\"} 1\n",
		"exemplar on gauge": "# TYPE a gauge\n" +
			"a 1 # {trace_id=\"abc\"} 1\n",
		"exemplar on histogram sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1 # {trace_id=\"abc\"} 1\nh_count 1\n",
		"exemplar on histogram count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1 # {trace_id=\"abc\"} 1\n",
		"exemplar without label block": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1 # 0.5\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"exemplar without value": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1 # {trace_id=\"abc\"}\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"exemplar bad value": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1 # {trace_id=\"abc\"} fast\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"exemplar trailing fields": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1 # {trace_id=\"abc\"} 0.5 1700000000\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"exemplar unterminated labels": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1 # {trace_id=\"abc\n",
	}
	for name, input := range cases {
		if _, err := ParseText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted\n%s", name, input)
		}
	}
}

// TestConcurrentScrape hammers every primitive from many goroutines
// while scraping concurrently; run under -race this is the data-race
// proof for the whole registry.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.")
	v := r.CounterVec("v_total", "v.", "worker")
	g := r.Gauge("g", "g.")
	h := r.Histogram("h_seconds", "h.", DefBuckets())
	hv := r.HistogramVec("hv_seconds", "hv.", DefBuckets(), "worker")
	r.CollectGauge("cg", "cg.", nil, func(emit Emit) { emit(float64(c.Value())) })

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(lbl).Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-4)
				hv.With(lbl).Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := ParseText(strings.NewReader(render(t, r))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	fams := famMap(t, render(t, r))
	if got := fams["c_total"].Samples[0].Value; got != workers*iters {
		t.Fatalf("c_total = %v, want %d", got, workers*iters)
	}
	var hvCount float64
	for _, s := range fams["hv_seconds"].Samples {
		if s.Name == "hv_seconds_count" {
			hvCount += s.Value
		}
	}
	if hvCount != workers*iters {
		t.Fatalf("hv_seconds count = %v, want %d", hvCount, workers*iters)
	}
}

// TestMiddleware drives a tiny handler tree through the HTTP middleware
// and checks the instruments: per-route counters by status class, the
// latency histogram, request-id propagation, the unmatched-route
// bucket, and the structured per-request log line.
func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("fine"))
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	})
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	routeOf := func(r *http.Request) string { _, p := mux.Handler(r); return p }
	ts := httptest.NewServer(m.Middleware(logger, routeOf, mux))
	defer ts.Close()

	get := func(path, reqID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != "" {
			req.Header.Set(RequestIDHeader, reqID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get("/ok", ""); resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("no generated request id")
	}
	if resp := get("/ok", "fixed-id-1"); resp.Header.Get(RequestIDHeader) != "fixed-id-1" {
		t.Fatalf("request id not propagated: %q", resp.Header.Get(RequestIDHeader))
	}
	get("/boom", "")
	get("/nowhere", "")

	fams := famMap(t, render(t, reg))
	want := map[[2]string]float64{
		{"GET /ok", "2xx"}:   2,
		{"GET /boom", "5xx"}: 1,
		{"unmatched", "4xx"}: 1,
	}
	got := map[[2]string]float64{}
	for _, s := range fams["test_http_requests_total"].Samples {
		got[[2]string{s.Labels["route"], s.Labels["code"]}] = s.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("requests_total%v = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
	var durCount float64
	for _, s := range fams["test_http_request_duration_seconds"].Samples {
		if s.Name == "test_http_request_duration_seconds_count" {
			durCount += s.Value
		}
	}
	if durCount != 4 {
		t.Fatalf("duration count = %v, want 4", durCount)
	}
	if v := fams["test_http_in_flight_requests"].Samples[0].Value; v != 0 {
		t.Fatalf("in-flight after quiesce = %v", v)
	}
	if v := fams["test_http_response_body_bytes_total"].Samples[0].Value; v == 0 {
		t.Fatal("no response bytes counted")
	}

	// One structured line per request, with the documented fields.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d log lines, want 4", len(lines))
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry["request_id"] != "fixed-id-1" || entry["route"] != "GET /ok" ||
		entry["method"] != "GET" || entry["status"] != float64(200) {
		t.Fatalf("log entry = %v", entry)
	}
	for _, field := range []string{"duration", "bytes", "path"} {
		if _, ok := entry[field]; !ok {
			t.Fatalf("log entry missing %s: %v", field, entry)
		}
	}
}

// TestHandlerContentType pins the exposition content type.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x.")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if _, err := ParseText(rec.Body); err != nil {
		t.Fatal(err)
	}
}
