package obs

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"

	"mdmatch/internal/trace"
)

// HTTPMetrics is the serving-surface instrument set: per-route request
// counts by status class, a per-route latency histogram, an in-flight
// gauge, and body byte counters. One instance instruments one handler
// tree.
type HTTPMetrics struct {
	requests  *CounterVec
	duration  *HistogramVec
	inflight  *Gauge
	reqBytes  *Counter
	respBytes *Counter

	tracer    *trace.Tracer // nil: no tracing
	exemplars bool
}

// NewHTTPMetrics registers the HTTP metric families under the given
// namespace (e.g. "matchd" -> matchd_http_requests_total).
func NewHTTPMetrics(r *Registry, namespace string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec(namespace+"_http_requests_total",
			"HTTP requests served, by route pattern and status class.", "route", "code"),
		duration: r.HistogramVec(namespace+"_http_request_duration_seconds",
			"HTTP request latency by route pattern.", DefBuckets(), "route"),
		inflight: r.Gauge(namespace+"_http_in_flight_requests",
			"Requests currently being served."),
		reqBytes: r.Counter(namespace+"_http_request_body_bytes_total",
			"Request body bytes received (Content-Length sum)."),
		respBytes: r.Counter(namespace+"_http_response_body_bytes_total",
			"Response body bytes written."),
	}
}

// WithTracer attaches a span tracer to the middleware: every request
// gets a root span (honoring an incoming W3C traceparent header) that
// the layers below extend via trace.StartSpan, and the response echoes
// the trace's traceparent so a caller can fetch it from /debug/traces.
// When exemplars is set, the latency histogram's buckets additionally
// carry OpenMetrics `# {trace_id="…"}` exemplars. Returns m.
func (m *HTTPMetrics) WithTracer(t *trace.Tracer, exemplars bool) *HTTPMetrics {
	m.tracer = t
	m.exemplars = exemplars
	return m
}

// statusWriter captures the status code and body bytes of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// RequestIDHeader carries the request id on both request and response.
const RequestIDHeader = "X-Request-Id"

// newRequestID returns a fresh 16-hex-digit request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusClass folds a status code into its exposition label ("2xx").
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Middleware wraps next with request instrumentation: a generated (or
// propagated) X-Request-Id threaded into the request context for the
// layers below, the HTTPMetrics families labeled by the route pattern
// routeOf reports, an optional root span per request (WithTracer), and
// one structured log line per request on logger. logger may be nil
// (metrics only); routeOf reports "" for unrouted requests, exposed as
// route="unmatched" so bad paths cannot explode the label space.
func (m *HTTPMetrics) Middleware(logger *slog.Logger, routeOf func(*http.Request) string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		route := routeOf(r)
		if route == "" {
			route = "unmatched"
		}
		ctx := trace.WithRequestID(r.Context(), id)
		var sp *trace.Span
		if m.tracer != nil {
			tid, psid, _ := trace.ParseTraceparent(r.Header.Get(trace.Traceparent))
			ctx, sp = m.tracer.StartRoot(ctx, "http "+route, tid, psid, id)
			w.Header().Set(trace.Traceparent, trace.FormatTraceparent(sp.TraceID(), sp.SpanID()))
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		m.inflight.Inc()
		next.ServeHTTP(sw, r)
		m.inflight.Dec()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		m.requests.With(route, statusClass(sw.status)).Inc()
		if m.exemplars && sp != nil {
			m.duration.With(route).ObserveExemplar(elapsed.Seconds(), sp.TraceID())
		} else {
			m.duration.With(route).Observe(elapsed.Seconds())
		}
		if r.ContentLength > 0 {
			m.reqBytes.Add(r.ContentLength)
		}
		m.respBytes.Add(sw.bytes)
		if sp != nil {
			sp.Attr("method", r.Method)
			sp.AttrInt("status", int64(sw.status))
			sp.End()
		}
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
				slog.Int64("bytes", sw.bytes),
			)
		}
	})
}
