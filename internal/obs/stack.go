package obs

import (
	"strconv"
	"time"

	"mdmatch/internal/engine"
	"mdmatch/internal/store"
	"mdmatch/internal/stream"
)

// This file adapts the serving stack's per-layer observer interfaces
// (engine.Observer, stream.Observer, store.Observer) onto a Registry.
// The split of responsibilities follows the hot-path cost model:
//
//   - latencies and per-operation distributions CANNOT be reconstructed
//     later, so the layers push them into histograms as they happen
//     (one time.Now() pair plus a couple of atomic adds per operation);
//   - cumulative totals and occupancy the layers ALREADY count
//     (engine.Stats, stream.Stats/RuleStats/CacheStats, store LSN
//     positions) are pulled at scrape time through Collect* families —
//     zero additional hot-path cost.
//
// Each adapter implements an Attach{Engine,Stream,Store} method. The
// layers probe for it at construction (a structural type assertion, no
// obs import), so a single WithObserver option both wires the push
// hooks and lets the adapter register its scrape-time views.

// EngineObserver instruments an engine.Engine: match/batch latency
// histograms pushed per call, and totals (queries, candidates, index
// occupancy, interner pair-decision counters) collected at scrape.
type EngineObserver struct {
	reg        *Registry
	matchDur   *Histogram
	batchDur   *Histogram
	candidates *Histogram
}

var _ engine.Observer = (*EngineObserver)(nil)

// NewEngineObserver registers the mdmatch_engine_* families on reg.
// Pass the result to engine.WithObserver.
func NewEngineObserver(reg *Registry) *EngineObserver {
	return &EngineObserver{
		reg: reg,
		matchDur: reg.Histogram("mdmatch_engine_match_duration_seconds",
			"Latency of one match query (MatchOne or a MatchBatch worker query).", DefBuckets()),
		batchDur: reg.Histogram("mdmatch_engine_batch_duration_seconds",
			"Wall latency of one MatchBatch call (workers run in parallel inside).", DefBuckets()),
		candidates: reg.Histogram("mdmatch_engine_match_candidates",
			"Blocking-index candidates retrieved per match query.", SizeBuckets()),
	}
}

// MatchObserved implements engine.Observer.
func (o *EngineObserver) MatchObserved(seconds float64, candidates, compared, matched int) {
	o.matchDur.Observe(seconds)
	o.candidates.Observe(float64(candidates))
}

// BatchObserved implements engine.Observer.
func (o *EngineObserver) BatchObserved(seconds float64, size int) {
	o.batchDur.Observe(seconds)
}

// AttachEngine registers the scrape-time views over e's own counters.
// engine.New calls it when this observer is installed.
func (o *EngineObserver) AttachEngine(e *engine.Engine) {
	reg := o.reg
	reg.CollectCounter("mdmatch_engine_queries_total",
		"Match queries served (MatchOne calls, including MatchBatch workers).", nil,
		func(emit Emit) { emit(float64(e.Stats().Queries)) })
	reg.CollectCounter("mdmatch_engine_candidates_total",
		"Blocking-index postings retrieved across all queries.", nil,
		func(emit Emit) { emit(float64(e.Stats().Candidates)) })
	reg.CollectCounter("mdmatch_engine_compared_total",
		"Candidate pairs evaluated against the match rules.", nil,
		func(emit Emit) { emit(float64(e.Stats().Compared)) })
	reg.CollectCounter("mdmatch_engine_matched_total",
		"Candidate pairs the rules accepted.", nil,
		func(emit Emit) { emit(float64(e.Stats().Matched)) })
	reg.CollectCounter("mdmatch_engine_pair_evals_total",
		"Whole-program pair decisions by the interner.", nil,
		func(emit Emit) { total, _ := e.PairEvals(); emit(float64(total)) })
	reg.CollectCounter("mdmatch_engine_pair_resolves_total",
		"Pair decisions that fell off the warm verdict-cache path.", nil,
		func(emit Emit) { _, resolved := e.PairEvals(); emit(float64(resolved)) })
	reg.CollectGauge("mdmatch_engine_indexed_records",
		"Records currently in the match store.", nil,
		func(emit Emit) { emit(float64(e.Stats().IndexedRecords)) })
	reg.CollectGauge("mdmatch_engine_index_keys",
		"Distinct blocking keys in the index.", nil,
		func(emit Emit) { emit(float64(e.Stats().IndexKeys)) })
	reg.CollectGauge("mdmatch_engine_index_entries",
		"Postings in the blocking index.", nil,
		func(emit Emit) { emit(float64(e.Stats().IndexEntries)) })
	reg.CollectGauge("mdmatch_engine_inflight_batches",
		"MatchBatch calls currently executing.", nil,
		func(emit Emit) { emit(float64(e.InFlightBatches())) })
}

// StreamObserver instruments a stream.Enforcer: per-insert chase
// latency and frontier-size histograms pushed per call, and totals
// (records, clusters, chase counters, per-rule telemetry, verdict-cache
// traffic) collected at scrape.
type StreamObserver struct {
	reg         *Registry
	insertDur   *Histogram
	insertPairs *Histogram
	batchDur    *Histogram
}

var _ stream.Observer = (*StreamObserver)(nil)

// NewStreamObserver registers the mdmatch_stream_* families on reg.
// Pass the result to stream.WithObserver (or engine option plumbing).
func NewStreamObserver(reg *Registry) *StreamObserver {
	return &StreamObserver{
		reg: reg,
		insertDur: reg.Histogram("mdmatch_stream_insert_duration_seconds",
			"Latency of one Insert: lock wait plus the incremental chase to fixpoint.", DefBuckets()),
		insertPairs: reg.Histogram("mdmatch_stream_insert_pairs",
			"Candidate pairs the chase frontier visited per Insert.", SizeBuckets()),
		batchDur: reg.Histogram("mdmatch_stream_batch_duration_seconds",
			"Latency of one InsertBatch (a single chase over all rows).", DefBuckets()),
	}
}

// InsertObserved implements stream.Observer.
func (o *StreamObserver) InsertObserved(seconds float64, passes, applications int, pairsExamined int64) {
	o.insertDur.Observe(seconds)
	o.insertPairs.Observe(float64(pairsExamined))
}

// BatchObserved implements stream.Observer.
func (o *StreamObserver) BatchObserved(seconds float64, rows, passes, applications int) {
	o.batchDur.Observe(seconds)
}

// AttachStream registers the scrape-time views over e's own counters.
// stream.New calls it when this observer is installed.
func (o *StreamObserver) AttachStream(e *stream.Enforcer) {
	reg := o.reg
	reg.CollectGauge("mdmatch_stream_records",
		"Records in the maintained instance.", nil,
		func(emit Emit) { emit(float64(e.Stats().Records)) })
	reg.CollectGauge("mdmatch_stream_clusters",
		"Clusters in the maintained instance (including singletons).", nil,
		func(emit Emit) { emit(float64(e.Stats().Clusters)) })
	reg.CollectGauge("mdmatch_stream_chase_workers",
		"Chase worker count (1 = serial; >1 = deterministic parallel chase).", nil,
		func(emit Emit) { emit(float64(e.Workers())) })
	reg.CollectGauge("mdmatch_stream_queue_depth",
		"Insert operations in flight (queued on the insertion lock or chasing).", nil,
		func(emit Emit) { emit(float64(e.QueueDepth())) })
	reg.CollectCounter("mdmatch_stream_inserts_total",
		"Insert calls enforced.", nil,
		func(emit Emit) { emit(float64(e.Stats().Inserts)) })
	reg.CollectCounter("mdmatch_stream_batches_total",
		"InsertBatch calls enforced.", nil,
		func(emit Emit) { emit(float64(e.Stats().Batches)) })
	reg.CollectCounter("mdmatch_stream_passes_total",
		"Chase passes summed over all insertions.", nil,
		func(emit Emit) { emit(float64(e.Stats().Passes)) })
	reg.CollectCounter("mdmatch_stream_applications_total",
		"Rule applications (RHS enforcements) summed over all insertions.", nil,
		func(emit Emit) { emit(float64(e.Stats().Applications)) })
	reg.CollectCounter("mdmatch_stream_pairs_examined_total",
		"Candidate pairs examined by the chase.", nil,
		func(emit Emit) { emit(float64(e.Stats().Chase.PairsExamined)) })
	reg.CollectCounter("mdmatch_stream_rule_firings_total",
		"Rule firings (identified unequal RHS cells).", nil,
		func(emit Emit) { emit(float64(e.Stats().Chase.RuleFirings)) })
	reg.CollectCounter("mdmatch_stream_rule_examined_total",
		"Candidate pairs visited, per MD (rule = index into the compiled set).",
		[]string{"rule"},
		func(emit Emit) {
			for i, rs := range e.RuleStats() {
				emit(float64(rs.Examined), strconv.Itoa(i))
			}
		})
	reg.CollectCounter("mdmatch_stream_rule_matched_total",
		"LHS matches, per MD (rule = index into the compiled set).",
		[]string{"rule"},
		func(emit Emit) {
			for i, rs := range e.RuleStats() {
				emit(float64(rs.Matched), strconv.Itoa(i))
			}
		})
	reg.CollectCounter("mdmatch_stream_rule_fired_total",
		"Firings that identified unequal RHS cells, per MD.",
		[]string{"rule"},
		func(emit Emit) {
			for i, rs := range e.RuleStats() {
				emit(float64(rs.Fired), strconv.Itoa(i))
			}
		})
	reg.CollectCounter("mdmatch_stream_verdict_cache_lookups_total",
		"Verdict-cache lookups across all similarity conjuncts.", nil,
		func(emit Emit) { lookups, _ := e.CacheStats(); emit(float64(lookups)) })
	reg.CollectCounter("mdmatch_stream_verdict_cache_misses_total",
		"Verdict-cache misses (actual similarity-operator evaluations).", nil,
		func(emit Emit) { _, misses := e.CacheStats(); emit(float64(misses)) })
}

// StoreObserver instruments a store.Store: WAL append and snapshot
// latency histograms pushed per operation, and durability positions
// (LSNs, segment count, snapshot size/age, replay progress) collected
// at scrape.
type StoreObserver struct {
	reg          *Registry
	appendDur    *Histogram
	snapDur      *Histogram
	appends      *Counter
	appendBytes  *Counter
	snapInflight *Gauge
}

var _ store.Observer = (*StoreObserver)(nil)

// NewStoreObserver registers the mdmatch_store_* families on reg.
// Pass the result to store.WithObserver.
func NewStoreObserver(reg *Registry) *StoreObserver {
	return &StoreObserver{
		reg: reg,
		appendDur: reg.Histogram("mdmatch_store_append_duration_seconds",
			"Latency of one durable WAL append (write plus fsync when enabled).", DefBuckets()),
		snapDur: reg.Histogram("mdmatch_store_snapshot_duration_seconds",
			"Latency of one snapshot write (encode excluded; write, fsync, rename, GC).", DefBuckets()),
		appends: reg.Counter("mdmatch_store_appends_total",
			"Durable WAL appends."),
		appendBytes: reg.Counter("mdmatch_store_append_bytes_total",
			"Bytes appended to the WAL."),
		snapInflight: reg.Gauge("mdmatch_store_snapshot_inflight",
			"Snapshot writes currently streaming to disk (appends continue during them)."),
	}
}

// AppendObserved implements store.Observer.
func (o *StoreObserver) AppendObserved(seconds float64, bytes int) {
	o.appendDur.Observe(seconds)
	o.appends.Inc()
	o.appendBytes.Add(int64(bytes))
}

// SnapshotObserved implements store.Observer.
func (o *StoreObserver) SnapshotObserved(seconds float64, bytes int) {
	o.snapDur.Observe(seconds)
}

// SnapshotInflight implements the store's optional snapshot tracker
// extension: +1 when a snapshot starts streaming to disk, -1 when it
// finishes (success or failure). A value stuck at 1 with a growing
// snapshot age points at a wedged snapshot writer.
func (o *StoreObserver) SnapshotInflight(delta int) {
	o.snapInflight.Add(float64(delta))
}

// AttachStore registers the scrape-time views over s's positions.
// store.Open calls it when this observer is installed.
func (o *StoreObserver) AttachStore(s *store.Store) {
	reg := o.reg
	reg.CollectGauge("mdmatch_store_lsn",
		"Last assigned log sequence number.", nil,
		func(emit Emit) { emit(float64(s.LSN())) })
	reg.CollectGauge("mdmatch_store_snapshot_lsn",
		"LSN of the newest snapshot (0 = none).", nil,
		func(emit Emit) { emit(float64(s.SnapshotLSN())) })
	reg.CollectGauge("mdmatch_store_wal_bytes_since_snapshot",
		"WAL bytes appended since the newest snapshot (recovery debt).", nil,
		func(emit Emit) { emit(float64(s.BytesSinceSnapshot())) })
	reg.CollectGauge("mdmatch_store_segments",
		"Live WAL segments (including the active one).", nil,
		func(emit Emit) { emit(float64(s.Segments())) })
	reg.CollectGauge("mdmatch_store_snapshot_size_bytes",
		"Encoded size of the newest snapshot.", nil,
		func(emit Emit) { _, size := s.LastSnapshot(); emit(float64(size)) })
	reg.CollectGauge("mdmatch_store_snapshot_age_seconds",
		"Seconds since the newest snapshot was written (0 = none yet).", nil,
		func(emit Emit) {
			when, _ := s.LastSnapshot()
			if when.IsZero() {
				emit(0)
				return
			}
			emit(time.Since(when).Seconds())
		})
	reg.CollectGauge("mdmatch_store_replay_applied",
		"LSN of the last WAL record delivered by recovery replay.", nil,
		func(emit Emit) { applied, _ := s.ReplayProgress(); emit(float64(applied)) })
	reg.CollectGauge("mdmatch_store_replay_target",
		"Log head at recovery replay start (0 = no replay ran).", nil,
		func(emit Emit) { _, target := s.ReplayProgress(); emit(float64(target)) })
}
