package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small, strict parser for the Prometheus text
// exposition format (version 0.0.4) — the in-repo conformance check
// that the registry's own output, and matchd's /metrics endpoint,
// actually is what a Prometheus scraper expects. It validates:
//
//   - metric and label name charsets;
//   - HELP/TYPE comment structure (at most one of each per family, TYPE
//     before the family's first sample, known type keywords);
//   - sample syntax including quoted-label escape sequences;
//   - histogram shape: every histogram has _bucket/_sum/_count series,
//     bucket counts are cumulative (non-decreasing in le order), and
//     the terminal le="+Inf" bucket exists and equals _count;
//   - OpenMetrics exemplars (`# {trace_id="…"} value` after a sample):
//     syntax, and placement — exemplars are legal ONLY on histogram
//     _bucket lines; anywhere else is an error.
//
// It is intentionally stricter than real scrapers (which tolerate
// missing HELP, interleaved families, etc.): the registry always emits
// the strict form, so any drift is a bug.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample's full name (for histograms, including the
	// _bucket/_sum/_count suffix).
	Name string
	// Labels holds the label pairs, including a histogram's le.
	Labels map[string]string
	// Value is the sample value.
	Value float64
	// Exemplar is the OpenMetrics exemplar attached to the line, if
	// any. Legal only on histogram _bucket samples.
	Exemplar *Exemplar
}

// Exemplar is one parsed OpenMetrics exemplar: the labels inside the
// `# {…}` block (trace_id for this registry) and the exemplar value.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	// Name is the family name (histogram samples drop their suffix).
	Name string
	// Help and Type are the comment lines' payloads.
	Help, Type string
	// Samples are the family's series in exposition order.
	Samples []Sample
}

// ParseText parses and validates a text exposition. It returns the
// families in exposition order, or an error describing the first
// violation.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		fams  []Family
		byFam = map[string]int{}
		line  int
	)
	famOf := func(sampleName string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sampleName, suffix)
			if !ok {
				continue
			}
			if i, ok := byFam[base]; ok && fams[i].Type == typeHistogram {
				return base
			}
		}
		return sampleName
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kind, name, payload, err := parseComment(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			i, ok := byFam[name]
			if !ok {
				byFam[name] = len(fams)
				i = len(fams)
				fams = append(fams, Family{Name: name})
			}
			f := &fams[i]
			switch kind {
			case "HELP":
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: second HELP for %s", line, name)
				}
				f.Help = payload
			case "TYPE":
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: second TYPE for %s", line, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", line, name)
				}
				switch payload {
				case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", line, payload, name)
				}
				f.Type = payload
			}
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		fam := famOf(s.Name)
		i, ok := byFam[fam]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding TYPE", line, s.Name)
		}
		if s.Exemplar != nil && (fams[i].Type != typeHistogram || !strings.HasSuffix(s.Name, "_bucket")) {
			return nil, fmt.Errorf("line %d: sample %s: exemplar on a non-histogram-bucket line", line, s.Name)
		}
		fams[i].Samples = append(fams[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "" {
			return nil, fmt.Errorf("family %s has no TYPE", fams[i].Name)
		}
		if fams[i].Type == typeHistogram {
			if err := validateHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// parseComment splits a "# HELP name payload" / "# TYPE name type"
// line; free-form comments return kind "".
func parseComment(text string) (kind, name, payload string, err error) {
	rest, ok := strings.CutPrefix(text, "# ")
	if !ok {
		return "", "", "", nil
	}
	kind, rest, ok = strings.Cut(rest, " ")
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", nil
	}
	if !ok {
		return "", "", "", fmt.Errorf("malformed %s comment", kind)
	}
	name, payload, ok = strings.Cut(rest, " ")
	if !ok && kind == "TYPE" {
		return "", "", "", fmt.Errorf("TYPE without a type keyword")
	}
	if !validName(name, false) {
		return "", "", "", fmt.Errorf("%s names invalid metric %q", kind, name)
	}
	return kind, name, payload, nil
}

// parseSample parses one sample line.
func parseSample(text string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(text, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	}
	s.Name = text[:i]
	if !validName(s.Name, false) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := text[i:]
	if rest[0] == '{' {
		body, tail, err := cutLabelBlock(rest[1:])
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		if err := parseLabels(body, s.Labels); err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		rest = tail
	}
	// An OpenMetrics exemplar suffix (` # {labels} value`) may follow
	// the sample value; split it off before the trailing-field check.
	// The label block was already consumed above, so a '#' here can
	// only start an exemplar.
	var exText string
	if j := strings.IndexByte(rest, '#'); j >= 0 {
		exText = strings.TrimSpace(rest[j+1:])
		rest = rest[:j]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; the registry
	// never emits one, and extra fields are rejected here.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("sample %s: unexpected trailing fields in %q", s.Name, rest)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, rest)
	}
	s.Value = v
	if exText != "" {
		ex, err := parseExemplar(exText)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses the body of an exemplar suffix (after the '#'):
// a label block followed by the exemplar value. The registry never
// emits the optional OpenMetrics timestamp, so trailing fields are
// rejected like they are on sample lines.
func parseExemplar(text string) (*Exemplar, error) {
	if len(text) == 0 || text[0] != '{' {
		return nil, fmt.Errorf("exemplar without a label block in %q", text)
	}
	body, tail, err := cutLabelBlock(text[1:])
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	ex := &Exemplar{Labels: map[string]string{}}
	if err := parseLabels(body, ex.Labels); err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	tail = strings.TrimSpace(tail)
	if tail == "" {
		return nil, fmt.Errorf("exemplar without a value")
	}
	if strings.ContainsAny(tail, " \t") {
		return nil, fmt.Errorf("exemplar: unexpected trailing fields in %q", tail)
	}
	v, err := parseValue(tail)
	if err != nil {
		return nil, fmt.Errorf("exemplar: bad value %q", tail)
	}
	ex.Value = v
	return ex, nil
}

// cutLabelBlock splits "...}" into the label body and the tail after
// the closing brace, honoring escapes inside quoted values.
func cutLabelBlock(text string) (body, tail string, err error) {
	inQuote := false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return text[:i], text[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated label block")
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validName(name, true) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s: unquoted value", name)
		}
		val, n, err := unquoteLabel(rest[1:])
		if err != nil {
			return fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val
		body = rest[1+n:]
		body = strings.TrimPrefix(strings.TrimSpace(body), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// unquoteLabel decodes a label value up to its closing quote, returning
// the decoded value and the bytes consumed including the quote.
func unquoteLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram checks the histogram shape of one family: per
// label-set, cumulative non-decreasing buckets in ascending le order, a
// terminal le="+Inf" bucket, and _sum/_count series with
// count == +Inf bucket.
func validateHistogram(f *Family) error {
	type series struct {
		bounds []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	group := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('\x00')
			b.WriteString(labels[k])
			b.WriteByte('\x00')
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		if group[k] == nil {
			group[k] = &series{}
		}
		return group[k]
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, le)
			}
			g := get(s.Labels)
			g.bounds = append(g.bounds, bound)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_sum":
			v := s.Value
			get(s.Labels).sum = &v
		case f.Name + "_count":
			v := s.Value
			get(s.Labels).count = &v
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", f.Name, s.Name)
		}
	}
	for _, g := range group {
		if len(g.bounds) == 0 {
			return fmt.Errorf("histogram %s: series without buckets", f.Name)
		}
		for i := 1; i < len(g.bounds); i++ {
			if g.bounds[i] <= g.bounds[i-1] {
				return fmt.Errorf("histogram %s: le bounds not increasing", f.Name)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", f.Name)
			}
		}
		last := len(g.bounds) - 1
		if !math.IsInf(g.bounds[last], 1) {
			return fmt.Errorf("histogram %s: missing terminal le=\"+Inf\" bucket", f.Name)
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("histogram %s: missing _sum or _count", f.Name)
		}
		if *g.count != g.counts[last] {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", f.Name, *g.count, g.counts[last])
		}
	}
	return nil
}
