package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// processStart pins the process start for
// mdmatch_process_start_time_seconds: package initialization runs once,
// early, which is as close to exec as pure Go can observe.
var processStart = time.Now()

// buildInfo reads the go version and VCS revision baked into the
// binary. Both fall back to "unknown" (a test binary has no VCS
// stamp).
func buildInfo() (goVersion, revision string) {
	goVersion, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
		}
	}
	return
}

// AttachRuntime registers process-level memory and scheduler gauges.
// The 1M-record scale contract is a bounded memory ceiling, so the
// serving process must expose what it actually holds: live heap,
// total heap reserved from the OS (the RSS floor), the high-water
// mark, and GC/goroutine occupancy. runtime.ReadMemStats is a
// stop-the-world read (~tens of microseconds), so all families share
// one snapshot per scrape, refreshed at most once per second.
func AttachRuntime(reg *Registry) {
	var (
		mu   sync.Mutex // collect callbacks of different families can race
		last time.Time
		ms   runtime.MemStats
	)
	read := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); now.Sub(last) >= time.Second || last.IsZero() {
			runtime.ReadMemStats(&ms)
			last = now
		}
		return ms
	}
	reg.CollectGauge("mdmatch_runtime_heap_alloc_bytes",
		"Live heap bytes (allocated and not yet freed).", nil,
		func(emit Emit) { emit(float64(read().HeapAlloc)) })
	reg.CollectGauge("mdmatch_runtime_heap_sys_bytes",
		"Heap bytes reserved from the OS (lower bound on RSS).", nil,
		func(emit Emit) { emit(float64(read().HeapSys)) })
	reg.CollectGauge("mdmatch_runtime_sys_bytes",
		"Total bytes of memory obtained from the OS by the Go runtime.", nil,
		func(emit Emit) { emit(float64(read().Sys)) })
	reg.CollectCounter("mdmatch_runtime_gc_total",
		"Completed GC cycles.", nil,
		func(emit Emit) { emit(float64(read().NumGC)) })
	reg.CollectGauge("mdmatch_runtime_goroutines",
		"Live goroutines.", nil,
		func(emit Emit) { emit(float64(runtime.NumGoroutine())) })
	goVersion, revision := buildInfo()
	reg.CollectGauge("mdmatch_build_info",
		"Build metadata as labels; the value is always 1.",
		[]string{"go_version", "revision"},
		func(emit Emit) { emit(1, goVersion, revision) })
	reg.CollectGauge("mdmatch_process_start_time_seconds",
		"Unix time the process started, in seconds.", nil,
		func(emit Emit) { emit(float64(processStart.UnixNano()) / 1e9) })
}
