// Package obs is the zero-dependency observability layer: an
// atomic-counter/gauge/histogram registry that renders the Prometheus
// text exposition format (format version 0.0.4), HTTP middleware that
// measures and logs every request, and adapters that wire the serving
// stack's hook interfaces (engine.Observer, stream.Observer,
// store.Observer) into registry metrics.
//
// The package deliberately imports nothing outside the standard
// library: go.mod stays dependency-free, and every layer below it
// (engine, stream, values, store) sees only its own small Observer
// interface — a nil observer is a no-op, so the hot paths pay nothing
// when telemetry is disabled (BENCH_obs.json pins the bound).
//
// Metric primitives follow the Prometheus data model:
//
//   - Counter: a monotonically increasing integer (atomic).
//   - Gauge: a float that can go up and down (atomic float64 bits).
//   - Histogram: fixed buckets of atomic counts plus a running sum,
//     rendered cumulatively with the mandatory le="+Inf" bucket.
//   - Vec variants add a fixed label-name set with one child per
//     label-value combination.
//   - CollectCounter/CollectGauge register scrape-time families: the
//     callback emits samples from state the layers already maintain
//     (engine.Stats, stream.Stats, store counters), so cumulative
//     totals cost the hot path nothing at all.
//
// All primitives are safe for concurrent use, including concurrently
// with rendering.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Emit delivers one scrape-time sample; labelValues must be parallel to
// the label names the family was registered with.
type Emit func(value float64, labelValues ...string)

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; construct with
// NewRegistry. Registration is idempotent for an identical
// (name, type, help, labels, buckets) signature and panics on a
// conflicting re-registration — metric names are code, and a silent
// collision would corrupt the scrape.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one metric family: a name, type and help string plus either
// static children (one per label-value combination) or a scrape-time
// collect callback.
type family struct {
	name, help, kind string
	labels           []string
	buckets          []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
	order    []string // child keys, sorted lazily at render

	collect func(Emit) // non-nil: samples are produced at scrape time
}

// child is one concrete time series of a family.
type child struct {
	labelVals []string

	bits atomic.Uint64 // counter: integer count; gauge: float64 bits

	counts  []atomic.Uint64 // histogram: per-bucket (non-cumulative) counts; last is +Inf
	sumBits atomic.Uint64   // histogram: float64 bits of the running sum

	// exem holds the latest exemplar per bucket (histograms only;
	// parallel to counts). Entries stay nil until ObserveExemplar runs,
	// so plain Observe and rendering without exemplars cost nothing
	// beyond a nil check per bucket line.
	exem []atomic.Pointer[exemplar]
}

// exemplar links one observation to the trace that produced it,
// rendered as the OpenMetrics `# {trace_id="…"} value` bucket suffix.
type exemplar struct {
	traceID string
	value   float64
}

// validName matches the Prometheus metric/label name charset.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(!label && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help, kind string, labels []string, buckets []float64, collect func(Emit)) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l, true) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	if kind == typeHistogram {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: metric %s: buckets not strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		same := f.kind == kind && f.help == help && f.collect == nil && collect == nil &&
			equalStrings(f.labels, labels) && equalFloats(f.buckets, buckets)
		if !same {
			panic(fmt.Sprintf("obs: metric %s already registered with a different signature", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: append([]float64(nil), buckets...),
		children: make(map[string]*child), collect: collect,
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor returns (creating on first use) the series for one
// label-value combination.
func (f *family) childFor(labelVals []string) *child {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{labelVals: append([]string(nil), labelVals...)}
	if f.kind == typeHistogram {
		c.counts = make([]atomic.Uint64, len(f.buckets)+1)
		c.exem = make([]atomic.Pointer[exemplar], len(f.buckets)+1)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// --- Counter ---

// Counter is a monotonically increasing count.
type Counter struct{ c *child }

// Counter registers (or returns) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil, nil)
	return &Counter{c: f.childFor(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labelNames, nil, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{c: v.f.childFor(labelValues)}
}

// Inc adds one.
func (c *Counter) Inc() { c.c.bits.Add(1) }

// Add adds n (n is a count; negative deltas are a programming error and
// are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.c.bits.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.c.bits.Load() }

// --- Gauge ---

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Gauge registers (or returns) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil, nil)
	return &Gauge{c: f.childFor(nil)}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// --- Histogram ---

// Histogram counts observations into fixed buckets and accumulates
// their sum; rendering adds the implicit le="+Inf" bucket and the
// _sum/_count series.
type Histogram struct {
	f *family
	c *child
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil, buckets, nil)
	return &Histogram{f: f, c: f.childFor(nil)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, labelNames, buckets, nil)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, c: v.f.childFor(labelValues)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.c.counts[i].Add(1)
	for {
		old := h.c.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.c.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one observation and attaches an exemplar to
// the bucket it lands in: the latest trace id to hit each latency
// bucket is rendered as the OpenMetrics `# {trace_id="…"} value`
// suffix, which is how an operator curls a trace id out of a bucket.
// An empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.f.buckets, v)
	h.c.exem[i].Store(&exemplar{traceID: traceID, value: v})
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.c.counts {
		n += h.c.counts[i].Load()
	}
	return n
}

// DefBuckets returns the default latency buckets (seconds), spanning
// the stack's range from sub-100µs interned matches to multi-second
// batch chases.
func DefBuckets() []float64 {
	return []float64{
		25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10,
	}
}

// SizeBuckets returns exponential count buckets (1..~262k) for record
// and candidate counts.
func SizeBuckets() []float64 {
	b := make([]float64, 0, 10)
	for v := 1; v <= 1<<18; v <<= 2 {
		b = append(b, float64(v))
	}
	return b
}

// --- scrape-time collectors ---

// CollectCounter registers a counter family whose samples are produced
// at scrape time by fn: zero hot-path cost for totals the layers
// already count. fn must emit monotonically non-decreasing values.
func (r *Registry) CollectCounter(name, help string, labelNames []string, fn func(Emit)) {
	r.register(name, help, typeCounter, labelNames, nil, fn)
}

// CollectGauge registers a gauge family whose samples are produced at
// scrape time by fn.
func (r *Registry) CollectGauge(name, help string, labelNames []string, fn func(Emit)) {
	r.register(name, help, typeGauge, labelNames, nil, fn)
}

// --- rendering ---

// WritePrometheus renders every family in the text exposition format,
// families and series in deterministic (sorted) order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()
	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the rendered registry (the
// GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The connection is gone; nothing useful to do.
			return
		}
	})
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.collect != nil {
		f.renderCollected(b)
		return
	}
	f.mu.Lock()
	sort.Strings(f.order)
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for _, c := range children {
		switch f.kind {
		case typeCounter:
			writeSample(b, f.name, f.labels, c.labelVals, "", "", strconv.FormatUint(c.bits.Load(), 10))
		case typeGauge:
			writeSample(b, f.name, f.labels, c.labelVals, "", "", formatFloat(math.Float64frombits(c.bits.Load())))
		case typeHistogram:
			var cum uint64
			for i, bound := range f.buckets {
				cum += c.counts[i].Load()
				writeSampleEx(b, f.name+"_bucket", f.labels, c.labelVals, "le", formatFloat(bound), strconv.FormatUint(cum, 10), exemplarSuffix(c, i))
			}
			cum += c.counts[len(f.buckets)].Load()
			writeSampleEx(b, f.name+"_bucket", f.labels, c.labelVals, "le", "+Inf", strconv.FormatUint(cum, 10), exemplarSuffix(c, len(f.buckets)))
			writeSample(b, f.name+"_sum", f.labels, c.labelVals, "", "", formatFloat(math.Float64frombits(c.sumBits.Load())))
			writeSample(b, f.name+"_count", f.labels, c.labelVals, "", "", strconv.FormatUint(cum, 10))
		}
	}
}

// renderCollected gathers the scrape-time samples, sorts them by label
// values for a deterministic exposition, and writes them.
func (f *family) renderCollected(b *strings.Builder) {
	type sample struct {
		vals  []string
		value float64
	}
	var samples []sample
	f.collect(func(value float64, labelValues ...string) {
		if len(labelValues) != len(f.labels) {
			panic(fmt.Sprintf("obs: collect %s: expected %d label values, got %d", f.name, len(f.labels), len(labelValues)))
		}
		samples = append(samples, sample{vals: append([]string(nil), labelValues...), value: value})
	})
	sort.Slice(samples, func(i, j int) bool {
		for k := range samples[i].vals {
			if samples[i].vals[k] != samples[j].vals[k] {
				return samples[i].vals[k] < samples[j].vals[k]
			}
		}
		return false
	})
	for _, s := range samples {
		writeSample(b, f.name, f.labels, s.vals, "", "", formatFloat(s.value))
	}
}

// exemplarSuffix renders the OpenMetrics exemplar suffix for bucket i
// of c, or "" when the bucket has never seen an exemplar.
func exemplarSuffix(c *child, i int) string {
	e := c.exem[i].Load()
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + escapeLabel(e.traceID) + `"} ` + formatFloat(e.value)
}

// writeSample writes one exposition line; extraName/extraVal append one
// more label (the histogram le).
func writeSample(b *strings.Builder, name string, labels, vals []string, extraName, extraVal, value string) {
	writeSampleEx(b, name, labels, vals, extraName, extraVal, value, "")
}

// writeSampleEx is writeSample plus an optional exemplar suffix
// appended after the value.
func writeSampleEx(b *strings.Builder, name string, labels, vals []string, extraName, extraVal, value, suffix string) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(vals[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteString(suffix)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
