package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdmatch/internal/trace"
)

// TestExemplarRoundTrip renders a histogram carrying exemplars and
// re-parses the exposition: the exemplar must land on the bucket its
// observation fell into, survive the strict parser, and leave every
// un-exemplared line untouched.
func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)                      // plain observation, no exemplar
	h.ObserveExemplar(0.05, "trace-slow") // lands in le="0.1"
	h.ObserveExemplar(50, "trace-inf")    // above the last bound: +Inf
	h.ObserveExemplar(0.02, "")           // empty trace id: plain observe

	text := render(t, r)
	if !strings.Contains(text, `lat_seconds_bucket{le="0.1"} 3 # {trace_id="trace-slow"} 0.05`) {
		t.Fatalf("exemplar wire format missing:\n%s", text)
	}
	fams := famMap(t, text)
	lat := fams["lat_seconds"]
	byLe := map[string]*Exemplar{}
	for _, s := range lat.Samples {
		if s.Name == "lat_seconds_bucket" {
			byLe[s.Labels["le"]] = s.Exemplar
		} else if s.Exemplar != nil {
			t.Fatalf("exemplar leaked onto %s", s.Name)
		}
	}
	if byLe["0.01"] != nil || byLe["1"] != nil {
		t.Fatalf("exemplar on un-exemplared bucket: %+v", byLe)
	}
	ex := byLe["0.1"]
	if ex == nil || ex.Labels["trace_id"] != "trace-slow" || ex.Value != 0.05 {
		t.Fatalf("le=0.1 exemplar = %+v", ex)
	}
	if ex := byLe["+Inf"]; ex == nil || ex.Labels["trace_id"] != "trace-inf" || ex.Value != 50 {
		t.Fatalf("+Inf exemplar = %+v", ex)
	}

	// The newest exemplar wins its bucket.
	h.ObserveExemplar(0.04, "trace-newer")
	fams = famMap(t, render(t, r))
	for _, s := range fams["lat_seconds"].Samples {
		if s.Labels["le"] == "0.1" && s.Exemplar.Labels["trace_id"] != "trace-newer" {
			t.Fatalf("exemplar not replaced: %+v", s.Exemplar)
		}
	}
}

// TestMiddlewareTracing drives the middleware with a tracer attached:
// the response carries a traceparent, an incoming traceparent is
// honored, the request context carries the request id and a live span,
// and with exemplars enabled the latency histogram exposes the trace
// id — the "curl a trace id out of a latency bucket" path end to end.
func TestMiddlewareTracing(t *testing.T) {
	reg := NewRegistry()
	tr := trace.New(trace.Options{Slow: time.Nanosecond, Capacity: 16, Stripes: 1})
	m := NewHTTPMetrics(reg, "test").WithTracer(tr, true)
	var sawRequestID string
	var sawSpan bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		sawRequestID = trace.RequestID(r.Context())
		_, sp := trace.StartSpan(r.Context(), "inner")
		sawSpan = sp != nil
		sp.End()
		w.Write([]byte("fine"))
	})
	routeOf := func(r *http.Request) string { _, p := mux.Handler(r); return p }
	ts := httptest.NewServer(m.Middleware(nil, routeOf, mux))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/ok", nil)
	req.Header.Set(RequestIDHeader, "rid-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get(trace.Traceparent))
	if !ok {
		t.Fatalf("response traceparent %q", resp.Header.Get(trace.Traceparent))
	}
	if sawRequestID != "rid-1" || !sawSpan {
		t.Fatalf("handler context: request_id=%q span=%v", sawRequestID, sawSpan)
	}

	// The trace is retained, carries the request id, and holds the
	// handler's child span.
	tc, found := tr.Get(tid)
	if !found || tc.RequestID != "rid-1" {
		t.Fatalf("trace %s = %+v", tid, tc)
	}
	if len(tc.Root.Children) != 1 || tc.Root.Children[0].Name != "inner" {
		t.Fatalf("span tree = %+v", tc.Root)
	}

	// An upstream traceparent is honored end to end.
	up := "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab-bbbbbbbbbbbbbbbb-01"
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/ok", nil)
	req2.Header.Set(trace.Traceparent, up)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if tid2, _, _ := trace.ParseTraceparent(resp2.Header.Get(trace.Traceparent)); tid2 != "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab" {
		t.Fatalf("upstream trace id not honored: %q", tid2)
	}

	// The scrape carries the exemplar, and the strict parser accepts it.
	fams := famMap(t, render(t, reg))
	var sawExemplar bool
	for _, s := range fams["test_http_request_duration_seconds"].Samples {
		if s.Exemplar != nil {
			if s.Exemplar.Labels["trace_id"] == "" {
				t.Fatalf("exemplar without trace_id: %+v", s.Exemplar)
			}
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Fatal("no exemplar on the latency histogram")
	}
}
