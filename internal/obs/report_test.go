package obs

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mdmatch/internal/blocking"
	"mdmatch/internal/core"
	"mdmatch/internal/engine"
	"mdmatch/internal/gen"
	"mdmatch/internal/schema"
	"mdmatch/internal/stream"
	"mdmatch/internal/trace"
)

// obsBenchReport is the schema of BENCH_obs.json, the repo's running
// record of instrumentation overhead (written by `make bench-obs`).
// The "plain" side of each path runs with a nil observer, which is the
// hooks-disabled configuration: no hook code executes at all, so the
// nil-hook overhead is structurally zero and the measured delta is the
// full cost of enabling metrics.
//
// Methodology: plain and instrumented passes are interleaved (A/B per
// round) and each side keeps its best round, so clock drift and other
// tenants on the machine hit both sides alike. Match passes are
// calibrated to a minimum wall time because a single MatchBatch is too
// short to time reliably.
type obsBenchReport struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	MaxProcs    int         `json:"gomaxprocs"`
	Rounds      int         `json:"rounds_per_variant"`
	GatePct     float64     `json:"gate_overhead_pct"`
	MatchBatch  pathMeasure `json:"match_batch"`
	Insert      pathMeasure `json:"stream_insert"`
	// Traced variants: the same workloads with an active root span on
	// the request context (the production tracer configuration, default
	// retention), against the no-root-span baseline where every
	// trace.StartSpan call is one context lookup. "plain" here is the
	// untraced side, "instrumented" the traced one.
	MatchBatchTraced pathMeasure `json:"match_batch_traced"`
	InsertTraced     pathMeasure `json:"stream_insert_traced"`
}

type pathMeasure struct {
	CorpusK             int     `json:"corpus_k"`
	Ops                 int     `json:"ops"`
	PlainSeconds        float64 `json:"plain_seconds"`
	InstrumentedSeconds float64 `json:"instrumented_seconds"`
	PlainNsPerOp        float64 `json:"plain_ns_per_op"`
	HookNsPerOp         float64 `json:"hook_ns_per_op"`
	OverheadPct         float64 `json:"overhead_pct"`
}

func newPathMeasure(k, ops int, plain, instr float64) pathMeasure {
	m := pathMeasure{
		CorpusK: k, Ops: ops,
		PlainSeconds:        plain,
		InstrumentedSeconds: instr,
		PlainNsPerOp:        plain / float64(ops) * 1e9,
		HookNsPerOp:         (instr - plain) / float64(ops) * 1e9,
	}
	if plain > 0 {
		m.OverheadPct = (instr - plain) / plain * 100
	}
	return m
}

// obsBenchPlan compiles the same plan matchd serves: RCKs discovered on
// the card-holder context, pruned, with the three paper blocking keys.
func obsBenchPlan(t *testing.T, ds *gen.Dataset) *engine.Plan {
	t.Helper()
	target := gen.Target(ds.Ctx)
	sigma := gen.HolderMDs(ds.Ctx)
	keys, err := core.FindRCKs(ds.Ctx, sigma, target, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys = core.PruneSubsumed(keys)
	if len(keys) > 5 {
		keys = keys[:5]
	}
	specs := []blocking.KeySpec{
		blocking.NewKeySpec(core.P("ln", "ln"), core.P("zip", "zip")).
			WithEncoder(0, blocking.SoundexEncode),
		blocking.NewKeySpec(core.P("tel", "phn")),
		blocking.NewKeySpec(core.P("fn", "fn"), core.P("dob", "dob")).
			WithEncoder(0, blocking.SoundexEncode),
	}
	plan, err := engine.Compile(ds.Ctx, keys, specs)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// measureMatch times MatchBatch over the billing stream with and
// without the obs stack. Both engines are built and warmed up front;
// rounds alternate plain/instrumented so ambient noise cancels, and
// each round loops the batch until the pass is long enough to time.
func measureMatch(t *testing.T, plan *engine.Plan, ds *gen.Dataset, rounds int) (plain, instr float64, ops int) {
	t.Helper()
	mk := func(opts ...engine.Option) *engine.Engine {
		opts = append([]engine.Option{engine.WithWorkers(runtime.GOMAXPROCS(0))}, opts...)
		eng, err := engine.New(plan, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(ds.Credit); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	engines := []*engine.Engine{
		mk(),
		mk(engine.WithObserver(NewEngineObserver(NewRegistry()))),
	}
	batch := make([][]string, len(ds.Billing.Tuples))
	for i, tup := range ds.Billing.Tuples {
		batch[i] = tup.Values
	}
	pass := func(eng *engine.Engine, iters int) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := eng.MatchBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start).Seconds() / float64(iters)
	}
	// Warm both sides, then calibrate the per-pass iteration count so
	// one pass takes >= ~0.5s regardless of corpus scale.
	est := pass(engines[0], 1)
	_ = pass(engines[1], 1)
	iters := int(0.5/est) + 1
	best := []float64{0, 0}
	for r := 0; r < rounds; r++ {
		for side, eng := range engines {
			got := pass(eng, iters)
			if r == 0 || got < best[side] {
				best[side] = got
			}
		}
	}
	return best[0], best[1], len(batch)
}

// measureInsert times the incremental chase over the credit stream.
// The enforcer is stateful, so each pass rebuilds it fresh (outside the
// timer) and replays the identical insert sequence; plain and
// instrumented passes alternate. The observer side constructs a fresh
// registry per pass because attaching an observer registers
// scrape-time collectors bound to that enforcer.
func measureInsert(t *testing.T, ds *gen.Dataset, rounds int) (plain, instr float64, ops int) {
	t.Helper()
	dedupCtx, err := schema.NewPair(ds.Credit.Rel, ds.Credit.Rel)
	if err != nil {
		t.Fatal(err)
	}
	sides := []func() []stream.Option{
		func() []stream.Option { return nil },
		func() []stream.Option {
			return []stream.Option{stream.WithObserver(NewStreamObserver(NewRegistry()))}
		},
	}
	pass := func(extra []stream.Option) float64 {
		opts := append([]stream.Option{stream.ClusterRules(gen.DedupClusterRules()...)}, extra...)
		enf, err := stream.New(dedupCtx, gen.DedupMDs(dedupCtx), opts...)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for _, tup := range ds.Credit.Tuples {
			if _, err := enf.Insert(tup.ID, tup.Values); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start).Seconds()
	}
	best := []float64{0, 0}
	for r := 0; r < rounds; r++ {
		for side, extra := range sides {
			got := pass(extra())
			if r == 0 || got < best[side] {
				best[side] = got
			}
		}
	}
	return best[0], best[1], len(ds.Credit.Tuples)
}

// benchTracer builds a tracer with the daemon's default retention (50ms
// slow threshold, 1-in-1000 sample): the realistic per-request span
// cost, not a retain-everything worst case.
func benchTracer() *trace.Tracer {
	return trace.New(trace.Options{Slow: 50 * time.Millisecond, SampleN: 1000})
}

// measureTracedMatch times MatchBatch with and without an active root
// span on the context — the tracing analogue of measureMatch. One root
// span per batch call, as the HTTP middleware produces; the per-query
// inner loop stays span-free, so this measures the end-to-end serving
// delta of turning tracing on.
func measureTracedMatch(t *testing.T, plan *engine.Plan, ds *gen.Dataset, rounds int) (plain, traced float64, ops int) {
	t.Helper()
	eng, err := engine.New(plan, engine.WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(ds.Credit); err != nil {
		t.Fatal(err)
	}
	batch := make([][]string, len(ds.Billing.Tuples))
	for i, tup := range ds.Billing.Tuples {
		batch[i] = tup.Values
	}
	tr := benchTracer()
	pass := func(withSpan bool, iters int) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			ctx := context.Background()
			var sp *trace.Span
			if withSpan {
				ctx, sp = tr.StartRoot(ctx, "bench match", "", "", "")
			}
			if _, err := eng.MatchBatchCtx(ctx, batch); err != nil {
				t.Fatal(err)
			}
			sp.End()
		}
		return time.Since(start).Seconds() / float64(iters)
	}
	est := pass(false, 1)
	_ = pass(true, 1)
	iters := int(0.5/est) + 1
	best := []float64{0, 0}
	for r := 0; r < rounds; r++ {
		for side, withSpan := range []bool{false, true} {
			got := pass(withSpan, iters)
			if r == 0 || got < best[side] {
				best[side] = got
			}
		}
	}
	return best[0], best[1], len(batch)
}

// measureTracedInsert times the incremental chase with one root span
// per insert (as POST /records produces) against the untraced baseline.
func measureTracedInsert(t *testing.T, ds *gen.Dataset, rounds int) (plain, traced float64, ops int) {
	t.Helper()
	dedupCtx, err := schema.NewPair(ds.Credit.Rel, ds.Credit.Rel)
	if err != nil {
		t.Fatal(err)
	}
	tr := benchTracer()
	pass := func(withSpan bool) float64 {
		enf, err := stream.New(dedupCtx, gen.DedupMDs(dedupCtx),
			stream.ClusterRules(gen.DedupClusterRules()...))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for _, tup := range ds.Credit.Tuples {
			ctx := context.Background()
			var sp *trace.Span
			if withSpan {
				ctx, sp = tr.StartRoot(ctx, "bench insert", "", "", "")
			}
			if _, err := enf.InsertCtx(ctx, tup.ID, tup.Values); err != nil {
				t.Fatal(err)
			}
			sp.End()
		}
		return time.Since(start).Seconds()
	}
	best := []float64{0, 0}
	for r := 0; r < rounds; r++ {
		for side, withSpan := range []bool{false, true} {
			got := pass(withSpan)
			if r == 0 || got < best[side] {
				best[side] = got
			}
		}
	}
	return best[0], best[1], len(ds.Credit.Tuples)
}

// TestWriteObsBenchReport measures the hot-path cost of enabling the
// observability hooks: MatchBatch and stream.Insert with a nil observer
// versus the same workload with the full obs stack attached. It is
// skipped unless BENCH_OBS_OUT names the output file (wired up as
// `make bench-obs`), so regular test runs stay fast. The gate fails the
// test when enabled-hook overhead exceeds the budget (default 3%,
// overridable with BENCH_OBS_MAX_OVERHEAD for noisy shared runners).
func TestWriteObsBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=<path> to write the overhead report")
	}
	// Match overhead is measured at the engine bench's production scale
	// (the hook cost is constant per query, so undersized corpora with
	// cheap queries overstate the ratio); the insert path uses the
	// stream bench's default scale to keep chase passes tractable.
	matchK, insertK := 4000, 2000
	if v := os.Getenv("BENCH_OBS_K"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad BENCH_OBS_K %q: %v", v, err)
		}
		matchK, insertK = n, n
	}
	gate := 3.0
	if v := os.Getenv("BENCH_OBS_MAX_OVERHEAD"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad BENCH_OBS_MAX_OVERHEAD %q: %v", v, err)
		}
		gate = f
	}
	const rounds = 5

	report := obsBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Rounds:      rounds,
		GatePct:     gate,
	}

	matchDS, err := gen.Generate(gen.DefaultConfig(matchK))
	if err != nil {
		t.Fatal(err)
	}
	plain, instr, ops := measureMatch(t, obsBenchPlan(t, matchDS), matchDS, rounds)
	report.MatchBatch = newPathMeasure(matchK, ops, plain, instr)

	insertDS := matchDS
	if insertK != matchK {
		if insertDS, err = gen.Generate(gen.DefaultConfig(insertK)); err != nil {
			t.Fatal(err)
		}
	}
	plain, instr, ops = measureInsert(t, insertDS, rounds)
	report.Insert = newPathMeasure(insertK, ops, plain, instr)

	plain, instr, ops = measureTracedMatch(t, obsBenchPlan(t, matchDS), matchDS, rounds)
	report.MatchBatchTraced = newPathMeasure(matchK, ops, plain, instr)

	plain, instr, ops = measureTracedInsert(t, insertDS, rounds)
	report.InsertTraced = newPathMeasure(insertK, ops, plain, instr)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]pathMeasure{
		"match_batch": report.MatchBatch, "stream_insert": report.Insert,
		"match_batch_traced": report.MatchBatchTraced, "stream_insert_traced": report.InsertTraced,
	} {
		t.Logf("%s: plain %.4fs, instrumented %.4fs (%.2f%%, hook %.0f ns/op)",
			name, m.PlainSeconds, m.InstrumentedSeconds, m.OverheadPct, m.HookNsPerOp)
		if m.OverheadPct > gate {
			t.Errorf("%s instrumentation overhead %.2f%% exceeds %.1f%% gate",
				name, m.OverheadPct, gate)
		}
	}
}
