package obs

// Health-state and robustness instruments: how a service reports the
// degraded-mode state machine (ok | degraded-readonly | draining),
// injected faults, and admission-control rejections. The state itself
// lives in the service (an atomic the HTTP layer flips); this file only
// gives it a stable metrics surface.

// HealthMetrics bundles the robustness instrument set a serving daemon
// registers once per process.
type HealthMetrics struct {
	// DegradedTransitions counts entries into degraded-readonly mode
	// (mdmatch_degraded_transitions_total).
	DegradedTransitions *Counter
	// FaultInjected counts injected filesystem faults by operation kind
	// (mdmatch_fault_injected_total{op}).
	FaultInjected *CounterVec
	// AdmissionRejected counts requests shed before touching the engine,
	// by reason: "inflight" (over the -max-inflight budget), "queue"
	// (engine/stream depth over -queue-high-watermark), "readonly"
	// (mutation while degraded or draining)
	// (mdmatch_admission_rejected_total{reason}).
	AdmissionRejected *CounterVec
}

// NewHealthMetrics registers the robustness instruments on reg. state
// is sampled at scrape time and must be safe for concurrent use; its
// value encodes the health state machine (0 = ok, 1 =
// degraded-readonly, 2 = draining), mirroring the JSON health field.
func NewHealthMetrics(reg *Registry, state func() float64) *HealthMetrics {
	reg.CollectGauge("mdmatch_health_state",
		"Serving health state: 0 = ok, 1 = degraded-readonly (WAL failed, mutations rejected), 2 = draining.",
		nil, func(emit Emit) { emit(state()) })
	return &HealthMetrics{
		DegradedTransitions: reg.Counter("mdmatch_degraded_transitions_total",
			"Transitions into degraded-readonly serving (a latched WAL failure; restart to recover)."),
		FaultInjected: reg.CounterVec("mdmatch_fault_injected_total",
			"Injected filesystem faults fired, by operation kind.", "op"),
		AdmissionRejected: reg.CounterVec("mdmatch_admission_rejected_total",
			"Requests shed by admission control before touching the match engine, by reason.", "reason"),
	}
}
