package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPairSetBasics(t *testing.T) {
	s := NewPairSet(Pair{1, 2}, Pair{3, 4}, Pair{1, 2})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicates collapse)", s.Len())
	}
	if !s.Has(Pair{1, 2}) || s.Has(Pair{2, 1}) {
		t.Fatal("Has broken (pairs are ordered)")
	}
	s.Add(Pair{5, 6})
	if s.Len() != 3 {
		t.Fatal("Add broken")
	}
	if got := len(s.Pairs()); got != 3 {
		t.Fatalf("Pairs() returned %d", got)
	}
}

func TestIntersectCount(t *testing.T) {
	a := NewPairSet(Pair{1, 1}, Pair{2, 2}, Pair{3, 3})
	b := NewPairSet(Pair{2, 2}, Pair{3, 3}, Pair{4, 4})
	if got := a.IntersectCount(b); got != 2 {
		t.Fatalf("IntersectCount = %d, want 2", got)
	}
	if got := b.IntersectCount(a); got != 2 {
		t.Fatal("IntersectCount not symmetric")
	}
	if got := a.IntersectCount(NewPairSet()); got != 0 {
		t.Fatalf("intersection with empty = %d", got)
	}
}

func TestEvaluate(t *testing.T) {
	truth := NewPairSet(Pair{1, 1}, Pair{2, 2}, Pair{3, 3}, Pair{4, 4})
	found := NewPairSet(Pair{1, 1}, Pair{2, 2}, Pair{9, 9})
	q := Evaluate(found, truth)
	if q.TruePositives != 2 || q.FalsePositives != 1 || q.FalseNegatives != 2 {
		t.Fatalf("Evaluate = %+v", q)
	}
	if math.Abs(q.Precision()-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v", q.Precision())
	}
	if math.Abs(q.Recall()-0.5) > 1e-12 {
		t.Errorf("recall = %v", q.Recall())
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / (2.0/3.0 + 0.5)
	if math.Abs(q.F1()-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", q.F1(), wantF1)
	}
	if !strings.Contains(q.String(), "precision=") {
		t.Errorf("String() = %q", q.String())
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	empty := NewPairSet()
	q := Evaluate(empty, empty)
	if q.Precision() != 1 || q.Recall() != 1 {
		t.Errorf("empty/empty: p=%v r=%v, want 1/1", q.Precision(), q.Recall())
	}
	if q.F1() != 1 {
		t.Errorf("empty/empty f1 = %v", q.F1())
	}
	// No matches found, non-empty truth: recall 0, precision 1 by
	// convention, F1 0.
	q = Evaluate(empty, NewPairSet(Pair{1, 1}))
	if q.Precision() != 1 || q.Recall() != 0 || q.F1() != 0 {
		t.Errorf("empty found: %+v p=%v r=%v f1=%v", q, q.Precision(), q.Recall(), q.F1())
	}
}

func TestQualityBounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		q := Quality{TruePositives: int(tp), FalsePositives: int(fp), FalseNegatives: int(fn)}
		p, r, f1 := q.Precision(), q.Recall(), q.F1()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateBlocking(t *testing.T) {
	truth := NewPairSet(Pair{1, 1}, Pair{2, 2}, Pair{3, 3}, Pair{4, 4})
	candidates := NewPairSet(Pair{1, 1}, Pair{2, 2}, Pair{3, 3}, Pair{7, 7}, Pair{8, 8})
	total := 100
	b := EvaluateBlocking(candidates, truth, total)
	if b.SM != 3 || b.SU != 2 || b.NM != 4 || b.NU != 96 {
		t.Fatalf("EvaluateBlocking = %+v", b)
	}
	if math.Abs(b.PC()-0.75) > 1e-12 {
		t.Errorf("PC = %v, want 0.75", b.PC())
	}
	if math.Abs(b.RR()-0.95) > 1e-12 {
		t.Errorf("RR = %v, want 0.95", b.RR())
	}
	if !strings.Contains(b.String(), "PC=") {
		t.Errorf("String() = %q", b.String())
	}
}

func TestBlockingEdgeCases(t *testing.T) {
	b := EvaluateBlocking(NewPairSet(), NewPairSet(), 0)
	if b.PC() != 1 {
		t.Errorf("PC with no truth = %v, want 1", b.PC())
	}
	if b.RR() != 0 {
		t.Errorf("RR with empty space = %v, want 0", b.RR())
	}
	// Comparing everything: RR = 0; finding every match: PC = 1.
	truth := NewPairSet(Pair{1, 1})
	all := NewPairSet(Pair{1, 1}, Pair{1, 2}, Pair{2, 1}, Pair{2, 2})
	b = EvaluateBlocking(all, truth, 4)
	if b.PC() != 1 || b.RR() != 0 {
		t.Errorf("full comparison: PC=%v RR=%v", b.PC(), b.RR())
	}
}

func TestBlockingBounds(t *testing.T) {
	f := func(smRaw, suRaw, nm, extra uint8) bool {
		// Construct a consistent scenario: sm <= nm, candidates subset of
		// total space.
		sm := int(smRaw)
		if int(nm) < sm {
			sm = int(nm)
		}
		total := int(nm) + int(suRaw) + int(extra)
		b := BlockingQuality{SM: sm, SU: int(suRaw), NM: int(nm), NU: total - int(nm)}
		pc, rr := b.PC(), b.RR()
		return pc >= 0 && pc <= 1 && rr >= 0 && rr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
