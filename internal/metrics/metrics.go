// Package metrics implements the match-quality measures of Section 6:
// precision, recall, F1, and the blocking/windowing measures pairs
// completeness (PC) and reduction ratio (RR).
package metrics

import "fmt"

// Pair identifies a candidate or matched record pair by the tuple ids of
// the left and right relations.
type Pair struct {
	Left  int
	Right int
}

// PairSet is a set of record pairs.
type PairSet struct {
	set map[Pair]struct{}
}

// NewPairSet builds a set from the given pairs.
func NewPairSet(pairs ...Pair) *PairSet {
	s := &PairSet{set: make(map[Pair]struct{}, len(pairs))}
	for _, p := range pairs {
		s.Add(p)
	}
	return s
}

// Add inserts a pair.
func (s *PairSet) Add(p Pair) { s.set[p] = struct{}{} }

// Has reports membership.
func (s *PairSet) Has(p Pair) bool {
	_, ok := s.set[p]
	return ok
}

// Len returns the number of pairs.
func (s *PairSet) Len() int { return len(s.set) }

// Pairs returns all pairs (unspecified order).
func (s *PairSet) Pairs() []Pair {
	out := make([]Pair, 0, len(s.set))
	for p := range s.set {
		out = append(out, p)
	}
	return out
}

// IntersectCount returns |s ∩ t|.
func (s *PairSet) IntersectCount(t *PairSet) int {
	small, large := s, t
	if small.Len() > large.Len() {
		small, large = large, small
	}
	n := 0
	for p := range small.set {
		if large.Has(p) {
			n++
		}
	}
	return n
}

// Quality holds precision/recall/F1 of a match result against the truth.
type Quality struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Evaluate compares found matches against true matches.
func Evaluate(found, truth *PairSet) Quality {
	tp := found.IntersectCount(truth)
	return Quality{
		TruePositives:  tp,
		FalsePositives: found.Len() - tp,
		FalseNegatives: truth.Len() - tp,
	}
}

// Precision is the ratio of true matches correctly found to all matches
// returned, true or false (Section 1). An empty result has precision 1.
func (q Quality) Precision() float64 {
	denom := q.TruePositives + q.FalsePositives
	if denom == 0 {
		return 1
	}
	return float64(q.TruePositives) / float64(denom)
}

// Recall is the ratio of true matches correctly found to all matches in
// the data (Section 1). Empty truth has recall 1.
func (q Quality) Recall() float64 {
	denom := q.TruePositives + q.FalseNegatives
	if denom == 0 {
		return 1
	}
	return float64(q.TruePositives) / float64(denom)
}

// F1 is the harmonic mean of precision and recall.
func (q Quality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (q Quality) String() string {
	return fmt.Sprintf("precision=%.4f recall=%.4f f1=%.4f (tp=%d fp=%d fn=%d)",
		q.Precision(), q.Recall(), q.F1(), q.TruePositives, q.FalsePositives, q.FalseNegatives)
}

// BlockingQuality holds the blocking/windowing measures of Exp-4.
// With sM/sU the matched and non-matched candidate pairs under blocking
// and nM/nU those without blocking:
//
//	PC = sM / nM          (pairs completeness)
//	RR = 1 - (sM+sU)/(nM+nU)  (reduction ratio)
type BlockingQuality struct {
	SM, SU int // candidate pairs with blocking: true matches / non-matches
	NM, NU int // all pairs: true matches / non-matches
}

// EvaluateBlocking computes PC/RR inputs for a candidate pair set against
// the generator-held truth, with totalPairs the size of the unrestricted
// comparison space (the paper computes these "by referencing the truth
// held by the generator, without relying on any particular matching
// method").
func EvaluateBlocking(candidates, truth *PairSet, totalPairs int) BlockingQuality {
	sm := candidates.IntersectCount(truth)
	return BlockingQuality{
		SM: sm,
		SU: candidates.Len() - sm,
		NM: truth.Len(),
		NU: totalPairs - truth.Len(),
	}
}

// PC returns pairs completeness; 1 if there are no true matches.
func (b BlockingQuality) PC() float64 {
	if b.NM == 0 {
		return 1
	}
	return float64(b.SM) / float64(b.NM)
}

// RR returns the reduction ratio; 0 if the comparison space is empty.
func (b BlockingQuality) RR() float64 {
	total := b.NM + b.NU
	if total == 0 {
		return 0
	}
	return 1 - float64(b.SM+b.SU)/float64(total)
}

func (b BlockingQuality) String() string {
	return fmt.Sprintf("PC=%.4f RR=%.4f (sM=%d sU=%d nM=%d nU=%d)",
		b.PC(), b.RR(), b.SM, b.SU, b.NM, b.NU)
}

// ChaseStats counts the work done by an enforcement chase
// (semantics.Enforce), the run-time analog of PC/RR: how much of the
// quadratic comparison space the candidate-driven worklist actually
// visited.
type ChaseStats struct {
	// PairsExamined counts candidate (rule, tuple-pair) visits: each time
	// the chase evaluated whether a rule fires on a pair.
	PairsExamined int64 `json:"pairs_examined"`
	// LHSEvaluations counts individual similarity-operator evaluations
	// performed while matching rule LHSs (after short-circuiting and
	// candidate pruning) — the chase's unit of real work.
	LHSEvaluations int64 `json:"lhs_evaluations"`
	// RuleFirings counts rule applications that identified cells (equal
	// to EnforceResult.Applications).
	RuleFirings int64 `json:"rule_firings"`
}

// Add accumulates counters from another run.
func (s ChaseStats) Add(o ChaseStats) ChaseStats {
	return ChaseStats{
		PairsExamined:  s.PairsExamined + o.PairsExamined,
		LHSEvaluations: s.LHSEvaluations + o.LHSEvaluations,
		RuleFirings:    s.RuleFirings + o.RuleFirings,
	}
}

func (s ChaseStats) String() string {
	return fmt.Sprintf("pairs examined=%d, LHS evaluations=%d, rule firings=%d",
		s.PairsExamined, s.LHSEvaluations, s.RuleFirings)
}
