// Package schema models relation schemas, attributes and the comparable
// attribute lists over which matching dependencies are defined
// (Section 2.1 of the paper).
//
// A matching context always involves a pair of relations (R1, R2); R1 and
// R2 may be the same schema (matching a relation against itself, as in
// Example 2.3 of the paper). Attribute references therefore carry a Side:
// the left copy of an attribute is a different column from the right copy.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Domain is the value domain of an attribute. The reproduction keeps all
// values as strings (the paper standardizes data before matching and all
// its similarity operators are string metrics), but domains still matter:
// two attributes are pairwise comparable only if their domains agree.
type Domain string

// Built-in domains. String is the default when none is declared.
const (
	String Domain = "string"
	Int    Domain = "int"
	Float  Domain = "float"
	Bool   Domain = "bool"
)

// Attribute is a named, typed column of a relation.
type Attribute struct {
	Name   string
	Domain Domain
}

// Relation is a named relation schema: an ordered list of attributes with
// unique names.
type Relation struct {
	name  string
	attrs []Attribute
	index map[string]int
}

// NewRelation builds a relation schema. Attribute names must be non-empty
// and unique; an empty relation name or zero attributes is an error.
func NewRelation(name string, attrs ...Attribute) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name must be non-empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: relation %q must have at least one attribute", name)
	}
	r := &Relation{name: name, attrs: make([]Attribute, len(attrs)), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: relation %q: attribute %d has empty name", name, i)
		}
		if a.Domain == "" {
			a.Domain = String
		}
		if _, dup := r.index[a.Name]; dup {
			return nil, fmt.Errorf("schema: relation %q: duplicate attribute %q", name, a.Name)
		}
		r.attrs[i] = a
		r.index[a.Name] = i
	}
	return r, nil
}

// MustRelation is NewRelation that panics on error; intended for
// package-level schema literals in examples and tests.
func MustRelation(name string, attrs ...Attribute) *Relation {
	r, err := NewRelation(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Strings builds a relation whose attributes all have the String domain.
func Strings(name string, attrNames ...string) (*Relation, error) {
	attrs := make([]Attribute, len(attrNames))
	for i, n := range attrNames {
		attrs[i] = Attribute{Name: n, Domain: String}
	}
	return NewRelation(name, attrs...)
}

// MustStrings is Strings that panics on error.
func MustStrings(name string, attrNames ...string) *Relation {
	r, err := Strings(name, attrNames...)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Attrs returns a copy of the attribute list.
func (r *Relation) Attrs() []Attribute {
	out := make([]Attribute, len(r.attrs))
	copy(out, r.attrs)
	return out
}

// Attr returns the i-th attribute.
func (r *Relation) Attr(i int) Attribute { return r.attrs[i] }

// AttrNames returns the attribute names in declaration order.
func (r *Relation) AttrNames() []string {
	out := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute and whether it exists.
func (r *Relation) Index(name string) (int, bool) {
	i, ok := r.index[name]
	return i, ok
}

// Has reports whether the relation has an attribute with the given name.
func (r *Relation) Has(name string) bool {
	_, ok := r.index[name]
	return ok
}

// DomainOf returns the domain of the named attribute.
func (r *Relation) DomainOf(name string) (Domain, error) {
	i, ok := r.index[name]
	if !ok {
		return "", fmt.Errorf("schema: relation %q has no attribute %q", r.name, name)
	}
	return r.attrs[i].Domain, nil
}

// String renders the schema as name(a1, a2, ...).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.name)
	b.WriteByte('(')
	for i, a := range r.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Domain != String {
			b.WriteString(": ")
			b.WriteString(string(a.Domain))
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Side identifies one of the two relations of a matching context.
type Side uint8

// The two sides of a matching context (R1, R2).
const (
	Left  Side = 0
	Right Side = 1
)

// Other returns the opposite side.
func (s Side) Other() Side { return 1 - s }

// String returns "R1" for Left and "R2" for Right.
func (s Side) String() string {
	if s == Left {
		return "R1"
	}
	return "R2"
}

// Pair is a matching context: an ordered pair of relation schemas over
// which MDs, relative keys and instances-to-match are defined. Left and
// Right may point to the same *Relation.
type Pair struct {
	Left  *Relation
	Right *Relation
}

// NewPair validates and builds a matching context.
func NewPair(left, right *Relation) (Pair, error) {
	if left == nil || right == nil {
		return Pair{}, fmt.Errorf("schema: pair requires two non-nil relations")
	}
	return Pair{Left: left, Right: right}, nil
}

// MustPair is NewPair that panics on error.
func MustPair(left, right *Relation) Pair {
	p, err := NewPair(left, right)
	if err != nil {
		panic(err)
	}
	return p
}

// Rel returns the relation on the given side.
func (p Pair) Rel(s Side) *Relation {
	if s == Left {
		return p.Left
	}
	return p.Right
}

// SelfMatch reports whether both sides are the same schema (deduplication
// within a single relation).
func (p Pair) SelfMatch() bool { return p.Left == p.Right }

// TotalColumns returns the total number of columns across both sides
// (the quantity h of Theorem 4.1). The left and right copies count
// separately even when the schemas coincide.
func (p Pair) TotalColumns() int { return p.Left.Arity() + p.Right.Arity() }

// Col maps an attribute reference to a dense column id in
// [0, TotalColumns()): left attributes first, then right attributes.
func (p Pair) Col(s Side, attr string) (int, error) {
	r := p.Rel(s)
	i, ok := r.Index(attr)
	if !ok {
		return 0, fmt.Errorf("schema: %s (%s) has no attribute %q", s, r.Name(), attr)
	}
	if s == Left {
		return i, nil
	}
	return p.Left.Arity() + i, nil
}

// ColRef is the inverse of Col: it maps a dense column id back to
// (side, attribute name).
func (p Pair) ColRef(col int) (Side, string) {
	if col < p.Left.Arity() {
		return Left, p.Left.Attr(col).Name
	}
	return Right, p.Right.Attr(col - p.Left.Arity()).Name
}

// String renders the context as "R1 ~ R2".
func (p Pair) String() string {
	return fmt.Sprintf("%s ~ %s", p.Left.Name(), p.Right.Name())
}

// AttrList is an ordered list of attribute names within one relation.
type AttrList []string

// Comparable reports whether (x1, x2) form a pair of comparable lists over
// the context (Section 2.1): same length, every element exists on its
// side, and element domains agree pairwise.
func (p Pair) Comparable(x1, x2 AttrList) error {
	if len(x1) != len(x2) {
		return fmt.Errorf("schema: lists have different lengths (%d vs %d)", len(x1), len(x2))
	}
	if len(x1) == 0 {
		return fmt.Errorf("schema: comparable lists must be non-empty")
	}
	for j := range x1 {
		d1, err := p.Left.DomainOf(x1[j])
		if err != nil {
			return err
		}
		d2, err := p.Right.DomainOf(x2[j])
		if err != nil {
			return err
		}
		if d1 != d2 {
			return fmt.Errorf("schema: element %d not comparable: dom(%s[%s])=%s, dom(%s[%s])=%s",
				j, p.Left.Name(), x1[j], d1, p.Right.Name(), x2[j], d2)
		}
	}
	return nil
}

// SortedUnion returns the sorted union of two attribute-name sets.
// Utility used by reasoning code when assembling column universes.
func SortedUnion(a, b []string) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, x := range b {
		set[x] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}
