package schema

import (
	"strings"
	"testing"
)

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewRelation("r"); err == nil {
		t.Fatal("zero attributes accepted")
	}
	if _, err := NewRelation("r", Attribute{Name: ""}); err == nil {
		t.Fatal("empty attribute name accepted")
	}
	if _, err := NewRelation("r", Attribute{Name: "a"}, Attribute{Name: "a"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	r, err := NewRelation("r", Attribute{Name: "a"}, Attribute{Name: "b", Domain: Int})
	if err != nil {
		t.Fatalf("valid relation rejected: %v", err)
	}
	if r.Arity() != 2 {
		t.Fatalf("arity = %d, want 2", r.Arity())
	}
	if d, _ := r.DomainOf("a"); d != String {
		t.Fatalf("default domain = %s, want string", d)
	}
	if d, _ := r.DomainOf("b"); d != Int {
		t.Fatalf("domain of b = %s, want int", d)
	}
}

func TestRelationLookups(t *testing.T) {
	r := MustStrings("credit", "cno", "ssn", "fn", "ln")
	if r.Name() != "credit" {
		t.Fatalf("name = %q", r.Name())
	}
	i, ok := r.Index("fn")
	if !ok || i != 2 {
		t.Fatalf("Index(fn) = %d,%v", i, ok)
	}
	if _, ok := r.Index("nope"); ok {
		t.Fatal("Index found missing attribute")
	}
	if !r.Has("ssn") || r.Has("x") {
		t.Fatal("Has misbehaves")
	}
	if _, err := r.DomainOf("zzz"); err == nil {
		t.Fatal("DomainOf missing attribute must error")
	}
	names := r.AttrNames()
	if len(names) != 4 || names[0] != "cno" || names[3] != "ln" {
		t.Fatalf("AttrNames = %v", names)
	}
	// Attrs returns a copy: mutating it must not affect the schema.
	attrs := r.Attrs()
	attrs[0].Name = "mutated"
	if r.Attr(0).Name != "cno" {
		t.Fatal("Attrs exposed internal state")
	}
}

func TestRelationString(t *testing.T) {
	r := MustRelation("r", Attribute{Name: "a"}, Attribute{Name: "n", Domain: Int})
	s := r.String()
	if !strings.Contains(s, "r(") || !strings.Contains(s, "n: int") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation did not panic on invalid input")
		}
	}()
	MustRelation("")
}

func TestPairColumns(t *testing.T) {
	left := MustStrings("credit", "cno", "fn", "ln")
	right := MustStrings("billing", "cno", "fn", "ln", "post")
	p := MustPair(left, right)

	if p.SelfMatch() {
		t.Fatal("distinct relations reported as self-match")
	}
	if p.TotalColumns() != 7 {
		t.Fatalf("TotalColumns = %d, want 7", p.TotalColumns())
	}
	// Left columns come first.
	c, err := p.Col(Left, "ln")
	if err != nil || c != 2 {
		t.Fatalf("Col(Left, ln) = %d, %v", c, err)
	}
	c, err = p.Col(Right, "cno")
	if err != nil || c != 3 {
		t.Fatalf("Col(Right, cno) = %d, %v", c, err)
	}
	if _, err := p.Col(Left, "post"); err == nil {
		t.Fatal("Col accepted attribute from wrong side")
	}
	// Round trip through ColRef.
	for col := 0; col < p.TotalColumns(); col++ {
		s, a := p.ColRef(col)
		back, err := p.Col(s, a)
		if err != nil || back != col {
			t.Fatalf("ColRef/Col round trip failed at %d: got %d (%v)", col, back, err)
		}
	}
}

func TestSelfMatchPair(t *testing.T) {
	r := MustStrings("person", "name", "addr")
	p := MustPair(r, r)
	if !p.SelfMatch() {
		t.Fatal("same relation not detected as self-match")
	}
	if p.TotalColumns() != 4 {
		t.Fatalf("TotalColumns = %d, want 4 (left and right copies are distinct)", p.TotalColumns())
	}
	lc, _ := p.Col(Left, "name")
	rc, _ := p.Col(Right, "name")
	if lc == rc {
		t.Fatal("left and right copies of the same attribute must be distinct columns")
	}
}

func TestComparable(t *testing.T) {
	left := MustRelation("l",
		Attribute{Name: "a"}, Attribute{Name: "n", Domain: Int})
	right := MustRelation("r",
		Attribute{Name: "b"}, Attribute{Name: "m", Domain: Int})
	p := MustPair(left, right)

	if err := p.Comparable(AttrList{"a", "n"}, AttrList{"b", "m"}); err != nil {
		t.Fatalf("comparable lists rejected: %v", err)
	}
	if err := p.Comparable(AttrList{"a"}, AttrList{"b", "m"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := p.Comparable(AttrList{}, AttrList{}); err == nil {
		t.Fatal("empty lists accepted")
	}
	if err := p.Comparable(AttrList{"a"}, AttrList{"m"}); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if err := p.Comparable(AttrList{"zz"}, AttrList{"b"}); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestSideOther(t *testing.T) {
	if Left.Other() != Right || Right.Other() != Left {
		t.Fatal("Other is wrong")
	}
	if Left.String() != "R1" || Right.String() != "R2" {
		t.Fatal("Side.String is wrong")
	}
}

func TestSortedUnion(t *testing.T) {
	u := SortedUnion([]string{"b", "a"}, []string{"c", "a"})
	if len(u) != 3 || u[0] != "a" || u[1] != "b" || u[2] != "c" {
		t.Fatalf("SortedUnion = %v", u)
	}
}
