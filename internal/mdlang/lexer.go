// Package mdlang implements the rule language of the reproduction: a
// small text format for declaring relation schemas, matching
// dependencies, and matching targets, so that MDs can be authored,
// stored and reasoned about at compile time (the paper's usage model:
// reasoning "at the schema level and at compile time", Section 1).
//
// Grammar (newline-insensitive; '#' starts a line comment):
//
//	doc      := stmt*
//	stmt     := schema | pair | md | target
//	schema   := "schema" ident "(" attr ("," attr)* ")"
//	attr     := ident (":" ident)?
//	pair     := "pair" ident ident
//	md       := "md" conj ("&&" conj)* "->" ref ("<=>" | "<!>") ref
//	target   := "target" ref "<=>" ref
//	conj     := ident "[" ident "]" op ident "[" ident "]"
//	op       := "=" | "~" opspec
//	opspec   := ident ("(" number ")")?
//	ref      := ident "[" ident ("," ident)* "]"
//
// Attribute names may contain letters, digits, '_', '#', '.' and '-'
// (e.g. the paper's "c#").
package mdlang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokEquals    // =
	tokTilde     // ~
	tokAnd       // &&
	tokArrow     // ->
	tokMatchOp   // <=>
	tokNoMatchOp // <!> (negative rules, the Section 8 extension)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokEquals:
		return "'='"
	case tokTilde:
		return "'~'"
	case tokAnd:
		return "'&&'"
	case tokArrow:
		return "'->'"
	case tokMatchOp:
		return "'<=>'"
	case tokNoMatchOp:
		return "'<!>'"
	}
	return "unknown token"
}

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mdlang: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// isIdentRune reports whether r can appear inside an identifier. '#' is
// allowed for attribute names like the paper's "c#"; '.' and '-' support
// dotted and hyphenated attribute names from real datasets.
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '_' || r == '#' || r == '.' || r == '-'
}

// lex tokenizes the whole input.
func lex(input string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	rs := []rune(input)
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if rs[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '#': // comment to end of line
			for i < len(rs) && rs[i] != '\n' {
				advance(1)
			}
		case unicode.IsSpace(r):
			advance(1)
		case r == '(':
			toks = append(toks, token{tokLParen, "(", line, col})
			advance(1)
		case r == ')':
			toks = append(toks, token{tokRParen, ")", line, col})
			advance(1)
		case r == '[':
			toks = append(toks, token{tokLBracket, "[", line, col})
			advance(1)
		case r == ']':
			toks = append(toks, token{tokRBracket, "]", line, col})
			advance(1)
		case r == ',':
			toks = append(toks, token{tokComma, ",", line, col})
			advance(1)
		case r == ':':
			toks = append(toks, token{tokColon, ":", line, col})
			advance(1)
		case r == '=':
			toks = append(toks, token{tokEquals, "=", line, col})
			advance(1)
		case r == '~':
			toks = append(toks, token{tokTilde, "~", line, col})
			advance(1)
		case r == '&':
			if i+1 < len(rs) && rs[i+1] == '&' {
				toks = append(toks, token{tokAnd, "&&", line, col})
				advance(2)
			} else {
				return nil, errf(line, col, "unexpected '&' (did you mean '&&'?)")
			}
		case r == '-':
			if i+1 < len(rs) && rs[i+1] == '>' {
				toks = append(toks, token{tokArrow, "->", line, col})
				advance(2)
				continue
			}
			return nil, errf(line, col, "unexpected '-' (did you mean '->'?)")
		case r == '<':
			switch {
			case i+2 < len(rs) && rs[i+1] == '=' && rs[i+2] == '>':
				toks = append(toks, token{tokMatchOp, "<=>", line, col})
				advance(3)
			case i+2 < len(rs) && rs[i+1] == '!' && rs[i+2] == '>':
				toks = append(toks, token{tokNoMatchOp, "<!>", line, col})
				advance(3)
			default:
				return nil, errf(line, col, "unexpected '<' (did you mean '<=>' or '<!>'?)")
			}
		case unicode.IsDigit(r):
			start := i
			startCol := col
			for i < len(rs) && (unicode.IsDigit(rs[i]) || rs[i] == '.' || isIdentRune(rs[i])) {
				advance(1)
			}
			text := string(rs[start:i])
			kind := tokNumber
			if strings.IndexFunc(text, func(r rune) bool {
				return !unicode.IsDigit(r) && r != '.'
			}) >= 0 {
				kind = tokIdent // e.g. "2grams" style identifiers
			}
			toks = append(toks, token{kind, text, line, startCol})
		case isIdentRune(r):
			start := i
			startCol := col
			for i < len(rs) && isIdentRune(rs[i]) {
				advance(1)
			}
			toks = append(toks, token{tokIdent, string(rs[start:i]), line, startCol})
		default:
			return nil, errf(line, col, "unexpected character %q", string(r))
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}
