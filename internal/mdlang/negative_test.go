package mdlang

import (
	"strings"
	"testing"
)

const negativeDoc = `
schema credit(cno, fn, ln, dob)
schema billing(cno, fn, ln, dob)
pair credit billing

md credit[cno] = billing[cno] -> credit[fn, ln] <=> billing[fn, ln]

# Different birth dates: never the same person, whatever else agrees.
md credit[fn] = billing[fn] && credit[ln] = billing[ln]
   -> credit[dob] <!> billing[dob]
`

func TestParseNegativeMD(t *testing.T) {
	doc, err := Parse(negativeDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.MDs) != 1 {
		t.Fatalf("positive MDs = %d, want 1", len(doc.MDs))
	}
	if len(doc.Negatives) != 1 {
		t.Fatalf("negative MDs = %d, want 1", len(doc.Negatives))
	}
	n := doc.Negatives[0]
	if len(n.LHS) != 2 || len(n.RHS) != 1 {
		t.Fatalf("negative MD shape wrong: %s", n)
	}
	if !strings.Contains(n.String(), "<!>") {
		t.Errorf("negative MD renders as %q", n.String())
	}
}

func TestNegativeArrowRejectedInTarget(t *testing.T) {
	_, err := Parse(`
schema a(x)
schema b(y)
pair a b
target a[x] <!> b[y]
`, nil)
	if err == nil {
		t.Fatal("'<!>' in target accepted")
	}
	if !strings.Contains(err.Error(), "only allowed in md statements") {
		t.Fatalf("error = %v", err)
	}
}

func TestNegativeRoundTrip(t *testing.T) {
	doc, err := Parse(negativeDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(doc)
	doc2, err := Parse(text, nil)
	if err != nil {
		t.Fatalf("formatted doc does not re-parse: %v\n%s", err, text)
	}
	if len(doc2.Negatives) != 1 {
		t.Fatalf("round trip lost negative MDs:\n%s", text)
	}
	if doc2.Negatives[0].String() != doc.Negatives[0].String() {
		t.Fatalf("negative MD round trip mismatch:\n got %s\nwant %s",
			doc2.Negatives[0], doc.Negatives[0])
	}
}

func TestBadNegativeArrow(t *testing.T) {
	if _, err := Parse("schema a(x)\nschema b(y)\npair a b\nmd a[x] = b[y] -> a[x] <! b[y]", nil); err == nil {
		t.Fatal("malformed '<!' accepted")
	}
}

func TestInvalidNegativeBody(t *testing.T) {
	// Negative MD with an unknown attribute must be rejected with a
	// position-carrying error.
	_, err := Parse("schema a(x)\nschema b(y)\npair a b\nmd a[x] = b[y] -> a[zz] <!> b[y]", nil)
	if err == nil {
		t.Fatal("invalid negative MD accepted")
	}
}
