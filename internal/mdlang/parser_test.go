package mdlang

import (
	"strings"
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/schema"
)

// paperDoc is the running example of the paper in rule-language form.
const paperDoc = `
# Credit/billing fraud-detection rules (Examples 1.1, 2.1).
schema credit(cno, ssn, fn, ln, addr, tel, email, gender, type)
schema billing(cno, fn, ln, post, phn, email, gender, item, price)

pair credit billing

md credit[ln] = billing[ln]
   && credit[addr] = billing[post]
   && credit[fn] ~dl(0.75) billing[fn]
   -> credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]

md credit[tel] = billing[phn] -> credit[addr] <=> billing[post]
md credit[email] = billing[email] -> credit[fn, ln] <=> billing[fn, ln]

target credit[fn, ln, addr, tel, gender] <=> billing[fn, ln, post, phn, gender]
`

func TestParsePaperDocument(t *testing.T) {
	doc, err := Parse(paperDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Schemas) != 2 {
		t.Fatalf("schemas = %d, want 2", len(doc.Schemas))
	}
	if doc.Ctx.Left.Name() != "credit" || doc.Ctx.Right.Name() != "billing" {
		t.Fatalf("pair = %s", doc.Ctx)
	}
	if len(doc.MDs) != 3 {
		t.Fatalf("MDs = %d, want 3", len(doc.MDs))
	}
	if len(doc.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(doc.Targets))
	}
	phi1 := doc.MDs[0]
	if len(phi1.LHS) != 3 || len(phi1.RHS) != 5 {
		t.Fatalf("ϕ1 shape wrong: %s", phi1)
	}
	if phi1.LHS[2].OpName() != "dl(0.75)" {
		t.Fatalf("ϕ1 third conjunct op = %s", phi1.LHS[2].OpName())
	}
	// The parsed Σ must reproduce the paper's deduction (Example 3.5).
	target := doc.Targets[0]
	rck4 := core.Key{Ctx: doc.Ctx, Target: target, Conjuncts: []core.Conjunct{
		core.Eq("email", "email"), core.Eq("tel", "phn"),
	}}
	ok, err := core.DeduceKey(doc.MDs, rck4)
	if err != nil || !ok {
		t.Fatalf("parsed Σ must deduce rck4: ok=%v err=%v", ok, err)
	}
}

func TestParseReversedConjunctOrientation(t *testing.T) {
	// Conjuncts and match expressions may name the relations in either
	// order; the parser normalizes to (left, right).
	doc, err := Parse(`
schema a(x, y)
schema b(u, v)
pair a b
md b[u] = a[x] -> b[v] <=> a[y]
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	md := doc.MDs[0]
	if md.LHS[0].Pair != core.P("x", "u") {
		t.Errorf("conjunct not normalized: %v", md.LHS[0].Pair)
	}
	if md.RHS[0] != core.P("y", "v") {
		t.Errorf("RHS not normalized: %v", md.RHS[0])
	}
}

func TestParseSelfMatch(t *testing.T) {
	doc, err := Parse(`
schema person(name, addr, phone)
pair person person
md person[phone] = person[phone] -> person[addr] <=> person[addr]
target person[name, addr] <=> person[name, addr]
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Ctx.SelfMatch() {
		t.Fatal("self-match pair not recognized")
	}
	if len(doc.MDs) != 1 || doc.MDs[0].LHS[0].Pair != core.P("phone", "phone") {
		t.Fatalf("self-match MD wrong: %v", doc.MDs)
	}
}

func TestParseDomains(t *testing.T) {
	doc, err := Parse(`
schema orders(id: int, total: float, note)
schema invoices(ref: int, amount: float, memo)
pair orders invoices
md orders[id] = invoices[ref] -> orders[total] <=> invoices[amount]
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := doc.Schemas["orders"].DomainOf("id")
	if d != schema.Int {
		t.Fatalf("domain = %s", d)
	}
	if d, _ := doc.Schemas["orders"].DomainOf("note"); d != schema.String {
		t.Fatalf("default domain = %s", d)
	}
}

func TestParseHashAttrNames(t *testing.T) {
	// The paper's c# attribute.
	doc, err := Parse(`
schema credit(c#, fn)
schema billing(c#, fn)
pair credit billing
md credit[c#] = billing[c#] -> credit[fn] <=> billing[fn]
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.MDs[0].LHS[0].Pair != core.P("c#", "c#") {
		t.Fatalf("c# attribute mangled: %v", doc.MDs[0].LHS[0].Pair)
	}
}

func TestParseOperatorDefaults(t *testing.T) {
	doc, err := Parse(`
schema a(x)
schema b(y)
pair a b
md a[x] ~jaro b[y] -> a[x] <=> b[y]
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.MDs[0].LHS[0].OpName() != "jaro(0.85)" {
		t.Fatalf("default-threshold op = %s", doc.MDs[0].LHS[0].OpName())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, input, wantSub string
	}{
		{"empty", "", "empty document"},
		{"unknown stmt", "frobnicate a b", "unknown statement"},
		{"md before pair", "schema a(x)\nmd a[x] = a[x] -> a[x] <=> a[x]", "no 'pair'"},
		{"unknown schema in pair", "schema a(x)\npair a b", `unknown schema "b"`},
		{"dup schema", "schema a(x)\nschema a(y)", "already declared"},
		{"dup pair", "schema a(x)\nschema b(y)\npair a b\npair a b", "pair already declared"},
		{"bad char", "schema a(x)\n schema b($)", "unexpected character"},
		{"lone amp", "schema a(x&y)", "unexpected '&'"},
		{"lone dash", "schema a(x) -", "unexpected '-'"},
		{"lone lt", "schema a(x) <", "unexpected '<'"},
		{"wrong rel in md", "schema a(x)\nschema b(y)\nschema c(z)\npair a b\nmd a[x] = c[z] -> a[x] <=> b[y]", "not part of the declared pair"},
		{"same rel twice", "schema a(x, w)\nschema b(y)\npair a b\nmd a[x] = a[w] -> a[x] <=> b[y]", "compare the two relations"},
		{"bad attr", "schema a(x)\nschema b(y)\npair a b\nmd a[zz] = b[y] -> a[x] <=> b[y]", "no attribute"},
		{"list len mismatch", "schema a(x, w)\nschema b(y)\npair a b\nmd a[x] = b[y] -> a[x, w] <=> b[y]", "different lengths"},
		{"unknown op", "schema a(x)\nschema b(y)\npair a b\nmd a[x] ~frob b[y] -> a[x] <=> b[y]", "unknown operator"},
		{"missing arrow", "schema a(x)\nschema b(y)\npair a b\nmd a[x] = b[y] a[x] <=> b[y]", "expected '->'"},
		{"target before pair", "schema a(x)\ntarget a[x] <=> a[x]", "no 'pair'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.input, nil)
			if err == nil {
				t.Fatalf("input %q parsed without error", c.input)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("schema a(x)\nschema b(y)\npair a b\nmd a[x] ** b[y] -> a[x] <=> b[y]", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Line != 4 {
		t.Errorf("error line = %d, want 4", perr.Line)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	doc, err := Parse(paperDoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(doc)
	doc2, err := Parse(text, nil)
	if err != nil {
		t.Fatalf("formatted document does not re-parse: %v\n%s", err, text)
	}
	if len(doc2.MDs) != len(doc.MDs) || len(doc2.Targets) != len(doc.Targets) {
		t.Fatalf("round trip lost statements:\n%s", text)
	}
	for i := range doc.MDs {
		if doc.MDs[i].String() != doc2.MDs[i].String() {
			t.Errorf("MD %d round trip mismatch:\n got %s\nwant %s", i, doc2.MDs[i], doc.MDs[i])
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	doc, err := Parse("# leading comment\n\n  schema a(x) # trailing\n#only comment line\nschema b(y)\npair a b\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Schemas) != 2 {
		t.Fatalf("schemas = %d", len(doc.Schemas))
	}
}
