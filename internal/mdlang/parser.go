package mdlang

import (
	"fmt"
	"strings"

	"mdmatch/internal/core"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// Document is a parsed rule file: schemas, the matching context, the MD
// set Σ, negative MDs (the "<!>" rules of the Section 8 extension), and
// zero or more targets for RCK derivation.
type Document struct {
	Schemas   map[string]*schema.Relation
	Ctx       schema.Pair
	MDs       []core.MD
	Negatives []core.NegativeMD
	Targets   []core.Target
}

// Parse parses a rule document against the given operator registry
// (nil means similarity.DefaultRegistry()).
func Parse(input string, reg *similarity.Registry) (*Document, error) {
	if reg == nil {
		reg = similarity.DefaultRegistry()
	}
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, reg: reg, doc: &Document{Schemas: map[string]*schema.Relation{}}}
	if err := p.parseDoc(); err != nil {
		return nil, err
	}
	if len(p.doc.MDs) == 0 && len(p.doc.Targets) == 0 && len(p.doc.Schemas) == 0 {
		return nil, fmt.Errorf("mdlang: empty document")
	}
	return p.doc, nil
}

type parser struct {
	toks []token
	pos  int
	reg  *similarity.Registry
	doc  *Document
	// pair declared?
	havePair bool
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, errf(t.line, t.col, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseDoc() error {
	for p.cur().kind != tokEOF {
		t := p.cur()
		if t.kind != tokIdent {
			return errf(t.line, t.col, "expected a statement keyword (schema, pair, md, target), found %s %q", t.kind, t.text)
		}
		switch t.text {
		case "schema":
			if err := p.parseSchema(); err != nil {
				return err
			}
		case "pair":
			if err := p.parsePair(); err != nil {
				return err
			}
		case "md":
			if err := p.parseMD(); err != nil {
				return err
			}
		case "target":
			if err := p.parseTarget(); err != nil {
				return err
			}
		default:
			return errf(t.line, t.col, "unknown statement %q (want schema, pair, md or target)", t.text)
		}
	}
	return nil
}

// parseSchema := "schema" ident "(" attr ("," attr)* ")"
func (p *parser) parseSchema() error {
	kw := p.next() // "schema"
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, dup := p.doc.Schemas[name.text]; dup {
		return errf(name.line, name.col, "schema %q already declared", name.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var attrs []schema.Attribute
	for {
		a, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		attr := schema.Attribute{Name: a.text, Domain: schema.String}
		if p.cur().kind == tokColon {
			p.next()
			d, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			attr.Domain = schema.Domain(d.text)
		}
		attrs = append(attrs, attr)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	rel, err := schema.NewRelation(name.text, attrs...)
	if err != nil {
		return errf(kw.line, kw.col, "%v", err)
	}
	p.doc.Schemas[name.text] = rel
	return nil
}

// parsePair := "pair" ident ident
func (p *parser) parsePair() error {
	kw := p.next() // "pair"
	if p.havePair {
		return errf(kw.line, kw.col, "pair already declared")
	}
	l, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	r, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	left, ok := p.doc.Schemas[l.text]
	if !ok {
		return errf(l.line, l.col, "unknown schema %q", l.text)
	}
	right, ok := p.doc.Schemas[r.text]
	if !ok {
		return errf(r.line, r.col, "unknown schema %q", r.text)
	}
	ctx, err := schema.NewPair(left, right)
	if err != nil {
		return errf(kw.line, kw.col, "%v", err)
	}
	p.doc.Ctx = ctx
	p.havePair = true
	return nil
}

func (p *parser) requirePair(at token) error {
	if !p.havePair {
		return errf(at.line, at.col, "no 'pair' declared before %q statement", at.text)
	}
	return nil
}

// sideOf maps a relation name to the side it plays in the context.
// In self-matching contexts the same name serves both sides; the caller
// disambiguates by position.
func (p *parser) sideOf(t token, wantSide schema.Side) (schema.Side, error) {
	name := t.text
	leftName := p.doc.Ctx.Left.Name()
	rightName := p.doc.Ctx.Right.Name()
	switch {
	case name == leftName && name == rightName:
		return wantSide, nil // self-match: position decides
	case name == leftName:
		return schema.Left, nil
	case name == rightName:
		return schema.Right, nil
	default:
		return 0, errf(t.line, t.col, "relation %q is not part of the declared pair (%s, %s)", name, leftName, rightName)
	}
}

// parseAttrRef := ident "[" ident "]"; returns relation token and attr.
func (p *parser) parseAttrRef() (rel token, attr string, err error) {
	rel, err = p.expect(tokIdent)
	if err != nil {
		return
	}
	if _, err = p.expect(tokLBracket); err != nil {
		return
	}
	a, err2 := p.expect(tokIdent)
	if err2 != nil {
		err = err2
		return
	}
	attr = a.text
	_, err = p.expect(tokRBracket)
	return
}

// parseListRef := ident "[" ident ("," ident)* "]"
func (p *parser) parseListRef() (rel token, attrs []string, err error) {
	rel, err = p.expect(tokIdent)
	if err != nil {
		return
	}
	if _, err = p.expect(tokLBracket); err != nil {
		return
	}
	for {
		a, err2 := p.expect(tokIdent)
		if err2 != nil {
			err = err2
			return
		}
		attrs = append(attrs, a.text)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	_, err = p.expect(tokRBracket)
	return
}

// parseOp := "=" | "~" ident ("(" number ")")?
func (p *parser) parseOp() (similarity.Operator, error) {
	t := p.cur()
	switch t.kind {
	case tokEquals:
		p.next()
		return similarity.Eq(), nil
	case tokTilde:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		spec := name.text
		if p.cur().kind == tokLParen {
			p.next()
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			spec = fmt.Sprintf("%s(%s)", name.text, num.text)
		}
		op, err := p.reg.Resolve(spec)
		if err != nil {
			return nil, errf(name.line, name.col, "%v", err)
		}
		return op, nil
	default:
		return nil, errf(t.line, t.col, "expected '=' or '~op', found %s %q", t.kind, t.text)
	}
}

// parseMD := "md" conj ("&&" conj)* "->" listref "<=>" listref
func (p *parser) parseMD() error {
	kw := p.next() // "md"
	if err := p.requirePair(kw); err != nil {
		return err
	}
	var lhs []core.Conjunct
	for {
		lrel, lattr, err := p.parseAttrRef()
		if err != nil {
			return err
		}
		op, err := p.parseOp()
		if err != nil {
			return err
		}
		rrel, rattr, err := p.parseAttrRef()
		if err != nil {
			return err
		}
		ls, err := p.sideOf(lrel, schema.Left)
		if err != nil {
			return err
		}
		rs, err := p.sideOf(rrel, schema.Right)
		if err != nil {
			return err
		}
		if ls == rs && !p.doc.Ctx.SelfMatch() {
			return errf(lrel.line, lrel.col, "conjunct must compare the two relations of the pair, got %q twice", lrel.text)
		}
		// Normalize orientation: left side of the pair first.
		if ls == schema.Right && rs == schema.Left {
			lattr, rattr = rattr, lattr
		}
		lhs = append(lhs, core.Conjunct{Pair: core.P(lattr, rattr), Op: op})
		if p.cur().kind == tokAnd {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	rhs, negative, err := p.parseMatchRef(true)
	if err != nil {
		return err
	}
	if negative {
		n, err := core.NewNegativeMD(p.doc.Ctx, lhs, rhs)
		if err != nil {
			return errf(kw.line, kw.col, "%v", err)
		}
		p.doc.Negatives = append(p.doc.Negatives, n)
		return nil
	}
	md, err := core.NewMD(p.doc.Ctx, lhs, rhs)
	if err != nil {
		return errf(kw.line, kw.col, "%v", err)
	}
	p.doc.MDs = append(p.doc.MDs, md)
	return nil
}

// parseMatchRef := listref ("<=>" | "<!>") listref; returns RHS
// attribute pairs and whether the arrow was the negative one (only
// permitted when allowNegative is set).
func (p *parser) parseMatchRef(allowNegative bool) ([]core.AttrPair, bool, error) {
	lrel, lattrs, err := p.parseListRef()
	if err != nil {
		return nil, false, err
	}
	negative := false
	switch p.cur().kind {
	case tokMatchOp:
		p.next()
	case tokNoMatchOp:
		if !allowNegative {
			t := p.cur()
			return nil, false, errf(t.line, t.col, "'<!>' is only allowed in md statements")
		}
		negative = true
		p.next()
	default:
		t := p.cur()
		return nil, false, errf(t.line, t.col, "expected '<=>'%s, found %s %q",
			map[bool]string{true: " or '<!>'", false: ""}[allowNegative], t.kind, t.text)
	}
	rrel, rattrs, err := p.parseListRef()
	if err != nil {
		return nil, false, err
	}
	ls, err := p.sideOf(lrel, schema.Left)
	if err != nil {
		return nil, false, err
	}
	rs, err := p.sideOf(rrel, schema.Right)
	if err != nil {
		return nil, false, err
	}
	if ls == schema.Right && rs == schema.Left {
		lattrs, rattrs = rattrs, lattrs
	} else if ls == rs && !p.doc.Ctx.SelfMatch() {
		return nil, false, errf(lrel.line, lrel.col, "match expression must relate the two relations of the pair")
	}
	if len(lattrs) != len(rattrs) {
		return nil, false, errf(lrel.line, lrel.col, "attribute lists have different lengths (%d vs %d)", len(lattrs), len(rattrs))
	}
	pairs := make([]core.AttrPair, len(lattrs))
	for i := range lattrs {
		pairs[i] = core.P(lattrs[i], rattrs[i])
	}
	return pairs, negative, nil
}

// parseTarget := "target" listref "<=>" listref
func (p *parser) parseTarget() error {
	kw := p.next() // "target"
	if err := p.requirePair(kw); err != nil {
		return err
	}
	pairs, _, err := p.parseMatchRef(false)
	if err != nil {
		return err
	}
	y1 := make(schema.AttrList, len(pairs))
	y2 := make(schema.AttrList, len(pairs))
	for i, pr := range pairs {
		y1[i], y2[i] = pr.Left, pr.Right
	}
	target, err := core.NewTarget(p.doc.Ctx, y1, y2)
	if err != nil {
		return errf(kw.line, kw.col, "%v", err)
	}
	p.doc.Targets = append(p.doc.Targets, target)
	return nil
}

// Format renders a document back to rule-language text (round-trippable
// through Parse).
func Format(doc *Document) string {
	var b strings.Builder
	// Schemas in pair order first, then others sorted.
	written := map[string]bool{}
	writeSchema := func(r *schema.Relation) {
		if r == nil || written[r.Name()] {
			return
		}
		written[r.Name()] = true
		fmt.Fprintf(&b, "schema %s(", r.Name())
		for i, a := range r.Attrs() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name)
			if a.Domain != schema.String {
				fmt.Fprintf(&b, ": %s", a.Domain)
			}
		}
		b.WriteString(")\n")
	}
	writeSchema(doc.Ctx.Left)
	writeSchema(doc.Ctx.Right)
	for _, name := range sortedKeys(doc.Schemas) {
		writeSchema(doc.Schemas[name])
	}
	if doc.Ctx.Left != nil && doc.Ctx.Right != nil {
		fmt.Fprintf(&b, "\npair %s %s\n\n", doc.Ctx.Left.Name(), doc.Ctx.Right.Name())
	}
	for _, md := range doc.MDs {
		fmt.Fprintf(&b, "md %s\n", md)
	}
	for _, n := range doc.Negatives {
		fmt.Fprintf(&b, "md %s\n", n)
	}
	for _, tg := range doc.Targets {
		fmt.Fprintf(&b, "\ntarget %s[%s] <=> %s[%s]\n",
			doc.Ctx.Left.Name(), strings.Join(tg.Y1, ", "),
			doc.Ctx.Right.Name(), strings.Join(tg.Y2, ", "))
	}
	return b.String()
}

func sortedKeys(m map[string]*schema.Relation) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
