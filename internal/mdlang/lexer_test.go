package mdlang

import "testing"

func kinds(t *testing.T, input string) []tokenKind {
	t.Helper()
	toks, err := lex(input)
	if err != nil {
		t.Fatalf("lex(%q): %v", input, err)
	}
	out := make([]tokenKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, "a[b] = c[d]")
	want := []tokenKind{tokIdent, tokLBracket, tokIdent, tokRBracket, tokEquals,
		tokIdent, tokLBracket, tokIdent, tokRBracket, tokEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, "&& -> <=> ~ : , ( )")
	want := []tokenKind{tokAnd, tokArrow, tokMatchOp, tokTilde, tokColon,
		tokComma, tokLParen, tokRParen, tokEOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbersAndIdents(t *testing.T) {
	toks, err := lex("0.85 42 2grams c# a_b x.y z-1")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []tokenKind{tokNumber, tokNumber, tokIdent, tokIdent, tokIdent, tokIdent, tokIdent, tokEOF}
	wantText := []string{"0.85", "42", "2grams", "c#", "a_b", "x.y", "z-1", ""}
	for i := range wantKinds {
		if toks[i].kind != wantKinds[i] {
			t.Fatalf("token %d kind = %v (%q), want %v", i, toks[i].kind, toks[i].text, wantKinds[i])
		}
		if toks[i].text != wantText[i] {
			t.Fatalf("token %d text = %q, want %q", i, toks[i].text, wantText[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("token 0 at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("token 1 at %d:%d, want 2:3", toks[1].line, toks[1].col)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("a # everything ignored -> <=> $$\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // a, b, EOF
		t.Fatalf("tokens = %d, want 3", len(toks))
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"$", "a & b", "a - b", "a < b", "?"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) succeeded, want error", bad)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	all := []tokenKind{tokEOF, tokIdent, tokNumber, tokLParen, tokRParen,
		tokLBracket, tokRBracket, tokComma, tokColon, tokEquals, tokTilde,
		tokAnd, tokArrow, tokMatchOp}
	seen := map[string]bool{}
	for _, k := range all {
		s := k.String()
		if s == "" || s == "unknown token" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if tokenKind(99).String() != "unknown token" {
		t.Error("out-of-range kind must stringify to unknown")
	}
}

func TestErrorFormat(t *testing.T) {
	e := errf(3, 7, "bad %s", "thing")
	if e.Line != 3 || e.Col != 7 {
		t.Fatalf("position = %d:%d", e.Line, e.Col)
	}
	if e.Error() != "mdlang: line 3:7: bad thing" {
		t.Fatalf("Error() = %q", e.Error())
	}
}
