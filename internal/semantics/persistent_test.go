package semantics

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
	"mdmatch/internal/schema"
)

// abPair builds a tiny two-attribute context and instance pair.
func abPair(t testing.TB, leftRows, rightRows [][2]string) (*record.PairInstance, schema.Pair) {
	t.Helper()
	l := schema.MustStrings("l", "a", "b")
	r := schema.MustStrings("r", "a", "b")
	ctx := schema.MustPair(l, r)
	li := record.NewInstance(l)
	for _, row := range leftRows {
		li.MustAppend(row[0], row[1])
	}
	ri := record.NewInstance(r)
	for _, row := range rightRows {
		ri.MustAppend(row[0], row[1])
	}
	d, err := record.NewPairInstance(ctx, li, ri)
	if err != nil {
		t.Fatal(err)
	}
	return d, ctx
}

func TestSatisfiesPersistentVacuous(t *testing.T) {
	d, ctx := abPair(t, [][2]string{{"x", "1"}}, [][2]string{{"y", "2"}})
	md := core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b")})
	// No pair matches the LHS: trivially satisfied in both readings.
	ok, err := SatisfiesPersistent(d, d.Clone(), md)
	if err != nil || !ok {
		t.Fatalf("vacuous case = %v, %v", ok, err)
	}
	ok, err = Satisfies(d, d.Clone(), md)
	if err != nil || !ok {
		t.Fatalf("vacuous strict case = %v, %v", ok, err)
	}
}

func TestSatisfiesPersistentVsStrict(t *testing.T) {
	// D: pair matches LHS (a = a). D': LHS broken, RHS not identified.
	// Strict reading fails (clause (b) broken); persistent reading holds
	// (no obligation once the match is gone).
	d, ctx := abPair(t, [][2]string{{"x", "1"}}, [][2]string{{"x", "2"}})
	md := core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b")})

	dPrime := d.Clone()
	lt, _ := dPrime.Left.ByID(0)
	if err := dPrime.Left.Set(lt, "a", "changed"); err != nil {
		t.Fatal(err)
	}

	strict, err := Satisfies(d, dPrime, md)
	if err != nil {
		t.Fatal(err)
	}
	if strict {
		t.Error("strict reading must fail: LHS match broken, RHS unidentified")
	}
	persistent, err := SatisfiesPersistent(d, dPrime, md)
	if err != nil {
		t.Fatal(err)
	}
	if !persistent {
		t.Error("persistent reading must hold: the match did not persist")
	}
}

func TestSatisfiesPersistentObligation(t *testing.T) {
	// Match persists but RHS not identified: both readings fail.
	d, ctx := abPair(t, [][2]string{{"x", "1"}}, [][2]string{{"x", "2"}})
	md := core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b")})
	dPrime := d.Clone()
	for _, f := range []func(*record.PairInstance) (bool, error){
		func(dp *record.PairInstance) (bool, error) { return Satisfies(d, dp, md) },
		func(dp *record.PairInstance) (bool, error) { return SatisfiesPersistent(d, dp, md) },
	} {
		ok, err := f(dPrime)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("unidentified RHS with persisting match must fail both readings")
		}
	}
	// Identify the RHS: both readings hold.
	lt, _ := dPrime.Left.ByID(0)
	rt, _ := dPrime.Right.ByID(0)
	if err := dPrime.Left.Set(lt, "b", "v"); err != nil {
		t.Fatal(err)
	}
	if err := dPrime.Right.Set(rt, "b", "v"); err != nil {
		t.Fatal(err)
	}
	ok, err := Satisfies(d, dPrime, md)
	if err != nil || !ok {
		t.Fatalf("strict after identification = %v, %v", ok, err)
	}
	ok, err = SatisfiesPersistent(d, dPrime, md)
	if err != nil || !ok {
		t.Fatalf("persistent after identification = %v, %v", ok, err)
	}
}

func TestSatisfiesPersistentValidation(t *testing.T) {
	d, ctx := abPair(t, [][2]string{{"x", "1"}}, [][2]string{{"x", "2"}})
	bad := core.MD{Ctx: ctx}
	if _, err := SatisfiesPersistent(d, d.Clone(), bad); err == nil {
		t.Error("invalid MD accepted")
	}
	notExt := &record.PairInstance{Ctx: d.Ctx, Left: record.NewInstance(ctx.Left), Right: d.Right}
	md := core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b")})
	if _, err := SatisfiesPersistent(d, notExt, md); err == nil {
		t.Error("non-extension accepted")
	}
}

// TestStrictImpliesPersistent: the strict reading implies the persistent
// one on arbitrary instances (obligation (a)∧(b) is stronger than the
// conditional obligation).
func TestStrictImpliesPersistent(t *testing.T) {
	cases := []struct {
		left, right [][2]string
		mutate      func(*record.PairInstance)
	}{
		{[][2]string{{"x", "1"}, {"y", "3"}}, [][2]string{{"x", "2"}}, func(dp *record.PairInstance) {}},
		{[][2]string{{"x", "1"}}, [][2]string{{"x", "1"}}, func(dp *record.PairInstance) {
			lt, _ := dp.Left.ByID(0)
			dp.Left.Set(lt, "b", "zz")
		}},
		{[][2]string{{"x", "1"}}, [][2]string{{"x", "2"}}, func(dp *record.PairInstance) {
			lt, _ := dp.Left.ByID(0)
			rt, _ := dp.Right.ByID(0)
			dp.Left.Set(lt, "b", "v")
			dp.Right.Set(rt, "b", "v")
		}},
	}
	for i, c := range cases {
		d, ctx := abPair(t, c.left, c.right)
		md := core.MustMD(ctx, []core.Conjunct{core.Eq("a", "a")}, []core.AttrPair{core.P("b", "b")})
		dPrime := d.Clone()
		c.mutate(dPrime)
		strict, err := Satisfies(d, dPrime, md)
		if err != nil {
			t.Fatal(err)
		}
		persistent, err := SatisfiesPersistent(d, dPrime, md)
		if err != nil {
			t.Fatal(err)
		}
		if strict && !persistent {
			t.Errorf("case %d: strict holds but persistent fails — implication violated", i)
		}
	}
}
