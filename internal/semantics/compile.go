package semantics

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/exec"
	"mdmatch/internal/metrics"
	"mdmatch/internal/schema"
	"mdmatch/internal/similarity"
)

// compiledMD is one MD in executable form: the LHS as exec kernel
// conjuncts (attribute references resolved to positional columns), the
// RHS as column index pairs, and the subset of LHS conjuncts whose
// operators are hash-encodable — usable as blocking-style join keys to
// seed the worklist chase with candidate pairs.
type compiledMD struct {
	// lhs is evaluation-ordered: exact (encodable) tests first — they
	// are cheap and selective — then the similarity metrics.
	lhs []exec.Conjunct
	// rhs lists (left column, right column) pairs to identify.
	rhs [][2]int
	// seeds are the encodable LHS conjuncts (equality, Soundex): a pair
	// can only match the LHS if both sides encode to the same key.
	seeds []seedField
}

// seedField is one component of an MD's candidate join key: over the
// interned store it encodes to the cell's value ID (equality) or the
// value's interned Soundex code ID (sdx).
type seedField struct {
	lcol, rcol int
	sdx        bool
}

// seedEncoder reports whether op admits exact hash-partitioning: an
// encoding with op.Similar(a, b) ⟺ enc(a) == enc(b). Equality
// partitions on the raw value (= the value ID of the shared
// dictionary); Soundex equivalence partitions on the Soundex code
// (= the interned code ID). Thresholded similarity metrics (dl, jaro,
// ...) do not induce equivalence relations and cannot be seeded this
// way. The sdx result distinguishes the two encodings.
func seedEncoder(op similarity.Operator) (sdx, ok bool) {
	switch op.Name() {
	case similarity.EqName:
		return false, true
	case "soundex":
		return true, true
	}
	return false, false
}

// compileMD resolves an MD against the context for positional
// evaluation. The MD must already be validated.
func compileMD(ctx schema.Pair, md core.MD) (compiledMD, error) {
	lhs, err := exec.CompileConjuncts(ctx, md.LHS)
	if err != nil {
		return compiledMD{}, err
	}
	var cm compiledMD
	var rest []exec.Conjunct
	for _, c := range lhs {
		if sdx, ok := seedEncoder(c.Op); ok {
			cm.lhs = append(cm.lhs, c)
			cm.seeds = append(cm.seeds, seedField{lcol: c.Left, rcol: c.Right, sdx: sdx})
		} else {
			rest = append(rest, c)
		}
	}
	cm.lhs = append(cm.lhs, rest...)
	for _, p := range md.RHS {
		li, ok := ctx.Left.Index(p.Left)
		if !ok {
			return compiledMD{}, fmt.Errorf("%s has no attribute %q", ctx.Left.Name(), p.Left)
		}
		ri, ok := ctx.Right.Index(p.Right)
		if !ok {
			return compiledMD{}, fmt.Errorf("%s has no attribute %q", ctx.Right.Name(), p.Right)
		}
		cm.rhs = append(cm.rhs, [2]int{li, ri})
	}
	return cm, nil
}

// compileSigma validates and compiles a rule set, with seed-compatible
// error positions.
func compileSigma(ctx schema.Pair, sigma []core.MD) ([]compiledMD, error) {
	out := make([]compiledMD, len(sigma))
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			return nil, fmt.Errorf("semantics: Σ[%d]: %w", i, err)
		}
		cm, err := compileMD(ctx, md)
		if err != nil {
			return nil, fmt.Errorf("semantics: Σ[%d]: %w", i, err)
		}
		out[i] = cm
	}
	return out, nil
}

// matchLHS evaluates the compiled LHS on a positional value pair,
// counting operator evaluations into stats when supplied.
func (cm *compiledMD) matchLHS(left, right []string, stats *metrics.ChaseStats) bool {
	for i := range cm.lhs {
		if stats != nil {
			stats.LHSEvaluations++
		}
		if !cm.lhs[i].Eval(left, right) {
			return false
		}
	}
	return true
}

// rhsEqual reports whether every RHS column pair already holds the same
// value.
func (cm *compiledMD) rhsEqual(left, right []string) bool {
	for _, p := range cm.rhs {
		if left[p[0]] != right[p[1]] {
			return false
		}
	}
	return true
}
