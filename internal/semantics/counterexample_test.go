package semantics

import (
	"testing"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
)

// TestLiteralReadingCounterexample pins down a formal wrinkle in the
// paper found during this reproduction (DESIGN.md §2.3).
//
// Section 2.1 defines (D, D′) ⊨ ϕ as: every pair matching LHS(ϕ) in D
// must (a) have its RHS identified in D′ AND (b) still match LHS(ϕ) in
// D′. Read literally, with clause (b) as an obligation, the deductions of
// Example 3.5 admit instance-level counterexamples: a rule of Σ can
// overwrite an LHS attribute of the deduced key on some pair, breaking
// clause (b) while every rule of Σ stays satisfied and D′ stays stable.
//
// The instance below (found by randomized search, then minimized) does
// exactly that for rck2 = (ln=, tel=, fn≈d ‖ → Y⇌Y), which Σc provably
// deduces (TestExample35DeduceRCKs in internal/core): the pair
// (c2, b2) matches LHS(rck2) in D, but enforcing ϕ3 on the *other* pair
// (c2, b1) rewrites c2[ln] and c2[fn], so (c2, b2) no longer matches in
// D′ — and its Y attributes are not identified there.
//
// The reading that makes the closure algorithm sound treats clause (b)
// as a condition: obligations attach to pairs whose match persists
// (SatisfiesPersistent); equivalently, every instance stable for Σ is
// stable for each deduced MD.
func TestLiteralReadingCounterexample(t *testing.T) {
	ctx, sigma, target, _ := figure1(t)
	_ = target

	ic := record.NewInstance(ctx.Left)
	// c1 shares email with b1; c2 shares email with b1 and tel/ln/fn with b2.
	ic.MustAppend("0", "ssn", "Marx", "Clivord", "620 Elm Street", "908-1111111", "ds@hm.com", "M", "visa") // c1
	ic.MustAppend("1", "ssn", "Mark", "Smith", "620 Elm Street", "908-2222222", "ds@hm.com", "M", "visa")   // c2
	ib := record.NewInstance(ctx.Right)
	ib.MustAppend("1", "David", "Clifford", "620 Elm Street", "908-1111111", "ds@hm.com", "null", "item", "9.99") // b1
	ib.MustAppend("0", "Mark", "Smith", "10 Oak Street", "908-2222222", "mc@gm.com", "null", "item", "9.99")      // b2
	d, err := record.NewPairInstance(ctx, ic, ib)
	if err != nil {
		t.Fatal(err)
	}

	// rck2 as an MD; Σc deduces it at the schema level.
	dl := sigma[0].LHS[2].Op // the ≈d operator of ϕ1
	rck2 := core.MD{Ctx: ctx, LHS: []core.Conjunct{
		core.Eq("ln", "ln"), core.Eq("tel", "phn"), core.C("fn", dl, "fn"),
	}, RHS: sigma[0].RHS}
	if ok, err := core.Deduce(sigma, rck2); err != nil || !ok {
		t.Fatalf("precondition: Σc must deduce rck2 (ok=%v, err=%v)", ok, err)
	}

	// Chase D to a stable D′ with (D, D′) ⊨ Σ under the literal reading.
	dPrime, pairSat, err := StableFor(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !pairSat {
		t.Fatal("precondition: (D, D′) must satisfy Σ under the literal reading")
	}
	if ok, err := IsStable(dPrime, sigma); err != nil || !ok {
		t.Fatalf("precondition: D′ must be stable for Σ (ok=%v, err=%v)", ok, err)
	}

	// The wrinkle: the literal reading rejects rck2 on (D, D′)...
	literal, err := Satisfies(d, dPrime, rck2)
	if err != nil {
		t.Fatal(err)
	}
	if literal {
		t.Fatal("expected the literal (a)∧(b) reading to fail on this instance; " +
			"if this now passes, the chase's value-resolution policy changed and " +
			"the counterexample needs re-minimizing")
	}
	// ...while the persistent reading and stability preservation hold.
	persistent, err := SatisfiesPersistent(d, dPrime, rck2)
	if err != nil {
		t.Fatal(err)
	}
	if !persistent {
		t.Error("persistent reading must hold for the deduced rck2")
	}
	stableForDeduced, err := IsStable(dPrime, []core.MD{rck2})
	if err != nil {
		t.Fatal(err)
	}
	if !stableForDeduced {
		t.Error("an instance stable for Σ must be stable for every deduced MD")
	}
}
