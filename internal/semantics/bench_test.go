package semantics

import (
	"fmt"
	"testing"

	"mdmatch/internal/gen"
)

// Kernel benchmarks for the enforcement chase; CI runs them with
// -benchtime=1x as a compile/regression smoke, `go test -bench .` gives
// real numbers. BenchmarkEnforce compares the candidate-driven worklist
// against the quadratic reference on the same dataset.
func BenchmarkEnforce(b *testing.B) {
	for _, k := range []int{30, 90} {
		ds, err := gen.Generate(gen.DefaultConfig(k))
		if err != nil {
			b.Fatal(err)
		}
		sigma := gen.HolderMDs(ds.Ctx)
		d := ds.Pair()
		b.Run(fmt.Sprintf("worklist_K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Enforce(d, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fullscan_K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EnforceFullScan(d, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
