package semantics

import (
	"fmt"
	"testing"

	"mdmatch/internal/gen"
)

// Kernel benchmarks for the enforcement chase; CI runs them with
// -benchtime=1x as a compile/regression smoke, `go test -bench .` gives
// real numbers. BenchmarkEnforce compares the candidate-driven worklist
// against the quadratic reference on the same dataset.
func BenchmarkEnforce(b *testing.B) {
	for _, k := range []int{30, 90} {
		ds, err := gen.Generate(gen.DefaultConfig(k))
		if err != nil {
			b.Fatal(err)
		}
		sigma := gen.HolderMDs(ds.Ctx)
		d := ds.Pair()
		b.Run(fmt.Sprintf("worklist_K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Enforce(d, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fullscan_K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EnforceFullScan(d, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnforceWorkers runs the worklist chase through the
// deterministic parallel layer (speculation thresholds lowered so it
// engages at bench scale) at 1, 2 and 4 workers. CI smokes it at
// -benchtime=1x; the workers=1 sub-bench doubles as a check that the
// parallel build of the chase costs nothing when serial.
func BenchmarkEnforceWorkers(b *testing.B) {
	ds, err := gen.Generate(gen.DefaultConfig(90))
	if err != nil {
		b.Fatal(err)
	}
	sigma := gen.HolderMDs(ds.Ctx)
	d := ds.Pair()
	oldChunk, oldMin := specChunk, specMinPairs
	specChunk, specMinPairs = 4096, 64
	defer func() { specChunk, specMinPairs = oldChunk, oldMin }()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EnforceWorkers(d, sigma, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
