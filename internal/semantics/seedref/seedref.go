// Package seedref freezes the pre-kernel (seed) implementation of the
// enforcement chase: interpreted per-pair evaluation through
// Instance.Get, a full |I1|×|I2| rescan of every rule on every pass,
// and a full flush after every firing.
//
// It is the single ground-truth baseline that the worklist chase
// (semantics.Enforce) and the compiled full scan
// (semantics.EnforceFullScan) are validated against — the equivalence
// property tests and `make bench-exec` both import it. It is fully
// self-contained (own LHS matcher, own value-resolution policy, both
// verbatim copies of the seed code) and must NOT be modernized: its
// value is that it stays byte-for-byte equivalent to the seed
// behavior. Nothing outside tests and benchmarks should import it.
package seedref

import (
	"fmt"

	"mdmatch/internal/core"
	"mdmatch/internal/record"
)

// Result mirrors the seed EnforceResult.
type Result struct {
	Instance     *record.PairInstance
	Applications int
	Passes       int
}

// Enforce is the seed chase, verbatim.
func Enforce(d *record.PairInstance, sigma []core.MD) (Result, error) {
	for i, md := range sigma {
		if err := md.Validate(); err != nil {
			return Result{}, fmt.Errorf("seedref: Σ[%d]: %w", i, err)
		}
	}
	out := d.Clone()
	ch := newChase(out)

	res := Result{Instance: out}
	maxPasses := ch.cellCount() + 2
	for {
		res.Passes++
		if res.Passes > maxPasses {
			return Result{}, fmt.Errorf("seedref: chase exceeded %d passes", maxPasses)
		}
		fired := false
		for _, md := range sigma {
			for i1, t1 := range out.Left.Tuples {
				for i2, t2 := range out.Right.Tuples {
					ok, err := matchLHS(out, md, t1, t2)
					if err != nil {
						return Result{}, err
					}
					if !ok {
						continue
					}
					eq, err := rhsEqual(out, md, t1, t2)
					if err != nil {
						return Result{}, err
					}
					if eq {
						continue
					}
					for _, p := range md.RHS {
						ch.unionAttrs(i1, i2, p)
					}
					ch.flush()
					fired = true
					res.Applications++
				}
			}
		}
		if !fired {
			break
		}
	}
	return res, nil
}

// matchLHS is the seed semantics.MatchLHS.
func matchLHS(d *record.PairInstance, md core.MD, t1, t2 *record.Tuple) (bool, error) {
	for _, c := range md.LHS {
		v1, err := d.Left.Get(t1, c.Pair.Left)
		if err != nil {
			return false, err
		}
		v2, err := d.Right.Get(t2, c.Pair.Right)
		if err != nil {
			return false, err
		}
		if !c.Op.Similar(v1, v2) {
			return false, nil
		}
	}
	return true, nil
}

func rhsEqual(d *record.PairInstance, md core.MD, t1, t2 *record.Tuple) (bool, error) {
	for _, p := range md.RHS {
		v1, err := d.Left.Get(t1, p.Left)
		if err != nil {
			return false, err
		}
		v2, err := d.Right.Get(t2, p.Right)
		if err != nil {
			return false, err
		}
		if v1 != v2 {
			return false, nil
		}
	}
	return true, nil
}

// resolveValue is the seed semantics.ResolveValue: longest value wins,
// ties break lexicographically (largest).
func resolveValue(a, b string) string {
	if len(a) > len(b) {
		return a
	}
	if len(b) > len(a) {
		return b
	}
	if a >= b {
		return a
	}
	return b
}

// chase is the seed union-find with flush-per-firing semantics.
type chase struct {
	d       *record.PairInstance
	insts   []*record.Instance
	base    map[*record.Instance]int
	parent  []int
	value   []string
	members [][]int
}

func newChase(d *record.PairInstance) *chase {
	ch := &chase{d: d, base: make(map[*record.Instance]int)}
	add := func(in *record.Instance) {
		if _, ok := ch.base[in]; ok {
			return
		}
		ch.base[in] = len(ch.parent)
		ch.insts = append(ch.insts, in)
		for _, t := range in.Tuples {
			for _, v := range t.Values {
				id := len(ch.parent)
				ch.parent = append(ch.parent, id)
				ch.value = append(ch.value, v)
				ch.members = append(ch.members, []int{id})
			}
		}
	}
	add(d.Left)
	add(d.Right)
	return ch
}

func (ch *chase) cellCount() int { return len(ch.parent) }

func (ch *chase) find(x int) int {
	for ch.parent[x] != x {
		ch.parent[x] = ch.parent[ch.parent[x]]
		x = ch.parent[x]
	}
	return x
}

func (ch *chase) union(a, b int) {
	ra, rb := ch.find(a), ch.find(b)
	if ra == rb {
		return
	}
	if len(ch.members[ra]) < len(ch.members[rb]) {
		ra, rb = rb, ra
	}
	ch.parent[rb] = ra
	ch.value[ra] = resolveValue(ch.value[ra], ch.value[rb])
	ch.members[ra] = append(ch.members[ra], ch.members[rb]...)
	ch.members[rb] = nil
}

func (ch *chase) unionAttrs(i1, i2 int, p core.AttrPair) {
	li, _ := ch.d.Left.Rel.Index(p.Left)
	ri, _ := ch.d.Right.Rel.Index(p.Right)
	ch.union(
		ch.base[ch.d.Left]+i1*ch.d.Left.Rel.Arity()+li,
		ch.base[ch.d.Right]+i2*ch.d.Right.Rel.Arity()+ri,
	)
}

func (ch *chase) flush() {
	for _, in := range ch.insts {
		b := ch.base[in]
		ar := in.Rel.Arity()
		for ti, t := range in.Tuples {
			for ai := range t.Values {
				t.Values[ai] = ch.value[ch.find(b+ti*ar+ai)]
			}
		}
	}
}
