package semantics

import (
	"container/heap"
	"fmt"

	"mdmatch/internal/record"
)

// The worklist chase.
//
// The seed implementation of Enforce rescanned all |I1|×|I2| tuple
// pairs for every rule on every pass. The worklist keeps the exact
// firing order of that reference loop — rules in Σ order within
// pass-structured rounds, pairs in ascending (left, right) order, one
// visit per (rule, pair) per pass — while visiting only pairs that can
// possibly fire:
//
//   - a rule whose LHS contains hash-encodable conjuncts (equality,
//     Soundex) is seeded by a blocking-style join: both sides are keyed
//     on the encodable conjuncts' encoded values, and only pairs in the
//     same block are ever visited (other pairs fail the LHS trivially);
//   - a rule with no encodable conjunct scans the full cross product
//     once, on its first pass;
//   - on later passes, a rule revisits only pairs involving tuples whose
//     cells some firing touched since the rule last saw them: an
//     untouched pair keeps the verdict of its previous visit, so
//     skipping it cannot change the outcome;
//   - when a firing touches tuples during a rule's own scan, pairs that
//     lie ahead of the scan position are re-enqueued immediately (the
//     reference loop would reach them later in the same pass), and
//     pairs behind it are deferred to the next pass (the reference loop
//     could not revisit them either).
//
// Equivalence of the firing sequences follows by induction: both loops
// visit a superset of the pairs that can fire, in the same order, and
// decide each visit from the current instance state alone. The property
// tests in worklist_test.go check the resulting instance, Applications
// and Passes against EnforceFullScan and against a verbatim copy of the
// seed implementation.

// wlMD is one rule's worklist state.
type wlMD struct {
	cm compiledMD
	// caches are the shared conjunct verdict matrices, aligned with
	// cm.lhs (nil entries evaluate the operator directly).
	caches []*conjCache
	// dirtyL/dirtyR hold tuple indices touched by firings since this
	// rule last consumed them.
	dirtyL, dirtyR map[int]struct{}
	// idxL/idxR are the blocking-style join indexes over the encodable
	// conjuncts (nil for rules without any).
	idxL, idxR *sideIndex
}

func (m *wlMD) blockable() bool { return m.idxL != nil }

// sideIndex maps one side's tuples to their current candidate join key.
type sideIndex struct {
	keys    []string
	buckets map[string][]int
}

func newSideIndex(n int) *sideIndex {
	return &sideIndex{keys: make([]string, n), buckets: make(map[string][]int)}
}

// set updates tuple i's key, moving it between buckets.
func (ix *sideIndex) set(i int, key string) {
	old := ix.keys[i]
	if old == key {
		return
	}
	ids := ix.buckets[old]
	for k, have := range ids {
		if have == i {
			ids[k] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, old)
	} else {
		ix.buckets[old] = ids
	}
	ix.keys[i] = key
	ix.buckets[key] = append(ix.buckets[key], i)
}

// pairHeap is a min-heap of pair order codes (i1*n2 + i2).
type pairHeap []int64

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type worklist struct {
	d      *record.PairInstance
	ch     *chase
	cache  *evalCache
	mds    []*wlMD
	n1, n2 int
	res    EnforceResult

	// scan-local state of the rule currently being scanned.
	scanning     *wlMD
	bitsL, bitsR []bool // dense filtered scan: side membership filters
	heapActive   bool   // blocked scan: heap re-enqueue enabled
	pending      *pairHeap
	enqueued     map[int64]struct{}
	curOrd       int64
}

func newWorklist(out *record.PairInstance, mds []compiledMD) *worklist {
	w := &worklist{d: out, n1: out.Left.Len(), n2: out.Right.Len()}
	w.cache = newEvalCache(out, mds)
	for i := range mds {
		m := &wlMD{
			cm:     mds[i],
			caches: w.cache.caches(&mds[i]),
			dirtyL: make(map[int]struct{}),
			dirtyR: make(map[int]struct{}),
		}
		if len(m.cm.seeds) > 0 {
			m.idxL = newSideIndex(w.n1)
			for j, t := range out.Left.Tuples {
				m.idxL.keys[j] = m.cm.leftKey(t.Values)
				m.idxL.buckets[m.idxL.keys[j]] = append(m.idxL.buckets[m.idxL.keys[j]], j)
			}
			m.idxR = newSideIndex(w.n2)
			for j, t := range out.Right.Tuples {
				m.idxR.keys[j] = m.cm.rightKey(t.Values)
				m.idxR.buckets[m.idxR.keys[j]] = append(m.idxR.buckets[m.idxR.keys[j]], j)
			}
		}
		w.mds = append(w.mds, m)
	}
	w.ch = newChase(out)
	w.ch.onTouch = w.touched
	return w
}

func (w *worklist) run() (EnforceResult, error) {
	w.res.Instance = w.d
	maxPasses := w.ch.cellCount() + 2
	for {
		w.res.Passes++
		if w.res.Passes > maxPasses {
			return EnforceResult{}, fmt.Errorf("semantics: chase exceeded %d passes (non-terminating value resolution?)", maxPasses)
		}
		fired := false
		for _, m := range w.mds {
			if w.scanMD(m, w.res.Passes) {
				fired = true
			}
		}
		if !fired {
			break
		}
	}
	return w.res, nil
}

// touched records a cell a firing just changed: the interned value id is
// refreshed, every rule must reconsider the tuple's pairs, and the rule
// currently scanning re-enqueues pairs ahead of its scan position.
func (w *worklist) touched(in *record.Instance, ti, ai int, v string) {
	if in == w.d.Left {
		w.cache.cellChanged(0, ai, ti, v)
		w.sideTouched(true, ti)
	}
	if in == w.d.Right {
		if in != w.d.Left { // self-match shares the id slices
			w.cache.cellChanged(1, ai, ti, v)
		}
		w.sideTouched(false, ti)
	}
}

func (w *worklist) sideTouched(left bool, ti int) {
	for _, m := range w.mds {
		if left {
			m.dirtyL[ti] = struct{}{}
		} else {
			m.dirtyR[ti] = struct{}{}
		}
	}
	s := w.scanning
	if s == nil {
		return
	}
	if w.bitsL != nil { // dense filtered scan: widen the filters
		if left {
			w.bitsL[ti] = true
		} else {
			w.bitsR[ti] = true
		}
		return
	}
	if !w.heapActive { // dense unfiltered scan enumerates everything anyway
		return
	}
	// Blocked scan: the touched tuple's join key may have changed —
	// refresh it, then enqueue the pairs it now joins with.
	if left {
		s.idxL.set(ti, s.cm.leftKey(w.d.Left.Tuples[ti].Values))
		for _, j := range s.idxR.buckets[s.idxL.keys[ti]] {
			w.push(ti, j)
		}
	} else {
		s.idxR.set(ti, s.cm.rightKey(w.d.Right.Tuples[ti].Values))
		for _, i := range s.idxL.buckets[s.idxR.keys[ti]] {
			w.push(i, ti)
		}
	}
}

// push enqueues a candidate pair into the current blocked scan if it
// lies ahead of the scan position and is not already queued. Pairs
// behind the position stay in the dirty sets for the next pass.
func (w *worklist) push(i1, i2 int) {
	ord := int64(i1)*int64(w.n2) + int64(i2)
	if ord <= w.curOrd {
		return
	}
	if _, ok := w.enqueued[ord]; ok {
		return
	}
	w.enqueued[ord] = struct{}{}
	heap.Push(w.pending, ord)
}

// visit evaluates one candidate (rule, pair) and fires on a violation.
func (w *worklist) visit(m *wlMD, i1, i2 int) bool {
	lv := w.d.Left.Tuples[i1].Values
	rv := w.d.Right.Tuples[i2].Values
	w.res.Stats.PairsExamined++
	if !w.matchLHS(m, i1, i2, lv, rv) {
		return false
	}
	if m.cm.rhsEqual(lv, rv) {
		return false
	}
	w.ch.fire(&m.cm, i1, i2)
	w.res.Applications++
	w.res.Stats.RuleFirings++
	return true
}

// matchLHS is the memoized LHS check: each conjunct consults its shared
// verdict matrix before falling back to the operator. Only actual
// operator calls count as LHS evaluations.
func (w *worklist) matchLHS(m *wlMD, i1, i2 int, lv, rv []string) bool {
	for ci := range m.cm.lhs {
		c := &m.cm.lhs[ci]
		cc := m.caches[ci]
		if cc == nil {
			w.res.Stats.LHSEvaluations++
			if !c.Op.Similar(lv[c.Left], rv[c.Right]) {
				return false
			}
			continue
		}
		v1 := w.cache.vids[0][c.Left][i1]
		v2 := w.cache.vids[1][c.Right][i2]
		if verdict, known := cc.get(v1, v2); known {
			if !verdict {
				return false
			}
			continue
		}
		w.res.Stats.LHSEvaluations++
		verdict := c.Op.Similar(lv[c.Left], rv[c.Right])
		cc.set(v1, v2, verdict)
		if !verdict {
			return false
		}
	}
	return true
}

func (w *worklist) scanMD(m *wlMD, pass int) bool {
	w.scanning = m
	defer func() {
		w.scanning = nil
		w.bitsL, w.bitsR = nil, nil
		w.heapActive = false
		w.pending, w.enqueued = nil, nil
	}()
	if m.blockable() {
		return w.scanBlocked(m, pass)
	}
	return w.scanDense(m, pass)
}

// scanDense visits pairs in ascending order by direct enumeration: the
// full cross product on the first pass, and only rows/columns of dirty
// tuples afterwards. Later passes still sweep the n1×n2 grid to test
// the filters — a deliberate trade: the boolean check is orders of
// magnitude cheaper than an operator evaluation, and a rule that lands
// here (no encodable conjunct) already paid a full first-pass scan that
// dominates asymptotically.
func (w *worklist) scanDense(m *wlMD, pass int) bool {
	filtered := pass > 1
	if filtered {
		w.bitsL = make([]bool, w.n1)
		w.bitsR = make([]bool, w.n2)
		for i := range m.dirtyL {
			w.bitsL[i] = true
		}
		for i := range m.dirtyR {
			w.bitsR[i] = true
		}
	}
	m.dirtyL = make(map[int]struct{})
	m.dirtyR = make(map[int]struct{})
	fired := false
	for i1 := 0; i1 < w.n1; i1++ {
		for i2 := 0; i2 < w.n2; i2++ {
			if filtered && !w.bitsL[i1] && !w.bitsR[i2] {
				continue
			}
			if w.visit(m, i1, i2) {
				fired = true
			}
		}
	}
	return fired
}

// scanBlocked visits pairs in ascending order through a min-heap seeded
// from the rule's join indexes: the full key join on the first pass,
// dirty-tuple probes afterwards. Mid-scan firings push newly joined
// pairs ahead of the position via sideTouched.
func (w *worklist) scanBlocked(m *wlMD, pass int) bool {
	h := make(pairHeap, 0, 64)
	w.pending = &h
	w.enqueued = make(map[int64]struct{})
	w.heapActive = true
	w.curOrd = -1
	// Keys of tuples touched since this rule's last scan are stale.
	for i := range m.dirtyL {
		m.idxL.set(i, m.cm.leftKey(w.d.Left.Tuples[i].Values))
	}
	for j := range m.dirtyR {
		m.idxR.set(j, m.cm.rightKey(w.d.Right.Tuples[j].Values))
	}
	if pass == 1 {
		for key, lids := range m.idxL.buckets {
			rids, ok := m.idxR.buckets[key]
			if !ok {
				continue
			}
			for _, i := range lids {
				for _, j := range rids {
					w.push(i, j)
				}
			}
		}
	} else {
		for i := range m.dirtyL {
			for _, j := range m.idxR.buckets[m.idxL.keys[i]] {
				w.push(i, j)
			}
		}
		for j := range m.dirtyR {
			for _, i := range m.idxL.buckets[m.idxR.keys[j]] {
				w.push(i, j)
			}
		}
	}
	m.dirtyL = make(map[int]struct{})
	m.dirtyR = make(map[int]struct{})
	fired := false
	for h.Len() > 0 {
		ord := heap.Pop(&h).(int64)
		w.curOrd = ord
		if w.visit(m, int(ord/int64(w.n2)), int(ord%int64(w.n2))) {
			fired = true
		}
	}
	return fired
}
